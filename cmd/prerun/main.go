// Command prerun executes only the pre-run phase (paper §4): it runs every
// unit test once with a tracking agent and prints, per test, the node
// types started, the parameters each entity reads, and any unmappable
// configuration objects — the raw material for Table 5 rows 1–3.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/testgen"
)

func main() {
	var (
		appName = flag.String("app", "minihdfs", "application name or 'all'")
		verbose = flag.Bool("v", false, "print per-entity parameter usage")
	)
	flag.Parse()

	var selected []*harness.App
	if *appName == "all" {
		selected = apps.All()
	} else {
		app, err := apps.ByName(*appName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		selected = []*harness.App{app}
	}

	for _, app := range selected {
		fmt.Printf("=== pre-run: %s ===\n", app.Name)
		run := runner.New(app, runner.Options{})
		gen := testgen.New(app.Schema())

		var pres []testgen.PreRun
		nodeless, sharing, uncertain := 0, 0, 0
		for i := range app.Tests {
			pre := run.PreRun(&app.Tests[i])
			pres = append(pres, pre)
			rep := pre.Report
			switch {
			case len(rep.NodesStarted) == 0:
				nodeless++
			default:
				if rep.SharedConf {
					sharing++
				}
				if rep.UncertainConfs > 0 {
					uncertain++
				}
			}
			fmt.Printf("%-32s nodes=%v uncertain=%d\n", pre.Test, rep.NodesStarted, rep.UncertainConfs)
			if *verbose {
				entities := make([]string, 0, len(rep.Usage))
				for e := range rep.Usage {
					entities = append(entities, e)
				}
				sort.Strings(entities)
				for _, e := range entities {
					var ps []string
					for p := range rep.Usage[e] {
						ps = append(ps, p)
					}
					sort.Strings(ps)
					fmt.Printf("    %-24s %s\n", e, strings.Join(ps, " "))
				}
			}
		}
		fmt.Printf("\n%d tests: %d without nodes (filtered), %d sharing configuration, %d with uncertain objects\n",
			len(pres), nodeless, sharing, uncertain)
		fmt.Printf("instances: original=%d after-pre-run=%d after-uncertainty=%d\n\n",
			gen.OriginalCount(len(pres), app.NodeTypes),
			gen.CountAfterPreRun(pres),
			gen.CountAfterUncertainty(pres))
	}
}
