// Command reportgen renders campaign JSON (written by `zebraconf -json`)
// as the Markdown tables EXPERIMENTS.md embeds, and diffs run-ledger
// entries (`reportgen -diff -ledger <dir> -app <app>`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/ledger"
	"zebraconf/internal/core/report"
)

func main() {
	var (
		in      = flag.String("in", "campaign.json", "campaign JSON produced by zebraconf -json")
		explain = flag.Bool("explain", false, "render the verdict-forensics triage report instead of the results tables")
		param   = flag.String("param", "", "with -explain: report only this parameter")
		diff    = flag.Bool("diff", false, "diff two run-ledger records instead of rendering tables (same semantics as zebraconf -mode diff)")
		ledgerD = flag.String("ledger", "", "with -diff: the -ledger directory campaigns appended to")
		appName = flag.String("app", "", "with -diff: compare this app's two most recent runs")
		runs    = flag.String("diff-runs", "", "with -diff: two comma-separated run IDs (or unique prefixes) instead of the app's last two")
	)
	flag.Parse()

	if *diff {
		os.Exit(runDiff(*ledgerD, *appName, *runs))
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	var results []*campaign.Result
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		fmt.Fprintf(os.Stderr, "reportgen: decode %s: %v\n", *in, err)
		os.Exit(1)
	}
	report.SortResults(results)

	if *explain {
		// Same renderer as `zebraconf -mode explain`: the archived JSON
		// carries the evidence records, so triage works offline too.
		for _, res := range results {
			if err := report.Explain(os.Stdout, res, *param); err != nil {
				fmt.Fprintln(os.Stderr, "reportgen:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("## Campaign results")
	fmt.Println()
	for _, res := range results {
		report.Markdown(os.Stdout, res)
	}
	s := report.Summarize(results)
	uniq, trueOnes := report.UniqueParams(results)
	fmt.Printf("**Overall:** %d reports, %d distinct parameters (%d true problems, %d false positives as scored by the registries' ground truth), %d unit-test executions.\n",
		s.Reported, uniq, trueOnes, uniq-trueOnes, s.Executed)
}

// runDiff mirrors `zebraconf -mode diff`: exit 0 when the reported sets
// are identical, 1 on any delta, 2 on usage errors.
func runDiff(dir, app, runs string) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "reportgen: -diff needs -ledger <dir>")
		return 2
	}
	if app == "" && runs == "" {
		fmt.Fprintln(os.Stderr, "reportgen: -diff compares one app's runs; pass -app (or explicit -diff-runs)")
		return 2
	}
	recs, err := ledger.Read(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reportgen:", err)
		return 2
	}
	a, b, err := ledger.PickPair(recs, app, runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reportgen:", err)
		return 2
	}
	d := ledger.Diff(a, b)
	d.Render(os.Stdout)
	if d.Clean() {
		return 0
	}
	return 1
}
