// Command reportgen renders campaign JSON (written by `zebraconf -json`)
// as the Markdown tables EXPERIMENTS.md embeds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/report"
)

func main() {
	var (
		in      = flag.String("in", "campaign.json", "campaign JSON produced by zebraconf -json")
		explain = flag.Bool("explain", false, "render the verdict-forensics triage report instead of the results tables")
		param   = flag.String("param", "", "with -explain: report only this parameter")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	var results []*campaign.Result
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		fmt.Fprintf(os.Stderr, "reportgen: decode %s: %v\n", *in, err)
		os.Exit(1)
	}
	report.SortResults(results)

	if *explain {
		// Same renderer as `zebraconf -mode explain`: the archived JSON
		// carries the evidence records, so triage works offline too.
		for _, res := range results {
			if err := report.Explain(os.Stdout, res, *param); err != nil {
				fmt.Fprintln(os.Stderr, "reportgen:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("## Campaign results")
	fmt.Println()
	for _, res := range results {
		report.Markdown(os.Stdout, res)
	}
	s := report.Summarize(results)
	uniq, trueOnes := report.UniqueParams(results)
	fmt.Printf("**Overall:** %d reports, %d distinct parameters (%d true problems, %d false positives as scored by the registries' ground truth), %d unit-test executions.\n",
		s.Reported, uniq, trueOnes, uniq-trueOnes, s.Executed)
}
