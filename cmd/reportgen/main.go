// Command reportgen renders campaign JSON (written by `zebraconf -json`)
// as the Markdown tables EXPERIMENTS.md embeds, diffs run-ledger
// entries (`reportgen -diff -ledger <dir> -app <app>`), and renders the
// offline performance profile from a run's observability artifacts
// (`reportgen -profile -trace t.jsonl -events e.jsonl -perf p.jsonl`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/flight"
	"zebraconf/internal/core/ledger"
	"zebraconf/internal/core/report"
)

func main() {
	var (
		in      = flag.String("in", "campaign.json", "campaign JSON produced by zebraconf -json")
		explain = flag.Bool("explain", false, "render the verdict-forensics triage report instead of the results tables")
		param   = flag.String("param", "", "with -explain: report only this parameter")
		diff    = flag.Bool("diff", false, "diff two run-ledger records instead of rendering tables (same semantics as zebraconf -mode diff)")
		ledgerD = flag.String("ledger", "", "with -diff: the -ledger directory campaigns appended to")
		appName = flag.String("app", "", "with -diff: compare this app's two most recent runs")
		runs    = flag.String("diff-runs", "", "with -diff: two comma-separated run IDs (or unique prefixes) instead of the app's last two")
		profile = flag.Bool("profile", false, "render the offline performance profile (same renderer as zebraconf -mode profile)")
		traceIn = flag.String("trace", "", "with -profile: the run's JSONL trace file")
		events  = flag.String("events", "", "with -profile: the run's JSONL event log")
		perfIn  = flag.String("perf", "", "with -profile: the run's JSONL perf sample series")
	)
	flag.Parse()

	if *diff {
		os.Exit(runDiff(*ledgerD, *appName, *runs))
	}
	if *profile {
		os.Exit(runProfile(*traceIn, *events, *perfIn))
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	var results []*campaign.Result
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		fmt.Fprintf(os.Stderr, "reportgen: decode %s: %v\n", *in, err)
		os.Exit(1)
	}
	report.SortResults(results)

	if *explain {
		// Same renderer as `zebraconf -mode explain`: the archived JSON
		// carries the evidence records, so triage works offline too.
		for _, res := range results {
			if err := report.Explain(os.Stdout, res, *param); err != nil {
				fmt.Fprintln(os.Stderr, "reportgen:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("## Campaign results")
	fmt.Println()
	for _, res := range results {
		report.Markdown(os.Stdout, res)
	}
	s := report.Summarize(results)
	uniq, trueOnes := report.UniqueParams(results)
	fmt.Printf("**Overall:** %d reports, %d distinct parameters (%d true problems, %d false positives as scored by the registries' ground truth), %d unit-test executions.\n",
		s.Reported, uniq, trueOnes, uniq-trueOnes, s.Executed)
}

// runProfile mirrors `zebraconf -mode profile` through the shared
// flight renderer, for archived artifacts with no zebraconf build
// around. Exit 0 on success, 2 on usage or load errors.
func runProfile(tracePath, eventsPath, perfPath string) int {
	if tracePath == "" && eventsPath == "" && perfPath == "" {
		fmt.Fprintln(os.Stderr, "reportgen: -profile needs at least one artifact: -trace, -events, or -perf")
		return 2
	}
	run, err := flight.Load(tracePath, eventsPath, perfPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reportgen:", err)
		return 2
	}
	flight.RenderProfile(os.Stdout, flight.Analyze(run))
	return 0
}

// runDiff mirrors `zebraconf -mode diff`: exit 0 when the reported sets
// are identical, 1 on any delta, 2 on usage errors.
func runDiff(dir, app, runs string) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "reportgen: -diff needs -ledger <dir>")
		return 2
	}
	if app == "" && runs == "" {
		fmt.Fprintln(os.Stderr, "reportgen: -diff compares one app's runs; pass -app (or explicit -diff-runs)")
		return 2
	}
	recs, err := ledger.Read(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reportgen:", err)
		return 2
	}
	a, b, err := ledger.PickPair(recs, app, runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reportgen:", err)
		return 2
	}
	d := ledger.Diff(a, b)
	d.Render(os.Stdout)
	if d.Clean() {
		return 0
	}
	return 1
}
