package main

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/server"
	"zebraconf/internal/obs"
)

// runServe implements -mode serve: the campaign-as-a-service daemon.
// It blocks until SIGINT/SIGTERM, draining the queue and aborting the
// running campaign on the way out.
func runServe(listen, workerListen, token, stateDir string, cacheMax int64) int {
	observer := obs.New()
	observer.GaugeSet(obs.MBuildInfo, 1, "version", buildVersion(), "go", runtime.Version())
	srv, err := server.New(server.Options{
		Addr:          listen,
		WorkerAddr:    workerListen,
		Token:         token,
		StateDir:      stateDir,
		CacheMaxBytes: cacheMax,
		Resolve:       apps.ByName,
		Obs:           observer,
		Logw:          os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf serve:", err)
		return 1
	}
	if token == "" {
		fmt.Fprintln(os.Stderr, "[zebraconf serve] warning: no -token; workers and API are unauthenticated (loopback testing only)")
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	closed := make(chan struct{})
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "[zebraconf serve] signal received; shutting down")
		srv.Close()
		close(closed)
	}()
	if err := srv.Serve(nil); err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf serve:", err)
		srv.Close()
		return 1
	}
	<-closed
	return 0
}

// runSubmit implements -mode submit: POST one campaign and print its ID
// on stdout (one token, machine-readable — scripts capture it for
// -mode watch/cancel). With -wait it then polls to a terminal state.
func runSubmit(base, token string, req server.SubmitRequest, wait bool, every time.Duration) int {
	if base == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode submit needs -server URL")
		return 2
	}
	if req.App == "" || req.App == "all" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode submit submits one campaign; pass a single -app")
		return 2
	}
	cl := &server.Client{Base: normalizeAddr(base), Token: token}
	id, err := cl.Submit(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 1
	}
	fmt.Println(id)
	fmt.Fprintf(os.Stderr, "[zebraconf] submitted campaign %s (app %s) to %s\n", id, req.App, base)
	if !wait {
		return 0
	}
	d, err := cl.Wait(id, every, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "[zebraconf] campaign %s: %s\n", id, d.State)
	if d.State != server.StateDone {
		if d.Error != "" {
			fmt.Fprintln(os.Stderr, "zebraconf:", d.Error)
		}
		return 1
	}
	return 0
}

// runCancelCampaign implements -mode cancel.
func runCancelCampaign(base, token, id string) int {
	if base == "" || id == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode cancel needs -server URL and -campaign ID")
		return 2
	}
	cl := &server.Client{Base: normalizeAddr(base), Token: token}
	state, err := cl.Cancel(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "[zebraconf] campaign %s: %s\n", id, state)
	return 0
}

// runWatchServer implements -mode watch -server URL -campaign ID:
// the same live dashboard as the -http-addr path, fed from the campaign
// service's detail endpoint instead of a run-local debug server.
func runWatchServer(base, token, id string, interval time.Duration) int {
	if id == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode watch -server needs -campaign ID")
		return 2
	}
	if interval <= 0 {
		interval = time.Second
	}
	cl := &server.Client{Base: normalizeAddr(base), Token: token}
	for {
		d, err := cl.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zebraconf:", err)
			return 1
		}
		header := fmt.Sprintf("%s/%s [%s]", normalizeAddr(base), id, d.State)
		if d.State == server.StateQueued && d.QueuePosition > 0 {
			header += fmt.Sprintf(" queue #%d", d.QueuePosition)
		}
		if d.Status != nil {
			// The service detail carries no sampler history; the sparkline
			// rows only render on the run-local -http-addr path.
			renderWatch(os.Stdout, header, *d.Status, d.Workers, obs.PerfAPI{})
		}
		switch d.State {
		case server.StateDone:
			return 0
		case server.StateFailed, server.StateCancelled:
			if d.Error != "" {
				fmt.Fprintln(os.Stderr, "zebraconf:", d.Error)
			}
			return 1
		}
		time.Sleep(interval)
	}
}
