package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"time"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/ledger"
)

// buildVersion labels the zebraconf_build_info metric. Module builds
// carry a VCS-stamped version; plain `go build` in a work tree reports
// devel.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// ledgerRecord summarizes one finished campaign as a run-ledger entry.
func ledgerRecord(res *campaign.Result, seed int64, start time.Time, workers int, flags map[string]string) ledger.Record {
	names := make([]string, 0, len(res.Reported))
	lines := make([]string, 0, len(res.Reported))
	var evRecords int
	var evBytes int64
	for _, p := range res.Reported {
		names = append(names, p.Param)
		lines = append(lines, p.Param+"\x00"+p.Truth.String())
		if p.Evidence != nil {
			evRecords++
			if b, err := json.Marshal(p.Evidence); err == nil {
				evBytes += int64(len(b))
			}
		}
	}
	sort.Strings(names)
	return ledger.Record{
		RunID:            ledger.NewRunID(res.App, seed, start, os.Getpid()),
		Start:            start.UTC().Format(time.RFC3339),
		App:              res.App,
		Seed:             seed,
		Flags:            flags,
		FlagsDigest:      ledger.DigestFlags(flags),
		Reported:         names,
		ReportedDigest:   ledger.DigestReported(lines),
		Tests:            res.NumTests,
		Params:           res.NumParams,
		TruePositives:    res.TruePositives,
		FalsePositives:   res.FalsePositives,
		Missed:           len(res.Missed),
		Executions:       res.Counts.Executed,
		ExecutionsSaved:  res.Counts.ExecutionsSaved,
		MakespanSeconds:  res.Elapsed.Seconds(),
		Workers:          workers,
		WorkerStalls:     res.WorkerStalls,
		SkippedTests:     len(res.SkippedTests),
		QuarantinedItems: len(res.QuarantinedItems),
		EvidenceRecords:  evRecords,
		EvidenceBytes:    evBytes,
	}
}

// runDiff implements -mode diff: compare two ledger records and report
// reported-set regressions and makespan deltas. Exit 0 when the
// reported sets are identical, 1 on any delta, 2 on usage errors.
func runDiff(dir, app, runs string) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode diff needs -ledger <dir>")
		return 2
	}
	filter := app
	if filter == "all" {
		filter = ""
	}
	if filter == "" && runs == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode diff compares one app's runs; pass a single -app (or explicit -diff-runs)")
		return 2
	}
	recs, err := ledger.Read(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 2
	}
	a, b, err := ledger.PickPair(recs, filter, runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 2
	}
	d := ledger.Diff(a, b)
	d.Render(os.Stdout)
	if d.Clean() {
		return 0
	}
	return 1
}
