package main

import (
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/ledger"
)

// buildVersion labels the zebraconf_build_info metric. Module builds
// carry a VCS-stamped version; plain `go build` in a work tree reports
// devel.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// ledgerRecord summarizes one finished campaign as a run-ledger entry.
func ledgerRecord(res *campaign.Result, seed int64, start time.Time, workers int, flags map[string]string) ledger.Record {
	return ledger.Summarize(res, seed, start, workers, flags)
}

// runDiff implements -mode diff: compare two ledger records and report
// reported-set regressions and makespan deltas. Exit 0 when the
// reported sets are identical, 1 on any delta, 2 on usage errors.
func runDiff(dir, app, runs string) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode diff needs -ledger <dir>")
		return 2
	}
	filter := app
	if filter == "all" {
		filter = ""
	}
	if filter == "" && runs == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode diff compares one app's runs; pass a single -app (or explicit -diff-runs)")
		return 2
	}
	recs, err := ledger.Read(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 2
	}
	a, b, err := ledger.PickPair(recs, filter, runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 2
	}
	d := ledger.Diff(a, b)
	d.Render(os.Stdout)
	if d.Clean() {
		return 0
	}
	return 1
}
