package main

import (
	"encoding/json"
	"fmt"
	"os"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/harness"
)

// saveCoverage persists the campaign's read-coverage index and replayable
// item store into the ledger directory, folding in whatever of the
// previous run still stands: entries for deselected tests (which ran
// nothing this time, so only the prior entry knows their reads) and for
// replayed tests (whose prior entry is by construction still valid).
// Without the Adopt step a warm selection run would drop the very
// entries it selected on, and the next run would oscillate back to full
// dispatch.
func saveCoverage(dir string, app *harness.App, opts campaign.Options, res *campaign.Result,
	plan *campaign.RerunPlan, prevIx *coverage.Index, prevItems *coverage.ItemStore, exitCode *int) {
	if res.Coverage == nil {
		return
	}
	schema := campaign.OverrideApp(app, opts.Overrides).Schema()
	ix := coverage.Build(app.Name, opts.Seed, opts.CoverageKey, res.Coverage, schema)
	carry := append([]string(nil), res.DeselectedTests...)
	if plan != nil {
		carry = append(carry, plan.Replayed...)
	}
	ix.Adopt(prevIx, carry)

	st := &coverage.ItemStore{App: app.Name, Items: make(map[string]json.RawMessage)}
	for _, it := range res.Items {
		if it.Replayed {
			continue // the carried-forward raw record is the source of truth
		}
		if b, err := json.Marshal(it); err == nil {
			st.Items[it.Test] = b
		}
	}
	if prevItems != nil {
		for _, t := range carry {
			if raw, ok := prevItems.Items[t]; ok && st.Items[t] == nil {
				st.Items[t] = raw
			}
		}
	}

	if err := coverage.Save(dir, ix); err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf: writing coverage index:", err)
		*exitCode = 1
		return
	}
	if err := coverage.SaveItems(dir, st); err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf: writing coverage item store:", err)
		*exitCode = 1
	}
}
