// Command zebraconf runs the ZebraConf pipeline over the mini
// applications: pre-run statistics, full heterogeneous campaigns, and the
// paper's tables.
//
// Usage:
//
//	zebraconf -mode stats                      # Tables 1, 2, 4
//	zebraconf -mode run -app minihdfs          # full campaign on one app
//	zebraconf -mode run -app all -json out.json
//	zebraconf -mode run -app miniyarn -params yarn.http.policy -tests TestTimelineQuery
//	zebraconf -mode run -app minihdfs -trace /tmp/t.jsonl -metrics /tmp/m.prom -progress
//	zebraconf -mode run -app minihdfs -workers 4 -seed 7 -checkpoint /tmp/c.jsonl
//	zebraconf -mode run -app minihdfs -workers 4 -seed 7 -resume /tmp/c.jsonl
//	zebraconf -mode run -app minihdfs -http :6060 -events /tmp/e.jsonl -ledger /tmp/runs
//	zebraconf -mode watch -http-addr :6060            # live terminal dashboard
//	zebraconf -mode diff -ledger /tmp/runs -app minihdfs
//	zebraconf -mode run -app minihdfs -perf /tmp/p.jsonl -trace /tmp/t.jsonl -events /tmp/e.jsonl
//	zebraconf -mode profile -trace /tmp/t.jsonl -events /tmp/e.jsonl -perf /tmp/p.jsonl
//	zebraconf -mode trends -ledger /tmp/runs -app minihdfs
//	zebraconf -mode serve -listen :8080 -worker-listen :9090 -token s3cret -state /var/lib/zebraconf
//	zebraconf -worker -connect host:9090 -token s3cret          # TCP worker joins the service
//	zebraconf -mode submit -server http://host:8080 -token s3cret -app minihdfs -workers 2
//	zebraconf -mode watch -server http://host:8080 -token s3cret -campaign c0001
//	zebraconf -mode cancel -server http://host:8080 -token s3cret -campaign c0001
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"zebraconf/internal/apps"
	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/diskcache"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/core/flight"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/ledger"
	"zebraconf/internal/core/report"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/sched"
	"zebraconf/internal/core/server"
	"zebraconf/internal/core/stats"
	"zebraconf/internal/obs"
)

func main() {
	var (
		mode       = flag.String("mode", "run", "stats | run | rerun | explain | watch | diff | profile | trends | suggest-deps | serve | submit | cancel")
		appName    = flag.String("app", "all", "application name or 'all'")
		params     = flag.String("params", "", "comma-separated parameter subset")
		tests      = flag.String("tests", "", "comma-separated test subset")
		parallel   = flag.Int("parallel", 0, "concurrent unit tests (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 0, "base seed mixed into every trial seed (reproducible campaigns)")
		jsonOut    = flag.String("json", "", "write campaign results as JSON to this file")
		noPool     = flag.Bool("no-pool", false, "disable pooled testing (ablation)")
		execCache  = flag.Bool("exec-cache", true, "memoize identical unit-test executions (canonically-seeded homogeneous arms and pooled runs); -exec-cache=false re-runs everything (ablation)")
		noGate     = flag.Bool("no-gate", false, "disable first-trial gating (ablation)")
		threadOnly = flag.Bool("thread-only", false, "use thread-based read attribution (the paper's failed attempt #3)")
		maxPool    = flag.Int("max-pool", 0, "max parameters per pool (0 = unbounded)")
		traceOut   = flag.String("trace", "", "write JSONL trace spans to this file")
		metricsOut = flag.String("metrics", "", "write Prometheus text metrics to this file at exit")
		progress   = flag.Bool("progress", false, "render live campaign progress to stderr")
		httpAddr   = flag.String("http", "", "serve /metrics, expvar, and pprof on this address (e.g. :6060)")

		// Verdict forensics (internal/core/forensics).
		evidenceMax = flag.Int64("evidence-max", forensics.DefaultBudget, "campaign-wide evidence byte budget (per worker with -workers): records degrade to verdict-only past it; 0 disables forensic capture, negative is unlimited")
		onlyParam   = flag.String("param", "", "with -mode explain: report only this parameter (error if it was not reported)")

		// Sequential confirmation (internal/core/stats).
		seqFlag   = flag.String("seq", "sprt", "sequential confirmation mode: sprt (SPRT convict/futility boundaries) | gsf (group-sequential Fisher, alpha-spending) | fixed (full-round ablation)")
		seqMargin = flag.Float64("seq-margin", runner.DefaultSeqMargin, "budget reallocation: parameters ending within this factor x significance receive extension rounds funded by early stops; 0 disables")

		// Adaptive scheduling (internal/core/sched).
		schedFlag   = flag.String("sched", "lpt", "phase-2 dispatch order: lpt (longest-predicted first) | fifo (ablation)")
		stream      = flag.Bool("stream", true, "stream work items into phase 2 as each pre-run finishes; -stream=false restores the phase barrier (ablation)")
		speculate   = flag.Float64("speculate", 1.5, "with -workers: re-issue an item held longer than this factor x its predicted duration once the queue drains; 0 disables (ablation)")
		profilePath = flag.String("profile", "", "duration profile JSON: read for predictions if present, rewritten with this campaign's timings at exit")
		quarantine  = flag.Int("quarantine", 3, "distinct confirming tests before a parameter is live-quarantined mid-campaign (§4 frequent-failer rule); 0 disables the pruning (ablation)")

		// Coverage-driven selection & incremental reruns (internal/core/coverage).
		selectFlag = flag.String("select", "coverage", "phase-2 test selection: coverage (skip tests whose indexed read set is disjoint from the campaign's params; needs a warm -ledger index) | all (dispatch to every test; ablation)")
		overrides  = flag.String("override", "", "comma-separated param=value schema default overrides (simulates a changed seeded default; drives -mode rerun invalidation)")

		// Distributed execution (internal/core/dist).
		workers        = flag.Int("workers", 0, "shard the campaign across N worker subprocesses (0 = in-process)")
		workerMode     = flag.Bool("worker", false, "run as a campaign worker speaking NDJSON on stdio (spawned by -workers; not for interactive use)")
		workerParallel = flag.Int("worker-parallel", 0, "concurrent work items inside each worker subprocess (0 = split the -parallel budget across workers)")
		checkpoint     = flag.String("checkpoint", "", "journal completed work items to this JSONL file (with -workers)")
		resume         = flag.String("resume", "", "skip work items already completed in this checkpoint journal (with -workers)")
		itemTimeout    = flag.Duration("item-timeout", dist.DefaultItemTimeout, "per-work-item deadline before its worker is killed")
		itemRetries    = flag.Int("item-retries", dist.DefaultItemRetries, "crashed/timed-out work item retries before quarantine")

		// Live introspection & run ledger (internal/obs, internal/core/ledger).
		eventsOut  = flag.String("events", "", "write the JSONL campaign event log (flight recorder) to this file")
		perfOut    = flag.String("perf", "", "write the JSONL perf sample series (periodic runtime + metrics snapshots) to this file; also analyzed offline by -mode profile")
		perfPeriod = flag.Duration("perf-period", obs.DefaultSamplePeriod, "perf sampler snapshot period (with -perf or -http)")
		ledgerDir  = flag.String("ledger", "", "append one run-summary record per campaign to <dir>/ledger.jsonl (compared by -mode diff)")
		pprofRates = flag.Int("pprof-rates", 0, "sample mutex contention and blocking at rate N for the -http pprof endpoints (0 = off)")
		heartbeat  = flag.Duration("heartbeat", time.Second, "worker heartbeat period with -workers; 0 disables heartbeats and stall detection")
		httpTarget = flag.String("http-addr", "", "with -mode watch: the -http address of the running campaign to poll")
		watchEvery = flag.Duration("watch-interval", time.Second, "with -mode watch: poll interval")
		diffRuns   = flag.String("diff-runs", "", "with -mode diff: two comma-separated run IDs (or unique prefixes) to compare instead of the app's last two")

		// Cross-run regression detection (internal/core/flight).
		trendRuns      = flag.Int("trend-runs", flight.DefaultTrendRuns, "with -mode trends: trailing runs to compare (the newest against up to N-1 predecessors)")
		trendThreshold = flag.Float64("trend-threshold", flight.DefaultTrendThreshold, "with -mode trends: relative drift past which a metric is flagged (strictly greater than)")

		// Campaign service (internal/core/server) and the persistent
		// execution cache (internal/core/diskcache).
		serverURL    = flag.String("server", "", "campaign service URL for -mode submit|watch|cancel (e.g. http://host:8080)")
		campaignID   = flag.String("campaign", "", "campaign ID for -mode watch|cancel with -server")
		tokenFlag    = flag.String("token", "", "shared bearer token: -mode serve requires it from clients and workers; submit/watch/cancel and -worker -connect send it")
		listenAddr   = flag.String("listen", ":8080", "with -mode serve: REST API listen address")
		workerListen = flag.String("worker-listen", ":9090", "with -mode serve: TCP worker gateway listen address")
		stateDir     = flag.String("state", "zebraconf-state", "with -mode serve: persistent state directory (disk cache, run ledger, duration profile, per-campaign journals)")
		connectAddr  = flag.String("connect", "", "with -worker: connect to a campaign service's worker gateway at host:port instead of speaking NDJSON on stdio")
		diskCache    = flag.String("disk-cache", "", "content-addressed disk execution cache directory, shared across runs (-mode serve always uses <state>/cache)")
		cacheMax     = flag.Int64("cache-max-bytes", 0, "disk cache size cap in bytes before LRU eviction (0 = 256 MiB)")
		waitDone     = flag.Bool("wait", false, "with -mode submit: block until the campaign reaches a terminal state, exit nonzero unless done")
	)
	flag.Parse()

	// Deferred exit so error paths discovered mid-run (e.g. every
	// requested test unknown) still flush the metrics/trace files and
	// shut the debug server down: registered first, this defer runs
	// last, after all the cleanup defers below.
	exitCode := 0
	defer func() {
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()

	if *workerMode {
		if *connectAddr != "" {
			// TCP worker: dial the service's gateway and serve campaigns
			// over the same NDJSON protocol, reconnecting between them.
			err := dist.ConnectWorker(*connectAddr, dist.ConnectOptions{
				Token: *tokenFlag,
				Env:   dist.WorkerEnv{DiskCacheDir: *diskCache, DiskCacheMaxBytes: *cacheMax},
				Logw:  os.Stderr,
			}, apps.ByName)
			if err != nil {
				fmt.Fprintln(os.Stderr, "zebraconf worker:", err)
				os.Exit(1)
			}
			return
		}
		out := bufio.NewWriter(os.Stdout)
		defer out.Flush()
		env := dist.WorkerEnv{DiskCacheDir: *diskCache, DiskCacheMaxBytes: *cacheMax}
		if err := dist.ServeWorkerEnv(os.Stdin, out, apps.ByName, env); err != nil {
			fmt.Fprintln(os.Stderr, "zebraconf worker:", err)
			os.Exit(1)
		}
		return
	}

	// watch, diff, profile, and trends are pure introspection modes:
	// they read a running campaign's status API, a ledger directory, or
	// a finished run's artifacts, and never execute anything, so they
	// return before the observer machinery assembles.
	switch *mode {
	case "watch":
		if *serverURL != "" {
			exitCode = runWatchServer(*serverURL, *tokenFlag, *campaignID, *watchEvery)
		} else {
			exitCode = runWatch(*httpTarget, *watchEvery)
		}
		return
	case "diff":
		exitCode = runDiff(*ledgerDir, *appName, *diffRuns)
		return
	case "profile":
		exitCode = runProfile(*traceOut, *eventsOut, *perfOut)
		return
	case "trends":
		exitCode = runTrends(*ledgerDir, *appName, *trendRuns, *trendThreshold)
		return
	case "serve":
		exitCode = runServe(*listenAddr, *workerListen, *tokenFlag, *stateDir, *cacheMax)
		return
	case "submit":
		req := server.SubmitRequest{
			App:                *appName,
			Params:             splitList(*params),
			Tests:              splitList(*tests),
			Seed:               *seed,
			Workers:            *workers,
			Parallel:           *parallel,
			WorkerParallel:     *workerParallel,
			MaxPool:            *maxPool,
			NoPool:             *noPool,
			NoGate:             *noGate,
			ExecCache:          execCache,
			Sched:              *schedFlag,
			Seq:                *seqFlag,
			SeqMargin:          seqMargin,
			Stream:             stream,
			Speculate:          speculate,
			Quarantine:         quarantine,
			EvidenceMax:        evidenceMax,
			ItemTimeoutSeconds: itemTimeout.Seconds(),
			ItemRetries:        itemRetries,
			HeartbeatMS:        int(heartbeat.Milliseconds()),
		}
		exitCode = runSubmit(*serverURL, *tokenFlag, req, *waitDone, *watchEvery)
		return
	case "cancel":
		exitCode = runCancelCampaign(*serverURL, *tokenFlag, *campaignID)
		return
	}

	if *pprofRates > 0 {
		runtime.SetMutexProfileFraction(*pprofRates)
		runtime.SetBlockProfileRate(*pprofRates)
	}

	// Observability is assembled only when asked for; a nil Observer
	// keeps every instrumented path on its no-op branch.
	var observer *obs.Observer
	if *traceOut != "" || *metricsOut != "" || *progress || *httpAddr != "" || *eventsOut != "" || *ledgerDir != "" || *perfOut != "" {
		observer = obs.New()
		// The status tracker costs a few counters per item either way;
		// attach it whenever any observability is on so /api answers and
		// ledger stall counts are available without a dedicated flag.
		observer.Status = obs.NewStatus()
		observer.GaugeSet(obs.MBuildInfo, 1, "version", buildVersion(), "go", runtime.Version())
		if *eventsOut != "" {
			f, err := os.Create(*eventsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			observer.Events = obs.NewEventLog(f)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			observer.Tracer = obs.NewTracer(f)
		}
		if *progress {
			observer.Progress = obs.NewProgress(os.Stderr, 2*time.Second)
		}
		// The perf sampler runs whenever its series was asked for (-perf)
		// or could be served live (-http's /api/perf); the JSONL stream
		// only with -perf. Stop is deferred after the file's Close defer,
		// so the final sample lands before the stream closes.
		if *perfOut != "" || *httpAddr != "" {
			var pw *os.File
			if *perfOut != "" {
				f, err := os.Create(*perfOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				defer f.Close()
				pw = f
			}
			var w io.Writer
			if pw != nil {
				w = pw
			}
			observer.Sampler = obs.NewSampler(observer, *perfPeriod, w, 0)
			observer.Sampler.Start()
			defer observer.Sampler.Stop()
		}
		if *httpAddr != "" {
			addr, shutdown, err := obs.ServeDebug(*httpAddr, observer)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer shutdown()
			fmt.Fprintf(os.Stderr, "[zebraconf] debug server on http://%s (/api/campaign, /api/workers, /api/params, /metrics, /debug/vars, /debug/pprof)\n", addr)
		}
		if *metricsOut != "" {
			// Create eagerly so a bad path fails before the campaign,
			// not after it has run for minutes.
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer func() {
				if err := observer.Metrics.WritePrometheus(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
				f.Close()
			}()
		}
	}

	var selected []*harness.App
	if *appName == "all" {
		selected = apps.All()
	} else {
		app, err := apps.ByName(*appName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		selected = []*harness.App{app}
	}

	switch *mode {
	case "suggest-deps":
		// The paper's future-work extension: extract dependency rules by
		// diffing read sets across a parameter's candidate values.
		for _, app := range selected {
			run := runner.New(app, runner.Options{BaseSeed: *seed})
			targets := splitList(*params)
			if len(targets) == 0 {
				targets = app.Schema().Names()
			}
			testNames := splitList(*tests)
			if len(testNames) == 0 {
				testNames = app.TestNames()
			}
			for _, name := range testNames {
				test, err := app.Test(name)
				if err != nil {
					continue
				}
				for _, s := range run.SuggestDependencies(test, app.Schema(), targets) {
					fmt.Printf("%s/%s: when %s=%s the test also reads %s\n",
						app.Name, s.Test, s.Param, s.When, strings.Join(s.ThenParams, ", "))
				}
			}
		}
	case "stats":
		report.Table1(os.Stdout, selected)
		fmt.Println()
		report.Table2(os.Stdout, selected)
		fmt.Println()
		report.Table4(os.Stdout, selected)
	case "run", "explain", "rerun":
		// explain shares run's entire execution path — same campaign, same
		// flags — and swaps the rendered report for the per-parameter
		// forensics triage (evidence records attach to verdicts either way;
		// explain just reads them back out). rerun shares it too, but first
		// partitions the suite against the previous ledger's coverage index
		// and replays every test whose digested inputs are unchanged.
		explain := *mode == "explain"
		rerunMode := *mode == "rerun"
		if rerunMode && *ledgerDir == "" {
			fmt.Fprintln(os.Stderr, "zebraconf: -mode rerun needs -ledger (the directory holding the previous run's coverage index and item store)")
			os.Exit(2)
		}
		if *selectFlag != "coverage" && *selectFlag != "all" {
			fmt.Fprintf(os.Stderr, "zebraconf: bad -select %q (want coverage or all)\n", *selectFlag)
			os.Exit(2)
		}
		overrideMap := make(map[string]string)
		if *overrides != "" {
			for _, kv := range strings.Split(*overrides, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || strings.TrimSpace(k) == "" {
					fmt.Fprintf(os.Stderr, "zebraconf: bad -override entry %q (want param=value)\n", kv)
					os.Exit(2)
				}
				overrideMap[strings.TrimSpace(k)] = v
			}
		}
		policy, err := sched.ParsePolicy(*schedFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		seqMode, err := stats.ParseSeqMode(*seqFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// The duration profile is read for predictions (LPT ordering,
		// speculation deadlines) and updated in place with this campaign's
		// timings, so every run sharpens the next one's schedule.
		profile, err := sched.LoadProfile(*profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Live quarantine prunes based on completion order, so -quarantine 0
		// (a threshold no campaign reaches) is the knob that makes two
		// schedules byte-comparable.
		quarThreshold := *quarantine
		if quarThreshold <= 0 {
			quarThreshold = math.MaxInt32
		}
		opts := campaign.Options{
			Parallelism:         *parallel,
			MaxPool:             *maxPool,
			DisablePooling:      *noPool,
			DisableGate:         *noGate,
			DisableExecCache:    !*execCache,
			Params:              splitList(*params),
			Tests:               splitList(*tests),
			Seed:                *seed,
			Seq:                 seqMode,
			SeqMargin:           *seqMargin,
			SchedPolicy:         policy,
			Stream:              *stream,
			Profile:             profile,
			QuarantineThreshold: quarThreshold,
			EvidenceMax:         *evidenceMax,
			SelectCoverage:      *selectFlag == "coverage",
			Overrides:           overrideMap,
			Obs:                 observer,
		}
		if *threadOnly {
			opts.Strategy = agent.StrategyThreadOnly
		}
		// The persistent disk cache backs the in-process memo cache and,
		// with -workers, is served to workers through the coordinator's
		// shared tier and opened locally by each subprocess worker.
		var diskStore *diskcache.Store
		if *diskCache != "" && *execCache {
			store, err := diskcache.Open(*diskCache, *cacheMax, nil, observer)
			if err != nil {
				fmt.Fprintln(os.Stderr, "zebraconf: opening disk cache:", err)
				os.Exit(1)
			}
			diskStore = store
			opts.CacheBackend = store
		}
		var workerExe string
		if *workers > 0 {
			if len(selected) > 1 && (*checkpoint != "" || *resume != "") {
				fmt.Fprintln(os.Stderr, "-checkpoint/-resume journal one campaign; use a single -app")
				os.Exit(2)
			}
			exe, err := os.Executable()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			workerExe = exe
		}
		// A typo in -tests must not silently shrink the campaign: warn per
		// app, and when NO requested test exists anywhere, fail the run.
		requestedTests := splitList(*tests)
		anyTestResolved := len(requestedTests) == 0
		// The ledger's flags digest covers only execution-affecting flags,
		// so two runs differing purely in instrumentation (-events, -trace,
		// -http, -ledger itself…) diff clean.
		execFlags := map[string]string{
			"params":          *params,
			"tests":           *tests,
			"parallel":        fmt.Sprint(*parallel),
			"seed":            fmt.Sprint(*seed),
			"no-pool":         fmt.Sprint(*noPool),
			"exec-cache":      fmt.Sprint(*execCache),
			"no-gate":         fmt.Sprint(*noGate),
			"thread-only":     fmt.Sprint(*threadOnly),
			"max-pool":        fmt.Sprint(*maxPool),
			"sched":           *schedFlag,
			"seq":             *seqFlag,
			"seq-margin":      fmt.Sprint(*seqMargin),
			"stream":          fmt.Sprint(*stream),
			"speculate":       fmt.Sprint(*speculate),
			"quarantine":      fmt.Sprint(*quarantine),
			"evidence-max":    fmt.Sprint(*evidenceMax),
			"workers":         fmt.Sprint(*workers),
			"worker-parallel": fmt.Sprint(*workerParallel),
			"item-timeout":    itemTimeout.String(),
			"item-retries":    fmt.Sprint(*itemRetries),
			"select":          *selectFlag,
		}
		// The coverage environment key is that same digest: an index entry
		// is only replayed or trusted for selection when the current run's
		// execution-affecting flags match the run that recorded it.
		// -override is deliberately NOT part of it — an override changes
		// the per-parameter schema digests instead, so rerun invalidation
		// names the drifted parameter rather than the whole environment.
		opts.CoverageKey = ledger.DigestFlags(execFlags)
		var results []*campaign.Result
		for _, app := range selected {
			if !explain {
				fmt.Printf("=== campaign: %s (%d tests, %d parameters) ===\n",
					app.Name, len(app.Tests), app.Schema().Len())
			}
			if len(requestedTests) > 0 {
				var unknown []string
				for _, name := range requestedTests {
					if _, err := app.Test(name); err != nil {
						unknown = append(unknown, name)
					} else {
						anyTestResolved = true
					}
				}
				if len(unknown) > 0 {
					fmt.Fprintf(os.Stderr, "zebraconf: warning: %s: unknown test(s) in -tests: %s\n",
						app.Name, strings.Join(unknown, ", "))
				}
			}
			appOpts := opts
			// slots is the run's parallel execution budget, the
			// denominator of the perf summary's utilization.
			slots := *parallel
			if slots <= 0 {
				slots = campaign.DefaultParallelism()
			}
			var adapter *distAdapter
			if *workers > 0 {
				cfg := dist.ConfigFrom(opts)
				// With the coordinator tracing, workers trace each item
				// too; the coordinator stitches their fragments under its
				// own item spans so the file renders as one tree.
				cfg.TraceItems = *traceOut != ""
				cfg.HeartbeatMS = int(heartbeat.Milliseconds())
				if diskStore != nil {
					cfg.DiskCacheDir = *diskCache
					cfg.DiskCacheMaxBytes = *cacheMax
				}
				cfg.Parallel = *workerParallel
				if cfg.Parallel <= 0 {
					// Split the in-process concurrency budget across the
					// workers: total load — and with it the timing
					// behaviour of latency-sensitive tests — stays the
					// same no matter how many workers shard the campaign.
					total := *parallel
					if total <= 0 {
						total = campaign.DefaultParallelism()
					}
					cfg.Parallel = (total + *workers - 1) / *workers
				}
				slots = *workers * cfg.Parallel
				distOpts := dist.Options{
					App:                 app.Name,
					Workers:             *workers,
					WorkerCmd:           func() *exec.Cmd { return exec.Command(workerExe, "-worker") },
					Config:              cfg,
					CheckpointPath:      *checkpoint,
					ResumePath:          *resume,
					ItemTimeout:         *itemTimeout,
					ItemRetries:         *itemRetries,
					SchedPolicy:         policy,
					SpeculationFactor:   *speculate,
					Profile:             profile,
					QuarantineThreshold: quarThreshold,
					Obs:                 observer,
					Stderr:              os.Stderr,
				}
				if diskStore != nil {
					distOpts.SharedBackend = diskStore
				}
				coord := dist.New(distOpts)
				adapter = &distAdapter{coord: coord}
				appOpts.Distributor = adapter
			}
			start := time.Now()
			// A warm ledger directory carries the previous run's coverage
			// index (read edges + digests) and item store (replayable
			// per-test results); both are optional — a cold directory just
			// means a full run that seeds them.
			var prevIx *coverage.Index
			var prevItems *coverage.ItemStore
			if *ledgerDir != "" {
				var err error
				if prevIx, err = coverage.Load(*ledgerDir, app.Name); err != nil {
					fmt.Fprintln(os.Stderr, "zebraconf: reading coverage index:", err)
					os.Exit(1)
				}
				if prevItems, err = coverage.LoadItems(*ledgerDir, app.Name); err != nil {
					fmt.Fprintln(os.Stderr, "zebraconf: reading coverage item store:", err)
					os.Exit(1)
				}
				appOpts.CoverageIndex = prevIx
			}
			var res *campaign.Result
			var plan *campaign.RerunPlan
			if rerunMode {
				if prevIx == nil || prevItems == nil {
					fmt.Fprintf(os.Stderr, "[zebraconf] rerun %s: no previous coverage index in %s; running the full campaign\n",
						app.Name, *ledgerDir)
					res = campaign.Run(app, appOpts)
				} else {
					p := campaign.PlanRerun(app, appOpts, prevIx, prevItems)
					plan = &p
					fmt.Printf("[zebraconf] rerun %s: %d changed, %d replayed\n",
						app.Name, len(p.Changed), len(p.Replayed))
					for _, t := range p.Changed {
						why := strings.Join(p.Reasons[t], ", ")
						if why == "" {
							why = "new test or environment change"
						}
						fmt.Printf("[zebraconf] rerun changed %s (%s)\n", t, why)
					}
					res = campaign.Rerun(app, appOpts, p, prevItems)
				}
			} else {
				res = campaign.Run(app, appOpts)
			}
			if adapter != nil && adapter.run != nil {
				res.WorkerStalls = adapter.run.Stalls()
			}
			if explain {
				if err := report.Explain(os.Stdout, res, *onlyParam); err != nil {
					fmt.Fprintln(os.Stderr, "zebraconf:", err)
					exitCode = 2
				}
			} else {
				report.Full(os.Stdout, res)
				fmt.Println()
			}
			if *ledgerDir != "" {
				saveCoverage(*ledgerDir, app, appOpts, res, plan, prevIx, prevItems, &exitCode)
				rec := ledgerRecord(res, *seed, start, *workers, execFlags)
				rec.Perf = obs.SummarizePerf(observer, res.App, res.Elapsed.Seconds(), slots)
				if plan != nil {
					rec.ChangedTests = len(plan.Changed)
					rec.ReplayedTests = len(plan.Replayed)
				}
				if err := ledger.Append(*ledgerDir, rec); err != nil {
					fmt.Fprintln(os.Stderr, "zebraconf: writing run ledger:", err)
					exitCode = 1
				} else {
					fmt.Fprintf(os.Stderr, "[zebraconf] ledger: recorded run %s (%s) in %s\n",
						rec.RunID, res.App, *ledgerDir)
				}
			}
			results = append(results, res)
		}
		if *profilePath != "" {
			if err := profile.Save(*profilePath); err != nil {
				fmt.Fprintln(os.Stderr, "zebraconf: writing duration profile:", err)
				exitCode = 1
			}
		}
		if !anyTestResolved {
			fmt.Fprintln(os.Stderr, "zebraconf: error: none of the requested -tests exist in any selected application")
			exitCode = 2
		}
		if len(results) > 1 && !explain {
			s := report.Summarize(results)
			uniq, trueOnes := report.UniqueParams(results)
			fmt.Printf("=== overall: %d reports across apps (%d distinct parameters, %d true) — paper reports 57 -> 41 ===\n",
				s.Reported, uniq, trueOnes)
			var schemas []*confkit.Registry
			for _, app := range selected {
				schemas = append(schemas, app.Schema())
			}
			if missed := report.OverallMissed(results, schemas); len(missed) > 0 {
				fmt.Printf("=== overall missed (not found through any application): %s ===\n",
					strings.Join(missed, ", "))
			} else {
				fmt.Println("=== every seeded-unsafe parameter was found through at least one application ===")
			}
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			if err := report.JSON(f, results); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// distAdapter bridges the campaign's Distributor interface onto the dist
// coordinator's Start/Submit/Drain API. The campaign cannot produce a
// result without the distributed items, so a coordinator failure is
// fatal here.
type distAdapter struct {
	coord *dist.Coordinator
	run   *dist.Run
}

func (d *distAdapter) Begin(parent obs.SpanID, total int) {
	run, err := d.coord.Start(parent, total)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distributed campaign failed:", err)
		os.Exit(1)
	}
	d.run = run
}

func (d *distAdapter) Submit(item campaign.WorkItem) {
	d.run.Submit(item)
}

func (d *distAdapter) Drain() []campaign.ItemResult {
	res, err := d.run.Drain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "distributed campaign failed:", err)
		os.Exit(1)
	}
	return res
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
