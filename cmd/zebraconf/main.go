// Command zebraconf runs the ZebraConf pipeline over the mini
// applications: pre-run statistics, full heterogeneous campaigns, and the
// paper's tables.
//
// Usage:
//
//	zebraconf -mode stats                      # Tables 1, 2, 4
//	zebraconf -mode run -app minihdfs          # full campaign on one app
//	zebraconf -mode run -app all -json out.json
//	zebraconf -mode run -app miniyarn -params yarn.http.policy -tests TestTimelineQuery
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zebraconf/internal/apps"
	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/report"
	"zebraconf/internal/core/runner"
)

func main() {
	var (
		mode       = flag.String("mode", "run", "stats | run")
		appName    = flag.String("app", "all", "application name or 'all'")
		params     = flag.String("params", "", "comma-separated parameter subset")
		tests      = flag.String("tests", "", "comma-separated test subset")
		parallel   = flag.Int("parallel", 0, "concurrent unit tests (0 = GOMAXPROCS)")
		jsonOut    = flag.String("json", "", "write campaign results as JSON to this file")
		noPool     = flag.Bool("no-pool", false, "disable pooled testing (ablation)")
		noGate     = flag.Bool("no-gate", false, "disable first-trial gating (ablation)")
		threadOnly = flag.Bool("thread-only", false, "use thread-based read attribution (the paper's failed attempt #3)")
		maxPool    = flag.Int("max-pool", 0, "max parameters per pool (0 = unbounded)")
	)
	flag.Parse()

	var selected []*harness.App
	if *appName == "all" {
		selected = apps.All()
	} else {
		app, err := apps.ByName(*appName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		selected = []*harness.App{app}
	}

	switch *mode {
	case "suggest-deps":
		// The paper's future-work extension: extract dependency rules by
		// diffing read sets across a parameter's candidate values.
		for _, app := range selected {
			run := runner.New(app, runner.Options{})
			targets := splitList(*params)
			if len(targets) == 0 {
				targets = app.Schema().Names()
			}
			testNames := splitList(*tests)
			if len(testNames) == 0 {
				testNames = app.TestNames()
			}
			for _, name := range testNames {
				test, err := app.Test(name)
				if err != nil {
					continue
				}
				for _, s := range run.SuggestDependencies(test, app.Schema(), targets) {
					fmt.Printf("%s/%s: when %s=%s the test also reads %s\n",
						app.Name, s.Test, s.Param, s.When, strings.Join(s.ThenParams, ", "))
				}
			}
		}
	case "stats":
		report.Table1(os.Stdout, selected)
		fmt.Println()
		report.Table2(os.Stdout, selected)
		fmt.Println()
		report.Table4(os.Stdout, selected)
	case "run":
		opts := campaign.Options{
			Parallelism:    *parallel,
			MaxPool:        *maxPool,
			DisablePooling: *noPool,
			DisableGate:    *noGate,
			Params:         splitList(*params),
			Tests:          splitList(*tests),
		}
		if *threadOnly {
			opts.Strategy = agent.StrategyThreadOnly
		}
		var results []*campaign.Result
		for _, app := range selected {
			fmt.Printf("=== campaign: %s (%d tests, %d parameters) ===\n",
				app.Name, len(app.Tests), app.Schema().Len())
			res := campaign.Run(app, opts)
			report.Full(os.Stdout, res)
			fmt.Println()
			results = append(results, res)
		}
		if len(results) > 1 {
			s := report.Summarize(results)
			uniq, trueOnes := report.UniqueParams(results)
			fmt.Printf("=== overall: %d reports across apps (%d distinct parameters, %d true) — paper reports 57 -> 41 ===\n",
				s.Reported, uniq, trueOnes)
			var schemas []*confkit.Registry
			for _, app := range selected {
				schemas = append(schemas, app.Schema())
			}
			if missed := report.OverallMissed(results, schemas); len(missed) > 0 {
				fmt.Printf("=== overall missed (not found through any application): %s ===\n",
					strings.Join(missed, ", "))
			} else {
				fmt.Println("=== every seeded-unsafe parameter was found through at least one application ===")
			}
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			if err := report.JSON(f, results); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
