package main

import (
	"fmt"
	"os"

	"zebraconf/internal/core/flight"
	"zebraconf/internal/core/ledger"
)

// runProfile implements -mode profile: load a finished run's
// observability artifacts (the same -trace/-events/-perf paths the run
// was invoked with, now read instead of written) and render the offline
// profile — critical path, worker utilization, duration tails, savings
// attribution. Exit 0 on success, 2 on usage or load errors.
func runProfile(tracePath, eventsPath, perfPath string) int {
	if tracePath == "" && eventsPath == "" && perfPath == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode profile needs at least one artifact: -trace, -events, or -perf (the files a run wrote)")
		return 2
	}
	run, err := flight.Load(tracePath, eventsPath, perfPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 2
	}
	flight.RenderProfile(os.Stdout, flight.Analyze(run))
	return 0
}

// runTrends implements -mode trends: compare the newest ledger record
// against its recent predecessors with matching execution-affecting
// flags and flag metrics drifting past the noise threshold. Exit 0 when
// clean (including "nothing to compare"), 1 on any regression-direction
// drift, 2 on usage errors.
func runTrends(dir, app string, runs int, threshold float64) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode trends needs -ledger <dir>")
		return 2
	}
	filter := app
	if filter == "all" {
		filter = ""
	}
	recs, err := ledger.Read(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zebraconf:", err)
		return 2
	}
	t := flight.Trends(recs, filter, runs, threshold)
	flight.RenderTrends(os.Stdout, t)
	if t.Regressed() {
		return 1
	}
	return 0
}
