package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"zebraconf/internal/core/flight"
	"zebraconf/internal/obs"
)

// runWatch implements -mode watch: poll a running campaign's status API
// (-http on the campaign process, -http-addr here) and render a live
// terminal dashboard. Exits 0 when the campaign reports done — or when
// the server goes away after at least one successful poll, which is how
// a finished campaign normally looks from outside (the debug server
// shuts down with the process). A first poll that fails is an error:
// the address is wrong or nothing is running there.
func runWatch(addr string, interval time.Duration) int {
	if addr == "" {
		fmt.Fprintln(os.Stderr, "zebraconf: -mode watch needs -http-addr (the campaign's -http address)")
		return 2
	}
	base := normalizeAddr(addr)
	if interval <= 0 {
		interval = time.Second
	}
	client := &http.Client{Timeout: 5 * time.Second}
	polled := false
	for {
		var cs obs.CampaignStatus
		if err := getJSON(client, base+"/api/campaign", &cs); err != nil {
			if polled {
				fmt.Fprintf(os.Stderr, "[watch] %s is gone — campaign ended\n", base)
				return 0
			}
			fmt.Fprintf(os.Stderr, "zebraconf: polling %s: %v\n", base, err)
			return 1
		}
		var ws []obs.WorkerStatus
		_ = getJSON(client, base+"/api/workers", &ws) // workers are optional (in-process runs)
		// Perf is doubly optional: sampling may be off (503), and older
		// campaign builds predate the endpoint entirely (404). Either way
		// the dashboard just omits the sparkline rows.
		var pa obs.PerfAPI
		if err := getJSON(client, base+"/api/perf", &pa); err != nil {
			pa.History = nil
		}
		polled = true
		renderWatch(os.Stdout, base, cs, ws, pa)
		if cs.Done {
			return 0
		}
		time.Sleep(interval)
	}
}

// normalizeAddr turns the forms users paste (":6060", "host:6060", a
// full URL) into a base URL.
func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + addr
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func renderWatch(w io.Writer, base string, cs obs.CampaignStatus, ws []obs.WorkerStatus, pa obs.PerfAPI) {
	// Home the cursor and clear: a repaint, not a scroll.
	fmt.Fprint(w, "\x1b[H\x1b[2J")
	state := cs.Phase
	if cs.Done {
		state = "done"
	}
	fmt.Fprintf(w, "zebraconf watch · %s · app %s · phase %s\n\n", base, orDash(cs.App), state)

	items := cs.ItemsQueued + cs.ItemsRunning + cs.ItemsDone
	fmt.Fprintf(w, "  items      %s %d/%d done · %d running · %d queued\n",
		bar(cs.ItemsDone, items, 24), cs.ItemsDone, items, cs.ItemsRunning, cs.ItemsQueued)
	fmt.Fprintf(w, "  instances  %d/%d\n", cs.InstancesDone, cs.Instances)
	fmt.Fprintf(w, "  execs      %d (%.1f/s) · cache %.1f%% (%d saved) · spec %d runs / %d wins\n",
		cs.Executions, cs.ExecRate, 100*cs.CacheHitRate, cs.ExecutionsSaved,
		cs.SpeculativeRuns, cs.SpeculationWins)
	fmt.Fprintf(w, "  verdicts   safe=%d unsafe=%d filtered=%d homo-invalid=%d · %d unsafe params\n",
		cs.Safe, cs.Unsafe, cs.Filtered, cs.HomoInvalid, cs.UnsafeParams)
	fmt.Fprintf(w, "  elapsed    %s", fmtSecs(cs.ElapsedSeconds))
	if cs.Done {
		fmt.Fprintf(w, " · finished\n")
	} else if cs.EtaSeconds > 0 {
		fmt.Fprintf(w, " · eta %s\n", fmtSecs(cs.EtaSeconds))
	} else {
		fmt.Fprintf(w, " · eta —\n")
	}

	if len(pa.History) > 0 {
		util := make([]float64, len(pa.History))
		cache := make([]float64, len(pa.History))
		for i, s := range pa.History {
			util[i] = s.Utilization()
			cache[i] = s.CacheHitRate()
		}
		fmt.Fprintf(w, "  util       %s %.0f%% busy · cache %s (%d samples @ %dms)\n",
			flight.Sparkline(util, 1, 24), 100*util[len(util)-1],
			flight.Sparkline(cache, 1, 24), pa.Samples, pa.PeriodMS)
	}

	if len(ws) > 0 {
		fmt.Fprintf(w, "\n  %-5s %-8s %-9s %9s %7s %7s %6s %8s %6s\n",
			"slot", "pid", "state", "last-hb", "items", "execs", "gor", "heap", "stall")
		for _, wk := range ws {
			hb := "—"
			if wk.LastHeartbeatS >= 0 {
				hb = fmt.Sprintf("%.1fs ago", wk.LastHeartbeatS)
			}
			fmt.Fprintf(w, "  %-5d %-8d %-9s %9s %7d %7d %6d %8s %6d\n",
				wk.Slot, wk.PID, wk.State, hb, wk.ItemsDone, wk.Executions,
				wk.Goroutines, fmtBytes(wk.HeapBytes), wk.Stalls)
		}
	}
}

func bar(done, total, width int) string {
	if total <= 0 {
		return "[" + strings.Repeat(" ", width) + "]"
	}
	fill := done * width / total
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(" ", width-fill) + "]"
}

func fmtSecs(s float64) string {
	d := time.Duration(s * float64(time.Second)).Round(time.Second)
	return d.String()
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}
