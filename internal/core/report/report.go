// Package report renders campaign results as the paper's tables (Tables
// 1–5 analogs) in plain text and JSON, shared by the CLI tools and the
// benchmark harness.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/harness"
)

// Table1 prints per-application statistics (paper Table 1): unit tests and
// application-specific parameters.
func Table1(w io.Writer, apps []*harness.App) {
	fmt.Fprintf(w, "Table 1 — application statistics\n")
	fmt.Fprintf(w, "%-12s %12s %12s %15s %12s\n", "app", "#unit tests", "#parameters", "#seeded-unsafe", "#FP-traps")
	for _, app := range apps {
		schema := app.Schema()
		fmt.Fprintf(w, "%-12s %12d %12d %15d %12d\n", app.Name, len(app.Tests), schema.Len(),
			schema.TruthCount(confkit.SafetyUnsafe), schema.TruthCount(confkit.SafetyFalsePositive))
	}
}

// Table2 prints the node types per application (paper Table 2).
func Table2(w io.Writer, apps []*harness.App) {
	fmt.Fprintf(w, "Table 2 — node types\n")
	for _, app := range apps {
		fmt.Fprintf(w, "%-12s %s\n", app.Name, strings.Join(app.NodeTypes, ", "))
	}
}

// Table4 prints the instrumentation effort (paper Table 4).
func Table4(w io.Writer, apps []*harness.App) {
	fmt.Fprintf(w, "Table 4 — modified lines to apply ZebraConf\n")
	fmt.Fprintf(w, "%-12s %s\n", "app", "node-class + conf-class annotations")
	for _, app := range apps {
		fmt.Fprintf(w, "%-12s %d + %d\n", app.Name, app.Annotations.NodeLines, app.Annotations.ConfLines)
	}
}

// Table5 prints the instance-reduction pipeline for one campaign (paper
// Table 5).
func Table5(w io.Writer, res *campaign.Result) {
	fmt.Fprintf(w, "Table 5 — test instances for %s\n", res.App)
	fmt.Fprintf(w, "  %-28s %12d\n", "Original", res.Counts.Original)
	fmt.Fprintf(w, "  %-28s %12d\n", "After pre-running unit tests", res.Counts.AfterPreRun)
	fmt.Fprintf(w, "  %-28s %12d\n", "After removing uncertainty", res.Counts.AfterUncertainty)
	fmt.Fprintf(w, "  %-28s %12d\n", "Executed (pooled campaign)", res.Counts.Executed)
	if res.Counts.ExecutionsSaved > 0 {
		total := res.Counts.Executed + res.Counts.ExecutionsSaved
		fmt.Fprintf(w, "  %-28s %12d (%.0f%% of %d)\n", "Saved by execution cache",
			res.Counts.ExecutionsSaved, 100*float64(res.Counts.ExecutionsSaved)/float64(total), total)
	}
}

// Findings prints the campaign's per-parameter verdicts, scored against
// ground truth the way the paper's manual analysis scored reports
// (Table 3 + §7.1).
func Findings(w io.Writer, res *campaign.Result) {
	fmt.Fprintf(w, "Findings for %s: %d reported (%d true, %d false positives), %d missed\n",
		res.App, len(res.Reported), res.TruePositives, res.FalsePositives, len(res.Missed))
	for _, r := range res.Reported {
		marker := "TRUE "
		if r.Truth != confkit.SafetyUnsafe {
			marker = "FALSE"
		}
		if r.StopReason != "" {
			fmt.Fprintf(w, "  [%s] %-55s p=%.2g tests=%d rounds=%d trials=%d stop=%s\n",
				marker, r.Param, r.MinP, len(r.Tests), r.Rounds, r.Trials, r.StopReason)
		} else {
			fmt.Fprintf(w, "  [%s] %-55s p=%.2g tests=%d\n", marker, r.Param, r.MinP, len(r.Tests))
		}
		if r.Why != "" {
			fmt.Fprintf(w, "         why: %s\n", r.Why)
		}
		if r.Example != "" {
			fmt.Fprintf(w, "         e.g: %s\n", clip(r.Example, 140))
		}
	}
	if len(res.Missed) > 0 {
		fmt.Fprintf(w, "  missed unsafe parameters: %s\n", strings.Join(res.Missed, ", "))
	}
	if len(res.SkippedTests) > 0 {
		fmt.Fprintf(w, "  WARNING: %d requested or pre-run test(s) skipped (unknown name or phase-2 lookup failure): %s\n",
			len(res.SkippedTests), strings.Join(res.SkippedTests, ", "))
	}
	if len(res.QuarantinedItems) > 0 {
		fmt.Fprintf(w, "  WARNING: %d work item(s) abandoned after repeated worker crashes/timeouts (coverage gap): %s\n",
			len(res.QuarantinedItems), strings.Join(res.QuarantinedItems, ", "))
	}
	if res.WorkerStalls > 0 {
		fmt.Fprintf(w, "  WARNING: %d worker stall(s) — workers silent past the heartbeat threshold; results were still accepted but the run's timing is suspect\n",
			res.WorkerStalls)
	}
	if res.LeakedGoroutines > 0 {
		fmt.Fprintf(w, "  WARNING: %d unit-test goroutine(s) abandoned after timeouts; they kept running past their tests\n",
			res.LeakedGoroutines)
	}
}

// Mapping prints the §6.2 mapping statistics.
func Mapping(w io.Writer, res *campaign.Result) {
	fmt.Fprintf(w, "Mapping statistics for %s: sharing %.1f%% of %d conf-using tests, %d/%d tests with uncertain objects (%d objects of %d)\n",
		res.App, 100*res.SharingRate(), res.ConfUsingTests,
		res.UncertainTests, res.NumTests, res.TotalUncertain, res.TotalConfs)
}

// Hypothesis prints the §7.2 hypothesis-testing statistics.
func Hypothesis(w io.Writer, res *campaign.Result) {
	fmt.Fprintf(w, "Hypothesis testing for %s: %d first-trial signals, %d filtered as nondeterministic, %d homogeneous-invalid, %d confirmation trials\n",
		res.App, res.FirstTrialSignals, res.FilteredByHypothesis, res.HomoInvalid, res.ConfirmationTrials)
}

// Full prints everything for one campaign.
func Full(w io.Writer, res *campaign.Result) {
	Table5(w, res)
	Findings(w, res)
	Mapping(w, res)
	Hypothesis(w, res)
	fmt.Fprintf(w, "Elapsed: %v\n", res.Elapsed)
}

// JSON marshals campaign results for reportgen.
func JSON(w io.Writer, results []*campaign.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// Markdown renders one campaign as a Markdown section for EXPERIMENTS.md.
func Markdown(w io.Writer, res *campaign.Result) {
	fmt.Fprintf(w, "### %s\n\n", res.App)
	fmt.Fprintf(w, "| stage | instances |\n|---|---|\n")
	fmt.Fprintf(w, "| Original | %d |\n", res.Counts.Original)
	fmt.Fprintf(w, "| After pre-run | %d |\n", res.Counts.AfterPreRun)
	fmt.Fprintf(w, "| After uncertainty | %d |\n", res.Counts.AfterUncertainty)
	fmt.Fprintf(w, "| Executed | %d |\n", res.Counts.Executed)
	fmt.Fprintf(w, "| Saved by execution cache | %d |\n\n", res.Counts.ExecutionsSaved)
	fmt.Fprintf(w, "Reported: %d (%d true / %d FP), missed: %d. Sharing %.1f%%. First-trial %d, filtered %d.\n\n",
		len(res.Reported), res.TruePositives, res.FalsePositives, len(res.Missed),
		100*res.SharingRate(), res.FirstTrialSignals, res.FilteredByHypothesis)
	if len(res.Reported) > 0 {
		fmt.Fprintf(w, "| parameter | verdict | why |\n|---|---|---|\n")
		for _, r := range res.Reported {
			verdict := "true problem"
			if r.Truth != confkit.SafetyUnsafe {
				verdict = "false positive"
			}
			fmt.Fprintf(w, "| `%s` | %s | %s |\n", r.Param, verdict, clip(r.Why, 120))
		}
		fmt.Fprintln(w)
	}
}

// Explain renders the campaign's verdict-forensics triage report as
// Markdown: one section per reported parameter carrying the evidence of
// its first convicting instance — canonical assignment, round-0 arms,
// trial counts, the first divergent config read, a harness-log excerpt,
// and the copy-pasteable repro command. This is the paper's §7.1 manual
// triage (57 reports hand-analyzed down to 41 true problems) made
// data-driven. Shared by `zebraconf -mode explain` and reportgen
// -explain, so the interactive and the archived reports render
// identically. param filters to one parameter ("" = all); naming a
// parameter the campaign did not report is an error, so scripts
// grepping the output fail loudly instead of reading an empty report.
func Explain(w io.Writer, res *campaign.Result, param string) error {
	reports := res.Reported
	if param != "" {
		var filtered []campaign.ParamReport
		for _, r := range res.Reported {
			if r.Param == param {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("report: parameter %q was not reported by the %s campaign", param, res.App)
		}
		reports = filtered
	}
	fmt.Fprintf(w, "# Verdict forensics — %s\n\n", res.App)
	fmt.Fprintf(w, "%d reported parameter(s): %d true problem(s), %d false positive(s) against seeded ground truth.\n\n",
		len(res.Reported), res.TruePositives, res.FalsePositives)
	for _, r := range reports {
		explainParam(w, r)
	}
	return nil
}

func explainParam(w io.Writer, r campaign.ParamReport) {
	fmt.Fprintf(w, "## `%s`\n\n", r.Param)
	verdict := "true problem"
	if r.Truth != confkit.SafetyUnsafe {
		verdict = "false positive"
	}
	fmt.Fprintf(w, "- Ground truth: **%s** (%s)\n", r.Truth, verdict)
	if r.Why != "" {
		fmt.Fprintf(w, "- Why: %s\n", r.Why)
	}
	fmt.Fprintf(w, "- Confirming tests (%d): %s\n", len(r.Tests), strings.Join(r.Tests, ", "))
	fmt.Fprintf(w, "- Min p-value: %.3g\n", r.MinP)
	if r.StopReason != "" {
		fmt.Fprintf(w, "- Confirmation: %d round(s), %d trials, stopped: %s\n", r.Rounds, r.Trials, r.StopReason)
	}
	ev := r.Evidence
	if ev == nil {
		fmt.Fprintf(w, "\n_No evidence record (campaign ran with -evidence-max 0)._\n\n")
		return
	}
	fmt.Fprintf(w, "- Convicting instance: `%s` — test `%s`, confirmation round %d, seed %d\n",
		ev.Instance, ev.Test, ev.Round, ev.Seed)
	fmt.Fprintf(w, "- Repro: `%s`\n", ev.Repro)
	fmt.Fprintf(w, "- Trials: hetero %d fail / %d pass, homo %d fail / %d pass\n",
		ev.HeteroFail, ev.HeteroPass, ev.HomoFail, ev.HomoPass)
	if ev.Msg != "" {
		fmt.Fprintf(w, "- Failure: %s\n", clip(ev.Msg, 200))
	}
	if ev.VerdictOnly {
		fmt.Fprintf(w, "\n_Record degraded to verdict-only: the campaign-wide -evidence-max budget was exhausted before this instance (log and read trace stripped)._\n\n")
		return
	}
	if len(ev.Assign) > 0 {
		fmt.Fprintf(w, "\nHeterogeneous assignment:\n\n")
		fmt.Fprintf(w, "| entity | parameter | assigned value |\n|---|---|---|\n")
		for _, kv := range ev.Assign {
			fmt.Fprintf(w, "| %s[%d] | `%s` | `%s` |\n", kv.Entity, kv.Index, kv.Param, kv.Value)
		}
	}
	if len(ev.Arms) > 0 {
		fmt.Fprintf(w, "\nRound-0 arms:\n\n")
		fmt.Fprintf(w, "| arm | seed | outcome | execution |\n|---|---|---|---|\n")
		for _, a := range ev.Arms {
			outcome := "pass"
			if a.Failed {
				outcome = "fail"
			}
			src := "ran here"
			if a.Cached {
				src = "reused from cache (digest " + clip(a.Digest, 12) + ")"
			} else if a.Digest != "" {
				src = "ran here (digest " + clip(a.Digest, 12) + ")"
			}
			fmt.Fprintf(w, "| %s | %d | %s | %s |\n", a.Name, a.Seed, outcome, src)
		}
	}
	if first, earlier, ok := ev.DivergentPair(); ok {
		fmt.Fprintf(w, "\nFirst divergent read: #%d %s\n", ev.FirstDivergent, first.String())
		fmt.Fprintf(w, "(diverges from the earlier %s)\n", earlier.String())
	} else {
		fmt.Fprintf(w, "\nFirst divergent read: none observed (%d reads recorded", len(ev.Reads))
		if ev.ReadsDropped > 0 {
			fmt.Fprintf(w, ", %d dropped past the cap", ev.ReadsDropped)
		}
		fmt.Fprintf(w, ")\n")
	}
	if logs := ev.RenderLog(); len(logs) > 0 {
		fmt.Fprintf(w, "\nHarness log:\n\n```\n")
		for _, l := range logs {
			fmt.Fprintln(w, l)
		}
		fmt.Fprintf(w, "```\n")
	}
	fmt.Fprintln(w)
}

// Summary aggregates several campaigns into the paper's headline numbers
// (57 reported, 41 true).
type Summary struct {
	Reported        int
	TruePositives   int
	FalsePositives  int
	Missed          int
	Executed        int64
	ExecutionsSaved int64
	FirstTrial      int
	Filtered        int
	SkippedTests    int
}

// Summarize folds campaign results.
func Summarize(results []*campaign.Result) Summary {
	var s Summary
	for _, r := range results {
		s.Reported += len(r.Reported)
		s.TruePositives += r.TruePositives
		s.FalsePositives += r.FalsePositives
		s.Missed += len(r.Missed)
		s.Executed += r.Counts.Executed
		s.ExecutionsSaved += r.Counts.ExecutionsSaved
		s.FirstTrial += r.FirstTrialSignals
		s.Filtered += r.FilteredByHypothesis
		s.SkippedTests += len(r.SkippedTests)
	}
	return s
}

// UniqueParams counts distinct reported parameters across campaigns (the
// shared-library parameters appear in several apps).
func UniqueParams(results []*campaign.Result) (total, trueOnes int) {
	seen := map[string]confkit.Safety{}
	for _, r := range results {
		for _, p := range r.Reported {
			seen[p.Param] = p.Truth
		}
	}
	for _, truth := range seen {
		total++
		if truth == confkit.SafetyUnsafe {
			trueOnes++
		}
	}
	return total, trueOnes
}

// OverallMissed lists seeded-unsafe parameters no campaign reported: the
// union-level miss count, the fair analog of the paper's aggregate result
// (a parameter found through any application's suite counts as found).
func OverallMissed(results []*campaign.Result, schemas []*confkit.Registry) []string {
	reported := map[string]bool{}
	for _, r := range results {
		for _, p := range r.Reported {
			reported[p.Param] = true
		}
	}
	missed := map[string]bool{}
	for _, schema := range schemas {
		for _, p := range schema.Params() {
			if p.Truth == confkit.SafetyUnsafe && !reported[p.Name] {
				missed[p.Name] = true
			}
		}
	}
	var out []string
	for p := range missed {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SortResults orders campaigns by app name for stable output.
func SortResults(results []*campaign.Result) {
	sort.Slice(results, func(i, j int) bool { return results[i].App < results[j].App })
}

func clip(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}
