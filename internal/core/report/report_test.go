package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/harness"
)

func sampleResults() []*campaign.Result {
	return []*campaign.Result{
		{
			App: "beta", NumTests: 3, NumParams: 5,
			Reported: []campaign.ParamReport{
				{Param: "x.unsafe", Truth: confkit.SafetyUnsafe, Why: "breaks", Tests: []string{"T1"}, MinP: 1e-5},
				{Param: "x.trap", Truth: confkit.SafetyFalsePositive, Why: "trap", Tests: []string{"T2"}, MinP: 1e-5},
			},
			TruePositives: 1, FalsePositives: 1,
			FirstTrialSignals: 4, FilteredByHypothesis: 2,
			ConfUsingTests: 3, SharingTests: 2,
		},
		{
			App: "alpha", NumTests: 1, NumParams: 2,
			Missed: []string{"y.unsafe"},
		},
	}
}

func sampleApps() []*harness.App {
	schema := func() *confkit.Registry {
		r := confkit.NewRegistry()
		r.Register(
			confkit.Param{Name: "x.unsafe", Kind: confkit.Bool, Default: "false", Truth: confkit.SafetyUnsafe},
			confkit.Param{Name: "safe", Kind: confkit.Int, Default: "1"},
		)
		return r
	}
	return []*harness.App{{
		Name: "beta", Schema: schema, NodeTypes: []string{"N"},
		Annotations: harness.AnnotationStats{NodeLines: 3, ConfLines: 6},
		Tests:       []harness.UnitTest{{Name: "T1"}},
	}}
}

func TestTablesRender(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	apps := sampleApps()
	Table1(&buf, apps)
	Table2(&buf, apps)
	Table4(&buf, apps)
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 4", "beta", "3 + 6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tables miss %q:\n%s", want, out)
		}
	}
}

func TestFullAndMarkdownRender(t *testing.T) {
	t.Parallel()
	res := sampleResults()[0]
	res.Counts.Original = 100
	res.Counts.AfterPreRun = 10
	res.Counts.AfterUncertainty = 9
	res.Counts.Executed = 12

	var buf bytes.Buffer
	Full(&buf, res)
	out := buf.String()
	for _, want := range []string{"Table 5", "x.unsafe", "[TRUE ]", "[FALSE]", "sharing 66.7%", "2 filtered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Full output misses %q:\n%s", want, out)
		}
	}

	buf.Reset()
	Markdown(&buf, res)
	md := buf.String()
	if !strings.Contains(md, "| Original | 100 |") || !strings.Contains(md, "`x.unsafe`") {
		t.Fatalf("Markdown output malformed:\n%s", md)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := JSON(&buf, sampleResults()); err != nil {
		t.Fatal(err)
	}
	var back []*campaign.Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].App != "beta" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestSummarizeAndUniqueParams(t *testing.T) {
	t.Parallel()
	results := sampleResults()
	s := Summarize(results)
	if s.Reported != 2 || s.TruePositives != 1 || s.FalsePositives != 1 || s.Missed != 1 {
		t.Fatalf("summary = %+v", s)
	}
	total, trueOnes := UniqueParams(results)
	if total != 2 || trueOnes != 1 {
		t.Fatalf("unique = (%d, %d)", total, trueOnes)
	}
}

func TestSharingRateZeroDivision(t *testing.T) {
	t.Parallel()
	r := &campaign.Result{}
	if r.SharingRate() != 0 {
		t.Fatal("zero conf-using tests should yield rate 0")
	}
}

func TestOverallMissed(t *testing.T) {
	t.Parallel()
	schema := confkit.NewRegistry()
	schema.Register(
		confkit.Param{Name: "x.unsafe", Kind: confkit.Bool, Default: "false", Truth: confkit.SafetyUnsafe},
		confkit.Param{Name: "never.found", Kind: confkit.Bool, Default: "false", Truth: confkit.SafetyUnsafe},
	)
	missed := OverallMissed(sampleResults(), []*confkit.Registry{schema})
	if len(missed) != 1 || missed[0] != "never.found" {
		t.Fatalf("overall missed = %v", missed)
	}
}

func TestSortResults(t *testing.T) {
	t.Parallel()
	results := sampleResults()
	SortResults(results)
	if results[0].App != "alpha" {
		t.Fatalf("not sorted: %s first", results[0].App)
	}
}

func TestClip(t *testing.T) {
	t.Parallel()
	if got := clip("a\nb", 10); got != "a b" {
		t.Fatalf("clip newline = %q", got)
	}
	if got := clip(strings.Repeat("x", 20), 5); got != "xxxxx..." {
		t.Fatalf("clip long = %q", got)
	}
}

func TestFindingsSurfacesSkippedTests(t *testing.T) {
	res := &campaign.Result{App: "beta", SkippedTests: []string{"TestGone", "TestLost"}}
	var buf bytes.Buffer
	Findings(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "WARNING: 2 requested or pre-run test(s) skipped") ||
		!strings.Contains(out, "TestGone, TestLost") {
		t.Fatalf("skipped tests not surfaced:\n%s", out)
	}

	s := Summarize([]*campaign.Result{res})
	if s.SkippedTests != 2 {
		t.Fatalf("Summarize skipped = %d, want 2", s.SkippedTests)
	}
}
