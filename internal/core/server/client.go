package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"zebraconf/internal/core/dist"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/sched"
	"zebraconf/internal/core/stats"
)

// SubmitRequest is the POST /api/campaigns body: the execution-affecting
// subset of the CLI's flags. Pointer fields distinguish "omitted" from
// "explicit zero" so defaults match the CLI exactly — an omitted field
// behaves as if the flag was never passed, which keeps a submitted
// campaign's ledger flags digest identical to a default local run's.
type SubmitRequest struct {
	// App names the application (required).
	App string `json:"app"`
	// Params and Tests subset the campaign (empty = all).
	Params []string `json:"params,omitempty"`
	Tests  []string `json:"tests,omitempty"`
	// Seed is the campaign base seed.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the number of TCP worker sessions to lease (default 2).
	Workers int `json:"workers,omitempty"`
	// Parallel is the total concurrency budget (0 = GOMAXPROCS), split
	// across workers unless WorkerParallel pins the per-worker bound.
	Parallel       int `json:"parallel,omitempty"`
	WorkerParallel int `json:"worker_parallel,omitempty"`

	MaxPool   int      `json:"max_pool,omitempty"`
	NoPool    bool     `json:"no_pool,omitempty"`
	NoGate    bool     `json:"no_gate,omitempty"`
	ExecCache *bool    `json:"exec_cache,omitempty"` // default true
	Sched     string   `json:"sched,omitempty"`      // default "lpt"
	Seq       string   `json:"seq,omitempty"`        // default "sprt"
	SeqMargin *float64 `json:"seq_margin,omitempty"` // default runner.DefaultSeqMargin
	Stream    *bool    `json:"stream,omitempty"`     // default true
	Speculate *float64 `json:"speculate,omitempty"`  // default 1.5
	// Quarantine is the live-quarantine threshold (default 3, 0 disables).
	Quarantine *int `json:"quarantine,omitempty"`
	// EvidenceMax is the per-worker evidence byte budget (default the
	// CLI's forensics.DefaultBudget; 0 disables capture).
	EvidenceMax *int64 `json:"evidence_max,omitempty"`
	// ItemTimeoutSeconds and ItemRetries bound distributed items
	// (defaults: 10 minutes, 2 retries).
	ItemTimeoutSeconds float64 `json:"item_timeout_seconds,omitempty"`
	ItemRetries        *int    `json:"item_retries,omitempty"`
	// HeartbeatMS is the worker heartbeat period (default 1000; 0 after
	// explicit negative disables — match the CLI by omitting instead).
	HeartbeatMS int `json:"heartbeat_ms,omitempty"`
	// Select chooses phase-2 test selection: "coverage" (default — skip
	// tests whose indexed read set is disjoint from the campaign's
	// params, when the server's ledger holds a warm index) or "all".
	Select string `json:"select,omitempty"`
}

// EffectiveWorkers defaults to 2 — the smallest fleet that exercises
// the distributed paths.
func (r SubmitRequest) EffectiveWorkers() int {
	if r.Workers <= 0 {
		return 2
	}
	return r.Workers
}

func (r SubmitRequest) EffectiveSched() string {
	if r.Sched == "" {
		return "lpt"
	}
	return r.Sched
}

func (r SubmitRequest) EffectiveSeq() string {
	if r.Seq == "" {
		return "sprt"
	}
	return r.Seq
}

func (r SubmitRequest) EffectiveSeqMargin() float64 {
	if r.SeqMargin == nil {
		return runner.DefaultSeqMargin
	}
	return *r.SeqMargin
}

func (r SubmitRequest) EffectiveSelect() string {
	if r.Select == "" {
		return "coverage"
	}
	return r.Select
}

func (r SubmitRequest) EffectiveExecCache() bool { return r.ExecCache == nil || *r.ExecCache }
func (r SubmitRequest) EffectiveStream() bool    { return r.Stream == nil || *r.Stream }

func (r SubmitRequest) EffectiveSpeculate() float64 {
	if r.Speculate == nil {
		return 1.5
	}
	return *r.Speculate
}

func (r SubmitRequest) EffectiveQuarantine() int {
	if r.Quarantine == nil {
		return 3
	}
	return *r.Quarantine
}

func (r SubmitRequest) EffectiveEvidenceMax() int64 {
	if r.EvidenceMax == nil {
		return defaultEvidenceMax
	}
	return *r.EvidenceMax
}

func (r SubmitRequest) EffectiveItemTimeout() time.Duration {
	if r.ItemTimeoutSeconds <= 0 {
		return dist.DefaultItemTimeout
	}
	return time.Duration(r.ItemTimeoutSeconds * float64(time.Second))
}

func (r SubmitRequest) EffectiveItemRetries() int {
	if r.ItemRetries == nil {
		return dist.DefaultItemRetries
	}
	return *r.ItemRetries
}

func (r SubmitRequest) EffectiveHeartbeatMS() int {
	if r.HeartbeatMS <= 0 {
		return 1000
	}
	return r.HeartbeatMS
}

// ExecFlags renders the request as the CLI's execution-affecting flag
// map — the same keys and value formatting main.go feeds the ledger, so
// submitted and locally-run campaigns with equal settings produce equal
// flags digests and `-mode diff` compares them clean.
func (r SubmitRequest) ExecFlags() map[string]string {
	return map[string]string{
		"params":          strings.Join(r.Params, ","),
		"tests":           strings.Join(r.Tests, ","),
		"parallel":        fmt.Sprint(r.Parallel),
		"seed":            fmt.Sprint(r.Seed),
		"no-pool":         fmt.Sprint(r.NoPool),
		"exec-cache":      fmt.Sprint(r.EffectiveExecCache()),
		"no-gate":         fmt.Sprint(r.NoGate),
		"thread-only":     "false",
		"max-pool":        fmt.Sprint(r.MaxPool),
		"sched":           r.EffectiveSched(),
		"seq":             r.EffectiveSeq(),
		"seq-margin":      fmt.Sprint(r.EffectiveSeqMargin()),
		"stream":          fmt.Sprint(r.EffectiveStream()),
		"speculate":       fmt.Sprint(r.EffectiveSpeculate()),
		"quarantine":      fmt.Sprint(r.EffectiveQuarantine()),
		"evidence-max":    fmt.Sprint(r.EffectiveEvidenceMax()),
		"workers":         fmt.Sprint(r.EffectiveWorkers()),
		"worker-parallel": fmt.Sprint(r.WorkerParallel),
		"item-timeout":    r.EffectiveItemTimeout().String(),
		"item-retries":    fmt.Sprint(r.EffectiveItemRetries()),
		"select":          r.EffectiveSelect(),
	}
}

// Validate rejects requests the run loop could not execute.
func (r SubmitRequest) Validate() error {
	if r.App == "" {
		return fmt.Errorf("server: request needs an app")
	}
	if _, err := sched.ParsePolicy(r.EffectiveSched()); err != nil {
		return err
	}
	if _, err := stats.ParseSeqMode(r.EffectiveSeq()); err != nil {
		return err
	}
	if s := r.EffectiveSelect(); s != "coverage" && s != "all" {
		return fmt.Errorf("server: bad select %q (want coverage or all)", s)
	}
	return nil
}

// Client drives the REST API — shared by `zebraconf -mode
// submit|watch|cancel` and the integration tests.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Token is sent as the Authorization bearer when non-empty.
	Token string
	// HTTP overrides the default client (tests inject timeouts).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, strings.TrimRight(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("server: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts one campaign and returns its ID.
func (c *Client) Submit(req SubmitRequest) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(http.MethodPost, "/api/campaigns", req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// List fetches the queue view.
func (c *Client) List() ([]CampaignSummary, error) {
	var out []CampaignSummary
	err := c.do(http.MethodGet, "/api/campaigns", nil, &out)
	return out, err
}

// Get fetches one campaign's detail.
func (c *Client) Get(id string) (CampaignDetail, error) {
	var out CampaignDetail
	err := c.do(http.MethodGet, "/api/campaigns/"+id, nil, &out)
	return out, err
}

// Cancel cancels one campaign and returns its resulting state.
func (c *Client) Cancel(id string) (string, error) {
	var out struct {
		State string `json:"state"`
	}
	if err := c.do(http.MethodDelete, "/api/campaigns/"+id, nil, &out); err != nil {
		return "", err
	}
	return out.State, nil
}

// Status fetches the server-level snapshot.
func (c *Client) Status() (ServiceStatus, error) {
	var out ServiceStatus
	err := c.do(http.MethodGet, "/api/status", nil, &out)
	return out, err
}

// Wait polls until the campaign reaches a terminal state (or the
// timeout elapses; 0 waits forever).
func (c *Client) Wait(id string, every, timeout time.Duration) (CampaignDetail, error) {
	if every <= 0 {
		every = time.Second
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		d, err := c.Get(id)
		if err != nil {
			return d, err
		}
		switch d.State {
		case StateDone, StateFailed, StateCancelled:
			return d, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return d, fmt.Errorf("server: campaign %s still %s after %s", id, d.State, timeout)
		}
		time.Sleep(every)
	}
}
