package server

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sort"
	"time"

	"zebraconf/internal/core/diskcache"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/obs"
)

// CampaignSummary is one GET /api/campaigns row.
type CampaignSummary struct {
	ID          string `json:"id"`
	App         string `json:"app"`
	State       string `json:"state"`
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// QueuePosition is 1-based among still-queued campaigns; 0 otherwise.
	QueuePosition int    `json:"queue_position,omitempty"`
	RunID         string `json:"run_id,omitempty"`
	Error         string `json:"error,omitempty"`
}

// ReportedParam is one reported parameter in a finished campaign's
// detail — the REST rendering of campaign.ParamReport.
type ReportedParam struct {
	Param string   `json:"param"`
	Truth string   `json:"truth"`
	Tests []string `json:"tests,omitempty"`
	MinP  float64  `json:"min_p,omitempty"`
}

// Counts summarizes a finished campaign's execution economics.
type Counts struct {
	Executions      int64   `json:"executions"`
	ExecutionsSaved int64   `json:"executions_saved"`
	TruePositives   int     `json:"true_positives"`
	FalsePositives  int     `json:"false_positives"`
	MakespanSeconds float64 `json:"makespan_seconds"`
}

// CampaignDetail is the GET /api/campaigns/{id} payload: the summary
// plus the live PR 6 status API views (status/workers/params come from
// the campaign's own observer) and, once done, the reported set and
// counts. RunID links the server ledger record so `-mode diff` works
// across submitted runs.
type CampaignDetail struct {
	CampaignSummary
	Request  SubmitRequest       `json:"request"`
	Status   *obs.CampaignStatus `json:"status,omitempty"`
	Workers  []obs.WorkerStatus  `json:"workers,omitempty"`
	Params   []obs.ParamStatus   `json:"params,omitempty"`
	Reported []ReportedParam     `json:"reported,omitempty"`
	Counts   *Counts             `json:"counts,omitempty"`
}

// ServiceStatus is the GET /api/status payload.
type ServiceStatus struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Campaigns     int               `json:"campaigns"`
	QueueDepth    int               `json:"queue_depth"`
	Running       string            `json:"running,omitempty"` // running campaign ID
	Gateway       dist.GatewayStats `json:"gateway"`
	Cache         diskcache.Stats   `json:"cache"`
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339)
}

func (c *Campaign) summary(queuePos int) CampaignSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CampaignSummary{
		ID:            c.id,
		App:           c.req.App,
		State:         c.state,
		SubmittedAt:   fmtTime(c.submitted),
		StartedAt:     fmtTime(c.started),
		FinishedAt:    fmtTime(c.finished),
		QueuePosition: queuePos,
		RunID:         c.runID,
		Error:         c.errMsg,
	}
}

func (c *Campaign) detail(queuePos int) CampaignDetail {
	d := CampaignDetail{CampaignSummary: c.summary(queuePos)}
	c.mu.Lock()
	d.Request = c.req
	o, res := c.o, c.res
	c.mu.Unlock()
	if st := o.Stat(); st != nil {
		cs := st.Campaign()
		d.Status = &cs
		d.Workers = st.Workers()
		d.Params = st.Params()
	}
	if res != nil {
		d.Reported = make([]ReportedParam, 0, len(res.Reported))
		for _, p := range res.Reported {
			d.Reported = append(d.Reported, ReportedParam{
				Param: p.Param,
				Truth: p.Truth.String(),
				Tests: p.Tests,
				MinP:  p.MinP,
			})
		}
		d.Counts = &Counts{
			Executions:      res.Counts.Executed,
			ExecutionsSaved: res.Counts.ExecutionsSaved,
			TruePositives:   res.TruePositives,
			FalsePositives:  res.FalsePositives,
			MakespanSeconds: res.Elapsed.Seconds(),
		}
	}
	return d
}

// queuePositions maps campaign ID → 1-based position in the FIFO queue.
func (s *Server) queuePositions() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	pos := make(map[string]int, len(s.queue))
	for i, c := range s.queue {
		pos[c.id] = i + 1
	}
	return pos
}

// Serve binds the REST API and blocks until the listener fails or Close
// shuts it down (returning nil then). The returned-by-reference bound
// address is reported through ready, when non-nil, once listening.
func (s *Server) Serve(ready chan<- string) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.handler()}
	s.mu.Lock()
	closed := s.closed
	s.shutdown = func() {
		srv.Close()
	}
	s.mu.Unlock()
	if closed {
		ln.Close()
		return nil
	}
	s.logf("REST API on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/campaigns", s.handleList)
	mux.HandleFunc("GET /api/campaigns/{id}", s.handleGet)
	mux.HandleFunc("DELETE /api/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/status", s.handleStatus)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if s.opts.Obs != nil && s.opts.Obs.Metrics != nil {
			s.opts.Obs.Metrics.WritePrometheus(w)
		}
	})
	return s.auth(mux)
}

// auth guards /api/* behind the shared bearer token. /metrics stays
// open: the exposition format is the Prometheus-scraper convention and
// carries no campaign payloads.
func (s *Server) auth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.opts.Token != "" && len(r.URL.Path) >= 5 && r.URL.Path[:5] == "/api/" {
			if r.Header.Get("Authorization") != "Bearer "+s.opts.Token {
				apiError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

func apiJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func apiError(w http.ResponseWriter, code int, msg string) {
	apiJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		apiError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := s.Submit(req)
	if err != nil {
		apiError(w, http.StatusBadRequest, err.Error())
		return
	}
	apiJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": StateQueued})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	pos := s.queuePositions()
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	cs := make([]*Campaign, 0, len(ids))
	for _, id := range ids {
		cs = append(cs, s.campaigns[id])
	}
	s.mu.Unlock()
	out := make([]CampaignSummary, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.summary(pos[c.id]))
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	apiJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		apiError(w, http.StatusNotFound, "no such campaign: "+id)
		return
	}
	apiJSON(w, http.StatusOK, c.detail(s.queuePositions()[id]))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, err := s.Cancel(id)
	if err != nil {
		apiError(w, http.StatusNotFound, err.Error())
		return
	}
	apiJSON(w, http.StatusOK, map[string]string{"id": id, "state": state})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	campaigns := len(s.campaigns)
	depth := len(s.queue)
	running := ""
	for _, id := range s.order {
		c := s.campaigns[id]
		c.mu.Lock()
		if c.state == StateRunning {
			running = c.id
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()
	apiJSON(w, http.StatusOK, ServiceStatus{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Campaigns:     campaigns,
		QueueDepth:    depth,
		Running:       running,
		Gateway:       s.gw.Stats(),
		Cache:         s.store.Stats(),
	})
}
