package server_test

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/core/ledger"
	"zebraconf/internal/core/server"
	"zebraconf/internal/obs"
)

const testToken = "test-secret"

// startServer brings up a full service on loopback ports: REST API,
// worker gateway, and n TCP workers. The returned shutdown must run
// before the test ends.
func startServer(t *testing.T, stateDir string, workers int) (*server.Server, *server.Client, func()) {
	t.Helper()
	srv, err := server.New(server.Options{
		Addr:       "127.0.0.1:0",
		WorkerAddr: "127.0.0.1:0",
		Token:      testToken,
		StateDir:   stateDir,
		Resolve:    apps.ByName,
		Obs:        obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ready) }()
	var base string
	select {
	case base = <-ready:
	case err := <-serveErr:
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := dist.ConnectWorker(srv.WorkerAddr(), dist.ConnectOptions{Token: testToken, Stop: stop}, apps.ByName); err != nil {
				t.Error(err)
			}
		}()
	}
	shutdown := func() {
		close(stop)
		srv.Close() // kills parked worker connections, stops the API
		wg.Wait()
		if err := <-serveErr; err != nil {
			t.Error(err)
		}
	}
	return srv, &server.Client{Base: "http://" + base, Token: testToken}, shutdown
}

// subsetRequest mirrors the dist test suite's deterministic minihdfs
// slice: two checksum parameters, three tests, three work items.
func subsetRequest(seed int64) server.SubmitRequest {
	return server.SubmitRequest{
		App:     "minihdfs",
		Params:  []string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
		Tests:   []string{"TestWriteRead", "TestFsck", "TestMkdirList"},
		Seed:    seed,
		Workers: 2,
	}
}

// TestServedCampaignMatchesLocal is the tentpole roundtrip: submit over
// REST, execute on two TCP workers, and require the reported set to
// match a local in-process run — then resubmit and require the repeat
// to be served from the persistent disk cache.
func TestServedCampaignMatchesLocal(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	_, cl, shutdown := startServer(t, dir, 2)
	defer shutdown()

	// Wrong token: rejected before any handler runs.
	bad := &server.Client{Base: cl.Base, Token: "wrong"}
	if _, err := bad.List(); err == nil {
		t.Fatal("request with a bad token was accepted")
	}

	id, err := cl.Submit(subsetRequest(11))
	if err != nil {
		t.Fatal(err)
	}
	d, err := cl.Wait(id, 50*time.Millisecond, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d.State != server.StateDone {
		t.Fatalf("campaign state = %s (%s), want done", d.State, d.Error)
	}
	if d.RunID == "" {
		t.Fatal("done campaign has no ledger run ID")
	}
	if d.Counts == nil || d.Counts.Executions == 0 {
		t.Fatalf("done campaign reports no executions: %+v", d.Counts)
	}

	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	req := subsetRequest(11)
	local := campaign.Run(app, campaign.Options{Params: req.Params, Tests: req.Tests, Seed: req.Seed})
	if len(local.Reported) == 0 {
		t.Fatal("local subset campaign reported nothing; the equivalence check is vacuous")
	}
	if len(d.Reported) != len(local.Reported) {
		t.Fatalf("served campaign reported %d parameters, local %d", len(d.Reported), len(local.Reported))
	}
	for i, p := range d.Reported {
		lp := local.Reported[i]
		if p.Param != lp.Param || p.Truth != lp.Truth.String() {
			t.Fatalf("report %d diverges: served %s (%s), local %s (%s)",
				i, p.Param, p.Truth, lp.Param, lp.Truth)
		}
	}

	// The run is in the server's ledger under the linked run ID, so
	// `-mode diff -ledger <state>/ledger` can compare submitted runs.
	recs, err := ledger.Read(filepath.Join(dir, "ledger"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].RunID != d.RunID {
		t.Fatalf("ledger records = %+v, want one with run ID %s", recs, d.RunID)
	}

	// Resubmit: the identical campaign replays from the disk cache.
	before, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cl.Submit(subsetRequest(11))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cl.Wait(id2, 50*time.Millisecond, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d2.State != server.StateDone {
		t.Fatalf("resubmitted campaign state = %s (%s), want done", d2.State, d2.Error)
	}
	after, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache.Hits <= before.Cache.Hits {
		t.Fatalf("disk cache hits did not grow on resubmit: before %d, after %d",
			before.Cache.Hits, after.Cache.Hits)
	}
	if len(d2.Reported) != len(d.Reported) {
		t.Fatalf("resubmitted campaign reported %d parameters, first run %d", len(d2.Reported), len(d.Reported))
	}

	sums, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("listed %d campaigns, want 2", len(sums))
	}
	if _, err := cl.Cancel("c9999"); err == nil {
		t.Fatal("cancelling an unknown campaign succeeded")
	}
}

// TestQueueAndCancel exercises the FIFO queue without any workers: the
// first campaign occupies the run loop (blocked acquiring a session),
// the second waits in queue and cancels in place, and cancelling the
// running one aborts its coordinator.
func TestQueueAndCancel(t *testing.T) {
	t.Parallel()
	_, cl, shutdown := startServer(t, t.TempDir(), 0)
	defer shutdown()

	id1, err := cl.Submit(subsetRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		d, err := cl.Get(id1)
		if err != nil {
			t.Fatal(err)
		}
		if d.State == server.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never started running (state %s)", id1, d.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	id2, err := cl.Submit(subsetRequest(6))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cl.Get(id2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.State != server.StateQueued || d2.QueuePosition != 1 {
		t.Fatalf("second campaign = %s at queue position %d, want queued at 1", d2.State, d2.QueuePosition)
	}
	if state, err := cl.Cancel(id2); err != nil || state != server.StateCancelled {
		t.Fatalf("cancelling queued campaign: state %s, err %v", state, err)
	}

	if _, err := cl.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	d1, err := cl.Wait(id1, 20*time.Millisecond, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d1.State != server.StateCancelled {
		t.Fatalf("cancelled running campaign settled as %s, want cancelled", d1.State)
	}
	if d1.RunID != "" {
		t.Fatal("cancelled campaign was written to the ledger")
	}
}
