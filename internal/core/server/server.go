// Package server is ZebraConf's campaign-as-a-service daemon: the
// coordinator lifted out of the one-shot CLI into a long-running
// process. Workers connect over TCP through the dist gateway
// (`zebraconf -worker -connect`), campaigns arrive over a small REST
// API (`zebraconf -mode submit|watch|cancel -server URL`), run one at a
// time off a FIFO queue, and every canonically-seeded execution flows
// through a persistent cross-campaign disk cache — so a repeat campaign
// on an unchanged app is nearly free. This is the paper's batch
// campaign recast as the continuous configuration-testing service its
// own pitch calls for: catching hetero-unsafe parameters before every
// rolling deployment means running on every revision, not once.
//
// Per-campaign isolation: each submission gets its own ID, base seed,
// checkpoint journal, observer (status tracker + registry), ledger
// record, and result file under the server's state directory. The only
// shared mutable state is deliberately shared: the duration profile
// (every campaign sharpens the next schedule) and the disk cache
// (reuse is the point — and a hit can only replay a byte-identical
// execution, so isolation of *outcomes* is preserved by construction).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/diskcache"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/ledger"
	"zebraconf/internal/core/report"
	"zebraconf/internal/core/sched"
	"zebraconf/internal/core/stats"
	"zebraconf/internal/obs"
)

// Campaign states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// ErrNotFound marks an unknown campaign ID.
var ErrNotFound = errors.New("server: no such campaign")

// Options configures a Server.
type Options struct {
	// Addr is the REST API listen address (e.g. ":8080").
	Addr string
	// WorkerAddr is the TCP worker gateway listen address (e.g. ":9090").
	WorkerAddr string
	// Token guards both the worker gateway handshake and the /api/*
	// endpoints (Authorization: Bearer). Empty disables auth — loopback
	// testing only.
	Token string
	// StateDir holds everything persistent: the disk cache, the run
	// ledger, the shared duration profile, and per-campaign journals and
	// results.
	StateDir string
	// CacheMaxBytes caps the disk cache (0 = diskcache default).
	CacheMaxBytes int64
	// Resolve maps an application name to its App — injected so this
	// package never depends on the application registry.
	Resolve func(string) (*harness.App, error)
	// Obs receives server-level metrics: gateway, disk cache, queue.
	// Per-campaign observers are created internally. May be nil.
	Obs *obs.Observer
	// Logw receives server lifecycle lines. May be nil.
	Logw io.Writer
}

// Server is the campaign service: gateway + queue + disk cache + API.
type Server struct {
	opts    Options
	gw      *dist.Gateway
	store   *diskcache.Store
	profile *sched.Profile
	started time.Time

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // submission order, for listing
	queue     []*Campaign
	seq       int
	closed    bool
	wake      chan struct{}

	wg       sync.WaitGroup
	shutdown func() // HTTP server shutdown, set by Serve
}

// Campaign is one submission's full lifecycle.
type Campaign struct {
	mu        sync.Mutex
	id        string
	req       SubmitRequest
	state     string
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	o         *obs.Observer
	run       *dist.Run // live while phase 2 is distributed; for Abort
	cancelled bool
	res       *campaign.Result
	runID     string
	// slots is the run's parallel execution budget (workers x per-worker
	// parallelism), recorded for the perf summary's utilization.
	slots int
}

// New assembles a Server: state directory, disk cache, gateway, shared
// profile. The REST listener starts in Serve.
func New(opts Options) (*Server, error) {
	if opts.Resolve == nil {
		return nil, errors.New("server: Options.Resolve is required")
	}
	if opts.StateDir == "" {
		opts.StateDir = "zebraconf-state"
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, err
	}
	store, err := diskcache.Open(filepath.Join(opts.StateDir, "cache"), opts.CacheMaxBytes, nil, opts.Obs)
	if err != nil {
		return nil, err
	}
	profile, err := sched.LoadProfile(filepath.Join(opts.StateDir, "profile.json"))
	if err != nil {
		return nil, err
	}
	gw, err := dist.ListenGateway(opts.WorkerAddr, opts.Token, opts.Obs)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:      opts,
		gw:        gw,
		store:     store,
		profile:   profile,
		started:   time.Now(),
		campaigns: make(map[string]*Campaign),
		wake:      make(chan struct{}, 1),
	}
	s.wg.Add(1)
	go s.runLoop()
	s.logf("worker gateway on %s, state in %s", gw.Addr(), opts.StateDir)
	return s, nil
}

// WorkerAddr is the gateway's bound address (useful with ":0").
func (s *Server) WorkerAddr() string { return s.gw.Addr() }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logw != nil {
		fmt.Fprintf(s.opts.Logw, "[zebraconf serve] "+format+"\n", args...)
	}
}

// Submit validates and enqueues one campaign, returning its ID.
func (s *Server) Submit(req SubmitRequest) (string, error) {
	if _, err := s.opts.Resolve(req.App); err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	if req.Workers < 0 || req.Workers > 64 {
		return "", fmt.Errorf("server: workers out of range: %d", req.Workers)
	}
	c := &Campaign{
		req:       req,
		state:     StateQueued,
		submitted: time.Now(),
		o:         obs.New(),
	}
	c.o.Status = obs.NewStatus()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errors.New("server: shutting down")
	}
	s.seq++
	c.id = fmt.Sprintf("c%04d", s.seq)
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.queue = append(s.queue, c)
	depth := len(s.queue)
	s.mu.Unlock()
	s.opts.Obs.GaugeSet(obs.MServerQueueDepth, int64(depth))
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.logf("campaign %s queued: app=%s workers=%d seed=%d", c.id, req.App, req.EffectiveWorkers(), req.Seed)
	return c.id, nil
}

// Cancel cancels a campaign: a queued one is marked cancelled in place,
// a running one has its coordinator aborted (inflight items are
// abandoned; already-finished pre-runs are not undone). Returns the
// resulting state.
func (s *Server) Cancel(id string) (string, error) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return "", ErrNotFound
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StateQueued:
		c.state = StateCancelled
		c.finished = time.Now()
		s.opts.Obs.CounterAdd(obs.MServerCampaigns, 1, "state", StateCancelled)
		s.logf("campaign %s cancelled while queued", c.id)
	case StateRunning:
		c.cancelled = true
		if c.run != nil {
			c.run.Abort()
		}
		s.logf("campaign %s cancel requested; aborting coordinator", c.id)
	}
	return c.state, nil
}

// Close shuts the service down: refuse new submissions, abort the
// running campaign, close the gateway and wait for the run loop.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	running := make([]*Campaign, 0, 1)
	for _, c := range s.campaigns {
		running = append(running, c)
	}
	s.mu.Unlock()
	for _, c := range running {
		c.mu.Lock()
		if c.state == StateRunning {
			c.cancelled = true
			if c.run != nil {
				c.run.Abort()
			}
		}
		c.mu.Unlock()
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.gw.Close()
	if s.shutdown != nil {
		s.shutdown()
	}
	s.wg.Wait()
}

// runLoop executes queued campaigns one at a time, FIFO. One at a time
// is a deliberate isolation choice, not a throughput bug: concurrent
// campaigns would share the worker pool and perturb each other's
// timing-sensitive verdicts, and the equivalence invariant (served ≡
// local reported set) holds because a served campaign sees the same
// load shape a local run does.
func (s *Server) runLoop() {
	defer s.wg.Done()
	for {
		c := s.nextQueued()
		if c == nil {
			return
		}
		s.runCampaign(c)
	}
}

func (s *Server) nextQueued() *Campaign {
	for {
		s.mu.Lock()
		for len(s.queue) > 0 {
			c := s.queue[0]
			s.queue = s.queue[1:]
			c.mu.Lock()
			st := c.state
			c.mu.Unlock()
			if st != StateQueued {
				continue // cancelled while waiting
			}
			depth := len(s.queue)
			s.mu.Unlock()
			s.opts.Obs.GaugeSet(obs.MServerQueueDepth, int64(depth))
			return c
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil
		}
		<-s.wake
	}
}

// runCampaign executes one submission end to end, mirroring the CLI's
// `-mode run -workers N` path: same defaults, same config plumbing,
// same streaming/LPT/speculation/quarantine machinery — the five-app
// equivalence invariant extends to served campaigns precisely because
// this function introduces no execution-affecting difference.
func (s *Server) runCampaign(c *Campaign) {
	req := c.req
	app, err := s.opts.Resolve(req.App)
	if err != nil {
		s.finish(c, nil, err)
		return
	}
	c.mu.Lock()
	c.state = StateRunning
	c.started = time.Now()
	cancelled := c.cancelled
	c.mu.Unlock()
	if cancelled {
		s.finish(c, nil, nil)
		return
	}
	s.logf("campaign %s running: app=%s", c.id, req.App)

	dir := filepath.Join(s.opts.StateDir, "campaigns", c.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.finish(c, nil, err)
		return
	}

	policy, err := sched.ParsePolicy(req.EffectiveSched())
	if err != nil {
		s.finish(c, nil, err)
		return
	}
	seqMode, err := stats.ParseSeqMode(req.EffectiveSeq())
	if err != nil {
		s.finish(c, nil, err)
		return
	}
	quarThreshold := req.EffectiveQuarantine()
	if quarThreshold <= 0 {
		quarThreshold = math.MaxInt32
	}
	execCache := req.EffectiveExecCache()
	copts := campaign.Options{
		Parallelism:         req.Parallel,
		MaxPool:             req.MaxPool,
		DisablePooling:      req.NoPool,
		DisableGate:         req.NoGate,
		DisableExecCache:    !execCache,
		Params:              req.Params,
		Tests:               req.Tests,
		Seed:                req.Seed,
		Seq:                 seqMode,
		SeqMargin:           req.EffectiveSeqMargin(),
		SchedPolicy:         policy,
		Stream:              req.EffectiveStream(),
		Profile:             s.profile,
		QuarantineThreshold: quarThreshold,
		EvidenceMax:         req.EffectiveEvidenceMax(),
		SelectCoverage:      req.EffectiveSelect() == "coverage",
		Obs:                 c.o,
	}
	// Coverage-driven selection reads the server ledger's index exactly
	// as the CLI reads a -ledger directory's: the environment key is the
	// request's flags digest, so a submitted campaign only trusts entries
	// recorded under matching execution-affecting settings.
	ledgerDir := filepath.Join(s.opts.StateDir, "ledger")
	copts.CoverageKey = ledger.DigestFlags(req.ExecFlags())
	prevIx, cerr := coverage.Load(ledgerDir, app.Name)
	if cerr != nil {
		s.logf("campaign %s: reading coverage index: %v", c.id, cerr)
	}
	copts.CoverageIndex = prevIx
	if execCache {
		// The campaign's in-process memo cache (pre-runs and any local
		// executions) reads and feeds the same persistent store the
		// coordinator serves to workers.
		copts.CacheBackend = s.store
	}

	workers := req.EffectiveWorkers()
	cfg := dist.ConfigFrom(copts)
	cfg.HeartbeatMS = req.EffectiveHeartbeatMS()
	cfg.Parallel = req.WorkerParallel
	if cfg.Parallel <= 0 {
		// Split the in-process concurrency budget across workers, exactly
		// as the CLI does, so served and local campaigns put the same
		// total load on the timing-sensitive tests.
		total := req.Parallel
		if total <= 0 {
			total = campaign.DefaultParallelism()
		}
		cfg.Parallel = (total + workers - 1) / workers
	}
	c.mu.Lock()
	c.slots = workers * cfg.Parallel
	c.mu.Unlock()
	// Every served campaign gets a ring-only perf sampler: the summary
	// lands in its ledger record and perf.json without clients asking.
	c.o.Sampler = obs.NewSampler(c.o, 0, nil, 0)
	c.o.Sampler.Start()
	coord := dist.New(dist.Options{
		App:                 app.Name,
		Workers:             workers,
		Sessions:            s.gw,
		SharedBackend:       s.store,
		Config:              cfg,
		CheckpointPath:      filepath.Join(dir, "journal.jsonl"),
		ItemTimeout:         req.EffectiveItemTimeout(),
		ItemRetries:         req.EffectiveItemRetries(),
		SchedPolicy:         policy,
		SpeculationFactor:   req.EffectiveSpeculate(),
		Profile:             s.profile,
		QuarantineThreshold: quarThreshold,
		Obs:                 c.o,
		Stderr:              s.opts.Logw,
	})
	adapter := &serverAdapter{coord: coord, onRun: func(run *dist.Run) {
		c.mu.Lock()
		c.run = run
		aborted := c.cancelled
		c.mu.Unlock()
		if aborted {
			run.Abort()
		}
	}}
	copts.Distributor = adapter

	res := campaign.Run(app, copts)
	c.o.Sampler.Stop()
	if adapter.run != nil {
		res.WorkerStalls = adapter.run.Stalls()
	}
	if res.Coverage != nil {
		ix := coverage.Build(app.Name, req.Seed, copts.CoverageKey, res.Coverage, app.Schema())
		ix.Adopt(prevIx, res.DeselectedTests)
		if serr := coverage.Save(ledgerDir, ix); serr != nil {
			s.logf("campaign %s: writing coverage index: %v", c.id, serr)
		}
	}
	if err := s.profile.Save(filepath.Join(s.opts.StateDir, "profile.json")); err != nil {
		s.logf("campaign %s: saving duration profile: %v", c.id, err)
	}
	if f, err := os.Create(filepath.Join(dir, "result.json")); err == nil {
		if werr := report.JSON(f, []*campaign.Result{res}); werr != nil {
			s.logf("campaign %s: writing result.json: %v", c.id, werr)
		}
		f.Close()
	}
	s.finish(c, res, adapter.err)
}

// finish settles a campaign's terminal state and, for completed runs,
// appends its ledger record so `-mode diff` can compare submitted runs.
func (s *Server) finish(c *Campaign, res *campaign.Result, err error) {
	c.mu.Lock()
	c.res = res
	c.finished = time.Now()
	c.run = nil
	switch {
	case c.cancelled || c.state == StateCancelled:
		c.state = StateCancelled
	case err != nil:
		c.state = StateFailed
		c.errMsg = err.Error()
	default:
		c.state = StateDone
	}
	state := c.state
	started := c.started
	slots := c.slots
	c.mu.Unlock()
	c.o.Sampler.Stop() // no-op when the run never started sampling

	if state == StateDone && res != nil {
		rec := ledger.Summarize(res, c.req.Seed, started, c.req.EffectiveWorkers(), c.req.ExecFlags())
		rec.Perf = obs.SummarizePerf(c.o, res.App, res.Elapsed.Seconds(), slots)
		if rec.Perf != nil {
			// Persist the summary beside the campaign's journal and result
			// so one submission's whole story lives in its directory.
			path := filepath.Join(s.opts.StateDir, "campaigns", c.id, "perf.json")
			if b, jerr := json.MarshalIndent(rec.Perf, "", "  "); jerr == nil {
				if werr := os.WriteFile(path, b, 0o644); werr != nil {
					s.logf("campaign %s: writing perf.json: %v", c.id, werr)
				}
			}
		}
		if lerr := ledger.Append(filepath.Join(s.opts.StateDir, "ledger"), rec); lerr != nil {
			s.logf("campaign %s: writing ledger: %v", c.id, lerr)
		} else {
			c.mu.Lock()
			c.runID = rec.RunID
			c.mu.Unlock()
		}
	}
	s.opts.Obs.CounterAdd(obs.MServerCampaigns, 1, "state", state)
	if err != nil {
		s.logf("campaign %s finished: %s (%v)", c.id, state, err)
	} else {
		s.logf("campaign %s finished: %s", c.id, state)
	}
}

// serverAdapter bridges campaign.Distributor onto the coordinator
// without the CLI adapter's os.Exit: a coordinator failure marks the
// campaign failed and the service lives on.
type serverAdapter struct {
	coord *dist.Coordinator
	run   *dist.Run
	err   error
	onRun func(*dist.Run)
}

func (d *serverAdapter) Begin(parent obs.SpanID, total int) {
	run, err := d.coord.Start(parent, total)
	if err != nil {
		d.err = err
		return
	}
	d.run = run
	d.onRun(run)
}

func (d *serverAdapter) Submit(item campaign.WorkItem) {
	if d.run != nil {
		d.run.Submit(item)
	}
}

func (d *serverAdapter) Drain() []campaign.ItemResult {
	if d.run == nil {
		return nil
	}
	res, err := d.run.Drain()
	if err != nil {
		d.err = err
		return nil
	}
	return res
}

// defaultEvidenceMax mirrors the CLI's -evidence-max default so served
// and local runs produce identical flags digests.
var defaultEvidenceMax = forensics.DefaultBudget
