// Package memo is ZebraConf's content-addressed execution cache. The
// harness is seeded-deterministic: one unit-test run is a pure function
// of (app, test, configuration assignment, seed). Once homogeneous-arm
// and pooled-run seeds derive from the canonical sorted assignment
// instead of the per-instance label (see SeedFor), two runs with equal
// cache keys are guaranteed byte-identical — so reusing a cached outcome
// can change no verdict, only skip redundant executions. This is where
// the paper's TestRunner (§5) spends most of its budget: every instance
// of the same parameter runs the *identical* homogeneous baseline, and
// Definition 3.1 never needed it recomputed per instance.
package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"zebraconf/internal/core/agent"
	"zebraconf/internal/obs"
)

// Key addresses one deterministic unit-test execution. Assign is the
// canonical assignment digest from HashAssignment, hex-encoded so the
// key survives JSON round trips (the dist protocol ships keys on the
// wire, and a raw uint64 would lose precision through float64).
type Key struct {
	App    string `json:"app"`
	Test   string `json:"test"`
	Assign string `json:"assign"`
	Seed   int64  `json:"seed"`
}

// Result is the cacheable outcome of one execution — the fields verdict
// logic consumes from a harness outcome, plus the execution's coverage
// read set. Reads rides every cache tier (memory, disk, coordinator) so
// a cache hit — which skips the agent entirely — can still replay its
// coverage edges into the index; without it a warm rerun would build an
// empty index and select nothing. Entries written by coverage-disabled
// runs carry no Reads and degrade conservatively (no edge, no
// deselection).
type Result struct {
	Failed   bool     `json:"failed,omitempty"`
	TimedOut bool     `json:"timed_out,omitempty"`
	Msg      string   `json:"msg,omitempty"`
	Reads    []string `json:"reads,omitempty"`
}

// Backend is a second-level store behind a Cache's in-process map; the
// distributed worker plugs in a coordinator-backed implementation so a
// hit on worker A saves a run on worker B. Get may block (a network
// round trip); a Backend that fails should report a miss, never an
// error — re-running is always correct, just slower.
type Backend interface {
	Get(Key) (Result, bool)
	Put(Key, Result)
}

// HashAssignment canonically digests an assignment map: entries are
// sorted by (node type, node index, parameter), so two maps with equal
// content — regardless of construction or iteration order — produce the
// same digest. The digest is SHA-256 truncated to 128 bits, hex-encoded;
// far beyond collision reach, because a collision would silently reuse
// the wrong outcome.
func HashAssignment(assign map[agent.Key]string) string {
	keys := make([]agent.Key, 0, len(assign))
	for k := range assign {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.NodeType != b.NodeType {
			return a.NodeType < b.NodeType
		}
		if a.NodeIndex != b.NodeIndex {
			return a.NodeIndex < b.NodeIndex
		}
		return a.Param < b.Param
	})
	h := sha256.New()
	var idx [8]byte
	for _, k := range keys {
		h.Write([]byte(k.NodeType))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint64(idx[:], uint64(k.NodeIndex))
		h.Write(idx[:])
		h.Write([]byte(k.Param))
		h.Write([]byte{0})
		h.Write([]byte(assign[k]))
		h.Write([]byte{0})
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// SeedFor derives the canonical per-run seed for an assignment-addressed
// execution: it depends only on (base seed, test, assignment digest,
// round) — NOT on which instance label asked for the run. Homogeneous
// arms and pooled runs use this derivation, so every instance needing
// the same baseline performs the byte-identical trial; confirmation
// rounds keep round in the mix, so repeated trials of a nondeterministic
// test still vary.
func SeedFor(base int64, test, assignHash string, round int) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(test))
	h.Write([]byte{0})
	h.Write([]byte(assignHash))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(b[:], uint64(round))
	h.Write(b[:])
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits are completed in-process entries reused; SharedHits came from
	// the Backend; Coalesced callers joined an in-flight identical run.
	// Every one of the three saved exactly one execution.
	Hits, SharedHits, Coalesced int64
	// Misses executed for real.
	Misses int64
}

// Saved is the total executions the cache avoided.
func (s Stats) Saved() int64 { return s.Hits + s.SharedHits + s.Coalesced }

// Cache memoizes executions with singleflight semantics: concurrent
// callers with the same key coalesce onto one in-flight run instead of
// duplicating it. A nil *Cache is valid and always executes — callers
// never branch on whether memoization is enabled.
type Cache struct {
	app     string
	backend Backend
	obs     *obs.Observer

	mu    sync.Mutex
	calls map[Key]*call

	hits, sharedHits, coalesced, misses atomic.Int64
}

// call is one execution slot; done closes when res is final.
type call struct {
	done chan struct{}
	res  Result
}

// NewCache builds a cache for one app. backend may be nil (purely
// in-process); o may be nil (no metrics).
func NewCache(app string, backend Backend, o *obs.Observer) *Cache {
	return &Cache{app: app, backend: backend, obs: o, calls: make(map[Key]*call)}
}

// Do returns the memoized result for key, executing fn at most once per
// key across all concurrent callers. reused reports whether fn was
// skipped — by a completed entry, a backend hit, or coalescing onto an
// in-flight run. On a nil receiver Do simply executes fn.
func (c *Cache) Do(key Key, fn func() Result) (res Result, reused bool) {
	if c == nil {
		return fn(), false
	}
	c.mu.Lock()
	if cl, ok := c.calls[key]; ok {
		c.mu.Unlock()
		select {
		case <-cl.done:
			c.hits.Add(1)
			c.obs.CounterAdd(obs.MCacheHits, 1, "app", c.app, "scope", "local")
			c.obs.Event(obs.EvCacheHit, obs.String("app", c.app), obs.String("scope", "local"))
		default:
			c.coalesced.Add(1)
			c.obs.CounterAdd(obs.MCacheCoalesced, 1, "app", c.app)
			c.obs.Event(obs.EvCacheHit, obs.String("app", c.app), obs.String("scope", "coalesced"))
			<-cl.done
		}
		c.obs.RecordCacheSaved(c.app, 1)
		return cl.res, true
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.mu.Unlock()

	if c.backend != nil {
		if res, ok := c.backend.Get(key); ok {
			cl.res = res
			close(cl.done)
			c.sharedHits.Add(1)
			c.obs.CounterAdd(obs.MCacheHits, 1, "app", c.app, "scope", "shared")
			c.obs.Event(obs.EvCacheHit, obs.String("app", c.app), obs.String("scope", "shared"))
			c.obs.RecordCacheSaved(c.app, 1)
			return res, true
		}
	}
	c.misses.Add(1)
	c.obs.CounterAdd(obs.MCacheMisses, 1, "app", c.app)
	func() {
		// Release waiters before the backend Put (they must not be held
		// hostage to a slow second-level store) and even if fn panics.
		defer close(cl.done)
		cl.res = fn()
	}()
	if c.backend != nil {
		c.backend.Put(key, cl.res)
	}
	return cl.res, false
}

// Record registers an already-performed execution's result under key
// without ever skipping work: it fills the local slot and writes
// through to the backend, so a later Do for the same key (a resubmit
// of the same campaign) hits. Callers that must execute regardless —
// forensic capture, whose evidence only exists on a real run — use
// this to still seed the cache. A completed or in-flight entry wins;
// a no-op on a nil receiver.
func (c *Cache) Record(key Key, res Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.calls[key]; ok {
		c.mu.Unlock()
		return
	}
	cl := &call{done: make(chan struct{}), res: res}
	close(cl.done)
	c.calls[key] = cl
	c.mu.Unlock()
	if c.backend != nil {
		c.backend.Put(key, res)
	}
}

// Stats snapshots the cache counters. Safe on a nil receiver.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:       c.hits.Load(),
		SharedHits: c.sharedHits.Load(),
		Coalesced:  c.coalesced.Load(),
		Misses:     c.misses.Load(),
	}
}
