package memo

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"zebraconf/internal/core/agent"
)

func k(nodeType string, idx int, param string) agent.Key {
	return agent.Key{NodeType: nodeType, NodeIndex: idx, Param: param}
}

func TestHashAssignmentOrderIndependent(t *testing.T) {
	// The same logical assignment built in different insertion orders
	// must digest identically: the canonical sort is the whole point.
	a := map[agent.Key]string{
		k("namenode", 0, "dfs.checksum.type"):      "CRC32C",
		k("datanode", 1, "dfs.checksum.type"):      "CRC32",
		k("datanode", 0, "dfs.checksum.type"):      "CRC32",
		k("namenode", 0, "dfs.bytes-per-checksum"): "512",
	}
	b := map[agent.Key]string{}
	// Reverse-ish construction order.
	b[k("namenode", 0, "dfs.bytes-per-checksum")] = "512"
	b[k("datanode", 0, "dfs.checksum.type")] = "CRC32"
	b[k("datanode", 1, "dfs.checksum.type")] = "CRC32"
	b[k("namenode", 0, "dfs.checksum.type")] = "CRC32C"
	ha, hb := HashAssignment(a), HashAssignment(b)
	if ha != hb {
		t.Fatalf("equal assignments hashed differently: %s vs %s", ha, hb)
	}
	if len(ha) != 32 {
		t.Fatalf("digest should be 16 bytes hex-encoded (32 chars), got %d: %s", len(ha), ha)
	}
}

func TestHashAssignmentContentSensitive(t *testing.T) {
	base := map[agent.Key]string{
		k("namenode", 0, "dfs.checksum.type"): "CRC32C",
		k("datanode", 0, "dfs.checksum.type"): "CRC32C",
	}
	h0 := HashAssignment(base)

	// Changed value.
	v := map[agent.Key]string{
		k("namenode", 0, "dfs.checksum.type"): "CRC32",
		k("datanode", 0, "dfs.checksum.type"): "CRC32C",
	}
	// Changed node index.
	i := map[agent.Key]string{
		k("namenode", 0, "dfs.checksum.type"): "CRC32C",
		k("datanode", 1, "dfs.checksum.type"): "CRC32C",
	}
	// Changed node type.
	n := map[agent.Key]string{
		k("namenode", 0, "dfs.checksum.type"): "CRC32C",
		k("journal", 0, "dfs.checksum.type"):  "CRC32C",
	}
	// Extra entry.
	e := map[agent.Key]string{
		k("namenode", 0, "dfs.checksum.type"):      "CRC32C",
		k("datanode", 0, "dfs.checksum.type"):      "CRC32C",
		k("datanode", 0, "dfs.bytes-per-checksum"): "512",
	}
	for name, m := range map[string]map[agent.Key]string{
		"value": v, "index": i, "type": n, "extra": e,
	} {
		if HashAssignment(m) == h0 {
			t.Errorf("%s change did not change the digest", name)
		}
	}

	// Field-boundary confusion: the separator bytes must keep
	// ("ab","c") distinct from ("a","bc") in the param/value fields.
	x := map[agent.Key]string{k("nn", 0, "ab"): "c"}
	y := map[agent.Key]string{k("nn", 0, "a"): "bc"}
	if HashAssignment(x) == HashAssignment(y) {
		t.Fatal("param/value boundary shift produced a digest collision")
	}
}

func TestSeedForDistinctAndStable(t *testing.T) {
	seen := map[int64]string{}
	for _, base := range []int64{0, 7, 1 << 40} {
		for _, test := range []string{"TestWriteRead", "TestFsck"} {
			for _, hash := range []string{"aaaa", "bbbb"} {
				for round := 0; round < 4; round++ {
					s := SeedFor(base, test, hash, round)
					if s < 0 {
						t.Fatalf("seed must be non-negative (rng contract): %d", s)
					}
					id := fmt.Sprintf("%d/%s/%s/%d", base, test, hash, round)
					if prev, dup := seen[s]; dup {
						t.Fatalf("seed collision between %s and %s", prev, id)
					}
					seen[s] = id
					if s != SeedFor(base, test, hash, round) {
						t.Fatal("SeedFor is not deterministic")
					}
				}
			}
		}
	}
}

func TestNilCacheExecutes(t *testing.T) {
	var c *Cache
	ran := 0
	res, reused := c.Do(Key{App: "a"}, func() Result { ran++; return Result{Failed: true} })
	if !res.Failed || reused || ran != 1 {
		t.Fatalf("nil cache must execute: res=%+v reused=%v ran=%d", res, reused, ran)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats should be zero: %+v", s)
	}
}

func TestDoMemoizes(t *testing.T) {
	c := NewCache("app", nil, nil)
	key := Key{App: "app", Test: "T", Assign: "h", Seed: 42}
	ran := 0
	first, reused := c.Do(key, func() Result { ran++; return Result{Failed: true, Msg: "boom"} })
	if reused || ran != 1 {
		t.Fatalf("first Do must execute: reused=%v ran=%d", reused, ran)
	}
	second, reused := c.Do(key, func() Result { ran++; return Result{} })
	if !reused || ran != 1 {
		t.Fatalf("second Do must reuse: reused=%v ran=%d", reused, ran)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result differs: %+v vs %+v", first, second)
	}
	// A different key executes again.
	other := key
	other.Seed = 43
	if _, reused := c.Do(other, func() Result { ran++; return Result{} }); reused || ran != 2 {
		t.Fatalf("different key must execute: reused=%v ran=%d", reused, ran)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Coalesced != 0 || s.SharedHits != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Saved() != 1 {
		t.Fatalf("saved: %d", s.Saved())
	}
}

// TestSingleflightCoalesces drives many concurrent callers at one key
// (run under -race in CI): fn must execute exactly once, every caller
// must see the same result, and hits+coalesced must account for all the
// skipped callers.
func TestSingleflightCoalesces(t *testing.T) {
	c := NewCache("app", nil, nil)
	key := Key{App: "app", Test: "T", Assign: "h", Seed: 1}

	const callers = 32
	var ran atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]Result, callers)
	reuseds := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], reuseds[i] = c.Do(key, func() Result {
				ran.Add(1)
				<-release // hold the run open so later callers coalesce
				return Result{Failed: true, Msg: "once"}
			})
		}(i)
	}
	close(release)
	wg.Wait()

	if n := ran.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	executed := 0
	for i := range results {
		if !reflect.DeepEqual(results[i], Result{Failed: true, Msg: "once"}) {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		if !reuseds[i] {
			executed++
		}
	}
	if executed != 1 {
		t.Fatalf("%d callers report executed, want 1", executed)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Coalesced != callers-1 {
		t.Fatalf("stats don't account for all callers: %+v", s)
	}
}

// mapBackend is a trivial Backend for interplay tests.
type mapBackend struct {
	mu   sync.Mutex
	m    map[Key]Result
	gets int
	puts int
}

func newMapBackend() *mapBackend { return &mapBackend{m: map[Key]Result{}} }

func (b *mapBackend) Get(k Key) (Result, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	r, ok := b.m[k]
	return r, ok
}

func (b *mapBackend) Put(k Key, r Result) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	b.m[k] = r
}

func TestBackendInterplay(t *testing.T) {
	be := newMapBackend()
	key := Key{App: "app", Test: "T", Assign: "h", Seed: 9}
	be.m[key] = Result{Msg: "from-backend"}

	c := NewCache("app", be, nil)
	res, reused := c.Do(key, func() Result { t.Fatal("must not execute on a backend hit"); return Result{} })
	if !reused || res.Msg != "from-backend" {
		t.Fatalf("backend hit not honoured: reused=%v res=%+v", reused, res)
	}
	// The hit is now local: a second Do must not ask the backend again.
	gets := be.gets
	if _, reused := c.Do(key, func() Result { return Result{} }); !reused {
		t.Fatal("second lookup should hit locally")
	}
	if be.gets != gets {
		t.Fatalf("local hit still queried the backend (%d -> %d gets)", gets, be.gets)
	}

	// A miss executes and publishes to the backend, so a *fresh* cache
	// sharing the backend reuses it — the cross-worker scenario.
	miss := Key{App: "app", Test: "T", Assign: "h2", Seed: 9}
	if _, reused := c.Do(miss, func() Result { return Result{Failed: true} }); reused {
		t.Fatal("unexpected reuse on a fresh key")
	}
	if be.puts != 1 {
		t.Fatalf("miss did not publish to the backend: %d puts", be.puts)
	}
	c2 := NewCache("app", be, nil)
	res, reused = c2.Do(miss, func() Result { t.Fatal("second cache must reuse the published result"); return Result{} })
	if !reused || !res.Failed {
		t.Fatalf("cross-cache reuse failed: reused=%v res=%+v", reused, res)
	}
	if s := c2.Stats(); s.SharedHits != 1 {
		t.Fatalf("shared hit not counted: %+v", s)
	}
	s := c.Stats()
	if s.SharedHits != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("first cache stats: %+v", s)
	}
}
