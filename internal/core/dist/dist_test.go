package dist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/core/sched"
)

func mkItems(n int) []campaign.WorkItem {
	items := make([]campaign.WorkItem, n)
	for i := range items {
		items[i] = campaign.WorkItem{ID: i, Test: "T"}
	}
	return items
}

func TestQueueShardsRoundRobin(t *testing.T) {
	t.Parallel()
	q := newQueue(2, sched.FIFO)
	for _, it := range mkItems(4) {
		q.push(it)
	}
	// Worker 0's shard is items 0, 2; worker 1's is 1, 3.
	for _, want := range []int{0, 2} {
		item, _, jumped, stolen, ok := q.tryPop(0)
		if !ok || stolen || jumped || item.ID != want {
			t.Fatalf("tryPop(0) = %d jumped=%v stolen=%v ok=%v, want %d from own shard", item.ID, jumped, stolen, ok, want)
		}
	}
	// Worker 0's shard is dry: the next pop steals from the BACK of
	// worker 1's shard. Under FIFO a back-steal is never a reorder —
	// the reorder statistic counts only LPT decisions.
	item, _, jumped, stolen, ok := q.tryPop(0)
	if !ok || !stolen || item.ID != 3 {
		t.Fatalf("tryPop(0) = %d stolen=%v ok=%v, want steal of 3", item.ID, stolen, ok)
	}
	if jumped {
		t.Fatal("FIFO back-steal counted as a reorder")
	}
	if q.stealCount() != 1 {
		t.Fatalf("steals = %d, want 1", q.stealCount())
	}
	if item, _, _, _, _ := q.tryPop(1); item.ID != 1 {
		t.Fatalf("victim's own front = %d, want 1 (steal must not disturb it)", item.ID)
	}
	if _, _, _, _, ok := q.tryPop(0); ok {
		t.Fatal("empty queue still pops")
	}
	if q.idle() {
		t.Fatal("idle with 4 outstanding items")
	}
	for i := 0; i < 4; i++ {
		q.done()
	}
	if !q.idle() {
		t.Fatal("not idle after all items done")
	}
}

func TestQueueLPTPopsLongestFirst(t *testing.T) {
	t.Parallel()
	q := newQueue(1, sched.LPT)
	preds := []float64{1, 5, 3, 5}
	for i, p := range preds {
		q.push(campaign.WorkItem{ID: i, Test: "T", PredSeconds: p})
	}
	// Longest first; the 5-second tie breaks to the earlier submission.
	wantOrder := []int{1, 3, 2, 0}
	wantJumped := []bool{true, true, true, false}
	for i, want := range wantOrder {
		item, _, jumped, stolen, ok := q.tryPop(0)
		if !ok || stolen || item.ID != want {
			t.Fatalf("pop %d = %d stolen=%v ok=%v, want %d", i, item.ID, stolen, ok, want)
		}
		if jumped != wantJumped[i] {
			t.Fatalf("pop %d (item %d) jumped=%v, want %v", i, item.ID, jumped, wantJumped[i])
		}
	}
}

func TestQueueRequeuePrefersOtherShard(t *testing.T) {
	t.Parallel()
	q := newQueue(2, sched.FIFO)
	for _, it := range mkItems(2) {
		q.push(it)
	}
	item, _, _, _, _ := q.tryPop(0)
	q.requeue(0, item)
	// The retry must land where a different worker pops it first.
	got, _, _, stolen, ok := q.tryPop(1)
	if !ok || stolen {
		t.Fatalf("retry not on worker 1's own shard (stolen=%v ok=%v)", stolen, ok)
	}
	if got.ID != 1 {
		// Shard 1 already held item 1; the retry is behind it.
		t.Fatalf("front of shard 1 = %d, want 1", got.ID)
	}
	if got, _, _, _, _ := q.tryPop(1); got.ID != item.ID {
		t.Fatalf("retry = %d, want %d", got.ID, item.ID)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	j, err := OpenJournal(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindHeader, App: "a", Seed: 7, Items: 3},
		{Kind: KindDone, Item: 1, Test: "T1", Result: &campaign.ItemResult{ID: 1, Test: "T1", Executions: 5}},
		{Kind: KindGiveUp, Item: 2, Test: "T2", Reason: "timeout"},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, recs)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	content := `{"kind":"header","app":"a","items":1}` + "\n" +
		`{"kind":"done","item":0,"resul` // crash mid-append
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(got) != 1 || got[0].Kind != KindHeader {
		t.Fatalf("records = %+v, want just the header", got)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	content := `{"kind":"header"}` + "\n" + `not json` + "\n" + `{"kind":"done"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("corrupt mid-file record accepted")
	}
}

// flakyFile is a journalFile whose Write/Sync fail on demand, recording
// every byte that reached it.
type flakyFile struct {
	buf        bytes.Buffer
	writeErr   error // next Writes fail with this when set
	syncErr    error // next Syncs fail with this when set
	shortAfter int   // when > 0, the next Write accepts only this many bytes
	writes     int
}

func (f *flakyFile) Write(p []byte) (int, error) {
	f.writes++
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	if f.shortAfter > 0 && len(p) > f.shortAfter {
		n := f.shortAfter
		f.shortAfter = 0
		f.buf.Write(p[:n])
		return n, errors.New("short write")
	}
	return f.buf.Write(p)
}

func (f *flakyFile) Sync() error  { return f.syncErr }
func (f *flakyFile) Close() error { return nil }

// TestJournalLatchesWriteFailure pins the mid-batch corruption fix: a
// failed (possibly short) write leaves part of a record in the OS file,
// and a later successful append would splice valid JSON into the middle
// of that partial line. The journal must refuse every append after the
// first failure so the on-disk file stays a clean prefix plus at most
// one torn tail — exactly what ReadJournal tolerates.
func TestJournalLatchesWriteFailure(t *testing.T) {
	t.Parallel()
	f := &flakyFile{}
	// syncEvery=1: every Append flushes through to the "file", so write
	// failures surface immediately rather than living in bufio's buffer.
	j := newJournal(f, 1)
	if err := j.Append(Record{Kind: KindHeader, App: "a"}); err != nil {
		t.Fatal(err)
	}
	good := f.buf.String()

	// A short write tears the next record in half on "disk".
	f.shortAfter = 5
	if err := j.Append(Record{Kind: KindDone, Item: 1}); err == nil {
		t.Fatal("short write not reported")
	}
	torn := f.buf.String()
	if torn == good {
		t.Fatal("test harness: short write wrote nothing; the splice hazard isn't exercised")
	}

	// Every later append must be refused without touching the file:
	// appending here would splice bytes after the torn fragment.
	writes := f.writes
	err := j.Append(Record{Kind: KindDone, Item: 2})
	if err == nil || !strings.Contains(err.Error(), "refusing append") {
		t.Fatalf("append after failure = %v, want refusing-append error", err)
	}
	if f.writes != writes || f.buf.String() != torn {
		t.Fatal("failed journal still wrote to the file")
	}
	if err := j.Sync(); err == nil {
		t.Fatal("sync on a failed journal must report the failure")
	}
	// Close still closes the file but reports the sticky failure.
	if err := j.Close(); err == nil {
		t.Fatal("close on a failed journal must report the failure")
	}

	// The surviving prefix is what a resume would read: the good record
	// plus a torn tail, which ReadJournal tolerates.
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn-tail file unreadable: %v", err)
	}
	if len(recs) != 1 || recs[0].Kind != KindHeader {
		t.Fatalf("resume would replay %+v, want just the header", recs)
	}
}

func TestJournalLatchesSyncFailure(t *testing.T) {
	t.Parallel()
	f := &flakyFile{syncErr: errors.New("disk gone")}
	j := newJournal(f, 1)
	if err := j.Append(Record{Kind: KindHeader}); err == nil {
		t.Fatal("sync failure not reported through Append")
	}
	if err := j.Append(Record{Kind: KindDone}); err == nil || !strings.Contains(err.Error(), "refusing append") {
		t.Fatalf("append after sync failure = %v, want refusing-append error", err)
	}
}

func TestRemoteCacheGetDeliverAndMiss(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	var sent []Msg
	var rc *remoteCache
	rc = newRemoteCache(func(m Msg) error {
		mu.Lock()
		sent = append(sent, m)
		mu.Unlock()
		// Answer request 1 with a hit, request 2 with a miss.
		if m.Type == MsgCacheGet {
			reply := Msg{Type: MsgCacheVal, Req: m.Req}
			if m.Req == 1 {
				reply.CacheHit = true
				reply.CacheRes = &memo.Result{Failed: true, Msg: "cached"}
			}
			go rc.deliver(reply)
		}
		return nil
	})
	key := memo.Key{App: "a", Test: "T", Assign: "h", Seed: 1}
	res, ok := rc.Get(key)
	if !ok || !res.Failed || res.Msg != "cached" {
		t.Fatalf("Get hit = %+v %v", res, ok)
	}
	if res, ok := rc.Get(key); ok {
		t.Fatalf("miss reply treated as hit: %+v", res)
	}
	rc.Put(key, memo.Result{TimedOut: true})
	mu.Lock()
	defer mu.Unlock()
	if len(sent) != 3 || sent[2].Type != MsgCachePut || !sent[2].CacheRes.TimedOut {
		t.Fatalf("wire traffic: %+v", sent)
	}
	if sent[0].CacheKey == nil || *sent[0].CacheKey != key {
		t.Fatalf("cache-get key: %+v", sent[0].CacheKey)
	}
}

func TestRemoteCacheSendFailureIsMiss(t *testing.T) {
	t.Parallel()
	rc := newRemoteCache(func(Msg) error { return errors.New("pipe broken") })
	if _, ok := rc.Get(memo.Key{App: "a"}); ok {
		t.Fatal("send failure reported a hit")
	}
	rc.mu.Lock()
	n := len(rc.pending)
	rc.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending slots leaked after send failure", n)
	}
}

// TestRemoteCacheCloseReleasesPendingGet pins the shutdown drain: a Get
// blocked on the wire must come back as a miss when the cache closes,
// or the worker's wg.Wait would deadlock against its own read loop.
func TestRemoteCacheCloseReleasesPendingGet(t *testing.T) {
	t.Parallel()
	registered := make(chan struct{})
	rc := newRemoteCache(func(m Msg) error {
		close(registered) // reply never comes
		return nil
	})
	done := make(chan bool, 1)
	go func() {
		_, ok := rc.Get(memo.Key{App: "a"})
		done <- ok
	}()
	<-registered
	rc.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("closed cache reported a hit")
		}
	case <-time.After(remoteCacheTimeout / 2):
		t.Fatal("Get still blocked after close")
	}
	// Gets after close are immediate misses.
	if _, ok := rc.Get(memo.Key{App: "b"}); ok {
		t.Fatal("Get on a closed cache reported a hit")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	t.Parallel()
	opts := campaign.Options{
		MaxPool:           4,
		DisablePooling:    true,
		DisableRoundRobin: true,
		DisableGate:       true,
		Strategy:          agent.StrategyThreadOnly,
		Params:            []string{"a", "b"},
		Significance:      0.001,
		MaxRounds:         5,
		Seed:              99,
		DisableExecCache:  true,
	}
	got := ConfigFrom(opts).CampaignOptions()
	if !reflect.DeepEqual(got, opts) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, opts)
	}
}
