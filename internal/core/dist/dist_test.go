package dist

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/campaign"
)

func mkItems(n int) []campaign.WorkItem {
	items := make([]campaign.WorkItem, n)
	for i := range items {
		items[i] = campaign.WorkItem{ID: i, Test: "T"}
	}
	return items
}

func TestQueueShardsRoundRobin(t *testing.T) {
	t.Parallel()
	q := newQueue(2, mkItems(4))
	// Worker 0's shard is items 0, 2; worker 1's is 1, 3.
	for _, want := range []int{0, 2} {
		item, stolen, ok := q.tryPop(0)
		if !ok || stolen || item.ID != want {
			t.Fatalf("tryPop(0) = %d stolen=%v ok=%v, want %d from own shard", item.ID, stolen, ok, want)
		}
	}
	// Worker 0's shard is dry: the next pop steals from the BACK of
	// worker 1's shard.
	item, stolen, ok := q.tryPop(0)
	if !ok || !stolen || item.ID != 3 {
		t.Fatalf("tryPop(0) = %d stolen=%v ok=%v, want steal of 3", item.ID, stolen, ok)
	}
	if q.stealCount() != 1 {
		t.Fatalf("steals = %d, want 1", q.stealCount())
	}
	if item, _, _ := q.tryPop(1); item.ID != 1 {
		t.Fatalf("victim's own front = %d, want 1 (steal must not disturb it)", item.ID)
	}
	if _, _, ok := q.tryPop(0); ok {
		t.Fatal("empty queue still pops")
	}
	if q.idle() {
		t.Fatal("idle with 4 outstanding items")
	}
	for i := 0; i < 4; i++ {
		q.done()
	}
	if !q.idle() {
		t.Fatal("not idle after all items done")
	}
}

func TestQueueRequeuePrefersOtherShard(t *testing.T) {
	t.Parallel()
	q := newQueue(2, mkItems(2))
	item, _, _ := q.tryPop(0)
	q.requeue(0, item)
	// The retry must land where a different worker pops it first.
	got, stolen, ok := q.tryPop(1)
	if !ok || stolen {
		t.Fatalf("retry not on worker 1's own shard (stolen=%v ok=%v)", stolen, ok)
	}
	if got.ID != 1 {
		// Shard 1 already held item 1; the retry is behind it.
		t.Fatalf("front of shard 1 = %d, want 1", got.ID)
	}
	if got, _, _ := q.tryPop(1); got.ID != item.ID {
		t.Fatalf("retry = %d, want %d", got.ID, item.ID)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	j, err := OpenJournal(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindHeader, App: "a", Seed: 7, Items: 3},
		{Kind: KindDone, Item: 1, Test: "T1", Result: &campaign.ItemResult{ID: 1, Test: "T1", Executions: 5}},
		{Kind: KindGiveUp, Item: 2, Test: "T2", Reason: "timeout"},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, recs)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	content := `{"kind":"header","app":"a","items":1}` + "\n" +
		`{"kind":"done","item":0,"resul` // crash mid-append
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(got) != 1 || got[0].Kind != KindHeader {
		t.Fatalf("records = %+v, want just the header", got)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	content := `{"kind":"header"}` + "\n" + `not json` + "\n" + `{"kind":"done"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("corrupt mid-file record accepted")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	t.Parallel()
	opts := campaign.Options{
		MaxPool:           4,
		DisablePooling:    true,
		DisableRoundRobin: true,
		DisableGate:       true,
		Strategy:          agent.StrategyThreadOnly,
		Params:            []string{"a", "b"},
		Significance:      0.001,
		MaxRounds:         5,
		Seed:              99,
	}
	got := ConfigFrom(opts).CampaignOptions()
	if !reflect.DeepEqual(got, opts) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, opts)
	}
}
