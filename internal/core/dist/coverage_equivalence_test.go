package dist_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/dist"
)

// TestCoverageIndexLocalDistByteEquality is the canonicalization
// satellite: the persisted coverage index must be byte-identical whether
// the campaign ran in-process or sharded across worker subprocesses —
// read edges ride home on item results, the collector dedupes and sorts,
// and the serialized form has no order left to vary. Quarantine is
// disabled (threshold no campaign reaches) because completion-order
// pruning is the one legitimate execution difference between schedules.
func TestCoverageIndexLocalDistByteEquality(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	mkOpts := func() campaign.Options {
		return campaign.Options{
			Params:              []string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
			Tests:               []string{"TestWriteRead", "TestFsck", "TestMkdirList"},
			Seed:                7,
			QuarantineThreshold: math.MaxInt32,
		}
	}

	local := campaign.Run(app, mkOpts())
	dres := runDistributed(t, app, mkOpts(), dist.Options{
		Workers:   2,
		WorkerCmd: workerFactory(),
	})

	lix := coverage.Build(app.Name, 7, "key", local.Coverage, app.Schema())
	dix := coverage.Build(app.Name, 7, "key", dres.Coverage, app.Schema())
	lb, err := lix.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	db, err := dix.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(lix.Tests) == 0 {
		t.Fatal("local index is empty; the equality check is vacuous")
	}
	if !bytes.Equal(lb, db) {
		t.Fatalf("local and distributed coverage indexes differ:\nlocal:\n%s\ndist:\n%s", lb, db)
	}
}

// TestSelectionEquivalenceAllApps extends the five-app equivalence
// invariant to coverage-driven selection: on a warm index, the reported
// parameter set with -select=coverage must be identical to -select=all —
// in-process and sharded across workers — while selection actually
// skips tests somewhere in the matrix (otherwise the property is
// vacuous).
func TestSelectionEquivalenceAllApps(t *testing.T) {
	cases := []struct {
		app    string
		params []string
		tests  []string
	}{
		{"minihdfs",
			[]string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
			[]string{"TestWriteRead", "TestFsck", "TestMkdirList"}},
		{"miniyarn",
			[]string{"yarn.scheduler.maximum-allocation-mb", "yarn.timeline-service.enabled"},
			[]string{"TestAllocationAtMaxMB", "TestTimelineQuery", "TestSubmitApplication"}},
		{"minihbase",
			[]string{"hadoop.rpc.protection", "hbase.client.scanner.caching", "hbase.regionserver.thrift.compact"},
			[]string{"TestPutGet", "TestThriftAdmin"}},
		{"minimr",
			[]string{"mapreduce.jobhistory.max-age-ms", "mapreduce.jobhistory.address", "mapreduce.map.output.compress.codec"},
			[]string{"TestWordCount", "TestHistoryArchive"}},
		{"miniflink",
			[]string{"akka.ssl.enabled", "taskmanager.numberOfTaskSlots"},
			[]string{"TestJobSubmission", "TestSlotAllocationExact", "TestDataExchange"}},
	}
	const seed = 7
	totalDeselected := 0
	done := make(chan int, len(cases))
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			t.Parallel()
			app, err := apps.ByName(tc.app)
			if err != nil {
				t.Fatal(err)
			}
			mkOpts := func(selectCov bool, ix *coverage.Index) campaign.Options {
				return campaign.Options{
					Params:              tc.params,
					Tests:               tc.tests,
					Seed:                seed,
					QuarantineThreshold: math.MaxInt32,
					SelectCoverage:      selectCov,
					CoverageIndex:       ix,
				}
			}
			names := func(res *campaign.Result) []string {
				out := []string{}
				for _, r := range res.Reported {
					out = append(out, r.Param)
				}
				return out
			}

			// Cold full run seeds the index.
			cold := campaign.Run(app, mkOpts(false, nil))
			if len(cold.Reported) == 0 {
				t.Fatalf("%s subset reported nothing; the equivalence check is vacuous", tc.app)
			}
			ix := coverage.Build(app.Name, seed, "", cold.Coverage, app.Schema())

			on := campaign.Run(app, mkOpts(true, ix))
			off := campaign.Run(app, mkOpts(false, ix))
			if !reflect.DeepEqual(names(on), names(cold)) {
				t.Fatalf("warm -select=coverage diverges:\n cold %v\n on   %v", names(cold), names(on))
			}
			if !reflect.DeepEqual(names(off), names(cold)) {
				t.Fatalf("warm -select=all diverges:\n cold %v\n off  %v", names(cold), names(off))
			}
			if len(off.DeselectedTests) != 0 {
				t.Fatalf("-select=all deselected %v", off.DeselectedTests)
			}

			// The same warm-selection run sharded across workers.
			dres := runDistributed(t, app, mkOpts(true, ix), dist.Options{
				Workers:   2,
				WorkerCmd: workerFactory(),
			})
			if !reflect.DeepEqual(names(dres), names(cold)) {
				t.Fatalf("workers=2 warm selection diverges:\n cold %v\n dist %v", names(cold), names(dres))
			}
			if !reflect.DeepEqual(dres.DeselectedTests, on.DeselectedTests) {
				t.Fatalf("deselection differs local vs dist: %v vs %v",
					on.DeselectedTests, dres.DeselectedTests)
			}
			done <- len(on.DeselectedTests)
		})
	}
	t.Cleanup(func() {
		close(done)
		for n := range done {
			totalDeselected += n
		}
		if totalDeselected == 0 {
			t.Error("no app deselected any test; the selection property was never exercised")
		}
	})
}
