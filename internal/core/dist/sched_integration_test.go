package dist_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/sched"
	"zebraconf/internal/obs"
)

// runFakeWorker speaks the wire protocol without running any tests, so
// coordinator-side scheduling mechanics (speculation, quarantine
// broadcast) can be exercised with fully controlled timing. Behaviour is
// keyed off the dispatched item itself:
//
//   - a Test name suffixed "#<ms>" makes the FIRST process to claim that
//     item (an O_EXCL file in ZEBRACONF_DIST_FAKE_DIR) straggle for that
//     many milliseconds before answering; any later claimant — the
//     speculative copy — answers instantly.
//   - a Test name prefixed "TestQ" answers with one unsafe verdict for
//     the parameter "demo.param" (distinct tests, so several such items
//     trip the coordinator's frequent-failer threshold).
//   - every answer echoes the MsgQuarantine hints received so far in
//     ReachableParams, which is how tests observe the broadcast landing.
func runFakeWorker() {
	dir := os.Getenv("ZEBRACONF_DIST_FAKE_DIR")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	enc := json.NewEncoder(os.Stdout)
	var hints []string
	for sc.Scan() {
		var m dist.Msg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			os.Exit(1)
		}
		switch m.Type {
		case dist.MsgInit:
			enc.Encode(dist.Msg{Type: dist.MsgReady, PID: os.Getpid()})
		case dist.MsgQuarantine:
			hints = append(hints, m.Param)
		case dist.MsgRun:
			item := *m.Item
			if i := strings.LastIndex(item.Test, "#"); i >= 0 && dir != "" {
				ms, _ := strconv.Atoi(item.Test[i+1:])
				claim := filepath.Join(dir, fmt.Sprintf("claim%d", item.ID))
				if f, err := os.OpenFile(claim, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); err == nil {
					// Record which process straggled, so tests can tell the
					// losing primary's evidence from the winner's.
					fmt.Fprintf(f, "pid %d", os.Getpid())
					f.Close()
					time.Sleep(time.Duration(ms) * time.Millisecond)
				}
			}
			res := campaign.ItemResult{ID: item.ID, Test: item.Test, Executions: 1}
			if strings.HasPrefix(item.Test, "TestQ") {
				res.Verdicts = []campaign.InstanceVerdict{{
					Instance: "fake-" + strconv.Itoa(item.ID),
					Param:    "demo.param",
					Verdict:  runner.VerdictUnsafe.String(),
					Evidence: &forensics.Evidence{
						App: "fake", Test: item.Test, Param: "demo.param",
						Instance: "fake-" + strconv.Itoa(item.ID),
						Msg:      fmt.Sprintf("pid %d", os.Getpid()),
						Failed:   true, FirstDivergent: -1,
					},
				}}
			}
			sort.Strings(hints)
			res.ReachableParams = append([]string(nil), hints...)
			enc.Encode(dist.Msg{Type: dist.MsgResult, Result: &res})
		case dist.MsgBye:
			os.Exit(0)
		}
	}
	os.Exit(0)
}

// TestSpeculationReissuesStraggler drives the straggler path end to end:
// item 0's primary worker sleeps well past its (tiny) predicted
// duration, the queue is drained, and an idle worker must re-issue it
// and win; the primary's late duplicate arrives while the run is still
// open (item 1 finishes even later) and is discarded before accounting.
func TestSpeculationReissuesStraggler(t *testing.T) {
	t.Parallel()
	o := obs.New()
	dir := t.TempDir()
	items := []campaign.WorkItem{
		// #1800: primary straggles 1.8s against a 10ms prediction.
		{ID: 0, Test: "TestStraggler#1800", PredSeconds: 0.01},
		// A 10s prediction keeps item 1 from ever looking overdue, so it
		// holds the run open for the duplicate to land.
		{ID: 1, Test: "TestTail#2600", PredSeconds: 10},
		{ID: 2, Test: "TestFastA", PredSeconds: 0.01},
		{ID: 3, Test: "TestFastB", PredSeconds: 0.01},
	}
	coord := dist.New(dist.Options{
		App:               "fake",
		Workers:           3,
		WorkerCmd:         workerFactory("ZEBRACONF_DIST_FAKE=1", "ZEBRACONF_DIST_FAKE_DIR="+dir),
		Config:            dist.Config{Parallel: 1},
		SpeculationFactor: 1.0,
		ItemTimeout:       8 * time.Second,
		Obs:               o,
	})
	res, err := coord.Execute(obs.NoSpan, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(items) {
		t.Fatalf("results = %d, want %d (duplicates must be discarded)", len(res), len(items))
	}
	for i, r := range res {
		if r.ID != i || r.Quarantined {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}
	if n := o.Metrics.CounterValue(obs.MSpeculativeRuns, "app", "fake"); n != 1 {
		t.Fatalf("speculative runs = %d, want exactly 1 (only the straggler is overdue)", n)
	}
	if n := o.Metrics.CounterValue(obs.MSpeculationWins, "app", "fake"); n != 1 {
		t.Fatalf("speculation wins = %d, want 1", n)
	}
	// Five results crossed the wire (four items + the losing primary
	// copy), but exactly four may be accounted.
	if n := o.Metrics.CounterValue(obs.MWorkerItems, "app", "fake"); n != int64(len(items)) {
		t.Fatalf("accounted items = %d, want %d", n, len(items))
	}
}

// TestSpeculationDiscardsLoserEvidence pins the protocol-level evidence
// dedup: the straggler's primary and its speculative copy BOTH answer
// with evidence-bearing verdicts, so five such results cross the wire
// for four items — and exactly four evidence records may be accounted.
// The survivor for the speculated item must be the winner's record (the
// instant speculative copy), not the sleeping primary's, whose pid is
// recoverable from the straggle claim file.
func TestSpeculationDiscardsLoserEvidence(t *testing.T) {
	t.Parallel()
	o := obs.New()
	dir := t.TempDir()
	items := []campaign.WorkItem{
		{ID: 0, Test: "TestQStraggler#1800", PredSeconds: 0.01},
		{ID: 1, Test: "TestQTail#2600", PredSeconds: 10},
		{ID: 2, Test: "TestQFastA", PredSeconds: 0.01},
		{ID: 3, Test: "TestQFastB", PredSeconds: 0.01},
	}
	coord := dist.New(dist.Options{
		App:               "fake",
		Workers:           3,
		WorkerCmd:         workerFactory("ZEBRACONF_DIST_FAKE=1", "ZEBRACONF_DIST_FAKE_DIR="+dir),
		Config:            dist.Config{Parallel: 1},
		SpeculationFactor: 1.0,
		ItemTimeout:       8 * time.Second,
		Obs:               o,
	})
	res, err := coord.Execute(obs.NoSpan, items)
	if err != nil {
		t.Fatal(err)
	}
	if n := o.Metrics.CounterValue(obs.MSpeculationWins, "app", "fake"); n != 1 {
		t.Fatalf("speculation wins = %d, want 1 (no duplicate ever crossed the wire)", n)
	}
	if n := o.Metrics.CounterValue(obs.MEvidenceRecords, "app", "fake"); n != int64(len(items)) {
		t.Fatalf("evidence records = %d, want %d: the discarded duplicate's record leaked into accounting", n, len(items))
	}
	loser, err := os.ReadFile(filepath.Join(dir, "claim0"))
	if err != nil {
		t.Fatalf("the primary never straggled: %v", err)
	}
	ev := res[0].Verdicts[0].Evidence
	if ev == nil {
		t.Fatal("the speculated item lost its evidence record")
	}
	if ev.Msg == string(loser) {
		t.Fatalf("accounted evidence %q is the discarded primary's, want the speculative winner's", ev.Msg)
	}
}

// TestQuarantineBroadcastReachesWorkers pins the coordinator side of the
// §4 frequent-failer broadcast: three distinct tests confirming one
// parameter trip the (default) threshold, and the already-running worker
// receives MsgQuarantine before its next item — observed via the fake
// worker echoing its hints. One worker with Parallel 1 keeps the whole
// exchange sequential, hence deterministic.
func TestQuarantineBroadcastReachesWorkers(t *testing.T) {
	t.Parallel()
	o := obs.New()
	items := []campaign.WorkItem{
		{ID: 0, Test: "TestQAlpha"},
		{ID: 1, Test: "TestQBeta"},
		{ID: 2, Test: "TestQGamma"},
		{ID: 3, Test: "TestProbe"},
	}
	coord := dist.New(dist.Options{
		App:       "fake",
		Workers:   1,
		WorkerCmd: workerFactory("ZEBRACONF_DIST_FAKE=1"),
		Config:    dist.Config{Parallel: 1},
		Obs:       o,
	})
	res, err := coord.Execute(obs.NoSpan, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d, want 4", len(res))
	}
	// The first three items confirm demo.param from distinct tests; the
	// broadcast must be on the wire before item 3 is dispatched.
	for _, r := range res[:3] {
		if len(r.ReachableParams) != 0 {
			t.Fatalf("item %d saw quarantine hints %v before the threshold", r.ID, r.ReachableParams)
		}
	}
	if got := res[3].ReachableParams; len(got) != 1 || got[0] != "demo.param" {
		t.Fatalf("item 3 saw hints %v, want [demo.param]", got)
	}
	if n := o.Metrics.CounterValue(obs.MQuarantine, "app", "fake"); n != 1 {
		t.Fatalf("quarantine events = %d, want 1 (one per parameter, not per verdict)", n)
	}
}

// TestServeWorkerAppliesQuarantine is the worker side of the broadcast:
// a real ServeWorker session told that a parameter is quarantined must
// skip that parameter's instances on subsequent items — they disappear
// from the verdicts (skipped, not failed) while the other parameter's
// instances still run.
func TestServeWorkerAppliesQuarantine(t *testing.T) {
	t.Parallel()
	app := minihdfs(t)
	test, err := app.Test("TestWriteRead")
	if err != nil {
		t.Fatal(err)
	}
	pre := runner.New(app, runner.Options{BaseSeed: 7}).PreRun(test)
	item := campaign.WorkItem{ID: 0, Test: "TestWriteRead", PreRun: pre}

	serve := func(quarantine bool) campaign.ItemResult {
		t.Helper()
		toWorkerR, toWorkerW := io.Pipe()
		fromWorkerR, fromWorkerW := io.Pipe()
		done := make(chan error, 1)
		go func() {
			done <- dist.ServeWorker(toWorkerR, fromWorkerW, apps.ByName)
		}()
		enc := json.NewEncoder(toWorkerW)
		dec := json.NewDecoder(fromWorkerR)
		send := func(m dist.Msg) {
			t.Helper()
			if err := enc.Encode(m); err != nil {
				t.Fatal(err)
			}
		}
		send(dist.Msg{Type: dist.MsgInit, App: app.Name, Config: &dist.Config{
			Params:           []string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
			Seed:             7,
			DisableExecCache: true,
			Parallel:         1,
		}})
		var ready dist.Msg
		if err := dec.Decode(&ready); err != nil || ready.Type != dist.MsgReady || ready.Error != "" {
			t.Fatalf("handshake failed: %+v err %v", ready, err)
		}
		if quarantine {
			send(dist.Msg{Type: dist.MsgQuarantine, Param: "dfs.bytes-per-checksum"})
		}
		send(dist.Msg{Type: dist.MsgRun, Item: &item})
		var m dist.Msg
		for {
			if err := dec.Decode(&m); err != nil {
				t.Fatalf("reading result: %v", err)
			}
			if m.Type == dist.MsgResult {
				break
			}
		}
		send(dist.Msg{Type: dist.MsgBye})
		if err := <-done; err != nil {
			t.Fatalf("ServeWorker: %v", err)
		}
		toWorkerW.Close()
		fromWorkerR.Close()
		return *m.Result
	}

	verdictsFor := func(res campaign.ItemResult, param string) int {
		n := 0
		for _, v := range res.Verdicts {
			if v.Param == param {
				n++
			}
		}
		return n
	}

	base := serve(false)
	quar := serve(true)
	if verdictsFor(base, "dfs.bytes-per-checksum") == 0 {
		t.Fatal("baseline run produced no verdicts for the target parameter; the test is vacuous")
	}
	if n := verdictsFor(quar, "dfs.bytes-per-checksum"); n != 0 {
		t.Fatalf("quarantined parameter still produced %d verdicts", n)
	}
	if verdictsFor(quar, "dfs.checksum.type") == 0 {
		t.Fatal("quarantine of one parameter suppressed the other's instances")
	}
	if quar.Executions >= base.Executions {
		t.Fatalf("quarantine did not save work: %d executions vs %d baseline",
			quar.Executions, base.Executions)
	}
}

// TestSchedEquivalenceAllApps is the cross-app safety property for the
// whole scheduler: -sched=lpt -stream=true -speculate=1.5 across worker
// subprocesses must report the identical parameter set (and truth
// labels) as the barriered in-process FIFO baseline on the same seed,
// for every mini application.
func TestSchedEquivalenceAllApps(t *testing.T) {
	cases := []struct {
		app    string
		params []string
		tests  []string
	}{
		{"minihdfs",
			[]string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
			[]string{"TestWriteRead", "TestFsck", "TestMkdirList"}},
		{"miniyarn",
			[]string{"yarn.scheduler.maximum-allocation-mb", "yarn.timeline-service.enabled"},
			[]string{"TestAllocationAtMaxMB", "TestTimelineQuery", "TestSubmitApplication"}},
		{"minihbase",
			[]string{"hadoop.rpc.protection", "hbase.client.scanner.caching", "hbase.regionserver.thrift.compact"},
			[]string{"TestPutGet", "TestThriftAdmin"}},
		{"minimr",
			[]string{"mapreduce.jobhistory.max-age-ms", "mapreduce.jobhistory.address", "mapreduce.map.output.compress.codec"},
			[]string{"TestWordCount", "TestHistoryArchive"}},
		{"miniflink",
			[]string{"akka.ssl.enabled", "taskmanager.numberOfTaskSlots"},
			[]string{"TestJobSubmission", "TestSlotAllocationExact", "TestDataExchange"}},
	}
	const seed = 7
	reportedSet := func(res *campaign.Result) []string {
		var out []string
		for _, rep := range res.Reported {
			out = append(out, fmt.Sprintf("%s truth=%v", rep.Param, rep.Truth))
		}
		sort.Strings(out)
		return out
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			t.Parallel()
			app, err := apps.ByName(tc.app)
			if err != nil {
				t.Fatal(err)
			}
			mkOpts := func(policy sched.Policy, stream bool) campaign.Options {
				return campaign.Options{
					Params:      tc.params,
					Tests:       tc.tests,
					Seed:        seed,
					SchedPolicy: policy,
					Stream:      stream,
				}
			}
			baseline := campaign.Run(app, mkOpts(sched.FIFO, false))
			if len(baseline.Reported) == 0 {
				t.Fatalf("%s subset reported nothing; the equivalence check is vacuous", tc.app)
			}
			sres := runDistributed(t, app, mkOpts(sched.LPT, true), dist.Options{
				Workers:           2,
				WorkerCmd:         workerFactory(),
				SchedPolicy:       sched.LPT,
				SpeculationFactor: 1.5,
			})
			if got, want := reportedSet(sres), reportedSet(baseline); !reflect.DeepEqual(got, want) {
				t.Fatalf("LPT+stream+speculate changed the reported set:\n got  %v\n want %v", got, want)
			}
		})
	}
}
