package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"zebraconf/internal/core/campaign"
)

// Journal record kinds.
const (
	// KindHeader identifies the campaign a journal belongs to; one is
	// appended every time the journal is opened, so a resumed-and-
	// continued file carries one per session.
	KindHeader = "header"
	// KindDone records one completed work item with its full result;
	// these are the records -resume replays.
	KindDone = "done"
	// KindGiveUp records an item the coordinator quarantined after
	// exhausting its retry budget. Informational: a resumed run retries
	// such items (the crashes may have been environmental).
	KindGiveUp = "give-up"
)

// Record is one journal line.
type Record struct {
	Kind string `json:"kind"`
	// Header fields.
	App   string `json:"app,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	Items int    `json:"items,omitempty"`
	// Done / give-up fields.
	Item   int                  `json:"item,omitempty"`
	Test   string               `json:"test,omitempty"`
	Reason string               `json:"reason,omitempty"`
	Result *campaign.ItemResult `json:"result,omitempty"`
}

// journalFile is the slice of *os.File the journal needs; an interface
// so tests can inject write/sync failures.
type journalFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Journal is the crash-safe checkpoint log: JSONL, append-only, fsync'd
// every SyncEvery records (and on Close), so at most one batch of work
// is re-executed after a coordinator crash and a torn final line is the
// worst possible corruption.
//
// A journal that has seen any write or sync error is failed for good:
// a short bufio write leaves part of a line buffered, and a later
// successful Append would splice its bytes into the middle of that
// partial record — mid-file corruption ReadJournal rightly rejects as
// unresumable. Refusing every append after the first error keeps the
// file a clean prefix of valid records plus at most one torn tail.
type Journal struct {
	mu        sync.Mutex
	f         journalFile
	w         *bufio.Writer
	pending   int
	syncEvery int
	err       error // sticky first write/sync failure
}

// DefaultSyncEvery batches this many appends per fsync.
const DefaultSyncEvery = 8

// OpenJournal opens (creating or appending) the journal at path.
// syncEvery <= 0 selects DefaultSyncEvery.
func OpenJournal(path string, syncEvery int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: open journal: %w", err)
	}
	return newJournal(f, syncEvery), nil
}

// newJournal wraps an open file; split from OpenJournal so tests can
// inject failing files.
func newJournal(f journalFile, syncEvery int) *Journal {
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}
	return &Journal{f: f, w: bufio.NewWriter(f), syncEvery: syncEvery}
}

// Append writes one record and fsyncs if the batch is full. After any
// write or sync failure the journal is failed: every later Append (and
// Sync) returns the original error without touching the file.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dist: marshal journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return fmt.Errorf("dist: journal failed, refusing append: %w", j.err)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
		return err
	}
	j.pending++
	if j.pending >= j.syncEvery {
		return j.syncLocked()
	}
	return nil
}

func (j *Journal) syncLocked() error {
	if j.err != nil {
		return fmt.Errorf("dist: journal failed, refusing sync: %w", j.err)
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return err
	}
	j.pending = 0
	return nil
}

// Sync flushes and fsyncs any pending records.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Close syncs and closes the journal. A failed journal still closes its
// file, but reports the failure.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	syncErr := j.syncLocked()
	if err := j.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// ReadJournal loads every record from path. A torn final line — the
// signature of a crash mid-append — is tolerated and dropped; a corrupt
// line anywhere else is an error, because it means the file is not the
// journal we wrote.
func ReadJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dist: read journal: %w", err)
	}
	defer f.Close()

	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	torn := -1 // line number of a parse failure, tolerated only at EOF
	for sc.Scan() {
		line++
		if torn >= 0 {
			return nil, fmt.Errorf("dist: journal %s: corrupt record at line %d", path, torn)
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			torn = line
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dist: read journal %s: %w", path, err)
	}
	return out, nil
}
