package dist_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/ledger"
	"zebraconf/internal/obs"
)

// startTCPWorkers runs n real `-worker -connect` loops against the
// gateway and returns a shutdown func. Shutdown closes the gateway
// first: a parked worker blocks inside its session until the gateway
// kills the connection, and only then reaches the Stop check in its
// dial loop.
func startTCPWorkers(t *testing.T, gw *dist.Gateway, token string, n int) func() {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := dist.ConnectWorker(gw.Addr(), dist.ConnectOptions{Token: token, Stop: stop}, apps.ByName); err != nil {
				t.Error(err)
			}
		}()
	}
	return func() {
		close(stop)
		gw.Close()
		wg.Wait()
	}
}

// waitIdle blocks until the gateway has parked want idle workers.
func waitIdle(t *testing.T, gw *dist.Gateway, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for gw.Stats().WorkersIdle < want {
		if time.Now().After(deadline) {
			t.Fatalf("gateway idle = %d, want %d (workers never parked)", gw.Stats().WorkersIdle, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rudeWorker is a protocol-speaking TCP worker that authenticates,
// acknowledges init, then slams the connection shut the moment the
// first work item arrives — a machine lost mid-item, as the gateway
// sees it.
func rudeWorker(t *testing.T, addr, token string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Error(err)
		return
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(dist.Msg{Type: dist.MsgHello, Token: token, PID: os.Getpid()}); err != nil {
		t.Error(err)
		return
	}
	rd := bufio.NewReader(conn)
	if _, err := rd.ReadString('\n'); err != nil { // welcome
		t.Error(err)
		return
	}
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return // gateway gave up on us first
		}
		var m dist.Msg
		if json.Unmarshal([]byte(line), &m) != nil {
			return
		}
		switch m.Type {
		case dist.MsgInit:
			if err := enc.Encode(dist.Msg{Type: dist.MsgReady, PID: os.Getpid()}); err != nil {
				return
			}
		case dist.MsgRun:
			return // deferred Close: rude mid-item disconnect
		}
	}
}

// withEvidence is the subset campaign with forensic capture on, so the
// retry accounting below can assert evidence records are not duplicated.
func withEvidence(seed int64, o *obs.Observer) campaign.Options {
	opts := subsetOptions(seed, o)
	opts.EvidenceMax = forensics.DefaultBudget
	return opts
}

// TestGatewayRudeDisconnectRetries kills a TCP worker mid-item and
// requires the coordinator to treat the disconnect as a worker crash:
// the item retries on a freshly acquired worker, the merged result
// matches a local run, and every reported parameter carries exactly one
// evidence record — the lost attempt must not double-account.
func TestGatewayRudeDisconnectRetries(t *testing.T) {
	t.Parallel()
	app := minihdfs(t)
	const seed, token = 11, "gw-secret"

	gw, err := dist.ListenGateway("127.0.0.1:0", token, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Park the rude worker first: with one slot, the coordinator leases
	// idle workers FIFO, so the campaign starts on the doomed session.
	go rudeWorker(t, gw.Addr(), token)
	waitIdle(t, gw, 1)
	shutdown := startTCPWorkers(t, gw, token, 1)
	defer shutdown()
	waitIdle(t, gw, 2)

	o := obs.New()
	res := runDistributed(t, app, withEvidence(seed, o), dist.Options{
		Workers:     1,
		Sessions:    gw,
		ItemRetries: dist.DefaultItemRetries,
	})

	if n := o.Metrics.CounterValue(obs.MWorkerCrashes, "app", app.Name, "reason", "crash"); n < 1 {
		t.Fatalf("worker crashes = %d, want >= 1 (the rude disconnect was not seen as a crash)", n)
	}
	if st := gw.Stats(); st.WorkersAdmitted < 2 {
		t.Fatalf("workers admitted = %d, want >= 2 (retry never acquired a fresh worker)", st.WorkersAdmitted)
	}

	local := campaign.Run(app, withEvidence(seed, nil))
	if len(local.Reported) == 0 {
		t.Fatal("local subset campaign reported nothing; the check is vacuous")
	}
	if len(res.Reported) != len(local.Reported) {
		t.Fatalf("reported %d parameters, local run reported %d", len(res.Reported), len(local.Reported))
	}
	for i, p := range res.Reported {
		lp := local.Reported[i]
		if p.Param != lp.Param || p.Truth != lp.Truth {
			t.Fatalf("report %d diverges: got %s (%v), local %s (%v)", i, p.Param, p.Truth, lp.Param, lp.Truth)
		}
		if (p.Evidence != nil) != (lp.Evidence != nil) {
			t.Fatalf("%s: evidence presence diverges from local run", p.Param)
		}
	}
	// Ledger-level accounting: the retried campaign records the same
	// number of evidence records as an uninterrupted local run — exactly
	// one per evidenced verdict, none duplicated by the lost attempt.
	now := time.Now()
	distRec := ledger.Summarize(res, seed, now, 1, nil)
	localRec := ledger.Summarize(local, seed, now, 0, nil)
	if distRec.EvidenceRecords != localRec.EvidenceRecords || distRec.EvidenceRecords == 0 {
		t.Fatalf("evidence records = %d, local %d; want equal and nonzero",
			distRec.EvidenceRecords, localRec.EvidenceRecords)
	}
}

// TestGatewayTCPWorkersMatchLocal extends the equivalence invariant to
// networked workers: a campaign sharded over two real TCP worker
// sessions reports byte-identically to the in-process pool.
func TestGatewayTCPWorkersMatchLocal(t *testing.T) {
	t.Parallel()
	app := minihdfs(t)
	const seed, token = 11, "gw-secret"

	gw, err := dist.ListenGateway("127.0.0.1:0", token, nil)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startTCPWorkers(t, gw, token, 2)
	defer shutdown()

	local := campaign.Run(app, subsetOptions(seed, nil))
	res := runDistributed(t, app, subsetOptions(seed, nil), dist.Options{
		Workers:  2,
		Sessions: gw,
	})
	if !reflect.DeepEqual(res.Reported, local.Reported) {
		t.Fatalf("reported parameters diverge:\n tcp   %+v\n local %+v", res.Reported, local.Reported)
	}
	if res.Counts.Executed != local.Counts.Executed {
		t.Fatalf("executions diverge: tcp %d, local %d", res.Counts.Executed, local.Counts.Executed)
	}
	if len(local.Reported) == 0 {
		t.Fatal("subset campaign reported nothing; the equivalence check is vacuous")
	}
}

// TestGatewayAuthReject: a worker with the wrong token is told so and
// must not redial; the gateway counts the failure and parks nothing.
func TestGatewayAuthReject(t *testing.T) {
	t.Parallel()
	gw, err := dist.ListenGateway("127.0.0.1:0", "right-token", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	err = dist.ConnectWorker(gw.Addr(), dist.ConnectOptions{Token: "wrong-token"}, apps.ByName)
	if !errors.Is(err, dist.ErrAuthRejected) {
		t.Fatalf("ConnectWorker error = %v, want ErrAuthRejected", err)
	}
	st := gw.Stats()
	if st.AuthFailures < 1 {
		t.Fatalf("auth failures = %d, want >= 1", st.AuthFailures)
	}
	if st.WorkersAdmitted != 0 || st.WorkersIdle != 0 {
		t.Fatalf("rejected worker was admitted: %+v", st)
	}
}
