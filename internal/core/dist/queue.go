package dist

import (
	"sync"

	"zebraconf/internal/core/campaign"
)

// queue is the coordinator's sharded work queue. Items are dealt
// round-robin across one shard per worker slot, so each worker starts on
// a disjoint stripe of the campaign; a worker that drains its own shard
// steals from the back of the longest other shard. Stealing from the
// back keeps the victim's front — the items it will pop next — intact,
// the classic work-stealing deque discipline.
type queue struct {
	mu     sync.Mutex
	shards [][]campaign.WorkItem
	// outstanding counts items popped but not yet marked done; the
	// campaign is complete when every shard is empty and outstanding
	// is zero.
	outstanding int
	// wake is pulsed whenever work is added or completed, so idle
	// supervisors re-check their shard instead of busy-polling.
	wake chan struct{}
	// steals counts cross-shard pops, surfaced as MSteals.
	steals int64
}

func newQueue(shards int, items []campaign.WorkItem) *queue {
	q := &queue{
		shards: make([][]campaign.WorkItem, shards),
		wake:   make(chan struct{}, 1),
	}
	for i, it := range items {
		s := i % shards
		q.shards[s] = append(q.shards[s], it)
	}
	return q
}

// tryPop returns the next item for worker slot w: the front of its own
// shard, else the back of the longest other shard (a steal). ok=false
// means no work is currently queued (some may still be outstanding).
func (q *queue) tryPop(w int) (item campaign.WorkItem, stolen bool, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.shards[w]) > 0 {
		item = q.shards[w][0]
		q.shards[w] = q.shards[w][1:]
		q.outstanding++
		return item, false, true
	}
	victim, best := -1, 0
	for i := range q.shards {
		if i != w && len(q.shards[i]) > best {
			victim, best = i, len(q.shards[i])
		}
	}
	if victim < 0 {
		return campaign.WorkItem{}, false, false
	}
	last := len(q.shards[victim]) - 1
	item = q.shards[victim][last]
	q.shards[victim] = q.shards[victim][:last]
	q.outstanding++
	q.steals++
	return item, true, true
}

// requeue returns a popped item to the queue for a retry, preferring a
// shard other than the slot that just failed it so the retry lands on a
// different (fresh) worker when one exists.
func (q *queue) requeue(failedSlot int, item campaign.WorkItem) {
	q.mu.Lock()
	target := failedSlot
	if len(q.shards) > 1 {
		target = (failedSlot + 1) % len(q.shards)
	}
	q.shards[target] = append(q.shards[target], item)
	q.outstanding--
	q.mu.Unlock()
	q.pulse()
}

// done marks a popped item finished (successfully or given up).
func (q *queue) done() {
	q.mu.Lock()
	q.outstanding--
	q.mu.Unlock()
	q.pulse()
}

// idle reports whether all work is finished: nothing queued, nothing
// outstanding.
func (q *queue) idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.outstanding > 0 {
		return false
	}
	for _, s := range q.shards {
		if len(s) > 0 {
			return false
		}
	}
	return true
}

// depth returns the number of queued (not outstanding) items.
func (q *queue) depth() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var n int64
	for _, s := range q.shards {
		n += int64(len(s))
	}
	return n
}

func (q *queue) stealCount() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.steals
}

// pulse wakes one waiter without blocking.
func (q *queue) pulse() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
