package dist

import (
	"sync"
	"time"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/sched"
)

// queued is one waiting work item plus its scheduling metadata.
type queued struct {
	item campaign.WorkItem
	seq  int
	enq  time.Time
}

// queue is the coordinator's sharded work queue. Items are dealt
// round-robin across one shard per worker slot as they are submitted, so
// each worker starts on a disjoint stripe of the campaign; a worker that
// drains its own shard steals from the longest other shard. Under the
// FIFO policy a worker pops its shard's front and steals from the back
// (the classic work-stealing deque discipline, keeping the victim's
// front intact); under LPT both pops pick the longest-predicted item, so
// the items that dominate the makespan start first.
type queue struct {
	mu     sync.Mutex
	policy sched.Policy
	shards [][]queued
	seq    int
	// outstanding counts items popped but not yet marked done; the
	// campaign is complete when every shard is empty and outstanding
	// is zero.
	outstanding int
	// wake is pulsed whenever work is added or completed, so idle
	// supervisors re-check their shard instead of busy-polling.
	wake chan struct{}
	// steals counts cross-shard pops, surfaced as MSteals.
	steals int64
}

func newQueue(shards int, policy sched.Policy) *queue {
	return &queue{
		policy: policy,
		shards: make([][]queued, shards),
		wake:   make(chan struct{}, 1),
	}
}

// push enqueues one submitted item on the next round-robin shard.
func (q *queue) push(item campaign.WorkItem) {
	q.mu.Lock()
	s := q.seq % len(q.shards)
	q.shards[s] = append(q.shards[s], queued{item: item, seq: q.seq, enq: time.Now()})
	q.seq++
	q.mu.Unlock()
	q.pulse()
}

// pickFrom selects the index to pop from a shard: under LPT the
// longest-predicted item (ties to the earliest-submitted); under FIFO,
// front for the own shard and back for a steal.
func (q *queue) pickFrom(shard []queued, stealing bool) int {
	if q.policy == sched.LPT {
		best := 0
		for i := 1; i < len(shard); i++ {
			if shard[i].item.PredSeconds > shard[best].item.PredSeconds {
				best = i
			}
		}
		return best
	}
	if stealing {
		return len(shard) - 1
	}
	return 0
}

// tryPop returns the next item for worker slot w, how long it waited
// queued, and whether the pop overtook an earlier-submitted item in its
// shard (the reorder statistic). ok=false means no work is currently
// queued (some may still be outstanding).
func (q *queue) tryPop(w int) (item campaign.WorkItem, wait time.Duration, jumped, stolen, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	shard := w
	if len(q.shards[w]) == 0 {
		victim, best := -1, 0
		for i := range q.shards {
			if i != w && len(q.shards[i]) > best {
				victim, best = i, len(q.shards[i])
			}
		}
		if victim < 0 {
			return campaign.WorkItem{}, 0, false, false, false
		}
		shard = victim
		stolen = true
		q.steals++
	}
	s := q.shards[shard]
	pick := q.pickFrom(s, stolen)
	t := s[pick]
	// The reorder statistic counts scheduler decisions, not baseline
	// work-stealing: only an LPT pick that overtakes an earlier-submitted
	// item in its shard is a reorder (FIFO, the ablation baseline, always
	// reads zero here).
	if q.policy == sched.LPT {
		for _, other := range s {
			if other.seq < t.seq {
				jumped = true
				break
			}
		}
	}
	copy(s[pick:], s[pick+1:])
	q.shards[shard] = s[:len(s)-1]
	q.outstanding++
	return t.item, time.Since(t.enq), jumped, stolen, true
}

// requeue returns a popped item to the queue for a retry, preferring a
// shard other than the slot that just failed it so the retry lands on a
// different (fresh) worker when one exists.
func (q *queue) requeue(failedSlot int, item campaign.WorkItem) {
	q.mu.Lock()
	target := failedSlot
	if len(q.shards) > 1 {
		target = (failedSlot + 1) % len(q.shards)
	}
	q.shards[target] = append(q.shards[target], queued{item: item, seq: q.seq, enq: time.Now()})
	q.seq++
	q.outstanding--
	q.mu.Unlock()
	q.pulse()
}

// done marks a popped item finished (successfully or given up).
func (q *queue) done() {
	q.mu.Lock()
	q.outstanding--
	q.mu.Unlock()
	q.pulse()
}

// idle reports whether all work is finished: nothing queued, nothing
// outstanding.
func (q *queue) idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.outstanding > 0 {
		return false
	}
	for _, s := range q.shards {
		if len(s) > 0 {
			return false
		}
	}
	return true
}

// depth returns the number of queued (not outstanding) items.
func (q *queue) depth() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var n int64
	for _, s := range q.shards {
		n += int64(len(s))
	}
	return n
}

func (q *queue) stealCount() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.steals
}

// pulse wakes one waiter without blocking.
func (q *queue) pulse() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
