package dist

import (
	"sync"
	"time"

	"zebraconf/internal/core/memo"
)

// remoteCacheTimeout bounds how long a worker waits for the coordinator
// to answer one cache-get before treating it as a miss. Generous for a
// same-host pipe; re-running on a miss is always correct, so a wedged
// coordinator degrades throughput, never results.
const remoteCacheTimeout = 5 * time.Second

// remoteCache is the worker-side memo.Backend speaking the cache-get /
// cache-val / cache-put messages to the coordinator. Gets are correlated
// request/response pairs (Req); puts are fire-and-forget. Every failure
// mode — send error, timeout, close during shutdown — degrades to a
// cache miss.
type remoteCache struct {
	send func(Msg) error

	mu      sync.Mutex
	nextReq int64
	pending map[int64]chan Msg
	closed  bool
}

func newRemoteCache(send func(Msg) error) *remoteCache {
	return &remoteCache{send: send, pending: make(map[int64]chan Msg)}
}

// Get asks the coordinator for one key, blocking until the reply
// arrives, the timeout fires, or the cache is closed.
func (rc *remoteCache) Get(k memo.Key) (memo.Result, bool) {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return memo.Result{}, false
	}
	rc.nextReq++
	req := rc.nextReq
	ch := make(chan Msg, 1)
	rc.pending[req] = ch
	rc.mu.Unlock()

	key := k
	if err := rc.send(Msg{Type: MsgCacheGet, Req: req, CacheKey: &key}); err != nil {
		rc.drop(req)
		return memo.Result{}, false
	}
	timer := time.NewTimer(remoteCacheTimeout)
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		if !ok || !m.CacheHit || m.CacheRes == nil {
			return memo.Result{}, false
		}
		return *m.CacheRes, true
	case <-timer.C:
		rc.drop(req)
		return memo.Result{}, false
	}
}

// Put publishes one executed result, fire-and-forget.
func (rc *remoteCache) Put(k memo.Key, res memo.Result) {
	key, val := k, res
	rc.send(Msg{Type: MsgCachePut, CacheKey: &key, CacheRes: &val})
}

// deliver routes one cache-val reply to its waiting Get; unmatched
// replies (already timed out or dropped) are discarded.
func (rc *remoteCache) deliver(m Msg) {
	rc.mu.Lock()
	ch, ok := rc.pending[m.Req]
	if ok {
		delete(rc.pending, m.Req)
	}
	rc.mu.Unlock()
	if ok {
		ch <- m
	}
}

// close releases every pending Get as a miss. The worker calls it before
// waiting on in-flight items at shutdown: the coordinator is gone, so a
// Get blocked on the wire would deadlock the drain.
func (rc *remoteCache) close() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return
	}
	rc.closed = true
	for req, ch := range rc.pending {
		delete(rc.pending, req)
		close(ch)
	}
}

// drop abandons one request's slot (send failure or timeout).
func (rc *remoteCache) drop(req int64) {
	rc.mu.Lock()
	delete(rc.pending, req)
	rc.mu.Unlock()
}
