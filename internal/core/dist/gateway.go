package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"zebraconf/internal/core/harness"
	"zebraconf/internal/obs"
)

// helloTimeout bounds the TCP handshake: a connection that hasn't
// produced a complete hello line (or accepted the welcome) within it is
// dropped. Keeps half-open scanners from pinning goroutines.
const helloTimeout = 10 * time.Second

// maxHelloLine bounds the first line read off an unauthenticated
// connection, so garbage can't balloon memory before the token check.
const maxHelloLine = 64 << 10

// errGatewayClosed tells a coordinator slot that no networked worker
// will ever arrive: the gateway is shut down.
var errGatewayClosed = errors.New("dist: worker gateway closed")

// errAcquireStopped ends an Acquire wait because the run stopped first.
var errAcquireStopped = errors.New("dist: session acquire aborted: run stopped")

// ErrAuthRejected is returned by ConnectWorker when the gateway refuses
// the handshake; redialing with the same credentials cannot succeed.
var ErrAuthRejected = errors.New("dist: gateway rejected worker")

// Gateway accepts `zebraconf -worker -connect` TCP connections, runs
// the hello/welcome token handshake, and parks authenticated workers in
// an idle pool until a coordinator leases them via Acquire — the
// networked replacement for spawning worker subprocesses. A leased
// session speaks exactly the stdio NDJSON protocol framed onto the
// connection; when the campaign releases it (bye or kill closes the
// connection) the worker redials and parks fresh, so worker lifecycle
// stays trivially simple: one connection, at most one campaign.
type Gateway struct {
	ln    net.Listener
	token string
	o     *obs.Observer

	admitted  atomic.Int64
	authFails atomic.Int64

	mu      sync.Mutex
	closed  bool
	idle    []*gatewayWorker
	waiters []chan *gatewayWorker
}

// gatewayWorker is one parked (or in-handoff) authenticated worker. A
// monitor goroutine watches the session while idle: a parked worker
// must be silent, so any read — a message or the EOF of a died peer —
// marks it dead and discards it. lease() stops the monitor and reports
// whether the worker is still usable; the ordering guarantees the
// monitor can no longer consume protocol messages once the coordinator
// owns the session.
type gatewayWorker struct {
	sess        *workerSession
	leased      chan struct{}
	monitorDone chan struct{}
	dead        bool
}

func (w *gatewayWorker) monitor(g *Gateway) {
	defer close(w.monitorDone)
	select {
	case <-w.sess.msgs:
		// An idle worker has nothing to say; a message means it lost
		// protocol framing, and a channel close means it disconnected.
		w.dead = true
		g.discard(w)
	case <-w.leased:
	}
}

// lease transfers session ownership from the monitor to the caller.
func (w *gatewayWorker) lease() bool {
	close(w.leased)
	<-w.monitorDone
	return !w.dead
}

// GatewayStats is the point-in-time gateway snapshot served by the
// campaign server's /api/status.
type GatewayStats struct {
	WorkersAdmitted int64 `json:"workers_admitted"`
	AuthFailures    int64 `json:"auth_failures"`
	WorkersIdle     int   `json:"workers_idle"`
}

// ListenGateway opens a worker gateway on addr. token guards admission;
// empty means unauthenticated (loopback testing only). o may be nil.
func ListenGateway(addr, token string, o *obs.Observer) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: gateway listen: %w", err)
	}
	g := &Gateway{ln: ln, token: token, o: o}
	go g.acceptLoop()
	return g, nil
}

// Addr is the gateway's bound listen address (useful with ":0").
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.Lock()
	idle := len(g.idle)
	g.mu.Unlock()
	return GatewayStats{
		WorkersAdmitted: g.admitted.Load(),
		AuthFailures:    g.authFails.Load(),
		WorkersIdle:     idle,
	}
}

// Close shuts the gateway: stop accepting, fail pending Acquires, drop
// idle workers (their redial loops will then also fail and back off).
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	idle := g.idle
	waiters := g.waiters
	g.idle, g.waiters = nil, nil
	g.mu.Unlock()
	err := g.ln.Close()
	for _, ch := range waiters {
		ch <- nil
	}
	for _, w := range idle {
		w.sess.kill()
	}
	g.o.GaugeSet(obs.MGatewayIdle, 0)
	return err
}

func (g *Gateway) acceptLoop() {
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		go g.admit(conn)
	}
}

// admit runs the handshake on one fresh connection. Every failure mode
// before the welcome — timeout, garbage, wrong token — counts as an
// auth failure and closes the connection.
func (g *Gateway) admit(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(helloTimeout))
	reject := func() {
		g.authFails.Add(1)
		g.o.CounterAdd(obs.MGatewayAuthFailures, 1)
		conn.Close()
	}
	line, err := readLine(conn, maxHelloLine)
	if err != nil {
		reject()
		return
	}
	var hello Msg
	if json.Unmarshal(line, &hello) != nil || hello.Type != MsgHello {
		reject()
		return
	}
	if g.token != "" && hello.Token != g.token {
		// Tell the worker why before hanging up, so its operator sees
		// "rejected" instead of a silent reconnect loop.
		writeMsg(conn, Msg{Type: MsgWelcome, Error: "authentication failed"})
		reject()
		return
	}
	if writeMsg(conn, Msg{Type: MsgWelcome}) != nil {
		reject()
		return
	}
	conn.SetDeadline(time.Time{})
	g.admitted.Add(1)
	g.o.CounterAdd(obs.MGatewayWorkers, 1)
	s := &workerSession{
		w:          conn,
		msgs:       make(chan Msg, 64),
		readerDone: make(chan struct{}),
		pid:        hello.PID,
		remote:     conn.RemoteAddr().String(),
		teardown:   func() { conn.Close() },
	}
	go s.readLoop(conn)
	w := &gatewayWorker{sess: s, leased: make(chan struct{}), monitorDone: make(chan struct{})}
	go w.monitor(g)
	g.park(w)
}

// park routes a worker to a pending Acquire, or into the idle pool.
func (g *Gateway) park(w *gatewayWorker) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		w.sess.kill()
		return
	}
	if len(g.waiters) > 0 {
		ch := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.mu.Unlock()
		ch <- w
		return
	}
	g.idle = append(g.idle, w)
	n := len(g.idle)
	g.mu.Unlock()
	g.o.GaugeSet(obs.MGatewayIdle, int64(n))
}

// discard drops a worker that died while idle.
func (g *Gateway) discard(w *gatewayWorker) {
	g.mu.Lock()
	for i, cand := range g.idle {
		if cand == w {
			g.idle = append(g.idle[:i], g.idle[i+1:]...)
			break
		}
	}
	n := len(g.idle)
	g.mu.Unlock()
	g.o.GaugeSet(obs.MGatewayIdle, int64(n))
	w.sess.kill()
}

// Acquire leases the next available worker session, blocking until one
// connects, stop closes (errAcquireStopped), or the gateway shuts down
// (errGatewayClosed). Called by coordinator slot supervisors.
func (g *Gateway) Acquire(stop <-chan struct{}) (*workerSession, error) {
	for {
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return nil, errGatewayClosed
		}
		if len(g.idle) > 0 {
			w := g.idle[0]
			g.idle = g.idle[1:]
			n := len(g.idle)
			g.mu.Unlock()
			g.o.GaugeSet(obs.MGatewayIdle, int64(n))
			if w.lease() {
				return w.sess, nil
			}
			// Died in the handoff window; its monitor already killed it.
			continue
		}
		ch := make(chan *gatewayWorker, 1)
		g.waiters = append(g.waiters, ch)
		g.mu.Unlock()
		select {
		case w := <-ch:
			if w == nil {
				return nil, errGatewayClosed
			}
			if w.lease() {
				return w.sess, nil
			}
		case <-stop:
			g.mu.Lock()
			for i, cand := range g.waiters {
				if cand == ch {
					g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
					break
				}
			}
			g.mu.Unlock()
			// A worker may have been delivered in the race window;
			// return it to the pool rather than stranding it.
			select {
			case w := <-ch:
				if w != nil {
					g.park(w)
				}
			default:
			}
			return nil, errAcquireStopped
		}
	}
}

// ConnectOptions configures ConnectWorker.
type ConnectOptions struct {
	// Token authenticates against the gateway.
	Token string
	// Env carries this machine's local settings (disk cache location).
	Env WorkerEnv
	// Logw, when non-nil, receives connection lifecycle lines.
	Logw io.Writer
	// Stop, when non-nil, ends the dial loop at the next reconnect
	// boundary (between campaigns, or during backoff).
	Stop <-chan struct{}
}

// ConnectWorker is the `zebraconf -worker -connect` loop: dial the
// gateway, handshake, serve exactly one campaign session, reconnect.
// Dial failures back off exponentially (capped); an authentication
// rejection is fatal — retrying cannot help and would hammer the
// gateway.
func ConnectWorker(addr string, opts ConnectOptions, resolve func(string) (*harness.App, error)) error {
	logf := func(format string, args ...any) {
		if opts.Logw != nil {
			fmt.Fprintf(opts.Logw, "zebraconf worker: "+format+"\n", args...)
		}
	}
	backoff := 200 * time.Millisecond
	const maxBackoff = 5 * time.Second
	wait := func() bool {
		select {
		case <-time.After(backoff):
		case <-opts.Stop:
			return false
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		return true
	}
	for {
		select {
		case <-opts.Stop:
			return nil
		default:
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			logf("dial %s: %v (retrying)", addr, err)
			if !wait() {
				return nil
			}
			continue
		}
		if err := clientHello(conn, opts.Token); err != nil {
			conn.Close()
			if errors.Is(err, ErrAuthRejected) {
				logf("%v", err)
				return err
			}
			logf("handshake with %s: %v (retrying)", addr, err)
			if !wait() {
				return nil
			}
			continue
		}
		backoff = 200 * time.Millisecond
		logf("connected to %s, awaiting campaign", addr)
		err = ServeWorkerEnv(conn, conn, resolve, opts.Env)
		conn.Close()
		if err != nil {
			logf("session ended: %v", err)
		} else {
			logf("session ended cleanly")
		}
	}
}

// clientHello runs the worker side of the handshake on a fresh
// connection: send hello, await welcome, under one deadline.
func clientHello(conn net.Conn, token string) error {
	conn.SetDeadline(time.Now().Add(helloTimeout))
	defer conn.SetDeadline(time.Time{})
	if err := writeMsg(conn, Msg{Type: MsgHello, Token: token, PID: os.Getpid()}); err != nil {
		return err
	}
	line, err := readLine(conn, maxHelloLine)
	if err != nil {
		return err
	}
	var welcome Msg
	if err := json.Unmarshal(line, &welcome); err != nil {
		return err
	}
	if welcome.Type != MsgWelcome {
		return fmt.Errorf("dist: expected welcome, got %q", welcome.Type)
	}
	if welcome.Error != "" {
		return fmt.Errorf("%w: %s", ErrAuthRejected, welcome.Error)
	}
	return nil
}

// readLine reads one \n-terminated line directly off conn, byte at a
// time, without buffering ahead — the caller hands the connection to a
// buffered protocol reader right after the handshake, so the handshake
// must not consume bytes beyond its own line.
func readLine(conn net.Conn, max int) ([]byte, error) {
	buf := make([]byte, 0, 256)
	b := make([]byte, 1)
	for len(buf) < max {
		if _, err := io.ReadFull(conn, b); err != nil {
			return nil, err
		}
		if b[0] == '\n' {
			return buf, nil
		}
		buf = append(buf, b[0])
	}
	return nil, errors.New("dist: handshake line too long")
}

func writeMsg(w io.Writer, m Msg) error {
	line, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(append(line, '\n'))
	return err
}
