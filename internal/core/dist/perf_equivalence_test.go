package dist_test

import (
	"encoding/json"
	"io"
	"testing"
	"time"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/obs"
)

// perfReportedSet projects a result onto the repo's cross-run equivalence
// surface: the sorted reported set as {Param, Truth, MinP}, exactly the
// jq projection every CI smoke job diffs and (minus MinP) what the
// ledger's reported digest hashes. The full result is NOT run-to-run
// stable even uninstrumented: background node goroutines (heartbeat
// loops and the like) read config on their own timers, so the pre-run
// capture can gain or lose a parameter between any two runs, shifting
// instance counts and example strings downstream — pinned by running
// two plain campaigns back to back under load before blaming the
// sampler.
func perfReportedSet(t *testing.T, res *campaign.Result) string {
	t.Helper()
	type row struct {
		Param string
		Truth string
		MinP  float64
	}
	rows := make([]row, 0, len(res.Reported))
	for _, r := range res.Reported {
		rows = append(rows, row{r.Param, r.Truth.String(), r.MinP})
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPerfSamplerEquivalenceAllApps is the observatory's no-interference
// property on every mini application: the -perf sampler only reads the
// observer (registry snapshots plus runtime stats), so a campaign run
// with an aggressive sampler attached must report the identical
// parameter set — param, truth, minimum p-value — as the same seed run
// without one, in-process and sharded across worker subprocesses.
func TestPerfSamplerEquivalenceAllApps(t *testing.T) {
	cases := []struct {
		app    string
		params []string
		tests  []string
	}{
		{"minihdfs",
			[]string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
			[]string{"TestWriteRead", "TestFsck", "TestMkdirList"}},
		{"miniyarn",
			[]string{"yarn.scheduler.maximum-allocation-mb", "yarn.timeline-service.enabled"},
			[]string{"TestAllocationAtMaxMB", "TestTimelineQuery", "TestSubmitApplication"}},
		{"minihbase",
			[]string{"hadoop.rpc.protection", "hbase.client.scanner.caching"},
			[]string{"TestPutGet", "TestThriftAdmin"}},
		{"minimr",
			[]string{"mapreduce.jobhistory.max-age-ms", "mapreduce.jobhistory.address", "mapreduce.map.output.compress.codec"},
			[]string{"TestWordCount", "TestHistoryArchive"}},
		{"miniflink",
			[]string{"akka.ssl.enabled", "taskmanager.numberOfTaskSlots"},
			[]string{"TestJobSubmission", "TestSlotAllocationExact"}},
	}
	const seed = 7
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			t.Parallel()
			app, err := apps.ByName(tc.app)
			if err != nil {
				t.Fatal(err)
			}
			opts := campaign.Options{
				Params: tc.params,
				Tests:  tc.tests,
				Seed:   seed,
			}

			// Baseline: no observer at all.
			plain := campaign.Run(app, opts)
			if len(plain.Reported) == 0 {
				t.Fatalf("%s subset reported nothing; the equivalence check is vacuous", tc.app)
			}

			// Sampled: observer with a sampler ticking far faster than any
			// production -perf-period, streaming to a discarded writer, so
			// snapshotting races every registry write the campaign makes.
			o := obs.New()
			o.Sampler = obs.NewSampler(o, time.Millisecond, io.Discard, 0)
			o.Sampler.Start()
			sampledOpts := opts
			sampledOpts.Obs = o
			sampled := campaign.Run(app, sampledOpts)
			o.Sampler.Stop()

			if got, want := perfReportedSet(t, sampled), perfReportedSet(t, plain); got != want {
				t.Fatalf("sampler changed the reported set:\n with    %s\n without %s", got, want)
			}

			// The same property across worker subprocesses: the coordinator
			// samples its own observer while stitching worker results.
			od := obs.New()
			od.Sampler = obs.NewSampler(od, time.Millisecond, io.Discard, 0)
			od.Sampler.Start()
			distOpts := opts
			distOpts.Obs = od
			dres := runDistributed(t, app, distOpts, dist.Options{
				Workers:   2,
				WorkerCmd: workerFactory(),
			})
			od.Sampler.Stop()
			if got, want := perfReportedSet(t, dres), perfReportedSet(t, plain); got != want {
				t.Fatalf("workers=2 sampled reported set diverges:\n dist  %s\n local %s", got, want)
			}
		})
	}
}
