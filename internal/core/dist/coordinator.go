package dist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/sched"
	"zebraconf/internal/obs"
)

// Defaults for worker supervision.
const (
	// DefaultItemTimeout bounds one work item's wall clock as seen by the
	// coordinator (dispatch to result). Items run whole unit-test trees,
	// so this is generous; the harness's own per-test timeout fires long
	// before it unless the worker itself is wedged.
	DefaultItemTimeout = 10 * time.Minute
	// DefaultItemRetries is how many times a crashed or timed-out item is
	// requeued (on a fresh worker) before the coordinator gives up and
	// quarantines it.
	DefaultItemRetries = 2
	// spawnFailureLimit is how many consecutive failed launches kill a
	// worker slot for good.
	spawnFailureLimit = 3
)

// Options configures a Coordinator.
type Options struct {
	// App is the application name sent to workers in the init message.
	App string
	// Workers is the number of worker slots (subprocesses kept alive at
	// once). Zero means 1.
	Workers int
	// WorkerCmd builds the command for one worker subprocess, typically
	// `os.Executable() -worker`. Called again for every respawn.
	WorkerCmd func() *exec.Cmd
	// Sessions, when non-nil, supplies already-connected worker sessions
	// (the TCP gateway) instead of spawning subprocesses; WorkerCmd is
	// then ignored. Each slot blocks in Acquire until a networked worker
	// is available, and a worker lost mid-session is replaced by the
	// next one to connect — the crash/retry/quarantine paths are
	// identical to the subprocess transport.
	Sessions *Gateway
	// Config is the campaign configuration shipped to every worker.
	Config Config
	// CheckpointPath, when set, journals every completed item so a later
	// run can -resume. ResumePath, when set, replays a journal's completed
	// items instead of re-executing them; the two may name the same file.
	CheckpointPath string
	ResumePath     string
	// ItemTimeout bounds one item's dispatch-to-result wall clock; a
	// worker holding an overdue item is killed. Zero means
	// DefaultItemTimeout.
	ItemTimeout time.Duration
	// ItemRetries bounds requeues per item before quarantine. Zero
	// disables retries; negative means DefaultItemRetries.
	ItemRetries int
	// MaxItems, when positive, halts the run after that many items
	// complete — a testing hook for exercising checkpoint/resume.
	MaxItems int
	// SchedPolicy selects the work queue's dispatch order (sched.FIFO,
	// the zero value, keeps submission order with back-steals; sched.LPT
	// pops the longest-predicted item first).
	SchedPolicy sched.Policy
	// SpeculationFactor enables straggler speculation: once the queue is
	// drained, an item held by one worker for longer than this factor ×
	// its predicted duration is re-issued to an idle worker,
	// first-result-wins. Zero (or negative) disables speculation.
	SpeculationFactor float64
	// Profile, when non-nil, receives every completed item's wall clock
	// so later campaigns predict durations from it.
	Profile *sched.Profile
	// QuarantineThreshold is the number of distinct confirming tests
	// after which a parameter is broadcast to workers as quarantined
	// (§4's frequent-failer rule); 0 means 3.
	QuarantineThreshold int
	// StallAfter is how long a worker may go without a heartbeat before
	// it is flagged stalled (advisory — the worker is not killed; the
	// per-item deadline still governs). Zero means 5× the heartbeat
	// interval. Irrelevant when Config.HeartbeatMS is zero: a worker
	// that never heartbeats (and legacy test fakes) is never stalled.
	StallAfter time.Duration
	// SharedBackend, when non-nil, backs the coordinator-side shared
	// execution cache with a second, typically persistent, tier (the
	// disk store): worker lookups that miss the in-memory map fall
	// through to it, and worker publishes write through — completing the
	// memory → disk hierarchy on the coordinator side of the wire.
	// Ignored while the shared cache itself is disabled.
	SharedBackend memo.Backend
	// Obs receives the coordinator's metrics, spans, and the progress /
	// verdict replay of worker results. Nil disables observability.
	Obs *obs.Observer
	// Stderr, when non-nil, receives worker stderr (for diagnosis).
	Stderr io.Writer
}

// Coordinator shards work items across worker subprocesses.
type Coordinator struct {
	opts Options
}

// New builds a Coordinator. Option defaults are resolved at Start time.
func New(opts Options) *Coordinator {
	return &Coordinator{opts: opts}
}

// Execute runs a fixed batch of items to completion: Start, Submit every
// item, Drain. Kept for callers that have the whole batch up front.
func (c *Coordinator) Execute(parent obs.SpanID, items []campaign.WorkItem) ([]campaign.ItemResult, error) {
	run, err := c.Start(parent, len(items))
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		run.Submit(it)
	}
	return run.Drain()
}

// Start opens an incremental run expecting exactly total Submits:
// workers spawn immediately and start on items as they arrive, which is
// what lets the campaign's streaming pipeline dispatch each item the
// moment its pre-run finishes. Checkpoint/resume state loads here, so
// Submit can skip already-completed items.
func (c *Coordinator) Start(parent obs.SpanID, total int) (*Run, error) {
	if c.opts.WorkerCmd == nil && c.opts.Sessions == nil {
		return nil, errors.New("dist: Coordinator requires WorkerCmd or Sessions")
	}
	workers := c.opts.Workers
	if workers <= 0 {
		workers = 1
	}
	o := c.opts.Obs
	span := o.StartSpan("distribute", parent,
		obs.String("app", c.opts.App),
		obs.Int("workers", int64(workers)),
		obs.Int("items", int64(total)))

	parallel := c.opts.Config.Parallel
	if parallel <= 0 {
		parallel = DefaultWorkerParallel
	}
	o.Stat().SetSlots(workers * parallel)

	r := &Run{
		opts:    c.opts,
		workers: workers,
		total:   total,
		o:       o,
		span:    span,
	}
	r.hbEvery = time.Duration(c.opts.Config.HeartbeatMS) * time.Millisecond
	if r.hbEvery > 0 {
		r.stallAfter = c.opts.StallAfter
		if r.stallAfter <= 0 {
			r.stallAfter = 5 * r.hbEvery
		}
	}
	if cfg := c.opts.Config; !cfg.DisableExecCache && !cfg.NoSharedCache {
		r.sharedCache = make(map[memo.Key]memo.Result)
	}
	if r.opts.ItemTimeout <= 0 {
		r.opts.ItemTimeout = DefaultItemTimeout
	}
	if r.opts.ItemRetries < 0 {
		r.opts.ItemRetries = DefaultItemRetries
	}
	if r.opts.QuarantineThreshold <= 0 {
		r.opts.QuarantineThreshold = 3
	}
	if err := r.start(); err != nil {
		if r.journal != nil {
			r.journal.Close()
		}
		span.End()
		return nil, err
	}
	return r, nil
}

// flight is the coordinator's view of one dispatched (primary) attempt,
// the speculation bookkeeping: who holds the item, since when, and
// whether a speculative copy is already out.
type flight struct {
	item  campaign.WorkItem
	slot  int
	start time.Time
	spec  bool
}

// Run is one coordinator execution in flight, between Start and Drain.
type Run struct {
	opts    Options
	workers int
	total   int
	o       *obs.Observer
	span    *obs.Span
	journal *Journal
	q       *queue
	resumed map[int]*campaign.ItemResult
	wg      sync.WaitGroup

	// sharedCache is the coordinator-side execution cache served to
	// workers over cache-get/cache-put; nil when memoization (or just
	// its shared tier) is disabled. Guarded by cacheMu, not mu: cache
	// traffic is hot-path and must not contend with result accounting.
	cacheMu     sync.Mutex
	sharedCache map[memo.Key]memo.Result

	// Heartbeat supervision, resolved from Config.HeartbeatMS and
	// Options.StallAfter at Start; stalls counts stall events across
	// every session for the campaign report.
	hbEvery    time.Duration
	stallAfter time.Duration
	stalls     atomic.Int64

	mu           sync.Mutex
	results      map[int]campaign.ItemResult
	attempts     map[int]int
	flights      map[int]*flight
	sessions     map[int]*workerSession
	confirmedBy  map[string]map[string]bool
	quarantined  map[string]bool
	submitted    int
	allSubmitted bool
	// durSum/durN hold a running mean of completed-item durations, the
	// speculation deadline fallback for items without a prediction.
	durSum      float64
	durN        int
	completions int // unique pending items resolved this run
	pendingN    int
	live        int // worker slots not yet permanently dead
	lastFailure string
	failErr     error
	finished    bool
	halted      bool
	doneCh      chan struct{}
}

func (r *Run) start() error {
	resumed, err := r.loadResume()
	if err != nil {
		return err
	}
	if err := r.openCheckpoint(resumed); err != nil {
		return err
	}
	r.resumed = resumed
	r.results = make(map[int]campaign.ItemResult)
	r.attempts = make(map[int]int)
	r.flights = make(map[int]*flight)
	r.sessions = make(map[int]*workerSession)
	r.confirmedBy = make(map[string]map[string]bool)
	r.quarantined = make(map[string]bool)
	r.pendingN = r.total - len(resumed)
	r.live = r.workers
	r.doneCh = make(chan struct{})
	r.q = newQueue(r.workers, r.opts.SchedPolicy)
	// Resumed confirmations count toward quarantine, so this run's
	// workers still learn about parameters the interrupted run condemned
	// (via the catch-up send when each session registers).
	for _, res := range resumed {
		r.noteConfirmations(*res, false)
	}
	if r.pendingN <= 0 {
		r.finished = true
		close(r.doneCh)
		return nil
	}
	for slot := 0; slot < r.workers; slot++ {
		r.wg.Add(1)
		go func(slot int) {
			defer r.wg.Done()
			r.supervise(slot)
		}(slot)
	}
	return nil
}

// Submit hands one work item to the run; exactly Start's total must be
// submitted. Items completed by a resumed journal are skipped (their
// results are already in); the rest enter the queue immediately, so
// workers start on them while later pre-runs are still executing.
func (r *Run) Submit(item campaign.WorkItem) {
	r.mu.Lock()
	r.submitted++
	r.allSubmitted = r.submitted >= r.total
	_, done := r.resumed[item.ID]
	r.mu.Unlock()
	if done || r.pendingN <= 0 {
		return
	}
	r.q.push(item)
	r.o.GaugeSet(obs.MQueueDepth, r.q.depth(), "app", r.opts.App)
}

// Stalls reports how many times a worker crossed the heartbeat stall
// threshold during this run (0 with heartbeats off). Meaningful any
// time; final after Drain.
func (r *Run) Stalls() int64 { return r.stalls.Load() }

// Abort halts the run early: sessions stop dispatching, inflight items
// are abandoned, and Drain returns the results accumulated so far
// without error (the same partial-result semantics as the MaxItems
// halt). Safe to call at any time, from any goroutine, more than once.
// Used by the campaign server to cancel a running submitted campaign.
func (r *Run) Abort() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return
	}
	r.finished = true
	r.halted = true
	close(r.doneCh)
}

// Drain blocks until every pending item resolves (or the run halts, or
// every worker slot is lost) and returns one ItemResult per completed
// item — including items replayed from ResumePath and items quarantined
// after exhausting retries — sorted by item ID.
func (r *Run) Drain() ([]campaign.ItemResult, error) {
	r.wg.Wait()
	r.o.GaugeSet(obs.MQueueDepth, 0, "app", r.opts.App)
	if r.journal != nil {
		r.journal.Close()
	}
	defer r.span.End()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failErr != nil && r.completions < r.pendingN && !r.halted {
		return nil, r.failErr
	}
	out := make([]campaign.ItemResult, 0, len(r.resumed)+len(r.results))
	for _, res := range r.resumed {
		out = append(out, *res)
	}
	for _, res := range r.results {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// loadResume replays the resume journal's completed items and validates
// that the journal belongs to this exact campaign (app, seed, item count
// — item IDs are indexes into the pre-run order, so any mismatch would
// silently misattribute results).
func (r *Run) loadResume() (map[int]*campaign.ItemResult, error) {
	if r.opts.ResumePath == "" {
		return nil, nil
	}
	recs, err := ReadJournal(r.opts.ResumePath)
	if err != nil {
		return nil, err
	}
	resumed := make(map[int]*campaign.ItemResult)
	headers := 0
	for _, rec := range recs {
		switch rec.Kind {
		case KindHeader:
			headers++
			if rec.App != r.opts.App || rec.Seed != r.opts.Config.Seed || rec.Items != r.total {
				return nil, fmt.Errorf(
					"dist: checkpoint %s is for app=%s seed=%d items=%d, not app=%s seed=%d items=%d",
					r.opts.ResumePath, rec.App, rec.Seed, rec.Items,
					r.opts.App, r.opts.Config.Seed, r.total)
			}
		case KindDone:
			if rec.Result != nil {
				res := *rec.Result
				resumed[res.ID] = &res
			}
		}
	}
	if headers == 0 {
		return nil, fmt.Errorf("dist: checkpoint %s has no header record", r.opts.ResumePath)
	}
	r.o.CounterAdd(obs.MItemsResumed, int64(len(resumed)), "app", r.opts.App)
	r.span.SetAttr(obs.Int("resumed", int64(len(resumed))))
	return resumed, nil
}

// openCheckpoint opens the checkpoint journal and appends this session's
// header. When resuming into a different file, the resumed results are
// re-journaled so the new checkpoint is self-contained.
func (r *Run) openCheckpoint(resumed map[int]*campaign.ItemResult) error {
	if r.opts.CheckpointPath == "" {
		return nil
	}
	j, err := OpenJournal(r.opts.CheckpointPath, 0)
	if err != nil {
		return err
	}
	r.journal = j
	if err := j.Append(Record{Kind: KindHeader, App: r.opts.App, Seed: r.opts.Config.Seed, Items: r.total}); err != nil {
		return err
	}
	sameFile := r.opts.ResumePath != "" &&
		filepath.Clean(r.opts.ResumePath) == filepath.Clean(r.opts.CheckpointPath)
	if len(resumed) > 0 && !sameFile {
		ids := make([]int, 0, len(resumed))
		for id := range resumed {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			res := resumed[id]
			if err := j.Append(Record{Kind: KindDone, Item: res.ID, Test: res.Test, Result: res}); err != nil {
				return err
			}
		}
	}
	return j.Sync()
}

// sessionOutcome classifies why one worker session ended.
type sessionOutcome int

const (
	sessDone      sessionOutcome = iota // run finished or halted; slot retires
	sessCrashed                         // worker lost after doing work; respawn
	sessSpawnFail                       // worker never became ready; counts toward slot death
)

// supervise owns one worker slot: obtain a session (spawn a subprocess,
// or wait for a gateway worker), run it, replace it on crash, retire
// the slot after spawnFailureLimit consecutive failed launches.
func (r *Run) supervise(slot int) {
	fails := 0
	for {
		if r.stopped() {
			return
		}
		sess, err := r.obtain(slot)
		if err != nil {
			if errors.Is(err, errGatewayClosed) {
				// No networked worker will ever come; retire the slot
				// (failing the run if it was the last with work left).
				r.noteFailure(err.Error())
				r.slotDied()
				return
			}
			if r.stopped() {
				return
			}
			r.o.CounterAdd(obs.MWorkerCrashes, 1, "app", r.opts.App, "reason", "spawn")
			r.noteFailure(err.Error())
			fails++
			if fails >= spawnFailureLimit {
				r.slotDied()
				return
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		switch r.session(slot, sess) {
		case sessDone:
			return
		case sessCrashed:
			fails = 0
		case sessSpawnFail:
			fails++
			if fails >= spawnFailureLimit {
				r.slotDied()
				return
			}
		}
	}
}

// session drives one live worker until the run completes, the worker is
// lost, or it never becomes ready.
func (r *Run) session(slot int, sess *workerSession) sessionOutcome {
	o := r.o
	app := r.opts.App
	slotStr := strconv.Itoa(slot)
	wspan := o.StartSpan("worker", r.span.ID(),
		obs.String("app", app), obs.Int("slot", int64(slot)))
	defer wspan.End()
	r.addSession(slot, sess)
	defer r.removeSession(slot, sess)

	parallel := r.opts.Config.Parallel
	if parallel <= 0 {
		parallel = DefaultWorkerParallel
	}
	type entry struct {
		item  campaign.WorkItem
		start time.Time
		spec  bool
		// span is the coordinator-side "item" span for this attempt; the
		// worker's trace fragment is stitched under it on acceptance.
		// Every teardown path must End it, or its stitched children would
		// reference a span the trace file never defines.
		span *obs.Span
	}
	inflight := make(map[int]entry)
	ready := false
	spawned := time.Now()
	itemsDone := 0
	// Heartbeat stall tracking, gated on hbSeen: stall detection only
	// arms after this session's first heartbeat, so workers that never
	// beat (heartbeats off, or protocol fakes predating them) are never
	// flagged.
	var lastHB time.Time
	hbSeen := false
	stalled := false

	// crash tears the session down after the worker is lost: every
	// inflight primary attempt is penalized (it may be what killed the
	// worker); a speculative copy just evaporates — the primary attempt
	// elsewhere still owns its item.
	crash := func(reason string) sessionOutcome {
		sess.kill()
		o.CounterAdd(obs.MWorkerCrashes, 1, "app", app, "reason", reason)
		o.Event(obs.EvWorkerCrash,
			obs.String("app", app), obs.Int("worker", int64(slot)),
			obs.String("reason", reason))
		o.Stat().WorkerGone(slot, reason)
		wspan.SetAttr(obs.String("end", reason), obs.Int("items", int64(itemsDone)))
		for id, e := range inflight {
			e.span.SetAttr(obs.String("end", reason))
			e.span.End()
			if e.spec {
				r.clearSpec(id)
				continue
			}
			r.retryOrGiveUp(slot, e.item, reason)
		}
		return sessCrashed
	}

	tickEvery := r.opts.ItemTimeout / 8
	if tickEvery > time.Second {
		tickEvery = time.Second
	}
	if r.stallAfter > 0 && tickEvery > r.stallAfter/4 {
		// Stall detection rides the same ticker; keep it responsive
		// relative to the stall threshold, not just the item timeout.
		tickEvery = r.stallAfter / 4
	}
	if tickEvery < 5*time.Millisecond {
		tickEvery = 5 * time.Millisecond
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()

	for {
		if ready && !r.stopped() {
			for len(inflight) < parallel {
				item, wait, jumped, stolen, ok := r.q.tryPop(slot)
				spec := false
				if !ok {
					// Queue drained: consider re-issuing a straggler held
					// by another worker instead of idling this slot.
					item, ok = r.maybeSpeculate(slot)
					if !ok {
						break
					}
					spec = true
					o.CounterAdd(obs.MSpeculativeRuns, 1, "app", app)
				} else {
					o.Observe(obs.MSchedQueueWait, wait.Seconds(), "app", app, "stage", "dist")
					if jumped {
						o.CounterAdd(obs.MSchedReordered, 1, "app", app)
					}
					if stolen {
						o.CounterAdd(obs.MSteals, 1, "app", app)
					}
					o.GaugeSet(obs.MQueueDepth, r.q.depth(), "app", app)
				}
				if err := sess.send(Msg{Type: MsgRun, Item: &item}); err != nil {
					// The item never reached the worker; requeue it for
					// free and treat the broken pipe as a crash.
					if spec {
						r.clearSpec(item.ID)
					} else {
						r.q.requeue(slot, item)
					}
					return crash("crash")
				}
				if !spec {
					r.trackFlight(slot, item)
				}
				dispatchAttrs := []obs.Attr{
					obs.String("app", app),
					obs.Int("item", int64(item.ID)),
					obs.String("test", item.Test),
					obs.Int("worker", int64(slot)),
				}
				if spec {
					o.Event(obs.EvSpeculate, dispatchAttrs...)
					r.o.Stat().SpeculationRun()
				}
				if stolen {
					o.Event(obs.EvSteal, dispatchAttrs...)
				}
				o.Event(obs.EvItemDispatch, append(dispatchAttrs, obs.Bool("spec", spec))...)
				r.o.Stat().ItemStart(item.ID)
				ispan := o.StartSpan("item", wspan.ID(),
					obs.String("app", app),
					obs.String("test", item.Test),
					obs.Int("item", int64(item.ID)))
				if spec {
					ispan.SetAttr(obs.Bool("spec", true))
				}
				inflight[item.ID] = entry{item: item, start: time.Now(), spec: spec, span: ispan}
			}
		}
		if r.stopped() {
			// Complete, halted, or failed elsewhere. All results are
			// either in or abandoned with the run; drop the worker.
			sess.bye(len(inflight) == 0)
			for _, e := range inflight {
				e.span.SetAttr(obs.String("end", "abandoned"))
				e.span.End()
			}
			wspan.SetAttr(obs.String("end", "done"), obs.Int("items", int64(itemsDone)))
			r.o.Stat().WorkerGone(slot, "done")
			return sessDone
		}

		select {
		case m, ok := <-sess.msgs:
			if !ok {
				if !ready {
					sess.kill()
					r.noteFailure("worker exited before ready")
					return sessSpawnFail
				}
				return crash("crash")
			}
			switch m.Type {
			case MsgReady:
				if m.Error != "" {
					sess.kill()
					r.noteFailure(m.Error)
					return sessSpawnFail
				}
				ready = true
				wspan.SetAttr(obs.Int("pid", int64(m.PID)))
				o.Event(obs.EvWorkerReady,
					obs.String("app", app), obs.Int("worker", int64(slot)),
					obs.Int("pid", int64(m.PID)))
				r.o.Stat().WorkerReady(slot, m.PID)
			case MsgHeartbeat:
				lastHB = time.Now()
				hbSeen = true
				if stalled {
					stalled = false
					o.Event(obs.EvWorkerRecovered,
						obs.String("app", app), obs.Int("worker", int64(slot)))
					r.o.Stat().WorkerRecovered(slot)
				}
				o.CounterAdd(obs.MHeartbeats, 1, "app", app, "worker", slotStr)
				o.GaugeSet(obs.MMissedHeartbeats, 0, "app", app, "worker", slotStr)
				var hb Heartbeat
				if m.HB != nil {
					hb = *m.HB
				}
				r.o.Stat().WorkerHeartbeat(slot, m.PID, hb.Inflight, hb.Executions, hb.Goroutines, hb.HeapBytes)
			case MsgResult:
				if m.Result == nil {
					return crash("crash")
				}
				e, known := inflight[m.Result.ID]
				if !known {
					break
				}
				delete(inflight, m.Result.ID)
				itemsDone++
				if r.recordResult(slot, *m.Result, time.Since(e.start), e.spec) {
					r.stitchSpans(e.span, e.start, m.Result.Spans)
				} else {
					// The losing copy of a speculated (or timeout-retried)
					// item: its result — evidence, spans, and all — was
					// discarded before accounting; mark the attempt so the
					// trace shows where the duplicate work went.
					e.span.SetAttr(obs.Bool("duplicate", true))
				}
				e.span.End()
			case MsgCacheGet:
				if m.CacheKey == nil {
					break
				}
				reply := Msg{Type: MsgCacheVal, Req: m.Req}
				if res, ok := r.cacheGet(*m.CacheKey); ok {
					reply.CacheHit = true
					reply.CacheRes = &res
				}
				if err := sess.send(reply); err != nil {
					// A worker we cannot answer is a worker whose Gets
					// would all stall to timeout; treat the pipe as dead.
					return crash("crash")
				}
			case MsgCachePut:
				if m.CacheKey != nil && m.CacheRes != nil {
					r.cachePut(*m.CacheKey, *m.CacheRes)
				}
			}
		case <-tick.C:
			if !ready {
				if time.Since(spawned) > r.opts.ItemTimeout {
					sess.kill()
					r.noteFailure("worker not ready within item timeout")
					return sessSpawnFail
				}
				break
			}
			now := time.Now()
			if hbSeen && r.stallAfter > 0 {
				silent := now.Sub(lastHB)
				if missed := int64(silent / r.hbEvery); missed > 0 {
					o.GaugeSet(obs.MMissedHeartbeats, missed, "app", app, "worker", slotStr)
				}
				if !stalled && silent > r.stallAfter {
					stalled = true
					r.stalls.Add(1)
					o.CounterAdd(obs.MWorkerStalls, 1, "app", app, "worker", slotStr)
					o.Event(obs.EvWorkerStalled,
						obs.String("app", app), obs.Int("worker", int64(slot)),
						obs.Float("silent_s", silent.Seconds()),
						obs.Int("inflight", int64(len(inflight))))
					r.o.Stat().WorkerStalled(slot)
				}
			}
			for id, e := range inflight {
				if now.Sub(e.start) <= r.opts.ItemTimeout {
					continue
				}
				// The overdue item is the suspect: it alone is penalized.
				// The worker is killed (the item's goroutine cannot be),
				// so the other inflight items requeue for free — except
				// speculative copies, which simply evaporate (their
				// primaries are still running elsewhere).
				sess.kill()
				delete(inflight, id)
				e.span.SetAttr(obs.String("end", "timeout"))
				e.span.End()
				if e.spec {
					r.clearSpec(id)
				} else {
					r.retryOrGiveUp(slot, e.item, "timeout")
				}
				for oid, other := range inflight {
					other.span.SetAttr(obs.String("end", "requeued"))
					other.span.End()
					if other.spec {
						r.clearSpec(oid)
						continue
					}
					r.untrackFlight(oid)
					r.q.requeue(slot, other.item)
				}
				o.CounterAdd(obs.MWorkerCrashes, 1, "app", app, "reason", "timeout")
				o.Event(obs.EvWorkerCrash,
					obs.String("app", app), obs.Int("worker", int64(slot)),
					obs.String("reason", "timeout"))
				r.o.Stat().WorkerGone(slot, "timeout")
				wspan.SetAttr(obs.String("end", "timeout"), obs.Int("items", int64(itemsDone)))
				return sessCrashed
			}
		case <-r.q.wake:
		case <-r.doneCh:
		}
	}
}

// addSession registers a live worker for quarantine broadcasts and sends
// it the hints it missed (a respawned worker starts with a clean slate;
// so does every worker of a resumed run).
func (r *Run) addSession(slot int, s *workerSession) {
	r.mu.Lock()
	r.sessions[slot] = s
	params := make([]string, 0, len(r.quarantined))
	for p := range r.quarantined {
		params = append(params, p)
	}
	r.mu.Unlock()
	sort.Strings(params)
	for _, p := range params {
		s.send(Msg{Type: MsgQuarantine, Param: p})
	}
}

func (r *Run) removeSession(slot int, s *workerSession) {
	r.mu.Lock()
	if r.sessions[slot] == s {
		delete(r.sessions, slot)
	}
	r.mu.Unlock()
}

func (r *Run) trackFlight(slot int, item campaign.WorkItem) {
	r.mu.Lock()
	r.flights[item.ID] = &flight{item: item, slot: slot, start: time.Now()}
	r.mu.Unlock()
}

func (r *Run) untrackFlight(id int) {
	r.mu.Lock()
	delete(r.flights, id)
	r.mu.Unlock()
}

// clearSpec forgets a lost speculative copy so a future idle worker may
// speculate the item again.
func (r *Run) clearSpec(id int) {
	r.mu.Lock()
	if f := r.flights[id]; f != nil {
		f.spec = false
	}
	r.mu.Unlock()
}

// maybeSpeculate picks a straggler to re-issue on an idle slot: the most
// overdue un-speculated flight held by another worker, judged against
// its predicted duration (or the running mean of completed items when no
// prediction exists). Only after every item has been submitted and the
// queue is drained — speculation must never displace first-run work —
// and at most one speculative copy per item at a time. First result
// wins; executions are canonically seeded, so the copies are
// byte-identical and the loser is discarded as a duplicate.
func (r *Run) maybeSpeculate(slot int) (campaign.WorkItem, bool) {
	if r.opts.SpeculationFactor <= 0 || r.q.depth() != 0 {
		return campaign.WorkItem{}, false
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.allSubmitted || r.finished {
		return campaign.WorkItem{}, false
	}
	var mean float64
	if r.durN > 0 {
		mean = r.durSum / float64(r.durN)
	}
	var best *flight
	var bestRatio float64
	for _, f := range r.flights {
		if f.spec || f.slot == slot {
			continue
		}
		pred := f.item.PredSeconds
		if pred <= 0 {
			pred = mean
		}
		held := now.Sub(f.start)
		if !sched.Overdue(held, pred, r.opts.SpeculationFactor) {
			continue
		}
		if ratio := held.Seconds() / pred; best == nil || ratio > bestRatio {
			best, bestRatio = f, ratio
		}
	}
	if best == nil {
		return campaign.WorkItem{}, false
	}
	best.spec = true
	return best.item, true
}

// cacheGet serves one worker lookup from the shared execution cache:
// the in-memory map first, then the persistent SharedBackend tier (with
// a memory fill on its hits, so a key is read from disk at most once
// per run).
func (r *Run) cacheGet(k memo.Key) (memo.Result, bool) {
	if r.sharedCache == nil {
		return memo.Result{}, false
	}
	r.cacheMu.Lock()
	res, ok := r.sharedCache[k]
	r.cacheMu.Unlock()
	if !ok && r.opts.SharedBackend != nil {
		if res, ok = r.opts.SharedBackend.Get(k); ok {
			r.cacheMu.Lock()
			if _, dup := r.sharedCache[k]; !dup {
				r.sharedCache[k] = res
			}
			r.cacheMu.Unlock()
		}
	}
	if ok {
		r.o.CounterAdd(obs.MCacheHits, 1, "app", r.opts.App, "scope", "shared")
	} else {
		r.o.CounterAdd(obs.MCacheMisses, 1, "app", r.opts.App)
	}
	return res, ok
}

// cachePut stores one worker-published result, writing through to the
// persistent tier when configured. First write wins: the harness is
// seeded-deterministic, so concurrent publishers for one key carry
// identical results anyway.
func (r *Run) cachePut(k memo.Key, res memo.Result) {
	if r.sharedCache == nil {
		return
	}
	r.cacheMu.Lock()
	_, dup := r.sharedCache[k]
	if !dup {
		r.sharedCache[k] = res
	}
	r.cacheMu.Unlock()
	if !dup && r.opts.SharedBackend != nil {
		r.opts.SharedBackend.Put(k, res)
	}
}

// stitchSpans folds a worker's trace fragment under the coordinator's
// item span, so a -workers campaign's trace renders as one tree. Every
// fragment span is re-identified (worker IDs are fragment-local and
// would collide with the coordinator's), fragment roots — and references
// to spans the fragment never closed — are re-parented onto the item
// span, and start times are rebased from the worker tracer's epoch to
// the dispatch instant on the coordinator's clock.
func (r *Run) stitchSpans(item *obs.Span, dispatched time.Time, frag []obs.SpanRecord) {
	if item == nil || len(frag) == 0 || r.o == nil || r.o.Tracer == nil {
		return
	}
	tr := r.o.Tracer
	ids := make(map[obs.SpanID]obs.SpanID, len(frag))
	for _, rec := range frag {
		ids[rec.Span] = tr.AllocID()
	}
	base := tr.SinceEpochUS(dispatched)
	for _, rec := range frag {
		rec.Span = ids[rec.Span]
		if p, ok := ids[rec.Parent]; ok {
			rec.Parent = p
		} else {
			rec.Parent = item.ID()
		}
		rec.StartUS += base
		tr.Emit(rec)
	}
}

// recordResult journals and accounts one completed item, replaying its
// observable campaign signals (progress, verdict counters, evidence
// tallies) that the worker process could not record itself. First result
// wins: a duplicate — the losing copy of a speculated item, or a
// timeout-retry race — is discarded here, before any accounting, and
// reported false so the caller skips trace stitching too.
func (r *Run) recordResult(slot int, res campaign.ItemResult, elapsed time.Duration, spec bool) bool {
	r.mu.Lock()
	_, dup := r.results[res.ID]
	var pred float64
	if !dup {
		r.results[res.ID] = res
		r.completions++
		if f := r.flights[res.ID]; f != nil {
			pred = f.item.PredSeconds
			delete(r.flights, res.ID)
		}
		r.durSum += elapsed.Seconds()
		r.durN++
	}
	r.mu.Unlock()
	if !spec {
		// Balance this attempt's queue pop. A speculative copy never
		// popped: its primary attempt settles the queue accounting when
		// it completes or is retired.
		r.q.done()
	}
	if dup {
		// Execution is canonically seeded, so the copies agree; nothing
		// to record.
		r.o.Event(obs.EvSpeculationLoss,
			obs.String("app", r.opts.App),
			obs.Int("item", int64(res.ID)),
			obs.Int("worker", int64(slot)),
			obs.Bool("spec", spec))
		return false
	}
	o, app := r.o, r.opts.App
	if spec {
		o.RecordSpeculationWin(app)
		o.Event(obs.EvSpeculationWin,
			obs.String("app", app),
			obs.Int("item", int64(res.ID)),
			obs.Int("worker", int64(slot)))
	}
	if r.journal != nil {
		if err := r.journal.Append(Record{Kind: KindDone, Item: res.ID, Test: res.Test, Result: &res}); err != nil {
			r.noteFailure("checkpoint write failed: " + err.Error())
		}
	}
	o.CounterAdd(obs.MWorkerItems, 1, "app", app, "worker", strconv.Itoa(slot))
	o.Observe(obs.MItemSeconds, elapsed.Seconds(), "app", app)
	o.CounterAdd(obs.MItemExecutions, res.Executions, "app", app)
	o.Event(obs.EvItemComplete,
		obs.String("app", app),
		obs.Int("item", int64(res.ID)),
		obs.String("test", res.Test),
		obs.Int("worker", int64(slot)),
		obs.Float("elapsed_s", elapsed.Seconds()),
		obs.Bool("spec", spec))
	r.o.Stat().ItemDone(res.ID, elapsed.Seconds())
	r.o.Stat().WorkerItemDone(slot)
	if res.ExecutionsSaved > 0 {
		// Worker-process metrics registries are not merged, so the
		// coordinator replays the cache's saved-executions accounting from
		// the item tallies (local and shared hits alike).
		o.RecordCacheSaved(app, res.ExecutionsSaved)
	}
	o.ProgressAddTotal(int64(res.Instances))
	o.ProgressAddDone(int64(res.Instances))
	o.ProgressAddExecutions(res.Executions)
	o.GaugeAdd(obs.MInstancesTotal, int64(res.Instances), "app", app)
	o.GaugeAdd(obs.MInstancesDone, int64(res.Instances), "app", app)
	for _, v := range res.Verdicts {
		o.RecordVerdict(app, v.Verdict, v.FirstTrialSignal)
		if v.Verdict == runner.VerdictUnsafe.String() {
			o.Event(obs.EvVerdict,
				obs.String("app", app),
				obs.String("param", v.Param),
				obs.String("test", res.Test),
				obs.String("instance", v.Instance),
				obs.Float("p", v.PValue))
			r.o.Stat().ParamVerdict(v.Param, res.Test, v.PValue)
		}
		if v.Evidence != nil {
			// Worker metrics registries are not merged, so evidence
			// accounting is replayed here from the records themselves
			// (per-execution log/read truncations stay worker-local).
			o.CounterAdd(obs.MEvidenceRecords, 1, "app", app)
			if v.Evidence.VerdictOnly {
				o.CounterAdd(obs.MEvidenceTruncated, 1, "app", app, "reason", "budget")
			}
		}
	}
	if res.LeakedGoroutines > 0 {
		o.CounterAdd(obs.MAbandonedGoroutines, res.LeakedGoroutines, "app", app, "test", res.Test)
	}
	r.opts.Profile.RecordTrials(app, res.Test, elapsed.Seconds(), res.Executions)
	if pred > 0 {
		o.Observe(obs.MSchedPredRatio, elapsed.Seconds()/pred, "app", app)
	}
	r.noteConfirmations(res, true)
	r.maybeFinish()
	return true
}

// noteConfirmations applies §4's frequent-failer rule to one item
// result: when a parameter reaches QuarantineThreshold distinct
// confirming tests, it is broadcast (best-effort) to every live worker
// so remaining items skip its instances. emit is false when folding
// resumed results, whose quarantine state should register silently.
func (r *Run) noteConfirmations(res campaign.ItemResult, emit bool) {
	for _, v := range res.Verdicts {
		if v.Verdict != runner.VerdictUnsafe.String() {
			continue
		}
		r.mu.Lock()
		set := r.confirmedBy[v.Param]
		if set == nil {
			set = make(map[string]bool)
			r.confirmedBy[v.Param] = set
		}
		set[res.Test] = true
		fire := len(set) >= r.opts.QuarantineThreshold && !r.quarantined[v.Param]
		var targets []*workerSession
		if fire {
			r.quarantined[v.Param] = true
			for _, s := range r.sessions {
				targets = append(targets, s)
			}
		}
		r.mu.Unlock()
		if fire && emit {
			r.o.CounterAdd(obs.MQuarantine, 1, "app", r.opts.App)
			r.o.Event(obs.EvParamQuarantined,
				obs.String("app", r.opts.App), obs.String("param", v.Param))
			r.o.Stat().ParamQuarantined(v.Param)
			for _, s := range targets {
				// Best-effort: a send failure means the worker is dying
				// and its supervisor will notice through the session.
				s.send(Msg{Type: MsgQuarantine, Param: v.Param})
			}
		}
	}
}

// retryOrGiveUp charges one failed attempt to an item: requeue it for a
// fresh worker, or — past the retry budget — quarantine it with a
// fabricated result so the campaign report surfaces the coverage gap.
// An item already resolved (typically by a speculative copy that won
// while its primary crashed) is simply released.
func (r *Run) retryOrGiveUp(slot int, item campaign.WorkItem, reason string) {
	r.mu.Lock()
	if _, resolved := r.results[item.ID]; resolved {
		r.mu.Unlock()
		r.q.done()
		return
	}
	delete(r.flights, item.ID)
	r.attempts[item.ID]++
	n := r.attempts[item.ID]
	r.mu.Unlock()
	if n <= r.opts.ItemRetries {
		r.o.CounterAdd(obs.MItemRetries, 1, "app", r.opts.App)
		r.o.Event(obs.EvItemRetried,
			obs.String("app", r.opts.App),
			obs.Int("item", int64(item.ID)),
			obs.String("test", item.Test),
			obs.String("reason", reason))
		r.o.Stat().ItemRequeued(item.ID)
		r.q.requeue(slot, item)
		return
	}
	res := campaign.ItemResult{
		ID:          item.ID,
		Test:        item.Test,
		Quarantined: true,
		Error:       fmt.Sprintf("abandoned after %d attempts (last failure: %s)", n, reason),
	}
	r.o.Event(obs.EvItemQuarantined,
		obs.String("app", r.opts.App),
		obs.Int("item", int64(item.ID)),
		obs.String("test", item.Test),
		obs.String("reason", reason))
	r.o.Stat().ItemDone(item.ID, 0)
	if r.journal != nil {
		if err := r.journal.Append(Record{Kind: KindGiveUp, Item: item.ID, Test: item.Test, Reason: reason}); err != nil {
			r.noteFailure("checkpoint write failed: " + err.Error())
		}
	}
	r.mu.Lock()
	if _, dup := r.results[res.ID]; !dup {
		r.results[res.ID] = res
		r.completions++
	}
	r.mu.Unlock()
	r.q.done()
	r.o.CounterAdd(obs.MItemsQuarantined, 1, "app", r.opts.App)
	r.maybeFinish()
}

// maybeFinish closes the run when every pending item is resolved, or
// when the MaxItems testing hook trips.
func (r *Run) maybeFinish() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return
	}
	if r.completions >= r.pendingN {
		r.finished = true
		close(r.doneCh)
		return
	}
	if r.opts.MaxItems > 0 && r.completions >= r.opts.MaxItems {
		r.finished = true
		r.halted = true
		close(r.doneCh)
	}
}

func (r *Run) stopped() bool {
	select {
	case <-r.doneCh:
		return true
	default:
		return false
	}
}

func (r *Run) noteFailure(msg string) {
	r.mu.Lock()
	r.lastFailure = msg
	r.mu.Unlock()
}

// slotDied retires a worker slot permanently; when the last slot dies
// with work remaining, the run fails.
func (r *Run) slotDied() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.live--
	if r.live > 0 || r.finished {
		return
	}
	r.failErr = fmt.Errorf("dist: all %d worker slots failed (last failure: %s)", r.workers, r.lastFailure)
	r.finished = true
	close(r.doneCh)
}

// workerSession is one live worker as seen by the coordinator. The
// transport is abstracted behind w/teardown/reap: a subprocess worker
// writes to its stdin and tears down by closing the pipe and killing
// the process; a networked (gateway) worker writes to its TCP
// connection and tears down by closing it — everything above (the
// session loop, retries, quarantine, heartbeats) is transport-blind.
type workerSession struct {
	w          io.Writer
	msgs       chan Msg
	readerDone chan struct{}
	killOnce   sync.Once
	sendMu     sync.Mutex
	// pid is the worker's self-reported process ID (from the TCP hello;
	// subprocess sessions know it from exec). Zero when unknown.
	pid int
	// remote is the peer address of a networked session, "" for pipes.
	remote string
	// teardown closes the transport (unblocking readLoop); reap, when
	// non-nil, waits for transport resources after the reader drains
	// (subprocess Wait).
	teardown func()
	reap     func()
}

// obtain produces one initialized session for a slot: either spawn a
// subprocess or lease the next connected gateway worker, then send it
// the init message.
func (r *Run) obtain(slot int) (*workerSession, error) {
	var s *workerSession
	if r.opts.Sessions != nil {
		var err error
		s, err = r.opts.Sessions.Acquire(r.doneCh)
		if err != nil {
			return nil, err
		}
		r.o.CounterAdd(obs.MWorkerSpawns, 1, "app", r.opts.App, "worker", strconv.Itoa(slot))
		r.o.Event(obs.EvWorkerSpawn,
			obs.String("app", r.opts.App), obs.Int("worker", int64(slot)),
			obs.Int("pid", int64(s.pid)), obs.String("remote", s.remote))
		r.o.Stat().WorkerSpawned(slot, s.pid)
	} else {
		var err error
		s, err = r.spawn(slot)
		if err != nil {
			return nil, err
		}
	}
	cfg := r.opts.Config
	cfg.SharedPersistent = r.opts.SharedBackend != nil
	if err := s.send(Msg{Type: MsgInit, App: r.opts.App, Config: &cfg}); err != nil {
		s.kill()
		return nil, err
	}
	return s, nil
}

// spawn launches a worker subprocess.
func (r *Run) spawn(slot int) (*workerSession, error) {
	cmd := r.opts.WorkerCmd()
	if cmd == nil {
		return nil, errors.New("dist: WorkerCmd returned nil")
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if r.opts.Stderr != nil {
		cmd.Stderr = r.opts.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	r.o.CounterAdd(obs.MWorkerSpawns, 1, "app", r.opts.App, "worker", strconv.Itoa(slot))
	pid := 0
	if cmd.Process != nil {
		pid = cmd.Process.Pid
	}
	r.o.Event(obs.EvWorkerSpawn,
		obs.String("app", r.opts.App), obs.Int("worker", int64(slot)),
		obs.Int("pid", int64(pid)))
	r.o.Stat().WorkerSpawned(slot, pid)
	s := &workerSession{
		w:          stdin,
		msgs:       make(chan Msg, 64),
		readerDone: make(chan struct{}),
		pid:        pid,
		teardown: func() {
			stdin.Close()
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		},
		reap: func() { cmd.Wait() },
	}
	go s.readLoop(stdout)
	return s, nil
}

func (s *workerSession) send(m Msg) error {
	line, err := json.Marshal(m)
	if err != nil {
		return err
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	_, err = s.w.Write(append(line, '\n'))
	return err
}

// readLoop streams worker messages into s.msgs until EOF or a corrupt
// line (a worker that has lost protocol framing is as good as dead).
func (s *workerSession) readLoop(rd io.Reader) {
	defer close(s.readerDone)
	defer close(s.msgs)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var m Msg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return
		}
		s.msgs <- m
	}
}

// bye ends a session cleanly when possible: with nothing inflight, ask
// the worker to drain and exit, give it a moment, then reap.
func (s *workerSession) bye(clean bool) {
	if clean {
		if err := s.send(Msg{Type: MsgBye}); err == nil {
			select {
			case <-s.readerDone:
			case <-time.After(2 * time.Second):
			}
		}
	}
	s.kill()
}

// kill tears the worker down: close its transport and reap it once the
// reader has drained. Idempotent. The session loop never reads msgs
// after calling kill, so the reaper drains the channel to unblock the
// reader.
func (s *workerSession) kill() {
	s.killOnce.Do(func() {
		if s.teardown != nil {
			s.teardown()
		}
		go func() {
			for range s.msgs {
			}
			<-s.readerDone
			if s.reap != nil {
				s.reap()
			}
		}()
	})
}
