package dist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/obs"
)

// Defaults for worker supervision.
const (
	// DefaultItemTimeout bounds one work item's wall clock as seen by the
	// coordinator (dispatch to result). Items run whole unit-test trees,
	// so this is generous; the harness's own per-test timeout fires long
	// before it unless the worker itself is wedged.
	DefaultItemTimeout = 10 * time.Minute
	// DefaultItemRetries is how many times a crashed or timed-out item is
	// requeued (on a fresh worker) before the coordinator gives up and
	// quarantines it.
	DefaultItemRetries = 2
	// spawnFailureLimit is how many consecutive failed launches kill a
	// worker slot for good.
	spawnFailureLimit = 3
)

// Options configures a Coordinator.
type Options struct {
	// App is the application name sent to workers in the init message.
	App string
	// Workers is the number of worker slots (subprocesses kept alive at
	// once). Zero means 1.
	Workers int
	// WorkerCmd builds the command for one worker subprocess, typically
	// `os.Executable() -worker`. Called again for every respawn.
	WorkerCmd func() *exec.Cmd
	// Config is the campaign configuration shipped to every worker.
	Config Config
	// CheckpointPath, when set, journals every completed item so a later
	// run can -resume. ResumePath, when set, replays a journal's completed
	// items instead of re-executing them; the two may name the same file.
	CheckpointPath string
	ResumePath     string
	// ItemTimeout bounds one item's dispatch-to-result wall clock; a
	// worker holding an overdue item is killed. Zero means
	// DefaultItemTimeout.
	ItemTimeout time.Duration
	// ItemRetries bounds requeues per item before quarantine. Zero
	// disables retries; negative means DefaultItemRetries.
	ItemRetries int
	// MaxItems, when positive, halts the run after that many items
	// complete — a testing hook for exercising checkpoint/resume.
	MaxItems int
	// Obs receives the coordinator's metrics, spans, and the progress /
	// verdict replay of worker results. Nil disables observability.
	Obs *obs.Observer
	// Stderr, when non-nil, receives worker stderr (for diagnosis).
	Stderr io.Writer
}

// Coordinator shards work items across worker subprocesses.
type Coordinator struct {
	opts Options
}

// New builds a Coordinator. Option defaults are resolved at Execute time.
func New(opts Options) *Coordinator {
	return &Coordinator{opts: opts}
}

// Execute runs the items to completion (or MaxItems, or unrecoverable
// worker loss) and returns one ItemResult per completed item — including
// items replayed from ResumePath and items quarantined after exhausting
// retries — sorted by item ID.
func (c *Coordinator) Execute(parent obs.SpanID, items []campaign.WorkItem) ([]campaign.ItemResult, error) {
	if c.opts.WorkerCmd == nil {
		return nil, errors.New("dist: Coordinator requires WorkerCmd")
	}
	workers := c.opts.Workers
	if workers <= 0 {
		workers = 1
	}
	o := c.opts.Obs
	span := o.StartSpan("distribute", parent,
		obs.String("app", c.opts.App),
		obs.Int("workers", int64(workers)),
		obs.Int("items", int64(len(items))))
	defer span.End()

	r := &crun{
		opts:    c.opts,
		workers: workers,
		o:       o,
		span:    span,
	}
	if cfg := c.opts.Config; !cfg.DisableExecCache && !cfg.NoSharedCache {
		r.sharedCache = make(map[memo.Key]memo.Result)
	}
	if r.opts.ItemTimeout <= 0 {
		r.opts.ItemTimeout = DefaultItemTimeout
	}
	if r.opts.ItemRetries < 0 {
		r.opts.ItemRetries = DefaultItemRetries
	}
	return r.execute(items)
}

// crun is the state of one Execute call.
type crun struct {
	opts    Options
	workers int
	o       *obs.Observer
	span    *obs.Span
	journal *Journal
	q       *queue

	// sharedCache is the coordinator-side execution cache served to
	// workers over cache-get/cache-put; nil when memoization (or just
	// its shared tier) is disabled. Guarded by cacheMu, not mu: cache
	// traffic is hot-path and must not contend with result accounting.
	cacheMu     sync.Mutex
	sharedCache map[memo.Key]memo.Result

	mu          sync.Mutex
	results     map[int]campaign.ItemResult
	attempts    map[int]int
	completions int // unique pending items resolved this run
	pendingN    int
	live        int // worker slots not yet permanently dead
	lastFailure string
	failErr     error
	finished    bool
	halted      bool
	doneCh      chan struct{}
}

func (r *crun) execute(items []campaign.WorkItem) ([]campaign.ItemResult, error) {
	resumed, err := r.loadResume(items)
	if err != nil {
		return nil, err
	}
	if err := r.openCheckpoint(items, resumed); err != nil {
		return nil, err
	}
	if r.journal != nil {
		defer r.journal.Close()
	}

	var pending []campaign.WorkItem
	for _, it := range items {
		if _, done := resumed[it.ID]; !done {
			pending = append(pending, it)
		}
	}
	r.results = make(map[int]campaign.ItemResult, len(pending))
	r.attempts = make(map[int]int)
	r.pendingN = len(pending)
	r.live = r.workers
	r.doneCh = make(chan struct{})

	if len(pending) > 0 {
		r.q = newQueue(r.workers, pending)
		r.o.GaugeSet(obs.MQueueDepth, r.q.depth(), "app", r.opts.App)
		var wg sync.WaitGroup
		for slot := 0; slot < r.workers; slot++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				r.supervise(slot)
			}(slot)
		}
		wg.Wait()
		r.o.GaugeSet(obs.MQueueDepth, 0, "app", r.opts.App)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failErr != nil && r.completions < r.pendingN && !r.halted {
		return nil, r.failErr
	}
	out := make([]campaign.ItemResult, 0, len(resumed)+len(r.results))
	for _, res := range resumed {
		out = append(out, *res)
	}
	for _, res := range r.results {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// loadResume replays the resume journal's completed items and validates
// that the journal belongs to this exact campaign (app, seed, item count
// — item IDs are indexes into the pre-run order, so any mismatch would
// silently misattribute results).
func (r *crun) loadResume(items []campaign.WorkItem) (map[int]*campaign.ItemResult, error) {
	if r.opts.ResumePath == "" {
		return nil, nil
	}
	recs, err := ReadJournal(r.opts.ResumePath)
	if err != nil {
		return nil, err
	}
	resumed := make(map[int]*campaign.ItemResult)
	headers := 0
	for _, rec := range recs {
		switch rec.Kind {
		case KindHeader:
			headers++
			if rec.App != r.opts.App || rec.Seed != r.opts.Config.Seed || rec.Items != len(items) {
				return nil, fmt.Errorf(
					"dist: checkpoint %s is for app=%s seed=%d items=%d, not app=%s seed=%d items=%d",
					r.opts.ResumePath, rec.App, rec.Seed, rec.Items,
					r.opts.App, r.opts.Config.Seed, len(items))
			}
		case KindDone:
			if rec.Result != nil {
				res := *rec.Result
				resumed[res.ID] = &res
			}
		}
	}
	if headers == 0 {
		return nil, fmt.Errorf("dist: checkpoint %s has no header record", r.opts.ResumePath)
	}
	r.o.CounterAdd(obs.MItemsResumed, int64(len(resumed)), "app", r.opts.App)
	r.span.SetAttr(obs.Int("resumed", int64(len(resumed))))
	return resumed, nil
}

// openCheckpoint opens the checkpoint journal and appends this session's
// header. When resuming into a different file, the resumed results are
// re-journaled so the new checkpoint is self-contained.
func (r *crun) openCheckpoint(items []campaign.WorkItem, resumed map[int]*campaign.ItemResult) error {
	if r.opts.CheckpointPath == "" {
		return nil
	}
	j, err := OpenJournal(r.opts.CheckpointPath, 0)
	if err != nil {
		return err
	}
	r.journal = j
	if err := j.Append(Record{Kind: KindHeader, App: r.opts.App, Seed: r.opts.Config.Seed, Items: len(items)}); err != nil {
		return err
	}
	sameFile := r.opts.ResumePath != "" &&
		filepath.Clean(r.opts.ResumePath) == filepath.Clean(r.opts.CheckpointPath)
	if len(resumed) > 0 && !sameFile {
		ids := make([]int, 0, len(resumed))
		for id := range resumed {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			res := resumed[id]
			if err := j.Append(Record{Kind: KindDone, Item: res.ID, Test: res.Test, Result: res}); err != nil {
				return err
			}
		}
	}
	return j.Sync()
}

// sessionOutcome classifies why one worker session ended.
type sessionOutcome int

const (
	sessDone      sessionOutcome = iota // run finished or halted; slot retires
	sessCrashed                         // worker lost after doing work; respawn
	sessSpawnFail                       // worker never became ready; counts toward slot death
)

// supervise owns one worker slot: spawn, run a session, respawn on crash,
// retire the slot after spawnFailureLimit consecutive failed launches.
func (r *crun) supervise(slot int) {
	fails := 0
	for {
		if r.stopped() {
			return
		}
		sess, err := r.spawn(slot)
		if err != nil {
			r.o.CounterAdd(obs.MWorkerCrashes, 1, "app", r.opts.App, "reason", "spawn")
			r.noteFailure(err.Error())
			fails++
			if fails >= spawnFailureLimit {
				r.slotDied()
				return
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		switch r.session(slot, sess) {
		case sessDone:
			return
		case sessCrashed:
			fails = 0
		case sessSpawnFail:
			fails++
			if fails >= spawnFailureLimit {
				r.slotDied()
				return
			}
		}
	}
}

// session drives one live worker until the run completes, the worker is
// lost, or it never becomes ready.
func (r *crun) session(slot int, sess *workerSession) sessionOutcome {
	o := r.o
	app := r.opts.App
	wspan := o.StartSpan("worker", r.span.ID(),
		obs.String("app", app), obs.Int("slot", int64(slot)))
	defer wspan.End()

	parallel := r.opts.Config.Parallel
	if parallel <= 0 {
		parallel = DefaultWorkerParallel
	}
	type entry struct {
		item  campaign.WorkItem
		start time.Time
	}
	inflight := make(map[int]entry)
	ready := false
	spawned := time.Now()
	itemsDone := 0

	// crash tears the session down after the worker is lost: every
	// inflight item is penalized (it may be what killed the worker).
	crash := func(reason string) sessionOutcome {
		sess.kill()
		o.CounterAdd(obs.MWorkerCrashes, 1, "app", app, "reason", reason)
		wspan.SetAttr(obs.String("end", reason), obs.Int("items", int64(itemsDone)))
		for _, e := range inflight {
			r.retryOrGiveUp(slot, e.item, reason)
		}
		return sessCrashed
	}

	tickEvery := r.opts.ItemTimeout / 8
	if tickEvery > time.Second {
		tickEvery = time.Second
	} else if tickEvery < 5*time.Millisecond {
		tickEvery = 5 * time.Millisecond
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()

	for {
		if ready && !r.stopped() {
			for len(inflight) < parallel {
				item, stolen, ok := r.q.tryPop(slot)
				if !ok {
					break
				}
				if stolen {
					o.CounterAdd(obs.MSteals, 1, "app", app)
				}
				o.GaugeSet(obs.MQueueDepth, r.q.depth(), "app", app)
				if err := sess.send(Msg{Type: MsgRun, Item: &item}); err != nil {
					// The item never reached the worker; requeue it for
					// free and treat the broken pipe as a crash.
					r.q.requeue(slot, item)
					return crash("crash")
				}
				inflight[item.ID] = entry{item: item, start: time.Now()}
			}
		}
		if r.stopped() {
			// Complete, halted, or failed elsewhere. All results are
			// either in or abandoned with the run; drop the worker.
			sess.bye(len(inflight) == 0)
			wspan.SetAttr(obs.String("end", "done"), obs.Int("items", int64(itemsDone)))
			return sessDone
		}

		select {
		case m, ok := <-sess.msgs:
			if !ok {
				if !ready {
					sess.kill()
					r.noteFailure("worker exited before ready")
					return sessSpawnFail
				}
				return crash("crash")
			}
			switch m.Type {
			case MsgReady:
				if m.Error != "" {
					sess.kill()
					r.noteFailure(m.Error)
					return sessSpawnFail
				}
				ready = true
				wspan.SetAttr(obs.Int("pid", int64(m.PID)))
			case MsgResult:
				if m.Result == nil {
					return crash("crash")
				}
				e, known := inflight[m.Result.ID]
				if !known {
					break
				}
				delete(inflight, m.Result.ID)
				itemsDone++
				r.recordResult(slot, *m.Result, time.Since(e.start))
			case MsgCacheGet:
				if m.CacheKey == nil {
					break
				}
				reply := Msg{Type: MsgCacheVal, Req: m.Req}
				if res, ok := r.cacheGet(*m.CacheKey); ok {
					reply.CacheHit = true
					reply.CacheRes = &res
				}
				if err := sess.send(reply); err != nil {
					// A worker we cannot answer is a worker whose Gets
					// would all stall to timeout; treat the pipe as dead.
					return crash("crash")
				}
			case MsgCachePut:
				if m.CacheKey != nil && m.CacheRes != nil {
					r.cachePut(*m.CacheKey, *m.CacheRes)
				}
			}
		case <-tick.C:
			if !ready {
				if time.Since(spawned) > r.opts.ItemTimeout {
					sess.kill()
					r.noteFailure("worker not ready within item timeout")
					return sessSpawnFail
				}
				break
			}
			now := time.Now()
			for id, e := range inflight {
				if now.Sub(e.start) <= r.opts.ItemTimeout {
					continue
				}
				// The overdue item is the suspect: it alone is penalized.
				// The worker is killed (the item's goroutine cannot be),
				// so the other inflight items requeue for free.
				sess.kill()
				delete(inflight, id)
				r.retryOrGiveUp(slot, e.item, "timeout")
				for _, other := range inflight {
					r.q.requeue(slot, other.item)
				}
				o.CounterAdd(obs.MWorkerCrashes, 1, "app", app, "reason", "timeout")
				wspan.SetAttr(obs.String("end", "timeout"), obs.Int("items", int64(itemsDone)))
				return sessCrashed
			}
		case <-r.q.wake:
		case <-r.doneCh:
		}
	}
}

// cacheGet serves one worker lookup from the shared execution cache.
func (r *crun) cacheGet(k memo.Key) (memo.Result, bool) {
	if r.sharedCache == nil {
		return memo.Result{}, false
	}
	r.cacheMu.Lock()
	res, ok := r.sharedCache[k]
	r.cacheMu.Unlock()
	if ok {
		r.o.CounterAdd(obs.MCacheHits, 1, "app", r.opts.App, "scope", "shared")
	} else {
		r.o.CounterAdd(obs.MCacheMisses, 1, "app", r.opts.App)
	}
	return res, ok
}

// cachePut stores one worker-published result. First write wins: the
// harness is seeded-deterministic, so concurrent publishers for one key
// carry identical results anyway.
func (r *crun) cachePut(k memo.Key, res memo.Result) {
	if r.sharedCache == nil {
		return
	}
	r.cacheMu.Lock()
	if _, ok := r.sharedCache[k]; !ok {
		r.sharedCache[k] = res
	}
	r.cacheMu.Unlock()
}

// recordResult journals and accounts one completed item, replaying its
// observable campaign signals (progress, verdict counters) that the
// worker process could not record itself.
func (r *crun) recordResult(slot int, res campaign.ItemResult, elapsed time.Duration) {
	r.mu.Lock()
	_, dup := r.results[res.ID]
	if !dup {
		r.results[res.ID] = res
		r.completions++
	}
	r.mu.Unlock()
	r.q.done()
	if dup {
		// A timeout kill raced with this item's completion and the retry
		// also finished; execution is deterministic, so the copies agree.
		return
	}
	if r.journal != nil {
		if err := r.journal.Append(Record{Kind: KindDone, Item: res.ID, Test: res.Test, Result: &res}); err != nil {
			r.noteFailure("checkpoint write failed: " + err.Error())
		}
	}
	o, app := r.o, r.opts.App
	o.CounterAdd(obs.MWorkerItems, 1, "app", app, "worker", strconv.Itoa(slot))
	o.Observe(obs.MItemSeconds, elapsed.Seconds(), "app", app)
	o.CounterAdd(obs.MItemExecutions, res.Executions, "app", app)
	if res.ExecutionsSaved > 0 {
		// Worker-process metrics registries are not merged, so the
		// coordinator replays the cache's saved-executions gauge from the
		// item tallies (local and shared hits alike).
		o.GaugeAdd(obs.MCacheSaved, res.ExecutionsSaved, "app", app)
	}
	o.ProgressAddTotal(int64(res.Instances))
	o.ProgressAddDone(int64(res.Instances))
	o.ProgressAddExecutions(res.Executions)
	o.GaugeAdd(obs.MInstancesTotal, int64(res.Instances), "app", app)
	o.GaugeAdd(obs.MInstancesDone, int64(res.Instances), "app", app)
	for _, v := range res.Verdicts {
		o.RecordVerdict(app, v.Verdict, v.FirstTrialSignal)
	}
	if res.LeakedGoroutines > 0 {
		o.CounterAdd(obs.MAbandonedGoroutines, res.LeakedGoroutines, "app", app, "test", res.Test)
	}
	r.maybeFinish()
}

// retryOrGiveUp charges one failed attempt to an item: requeue it for a
// fresh worker, or — past the retry budget — quarantine it with a
// fabricated result so the campaign report surfaces the coverage gap.
func (r *crun) retryOrGiveUp(slot int, item campaign.WorkItem, reason string) {
	r.mu.Lock()
	r.attempts[item.ID]++
	n := r.attempts[item.ID]
	r.mu.Unlock()
	if n <= r.opts.ItemRetries {
		r.o.CounterAdd(obs.MItemRetries, 1, "app", r.opts.App)
		r.q.requeue(slot, item)
		return
	}
	res := campaign.ItemResult{
		ID:          item.ID,
		Test:        item.Test,
		Quarantined: true,
		Error:       fmt.Sprintf("abandoned after %d attempts (last failure: %s)", n, reason),
	}
	if r.journal != nil {
		if err := r.journal.Append(Record{Kind: KindGiveUp, Item: item.ID, Test: item.Test, Reason: reason}); err != nil {
			r.noteFailure("checkpoint write failed: " + err.Error())
		}
	}
	r.mu.Lock()
	if _, dup := r.results[res.ID]; !dup {
		r.results[res.ID] = res
		r.completions++
	}
	r.mu.Unlock()
	r.q.done()
	r.o.CounterAdd(obs.MItemsQuarantined, 1, "app", r.opts.App)
	r.maybeFinish()
}

// maybeFinish closes the run when every pending item is resolved, or
// when the MaxItems testing hook trips.
func (r *crun) maybeFinish() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return
	}
	if r.completions >= r.pendingN {
		r.finished = true
		close(r.doneCh)
		return
	}
	if r.opts.MaxItems > 0 && r.completions >= r.opts.MaxItems {
		r.finished = true
		r.halted = true
		close(r.doneCh)
	}
}

func (r *crun) stopped() bool {
	select {
	case <-r.doneCh:
		return true
	default:
		return false
	}
}

func (r *crun) noteFailure(msg string) {
	r.mu.Lock()
	r.lastFailure = msg
	r.mu.Unlock()
}

// slotDied retires a worker slot permanently; when the last slot dies
// with work remaining, the run fails.
func (r *crun) slotDied() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.live--
	if r.live > 0 || r.finished {
		return
	}
	r.failErr = fmt.Errorf("dist: all %d worker slots failed (last failure: %s)", r.workers, r.lastFailure)
	r.finished = true
	close(r.doneCh)
}

// workerSession is one live worker subprocess as seen by the coordinator.
type workerSession struct {
	cmd        *exec.Cmd
	stdin      io.WriteCloser
	msgs       chan Msg
	readerDone chan struct{}
	killOnce   sync.Once
	sendMu     sync.Mutex
}

// spawn launches a worker subprocess and sends it the init message.
func (r *crun) spawn(slot int) (*workerSession, error) {
	cmd := r.opts.WorkerCmd()
	if cmd == nil {
		return nil, errors.New("dist: WorkerCmd returned nil")
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if r.opts.Stderr != nil {
		cmd.Stderr = r.opts.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	r.o.CounterAdd(obs.MWorkerSpawns, 1, "app", r.opts.App, "worker", strconv.Itoa(slot))
	s := &workerSession{
		cmd:        cmd,
		stdin:      stdin,
		msgs:       make(chan Msg, 64),
		readerDone: make(chan struct{}),
	}
	go s.readLoop(stdout)
	cfg := r.opts.Config
	if err := s.send(Msg{Type: MsgInit, App: r.opts.App, Config: &cfg}); err != nil {
		s.kill()
		return nil, err
	}
	return s, nil
}

func (s *workerSession) send(m Msg) error {
	line, err := json.Marshal(m)
	if err != nil {
		return err
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	_, err = s.stdin.Write(append(line, '\n'))
	return err
}

// readLoop streams worker messages into s.msgs until EOF or a corrupt
// line (a worker that has lost protocol framing is as good as dead).
func (s *workerSession) readLoop(stdout io.Reader) {
	defer close(s.readerDone)
	defer close(s.msgs)
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var m Msg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return
		}
		s.msgs <- m
	}
}

// bye ends a session cleanly when possible: with nothing inflight, ask
// the worker to drain and exit, give it a moment, then reap.
func (s *workerSession) bye(clean bool) {
	if clean {
		if err := s.send(Msg{Type: MsgBye}); err == nil {
			select {
			case <-s.readerDone:
			case <-time.After(2 * time.Second):
			}
		}
	}
	s.kill()
}

// kill tears the worker down: close its stdin, kill the process, and
// reap it once the reader has drained. Idempotent. The session loop
// never reads msgs after calling kill, so the reaper drains the channel
// to unblock the reader.
func (s *workerSession) kill() {
	s.killOnce.Do(func() {
		s.stdin.Close()
		if s.cmd.Process != nil {
			s.cmd.Process.Kill()
		}
		go func() {
			for range s.msgs {
			}
			<-s.readerDone
			s.cmd.Wait()
		}()
	})
}
