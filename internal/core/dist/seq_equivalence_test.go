package dist_test

import (
	"reflect"
	"testing"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/core/stats"
)

// paramTruth is the projection of a report every sequential mode must
// agree on.
type paramTruth struct {
	Param, Truth string
}

// reportedSet projects a result onto the fields every sequential mode
// must agree on: which parameters were reported and their ground-truth
// labels. MinP, rounds, and trial counts legitimately differ between
// stopping rules (SPRT convicts earlier, at a larger Fisher p), so the
// equivalence invariant is the parameter set, not the evidence details.
func reportedSet(res *campaign.Result) []paramTruth {
	out := make([]paramTruth, 0, len(res.Reported))
	for _, r := range res.Reported {
		out = append(out, paramTruth{Param: r.Param, Truth: r.Truth.String()})
	}
	return out
}

// TestSeqEquivalenceAllApps is the sequential-stopping soundness
// property on every mini application: SPRT and GSF must report the
// identical parameter set as the fixed-N ablation — in-process and
// sharded across worker subprocesses — while SPRT performs strictly
// fewer executions. Cache off, so executions equal statistical trials
// and the saving is attributable to early stopping alone.
func TestSeqEquivalenceAllApps(t *testing.T) {
	cases := []struct {
		app    string
		params []string
		tests  []string
	}{
		{"minihdfs",
			[]string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
			[]string{"TestWriteRead", "TestFsck", "TestMkdirList"}},
		{"miniyarn",
			[]string{"yarn.scheduler.maximum-allocation-mb", "yarn.timeline-service.enabled"},
			[]string{"TestAllocationAtMaxMB", "TestTimelineQuery", "TestSubmitApplication"}},
		{"minihbase",
			[]string{"hadoop.rpc.protection", "hbase.client.scanner.caching", "hbase.regionserver.thrift.compact"},
			[]string{"TestPutGet", "TestThriftAdmin"}},
		{"minimr",
			[]string{"mapreduce.jobhistory.max-age-ms", "mapreduce.jobhistory.address", "mapreduce.map.output.compress.codec"},
			[]string{"TestWordCount", "TestHistoryArchive"}},
		{"miniflink",
			[]string{"akka.ssl.enabled", "taskmanager.numberOfTaskSlots"},
			[]string{"TestJobSubmission", "TestSlotAllocationExact", "TestDataExchange"}},
	}
	const seed = 7
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			t.Parallel()
			app, err := apps.ByName(tc.app)
			if err != nil {
				t.Fatal(err)
			}
			mkOpts := func(mode stats.SeqMode) campaign.Options {
				return campaign.Options{
					Params:           tc.params,
					Tests:            tc.tests,
					Seed:             seed,
					Seq:              mode,
					DisableExecCache: true,
				}
			}

			fixed := campaign.Run(app, mkOpts(stats.SeqFixed))
			sprt := campaign.Run(app, mkOpts(stats.SeqSPRT))
			gsf := campaign.Run(app, mkOpts(stats.SeqGSF))

			if len(fixed.Reported) == 0 {
				t.Fatalf("%s subset reported nothing; the equivalence check is vacuous", tc.app)
			}
			want := reportedSet(fixed)
			if got := reportedSet(sprt); !reflect.DeepEqual(got, want) {
				t.Fatalf("sprt reported set diverges from fixed:\n sprt  %+v\n fixed %+v", got, want)
			}
			if got := reportedSet(gsf); !reflect.DeepEqual(got, want) {
				t.Fatalf("gsf reported set diverges from fixed:\n gsf   %+v\n fixed %+v", got, want)
			}
			if sprt.Counts.Executed >= fixed.Counts.Executed {
				t.Fatalf("sprt did not reduce executions: sprt %d, fixed %d",
					sprt.Counts.Executed, fixed.Counts.Executed)
			}
			if sprt.ConfirmationTrials >= fixed.ConfirmationTrials {
				t.Fatalf("sprt did not reduce confirmation trials: sprt %d, fixed %d",
					sprt.ConfirmationTrials, fixed.ConfirmationTrials)
			}
			for _, r := range sprt.Reported {
				if r.StopReason == "" {
					t.Fatalf("sprt report for %s carries no stop reason", r.Param)
				}
			}

			// The same parameter-set invariant across worker subprocesses.
			for _, mode := range []stats.SeqMode{stats.SeqSPRT, stats.SeqGSF} {
				dres := runDistributed(t, app, mkOpts(mode), dist.Options{
					Workers:   2,
					WorkerCmd: workerFactory(),
				})
				if got := reportedSet(dres); !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=2 seq=%v reported set diverges:\n dist  %+v\n fixed %+v",
						mode, got, want)
				}
			}
		})
	}
}
