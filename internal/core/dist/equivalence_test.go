package dist_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/dist"
)

// TestCacheEquivalenceAllApps is the memoization soundness property on
// every mini application: with canonical seeds applied unconditionally,
// -exec-cache only skips re-running byte-identical executions, so the
// reported parameter set, p-values, and verdict statistics must be
// identical with the cache on and off — in-process and sharded across
// worker subprocesses — while the cache-on run performs strictly fewer
// executions.
func TestCacheEquivalenceAllApps(t *testing.T) {
	cases := []struct {
		app    string
		params []string
		tests  []string
	}{
		{"minihdfs",
			[]string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
			[]string{"TestWriteRead", "TestFsck", "TestMkdirList"}},
		{"miniyarn",
			[]string{"yarn.scheduler.maximum-allocation-mb", "yarn.timeline-service.enabled"},
			[]string{"TestAllocationAtMaxMB", "TestTimelineQuery", "TestSubmitApplication"}},
		{"minihbase",
			[]string{"hadoop.rpc.protection", "hbase.client.scanner.caching", "hbase.regionserver.thrift.compact"},
			[]string{"TestPutGet", "TestThriftAdmin"}},
		{"minimr",
			[]string{"mapreduce.jobhistory.max-age-ms", "mapreduce.jobhistory.address", "mapreduce.map.output.compress.codec"},
			[]string{"TestWordCount", "TestHistoryArchive"}},
		{"miniflink",
			[]string{"akka.ssl.enabled", "taskmanager.numberOfTaskSlots"},
			[]string{"TestJobSubmission", "TestSlotAllocationExact", "TestDataExchange"}},
	}
	const seed = 7
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			t.Parallel()
			app, err := apps.ByName(tc.app)
			if err != nil {
				t.Fatal(err)
			}
			mkOpts := func(cacheOff bool) campaign.Options {
				return campaign.Options{
					Params:           tc.params,
					Tests:            tc.tests,
					Seed:             seed,
					DisableExecCache: cacheOff,
				}
			}

			off := campaign.Run(app, mkOpts(true))
			on := campaign.Run(app, mkOpts(false))

			if len(on.Reported) == 0 {
				t.Fatalf("%s subset reported nothing; the equivalence check is vacuous", tc.app)
			}
			if off.Counts.ExecutionsSaved != 0 {
				t.Fatalf("cache-off run claims %d saved executions", off.Counts.ExecutionsSaved)
			}
			if on.Counts.ExecutionsSaved == 0 {
				t.Fatal("cache saved nothing on a multi-instance subset")
			}
			if on.Counts.Executed >= off.Counts.Executed {
				t.Fatalf("cache did not reduce executions: on %d, off %d",
					on.Counts.Executed, off.Counts.Executed)
			}
			if on.Counts.Executed+on.Counts.ExecutionsSaved != off.Counts.Executed {
				t.Fatalf("executed+saved with cache (%d+%d) != executed without (%d)",
					on.Counts.Executed, on.Counts.ExecutionsSaved, off.Counts.Executed)
			}
			// Everything except the execution accounting must be
			// byte-identical: same reports, p-values, truth labels,
			// verdict statistics, instance counts.
			if got, want := normalized(t, on), normalized(t, off); got != want {
				t.Fatalf("cache changed the campaign result:\n on  %s\n off %s", got, want)
			}

			// The same property across worker subprocesses, where the
			// cache adds a coordinator-backed shared level.
			for _, cacheOff := range []bool{false, true} {
				dres := runDistributed(t, app, mkOpts(cacheOff), dist.Options{
					Workers:   2,
					WorkerCmd: workerFactory(),
				})
				if !reflect.DeepEqual(dres.Reported, on.Reported) {
					t.Fatalf("workers=2 cacheOff=%v reported set diverges:\n dist  %+v\n local %+v",
						cacheOff, dres.Reported, on.Reported)
				}
				if dres.FirstTrialSignals != on.FirstTrialSignals ||
					dres.FilteredByHypothesis != on.FilteredByHypothesis ||
					dres.HomoInvalid != on.HomoInvalid {
					t.Fatalf("workers=2 cacheOff=%v verdict statistics diverge", cacheOff)
				}
				want := on.Counts
				if cacheOff {
					want = off.Counts
				}
				if dres.Counts.Executed != want.Executed || dres.Counts.ExecutionsSaved != want.ExecutionsSaved {
					t.Fatalf("workers=2 cacheOff=%v executions diverge: dist %d saved %d, local %d saved %d",
						cacheOff, dres.Counts.Executed, dres.Counts.ExecutionsSaved,
						want.Executed, want.ExecutionsSaved)
				}
			}
		})
	}
}

// normalized renders a result as JSON with the fields memoization is
// allowed to change (execution accounting, wall time) zeroed.
func normalized(t *testing.T, res *campaign.Result) string {
	t.Helper()
	cp := *res
	cp.Elapsed = 0
	cp.Counts.Executed = 0
	cp.Counts.ExecutionsSaved = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
