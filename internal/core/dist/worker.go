package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/diskcache"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/stats"
	"zebraconf/internal/core/testgen"
	"zebraconf/internal/obs"
)

// DefaultWorkerParallel bounds concurrent work items inside one worker
// subprocess when the init config leaves Parallel zero. The tests are
// sleep-dominated, so like the in-process pool a worker oversubscribes
// its CPUs; this is the per-machine container count of the paper's fleet.
const DefaultWorkerParallel = 8

// WorkerEnv carries worker-machine-local settings that are not part of
// the campaign configuration shipped by the coordinator: a networked
// worker's operator decides where (and whether) its persistent disk
// cache lives, the coordinator only decides the campaign.
type WorkerEnv struct {
	// DiskCacheDir, when non-empty, overrides Config.DiskCacheDir as the
	// location of the worker's persistent execution cache tier.
	DiskCacheDir string
	// DiskCacheMaxBytes caps that store; zero selects the diskcache
	// default.
	DiskCacheMaxBytes int64
}

// ServeWorker runs the worker side of the protocol: read init, announce
// ready, execute run items (up to Config.Parallel concurrently), stream
// results back, and exit on bye or coordinator EOF. resolve maps the
// init message's application name to its App — injected so this package
// never depends on the application registry.
//
// Each item executes with a fresh Generator: no state crosses items, so
// an item's result depends only on (app, config, item) and retries on
// another worker — or replays from a checkpoint — are deterministic.
func ServeWorker(r io.Reader, w io.Writer, resolve func(string) (*harness.App, error)) error {
	return ServeWorkerEnv(r, w, resolve, WorkerEnv{})
}

// ServeWorkerEnv is ServeWorker with worker-local environment settings.
func ServeWorkerEnv(r io.Reader, w io.Writer, resolve func(string) (*harness.App, error), env WorkerEnv) error {
	var wmu sync.Mutex
	send := func(m Msg) error {
		line, err := json.Marshal(m)
		if err != nil {
			return err
		}
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
		if f, ok := w.(interface{ Flush() error }); ok {
			return f.Flush()
		}
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	read := func() (Msg, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return Msg{}, err
			}
			return Msg{}, io.EOF
		}
		var m Msg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return Msg{}, fmt.Errorf("dist: worker: bad message: %w", err)
		}
		return m, nil
	}

	init, err := read()
	if err != nil {
		return fmt.Errorf("dist: worker: reading init: %w", err)
	}
	if init.Type != MsgInit || init.Config == nil {
		return fmt.Errorf("dist: worker: expected init, got %q", init.Type)
	}
	app, err := resolve(init.App)
	if err != nil {
		// Report the failure on the wire before dying so the coordinator
		// sees a reason, not just an EOF.
		send(Msg{Type: MsgReady, PID: os.Getpid(), Error: err.Error()})
		return err
	}
	cfg := *init.Config
	opts := cfg.CampaignOptions()
	if opts.QuarantineThreshold <= 0 {
		opts.QuarantineThreshold = 3
	}
	// Default overrides apply before anything reads the schema, exactly
	// as the coordinator applies them in campaign.Run.
	app = campaign.OverrideApp(app, opts.Overrides)
	schema := app.Schema()
	// Execution memoization: a worker-local cache spanning this session's
	// items, optionally backed by the coordinator's shared cache so runs
	// executed by another worker (typically an earlier attempt of a
	// retried item) are reused instead of redone. Disabling the shared
	// tier falls back to purely local caching; disabling the cache falls
	// back to re-running everything.
	var rcache *remoteCache
	var cache *memo.Cache
	var cachePersistent bool
	if !cfg.DisableExecCache {
		var backend memo.Backend
		if !cfg.NoSharedCache {
			rcache = newRemoteCache(send)
			backend = rcache
		}
		// Persistent disk tier between the in-process map and the
		// coordinator: memory → disk → coordinator. The worker's own env
		// wins over the coordinator's suggestion (the dir must make sense
		// on *this* machine); an open failure just drops the tier.
		dir, maxBytes := cfg.DiskCacheDir, cfg.DiskCacheMaxBytes
		if env.DiskCacheDir != "" {
			dir, maxBytes = env.DiskCacheDir, env.DiskCacheMaxBytes
		}
		if dir != "" {
			if store, err := diskcache.Open(dir, maxBytes, backend, nil); err == nil {
				backend = store
				cachePersistent = true
			} else {
				fmt.Fprintf(os.Stderr, "zebraconf worker: disk cache disabled: %v\n", err)
			}
		}
		// Persistence anywhere in the hierarchy — a local disk tier or a
		// coordinator whose shared cache is disk-backed — makes
		// label-seeded trials worth memoizing: their keys only recur
		// across campaigns.
		cachePersistent = cachePersistent || (!cfg.NoSharedCache && cfg.SharedPersistent)
		cache = memo.NewCache(app.Name, backend, nil)
	}
	// Evidence budget: one recorder shared by every item of this session,
	// so -evidence-max bounds the worker process as a whole (the campaign
	// flag is per-worker in dist mode). The observer is nil — worker
	// registries are not merged; the coordinator replays evidence counters
	// from the records riding in each item result.
	rec := forensics.NewRecorder(app.Name, cfg.EvidenceMax, nil)
	// Coverage: one collector for the session; each item's read edges
	// ship home on its result, where the coordinator folds them into the
	// campaign index. Cache hits replay their memoized read sets through
	// the runner, so a fully warm worker still reports complete coverage.
	cov := coverage.NewCollector()
	// The budget pool is worker-wide (like the evidence budget): trials
	// saved by this worker's early stops fund extension rounds for its
	// own marginal parameters.
	var pool *stats.BudgetPool
	if opts.Seq != stats.SeqFixed {
		pool = stats.NewBudgetPool()
	}
	rops := runner.Options{
		Significance:     opts.Significance,
		MaxRounds:        opts.MaxRounds,
		Seq:              opts.Seq,
		SeqMargin:        opts.SeqMargin,
		Pool:             pool,
		DisableGate:      opts.DisableGate,
		Strategy:         opts.Strategy,
		BaseSeed:         opts.Seed,
		Cache:            cache,
		CacheLabelSeeded: cachePersistent,
		Evidence:         rec,
		Coverage:         cov,
	}
	run := runner.New(app, rops)
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = DefaultWorkerParallel
	}

	if err := send(Msg{Type: MsgReady, PID: os.Getpid()}); err != nil {
		return err
	}

	// Heartbeats: a side goroutine beats every HeartbeatMS with a health
	// snapshot — in-flight item IDs, executions done, goroutine count,
	// heap bytes. Send errors are ignored here; a dying pipe surfaces
	// through the session's own reads and writes.
	var hbmu sync.Mutex
	inflight := make(map[int]bool)
	var execDone atomic.Int64
	if cfg.HeartbeatMS > 0 {
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			pid := os.Getpid()
			t := time.NewTicker(time.Duration(cfg.HeartbeatMS) * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					hbmu.Lock()
					ids := make([]int, 0, len(inflight))
					for id := range inflight {
						ids = append(ids, id)
					}
					hbmu.Unlock()
					sort.Ints(ids)
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					_ = send(Msg{Type: MsgHeartbeat, PID: pid, HB: &Heartbeat{
						Inflight:   ids,
						Executions: execDone.Load(),
						Goroutines: runtime.NumGoroutine(),
						HeapBytes:  ms.HeapAlloc,
					}})
				}
			}
		}()
	}

	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	var sendErr error
	var errOnce sync.Once
	// quarantined accumulates the coordinator's MsgQuarantine hints (§4's
	// frequent-failer rule, confirmed across workers). Applied to each
	// item's fresh Generator before execution, so later items skip the
	// condemned parameter's instances just as the in-process path would.
	var qmu sync.Mutex
	quarantined := make(map[string]bool)
	// drain waits out in-flight items; their results still matter to a
	// coordinator that is shutting down cleanly. The remote cache must
	// release its waiters first: nobody will read another cache-val off
	// the wire, and a Get blocked inside an item would deadlock the wait.
	drain := func() {
		if rcache != nil {
			rcache.close()
		}
		wg.Wait()
	}
	for {
		m, err := read()
		if err == io.EOF || (err == nil && m.Type == MsgBye) {
			drain()
			return sendErr
		}
		if err != nil {
			drain()
			return err
		}
		if m.Type == MsgCacheVal {
			if rcache != nil {
				rcache.deliver(m)
			}
			continue
		}
		if m.Type == MsgQuarantine {
			if m.Param != "" {
				qmu.Lock()
				quarantined[m.Param] = true
				qmu.Unlock()
			}
			continue
		}
		if m.Type != MsgRun || m.Item == nil {
			return fmt.Errorf("dist: worker: unexpected message %q", m.Type)
		}
		item := *m.Item
		// Mark the item in flight at receipt — before the semaphore wait,
		// so a saturated worker's heartbeats still name the items it is
		// responsible for.
		hbmu.Lock()
		inflight[item.ID] = true
		hbmu.Unlock()
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				hbmu.Lock()
				delete(inflight, item.ID)
				hbmu.Unlock()
			}()
			gen := testgen.New(schema)
			if len(opts.Params) > 0 {
				gen.SetFilter(opts.Params)
			}
			qmu.Lock()
			for p := range quarantined {
				gen.Quarantine(p)
			}
			qmu.Unlock()
			// Item tracing: execute under a private tracer and ship the
			// resulting span fragment home inside the item result. IDs are
			// fragment-local (a fresh tracer per item), parents of roots
			// are 0; the coordinator re-identifies both when stitching.
			itemRun, itemOpts := run, opts
			var traceBuf *bytes.Buffer
			if cfg.TraceItems {
				traceBuf = new(bytes.Buffer)
				itemObs := &obs.Observer{Tracer: obs.NewTracer(traceBuf)}
				tops := rops
				tops.Obs = itemObs
				itemRun = runner.New(app, tops)
				itemOpts.Obs = itemObs
			}
			res := campaign.ExecuteItem(app, gen, itemRun, itemOpts, obs.NoSpan, item, nil, true)
			if params, ok := cov.Params(item.Test); ok {
				res.Coverage = params
			}
			if traceBuf != nil {
				// Every span ends before ExecuteItem returns, so the
				// fragment is complete; a parse error just drops it
				// (tracing must never fail the campaign).
				res.Spans, _ = obs.ReadTrace(traceBuf)
			}
			execDone.Add(res.Executions)
			if err := send(Msg{Type: MsgResult, Result: &res}); err != nil {
				errOnce.Do(func() { sendErr = err })
			}
		}()
	}
}
