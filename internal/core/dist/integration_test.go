package dist_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/obs"
)

// TestMain doubles the test binary as the worker subprocess: with
// ZEBRACONF_DIST_WORKER=1 it speaks the wire protocol on stdio instead
// of running tests (the standard helper-process pattern). Two fault
// modes are injected by further env vars:
//
//	ZEBRACONF_DIST_KILL_AFTER=N  SIGKILL self after writing N stdout lines
//	ZEBRACONF_DIST_HANG=1        acknowledge init, then never answer runs
func TestMain(m *testing.M) {
	if os.Getenv("ZEBRACONF_DIST_WORKER") == "1" {
		runWorker()
		return
	}
	os.Exit(m.Run())
}

func runWorker() {
	if os.Getenv("ZEBRACONF_DIST_HB_FAKE") == "1" {
		runHBFakeWorker()
		return
	}
	if os.Getenv("ZEBRACONF_DIST_FAKE") != "" {
		runFakeWorker()
		return
	}
	if os.Getenv("ZEBRACONF_DIST_HANG") == "1" {
		sc := bufio.NewScanner(os.Stdin)
		sc.Scan() // init
		fmt.Printf("{\"type\":\"ready\",\"pid\":%d}\n", os.Getpid())
		for sc.Scan() {
		} // swallow run messages forever
		os.Exit(0)
	}
	var w interface {
		Write([]byte) (int, error)
	} = os.Stdout
	if n, _ := strconv.Atoi(os.Getenv("ZEBRACONF_DIST_KILL_AFTER")); n > 0 {
		w = &killAfterWriter{w: os.Stdout, linesLeft: int32(n)}
	}
	if err := dist.ServeWorker(os.Stdin, w, apps.ByName); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// killAfterWriter lets N lines through, then SIGKILLs the process — the
// result reaches the coordinator, the worker dies uncleanly right after,
// exactly like a machine lost mid-campaign.
type killAfterWriter struct {
	w         *os.File
	linesLeft int32
}

func (k *killAfterWriter) Write(p []byte) (int, error) {
	n, err := k.w.Write(p)
	if atomic.AddInt32(&k.linesLeft, -int32(bytes.Count(p, []byte{'\n'}))) <= 0 {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
	return n, err
}

func workerFactory(env ...string) func() *exec.Cmd {
	return func() *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "ZEBRACONF_DIST_WORKER=1")
		cmd.Env = append(cmd.Env, env...)
		return cmd
	}
}

// subsetOptions is a small deterministic minihdfs slice: one test with
// real instances (TestWriteRead x checksum parameters) plus two tests
// that pre-run to zero instances, giving three work items. Evidence
// capture stays off here: the read trace records concurrent node
// goroutines in interception order, which is scheduler-dependent, so
// byte-identity assertions cannot include it (evidence equivalence has
// its own test comparing the deterministic fields).
func subsetOptions(seed int64, o *obs.Observer) campaign.Options {
	return campaign.Options{
		Params: []string{"dfs.bytes-per-checksum", "dfs.checksum.type"},
		Tests:  []string{"TestWriteRead", "TestFsck", "TestMkdirList"},
		Seed:   seed,
		Obs:    o,
	}
}

func minihdfs(t *testing.T) *harness.App {
	t.Helper()
	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// testDistributor adapts a Coordinator to campaign.Distributor, holding
// any Start/Drain error for the test to check after the campaign.
type testDistributor struct {
	coord *dist.Coordinator
	run   *dist.Run
	err   error
}

func (d *testDistributor) Begin(parent obs.SpanID, total int) {
	d.run, d.err = d.coord.Start(parent, total)
}

func (d *testDistributor) Submit(item campaign.WorkItem) {
	if d.err == nil {
		d.run.Submit(item)
	}
}

func (d *testDistributor) Drain() []campaign.ItemResult {
	if d.err != nil {
		return nil
	}
	res, err := d.run.Drain()
	if err != nil {
		d.err = err
	}
	return res
}

// runDistributed runs a campaign with phase 2 executed by a Coordinator.
func runDistributed(t *testing.T, app *harness.App, opts campaign.Options, dopts dist.Options) *campaign.Result {
	t.Helper()
	dopts.App = app.Name
	cfg := dist.ConfigFrom(opts)
	// TraceItems is a dist-layer concern ConfigFrom cannot derive from
	// campaign options; keep whatever the test asked for.
	cfg.TraceItems = dopts.Config.TraceItems
	dopts.Config = cfg
	dopts.Obs = opts.Obs
	d := &testDistributor{coord: dist.New(dopts)}
	opts.Distributor = d
	res := campaign.Run(app, opts)
	if d.err != nil {
		t.Fatal(d.err)
	}
	return res
}

// TestDistributedMatchesLocal is the core equivalence property: sharding
// phase 2 across worker subprocesses must report the same parameters,
// truth labels, and execution counts as the in-process pool on the same
// seed.
func TestDistributedMatchesLocal(t *testing.T) {
	t.Parallel()
	app := minihdfs(t)
	local := campaign.Run(app, subsetOptions(11, nil))
	distRes := runDistributed(t, app, subsetOptions(11, nil), dist.Options{
		Workers:   2,
		WorkerCmd: workerFactory(),
	})

	if !reflect.DeepEqual(distRes.Reported, local.Reported) {
		t.Fatalf("reported parameters diverge:\n dist  %+v\n local %+v", distRes.Reported, local.Reported)
	}
	if distRes.Counts.Executed != local.Counts.Executed {
		t.Fatalf("executions diverge: dist %d, local %d", distRes.Counts.Executed, local.Counts.Executed)
	}
	if distRes.FirstTrialSignals != local.FirstTrialSignals ||
		distRes.FilteredByHypothesis != local.FilteredByHypothesis ||
		distRes.HomoInvalid != local.HomoInvalid {
		t.Fatalf("verdict statistics diverge: dist %+v, local %+v", distRes, local)
	}
	if len(local.Reported) == 0 {
		t.Fatal("subset campaign reported nothing; the equivalence check is vacuous")
	}
}

// TestWorkerKillThenResumeByteIdentical SIGKILLs workers mid-campaign,
// halts the coordinator, resumes from the checkpoint, and requires the
// resumed campaign's merged result to be byte-identical to an
// uninterrupted workers=1 run on the same seed — with the checkpointed
// items provably not re-executed (the executions counter only counts
// work done this run).
func TestWorkerKillThenResumeByteIdentical(t *testing.T) {
	t.Parallel()
	app := minihdfs(t)
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	const seed = 23

	// The exec cache stays off here: the kill injection counts stdout
	// lines, and cache-get/cache-put traffic would shift the kill point;
	// worse, a retried item would reuse results the killed attempt
	// published, making per-item execution counts depend on where the
	// kill landed. Cache+distribution equivalence has its own test.
	noCache := func(o *obs.Observer) campaign.Options {
		opts := subsetOptions(seed, o)
		opts.DisableExecCache = true
		return opts
	}

	// Reference: uninterrupted single-worker distributed run.
	refObs := obs.New()
	ref := runDistributed(t, app, noCache(refObs), dist.Options{
		Workers:   1,
		WorkerCmd: workerFactory(),
	})
	refExec := refObs.Metrics.CounterValue(obs.MItemExecutions, "app", app.Name)

	// Interrupted run: every worker is SIGKILLed after its first result
	// (stdout line 2: ready, then one result); the coordinator halts via
	// MaxItems after two completions, leaving the third item undone.
	killObs := obs.New()
	runDistributed(t, app, noCache(killObs), dist.Options{
		Workers:        1,
		WorkerCmd:      workerFactory("ZEBRACONF_DIST_KILL_AFTER=2"),
		CheckpointPath: ck,
		MaxItems:       2,
	})
	if n := killObs.Metrics.CounterValue(obs.MWorkerCrashes, "app", app.Name, "reason", "crash"); n < 1 {
		t.Fatalf("worker crashes = %d, want >= 1 (the SIGKILL was not observed)", n)
	}

	recs, err := dist.ReadJournal(ck)
	if err != nil {
		t.Fatal(err)
	}
	var doneItems int64
	var doneExec int64
	for _, rec := range recs {
		if rec.Kind == dist.KindDone && rec.Result != nil {
			doneItems++
			doneExec += rec.Result.Executions
		}
	}
	if doneItems == 0 || doneItems >= 3 {
		t.Fatalf("checkpointed items = %d, want a strict subset of the 3 items", doneItems)
	}

	// Resume: checkpointed items must be replayed, not re-executed.
	resObs := obs.New()
	resumed := runDistributed(t, app, noCache(resObs), dist.Options{
		Workers:    1,
		WorkerCmd:  workerFactory(),
		ResumePath: ck,
	})
	if n := resObs.Metrics.CounterValue(obs.MItemsResumed, "app", app.Name); n != doneItems {
		t.Fatalf("items resumed = %d, want %d", n, doneItems)
	}
	gotExec := resObs.Metrics.CounterValue(obs.MItemExecutions, "app", app.Name)
	if gotExec != refExec-doneExec {
		t.Fatalf("resumed run executed %d unit tests, want %d (total %d minus %d checkpointed)",
			gotExec, refExec-doneExec, refExec, doneExec)
	}

	ref.Elapsed, resumed.Elapsed = 0, 0
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, resJSON) {
		t.Fatalf("merged results diverge after kill+resume:\n ref    %s\n resume %s", refJSON, resJSON)
	}
}

// TestDistributedEvidenceMatchesLocal checks evidence equivalence across
// execution paths on the deterministic fields: identity, repro, seeds,
// arm digests, trial counts, and failure message must agree between the
// in-process pool and worker subprocesses. The read trace is excluded —
// it records concurrent node goroutines in interception order, which is
// real-scheduler-dependent even on one machine.
func TestDistributedEvidenceMatchesLocal(t *testing.T) {
	t.Parallel()
	withEvidence := func() campaign.Options {
		opts := subsetOptions(11, nil)
		opts.EvidenceMax = -1
		return opts
	}
	app := minihdfs(t)
	local := campaign.Run(app, withEvidence())
	distRes := runDistributed(t, app, withEvidence(), dist.Options{
		Workers:   2,
		WorkerCmd: workerFactory(),
	})

	deterministic := func(res *campaign.Result) []forensics.Evidence {
		out := make([]forensics.Evidence, 0, len(res.Reported))
		for _, r := range res.Reported {
			if r.Evidence == nil {
				t.Fatalf("%s reported without evidence", r.Param)
			}
			ev := *r.Evidence
			ev.Reads, ev.ReadsDropped, ev.FirstDivergent = nil, 0, 0
			out = append(out, ev)
		}
		return out
	}
	lev, dev := deterministic(local), deterministic(distRes)
	if len(lev) == 0 {
		t.Fatal("no evidence to compare; the equivalence check is vacuous")
	}
	if !reflect.DeepEqual(lev, dev) {
		t.Fatalf("deterministic evidence fields diverge:\n dist  %+v\n local %+v", dev, lev)
	}
	// The excluded part must still be present and divergent on both paths.
	for _, res := range []*campaign.Result{local, distRes} {
		for _, r := range res.Reported {
			if len(r.Evidence.Reads) == 0 || r.Evidence.FirstDivergent < 0 {
				t.Fatalf("%s evidence has no divergent read trace: %+v", r.Param, r.Evidence)
			}
		}
	}
}

// TestKillResumeSingleEvidencePerItem is the forensic side of the
// crash-resume contract: after a SIGKILL mid-campaign and a resume into
// a fresh checkpoint, the new journal must hold exactly one completed
// record per item — replayed or re-executed, never both — and every
// verdict in it must still carry its evidence record.
func TestKillResumeSingleEvidencePerItem(t *testing.T) {
	t.Parallel()
	app := minihdfs(t)
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.jsonl")
	ck2 := filepath.Join(dir, "ck2.jsonl")
	const seed = 23

	noCache := func() campaign.Options {
		opts := subsetOptions(seed, nil)
		opts.DisableExecCache = true // keep the stdout-line kill point stable
		opts.EvidenceMax = -1
		return opts
	}

	// Interrupted run: killed after the first result, halted after two.
	runDistributed(t, app, noCache(), dist.Options{
		Workers:        1,
		WorkerCmd:      workerFactory("ZEBRACONF_DIST_KILL_AFTER=2"),
		CheckpointPath: ck,
		MaxItems:       2,
	})

	// Resume into a different journal: openCheckpoint re-journals the
	// replayed items, so ck2 is the self-contained record of the campaign.
	runDistributed(t, app, noCache(), dist.Options{
		Workers:        1,
		WorkerCmd:      workerFactory(),
		ResumePath:     ck,
		CheckpointPath: ck2,
	})

	recs, err := dist.ReadJournal(ck2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(map[int]int)
	verdicts, withEvidence := 0, 0
	for _, rec := range recs {
		if rec.Kind != dist.KindDone || rec.Result == nil {
			continue
		}
		done[rec.Result.ID]++
		for _, v := range rec.Result.Verdicts {
			verdicts++
			if v.Evidence != nil {
				withEvidence++
			}
		}
	}
	for id := 0; id < 3; id++ {
		if done[id] != 1 {
			t.Fatalf("item %d journaled %d times, want exactly once (journal: %v)", id, done[id], done)
		}
	}
	if verdicts == 0 {
		t.Fatal("no verdicts in the resumed journal; the evidence check is vacuous")
	}
	if withEvidence != verdicts {
		t.Fatalf("evidence survived on %d of %d verdicts across the kill+resume", withEvidence, verdicts)
	}
}

// TestWorkersTraceSingleTree pins cross-process trace stitching: a
// distributed campaign with per-item worker tracing must render as ONE
// span tree — a single root, and every other span's parent present in
// the same trace. Before stitching, worker fragments arrived with
// process-local span IDs and dangled as orphaned roots.
func TestWorkersTraceSingleTree(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	o := &obs.Observer{Tracer: obs.NewTracer(&buf)}
	app := minihdfs(t)
	runDistributed(t, app, subsetOptions(11, o), dist.Options{
		Workers:   2,
		WorkerCmd: workerFactory(),
		Config:    dist.Config{TraceItems: true},
	})

	spans, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[obs.SpanID]bool, len(spans))
	for _, s := range spans {
		ids[s.Span] = true
	}
	roots, orphans := 0, 0
	byName := make(map[string]int)
	for _, s := range spans {
		byName[s.Name]++
		if s.Parent == 0 {
			roots++
		} else if !ids[s.Parent] {
			orphans++
			t.Errorf("span %d (%s) references missing parent %d", s.Span, s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want exactly 1 (names: %v)", roots, byName)
	}
	if orphans != 0 {
		t.Fatalf("%d orphaned spans after stitching", orphans)
	}
	// The worker-side fragments must actually be present: instance/round
	// spans only happen inside worker processes on this path.
	if byName["item"] == 0 || byName["instance"] == 0 {
		t.Fatalf("stitched trace is missing worker-side spans: %v", byName)
	}
}

// TestHangingItemsAreQuarantined drives the per-item deadline: a worker
// that never answers is killed, the item retried on a fresh worker, and
// after the retry budget the item is quarantined with the campaign
// completing anyway.
func TestHangingItemsAreQuarantined(t *testing.T) {
	t.Parallel()
	o := obs.New()
	items := []campaign.WorkItem{{ID: 0, Test: "TestA"}, {ID: 1, Test: "TestB"}}
	coord := dist.New(dist.Options{
		App:         "minihdfs",
		Workers:     1,
		WorkerCmd:   workerFactory("ZEBRACONF_DIST_HANG=1"),
		ItemTimeout: 150 * time.Millisecond,
		ItemRetries: 1,
		Obs:         o,
	})
	res, err := coord.Execute(obs.NoSpan, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2 quarantined placeholders", len(res))
	}
	for _, r := range res {
		if !r.Quarantined || r.Error == "" {
			t.Fatalf("item %d not quarantined: %+v", r.ID, r)
		}
	}
	if n := o.Metrics.CounterValue(obs.MItemsQuarantined, "app", "minihdfs"); n != 2 {
		t.Fatalf("quarantined counter = %d, want 2", n)
	}
	if n := o.Metrics.CounterValue(obs.MItemRetries, "app", "minihdfs"); n < 1 {
		t.Fatalf("retries = %d, want >= 1 (each item gets one fresh-worker retry)", n)
	}
	if n := o.Metrics.CounterValue(obs.MWorkerCrashes, "app", "minihdfs", "reason", "timeout"); n < 1 {
		t.Fatalf("timeout kills = %d, want >= 1", n)
	}
}

// TestAllSlotsFailing verifies the unrecoverable case: when every worker
// slot burns its spawn budget, Execute fails instead of hanging.
func TestAllSlotsFailing(t *testing.T) {
	t.Parallel()
	coord := dist.New(dist.Options{
		App:     "minihdfs",
		Workers: 2,
		WorkerCmd: func() *exec.Cmd {
			return exec.Command("/nonexistent/zebraconf-worker")
		},
	})
	if _, err := coord.Execute(obs.NoSpan, []campaign.WorkItem{{ID: 0, Test: "T"}}); err == nil {
		t.Fatal("Execute succeeded with no spawnable workers")
	}
}

// TestUnknownAppFailsCleanly covers the ready-with-error handshake: the
// worker process starts but cannot resolve the app, reports the reason,
// and the coordinator gives up with it instead of respawning forever.
func TestUnknownAppFailsCleanly(t *testing.T) {
	t.Parallel()
	coord := dist.New(dist.Options{
		App:       "no-such-app",
		Workers:   1,
		WorkerCmd: workerFactory(),
	})
	_, err := coord.Execute(obs.NoSpan, []campaign.WorkItem{{ID: 0, Test: "T"}})
	if err == nil {
		t.Fatal("Execute succeeded for an unresolvable app")
	}
}
