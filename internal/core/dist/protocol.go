// Package dist is ZebraConf's distributed campaign executor: a
// coordinator that shards a campaign's phase-2 work items across a pool
// of worker subprocesses (`zebraconf -worker`), speaking newline-
// delimited JSON over stdin/stdout. It is the analog of the paper's
// 100-machine × 20-container CloudLab fleet (§4 "Test in parallel"): test
// instances are independent, so isolation is cheap — and unlike the
// in-process pool, a worker that hangs or corrupts itself can simply be
// killed and replaced without poisoning the rest of the campaign.
//
// The coordinator owns a sharded work queue with work stealing, a
// crash-safe JSONL checkpoint journal (completed items are appended and
// fsync'd in batches, so -resume skips them and reproduces the identical
// merged result), and worker supervision: per-item deadlines, crash
// detection, bounded retries on a fresh worker, and quarantine of items
// that keep killing workers.
package dist

import (
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/core/stats"
)

// Message types of the coordinator↔worker wire protocol. Every message
// is one JSON object on one line; the stream direction is strictly
// request/response-free: the coordinator writes init/run/bye, the worker
// writes ready/result, and either side treats EOF as the peer's death.
const (
	// MsgInit (coordinator → worker) opens the session: the application
	// name and the campaign configuration the worker should execute
	// items under.
	MsgInit = "init"
	// MsgReady (worker → coordinator) acknowledges init.
	MsgReady = "ready"
	// MsgRun (coordinator → worker) dispatches one work item. Up to
	// Config.Parallel items may be outstanding at once.
	MsgRun = "run"
	// MsgResult (worker → coordinator) returns one completed item.
	MsgResult = "result"
	// MsgBye (coordinator → worker) asks for a clean drain-and-exit.
	MsgBye = "bye"
	// MsgCacheGet (worker → coordinator) asks the coordinator-side shared
	// execution cache for one key; Req correlates the reply. This is the
	// one request/response exchange in the protocol, and it is advisory:
	// a worker that never asks (or times out waiting) just re-executes.
	MsgCacheGet = "cache-get"
	// MsgCacheVal (coordinator → worker) answers one MsgCacheGet, echoing
	// Req; CacheHit says whether CacheRes is meaningful.
	MsgCacheVal = "cache-val"
	// MsgCachePut (worker → coordinator) publishes one executed result to
	// the shared cache, fire-and-forget, so a hit on worker A saves a run
	// on worker B (most usefully when a retried item lands on a fresh
	// worker that would otherwise redo the lost worker's runs).
	MsgCachePut = "cache-put"
	// MsgQuarantine (coordinator → worker) broadcasts one parameter
	// confirmed unsafe by enough distinct tests (§4's frequent-failer
	// rule): workers skip its remaining instances. Best-effort and purely
	// a pruning hint — a worker that never hears it just does extra work,
	// and skipped instances merge as skipped, not failed, so resume stays
	// correct.
	MsgQuarantine = "quarantine"
	// MsgHeartbeat (worker → coordinator) is the periodic liveness beat
	// (Config.HeartbeatMS), carrying a health snapshot in HB. Purely
	// advisory: the coordinator uses missed beats to flag stalled workers
	// but never kills on them — the per-item deadline still governs.
	MsgHeartbeat = "heartbeat"
	// MsgHello (worker → gateway) opens a TCP worker connection: Token
	// authenticates, PID identifies. Only spoken on networked sessions —
	// stdio subprocess sessions skip the handshake (the pipe is the
	// trust boundary) and start straight at init.
	MsgHello = "hello"
	// MsgWelcome (gateway → worker) answers the hello. Error non-empty
	// means rejected (bad token); the gateway closes the connection
	// after writing it, and the worker must not redial with the same
	// credentials. On success the worker parks silently until init.
	MsgWelcome = "welcome"
)

// Heartbeat is the health snapshot riding in a MsgHeartbeat.
type Heartbeat struct {
	// Inflight lists the IDs of work items currently executing.
	Inflight []int `json:"inflight,omitempty"`
	// Executions counts unit-test executions completed by this worker
	// process so far (per-item tallies, summed as results are sent).
	Executions int64 `json:"executions,omitempty"`
	// Goroutines and HeapBytes snapshot the worker runtime — a hung
	// harness shows up as a goroutine plateau, a leak as heap growth.
	Goroutines int    `json:"goroutines,omitempty"`
	HeapBytes  uint64 `json:"heap_bytes,omitempty"`
}

// Msg is the single wire envelope; Type selects which fields are set.
type Msg struct {
	Type   string               `json:"type"`
	App    string               `json:"app,omitempty"`
	Config *Config              `json:"config,omitempty"`
	Item   *campaign.WorkItem   `json:"item,omitempty"`
	Result *campaign.ItemResult `json:"result,omitempty"`
	PID    int                  `json:"pid,omitempty"`
	Error  string               `json:"error,omitempty"`
	// Param carries the quarantined parameter of a MsgQuarantine.
	Param string `json:"param,omitempty"`
	// Shared-execution-cache fields (MsgCacheGet / MsgCacheVal /
	// MsgCachePut). Req correlates a get with its val reply.
	Req      int64        `json:"req,omitempty"`
	CacheKey *memo.Key    `json:"cache_key,omitempty"`
	CacheRes *memo.Result `json:"cache_res,omitempty"`
	CacheHit bool         `json:"cache_hit,omitempty"`
	// HB carries the health snapshot of a MsgHeartbeat.
	HB *Heartbeat `json:"hb,omitempty"`
	// Token authenticates a MsgHello against the gateway's shared
	// secret.
	Token string `json:"token,omitempty"`
}

// Config is the serializable subset of campaign.Options a worker needs
// to execute items exactly the way the in-process path would, plus the
// worker's own internal parallelism.
type Config struct {
	MaxPool           int      `json:"max_pool,omitempty"`
	DisablePooling    bool     `json:"disable_pooling,omitempty"`
	DisableRoundRobin bool     `json:"disable_round_robin,omitempty"`
	DisableGate       bool     `json:"disable_gate,omitempty"`
	Strategy          int      `json:"strategy,omitempty"`
	Params            []string `json:"params,omitempty"`
	Significance      float64  `json:"significance,omitempty"`
	MaxRounds         int      `json:"max_rounds,omitempty"`
	Seed              int64    `json:"seed,omitempty"`
	// Seq selects the sequential confirmation mode (stats.SeqMode as an
	// int; 0 = SPRT, the default, rides as the JSON zero value).
	// SeqMargin is the budget-reallocation eligibility margin.
	Seq       int     `json:"seq,omitempty"`
	SeqMargin float64 `json:"seq_margin,omitempty"`
	// Overrides replaces schema parameter defaults worker-side (the
	// -override flag): workers resolve apps themselves, so default
	// overrides must ride the wire to keep every execution path
	// byte-identical to the coordinator's.
	Overrides map[string]string `json:"overrides,omitempty"`
	// DisableExecCache turns execution memoization off everywhere: no
	// worker-local caches and no coordinator-side shared cache.
	DisableExecCache bool `json:"disable_exec_cache,omitempty"`
	// NoSharedCache keeps workers' local caches but stops them from
	// consulting the coordinator (the worker-local fallback); the
	// coordinator also declines to serve lookups. Not reachable from the
	// CLI — a testing and degraded-mode knob.
	NoSharedCache bool `json:"no_shared_cache,omitempty"`
	// EvidenceMax is the per-worker evidence byte budget (the campaign's
	// -evidence-max applies to each worker process independently); zero
	// disables forensic capture, negative is unlimited.
	EvidenceMax int64 `json:"evidence_max,omitempty"`
	// Parallel bounds concurrent work items per worker subprocess — the
	// per-machine container count of the paper's fleet. Zero means 8.
	Parallel int `json:"parallel,omitempty"`
	// TraceItems asks workers to trace each item's execution into its
	// ItemResult (a span fragment the coordinator stitches under its own
	// item span). Set when the coordinator itself is tracing; not part
	// of campaign.Options, so ConfigFrom leaves it false.
	TraceItems bool `json:"trace_items,omitempty"`
	// HeartbeatMS is the worker heartbeat period in milliseconds; zero
	// disables heartbeats (and with them coordinator stall detection).
	// Not part of campaign.Options, so ConfigFrom leaves it zero — the
	// CLI turns it on for real campaigns.
	HeartbeatMS int `json:"heartbeat_ms,omitempty"`
	// DiskCacheDir, when non-empty, asks the worker to open a persistent
	// diskcache.Store at that path as the tier between its in-process
	// memo cache and the coordinator-shared cache (memory → disk →
	// coordinator). Only meaningful for subprocess workers sharing the
	// coordinator's filesystem; TCP workers configure their own local
	// directory via the -disk-cache flag instead, which takes
	// precedence. Zero DiskCacheMaxBytes selects the diskcache default.
	DiskCacheDir      string `json:"disk_cache_dir,omitempty"`
	DiskCacheMaxBytes int64  `json:"disk_cache_max_bytes,omitempty"`
	// SharedPersistent tells the worker the coordinator's shared cache
	// is itself backed by a persistent store, so label-seeded executions
	// are worth memoizing: their keys only ever repeat across campaigns,
	// which an ephemeral shared cache can never observe. Set by the
	// coordinator from its own SharedBackend; workers with a local disk
	// tier enable the same behaviour regardless.
	SharedPersistent bool `json:"shared_persistent,omitempty"`
}

// ConfigFrom extracts the wire configuration from campaign options.
func ConfigFrom(opts campaign.Options) Config {
	return Config{
		MaxPool:           opts.MaxPool,
		DisablePooling:    opts.DisablePooling,
		DisableRoundRobin: opts.DisableRoundRobin,
		DisableGate:       opts.DisableGate,
		Strategy:          int(opts.Strategy),
		Params:            opts.Params,
		Significance:      opts.Significance,
		MaxRounds:         opts.MaxRounds,
		Seed:              opts.Seed,
		Seq:               int(opts.Seq),
		SeqMargin:         opts.SeqMargin,
		Overrides:         opts.Overrides,
		DisableExecCache:  opts.DisableExecCache,
		EvidenceMax:       opts.EvidenceMax,
	}
}

// CampaignOptions converts the wire configuration back into the options
// a worker-side ExecuteItem call consumes. Obs stays nil: workers are
// observed from the coordinator side through their item results.
func (c Config) CampaignOptions() campaign.Options {
	return campaign.Options{
		MaxPool:           c.MaxPool,
		DisablePooling:    c.DisablePooling,
		DisableRoundRobin: c.DisableRoundRobin,
		DisableGate:       c.DisableGate,
		Strategy:          agent.Strategy(c.Strategy),
		Params:            c.Params,
		Significance:      c.Significance,
		MaxRounds:         c.MaxRounds,
		Seed:              c.Seed,
		Seq:               stats.SeqMode(c.Seq),
		SeqMargin:         c.SeqMargin,
		Overrides:         c.Overrides,
		DisableExecCache:  c.DisableExecCache,
		EvidenceMax:       c.EvidenceMax,
	}
}
