package dist_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zebraconf/internal/apps"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/dist"
	"zebraconf/internal/obs"
)

// TestWorkerHeartbeats drives ServeWorker in-process over pipes with
// heartbeats enabled and checks the beat stream: periodic, carrying a
// health snapshot, and interleaved cleanly with the protocol traffic.
func TestWorkerHeartbeats(t *testing.T) {
	t.Parallel()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	defer inW.Close()
	defer outR.Close() // unblocks any straggling heartbeat write

	serveDone := make(chan error, 1)
	go func() {
		serveDone <- dist.ServeWorker(inR, outW, apps.ByName)
	}()

	enc := json.NewEncoder(inW)
	cfg := dist.Config{
		Params:      []string{"dfs.bytes-per-checksum"},
		Parallel:    1,
		HeartbeatMS: 20,
	}
	if err := enc.Encode(dist.Msg{Type: dist.MsgInit, App: "minihdfs", Config: &cfg}); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(outR)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	read := func() dist.Msg {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("worker stream ended early: %v", sc.Err())
		}
		var m dist.Msg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad message %q: %v", sc.Text(), err)
		}
		return m
	}

	if m := read(); m.Type != dist.MsgReady {
		t.Fatalf("first message %q, want ready", m.Type)
	}

	beats := 0
	deadline := time.After(5 * time.Second)
	for beats < 3 {
		select {
		case <-deadline:
			t.Fatalf("saw only %d heartbeats before timeout", beats)
		default:
		}
		m := read()
		if m.Type != dist.MsgHeartbeat {
			t.Fatalf("unexpected message %q between heartbeats", m.Type)
		}
		if m.HB == nil {
			t.Fatal("heartbeat without HB payload")
		}
		if m.HB.Goroutines <= 0 {
			t.Fatalf("heartbeat goroutine count %d", m.HB.Goroutines)
		}
		if m.HB.HeapBytes == 0 {
			t.Fatal("heartbeat without heap bytes")
		}
		if m.PID != os.Getpid() {
			t.Fatalf("heartbeat pid %d, want %d (in-process)", m.PID, os.Getpid())
		}
		beats++
	}

	if err := enc.Encode(dist.Msg{Type: dist.MsgBye}); err != nil {
		t.Fatal(err)
	}
	// Drain remaining heartbeats until the worker exits and the write
	// side is released by our deferred outR.Close().
	go io.Copy(io.Discard, outR)
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ServeWorker: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit on bye")
	}
}

// TestWorkerHeartbeatsDisabledByDefault: a zero HeartbeatMS config (what
// ConfigFrom produces) must yield a silent worker — the pre-heartbeat
// wire behaviour, which legacy fakes and recorded sessions depend on.
func TestWorkerHeartbeatsDisabledByDefault(t *testing.T) {
	t.Parallel()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	defer inW.Close()
	defer outR.Close()

	go dist.ServeWorker(inR, outW, apps.ByName)

	enc := json.NewEncoder(inW)
	cfg := dist.ConfigFrom(campaign.Options{
		Params: []string{"dfs.bytes-per-checksum"},
		Tests:  []string{"TestWriteRead"},
	})
	if cfg.HeartbeatMS != 0 {
		t.Fatalf("ConfigFrom set HeartbeatMS=%d, want 0", cfg.HeartbeatMS)
	}
	if err := enc.Encode(dist.Msg{Type: dist.MsgInit, App: "minihdfs", Config: &cfg}); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(outR)
	if !sc.Scan() {
		t.Fatalf("no ready: %v", sc.Err())
	}
	// Nothing else may arrive unprompted: read with a deadline goroutine
	// and require silence for several would-be heartbeat periods.
	got := make(chan string, 1)
	go func() {
		if sc.Scan() {
			got <- sc.Text()
		}
	}()
	select {
	case line := <-got:
		t.Fatalf("unprompted message with heartbeats disabled: %s", line)
	case <-time.After(300 * time.Millisecond):
	}
	enc.Encode(dist.Msg{Type: dist.MsgBye})
}

// runHBFakeWorker is the stall-detection fixture: a protocol-level fake
// that heartbeats every 25ms while idle, goes completely silent for
// 600ms when given an item (a worker wedged in a harness), then resumes
// beating and delivers the result. Selected by ZEBRACONF_DIST_HB_FAKE=1
// from TestMain's worker branch.
func runHBFakeWorker() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	enc := json.NewEncoder(os.Stdout)
	var mu sync.Mutex
	send := func(m dist.Msg) {
		mu.Lock()
		enc.Encode(m)
		mu.Unlock()
	}
	hb := func() dist.Msg {
		return dist.Msg{Type: dist.MsgHeartbeat, PID: os.Getpid(), HB: &dist.Heartbeat{Goroutines: 2, HeapBytes: 1 << 20}}
	}
	var silent atomic.Bool
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if !silent.Load() {
					send(hb())
				}
			}
		}
	}()
	for sc.Scan() {
		var m dist.Msg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			os.Exit(1)
		}
		switch m.Type {
		case dist.MsgInit:
			send(dist.Msg{Type: dist.MsgReady, PID: os.Getpid()})
			// Beat immediately: the coordinator arms stall detection only
			// after the first heartbeat, and the run dispatch (which
			// silences this fake) follows ready with no gap.
			send(hb())
		case dist.MsgRun:
			item := *m.Item
			silent.Store(true)
			time.Sleep(600 * time.Millisecond)
			silent.Store(false)
			// An explicit beat before the result pins the recovery
			// ordering the test asserts on.
			send(hb())
			send(dist.Msg{Type: dist.MsgResult, Result: &campaign.ItemResult{ID: item.ID, Test: item.Test, Executions: 1}})
		case dist.MsgBye:
			close(stop)
			os.Exit(0)
		}
	}
	os.Exit(0)
}

// TestCoordinatorStallDetection runs the silent fake under a 150ms
// stall threshold: the coordinator must flag the stall (gauge, counter,
// event, status) while still accepting the late result — stalls are
// advisory, not kills.
func TestCoordinatorStallDetection(t *testing.T) {
	t.Parallel()
	o := obs.New()
	o.Status = obs.NewStatus()
	var events bytes.Buffer
	o.Events = obs.NewEventLog(&events)
	o.Status.CampaignBegin("fake", 1)

	coord := dist.New(dist.Options{
		App:         "fake",
		Workers:     1,
		WorkerCmd:   workerFactory("ZEBRACONF_DIST_HB_FAKE=1"),
		Config:      dist.Config{Parallel: 1, HeartbeatMS: 25},
		StallAfter:  150 * time.Millisecond,
		ItemTimeout: 20 * time.Second,
		Obs:         o,
		Stderr:      os.Stderr,
	})
	run, err := coord.Start(obs.NoSpan, 1)
	if err != nil {
		t.Fatal(err)
	}
	run.Submit(campaign.WorkItem{ID: 0, Test: "TestSilent"})
	results, err := run.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != 0 {
		t.Fatalf("results: %+v", results)
	}

	if n := run.Stalls(); n < 1 {
		t.Fatalf("Stalls() = %d, want >= 1", n)
	}
	if n := o.Metrics.CounterValue(obs.MWorkerStalls, "app", "fake"); n < 1 {
		t.Fatalf("%s = %d, want >= 1", obs.MWorkerStalls, n)
	}
	if n := o.Metrics.CounterValue(obs.MWorkerCrashes, "app", "fake"); n != 0 {
		t.Fatalf("stall must not count as a crash; crashes = %d", n)
	}
	if n := o.Metrics.CounterValue(obs.MHeartbeats, "app", "fake"); n < 2 {
		t.Fatalf("%s = %d, want >= 2", obs.MHeartbeats, n)
	}

	recs, err := obs.ReadEvents(&events)
	if err != nil {
		t.Fatal(err)
	}
	var stalledAt, recoveredAt = -1, -1
	for i, r := range recs {
		switch r.Event {
		case obs.EvWorkerStalled:
			if stalledAt < 0 {
				stalledAt = i
			}
		case obs.EvWorkerRecovered:
			recoveredAt = i
		case obs.EvWorkerCrash:
			t.Fatalf("crash event during a stall-only run: %+v", r)
		}
	}
	if stalledAt < 0 {
		t.Fatal("no worker_stalled event")
	}
	if recoveredAt < stalledAt {
		t.Fatalf("no worker_recovered after worker_stalled (stalled@%d recovered@%d)", stalledAt, recoveredAt)
	}

	ws := o.Status.Workers()
	if len(ws) != 1 {
		t.Fatalf("worker table: %+v", ws)
	}
	if ws[0].Stalls < 1 {
		t.Fatalf("status stalls = %d, want >= 1", ws[0].Stalls)
	}
	if ws[0].State != "done" {
		t.Fatalf("worker state %q after clean drain, want done", ws[0].State)
	}
}

// TestCoordinatorHeartbeatHealthy: with generous thresholds a beating
// worker is never flagged, and every heartbeat lands in the status
// table.
func TestCoordinatorHeartbeatHealthy(t *testing.T) {
	t.Parallel()
	o := obs.New()
	o.Status = obs.NewStatus()
	o.Status.CampaignBegin("minihdfs", 1)

	coord := dist.New(dist.Options{
		App:         "minihdfs",
		Workers:     2,
		WorkerCmd:   workerFactory(),
		Config:      dist.Config{Parallel: 1, HeartbeatMS: 50},
		StallAfter:  10 * time.Second,
		ItemTimeout: 60 * time.Second,
		Obs:         o,
		Stderr:      os.Stderr,
	})
	app := minihdfs(t)
	opts := subsetOptions(7, o)
	opts.Distributor = &testDistributor{coord: coord}
	res := campaign.Run(app, opts)
	if len(res.Reported) == 0 {
		t.Fatal("campaign reported nothing")
	}
	if n := o.Metrics.CounterValue(obs.MHeartbeats, "app", "minihdfs"); n < 2 {
		t.Fatalf("%s = %d, want >= 2", obs.MHeartbeats, n)
	}
	if n := o.Metrics.CounterValue(obs.MWorkerStalls, "app", "minihdfs"); n != 0 {
		t.Fatalf("healthy workers flagged stalled %d times", n)
	}
	for _, w := range o.Status.Workers() {
		if w.LastHeartbeatS < 0 {
			t.Fatalf("worker %d never heartbeat-healthy: %+v", w.Slot, w)
		}
	}
}
