package runner

import (
	"sort"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/testgen"
)

// The paper's §4 leaves dependency rules ("when testing p1 with v1, set p2
// to v2") to the developer and names automatic extraction as future work.
// SuggestDependencies implements a dynamic version of that future work:
// run a unit test once per candidate value of a parameter — homogeneously,
// so no heterogeneity effects interfere — and diff the observed read sets.
// A parameter read only under one value is conditionally coupled to it and
// is a candidate for a confkit.DependencyRule.

// DependencySuggestion reports one conditional coupling: while Param held
// When, the test read ThenParams; under some other candidate value it did
// not.
type DependencySuggestion struct {
	Test       string
	Param      string
	When       string
	ThenParams []string
}

// SuggestDependencies analyzes the given parameters (all candidates of
// each) against one unit test. Parameters with more than maxCandidates
// candidate values are skipped (the analysis runs the test once per value).
func (r *Runner) SuggestDependencies(test *harness.UnitTest, schema *confkit.Registry, params []string) []DependencySuggestion {
	const maxCandidates = 4

	// Pre-run to learn the node population for homogeneous assignment.
	pre := r.PreRun(test)
	gen := testgen.New(schema)

	var out []DependencySuggestion
	for _, name := range params {
		p := schema.Lookup(name)
		if p == nil {
			continue
		}
		values := p.AutoValues()
		if len(values) < 2 || len(values) > maxCandidates {
			continue
		}
		readsByValue := make(map[string]map[string]bool, len(values))
		for _, v := range values {
			inst := testgen.Instance{
				Test: pre.Test, Param: name, Group: agent.UnitTestEntity,
				Strategy: testgen.StrategyFlip, Pair: testgen.Pair{A: v, B: v},
			}
			asn := gen.AssignFor(inst, &pre.Report)
			outc := r.runOnce(test, asn.Homo[0], "depsuggest/"+name, v, 0)
			readsByValue[v] = unionReads(outc.Report.Usage)
		}
		for _, v := range values {
			only := make(map[string]bool)
			for q := range readsByValue[v] {
				if q == name {
					continue
				}
				missingSomewhere := false
				for _, w := range values {
					if w != v && !readsByValue[w][q] {
						missingSomewhere = true
						break
					}
				}
				if missingSomewhere {
					only[q] = true
				}
			}
			if len(only) == 0 {
				continue
			}
			sugg := DependencySuggestion{Test: pre.Test, Param: name, When: v}
			for q := range only {
				sugg.ThenParams = append(sugg.ThenParams, q)
			}
			sort.Strings(sugg.ThenParams)
			out = append(out, sugg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		return out[i].When < out[j].When
	})
	return out
}

func unionReads(usage map[string]map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for _, params := range usage {
		for p := range params {
			out[p] = true
		}
	}
	return out
}
