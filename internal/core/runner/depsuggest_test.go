package runner_test

import (
	"testing"

	"zebraconf/internal/apps/minihdfs"
	"zebraconf/internal/core/runner"
)

// TestSuggestDependenciesFindsHTTPAddressCoupling checks the future-work
// dependency extractor on the paper's own example: the http/https policy
// parameter determines which address parameter is read.
func TestSuggestDependenciesFindsHTTPAddressCoupling(t *testing.T) {
	t.Parallel()
	app := minihdfs.App()
	test, err := app.Test("TestFsck")
	if err != nil {
		t.Fatal(err)
	}
	r := runner.New(app, runner.Options{})
	suggestions := r.SuggestDependencies(test, app.Schema(), []string{minihdfs.ParamHTTPPolicy})

	var httpsCoupled, httpCoupled bool
	for _, s := range suggestions {
		if s.Param != minihdfs.ParamHTTPPolicy {
			t.Fatalf("suggestion for unexpected parameter: %+v", s)
		}
		for _, then := range s.ThenParams {
			if s.When == "HTTPS_ONLY" && then == minihdfs.ParamHTTPSAddress {
				httpsCoupled = true
			}
			if s.When == "HTTP_ONLY" && then == minihdfs.ParamHTTPAddress {
				httpCoupled = true
			}
		}
	}
	if !httpsCoupled || !httpCoupled {
		t.Fatalf("expected both policy->address couplings, got %+v", suggestions)
	}
}

// TestSuggestDependenciesQuietOnUnconditionalReads checks the extractor
// does not invent couplings for a parameter whose reads do not change the
// read set.
func TestSuggestDependenciesQuietOnUnconditionalReads(t *testing.T) {
	t.Parallel()
	app := minihdfs.App()
	test, err := app.Test("TestMkdirList")
	if err != nil {
		t.Fatal(err)
	}
	r := runner.New(app, runner.Options{})
	suggestions := r.SuggestDependencies(test, app.Schema(), []string{minihdfs.ParamFSLockFair})
	if len(suggestions) != 0 {
		t.Fatalf("unexpected suggestions for an unconditional parameter: %+v", suggestions)
	}
}
