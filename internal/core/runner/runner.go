// Package runner implements ZebraConf's TestRunner (paper §5): given a test
// instance, it runs the heterogeneous configuration and every corresponding
// homogeneous configuration, and reports a heterogeneous-unsafe parameter
// only when the difference survives hypothesis testing at the paper's
// significance level — filtering the false positives nondeterministic unit
// tests would otherwise produce.
package runner

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/core/stats"
	"zebraconf/internal/core/testgen"
	"zebraconf/internal/obs"
)

// Verdict classifies one instance after running.
type Verdict int

const (
	// VerdictSafe: the heterogeneous run passed on the first trial.
	VerdictSafe Verdict = iota
	// VerdictUnsafe: the heterogeneous failure was confirmed significant.
	VerdictUnsafe
	// VerdictFiltered: the first trial looked unsafe but hypothesis
	// testing could not confirm it — attributed to nondeterminism.
	VerdictFiltered
	// VerdictHomoInvalid: a homogeneous arm failed on the first trial, so
	// Definition 3.1's precondition does not hold for this instance.
	VerdictHomoInvalid
)

// String names the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictUnsafe:
		return "unsafe"
	case VerdictFiltered:
		return "filtered"
	case VerdictHomoInvalid:
		return "homo-invalid"
	default:
		return "unknown"
	}
}

// Stop reasons name why an instance's confirmation trials ended. Empty
// on instances that never entered confirmation (gated out on the first
// trial).
const (
	// StopConvicted: the stopping rule reached significance.
	StopConvicted = "convicted"
	// StopFutility: the stopping rule decided no remaining trials could
	// (or plausibly would) reach significance and cut the instance off.
	StopFutility = "futility"
	// StopBudget: the round budget ran out undecided — including
	// instances that then drew reallocated rounds from the campaign
	// budget pool but still did not convict.
	StopBudget = "budget"
)

// Result is the outcome of running one instance (or one pooled run treated
// as an instance).
type Result struct {
	Verdict Verdict
	// FirstTrialSignal reports whether trial one showed the unsafe pattern
	// (hetero failed, all homos passed) — the §7.2 "failed in the first
	// trial" statistic.
	FirstTrialSignal bool
	// PValue is the final Fisher one-sided p-value (1 when no confirmation
	// ran).
	PValue float64
	// Executions counts unit-test runs this instance consumed.
	Executions int64
	// Saved counts runs this instance avoided through the execution
	// cache: canonically-seeded homogeneous arms another instance (or an
	// earlier round sharing the key) already executed.
	Saved int64
	// Rounds counts confirmation rounds run after the first trial,
	// including any extension rounds drawn from the campaign budget pool.
	Rounds int
	// Trials counts paired trials this instance consumed across all
	// rounds (heterogeneous + homogeneous arms, cached or executed):
	// the sequential-stopping cost measure, invariant under memoization.
	Trials int64
	// StopReason says why confirmation ended (StopConvicted,
	// StopFutility, StopBudget); empty when the first-trial gate decided
	// the instance without confirmation rounds.
	StopReason string
	// HeteroMsg is a failure message from a heterogeneous run, for reports.
	HeteroMsg string
	// Evidence is the instance's forensic record (nil unless
	// Options.Evidence is set): the captured heterogeneous execution —
	// preferring the first failing one — plus per-arm identity and trial
	// counts. The campaign layer fills in instance/param/repro.
	Evidence *forensics.Evidence
}

// Options configures a Runner.
type Options struct {
	// Significance is the hypothesis-testing level; zero means the paper's
	// 1e-4.
	Significance float64
	// MaxRounds caps confirmation rounds after the first trial; zero means
	// 8, enough to confirm a deterministic failure at 1e-4.
	MaxRounds int
	// DisableGate runs confirmation rounds even when the first trial shows
	// no unsafe signal (the E11 ablation: spends trials to reduce false
	// negatives).
	DisableGate bool
	// Seq selects the confirmation-trial stopping rule; the zero value
	// is stats.SeqSPRT (sequential early stopping on), stats.SeqFixed
	// restores the fixed-budget ablation.
	Seq stats.SeqMode
	// SeqMargin is the budget-reallocation margin: an instance whose
	// round budget ran out with a p-value below SeqMargin×Significance
	// may draw extension rounds from Pool. Zero means 50; negative
	// disables extensions.
	SeqMargin float64
	// Pool is the campaign-wide (per worker process, in distributed
	// mode) trial budget pool: early stops deposit their unrun rounds,
	// significance-marginal instances withdraw extension rounds. Nil —
	// the fixed-mode configuration — disables reallocation entirely.
	Pool *stats.BudgetPool
	// BaseSeed is mixed into every per-run seed derivation, making whole
	// campaigns reproducible-by-flag; the zero value is simply the
	// default base. Heterogeneous-arm seeds depend only on (BaseSeed,
	// label, arm, round); homogeneous-arm and pooled-run seeds are
	// canonical — (BaseSeed, test, assignment digest, round), see
	// memo.SeedFor — so in-process and distributed executions of the
	// same instance run the same trials.
	BaseSeed int64
	// Strategy selects the agent's read-mapping strategy.
	Strategy agent.Strategy
	// Cache, when non-nil, memoizes canonically-seeded executions
	// (homogeneous arms and pooled heterogeneous runs): the harness is
	// seeded-deterministic, so equal cache keys mean byte-identical runs
	// and reuse changes no verdict. Nil re-runs everything.
	Cache *memo.Cache
	// CacheLabelSeeded additionally memoizes label-seeded heterogeneous
	// trials. Their keys are unique within one campaign (the label is in
	// the seed), so this buys nothing for a per-campaign in-memory cache
	// and stays off by default; set it when Cache reaches a persistent
	// tier (disk store, served campaigns), where the same keys recur on
	// resubmission of an unchanged campaign. Forensic capture runs are
	// exempt: evidence must come from a real execution.
	CacheLabelSeeded bool
	// Obs receives execution metrics and trace spans; nil disables
	// instrumentation at no cost.
	Obs *obs.Observer
	// Evidence, when non-nil, captures a bounded forensic record per
	// instance (heterogeneous log + read trace, arm identities, trial
	// counts) and charges it against the recorder's campaign-wide
	// budget. Nil disables capture entirely.
	Evidence *forensics.Recorder
	// Coverage, when non-nil, receives every execution's deduplicated
	// read set — pre-runs with callsites, phase-2 runs params-only, and
	// cache hits replayed from the memoized Reads — building the
	// param→tests index for coverage-driven selection. Nil disables the
	// sink at no cost.
	Coverage *coverage.Collector
}

// DefaultSeqMargin is the default budget-reallocation margin: a
// budget-exhausted instance draws extension rounds only when its final
// p-value is within this factor of the significance level — close
// enough that a few more rounds could plausibly decide it either way.
const DefaultSeqMargin = 50

// Runner executes instances against one application.
type Runner struct {
	app  *harness.App
	opts Options
	// executions counts every unit-test run across the runner's lifetime.
	executions atomic.Int64
}

// New returns a runner for app.
func New(app *harness.App, opts Options) *Runner {
	if opts.Significance <= 0 {
		opts.Significance = stats.DefaultSignificance
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 8
	}
	if opts.SeqMargin == 0 {
		opts.SeqMargin = DefaultSeqMargin
	}
	return &Runner{app: app, opts: opts}
}

// Executions reports the total unit-test runs performed so far.
func (r *Runner) Executions() int64 { return r.executions.Load() }

// seedFor derives a deterministic per-run seed for label-addressed runs
// (heterogeneous arms, pre-runs, dependency probes) so nondeterministic
// tests really vary across trials but campaigns stay reproducible. The
// base seed is mixed in first, so -seed reshuffles every trial at once.
// Homogeneous arms and pooled runs do NOT use this derivation: their
// seeds are canonical over the assignment content (memo.SeedFor), since
// Definition 3.1's baseline must not vary by which instance label asked
// for it.
func seedFor(base int64, label string, arm string, round int) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write([]byte(arm))
	h.Write([]byte{byte(round), byte(round >> 8)})
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// execute performs one real unit-test run under an explicit seed.
func (r *Runner) execute(test *harness.UnitTest, assign map[agent.Key]string, seed int64, arm string) harness.Outcome {
	return r.executeSpec(test, assign, seed, arm, harness.CaptureSpec{})
}

// executeSpec is execute with bounded evidence capture; the zero spec
// captures nothing. Capture never changes the execution: same seed, same
// assignment, same outcome.
func (r *Runner) executeSpec(test *harness.UnitTest, assign map[agent.Key]string, seed int64, arm string, spec harness.CaptureSpec) harness.Outcome {
	r.executions.Add(1)
	out := harness.RunOnceCaptured(r.app, test, agent.Options{
		Strategy: r.opts.Strategy,
		Assign:   assign,
		Coverage: r.opts.Coverage != nil,
	}, seed, r.opts.Obs, spec)
	r.opts.Obs.RecordExecution(r.app.Name, arm, out.Failed)
	r.opts.Coverage.Observe(test.Name, out.ReadParams)
	return out
}

// runOnce executes the unit test under one assignment with a
// label-derived seed, never consulting the cache. Callers that need the
// full outcome — pre-run reports, dependency probes reading Usage —
// must land here: memo.Result carries only the verdict fields, so a
// cached replay could not serve them.
func (r *Runner) runOnce(test *harness.UnitTest, assign map[agent.Key]string, label, arm string, round int) harness.Outcome {
	return r.execute(test, assign, seedFor(r.opts.BaseSeed, label, arm, round), arm)
}

// runLabelSeeded is runOnce for callers that consume only the verdict
// fields (failed, timed out, message): with CacheLabelSeeded set it
// routes the execution through the memo cache under its label-derived
// seed. Label-seeded keys never repeat within one campaign — the label
// makes each unique — so this changes nothing for an in-memory cache;
// against a persistent tier the identical keys recur when an unchanged
// campaign is resubmitted, and replay is sound for exactly the reason
// canonical reuse is: the harness is seeded-deterministic, so an equal
// (app, test, assignment, seed) key means a byte-identical run.
func (r *Runner) runLabelSeeded(parent obs.SpanID, test *harness.UnitTest, assign map[agent.Key]string, label, arm string, round int) (out harness.Outcome, reused bool) {
	seed := seedFor(r.opts.BaseSeed, label, arm, round)
	if !r.opts.CacheLabelSeeded || r.opts.Cache == nil {
		return r.execute(test, assign, seed, arm), false
	}
	key := memo.Key{App: r.app.Name, Test: test.Name, Assign: memo.HashAssignment(assign), Seed: seed}
	res, reused := r.opts.Cache.Do(key, func() memo.Result {
		out = r.execute(test, assign, seed, arm)
		return memo.Result{Failed: out.Failed, TimedOut: out.TimedOut, Msg: out.Msg, Reads: out.ReadParams}
	})
	if reused {
		out = harness.Outcome{Failed: res.Failed, TimedOut: res.TimedOut, Msg: res.Msg}
		// The hit skipped the agent; replay the memoized read set so the
		// coverage index stays complete on warm runs.
		r.opts.Coverage.Observe(test.Name, res.Reads)
		s := r.opts.Obs.StartSpan("cache-hit", parent,
			obs.String("app", r.app.Name),
			obs.String("test", test.Name),
			obs.String("arm", arm),
			obs.String("digest", key.Assign),
			obs.Int("seed", key.Seed))
		s.End()
	}
	return out, reused
}

// runCanonical executes the unit test under a canonically-seeded
// assignment (homogeneous arms and pooled heterogeneous runs): the seed
// derives from the sorted assignment content rather than the instance
// label, so every instance needing this exact (test, assignment, round)
// baseline performs the byte-identical trial — which is what makes
// memoized reuse sound. reused reports that a cached or coalesced
// result was returned instead of executing; key identifies the
// (original) execution either way. A reused result emits a cache-hit
// span under parent carrying the original execution's digest, so traced
// campaigns account saved executions in the tree, not just in counters.
func (r *Runner) runCanonical(parent obs.SpanID, test *harness.UnitTest, assign map[agent.Key]string, arm string, round int) (out harness.Outcome, reused bool, key memo.Key) {
	hash := memo.HashAssignment(assign)
	seed := memo.SeedFor(r.opts.BaseSeed, test.Name, hash, round)
	key = memo.Key{App: r.app.Name, Test: test.Name, Assign: hash, Seed: seed}
	res, reused := r.opts.Cache.Do(key, func() memo.Result {
		out = r.execute(test, assign, seed, arm)
		return memo.Result{Failed: out.Failed, TimedOut: out.TimedOut, Msg: out.Msg, Reads: out.ReadParams}
	})
	if reused {
		out = harness.Outcome{Failed: res.Failed, TimedOut: res.TimedOut, Msg: res.Msg}
		r.opts.Coverage.Observe(test.Name, res.Reads)
		s := r.opts.Obs.StartSpan("cache-hit", parent,
			obs.String("app", r.app.Name),
			obs.String("test", test.Name),
			obs.String("arm", arm),
			obs.String("digest", key.Assign),
			obs.Int("seed", key.Seed))
		s.End()
	}
	return out, reused, key
}

// PreRun executes every unit test once with no assignments, collecting the
// §4 pre-run reports (node types started, parameter usage, uncertainty).
func (r *Runner) PreRun(test *harness.UnitTest) testgen.PreRun {
	pre, _ := r.PreRunTimed(test)
	return pre
}

// PreRunTimed is PreRun plus the wall clock the execution consumed — the
// scheduler's cold-profile duration signal: a test's pre-run time is the
// per-execution cost its phase-2 instances will pay again and again.
func (r *Runner) PreRunTimed(test *harness.UnitTest) (testgen.PreRun, time.Duration) {
	start := time.Now()
	r.executions.Add(1)
	out := harness.RunOnceObserved(r.app, test, agent.Options{
		Strategy: r.opts.Strategy,
		// Pre-runs are the one stack-walk-enabled execution per test:
		// cheap (once per campaign) and the index's callsite source.
		Coverage:      r.opts.Coverage != nil,
		CoverageSites: r.opts.Coverage != nil,
	}, seedFor(r.opts.BaseSeed, test.Name, "prerun", 0), r.opts.Obs)
	r.opts.Obs.RecordExecution(r.app.Name, "prerun", out.Failed)
	if r.opts.Coverage != nil {
		r.opts.Coverage.ObserveTest(test.Name)
		r.opts.Coverage.Observe(test.Name, out.ReadParams)
		r.opts.Coverage.ObserveSites(test.Name, out.ReadSites)
	}
	return testgen.PreRun{Test: test.Name, Report: out.Report}, time.Since(start)
}

// RunAssignment applies Definition 3.1 to one assignment set as a trace
// root; see RunAssignmentIn.
func (r *Runner) RunAssignment(test *harness.UnitTest, asn testgen.Assignment, label string) Result {
	return r.RunAssignmentIn(obs.NoSpan, test, asn, label)
}

// RunAssignmentIn applies Definition 3.1 to one assignment set: first trial
// of the heterogeneous arm and each homogeneous arm; on an unsafe signal
// (or with gating disabled) it keeps running paired trials until Fisher's
// exact test confirms the heterogeneous failure at the significance level,
// or the round budget is exhausted. The instance span nests under parent.
func (r *Runner) RunAssignmentIn(parent obs.SpanID, test *harness.UnitTest, asn testgen.Assignment, label string) (res Result) {
	res = Result{PValue: 1}
	span := r.opts.Obs.StartSpan("instance", parent,
		obs.String("app", r.app.Name),
		obs.String("test", test.Name),
		obs.String("instance", label),
		obs.Int("seed", seedFor(r.opts.BaseSeed, label, "hetero", 0)))
	rec := r.opts.Evidence
	var ev *forensics.Evidence
	var arms []forensics.Arm
	var heteroFail, heteroPass, homoFail, homoPass int64
	defer func() {
		span.SetAttr(
			obs.String("verdict", res.Verdict.String()),
			obs.Bool("first_trial_signal", res.FirstTrialSignal),
			obs.Float("p_value", res.PValue),
			obs.Int("executions", res.Executions),
			obs.Int("rounds", int64(res.Rounds)))
		span.End()
		r.opts.Obs.RecordVerdict(r.app.Name, res.Verdict.String(), res.FirstTrialSignal)
		r.opts.Obs.Observe(obs.MConfirmRounds, float64(res.Rounds),
			"app", r.app.Name, "verdict", res.Verdict.String())
		if ev != nil {
			ev.Arms = arms
			ev.HeteroFail, ev.HeteroPass = heteroFail, heteroPass
			ev.HomoFail, ev.HomoPass = homoFail, homoPass
			res.Evidence = rec.Admit(ev)
		}
	}()

	runRound := func(round int, heteroFail, heteroPass, homoFail, homoPass *int64, anyHomoFailed *bool) {
		res.Trials += int64(1 + len(asn.Homo))
		rs := r.opts.Obs.StartSpan("round", span.ID(),
			obs.String("app", r.app.Name),
			obs.String("test", test.Name),
			obs.Int("round", int64(round)))
		roundHomoFailBase := *homoFail
		var het harness.Outcome
		var hetReused bool
		if rec.Enabled() && (ev == nil || !ev.Failed) {
			// Capture this heterogeneous trial: round 0 always, later
			// rounds until one fails — the failing execution is the one
			// worth explaining, and once held it is never re-captured.
			seed := seedFor(r.opts.BaseSeed, label, "hetero", round)
			het = r.executeSpec(test, asn.Hetero, seed, "hetero", rec.Spec())
			if r.opts.CacheLabelSeeded {
				// Capture must execute for real, but the outcome is
				// still the deterministic function of this key — seed
				// the persistent tier so a resubmit without capture
				// (or a later instance of the same trial) replays it.
				r.opts.Cache.Record(
					memo.Key{App: r.app.Name, Test: test.Name, Assign: memo.HashAssignment(asn.Hetero), Seed: seed},
					memo.Result{Failed: het.Failed, TimedOut: het.TimedOut, Msg: het.Msg, Reads: het.ReadParams})
			}
			if ev == nil || het.Failed {
				ev = forensics.FromOutcome(r.app.Name, test.Name, seed, round, het)
				ev.Assign = forensics.AssignKV(asn.Hetero)
			}
		} else {
			het, hetReused = r.runLabelSeeded(rs.ID(), test, asn.Hetero, label, "hetero", round)
		}
		if hetReused {
			res.Saved++
		} else {
			res.Executions++
		}
		if het.Failed {
			*heteroFail++
			if res.HeteroMsg == "" {
				res.HeteroMsg = het.Msg
			}
		} else {
			*heteroPass++
		}
		if rec.Enabled() && round == 0 {
			arms = append(arms, forensics.Arm{
				Name:   "hetero",
				Seed:   seedFor(r.opts.BaseSeed, label, "hetero", 0),
				Failed: het.Failed,
			})
		}
		for i, arm := range asn.Homo {
			out, reused, key := r.runCanonical(rs.ID(), test, arm, homoArmName(i), round)
			if reused {
				res.Saved++
			} else {
				res.Executions++
			}
			if rec.Enabled() && round == 0 {
				arms = append(arms, forensics.Arm{
					Name:   homoArmName(i),
					Seed:   key.Seed,
					Digest: key.Assign,
					Failed: out.Failed,
					Cached: reused,
				})
			}
			if out.Failed {
				*homoFail++
				if anyHomoFailed != nil {
					*anyHomoFailed = true
				}
			} else {
				*homoPass++
			}
		}
		rs.SetAttr(obs.Bool("hetero_failed", het.Failed),
			obs.Int("homo_failures", *homoFail-roundHomoFailBase))
		rs.End()
	}

	anyHomoFailedFirst := false
	runRound(0, &heteroFail, &heteroPass, &homoFail, &homoPass, &anyHomoFailedFirst)
	res.FirstTrialSignal = heteroFail > 0 && !anyHomoFailedFirst

	if !res.FirstTrialSignal && !r.opts.DisableGate {
		switch {
		case heteroFail == 0:
			res.Verdict = VerdictSafe
		default:
			res.Verdict = VerdictHomoInvalid
		}
		return res
	}

	// Confirmation rounds: paired trials until the stopping rule decides
	// the instance or the round budget runs out. The rule is stateless
	// over the cumulative 2×2 table, so replays and retries re-derive
	// identical decisions.
	seq := stats.NewSeqTest(r.opts.Seq, r.opts.Significance, r.opts.MaxRounds, len(asn.Homo))
	trialsPerRound := int64(1 + len(asn.Homo))
	for round := 1; round <= r.opts.MaxRounds; round++ {
		runRound(round, &heteroFail, &heteroPass, &homoFail, &homoPass, nil)
		res.Rounds = round

		var dec stats.Decision
		dec, res.PValue = seq.Look(round, heteroFail, heteroPass, homoFail, homoPass)
		r.opts.Obs.Observe(obs.MPValue, res.PValue, "app", r.app.Name)
		switch dec {
		case stats.SeqConvict:
			res.Verdict = VerdictUnsafe
			res.StopReason = StopConvicted
			r.depositSaved(r.opts.MaxRounds-round, trialsPerRound)
			return res
		case stats.SeqFutile:
			if heteroFail == 0 {
				res.Verdict = VerdictSafe
			} else {
				res.Verdict = VerdictFiltered
			}
			res.StopReason = StopFutility
			r.depositSaved(r.opts.MaxRounds-round, trialsPerRound)
			return res
		}
	}
	res.StopReason = StopBudget

	// Budget reallocation: an undecided instance whose p-value landed
	// within the margin of significance draws extension rounds from the
	// pool of rounds early stops did not run — up to one extra full
	// budget, one round per withdrawal so concurrent marginal instances
	// share the pool fairly. Extension looks apply the full-alpha Fisher
	// test (the spending schedule governs only the planned looks), and
	// their trials are seeded by (label, arm, round) exactly like the
	// planned rounds, so a granted continuation is reproducible.
	if heteroFail > 0 && r.opts.SeqMargin > 0 && res.PValue < r.opts.SeqMargin*r.opts.Significance {
		for ext := 1; ext <= r.opts.MaxRounds; ext++ {
			if !r.opts.Pool.TryWithdraw() {
				break
			}
			round := r.opts.MaxRounds + ext
			runRound(round, &heteroFail, &heteroPass, &homoFail, &homoPass, nil)
			res.Rounds = round
			res.PValue = stats.FisherOneSided(heteroFail, heteroPass, homoFail, homoPass)
			r.opts.Obs.Observe(obs.MPValue, res.PValue, "app", r.app.Name)
			r.opts.Obs.CounterAdd(obs.MTrialsSaved, trialsPerRound,
				"app", r.app.Name, "kind", "reallocated")
			if res.PValue < r.opts.Significance {
				res.Verdict = VerdictUnsafe
				res.StopReason = StopConvicted
				return res
			}
		}
	}
	if heteroFail == 0 {
		res.Verdict = VerdictSafe
		return res
	}
	res.Verdict = VerdictFiltered
	return res
}

// depositSaved credits rounds an early stop did not run to the campaign
// budget pool and counts the trials they would have cost. Nil-safe on
// the pool (fixed mode); the counter still records the saving, so the
// fixed-vs-sequential execution delta is observable either way.
func (r *Runner) depositSaved(rounds int, trialsPerRound int64) {
	if rounds <= 0 {
		return
	}
	r.opts.Pool.Deposit(rounds)
	r.opts.Obs.CounterAdd(obs.MTrialsSaved, int64(rounds)*trialsPerRound,
		"app", r.app.Name, "kind", "early-stop")
}

// RunPooled executes just the heterogeneous arm of a pooled assignment as
// a trace root; see RunPooledIn.
func (r *Runner) RunPooled(test *harness.UnitTest, asn testgen.Assignment, label string) (failed bool) {
	failed, _ = r.RunPooledIn(obs.NoSpan, test, asn, label)
	return failed
}

// RunPooledIn executes just the heterogeneous arm of a pooled assignment;
// the pool machinery only needs pass/fail to decide whether to split.
// The run is canonically seeded over the merged assignment (a pooled
// configuration is content, not an instance), so identical pools — e.g.
// a re-split after a retry — memoize; reused reports a cache hit. The
// pooled-run span nests under parent.
func (r *Runner) RunPooledIn(parent obs.SpanID, test *harness.UnitTest, asn testgen.Assignment, label string) (failed, reused bool) {
	span := r.opts.Obs.StartSpan("pooled-run", parent,
		obs.String("app", r.app.Name),
		obs.String("test", test.Name),
		obs.String("pool", label))
	out, reused, _ := r.runCanonical(span.ID(), test, asn.Hetero, "pool", 0)
	span.SetAttr(obs.Bool("failed", out.Failed), obs.Bool("cached", reused))
	span.End()
	result := "pass"
	if out.Failed {
		result = "fail"
	}
	r.opts.Obs.CounterAdd(obs.MPoolRuns, 1, "app", r.app.Name, "result", result)
	return out.Failed, reused
}

// homoArmName names homogeneous arm i deterministically and distinctly
// (homoA, homoB, homoC, ...), so per-arm seeds and trace attributes
// differ even beyond the usual two arms.
func homoArmName(i int) string {
	if i >= 0 && i < 26 {
		return "homo" + string(rune('A'+i))
	}
	return fmt.Sprintf("homo%d", i)
}
