// Package runner implements ZebraConf's TestRunner (paper §5): given a test
// instance, it runs the heterogeneous configuration and every corresponding
// homogeneous configuration, and reports a heterogeneous-unsafe parameter
// only when the difference survives hypothesis testing at the paper's
// significance level — filtering the false positives nondeterministic unit
// tests would otherwise produce.
package runner

import (
	"hash/fnv"
	"sync/atomic"

	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/stats"
	"zebraconf/internal/core/testgen"
)

// Verdict classifies one instance after running.
type Verdict int

const (
	// VerdictSafe: the heterogeneous run passed on the first trial.
	VerdictSafe Verdict = iota
	// VerdictUnsafe: the heterogeneous failure was confirmed significant.
	VerdictUnsafe
	// VerdictFiltered: the first trial looked unsafe but hypothesis
	// testing could not confirm it — attributed to nondeterminism.
	VerdictFiltered
	// VerdictHomoInvalid: a homogeneous arm failed on the first trial, so
	// Definition 3.1's precondition does not hold for this instance.
	VerdictHomoInvalid
)

// String names the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictUnsafe:
		return "unsafe"
	case VerdictFiltered:
		return "filtered"
	case VerdictHomoInvalid:
		return "homo-invalid"
	default:
		return "unknown"
	}
}

// Result is the outcome of running one instance (or one pooled run treated
// as an instance).
type Result struct {
	Verdict Verdict
	// FirstTrialSignal reports whether trial one showed the unsafe pattern
	// (hetero failed, all homos passed) — the §7.2 "failed in the first
	// trial" statistic.
	FirstTrialSignal bool
	// PValue is the final Fisher one-sided p-value (1 when no confirmation
	// ran).
	PValue float64
	// Executions counts unit-test runs this instance consumed.
	Executions int64
	// HeteroMsg is a failure message from a heterogeneous run, for reports.
	HeteroMsg string
}

// Options configures a Runner.
type Options struct {
	// Significance is the hypothesis-testing level; zero means the paper's
	// 1e-4.
	Significance float64
	// MaxRounds caps confirmation rounds after the first trial; zero means
	// 8, enough to confirm a deterministic failure at 1e-4.
	MaxRounds int
	// DisableGate runs confirmation rounds even when the first trial shows
	// no unsafe signal (the E11 ablation: spends trials to reduce false
	// negatives).
	DisableGate bool
	// Strategy selects the agent's read-mapping strategy.
	Strategy agent.Strategy
}

// Runner executes instances against one application.
type Runner struct {
	app  *harness.App
	opts Options
	// executions counts every unit-test run across the runner's lifetime.
	executions atomic.Int64
}

// New returns a runner for app.
func New(app *harness.App, opts Options) *Runner {
	if opts.Significance <= 0 {
		opts.Significance = stats.DefaultSignificance
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 8
	}
	return &Runner{app: app, opts: opts}
}

// Executions reports the total unit-test runs performed so far.
func (r *Runner) Executions() int64 { return r.executions.Load() }

// seedFor derives a deterministic per-run seed so nondeterministic tests
// really vary across trials but campaigns stay reproducible.
func seedFor(label string, arm string, round int) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write([]byte(arm))
	h.Write([]byte{byte(round), byte(round >> 8)})
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// runOnce executes the unit test under one assignment.
func (r *Runner) runOnce(test *harness.UnitTest, assign map[agent.Key]string, label, arm string, round int) harness.Outcome {
	r.executions.Add(1)
	return harness.RunOnce(r.app, test, agent.Options{
		Strategy: r.opts.Strategy,
		Assign:   assign,
	}, seedFor(label, arm, round))
}

// PreRun executes every unit test once with no assignments, collecting the
// §4 pre-run reports (node types started, parameter usage, uncertainty).
func (r *Runner) PreRun(test *harness.UnitTest) testgen.PreRun {
	r.executions.Add(1)
	out := harness.RunOnce(r.app, test, agent.Options{Strategy: r.opts.Strategy}, seedFor(test.Name, "prerun", 0))
	return testgen.PreRun{Test: test.Name, Report: out.Report}
}

// RunAssignment applies Definition 3.1 to one assignment set: first trial of
// the heterogeneous arm and each homogeneous arm; on an unsafe signal (or
// with gating disabled) it keeps running paired trials until Fisher's exact
// test confirms the heterogeneous failure at the significance level, or the
// round budget is exhausted.
func (r *Runner) RunAssignment(test *harness.UnitTest, asn testgen.Assignment, label string) Result {
	res := Result{PValue: 1}

	het := r.runOnce(test, asn.Hetero, label, "hetero", 0)
	heteroFail, heteroPass := int64(0), int64(0)
	if het.Failed {
		heteroFail++
		res.HeteroMsg = het.Msg
	} else {
		heteroPass++
	}
	homoFail, homoPass := int64(0), int64(0)
	anyHomoFailedFirst := false
	for i, arm := range asn.Homo {
		out := r.runOnce(test, arm, label, homoArmName(i), 0)
		if out.Failed {
			homoFail++
			anyHomoFailedFirst = true
		} else {
			homoPass++
		}
	}
	res.Executions = 1 + int64(len(asn.Homo))
	res.FirstTrialSignal = het.Failed && !anyHomoFailedFirst

	if !res.FirstTrialSignal && !r.opts.DisableGate {
		switch {
		case !het.Failed:
			res.Verdict = VerdictSafe
		default:
			res.Verdict = VerdictHomoInvalid
		}
		return res
	}

	// Confirmation rounds: paired trials until significance or budget.
	for round := 1; round <= r.opts.MaxRounds; round++ {
		het := r.runOnce(test, asn.Hetero, label, "hetero", round)
		if het.Failed {
			heteroFail++
			if res.HeteroMsg == "" {
				res.HeteroMsg = het.Msg
			}
		} else {
			heteroPass++
		}
		for i, arm := range asn.Homo {
			out := r.runOnce(test, arm, label, homoArmName(i), round)
			if out.Failed {
				homoFail++
			} else {
				homoPass++
			}
		}
		res.Executions += 1 + int64(len(asn.Homo))

		res.PValue = stats.FisherOneSided(heteroFail, heteroPass, homoFail, homoPass)
		if res.PValue < r.opts.Significance {
			res.Verdict = VerdictUnsafe
			return res
		}
	}
	if heteroFail == 0 {
		res.Verdict = VerdictSafe
		return res
	}
	res.Verdict = VerdictFiltered
	return res
}

// RunPooled executes just the heterogeneous arm of a pooled assignment; the
// pool machinery only needs pass/fail to decide whether to split.
func (r *Runner) RunPooled(test *harness.UnitTest, asn testgen.Assignment, label string) (failed bool) {
	out := r.runOnce(test, asn.Hetero, label, "pool", 0)
	return out.Failed
}

func homoArmName(i int) string {
	if i == 0 {
		return "homoA"
	}
	return "homoB"
}
