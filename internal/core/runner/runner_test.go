package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/core/stats"
	"zebraconf/internal/core/testgen"
	"zebraconf/internal/obs"
)

// syntheticApp builds a tiny application with one node type reading one
// parameter; its single test fails exactly when the node's value differs
// from the unit test's ("deterministic" mode), fails randomly ("flaky"),
// or fails under a specific homogeneous value ("homobad").
func syntheticApp(mode string) *harness.App {
	schema := func() *confkit.Registry {
		r := confkit.NewRegistry()
		r.Register(confkit.Param{Name: "sync.word", Kind: confkit.Enum,
			Default: "alpha", Candidates: []string{"alpha", "beta"}})
		return r
	}
	return &harness.App{
		Name:      "synthetic-" + mode,
		Schema:    schema,
		NodeTypes: []string{"Node"},
		Tests: []harness.UnitTest{{
			Name: "TestSync",
			Run: func(t *harness.T) {
				testConf := t.Env.RT.NewConf()
				t.Env.RT.StartInit("Node")
				nodeConf := testConf.RefToClone()
				t.Env.RT.StopInit()

				nodeVal := nodeConf.Get("sync.word")
				testVal := testConf.Get("sync.word")
				switch mode {
				case "deterministic":
					if nodeVal != testVal {
						t.Fatalf("node speaks %q, client speaks %q", nodeVal, testVal)
					}
				case "flaky":
					if t.Env.Float64() < 0.4 {
						t.Fatalf("simulated race")
					}
				case "homobad":
					// Fails whenever ANY participant uses "beta" — so the
					// homogeneous beta arm fails too and the instance is
					// unattributable under Definition 3.1.
					if nodeVal == "beta" || testVal == "beta" {
						t.Fatalf("beta mode is broken everywhere")
					}
				}
			},
		}},
	}
}

// instanceFor builds the canonical flip instance for the synthetic app.
func instanceFor(app *harness.App, r *Runner) (testgen.Assignment, *harness.UnitTest) {
	test := &app.Tests[0]
	pre := r.PreRun(test)
	gen := testgen.New(app.Schema())
	insts := gen.Instances(pre, testgen.InstancesOptions{})
	if len(insts) == 0 {
		panic("no instances generated for the synthetic app")
	}
	return gen.AssignFor(insts[0], &pre.Report), test
}

func TestDeterministicUnsafeConfirmed(t *testing.T) {
	t.Parallel()
	app := syntheticApp("deterministic")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "det")
	if res.Verdict != VerdictUnsafe {
		t.Fatalf("verdict = %v, want unsafe (msg %q)", res.Verdict, res.HeteroMsg)
	}
	if !res.FirstTrialSignal {
		t.Fatal("no first-trial signal for a deterministic bug")
	}
	// Under the default SPRT the conviction guarantee is the likelihood
	// boundary, reached by round 3 on an always-failing instance.
	if res.StopReason != StopConvicted {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, StopConvicted)
	}
	if res.Rounds > 3 {
		t.Fatalf("deterministic conviction took %d rounds, want <= 3", res.Rounds)
	}
	if res.HeteroMsg == "" {
		t.Fatal("no failure message recorded")
	}
}

func TestDeterministicUnsafeConfirmedFixed(t *testing.T) {
	t.Parallel()
	app := syntheticApp("deterministic")
	r := New(app, Options{Seq: stats.SeqFixed})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "det-fixed")
	if res.Verdict != VerdictUnsafe {
		t.Fatalf("verdict = %v, want unsafe (msg %q)", res.Verdict, res.HeteroMsg)
	}
	// Fixed-N convicts on the raw Fisher test, so the reported p-value
	// itself clears the significance bar.
	if res.PValue >= 1e-4 {
		t.Fatalf("p-value %g not significant", res.PValue)
	}
}

func TestSafeParameterPassesCheaply(t *testing.T) {
	t.Parallel()
	app := syntheticApp("none")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "safe")
	if res.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v, want safe", res.Verdict)
	}
	// With gating, a passing first trial costs exactly 1 + len(homo) runs.
	if want := int64(1 + len(asn.Homo)); res.Executions != want {
		t.Fatalf("executions = %d, want %d (gate saves trials)", res.Executions, want)
	}
}

func TestFlakyTestFiltered(t *testing.T) {
	t.Parallel()
	app := syntheticApp("flaky")
	asn, test := instanceFor(app, New(app, Options{}))

	// Scan base seeds until one hits the first-trial signal (hetero
	// fails, homos pass); hypothesis testing must then refuse to
	// confirm. Base seeds, not labels: homogeneous-arm seeds are
	// canonical over the assignment, so within one base seed every label
	// shares the same homo outcomes.
	for i := 0; i < 64; i++ {
		r := New(app, Options{BaseSeed: int64(i)})
		res := r.RunAssignment(test, asn, "flaky")
		if !res.FirstTrialSignal {
			continue
		}
		if res.Verdict == VerdictUnsafe {
			t.Fatalf("flaky failure confirmed as unsafe (p=%g)", res.PValue)
		}
		if res.Verdict != VerdictFiltered && res.Verdict != VerdictSafe {
			t.Fatalf("verdict = %v", res.Verdict)
		}
		return
	}
	t.Skip("no first-trial signal in 64 base seeds; flake probability too low for this seed set")
}

func TestHomoInvalidDetected(t *testing.T) {
	t.Parallel()
	app := syntheticApp("homobad")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "homobad")
	if res.Verdict != VerdictHomoInvalid {
		t.Fatalf("verdict = %v, want homo-invalid", res.Verdict)
	}
}

func TestGateDisabledStillConverges(t *testing.T) {
	t.Parallel()
	app := syntheticApp("none")
	// Fixed mode: sequential futility would stop an all-passing instance
	// early, and this test measures the gate ablation's full cost.
	r := New(app, Options{DisableGate: true, MaxRounds: 3, Seq: stats.SeqFixed})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "nogate")
	if res.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v, want safe", res.Verdict)
	}
	// Without gating every round runs: (1 + maxRounds) * (1 + homo arms).
	want := int64((1 + 3) * (1 + len(asn.Homo)))
	if res.Executions != want {
		t.Fatalf("executions = %d, want %d without gating", res.Executions, want)
	}
}

func TestGateDisabledFutilityStopsEarly(t *testing.T) {
	t.Parallel()
	app := syntheticApp("none")
	r := New(app, Options{DisableGate: true, MaxRounds: 3})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "nogate-sprt")
	if res.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v, want safe", res.Verdict)
	}
	if res.StopReason != StopFutility {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, StopFutility)
	}
	// SPRT futility fires before the round budget is exhausted, so an
	// all-passing instance costs strictly less than the fixed budget.
	budget := int64((1 + 3) * (1 + len(asn.Homo)))
	if res.Executions >= budget {
		t.Fatalf("executions = %d, want < %d under sequential futility", res.Executions, budget)
	}
	if res.Trials != res.Executions {
		t.Fatalf("trials = %d, executions = %d; with no cache they must match", res.Trials, res.Executions)
	}
}

func TestRunPooledReportsHeteroFailureOnly(t *testing.T) {
	t.Parallel()
	app := syntheticApp("deterministic")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)
	if !r.RunPooled(test, asn, "pool") {
		t.Fatal("pooled heterogeneous run passed on a deterministic bug")
	}
	before := r.Executions()
	// A pooled run costs exactly one execution.
	r.RunPooled(test, asn, "pool2")
	if r.Executions() != before+1 {
		t.Fatalf("pooled run cost %d executions", r.Executions()-before)
	}
}

func TestSeedsDifferAcrossArmsAndRounds(t *testing.T) {
	t.Parallel()
	seen := map[int64]bool{}
	for _, arm := range []string{"hetero", "prerun", "pool"} {
		for round := 0; round < 4; round++ {
			s := seedFor(0, "label", arm, round)
			if seen[s] {
				t.Fatalf("seed collision at %s/%d", arm, round)
			}
			seen[s] = true
		}
	}
	if seedFor(0, "a", "hetero", 0) == seedFor(0, "b", "hetero", 0) {
		t.Fatal("labels do not differentiate seeds")
	}
	if seedFor(1, "a", "hetero", 0) == seedFor(2, "a", "hetero", 0) {
		t.Fatal("base seeds do not differentiate seeds")
	}
}

// TestCanonicalHomoSeedsIgnoreLabel pins the PR's correctness fix:
// Definition 3.1's homogeneous baseline is a property of (test,
// assignment, round), so two instances that need the same baseline must
// run the byte-identical trial regardless of their labels. The flaky
// synthetic test makes any seed difference visible as an outcome
// difference with probability 0.4 per run.
func TestCanonicalHomoSeedsIgnoreLabel(t *testing.T) {
	t.Parallel()
	app := syntheticApp("flaky")
	r := New(app, Options{DisableGate: true, MaxRounds: 4})
	asn, test := instanceFor(app, r)

	// Two passes over the same assignment stand in for two instances
	// with different labels: nothing label-dependent may enter the
	// canonical derivation, so the outcome sequences must be identical.
	outcomes := func() []string {
		var seq []string
		for round := 0; round <= 4; round++ {
			for i, arm := range asn.Homo {
				out, _, _ := r.runCanonical(obs.NoSpan, test, arm, homoArmName(i), round)
				seq = append(seq, fmt.Sprintf("%s/%d:%v", homoArmName(i), round, out.Failed))
			}
		}
		return seq
	}
	a := outcomes()
	b := outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("canonical homo outcome diverged: %s vs %s", a[i], b[i])
		}
	}
}

// TestCacheSavesHomoArms: with a memo cache installed, a second instance
// over the same assignment reuses every homogeneous arm and re-executes
// only its heterogeneous arm.
func TestCacheSavesHomoArms(t *testing.T) {
	t.Parallel()
	app := syntheticApp("none")
	cache := memo.NewCache(app.Name, nil, nil)
	r := New(app, Options{Cache: cache})
	asn, test := instanceFor(app, r)

	first := r.RunAssignment(test, asn, "inst-a")
	if first.Saved != 0 {
		t.Fatalf("first instance saved %d runs; nothing to reuse yet", first.Saved)
	}
	before := r.Executions()
	second := r.RunAssignment(test, asn, "inst-b")
	if want := int64(len(asn.Homo)); second.Saved != want {
		t.Fatalf("second instance saved %d runs, want %d (all homo arms)", second.Saved, want)
	}
	if got := r.Executions() - before; got != 1 {
		t.Fatalf("second instance executed %d runs, want 1 (hetero only)", got)
	}
	if second.Verdict != first.Verdict {
		t.Fatalf("cached verdict %v != uncached %v", second.Verdict, first.Verdict)
	}
	st := cache.Stats()
	if st.Hits != int64(len(asn.Homo)) || st.Misses != int64(len(asn.Homo)) {
		t.Fatalf("cache stats = %+v, want %d hits and %d misses", st, len(asn.Homo), len(asn.Homo))
	}
}

// TestRoundSpansRecordPerRoundHomoFailures pins the trace-attribute fix:
// each round span's homo_failures is that round's delta, not the
// cumulative count across rounds. In homobad mode the all-beta
// homogeneous arm fails every round, so a cumulative count would read
// 1, 2, 3, ... while the correct per-round delta is always 1. The
// hetero arm carries a beta value too, so hetero_failed must be present
// and true in every round — the symmetry check.
func TestRoundSpansRecordPerRoundHomoFailures(t *testing.T) {
	t.Parallel()
	app := syntheticApp("homobad")
	var buf bytes.Buffer
	o := obs.New()
	o.Tracer = obs.NewTracer(&buf)
	r := New(app, Options{DisableGate: true, MaxRounds: 3, Obs: o})
	asn, test := instanceFor(app, r)
	r.RunAssignment(test, asn, "rounds")

	rounds := 0
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec.Name != "round" {
			continue
		}
		rounds++
		hf, ok := rec.Attrs["hetero_failed"].(bool)
		if !ok {
			t.Fatalf("round span missing hetero_failed bool: %v", rec.Attrs)
		}
		if !hf {
			t.Fatalf("hetero arm passed in homobad mode (it carries a beta value): %v", rec.Attrs)
		}
		failures, ok := rec.Attrs["homo_failures"].(float64)
		if !ok {
			t.Fatalf("round span missing homo_failures: %v", rec.Attrs)
		}
		if failures != 1 {
			t.Fatalf("round span homo_failures = %v, want per-round delta 1 (cumulative count regression)", failures)
		}
	}
	if want := 1 + 3; rounds != want {
		t.Fatalf("saw %d round spans, want %d", rounds, want)
	}
}

func TestPreRunCollectsUsage(t *testing.T) {
	t.Parallel()
	app := syntheticApp("none")
	r := New(app, Options{})
	pre := r.PreRun(&app.Tests[0])
	if pre.Report.NodesStarted["Node"] != 1 {
		t.Fatalf("pre-run nodes: %v", pre.Report.NodesStarted)
	}
	if !pre.Report.Usage["Node"]["sync.word"] {
		t.Fatalf("pre-run usage: %v", pre.Report.Usage)
	}
	if !pre.Report.Usage[agent.UnitTestEntity]["sync.word"] {
		t.Fatal("unit-test usage missing")
	}
}

func TestHomoArmNamesAreDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 30; i++ {
		name := homoArmName(i)
		if seen[name] {
			t.Fatalf("homoArmName(%d) = %q repeats an earlier arm name", i, name)
		}
		seen[name] = true
	}
	if homoArmName(0) != "homoA" || homoArmName(1) != "homoB" || homoArmName(2) != "homoC" {
		t.Fatalf("unexpected arm names: %q %q %q", homoArmName(0), homoArmName(1), homoArmName(2))
	}
}

func TestBudgetReallocationConvictsMarginalInstance(t *testing.T) {
	t.Parallel()
	app := syntheticApp("deterministic")
	// A round budget of 3 is too small for Fisher significance on a
	// deterministic signal (p = 1/C(12,4) ≈ 2e-3 > 1e-4), but well within
	// the default reallocation margin of 50x. A funded pool must grant
	// extension rounds until the instance convicts — at 5 total rounds,
	// where p = 1/C(18,6) ≈ 5.4e-5.
	pool := stats.NewBudgetPool()
	pool.Deposit(8)
	r := New(app, Options{MaxRounds: 3, Seq: stats.SeqFixed, Pool: pool})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "marginal")
	if res.Verdict != VerdictUnsafe {
		t.Fatalf("verdict = %v, want unsafe via extension rounds", res.Verdict)
	}
	if res.StopReason != StopConvicted {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, StopConvicted)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5 (3 budgeted + 2 extension)", res.Rounds)
	}
	if res.PValue >= 1e-4 {
		t.Fatalf("extension conviction p = %g, not significant", res.PValue)
	}
	if _, wd := pool.Stats(); wd != 2 {
		t.Fatalf("pool withdrawals = %d, want 2", wd)
	}
}

func TestBudgetReallocationDeniedWithoutFunds(t *testing.T) {
	t.Parallel()
	app := syntheticApp("deterministic")
	// Same marginal setup, empty pool: the instance must exhaust its own
	// budget and stay unconvicted — reallocation never invents trials.
	r := New(app, Options{MaxRounds: 3, Seq: stats.SeqFixed, Pool: stats.NewBudgetPool()})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "marginal-broke")
	if res.Verdict == VerdictUnsafe {
		t.Fatal("instance convicted without budget for the needed rounds")
	}
	if res.StopReason != StopBudget {
		t.Fatalf("stop reason = %q, want %q", res.StopReason, StopBudget)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (no extensions granted)", res.Rounds)
	}
}

func TestEarlyStopsDepositIntoPool(t *testing.T) {
	t.Parallel()
	app := syntheticApp("deterministic")
	pool := stats.NewBudgetPool()
	r := New(app, Options{Pool: pool})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "depositor")
	if res.Verdict != VerdictUnsafe || res.StopReason != StopConvicted {
		t.Fatalf("verdict = %v stop = %q, want early conviction", res.Verdict, res.StopReason)
	}
	dep, _ := pool.Stats()
	if want := int64(8 - res.Rounds); dep != want {
		t.Fatalf("pool deposits = %d, want %d (MaxRounds - rounds run)", dep, want)
	}
}
