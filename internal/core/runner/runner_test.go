package runner

import (
	"testing"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/testgen"
)

// syntheticApp builds a tiny application with one node type reading one
// parameter; its single test fails exactly when the node's value differs
// from the unit test's ("deterministic" mode), fails randomly ("flaky"),
// or fails under a specific homogeneous value ("homobad").
func syntheticApp(mode string) *harness.App {
	schema := func() *confkit.Registry {
		r := confkit.NewRegistry()
		r.Register(confkit.Param{Name: "sync.word", Kind: confkit.Enum,
			Default: "alpha", Candidates: []string{"alpha", "beta"}})
		return r
	}
	return &harness.App{
		Name:      "synthetic-" + mode,
		Schema:    schema,
		NodeTypes: []string{"Node"},
		Tests: []harness.UnitTest{{
			Name: "TestSync",
			Run: func(t *harness.T) {
				testConf := t.Env.RT.NewConf()
				t.Env.RT.StartInit("Node")
				nodeConf := testConf.RefToClone()
				t.Env.RT.StopInit()

				nodeVal := nodeConf.Get("sync.word")
				testVal := testConf.Get("sync.word")
				switch mode {
				case "deterministic":
					if nodeVal != testVal {
						t.Fatalf("node speaks %q, client speaks %q", nodeVal, testVal)
					}
				case "flaky":
					if t.Env.Float64() < 0.4 {
						t.Fatalf("simulated race")
					}
				case "homobad":
					// Fails whenever ANY participant uses "beta" — so the
					// homogeneous beta arm fails too and the instance is
					// unattributable under Definition 3.1.
					if nodeVal == "beta" || testVal == "beta" {
						t.Fatalf("beta mode is broken everywhere")
					}
				}
			},
		}},
	}
}

// instanceFor builds the canonical flip instance for the synthetic app.
func instanceFor(app *harness.App, r *Runner) (testgen.Assignment, *harness.UnitTest) {
	test := &app.Tests[0]
	pre := r.PreRun(test)
	gen := testgen.New(app.Schema())
	insts := gen.Instances(pre, testgen.InstancesOptions{})
	if len(insts) == 0 {
		panic("no instances generated for the synthetic app")
	}
	return gen.AssignFor(insts[0], &pre.Report), test
}

func TestDeterministicUnsafeConfirmed(t *testing.T) {
	t.Parallel()
	app := syntheticApp("deterministic")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "det")
	if res.Verdict != VerdictUnsafe {
		t.Fatalf("verdict = %v, want unsafe (msg %q)", res.Verdict, res.HeteroMsg)
	}
	if !res.FirstTrialSignal {
		t.Fatal("no first-trial signal for a deterministic bug")
	}
	if res.PValue >= 1e-4 {
		t.Fatalf("p-value %g not significant", res.PValue)
	}
	if res.HeteroMsg == "" {
		t.Fatal("no failure message recorded")
	}
}

func TestSafeParameterPassesCheaply(t *testing.T) {
	t.Parallel()
	app := syntheticApp("none")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "safe")
	if res.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v, want safe", res.Verdict)
	}
	// With gating, a passing first trial costs exactly 1 + len(homo) runs.
	if want := int64(1 + len(asn.Homo)); res.Executions != want {
		t.Fatalf("executions = %d, want %d (gate saves trials)", res.Executions, want)
	}
}

func TestFlakyTestFiltered(t *testing.T) {
	t.Parallel()
	app := syntheticApp("flaky")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)

	// Scan labels until one hits the first-trial signal (hetero fails,
	// homos pass); hypothesis testing must then refuse to confirm.
	for i := 0; i < 64; i++ {
		res := r.RunAssignment(test, asn, "flaky-"+string(rune('a'+i%26))+string(rune('0'+i/26)))
		if !res.FirstTrialSignal {
			continue
		}
		if res.Verdict == VerdictUnsafe {
			t.Fatalf("flaky failure confirmed as unsafe (p=%g)", res.PValue)
		}
		if res.Verdict != VerdictFiltered && res.Verdict != VerdictSafe {
			t.Fatalf("verdict = %v", res.Verdict)
		}
		return
	}
	t.Skip("no first-trial signal in 64 labels; flake probability too low for this seed set")
}

func TestHomoInvalidDetected(t *testing.T) {
	t.Parallel()
	app := syntheticApp("homobad")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "homobad")
	if res.Verdict != VerdictHomoInvalid {
		t.Fatalf("verdict = %v, want homo-invalid", res.Verdict)
	}
}

func TestGateDisabledStillConverges(t *testing.T) {
	t.Parallel()
	app := syntheticApp("none")
	r := New(app, Options{DisableGate: true, MaxRounds: 3})
	asn, test := instanceFor(app, r)
	res := r.RunAssignment(test, asn, "nogate")
	if res.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v, want safe", res.Verdict)
	}
	// Without gating every round runs: (1 + maxRounds) * (1 + homo arms).
	want := int64((1 + 3) * (1 + len(asn.Homo)))
	if res.Executions != want {
		t.Fatalf("executions = %d, want %d without gating", res.Executions, want)
	}
}

func TestRunPooledReportsHeteroFailureOnly(t *testing.T) {
	t.Parallel()
	app := syntheticApp("deterministic")
	r := New(app, Options{})
	asn, test := instanceFor(app, r)
	if !r.RunPooled(test, asn, "pool") {
		t.Fatal("pooled heterogeneous run passed on a deterministic bug")
	}
	before := r.Executions()
	// A pooled run costs exactly one execution.
	r.RunPooled(test, asn, "pool2")
	if r.Executions() != before+1 {
		t.Fatalf("pooled run cost %d executions", r.Executions()-before)
	}
}

func TestSeedsDifferAcrossArmsAndRounds(t *testing.T) {
	t.Parallel()
	seen := map[int64]bool{}
	for _, arm := range []string{"hetero", "homoA", "homoB"} {
		for round := 0; round < 4; round++ {
			s := seedFor(0, "label", arm, round)
			if seen[s] {
				t.Fatalf("seed collision at %s/%d", arm, round)
			}
			seen[s] = true
		}
	}
	if seedFor(0, "a", "hetero", 0) == seedFor(0, "b", "hetero", 0) {
		t.Fatal("labels do not differentiate seeds")
	}
	if seedFor(1, "a", "hetero", 0) == seedFor(2, "a", "hetero", 0) {
		t.Fatal("base seeds do not differentiate seeds")
	}
}

func TestPreRunCollectsUsage(t *testing.T) {
	t.Parallel()
	app := syntheticApp("none")
	r := New(app, Options{})
	pre := r.PreRun(&app.Tests[0])
	if pre.Report.NodesStarted["Node"] != 1 {
		t.Fatalf("pre-run nodes: %v", pre.Report.NodesStarted)
	}
	if !pre.Report.Usage["Node"]["sync.word"] {
		t.Fatalf("pre-run usage: %v", pre.Report.Usage)
	}
	if !pre.Report.Usage[agent.UnitTestEntity]["sync.word"] {
		t.Fatal("unit-test usage missing")
	}
}

func TestHomoArmNamesAreDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 30; i++ {
		name := homoArmName(i)
		if seen[name] {
			t.Fatalf("homoArmName(%d) = %q repeats an earlier arm name", i, name)
		}
		seen[name] = true
	}
	if homoArmName(0) != "homoA" || homoArmName(1) != "homoB" || homoArmName(2) != "homoC" {
		t.Fatalf("unexpected arm names: %q %q %q", homoArmName(0), homoArmName(1), homoArmName(2))
	}
}
