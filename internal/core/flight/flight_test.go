package flight

import (
	"fmt"
	"strings"
	"testing"

	"zebraconf/internal/core/ledger"
	"zebraconf/internal/obs"
)

// span builds one SpanRecord for hand-built trees.
func span(id, parent obs.SpanID, name string, start, dur int64, attrs map[string]any) obs.SpanRecord {
	return obs.SpanRecord{Span: id, Parent: parent, Name: name, StartUS: start, DurUS: dur, Attrs: attrs}
}

func TestCriticalPathInProcessTree(t *testing.T) {
	// campaign(0..100) -> phase instances(5..95) -> {testA(10..40),
	// testB(20..90)} -> testB -> pool(30..85). The chain must blame
	// testB then its pool, never the earlier-finishing testA.
	spans := []obs.SpanRecord{
		// JSONL order: children end (and are written) before parents.
		span(4, 3, "pool", 30, 55, map[string]any{"test": "TestB"}),
		span(3, 2, "test", 20, 70, map[string]any{"test": "TestB", "item": float64(7)}),
		span(5, 2, "test", 10, 30, map[string]any{"test": "TestA", "item": float64(3)}),
		span(2, 1, "phase", 5, 90, map[string]any{"phase": "instances"}),
		span(1, 0, "campaign", 0, 100, map[string]any{"app": "minihdfs"}),
	}
	a := Analyze(&Run{Spans: spans})
	if a.CriticalPathUS != 100 {
		t.Errorf("CriticalPathUS = %d, want 100", a.CriticalPathUS)
	}
	var names []string
	for _, s := range a.CriticalPath {
		names = append(names, s.Name)
	}
	want := []string{"campaign", "phase", "test", "pool"}
	if strings.Join(names, ">") != strings.Join(want, ">") {
		t.Fatalf("critical path = %v, want %v", names, want)
	}
	if a.CriticalPath[2].Test != "TestB" {
		t.Errorf("critical path blamed %q, want TestB", a.CriticalPath[2].Test)
	}
	if a.CriticalPath[2].Item != 7 {
		t.Errorf("critical path item = %d, want 7", a.CriticalPath[2].Item)
	}
	// Self time: campaign 100 - phase 90 = 10.
	if a.CriticalPath[0].SelfUS != 10 {
		t.Errorf("campaign self = %d, want 10", a.CriticalPath[0].SelfUS)
	}
	// The leaf owns its whole duration.
	if a.CriticalPath[3].SelfUS != 55 {
		t.Errorf("pool self = %d, want 55", a.CriticalPath[3].SelfUS)
	}
	if a.Phases["instances"] != 9e-5 { // 90 us
		t.Errorf("phase seconds = %v, want 9e-5", a.Phases["instances"])
	}
}

func TestCriticalPathStitchedWorkerTree(t *testing.T) {
	// The workers=2 stitched shape: campaign -> phase -> distribute ->
	// {worker 0, worker 1} -> item... The slow item on worker 1 must be
	// on the path.
	spans := []obs.SpanRecord{
		span(10, 5, "item", 30, 55, map[string]any{"test": "TestSlow", "item": float64(9)}),
		span(11, 4, "item", 15, 20, map[string]any{"test": "TestFast", "item": float64(2)}),
		span(4, 3, "worker", 10, 40, map[string]any{"slot": float64(0)}),
		span(5, 3, "worker", 10, 80, map[string]any{"slot": float64(1)}),
		span(3, 2, "distribute", 8, 86, map[string]any{"workers": float64(2)}),
		span(2, 1, "phase", 5, 92, map[string]any{"phase": "instances"}),
		span(1, 0, "campaign", 0, 100, nil),
	}
	a := Analyze(&Run{Spans: spans})
	var names []string
	for _, s := range a.CriticalPath {
		names = append(names, s.Name)
	}
	want := "campaign>phase>distribute>worker>item"
	if got := strings.Join(names, ">"); got != want {
		t.Fatalf("critical path = %s, want %s", got, want)
	}
	leaf := a.CriticalPath[len(a.CriticalPath)-1]
	if leaf.Test != "TestSlow" || leaf.Item != 9 {
		t.Errorf("critical path leaf = %+v, want TestSlow item 9", leaf)
	}
}

func TestCriticalPathOrphanSpans(t *testing.T) {
	// A worker trace fragment whose parent never made it into the file:
	// the orphan anchors its own subtree, and the latest-ending root
	// wins.
	spans := []obs.SpanRecord{
		span(2, 999, "item", 50, 100, map[string]any{"test": "TestOrphan"}), // parent 999 unknown
		span(1, 0, "campaign", 0, 60, nil),
	}
	a := Analyze(&Run{Spans: spans})
	if len(a.CriticalPath) != 1 || a.CriticalPath[0].Name != "item" {
		t.Fatalf("critical path = %+v, want the later-ending orphan item", a.CriticalPath)
	}
	if a.MakespanUS != 150 {
		t.Errorf("makespan = %d, want 150", a.MakespanUS)
	}
}

func ev(t int64, event string, attrs map[string]any) obs.EventRecord {
	return obs.EventRecord{TimeUS: t, Event: event, Attrs: attrs}
}

func TestWorkerTimelinesFromEvents(t *testing.T) {
	events := []obs.EventRecord{
		ev(0, obs.EvItemDispatch, map[string]any{"item": float64(1), "test": "A", "worker": float64(0)}),
		ev(0, obs.EvItemDispatch, map[string]any{"item": float64(2), "test": "B", "worker": float64(1)}),
		ev(40, obs.EvItemComplete, map[string]any{"item": float64(2), "test": "B", "worker": float64(1), "elapsed_s": 40e-6}),
		ev(50, obs.EvSteal, map[string]any{"item": float64(3), "worker": float64(1)}),
		ev(50, obs.EvItemDispatch, map[string]any{"item": float64(3), "test": "C", "worker": float64(1)}),
		ev(100, obs.EvItemComplete, map[string]any{"item": float64(1), "test": "A", "worker": float64(0), "elapsed_s": 100e-6}),
		ev(100, obs.EvItemComplete, map[string]any{"item": float64(3), "test": "C", "worker": float64(1), "elapsed_s": 50e-6}),
	}
	a := Analyze(&Run{Events: events})
	if len(a.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(a.Workers))
	}
	w0, w1 := a.Workers[0], a.Workers[1]
	if w0.Slot != 0 || w1.Slot != 1 {
		t.Fatalf("worker slots = %d,%d want 0,1", w0.Slot, w1.Slot)
	}
	if w0.BusyUS != 100 {
		t.Errorf("worker 0 busy = %d, want 100", w0.BusyUS)
	}
	// Worker 1: [0,40] + [50,100] = 90 with an idle gap.
	if w1.BusyUS != 90 {
		t.Errorf("worker 1 busy = %d, want 90", w1.BusyUS)
	}
	if w1.Steals != 1 {
		t.Errorf("worker 1 steals = %d, want 1", w1.Steals)
	}
	if w0.Items != 1 || w1.Items != 2 {
		t.Errorf("items = %d,%d want 1,2", w0.Items, w1.Items)
	}
	if len(a.Items) != 3 || a.Items[0].Seconds < a.Items[1].Seconds {
		t.Fatalf("items not sorted slowest-first: %+v", a.Items)
	}
	if a.Savings.Steals != 1 {
		t.Errorf("savings steals = %d, want 1", a.Savings.Steals)
	}
}

func TestInProcessEventsCollapseToPoolLane(t *testing.T) {
	events := []obs.EventRecord{
		ev(0, obs.EvItemDispatch, map[string]any{"item": float64(1), "test": "A"}),
		ev(10, obs.EvItemDispatch, map[string]any{"item": float64(2), "test": "B"}),
		ev(60, obs.EvItemComplete, map[string]any{"item": float64(1), "test": "A", "elapsed_s": 60e-6}),
		ev(80, obs.EvItemComplete, map[string]any{"item": float64(2), "test": "B", "elapsed_s": 70e-6}),
	}
	a := Analyze(&Run{Events: events})
	if len(a.Workers) != 1 || a.Workers[0].Slot != -1 {
		t.Fatalf("expected single pool lane, got %+v", a.Workers)
	}
	// Overlapping intervals [0,60] and [10,80] union to 80.
	if a.Workers[0].BusyUS != 80 {
		t.Errorf("pool busy = %d, want 80", a.Workers[0].BusyUS)
	}
}

func TestBusyUnion(t *testing.T) {
	cases := []struct {
		ivs  []interval
		want int64
	}{
		{nil, 0},
		{[]interval{{0, 10}}, 10},
		{[]interval{{0, 10}, {5, 15}}, 15},
		{[]interval{{0, 10}, {20, 30}}, 20},
		{[]interval{{20, 30}, {0, 10}, {5, 12}}, 22},
		{[]interval{{0, 10}, {2, 8}}, 10},
	}
	for i, c := range cases {
		if got := busyUnion(append([]interval(nil), c.ivs...)); got != c.want {
			t.Errorf("case %d: busyUnion = %d, want %d", i, got, c.want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil, 1, 10); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
	s := Sparkline([]float64{0, 0.5, 1}, 1, 3)
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline width = %d, want 3", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("sparkline = %q, want low first / full last", s)
	}
	// Wider than data clamps to data length.
	if got := len([]rune(Sparkline([]float64{1, 1}, 1, 10))); got != 2 {
		t.Errorf("overwide sparkline has %d cols, want 2", got)
	}
}

func rec(app, digest string, makespan float64, perf *obs.PerfSummary) ledger.Record {
	return ledger.Record{
		RunID: fmt.Sprintf("r-%s-%s-%g", app, digest, makespan), App: app,
		FlagsDigest: digest, MakespanSeconds: makespan, Executions: 100, Perf: perf,
	}
}

func TestTrendsDetectsRegression(t *testing.T) {
	recs := []ledger.Record{
		rec("minihdfs", "aaaa", 10.0, nil),
		rec("minihdfs", "aaaa", 10.2, nil),
		rec("minihdfs", "aaaa", 9.8, nil),
		rec("minihdfs", "aaaa", 15.0, nil), // +50% over ~10s baseline
	}
	tr := Trends(recs, "minihdfs", 5, 0.15)
	if !tr.Regressed() {
		t.Fatalf("50%% makespan regression not flagged: %+v", tr)
	}
	var found bool
	for _, f := range tr.Flags {
		if f.Metric == "makespan_seconds" && f.Regression && f.Drift > 0.4 {
			found = true
		}
	}
	if !found {
		t.Errorf("makespan flag missing: %+v", tr.Flags)
	}
}

func TestTrendsCleanOnStableRuns(t *testing.T) {
	recs := []ledger.Record{
		rec("minihdfs", "aaaa", 10.0, nil),
		rec("minihdfs", "aaaa", 10.5, nil),
		rec("minihdfs", "aaaa", 10.2, nil),
	}
	tr := Trends(recs, "minihdfs", 5, 0.15)
	if tr.Regressed() || len(tr.Flags) != 0 {
		t.Fatalf("stable runs flagged: %+v", tr.Flags)
	}
	if tr.Compared != 2 {
		t.Errorf("compared = %d, want 2", tr.Compared)
	}
}

func TestTrendsExactlyAtThresholdIsClean(t *testing.T) {
	// Baseline 10.0, latest 11.5: drift is exactly 0.15 — strictly
	// greater than is required, so this is noise, not drift.
	recs := []ledger.Record{
		rec("minihdfs", "aaaa", 10.0, nil),
		rec("minihdfs", "aaaa", 11.5, nil),
	}
	tr := Trends(recs, "minihdfs", 5, 0.15)
	if len(tr.Flags) != 0 {
		t.Fatalf("exactly-at-threshold drift flagged: %+v", tr.Flags)
	}
	// One hair past must flag.
	recs[1].MakespanSeconds = 11.51
	tr = Trends(recs, "minihdfs", 5, 0.15)
	if !tr.Regressed() {
		t.Fatal("drift just past threshold not flagged")
	}
}

func TestTrendsTooFewRuns(t *testing.T) {
	tr := Trends([]ledger.Record{rec("minihdfs", "aaaa", 10, nil)}, "minihdfs", 5, 0.15)
	if tr.Regressed() || tr.Note == "" {
		t.Fatalf("single run should be trivially clean with a note: %+v", tr)
	}
	tr = Trends(nil, "minihdfs", 5, 0.15)
	if tr.Regressed() || tr.Note == "" {
		t.Fatalf("empty ledger should be trivially clean with a note: %+v", tr)
	}
}

func TestTrendsMismatchedFlagsExcluded(t *testing.T) {
	// The slow prior run used different flags: it is signal about a
	// different configuration, not this one's baseline.
	recs := []ledger.Record{
		rec("minihdfs", "bbbb", 30.0, nil), // different digest — excluded
		rec("minihdfs", "aaaa", 10.0, nil),
		rec("minihdfs", "aaaa", 10.4, nil),
	}
	tr := Trends(recs, "minihdfs", 5, 0.15)
	if len(tr.Flags) != 0 {
		t.Fatalf("mismatched-flags run polluted the baseline: %+v", tr.Flags)
	}
	if tr.Skipped != 1 || tr.Compared != 1 {
		t.Errorf("skipped=%d compared=%d, want 1 and 1", tr.Skipped, tr.Compared)
	}
	// All priors mismatched → nothing to trend, clean with note.
	recs = []ledger.Record{
		rec("minihdfs", "bbbb", 30.0, nil),
		rec("minihdfs", "aaaa", 10.0, nil),
	}
	tr = Trends(recs, "minihdfs", 5, 0.15)
	if tr.Note == "" || tr.Regressed() {
		t.Fatalf("all-mismatched priors should be clean with note: %+v", tr)
	}
}

func TestTrendsPerfMetrics(t *testing.T) {
	perf := func(p95, util float64) *obs.PerfSummary {
		return &obs.PerfSummary{P95ItemSeconds: p95, UtilizationPct: util}
	}
	recs := []ledger.Record{
		rec("minihdfs", "aaaa", 10.0, perf(2.0, 80)),
		rec("minihdfs", "aaaa", 10.0, perf(2.0, 80)),
		rec("minihdfs", "aaaa", 10.0, perf(3.0, 50)), // p95 +50%, util -37.5%
	}
	tr := Trends(recs, "minihdfs", 5, 0.15)
	got := map[string]TrendFlag{}
	for _, f := range tr.Flags {
		got[f.Metric] = f
	}
	if f, ok := got["p95_item_seconds"]; !ok || !f.Regression {
		t.Errorf("p95 regression missing: %+v", tr.Flags)
	}
	// Utilization DOWN is the regression direction.
	if f, ok := got["utilization_pct"]; !ok || !f.Regression || f.Drift >= 0 {
		t.Errorf("utilization regression missing or misdirected: %+v", tr.Flags)
	}
	// Records without perf data simply do not contribute perf metrics.
	recs[0].Perf = nil
	recs[1].Perf = nil
	tr = Trends(recs, "minihdfs", 5, 0.15)
	for _, f := range tr.Flags {
		if f.Metric == "p95_item_seconds" || f.Metric == "utilization_pct" {
			t.Errorf("perf metric trended without baseline perf data: %+v", f)
		}
	}
}

func TestRenderProfileSmoke(t *testing.T) {
	spans := []obs.SpanRecord{
		span(2, 1, "phase", 5, 90, map[string]any{"phase": "instances"}),
		span(1, 0, "campaign", 0, 100, map[string]any{"app": "minihdfs"}),
	}
	events := []obs.EventRecord{
		ev(0, obs.EvItemDispatch, map[string]any{"item": float64(1), "test": "A", "worker": float64(0)}),
		ev(90, obs.EvItemComplete, map[string]any{"item": float64(1), "test": "A", "worker": float64(0), "elapsed_s": 1.5}),
		ev(95, obs.EvCacheHit, map[string]any{"scope": "shared"}),
	}
	a := Analyze(&Run{Spans: spans, Events: events})
	var b strings.Builder
	RenderProfile(&b, a)
	out := b.String()
	for _, want := range []string{"Campaign profile", "Critical path", "campaign", "Worker utilization", "worker 0", "cache hits (shared)"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile report missing %q:\n%s", want, out)
		}
	}
}
