// Package flight is the offline campaign profiler: it ingests one run's
// trace spans, flight-recorder event log, and perf sample series, and
// answers "where did the time go?" — the campaign's critical path, how
// busy each worker slot was, the item-duration and queue-wait tails,
// and what each savings feature (cache, speculation, stealing, early
// stopping) actually bought. `zebraconf -mode profile` renders the
// analysis; `-mode trends` compares the compact per-run summaries the
// ledger keeps across runs.
//
// Every input is optional: a run traced without -events still yields a
// critical path, an event log without a trace still yields worker
// timelines, and both degrade gracefully when absent. Nothing here
// touches the equivalence invariant — the profiler only explains time.
package flight

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"zebraconf/internal/obs"
)

// Run is one campaign's loaded observability artifacts.
type Run struct {
	Spans  []obs.SpanRecord
	Events []obs.EventRecord
	Perf   []obs.PerfSample
}

// Load reads a run's artifacts from disk. Any path may be empty
// (artifact absent); a named file must parse.
func Load(tracePath, eventsPath, perfPath string) (*Run, error) {
	r := &Run{}
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, fmt.Errorf("flight: trace: %w", err)
		}
		r.Spans, err = obs.ReadTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("flight: trace %s: %w", tracePath, err)
		}
	}
	if eventsPath != "" {
		f, err := os.Open(eventsPath)
		if err != nil {
			return nil, fmt.Errorf("flight: events: %w", err)
		}
		r.Events, err = obs.ReadEvents(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("flight: events %s: %w", eventsPath, err)
		}
	}
	if perfPath != "" {
		f, err := os.Open(perfPath)
		if err != nil {
			return nil, fmt.Errorf("flight: perf: %w", err)
		}
		r.Perf, err = obs.ReadPerf(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("flight: perf %s: %w", perfPath, err)
		}
	}
	if len(r.Spans) == 0 && len(r.Events) == 0 && len(r.Perf) == 0 {
		return nil, fmt.Errorf("flight: no artifacts to analyze (need -trace, -events, or -perf output)")
	}
	return r, nil
}

// PathStep is one span along the critical path, time order, root first.
type PathStep struct {
	Name  string
	DurUS int64
	// SelfUS is the step's un-blamed time: its duration minus what its
	// own chained children account for (the whole duration at a leaf).
	SelfUS int64
	// Depth is the span's nesting level under the root (for indenting).
	Depth int
	// Test / Param / Item echo the span attrs a repro needs (empty or
	// zero when the span carries none).
	Test  string
	Param string
	Item  int64
	Attrs map[string]any
}

// ItemStat is one completed work item, from EvItemComplete.
type ItemStat struct {
	Item    int64
	Test    string
	Worker  int64 // -1 in-process (no worker attribution)
	Seconds float64
	Spec    bool
}

// WorkerStat is one execution lane's utilization over the run. In dist
// mode each worker slot gets a row; in-process runs collapse to a
// single aggregate "pool" row (Slot == -1).
type WorkerStat struct {
	Slot int64
	// BusyUS is the union of this lane's dispatch→complete intervals —
	// wall time with at least one item in flight, so per-worker
	// parallelism does not overcount.
	BusyUS  int64
	Items   int
	Steals  int
	Spec    int
	// Timeline is the lane's busy/idle occupancy bucketed over the run
	// window (values in [0,1]), ready for sparkline rendering.
	Timeline []float64
}

// Savings aggregates what each optimization contributed, from events
// (counts) and the final perf sample (counters events do not carry).
type Savings struct {
	CacheHits       map[string]int64 // by scope: local | shared | coalesced
	SpeculationRuns int64
	SpeculationWins int64
	Steals          int64
	TrialsSavedEarly  int64
	TrialsReallocated int64
	ExecutionsSaved   int64
}

// Analysis is the full offline profile of one run.
type Analysis struct {
	// MakespanUS spans the earliest to latest observed timestamp across
	// all artifacts.
	MakespanUS int64
	// Phases maps phase name to its wall duration (from phase spans, or
	// phase events when the run had no trace).
	Phases map[string]float64
	// CriticalPath walks root → leaf along the latest-finisher chain;
	// CriticalPathUS is the root step's duration.
	CriticalPath   []PathStep
	CriticalPathUS int64
	// Items is every completed work item, slowest first.
	Items []ItemStat
	ItemP50, ItemP95 float64
	// Workers has one row per execution lane (dist slots, or one
	// aggregate row in-process), slot order.
	Workers []WorkerStat
	// QueueWaitP95 is estimated from the final perf sample's wait
	// histograms (0 without -perf).
	QueueWaitP95 float64
	Savings      Savings
	// UtilSeries / CacheSeries / HeapSeries are the perf sampler's
	// time series, for sparklines (nil without -perf).
	UtilSeries  []float64
	CacheSeries []float64
	HeapSeries  []float64
}

// timelineBuckets is the sparkline resolution for worker occupancy.
const timelineBuckets = 60

// Analyze profiles a loaded run.
func Analyze(r *Run) *Analysis {
	a := &Analysis{Phases: map[string]float64{}}
	a.analyzeSpans(r.Spans)
	a.analyzeEvents(r.Events)
	a.analyzePerf(r.Perf)
	return a
}

func attrString(attrs map[string]any, key string) string {
	if v, ok := attrs[key].(string); ok {
		return v
	}
	return ""
}

func attrInt(attrs map[string]any, key string) (int64, bool) {
	switch v := attrs[key].(type) {
	case int64:
		return v, true
	case float64: // JSON round-trip decodes numbers as float64
		return int64(v), true
	}
	return 0, false
}

func attrFloat(attrs map[string]any, key string) (float64, bool) {
	switch v := attrs[key].(type) {
	case float64:
		return v, true
	case int64:
		return float64(v), true
	}
	return 0, false
}

func (a *Analysis) analyzeSpans(spans []obs.SpanRecord) {
	if len(spans) == 0 {
		return
	}
	byID := make(map[obs.SpanID]*obs.SpanRecord, len(spans))
	children := make(map[obs.SpanID][]*obs.SpanRecord)
	var minStart, maxEnd int64
	minStart = spans[0].StartUS
	for i := range spans {
		s := &spans[i]
		byID[s.Span] = s
		if s.StartUS < minStart {
			minStart = s.StartUS
		}
		if end := s.StartUS + s.DurUS; end > maxEnd {
			maxEnd = end
		}
	}
	var roots []*obs.SpanRecord
	for i := range spans {
		s := &spans[i]
		if s.Parent == obs.NoSpan || byID[s.Parent] == nil {
			// True roots and orphans (a worker fragment whose parent was
			// lost) both anchor their own subtree.
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	if span := maxEnd - minStart; span > a.MakespanUS {
		a.MakespanUS = span
	}

	// Phase durations from phase spans.
	for i := range spans {
		s := &spans[i]
		if s.Name == "phase" {
			if p := attrString(s.Attrs, "phase"); p != "" {
				a.Phases[p] += float64(s.DurUS) / 1e6
			}
		}
	}

	// Critical path: from the latest-ending root, descend into the
	// child that finished last (what the parent was waiting on when it
	// ended), then walk backward through the siblings that gated that
	// child's start — a sibling ending at or before the start is the
	// dependency (a finished pre-run, a drained slot) the chain was
	// serialized behind. The result is the run's longest wait chain
	// through pre-runs, items, and confirmation rounds, in time order.
	var root *obs.SpanRecord
	for _, s := range roots {
		if root == nil || s.StartUS+s.DurUS > root.StartUS+root.DurUS {
			root = s
		}
	}
	if root == nil {
		return
	}
	a.CriticalPathUS = root.DurUS
	a.walkPath(root, 0, children)
}

// walkPath appends s and its critical descendants to the path. Spans
// holding under 1% of the critical path are listed but not expanded —
// their internal chains are noise at campaign scale.
func (a *Analysis) walkPath(s *obs.SpanRecord, depth int, children map[obs.SpanID][]*obs.SpanRecord) {
	end := func(r *obs.SpanRecord) int64 { return r.StartUS + r.DurUS }
	kids := children[s.Span]
	if depth > 0 && s.DurUS*100 < a.CriticalPathUS {
		kids = nil
	}
	// Backward wait chain through the children: the latest finisher,
	// then repeatedly the latest-ending sibling that finished before the
	// current segment started.
	var segs []*obs.SpanRecord
	var cur *obs.SpanRecord
	for _, c := range kids {
		if cur == nil || end(c) > end(cur) {
			cur = c
		}
	}
	for cur != nil {
		segs = append(segs, cur)
		var pred *obs.SpanRecord
		for _, c := range kids {
			if c != cur && end(c) <= cur.StartUS && (pred == nil || end(c) > end(pred)) {
				pred = c
			}
		}
		cur = pred
	}
	// segs was collected newest-first; the path reads in time order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}

	step := PathStep{
		Name:  s.Name,
		DurUS: s.DurUS,
		Depth: depth,
		Test:  attrString(s.Attrs, "test"),
		Param: attrString(s.Attrs, "param"),
		Attrs: s.Attrs,
	}
	if id, ok := attrInt(s.Attrs, "item"); ok {
		step.Item = id
	}
	step.SelfUS = s.DurUS
	for _, seg := range segs {
		step.SelfUS -= seg.DurUS
	}
	if step.SelfUS < 0 {
		step.SelfUS = 0
	}
	a.CriticalPath = append(a.CriticalPath, step)
	for _, seg := range segs {
		a.walkPath(seg, depth+1, children)
	}
}

// interval is one busy stretch on an execution lane.
type interval struct{ start, end int64 }

// busyUnion sums the union of possibly-overlapping intervals.
func busyUnion(ivs []interval) int64 {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var total int64
	curStart, curEnd := ivs[0].start, ivs[0].end
	for _, iv := range ivs[1:] {
		if iv.start > curEnd {
			total += curEnd - curStart
			curStart, curEnd = iv.start, iv.end
			continue
		}
		if iv.end > curEnd {
			curEnd = iv.end
		}
	}
	return total + curEnd - curStart
}

// occupancy buckets the fraction of each of n equal slices of
// [lo, hi) covered by at least one interval.
func occupancy(ivs []interval, lo, hi int64, n int) []float64 {
	if hi <= lo || n <= 0 {
		return nil
	}
	out := make([]float64, n)
	width := float64(hi-lo) / float64(n)
	for _, iv := range ivs {
		s, e := float64(iv.start-lo), float64(iv.end-lo)
		if e <= s {
			continue
		}
		first := int(s / width)
		last := int((e - 1e-9) / width)
		for b := first; b <= last && b < n; b++ {
			if b < 0 {
				continue
			}
			bLo, bHi := float64(b)*width, float64(b+1)*width
			olo, ohi := s, e
			if olo < bLo {
				olo = bLo
			}
			if ohi > bHi {
				ohi = bHi
			}
			if ohi > olo {
				out[b] += (ohi - olo) / width
			}
		}
	}
	for i, v := range out {
		if v > 1 {
			out[i] = 1
		}
	}
	return out
}

func (a *Analysis) analyzeEvents(events []obs.EventRecord) {
	if len(events) == 0 {
		return
	}
	var minT, maxT int64
	minT = events[0].TimeUS
	for _, e := range events {
		if e.TimeUS < minT {
			minT = e.TimeUS
		}
		if e.TimeUS > maxT {
			maxT = e.TimeUS
		}
	}
	if span := maxT - minT; span > a.MakespanUS {
		a.MakespanUS = span
	}

	// Phase durations from events, when the run had no trace.
	if len(a.Phases) == 0 {
		starts := map[string]int64{}
		for _, e := range events {
			p := attrString(e.Attrs, "phase")
			switch e.Event {
			case obs.EvPhaseStart:
				starts[p] = e.TimeUS
			case obs.EvPhaseFinish:
				if t0, ok := starts[p]; ok {
					a.Phases[p] += float64(e.TimeUS-t0) / 1e6
				}
			}
		}
	}

	// Reconstruct dispatch→complete intervals per lane. The dist
	// coordinator attributes both events to a worker slot; the
	// in-process pool carries no worker attr and collapses to lane -1.
	type flight struct {
		start int64
		lane  int64
	}
	open := map[int64]flight{} // item ID → in-flight
	lanes := map[int64]*WorkerStat{}
	lane := func(slot int64) *WorkerStat {
		w := lanes[slot]
		if w == nil {
			w = &WorkerStat{Slot: slot}
			lanes[slot] = w
		}
		return w
	}
	ivs := map[int64][]interval{}
	for _, e := range events {
		switch e.Event {
		case obs.EvItemDispatch:
			item, ok := attrInt(e.Attrs, "item")
			if !ok {
				continue
			}
			slot := int64(-1)
			if w, ok := attrInt(e.Attrs, "worker"); ok {
				slot = w
			}
			open[item] = flight{start: e.TimeUS, lane: slot}
			if spec, _ := e.Attrs["spec"].(bool); spec {
				lane(slot).Spec++
			}
		case obs.EvItemComplete:
			item, ok := attrInt(e.Attrs, "item")
			if !ok {
				continue
			}
			slot := int64(-1)
			if w, ok := attrInt(e.Attrs, "worker"); ok {
				slot = w
			}
			st := ItemStat{Item: item, Test: attrString(e.Attrs, "test"), Worker: slot}
			st.Seconds, _ = attrFloat(e.Attrs, "elapsed_s")
			st.Spec, _ = e.Attrs["spec"].(bool)
			a.Items = append(a.Items, st)
			w := lane(slot)
			w.Items++
			if f, ok := open[item]; ok {
				delete(open, item)
				ivs[f.lane] = append(ivs[f.lane], interval{f.start, e.TimeUS})
			} else if st.Seconds > 0 {
				// Completion without a matched dispatch (a stitched or
				// truncated log): reconstruct the interval from elapsed_s.
				ivs[slot] = append(ivs[slot], interval{e.TimeUS - int64(st.Seconds*1e6), e.TimeUS})
			}
		case obs.EvSteal:
			if w, ok := attrInt(e.Attrs, "worker"); ok {
				lane(w).Steals++
			}
			a.Savings.Steals++
		case obs.EvSpeculate:
			a.Savings.SpeculationRuns++
		case obs.EvSpeculationWin:
			a.Savings.SpeculationWins++
		case obs.EvCacheHit:
			if a.Savings.CacheHits == nil {
				a.Savings.CacheHits = map[string]int64{}
			}
			scope := attrString(e.Attrs, "scope")
			if scope == "" {
				scope = "local"
			}
			a.Savings.CacheHits[scope]++
		case obs.EvCampaignFinish:
			if saved, ok := attrInt(e.Attrs, "executions_saved"); ok {
				a.Savings.ExecutionsSaved = saved
			}
		}
	}

	for slot, w := range lanes {
		w.BusyUS = busyUnion(append([]interval(nil), ivs[slot]...))
		w.Timeline = occupancy(ivs[slot], minT, maxT, timelineBuckets)
		a.Workers = append(a.Workers, *w)
	}
	sort.Slice(a.Workers, func(i, j int) bool { return a.Workers[i].Slot < a.Workers[j].Slot })

	// Exact item-duration quantiles from completion events.
	sort.Slice(a.Items, func(i, j int) bool { return a.Items[i].Seconds > a.Items[j].Seconds })
	if n := len(a.Items); n > 0 {
		sorted := make([]float64, n)
		for i, it := range a.Items {
			sorted[i] = it.Seconds
		}
		sort.Float64s(sorted)
		a.ItemP50 = sorted[n/2]
		a.ItemP95 = sorted[min(n-1, n*95/100)]
	}
}

func (a *Analysis) analyzePerf(samples []obs.PerfSample) {
	if len(samples) == 0 {
		return
	}
	last := samples[len(samples)-1]
	if span := last.TimeUS - samples[0].TimeUS; span > a.MakespanUS {
		a.MakespanUS = span
	}
	for _, s := range samples {
		a.UtilSeries = append(a.UtilSeries, s.Utilization())
		a.CacheSeries = append(a.CacheSeries, s.CacheHitRate())
		a.HeapSeries = append(a.HeapSeries, float64(s.HeapAllocBytes))
	}
	// Queue-wait tail and savings counters events do not carry, from
	// the final registry snapshot.
	wait := last.Metrics.Hists[obs.MSemWaitSeconds]
	wait.Merge(last.Metrics.Hists[obs.MSchedQueueWait])
	if wait.Count > 0 {
		a.QueueWaitP95 = wait.Quantile(0.95)
	}
	a.Savings.TrialsSavedEarly += sumCounters(last.Metrics.Counters, obs.MTrialsSaved, `kind="early-stop"`)
	a.Savings.TrialsReallocated += sumCounters(last.Metrics.Counters, obs.MTrialsSaved, `kind="reallocated"`)
	if a.Savings.ExecutionsSaved == 0 {
		a.Savings.ExecutionsSaved = last.Saved
	}
}

// sumCounters totals every snapshot counter series of family name whose
// label block contains each given `k="v"` fragment.
func sumCounters(counters map[string]int64, name string, fragments ...string) int64 {
	var total int64
outer:
	for k, v := range counters {
		if k != name && !strings.HasPrefix(k, name+"{") {
			continue
		}
		for _, f := range fragments {
			if !strings.Contains(k, f) {
				continue outer
			}
		}
		total += v
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
