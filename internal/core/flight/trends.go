package flight

import (
	"fmt"
	"io"
	"math"

	"zebraconf/internal/core/ledger"
)

// DefaultTrendRuns is how many trailing runs -mode trends compares.
const DefaultTrendRuns = 5

// DefaultTrendThreshold is the relative drift past which a metric is
// flagged (strictly greater than; exactly-at-threshold is noise).
const DefaultTrendThreshold = 0.15

// TrendFlag is one metric drifting past the noise threshold between
// the baseline (mean of prior comparable runs) and the newest run.
type TrendFlag struct {
	Metric   string
	Baseline float64
	Latest   float64
	// Drift is (Latest-Baseline)/Baseline, signed.
	Drift float64
	// Regression marks drift in the bad direction for this metric
	// (makespan up, utilization down, …); improvements are reported
	// but only regressions should gate CI.
	Regression bool
}

// TrendReport compares the newest ledger record against its
// predecessors with the same app and execution-affecting flags.
type TrendReport struct {
	App string
	// Latest is the newest comparable record; Baseline aggregates the
	// Compared prior records (mean per metric).
	Latest   ledger.Record
	Compared int
	// Skipped counts records excluded for a mismatched flags digest —
	// those runs measured a different configuration, so their timings
	// are not noise but signal about something else.
	Skipped   int
	Threshold float64
	Flags     []TrendFlag
	// Note is set when there was nothing to compare (fewer than two
	// comparable runs); the report is then trivially clean.
	Note string
}

// Regressed reports whether any flagged drift moved in the bad
// direction — the CI gate behind -mode trends' exit status.
func (t TrendReport) Regressed() bool {
	for _, f := range t.Flags {
		if f.Regression {
			return true
		}
	}
	return false
}

// trendMetric describes one compared metric: how to read it from a
// record and which drift direction is a regression.
type trendMetric struct {
	name  string
	value func(ledger.Record) (float64, bool)
	// badUp: an increase is the regression (durations, executions).
	// Otherwise a decrease is (utilization, cache hit rate).
	badUp bool
}

var trendMetrics = []trendMetric{
	{"makespan_seconds", func(r ledger.Record) (float64, bool) {
		return r.MakespanSeconds, r.MakespanSeconds > 0
	}, true},
	{"executions", func(r ledger.Record) (float64, bool) {
		return float64(r.Executions), r.Executions > 0
	}, true},
	{"p95_item_seconds", func(r ledger.Record) (float64, bool) {
		if r.Perf == nil {
			return 0, false
		}
		return r.Perf.P95ItemSeconds, r.Perf.P95ItemSeconds > 0
	}, true},
	{"p95_queue_wait_seconds", func(r ledger.Record) (float64, bool) {
		if r.Perf == nil {
			return 0, false
		}
		return r.Perf.P95QueueWaitSeconds, r.Perf.P95QueueWaitSeconds > 0
	}, true},
	{"utilization_pct", func(r ledger.Record) (float64, bool) {
		if r.Perf == nil {
			return 0, false
		}
		return r.Perf.UtilizationPct, r.Perf.UtilizationPct > 0
	}, false},
	{"cache_hit_rate", func(r ledger.Record) (float64, bool) {
		if r.Perf == nil {
			return 0, false
		}
		return r.Perf.CacheHitRate, r.Perf.CacheHitRate > 0
	}, false},
}

// Trends analyzes the trailing runs of one app. recs is the full
// ledger, oldest first; runs <= 0 means DefaultTrendRuns; threshold
// <= 0 means DefaultTrendThreshold. Only records sharing the newest
// run's flags digest are comparable — runs invoked with different
// execution-affecting flags measure different workloads.
func Trends(recs []ledger.Record, app string, runs int, threshold float64) TrendReport {
	if runs <= 0 {
		runs = DefaultTrendRuns
	}
	if threshold <= 0 {
		threshold = DefaultTrendThreshold
	}
	t := TrendReport{App: app, Threshold: threshold}

	var mine []ledger.Record
	for _, r := range recs {
		if app == "" || r.App == app {
			mine = append(mine, r)
		}
	}
	if len(mine) == 0 {
		t.Note = "no ledger records for this app"
		return t
	}
	t.Latest = mine[len(mine)-1]
	if app == "" {
		t.App = t.Latest.App
		// Re-filter: with no -app given, trend the newest record's app.
		var filtered []ledger.Record
		for _, r := range mine {
			if r.App == t.App {
				filtered = append(filtered, r)
			}
		}
		mine = filtered
	}

	// Baseline pool: up to runs-1 records before the newest, newest
	// window first, matching flags digest only.
	var pool []ledger.Record
	for i := len(mine) - 2; i >= 0 && len(pool) < runs-1; i-- {
		if mine[i].FlagsDigest != t.Latest.FlagsDigest {
			t.Skipped++
			continue
		}
		pool = append(pool, mine[i])
	}
	t.Compared = len(pool)
	if len(pool) == 0 {
		t.Note = "fewer than two comparable runs (matching app and flags digest) — nothing to trend"
		return t
	}

	for _, m := range trendMetrics {
		latest, ok := m.value(t.Latest)
		if !ok {
			continue
		}
		var sum float64
		var n int
		for _, r := range pool {
			if v, ok := m.value(r); ok {
				sum += v
				n++
			}
		}
		if n == 0 {
			continue
		}
		base := sum / float64(n)
		if base == 0 {
			continue
		}
		drift := (latest - base) / base
		// Strictly past the threshold: a drift of exactly threshold is
		// within the declared noise band.
		if math.Abs(drift) <= threshold {
			continue
		}
		t.Flags = append(t.Flags, TrendFlag{
			Metric:     m.name,
			Baseline:   base,
			Latest:     latest,
			Drift:      drift,
			Regression: (drift > 0) == m.badUp,
		})
	}
	return t
}

// RenderTrends writes the human-readable trend report.
func RenderTrends(w io.Writer, t TrendReport) {
	fmt.Fprintf(w, "trend report: app %s · threshold %.0f%%\n", t.App, t.Threshold*100)
	if t.Note != "" {
		fmt.Fprintf(w, "  %s\n", t.Note)
		return
	}
	fmt.Fprintf(w, "  latest run %s (%s) vs %d prior run(s)", t.Latest.RunID, t.Latest.Start, t.Compared)
	if t.Skipped > 0 {
		fmt.Fprintf(w, " · %d skipped (different flags)", t.Skipped)
	}
	fmt.Fprintf(w, "\n")
	if len(t.Flags) == 0 {
		fmt.Fprintf(w, "  all metrics within the noise band — no drift\n")
		return
	}
	for _, f := range t.Flags {
		verdict := "improved"
		if f.Regression {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(w, "  %-24s %10.3f -> %10.3f (%+.1f%%) %s\n",
			f.Metric, f.Baseline, f.Latest, f.Drift*100, verdict)
	}
}
