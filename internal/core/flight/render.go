package flight

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// sparkRunes are the eighth-block glyphs sparklines quantize into.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values (each in [0, max]) as a block-glyph strip,
// downsampling to width columns by averaging. Shared by -mode profile,
// -mode watch, and reportgen -profile.
func Sparkline(values []float64, max float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	if max <= 0 {
		for _, v := range values {
			if v > max {
				max = v
			}
		}
		if max <= 0 {
			max = 1
		}
	}
	if width > len(values) {
		width = len(values)
	}
	var b strings.Builder
	for c := 0; c < width; c++ {
		lo, hi := c*len(values)/width, (c+1)*len(values)/width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range values[lo:hi] {
			sum += v
		}
		avg := sum / float64(hi-lo) / max
		if avg < 0 {
			avg = 0
		}
		if avg > 1 {
			avg = 1
		}
		idx := int(avg * float64(len(sparkRunes)))
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func fmtUS(us int64) string {
	s := float64(us) / 1e6
	switch {
	case s >= 60:
		return fmt.Sprintf("%dm%04.1fs", int(s)/60, s-float64(int(s)/60*60))
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.0fms", s*1000)
	}
}

// topItems is how many critical-path / straggler rows the report shows.
const topItems = 10

// RenderProfile writes the Markdown/ASCII profile report.
func RenderProfile(w io.Writer, a *Analysis) {
	fmt.Fprintf(w, "# Campaign profile\n\n")
	fmt.Fprintf(w, "makespan %s", fmtUS(a.MakespanUS))
	if a.CriticalPathUS > 0 && a.MakespanUS > 0 {
		fmt.Fprintf(w, " · critical path %s (%.0f%% of makespan)",
			fmtUS(a.CriticalPathUS), 100*float64(a.CriticalPathUS)/float64(a.MakespanUS))
	}
	fmt.Fprintf(w, "\n")

	if len(a.Phases) > 0 {
		fmt.Fprintf(w, "\n## Phases\n\n")
		names := make([]string, 0, len(a.Phases))
		for p := range a.Phases {
			names = append(names, p)
		}
		// Campaign order, not lexical: prerun gates instances gates scoring.
		order := map[string]int{"prerun": 0, "instances": 1, "scoring": 2}
		sort.Slice(names, func(i, j int) bool {
			oi, iok := order[names[i]]
			oj, jok := order[names[j]]
			if iok && jok {
				return oi < oj
			}
			if iok != jok {
				return iok
			}
			return names[i] < names[j]
		})
		total := float64(a.MakespanUS) / 1e6
		for _, p := range names {
			secs := a.Phases[p]
			bar := ""
			if total > 0 {
				n := int(secs / total * 30)
				if n > 30 {
					n = 30
				}
				bar = strings.Repeat("█", n)
			}
			fmt.Fprintf(w, "  %-10s %8.2fs  %s\n", p, secs, bar)
		}
	}

	if len(a.CriticalPath) > 0 {
		fmt.Fprintf(w, "\n## Critical path\n\n")
		fmt.Fprintf(w, "The run's longest wait chain: each step is what the level above\nwas serialized behind (%d steps total; structural levels first,\nthen the steps that own the most un-blamed time).\n\n", len(a.CriticalPath))
		// The structural spine: campaign, phases, distribute/workers.
		var deeper int
		for _, step := range a.CriticalPath {
			if step.Depth > 2 {
				deeper++
				continue
			}
			indent := strings.Repeat("  ", step.Depth)
			fmt.Fprintf(w, "%s%s  %s (self %s)", indent, step.Name, fmtUS(step.DurUS), fmtUS(step.SelfUS))
			if step.Test != "" {
				fmt.Fprintf(w, "  test=%s", step.Test)
			}
			if step.Param != "" {
				fmt.Fprintf(w, "  param=%s", step.Param)
			}
			if step.Item != 0 {
				fmt.Fprintf(w, "  item=%d", step.Item)
			}
			fmt.Fprintf(w, "\n")
		}
		if deeper > 0 {
			fmt.Fprintf(w, "  … %d deeper steps folded into the table below\n", deeper)
		}
		// Top contributors by self time: the steps to attack to shorten
		// the run, with the span attrs a repro needs.
		top := make([]PathStep, len(a.CriticalPath))
		copy(top, a.CriticalPath)
		sort.Slice(top, func(i, j int) bool { return top[i].SelfUS > top[j].SelfUS })
		if len(top) > topItems {
			top = top[:topItems]
		}
		fmt.Fprintf(w, "\nTop critical-path contributors (by self time):\n\n")
		for _, step := range top {
			fmt.Fprintf(w, "  %9s  %-10s", fmtUS(step.SelfUS), step.Name)
			if step.Test != "" {
				fmt.Fprintf(w, "  test=%s", step.Test)
			}
			if step.Param != "" {
				fmt.Fprintf(w, "  param=%s", step.Param)
			}
			if step.Item != 0 {
				fmt.Fprintf(w, "  item=%d", step.Item)
			}
			fmt.Fprintf(w, "\n")
		}
	}

	if len(a.Items) > 0 {
		fmt.Fprintf(w, "\n## Slowest items\n\n")
		fmt.Fprintf(w, "p50 %.2fs · p95 %.2fs · %d items", a.ItemP50, a.ItemP95, len(a.Items))
		if a.QueueWaitP95 > 0 {
			fmt.Fprintf(w, " · queue-wait p95 %.2fs", a.QueueWaitP95)
		}
		fmt.Fprintf(w, "\n\n")
		n := len(a.Items)
		if n > topItems {
			n = topItems
		}
		for _, it := range a.Items[:n] {
			fmt.Fprintf(w, "  %8.2fs  %s", it.Seconds, it.Test)
			if it.Worker >= 0 {
				fmt.Fprintf(w, "  worker=%d", it.Worker)
			}
			if it.Spec {
				fmt.Fprintf(w, "  [speculative]")
			}
			fmt.Fprintf(w, "\n")
		}
		if len(a.Items) > n {
			fmt.Fprintf(w, "  … %d more (full distribution in the perf series)\n", len(a.Items)-n)
		}
		fmt.Fprintf(w, "\nRepro one item's verdicts: zebraconf -mode explain -param <param> (see test rows above)\n")
	}

	if len(a.Workers) > 0 {
		fmt.Fprintf(w, "\n## Worker utilization\n\n")
		for _, ws := range a.Workers {
			name := fmt.Sprintf("worker %d", ws.Slot)
			if ws.Slot < 0 {
				name = "pool"
			}
			pct := 0.0
			if a.MakespanUS > 0 {
				pct = 100 * float64(ws.BusyUS) / float64(a.MakespanUS)
			}
			fmt.Fprintf(w, "  %-9s %5.1f%% busy  %s  %d items", name, pct, Sparkline(ws.Timeline, 1, 30), ws.Items)
			if ws.Steals > 0 {
				fmt.Fprintf(w, " · %d stolen", ws.Steals)
			}
			if ws.Spec > 0 {
				fmt.Fprintf(w, " · %d speculative", ws.Spec)
			}
			fmt.Fprintf(w, "\n")
		}
	}

	if len(a.UtilSeries) > 0 {
		fmt.Fprintf(w, "\n## Sampler series (%d samples)\n\n", len(a.UtilSeries))
		fmt.Fprintf(w, "  slots busy  %s\n", Sparkline(a.UtilSeries, 1, 48))
		fmt.Fprintf(w, "  cache hits  %s\n", Sparkline(a.CacheSeries, 1, 48))
		fmt.Fprintf(w, "  heap bytes  %s\n", Sparkline(a.HeapSeries, 0, 48))
	}

	sv := a.Savings
	if sv.ExecutionsSaved > 0 || len(sv.CacheHits) > 0 || sv.SpeculationRuns > 0 ||
		sv.Steals > 0 || sv.TrialsSavedEarly > 0 || sv.TrialsReallocated > 0 {
		fmt.Fprintf(w, "\n## Savings attribution\n\n")
		if sv.ExecutionsSaved > 0 {
			fmt.Fprintf(w, "  executions saved       %d\n", sv.ExecutionsSaved)
		}
		if len(sv.CacheHits) > 0 {
			scopes := make([]string, 0, len(sv.CacheHits))
			for s := range sv.CacheHits {
				scopes = append(scopes, s)
			}
			sort.Strings(scopes)
			for _, s := range scopes {
				fmt.Fprintf(w, "  cache hits (%s)%s %d\n", s, strings.Repeat(" ", 8-len(s)), sv.CacheHits[s])
			}
		}
		if sv.SpeculationRuns > 0 {
			fmt.Fprintf(w, "  speculative runs       %d (%d won)\n", sv.SpeculationRuns, sv.SpeculationWins)
		}
		if sv.Steals > 0 {
			fmt.Fprintf(w, "  items stolen           %d\n", sv.Steals)
		}
		if sv.TrialsSavedEarly > 0 {
			fmt.Fprintf(w, "  trials saved (early)   %d\n", sv.TrialsSavedEarly)
		}
		if sv.TrialsReallocated > 0 {
			fmt.Fprintf(w, "  trials reallocated     %d\n", sv.TrialsReallocated)
		}
	}
}
