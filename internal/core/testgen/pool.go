package testgen

import (
	"sort"

	"zebraconf/internal/core/agent"
)

// Pool is one pooled test run: several instances of DIFFERENT parameters
// for the same unit test, assigned simultaneously (§4 "Pooled testing").
// When the pooled run passes, every member is cleared; when it fails, the
// pool splits in two and each half re-runs, recursing down to single
// instances, which get the full TestRunner verdict.
type Pool struct {
	Test    string
	Members []Instance
}

// BuildPools groups one unit test's instances into pools by slot: the k-th
// pool combines the k-th instance of every parameter that still has one.
// Every instance appears in exactly one pool, and a pool never holds two
// instances of the same parameter, so merged assignments cannot conflict.
// maxPool bounds the members per pool (0 = unbounded, the paper's setting:
// pool size up to the number of parameters).
func BuildPools(test string, instances []Instance, maxPool int) []Pool {
	byParam := make(map[string][]Instance)
	var params []string
	for _, in := range instances {
		if len(byParam[in.Param]) == 0 {
			params = append(params, in.Param)
		}
		byParam[in.Param] = append(byParam[in.Param], in)
	}
	sort.Strings(params)

	var pools []Pool
	for slot := 0; ; slot++ {
		var members []Instance
		for _, p := range params {
			if slot < len(byParam[p]) {
				members = append(members, byParam[p][slot])
			}
		}
		if len(members) == 0 {
			return pools
		}
		if maxPool <= 0 {
			pools = append(pools, Pool{Test: test, Members: members})
			continue
		}
		for start := 0; start < len(members); start += maxPool {
			end := start + maxPool
			if end > len(members) {
				end = len(members)
			}
			pools = append(pools, Pool{Test: test, Members: members[start:end]})
		}
	}
}

// Split halves the pool for the divide-and-conquer recursion.
func (p Pool) Split() (Pool, Pool) {
	mid := len(p.Members) / 2
	return Pool{Test: p.Test, Members: p.Members[:mid]},
		Pool{Test: p.Test, Members: p.Members[mid:]}
}

// Assignment merges the member instances' assignments: the heterogeneous
// run assigns every member parameter at once; homogeneous arm j assigns
// value j of every member everywhere.
func (p Pool) Assignment(g *Generator, rep *agent.Report) Assignment {
	hetero := make(map[agent.Key]string)
	homoA := make(map[agent.Key]string)
	homoB := make(map[agent.Key]string)
	for _, in := range p.Members {
		a := g.AssignFor(in, rep)
		mergeAssign(hetero, a.Hetero)
		mergeAssign(homoA, a.Homo[0])
		mergeAssign(homoB, a.Homo[1])
	}
	return Assignment{Hetero: hetero, Homo: []map[agent.Key]string{homoA, homoB}}
}

// mergeAssign copies src into dst without overwriting existing keys
// (dependency-rule keys may repeat across members).
func mergeAssign(dst, src map[agent.Key]string) {
	for k, v := range src {
		if _, exists := dst[k]; !exists {
			dst[k] = v
		}
	}
}

// FilterQuarantined drops members whose parameter has been quarantined
// since the pool was built.
func (p Pool) FilterQuarantined(g *Generator) Pool {
	out := Pool{Test: p.Test}
	for _, in := range p.Members {
		if !g.Quarantined(in.Param) {
			out.Members = append(out.Members, in)
		}
	}
	return out
}
