// Package testgen implements ZebraConf's TestGenerator (paper §4): it
// decides which unit tests to run with which heterogeneous configurations,
// applying the paper's reduction techniques — independent parameters,
// representative value pairs, representative assignment strategies, pre-run
// filtering, uncertainty exclusion, and pooled testing.
package testgen

import (
	"fmt"
	"sort"
	"sync"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
)

// Strategy names the two representative value-assignment strategies of §4.
type Strategy string

const (
	// StrategyFlip assigns one value to every node of the target group and
	// the other value to every other entity: heterogeneity ACROSS types.
	StrategyFlip Strategy = "flip"
	// StrategyRoundRobin alternates the two values across the nodes of the
	// target group (and gives the second value to everyone else):
	// heterogeneity WITHIN a type.
	StrategyRoundRobin Strategy = "rr"
)

// Pair is one unordered pair of candidate values for a parameter.
type Pair struct {
	A, B string
}

// Pairs enumerates the value pairs to test for a parameter, following the
// §4 selection policy via Param.AutoValues.
func Pairs(p *confkit.Param) []Pair {
	vals := p.AutoValues()
	var out []Pair
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			out = append(out, Pair{A: vals[i], B: vals[j]})
		}
	}
	return out
}

// Instance is one leaf test instance: a unit test, one parameter, and a
// fully specified way to assign its two values to nodes.
type Instance struct {
	Test     string
	Param    string
	Group    string // node type, or agent.UnitTestEntity
	Strategy Strategy
	// Reversed swaps which value the group receives.
	Reversed bool
	Pair     Pair
}

// String renders an instance compactly for logs and reports.
func (in Instance) String() string {
	dir := "fwd"
	if in.Reversed {
		dir = "rev"
	}
	return fmt.Sprintf("%s/%s@%s[%s,%s](%s<->%s)", in.Test, in.Param, in.Group, in.Strategy, dir, in.Pair.A, in.Pair.B)
}

// PreRun couples a unit test with its pre-run report.
type PreRun struct {
	Test   string
	Report agent.Report
}

// Generator derives test instances for one application. Its mutating
// methods (Quarantine, SetFilter) and readers are safe for concurrent use
// by campaign workers.
type Generator struct {
	schema *confkit.Registry

	mu sync.RWMutex
	// quarantined parameters are excluded from further generation (the
	// frequent-failer rule of §4 "Pooled testing").
	quarantined map[string]bool
	// filter, when non-nil, restricts generation to a parameter subset.
	filter map[string]bool
}

// New returns a generator over the application's schema.
func New(schema *confkit.Registry) *Generator {
	return &Generator{schema: schema, quarantined: make(map[string]bool)}
}

// SetFilter restricts generation to the given parameters.
func (g *Generator) SetFilter(params []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.filter = make(map[string]bool, len(params))
	for _, p := range params {
		g.filter[p] = true
	}
}

// InFilter reports whether param is part of the campaign (always true
// without a filter).
func (g *Generator) InFilter(param string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.filter == nil || g.filter[param]
}

// Quarantine marks a parameter as already-known-unsafe; no further
// instances are generated for it.
func (g *Generator) Quarantine(param string) {
	g.mu.Lock()
	g.quarantined[param] = true
	g.mu.Unlock()
}

// Quarantined reports whether param is quarantined.
func (g *Generator) Quarantined(param string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.quarantined[param]
}

// eligibleGroups returns the entities that actually read param in the
// pre-run, sorted (the §4 filtering rule), and the per-group node count.
func eligibleGroups(rep *agent.Report, param string) []string {
	var groups []string
	for entity, params := range rep.Usage {
		if !params[param] {
			continue
		}
		if entity != agent.UnitTestEntity && rep.NodesStarted[entity] == 0 {
			continue
		}
		groups = append(groups, entity)
	}
	sort.Strings(groups)
	return groups
}

// fallbackGroups is the full-dispatch entity set for forced parameters:
// every started node type plus the unit test, sorted. Without pre-run
// read evidence there is no sharper assignment target than "everyone".
func fallbackGroups(rep *agent.Report) []string {
	groups := []string{agent.UnitTestEntity}
	for entity, n := range rep.NodesStarted {
		if n > 0 {
			groups = append(groups, entity)
		}
	}
	sort.Strings(groups)
	return groups
}

// uncertainSet converts the report's uncertain parameter list to a set.
func uncertainSet(rep *agent.Report) map[string]bool {
	set := make(map[string]bool, len(rep.UncertainParams))
	for _, p := range rep.UncertainParams {
		set[p] = true
	}
	return set
}

// InstancesOptions tunes instance generation, mainly for the Table 5
// ablation rows.
type InstancesOptions struct {
	// SkipUncertaintyFilter keeps instances whose parameter was read
	// through an unmappable configuration object (Table 5 row 2 counts
	// instances before this filter removes them).
	SkipUncertaintyFilter bool
	// DisableRoundRobin drops the within-type strategy (the E12 ablation:
	// same-type heterogeneity bugs become invisible).
	DisableRoundRobin bool
	// ForceParams lists parameters that must generate instances even when
	// the pre-run observed no entity reading them: coverage-driven
	// selection's full-dispatch fallback. A parameter read only under its
	// heterogeneous value (a conditional read) is invisible to the
	// pre-run — the §4 filter would silently drop it — so forced params
	// fall back to assigning every started node type plus the unit test.
	ForceParams []string
}

// Instances generates every leaf instance for one pre-run unit test,
// applying the §4 reductions: tests that start no nodes produce nothing;
// parameters are only assigned to groups that read them; round-robin is
// only emitted for groups with at least two nodes; uncertain (test,
// parameter) combinations are excluded.
func (g *Generator) Instances(pre PreRun, opts InstancesOptions) []Instance {
	rep := &pre.Report
	if len(rep.NodesStarted) == 0 {
		return nil
	}
	uncertain := uncertainSet(rep)
	forced := make(map[string]bool, len(opts.ForceParams))
	for _, p := range opts.ForceParams {
		forced[p] = true
	}
	var out []Instance
	for _, p := range g.schema.Params() {
		if !g.InFilter(p.Name) || g.Quarantined(p.Name) {
			continue
		}
		if uncertain[p.Name] && !opts.SkipUncertaintyFilter {
			continue
		}
		groups := eligibleGroups(rep, p.Name)
		if len(groups) == 0 && forced[p.Name] {
			groups = fallbackGroups(rep)
		}
		if len(groups) == 0 {
			continue
		}
		for _, pair := range Pairs(p) {
			for _, group := range groups {
				for _, reversed := range []bool{false, true} {
					out = append(out, Instance{
						Test: pre.Test, Param: p.Name, Group: group,
						Strategy: StrategyFlip, Reversed: reversed, Pair: pair,
					})
					if !opts.DisableRoundRobin && group != agent.UnitTestEntity && rep.NodesStarted[group] >= 2 {
						out = append(out, Instance{
							Test: pre.Test, Param: p.Name, Group: group,
							Strategy: StrategyRoundRobin, Reversed: reversed, Pair: pair,
						})
					}
				}
			}
		}
	}
	return out
}

// Assignment is the concrete per-entity value map for one run, plus the
// homogeneous arms Definition 3.1 requires.
type Assignment struct {
	Hetero map[agent.Key]string
	// Homo holds one fully homogeneous assignment per distinct value.
	Homo []map[agent.Key]string
}

// AssignFor materializes an instance against the node population the
// pre-run observed, including dependency rules (§4: "when testing p1 with
// v1, set p2 to v2").
func (g *Generator) AssignFor(in Instance, rep *agent.Report) Assignment {
	groupVal, otherVal := in.Pair.A, in.Pair.B
	if in.Reversed {
		groupVal, otherVal = in.Pair.B, in.Pair.A
	}

	hetero := make(map[agent.Key]string)
	g.forEachEntity(rep, func(k agent.Key) {
		k.Param = in.Param
		switch {
		case k.NodeType != in.Group:
			g.assign(hetero, k, otherVal)
		case in.Strategy == StrategyRoundRobin && k.NodeIndex%2 == 1:
			g.assign(hetero, k, otherVal)
		default:
			g.assign(hetero, k, groupVal)
		}
	})

	homoA := make(map[agent.Key]string)
	homoB := make(map[agent.Key]string)
	g.forEachEntity(rep, func(k agent.Key) {
		k.Param = in.Param
		g.assign(homoA, k, in.Pair.A)
		g.assign(homoB, k, in.Pair.B)
	})
	return Assignment{Hetero: hetero, Homo: []map[agent.Key]string{homoA, homoB}}
}

// assign stores value for key and applies the parameter's dependency rules
// on the same entity.
func (g *Generator) assign(m map[agent.Key]string, k agent.Key, value string) {
	m[k] = value
	p := g.schema.Lookup(k.Param)
	if p == nil {
		return
	}
	for _, rule := range p.DependsOn {
		if rule.If != value {
			continue
		}
		dep := agent.Key{NodeType: k.NodeType, NodeIndex: k.NodeIndex, Param: rule.Then}
		if _, exists := m[dep]; !exists {
			m[dep] = rule.To
		}
	}
}

// forEachEntity visits every (entity, index) the pre-run observed,
// including the unit test itself.
func (g *Generator) forEachEntity(rep *agent.Report, fn func(agent.Key)) {
	types := make([]string, 0, len(rep.NodesStarted))
	for t := range rep.NodesStarted {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		// Allow headroom for nodes a test starts later (AddDataNode after
		// filling the cluster): double the observed population.
		n := rep.NodesStarted[t] * 2
		for i := 0; i < n; i++ {
			fn(agent.Key{NodeType: t, NodeIndex: i})
		}
	}
	fn(agent.Key{NodeType: agent.UnitTestEntity, NodeIndex: 0})
}
