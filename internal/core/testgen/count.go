package testgen

// ReductionCounts holds the Table 5 rows for one application: the number of
// test instances at each stage of the paper's reduction pipeline.
type ReductionCounts struct {
	// Original assumes the user tests every parameter on every unit test
	// with the same value/assignment selection but no pre-run knowledge
	// (paper Table 5 row 1).
	Original int64
	// AfterPreRun keeps only tests that start nodes and only (parameter,
	// group) combinations the pre-run saw used (row 2).
	AfterPreRun int64
	// AfterUncertainty additionally removes combinations read through
	// unmappable configuration objects (row 3).
	AfterUncertainty int64
	// Executed counts unit-test executions the pooled campaign actually
	// performed — pooled runs, splits, leaves, homogeneous arms, and
	// hypothesis-testing trials (row 4).
	Executed int64
	// ExecutionsSaved counts runs the execution cache avoided: canonical
	// homogeneous arms and pooled runs another instance already
	// performed under the identical (test, assignment, seed) key.
	// Executed + ExecutionsSaved is the cache-off cost of the campaign.
	ExecutionsSaved int64
}

// OriginalCount computes row 1: every unit test × every parameter's value
// pairs × every node group the application has (plus the client) × the four
// strategy/orientation combinations. The paper's assumption holds: the user
// knows the application's node types but not which tests exercise which
// parameters.
func (g *Generator) OriginalCount(numTests int, nodeTypes []string) int64 {
	perParam := int64(0)
	for _, p := range g.schema.Params() {
		if !g.InFilter(p.Name) {
			continue
		}
		perParam += int64(len(Pairs(p))) * int64(len(nodeTypes)+1) * 4
	}
	return int64(numTests) * perParam
}

// CountAfterPreRun computes row 2 over the pre-run reports.
func (g *Generator) CountAfterPreRun(pres []PreRun) int64 {
	var n int64
	for _, pre := range pres {
		n += int64(len(g.Instances(pre, InstancesOptions{SkipUncertaintyFilter: true})))
	}
	return n
}

// CountAfterUncertainty computes row 3.
func (g *Generator) CountAfterUncertainty(pres []PreRun) int64 {
	var n int64
	for _, pre := range pres {
		n += int64(len(g.Instances(pre, InstancesOptions{})))
	}
	return n
}
