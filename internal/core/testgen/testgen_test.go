package testgen

import (
	"testing"
	"testing/quick"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
)

func testSchema() *confkit.Registry {
	r := confkit.NewRegistry()
	r.Register(
		confkit.Param{Name: "a.bool", Kind: confkit.Bool, Default: "false"},
		confkit.Param{Name: "b.int", Kind: confkit.Int, Default: "10"},
		confkit.Param{Name: "c.enum", Kind: confkit.Enum, Default: "x",
			Candidates: []string{"x", "y", "z"}},
		confkit.Param{Name: "d.dep", Kind: confkit.Enum, Default: "http",
			Candidates: []string{"http", "https"},
			DependsOn: []confkit.DependencyRule{
				{If: "https", Then: "d.addr", To: "secure-host"},
			}},
		confkit.Param{Name: "d.addr", Kind: confkit.String, Default: "plain-host"},
	)
	return r
}

func preRunWith(nodes map[string]int, usage map[string][]string, uncertain []string) PreRun {
	rep := agent.Report{
		NodesStarted:    nodes,
		Usage:           make(map[string]map[string]bool),
		UncertainParams: uncertain,
	}
	for entity, params := range usage {
		set := make(map[string]bool)
		for _, p := range params {
			set[p] = true
		}
		rep.Usage[entity] = set
	}
	return PreRun{Test: "T", Report: rep}
}

func TestPairsEnumeration(t *testing.T) {
	t.Parallel()
	s := testSchema()
	if got := len(Pairs(s.Lookup("a.bool"))); got != 1 {
		t.Fatalf("bool pairs = %d, want 1", got)
	}
	if got := len(Pairs(s.Lookup("b.int"))); got != 3 { // 3 auto values -> C(3,2)
		t.Fatalf("int pairs = %d, want 3", got)
	}
	if got := len(Pairs(s.Lookup("c.enum"))); got != 3 {
		t.Fatalf("enum pairs = %d, want 3", got)
	}
}

func TestInstancesRequireNodes(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(nil, map[string][]string{agent.UnitTestEntity: {"a.bool"}}, nil)
	if got := g.Instances(pre, InstancesOptions{}); len(got) != 0 {
		t.Fatalf("instances for a node-less test: %d", len(got))
	}
}

func TestInstancesUsageFiltering(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(
		map[string]int{"NN": 1, "DN": 2},
		map[string][]string{"DN": {"a.bool"}},
		nil,
	)
	insts := g.Instances(pre, InstancesOptions{})
	for _, in := range insts {
		if in.Param != "a.bool" || in.Group != "DN" {
			t.Fatalf("instance outside observed usage: %+v", in)
		}
	}
	// DN has 2 nodes: flip fwd/rev + rr fwd/rev = 4 per pair, 1 pair.
	if len(insts) != 4 {
		t.Fatalf("instances = %d, want 4", len(insts))
	}
}

func TestRoundRobinNeedsTwoNodes(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(
		map[string]int{"NN": 1},
		map[string][]string{"NN": {"a.bool"}},
		nil,
	)
	for _, in := range g.Instances(pre, InstancesOptions{}) {
		if in.Strategy == StrategyRoundRobin {
			t.Fatalf("round-robin generated for a single-node group: %+v", in)
		}
	}
}

func TestUncertaintyExclusion(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(
		map[string]int{"NN": 1},
		map[string][]string{"NN": {"a.bool", "b.int"}},
		[]string{"b.int"},
	)
	withFilter := g.Instances(pre, InstancesOptions{})
	withoutFilter := g.Instances(pre, InstancesOptions{SkipUncertaintyFilter: true})
	if len(withoutFilter) <= len(withFilter) {
		t.Fatalf("uncertainty filter removed nothing: %d vs %d", len(withoutFilter), len(withFilter))
	}
	for _, in := range withFilter {
		if in.Param == "b.int" {
			t.Fatalf("uncertain parameter still generated: %+v", in)
		}
	}
}

func TestQuarantineAndFilter(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(map[string]int{"NN": 1},
		map[string][]string{"NN": {"a.bool", "b.int"}}, nil)
	g.Quarantine("a.bool")
	for _, in := range g.Instances(pre, InstancesOptions{}) {
		if in.Param == "a.bool" {
			t.Fatal("quarantined parameter generated")
		}
	}
	g.SetFilter([]string{"a.bool"}) // filtered AND quarantined -> nothing
	if got := g.Instances(pre, InstancesOptions{}); len(got) != 0 {
		t.Fatalf("filter+quarantine left %d instances", len(got))
	}
	if g.InFilter("b.int") {
		t.Fatal("filter admits unlisted parameter")
	}
}

func TestAssignForFlip(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(map[string]int{"NN": 1, "DN": 2},
		map[string][]string{"DN": {"a.bool"}}, nil)
	in := Instance{Test: "T", Param: "a.bool", Group: "DN", Strategy: StrategyFlip,
		Pair: Pair{A: "true", B: "false"}}
	asn := g.AssignFor(in, &pre.Report)

	if asn.Hetero[agent.Key{NodeType: "DN", NodeIndex: 0, Param: "a.bool"}] != "true" ||
		asn.Hetero[agent.Key{NodeType: "DN", NodeIndex: 1, Param: "a.bool"}] != "true" {
		t.Fatalf("flip group values wrong: %v", asn.Hetero)
	}
	if asn.Hetero[agent.Key{NodeType: "NN", NodeIndex: 0, Param: "a.bool"}] != "false" ||
		asn.Hetero[agent.Key{NodeType: agent.UnitTestEntity, NodeIndex: 0, Param: "a.bool"}] != "false" {
		t.Fatalf("flip other-entity values wrong: %v", asn.Hetero)
	}

	// Reversed swaps the sides.
	in.Reversed = true
	asn = g.AssignFor(in, &pre.Report)
	if asn.Hetero[agent.Key{NodeType: "DN", NodeIndex: 0, Param: "a.bool"}] != "false" {
		t.Fatalf("reversed flip wrong: %v", asn.Hetero)
	}

	// Homogeneous arms are uniform.
	for _, v := range asn.Homo[0] {
		if v != "true" {
			t.Fatalf("homo arm A not uniform: %v", asn.Homo[0])
		}
	}
	for _, v := range asn.Homo[1] {
		if v != "false" {
			t.Fatalf("homo arm B not uniform: %v", asn.Homo[1])
		}
	}
}

func TestAssignForRoundRobin(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(map[string]int{"DN": 2},
		map[string][]string{"DN": {"a.bool"}}, nil)
	in := Instance{Test: "T", Param: "a.bool", Group: "DN", Strategy: StrategyRoundRobin,
		Pair: Pair{A: "true", B: "false"}}
	asn := g.AssignFor(in, &pre.Report)
	if asn.Hetero[agent.Key{NodeType: "DN", NodeIndex: 0, Param: "a.bool"}] != "true" ||
		asn.Hetero[agent.Key{NodeType: "DN", NodeIndex: 1, Param: "a.bool"}] != "false" {
		t.Fatalf("round robin alternation wrong: %v", asn.Hetero)
	}
}

func TestDependencyRulesApplied(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(map[string]int{"NN": 1},
		map[string][]string{"NN": {"d.dep"}}, nil)
	in := Instance{Test: "T", Param: "d.dep", Group: "NN", Strategy: StrategyFlip,
		Pair: Pair{A: "https", B: "http"}}
	asn := g.AssignFor(in, &pre.Report)
	if asn.Hetero[agent.Key{NodeType: "NN", NodeIndex: 0, Param: "d.addr"}] != "secure-host" {
		t.Fatalf("dependency rule not applied on the https side: %v", asn.Hetero)
	}
	if _, set := asn.Hetero[agent.Key{NodeType: agent.UnitTestEntity, NodeIndex: 0, Param: "d.addr"}]; set {
		t.Fatalf("dependency applied where the trigger value was not assigned: %v", asn.Hetero)
	}
}

func TestBuildPoolsPartition(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(map[string]int{"NN": 1, "DN": 2},
		map[string][]string{"NN": {"a.bool", "b.int", "c.enum"}, "DN": {"a.bool"}}, nil)
	insts := g.Instances(pre, InstancesOptions{})
	pools := BuildPools("T", insts, 0)

	seen := make(map[string]int)
	for _, p := range pools {
		params := make(map[string]bool)
		for _, in := range p.Members {
			if params[in.Param] {
				t.Fatalf("pool holds two instances of %s", in.Param)
			}
			params[in.Param] = true
			seen[in.String()]++
		}
	}
	if len(seen) != len(insts) {
		t.Fatalf("pools cover %d instances, want %d", len(seen), len(insts))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("instance %s appears %d times", k, n)
		}
	}
}

func TestBuildPoolsMaxSize(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(map[string]int{"NN": 1},
		map[string][]string{"NN": {"a.bool", "b.int", "c.enum", "d.dep"}}, nil)
	insts := g.Instances(pre, InstancesOptions{})
	for _, p := range BuildPools("T", insts, 2) {
		if len(p.Members) > 2 {
			t.Fatalf("pool exceeds max size: %d members", len(p.Members))
		}
	}
}

func TestPoolSplitAndMergedAssignment(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pre := preRunWith(map[string]int{"NN": 1},
		map[string][]string{"NN": {"a.bool", "b.int"}}, nil)
	insts := g.Instances(pre, InstancesOptions{})
	pools := BuildPools("T", insts, 0)
	if len(pools) == 0 || len(pools[0].Members) != 2 {
		t.Fatalf("unexpected pool shape: %v", pools)
	}
	asn := pools[0].Assignment(g, &pre.Report)
	foundA, foundB := false, false
	for k := range asn.Hetero {
		switch k.Param {
		case "a.bool":
			foundA = true
		case "b.int":
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("merged assignment misses a member: %v", asn.Hetero)
	}
	l, r := pools[0].Split()
	if len(l.Members)+len(r.Members) != len(pools[0].Members) {
		t.Fatal("split lost members")
	}
}

func TestCountsMonotonic(t *testing.T) {
	t.Parallel()
	g := New(testSchema())
	pres := []PreRun{
		preRunWith(map[string]int{"NN": 1, "DN": 2},
			map[string][]string{"NN": {"a.bool", "b.int"}, "DN": {"c.enum"}},
			[]string{"b.int"}),
		preRunWith(nil, nil, nil), // node-less test
	}
	orig := g.OriginalCount(len(pres), []string{"NN", "DN"})
	afterPre := g.CountAfterPreRun(pres)
	afterUnc := g.CountAfterUncertainty(pres)
	if !(orig >= afterPre && afterPre >= afterUnc && afterUnc > 0) {
		t.Fatalf("reduction not monotonic: %d >= %d >= %d", orig, afterPre, afterUnc)
	}
}

// Property: every pool built from arbitrary slot sizes partitions its
// input (no instance lost or duplicated, no duplicate params per pool).
func TestBuildPoolsPartitionProperty(t *testing.T) {
	t.Parallel()
	fn := func(sizes []uint8) bool {
		var insts []Instance
		for p, n := range sizes {
			cnt := int(n%5) + 1
			for i := 0; i < cnt; i++ {
				insts = append(insts, Instance{
					Test:  "T",
					Param: "param" + string(rune('a'+p%26)) + string(rune('0'+p/26)),
					Group: "G", Strategy: StrategyFlip,
					Pair: Pair{A: "1", B: "2"}, Reversed: i%2 == 1,
				})
			}
		}
		total := 0
		for _, pool := range BuildPools("T", insts, 0) {
			params := map[string]bool{}
			for _, in := range pool.Members {
				if params[in.Param] {
					return false
				}
				params[in.Param] = true
			}
			total += len(pool.Members)
		}
		return total == len(insts)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
