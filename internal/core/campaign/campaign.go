// Package campaign orchestrates a full ZebraConf run over one application
// (paper Fig. 1): pre-run every unit test, generate instances, execute them
// through pooled testing and the TestRunner, aggregate per-parameter
// verdicts, and score them against the registries' ground-truth labels the
// way the paper's authors scored reports by manual analysis.
package campaign

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/testgen"
	"zebraconf/internal/obs"
)

// Options tunes a campaign.
type Options struct {
	// Parallelism bounds concurrent unit tests (default GOMAXPROCS),
	// the analog of the paper's 20 containers per machine.
	Parallelism int
	// MaxPool bounds parameters per pooled run; 0 means unbounded (the
	// paper's setting: pool size up to the number of parameters).
	MaxPool int
	// DisablePooling runs every instance individually (ablation E10).
	DisablePooling bool
	// DisableRoundRobin drops the within-type assignment strategy
	// (ablation E12).
	DisableRoundRobin bool
	// DisableGate always runs confirmation rounds (ablation E11).
	DisableGate bool
	// Strategy selects the agent mapping strategy (ablation: attempt #3).
	Strategy agent.Strategy
	// QuarantineThreshold is the number of distinct failing unit tests
	// after which a parameter is marked unsafe and excluded from further
	// testing (§4's frequent-failer rule); 0 means 3.
	QuarantineThreshold int
	// Params restricts the campaign to a parameter subset (empty = all).
	Params []string
	// Tests restricts the campaign to a test subset (empty = all).
	Tests []string
	// Significance and MaxRounds pass through to the TestRunner.
	Significance float64
	MaxRounds    int
	// Obs receives metrics, trace spans, and progress updates for the
	// whole campaign; nil (the default) disables observability with only
	// a nil-check of overhead on the instrumented paths.
	Obs *obs.Observer
}

// ParamReport is the campaign's verdict for one reported parameter.
type ParamReport struct {
	Param string
	// Truth is the registry's ground-truth label; Correct is true when the
	// report matches it (reported parameters labelled unsafe).
	Truth   confkit.Safety
	Why     string
	Example string
	// Tests lists unit tests whose failure confirmed the parameter.
	Tests []string
	// MinP is the smallest confirming p-value observed.
	MinP float64
}

// Result aggregates one campaign.
type Result struct {
	App       string
	NumTests  int
	NumParams int

	PreRuns []testgen.PreRun
	Counts  testgen.ReductionCounts

	// Reported lists parameters the campaign flags as heterogeneous-unsafe,
	// sorted by name.
	Reported []ParamReport

	// Scoring against ground truth.
	TruePositives  int
	FalsePositives int
	Missed         []string // Truth==Unsafe but not reported

	// Hypothesis-testing statistics (§7.2).
	FirstTrialSignals    int
	FilteredByHypothesis int
	HomoInvalid          int

	// SkippedTests lists pre-run tests that could not be resolved again
	// in phase 2 (a registration inconsistency); they produced no
	// instances and the report surfaces them instead of silently
	// dropping them.
	SkippedTests []string

	// Mapping statistics (§6.2).
	ConfUsingTests int
	SharingTests   int
	UncertainTests int
	TotalUncertain int
	TotalConfs     int

	Elapsed time.Duration
}

// SharingRate is the §6.2 statistic: the fraction of configuration-using
// unit tests in which a unit-test-owned object was shared with a node.
func (r *Result) SharingRate() float64 {
	if r.ConfUsingTests == 0 {
		return 0
	}
	return float64(r.SharingTests) / float64(r.ConfUsingTests)
}

// paramStats accumulates evidence for one parameter during the run.
type paramStats struct {
	tests   map[string]bool
	minP    float64
	example string
}

// Run executes a campaign over app.
func Run(app *harness.App, opts Options) *Result {
	start := time.Now()
	if opts.Parallelism <= 0 {
		// Unit tests spend most of their time in scaled-time sleeps, so
		// oversubscribe the CPUs — the analog of the paper's 20 containers
		// per machine.
		opts.Parallelism = 4 * runtime.GOMAXPROCS(0)
		if opts.Parallelism < 16 {
			opts.Parallelism = 16
		}
	}
	if opts.QuarantineThreshold <= 0 {
		opts.QuarantineThreshold = 3
	}
	schema := app.Schema()
	gen := testgen.New(schema)
	if len(opts.Params) > 0 {
		gen.SetFilter(opts.Params)
	}
	run := runner.New(app, runner.Options{
		Significance: opts.Significance,
		MaxRounds:    opts.MaxRounds,
		DisableGate:  opts.DisableGate,
		Strategy:     opts.Strategy,
		Obs:          opts.Obs,
	})

	tests := selectTests(app, opts.Tests)
	res := &Result{App: app.Name, NumTests: len(tests), NumParams: schema.Len()}

	o := opts.Obs
	o.ProgressBegin(app.Name)
	defer o.ProgressFinish()
	campSpan := o.StartSpan("campaign", obs.NoSpan,
		obs.String("app", app.Name),
		obs.Int("tests", int64(len(tests))),
		obs.Int("params", int64(schema.Len())))
	defer campSpan.End()
	// phase opens a child span and times the phase into MPhaseSeconds;
	// call the returned func when the phase ends.
	phase := func(name string) (obs.SpanID, func()) {
		span := o.StartSpan("phase", campSpan.ID(),
			obs.String("app", app.Name), obs.String("phase", name))
		phaseStart := time.Now()
		return span.ID(), func() {
			o.Observe(obs.MPhaseSeconds, time.Since(phaseStart).Seconds(),
				"app", app.Name, "phase", name)
			span.End()
		}
	}

	// Phase 1: pre-run (paper §4).
	_, endPhase := phase("prerun")
	res.PreRuns = parallelMap(opts.Parallelism, o, app.Name, "prerun", tests, func(t *harness.UnitTest) testgen.PreRun {
		return run.PreRun(t)
	})
	endPhase()
	for _, pre := range res.PreRuns {
		if pre.Report.UsedConf {
			res.ConfUsingTests++
			if pre.Report.SharedConf {
				res.SharingTests++
			}
		}
		if pre.Report.UncertainConfs > 0 {
			res.UncertainTests++
		}
		res.TotalUncertain += pre.Report.UncertainConfs
		res.TotalConfs += pre.Report.TotalConfs
	}
	res.Counts.Original = gen.OriginalCount(len(tests), app.NodeTypes)
	res.Counts.AfterPreRun = gen.CountAfterPreRun(res.PreRuns)
	res.Counts.AfterUncertainty = gen.CountAfterUncertainty(res.PreRuns)
	baseline := run.Executions() // pre-run executions are not campaign instances

	// Phase 2: instance execution with pooling.
	var mu sync.Mutex
	perParam := make(map[string]*paramStats)
	// reachable tracks parameters that produced at least one instance: a
	// parameter no unit test exercises cannot be found by ZebraConf by
	// definition, so it does not count as missed (e.g. the HDFS corner-case
	// parameters an HBase suite never reaches).
	reachable := make(map[string]bool)

	confirmUnsafe := func(inst testgen.Instance, r runner.Result) {
		mu.Lock()
		defer mu.Unlock()
		ps := perParam[inst.Param]
		if ps == nil {
			ps = &paramStats{tests: make(map[string]bool), minP: 1}
			perParam[inst.Param] = ps
		}
		ps.tests[inst.Test] = true
		if r.PValue < ps.minP {
			ps.minP = r.PValue
		}
		if ps.example == "" {
			ps.example = r.HeteroMsg
		}
		if len(ps.tests) >= opts.QuarantineThreshold {
			if len(ps.tests) == opts.QuarantineThreshold {
				o.CounterAdd(obs.MQuarantine, 1, "app", app.Name)
			}
			gen.Quarantine(inst.Param)
		}
	}
	countVerdict := func(r runner.Result) {
		mu.Lock()
		defer mu.Unlock()
		if r.FirstTrialSignal {
			res.FirstTrialSignals++
		}
		switch r.Verdict {
		case runner.VerdictFiltered:
			res.FilteredByHypothesis++
		case runner.VerdictHomoInvalid:
			res.HomoInvalid++
		}
	}

	instancesSpan, endPhase := phase("instances")
	markDone := func(n int) {
		o.ProgressAddDone(int64(n))
		o.GaugeAdd(obs.MInstancesDone, int64(n), "app", app.Name)
	}
	parallelMap(opts.Parallelism, o, app.Name, "instances", res.PreRuns, func(pre testgen.PreRun) struct{} {
		test, err := app.Test(pre.Test)
		if err != nil {
			// A pre-run test that no longer resolves is a registration
			// inconsistency; surface it instead of silently dropping it.
			mu.Lock()
			res.SkippedTests = append(res.SkippedTests, pre.Test)
			mu.Unlock()
			o.CounterAdd(obs.MSkippedTests, 1, "app", app.Name)
			return struct{}{}
		}
		rep := pre.Report
		instances := gen.Instances(pre, testgen.InstancesOptions{DisableRoundRobin: opts.DisableRoundRobin})
		if len(instances) == 0 {
			return struct{}{}
		}
		mu.Lock()
		for _, inst := range instances {
			reachable[inst.Param] = true
		}
		mu.Unlock()
		o.ProgressAddTotal(int64(len(instances)))
		o.GaugeAdd(obs.MInstancesTotal, int64(len(instances)), "app", app.Name)
		testSpan := o.StartSpan("test", instancesSpan,
			obs.String("app", app.Name),
			obs.String("test", pre.Test),
			obs.Int("instances", int64(len(instances))))
		defer testSpan.End()

		// Within this test, skip further instances of a parameter already
		// confirmed unsafe here.
		confirmedHere := make(map[string]bool)
		leaf := func(parent obs.SpanID, inst testgen.Instance) {
			defer markDone(1)
			if confirmedHere[inst.Param] || gen.Quarantined(inst.Param) {
				return
			}
			asn := gen.AssignFor(inst, &rep)
			r := run.RunAssignmentIn(parent, test, asn, inst.String())
			countVerdict(r)
			if r.Verdict == runner.VerdictUnsafe {
				confirmedHere[inst.Param] = true
				confirmUnsafe(inst, r)
			}
		}

		if opts.DisablePooling {
			for _, inst := range instances {
				leaf(testSpan.ID(), inst)
			}
			return struct{}{}
		}

		var runPool func(parent obs.SpanID, depth int, p testgen.Pool)
		runPool = func(parent obs.SpanID, depth int, p testgen.Pool) {
			before := len(p.Members)
			p = p.FilterQuarantined(gen)
			p = filterConfirmed(p, confirmedHere)
			if dropped := before - len(p.Members); dropped > 0 {
				markDone(dropped)
			}
			switch len(p.Members) {
			case 0:
				return
			case 1:
				leaf(parent, p.Members[0])
				return
			}
			span := o.StartSpan("pool", parent,
				obs.String("app", app.Name),
				obs.String("test", p.Test),
				obs.Int("size", int64(len(p.Members))),
				obs.Int("depth", int64(depth)))
			defer span.End()
			asn := p.Assignment(gen, &rep)
			if !run.RunPooledIn(span.ID(), test, asn, p.Test+"/pool") {
				// Pooled heterogeneous run passed: all members cleared.
				span.SetAttr(obs.Bool("cleared", true))
				markDone(len(p.Members))
				return
			}
			o.CounterAdd(obs.MPoolSplits, 1, "app", app.Name)
			o.Observe(obs.MPoolDepth, float64(depth), "app", app.Name)
			a, b := p.Split()
			runPool(span.ID(), depth+1, a)
			runPool(span.ID(), depth+1, b)
		}
		for _, pool := range testgen.BuildPools(pre.Test, instances, opts.MaxPool) {
			runPool(testSpan.ID(), 0, pool)
		}
		return struct{}{}
	})
	endPhase()

	res.Counts.Executed = run.Executions() - baseline

	// Phase 3: verdicts and scoring.
	_, endPhase = phase("scoring")
	sort.Strings(res.SkippedTests)
	for param, ps := range perParam {
		p := schema.Lookup(param)
		report := ParamReport{Param: param, MinP: ps.minP, Example: ps.example}
		if p != nil {
			report.Truth = p.Truth
			report.Why = p.Why
		}
		for t := range ps.tests {
			report.Tests = append(report.Tests, t)
		}
		sort.Strings(report.Tests)
		res.Reported = append(res.Reported, report)
		if report.Truth == confkit.SafetyUnsafe {
			res.TruePositives++
		} else {
			res.FalsePositives++
		}
	}
	sort.Slice(res.Reported, func(i, j int) bool { return res.Reported[i].Param < res.Reported[j].Param })

	reported := make(map[string]bool, len(perParam))
	for param := range perParam {
		reported[param] = true
	}
	for _, p := range schema.Params() {
		if p.Truth == confkit.SafetyUnsafe && !reported[p.Name] && gen.InFilter(p.Name) && reachable[p.Name] {
			res.Missed = append(res.Missed, p.Name)
		}
	}
	sort.Strings(res.Missed)
	endPhase()

	res.Elapsed = time.Since(start)
	campSpan.SetAttr(
		obs.Int("reported", int64(len(res.Reported))),
		obs.Int("executed", res.Counts.Executed),
		obs.Int("skipped_tests", int64(len(res.SkippedTests))))
	return res
}

// filterConfirmed drops pool members whose parameter is already confirmed
// unsafe within this test.
func filterConfirmed(p testgen.Pool, confirmed map[string]bool) testgen.Pool {
	out := testgen.Pool{Test: p.Test}
	for _, in := range p.Members {
		if !confirmed[in.Param] {
			out.Members = append(out.Members, in)
		}
	}
	return out
}

// selectTests resolves the test subset.
func selectTests(app *harness.App, names []string) []*harness.UnitTest {
	if len(names) == 0 {
		out := make([]*harness.UnitTest, len(app.Tests))
		for i := range app.Tests {
			out[i] = &app.Tests[i]
		}
		return out
	}
	var out []*harness.UnitTest
	for _, name := range names {
		if t, err := app.Test(name); err == nil {
			out = append(out, t)
		}
	}
	return out
}

// parallelMap runs fn over items with bounded parallelism, preserving
// order. When o is live it records how long each item waited for a
// worker slot (the semaphore queue-wait histogram).
func parallelMap[I any, O any](parallelism int, o *obs.Observer, app, stage string, items []I, fn func(I) O) []O {
	out := make([]O, len(items))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		var waitStart time.Time
		if o != nil {
			waitStart = time.Now()
		}
		sem <- struct{}{}
		if o != nil {
			o.Observe(obs.MSemWaitSeconds, time.Since(waitStart).Seconds(),
				"app", app, "stage", stage)
		}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fn(items[i])
		}(i)
	}
	wg.Wait()
	return out
}
