// Package campaign orchestrates a full ZebraConf run over one application
// (paper Fig. 1): pre-run every unit test, generate instances, execute them
// through pooled testing and the TestRunner, aggregate per-parameter
// verdicts, and score them against the registries' ground-truth labels the
// way the paper's authors scored reports by manual analysis.
package campaign

import (
	"runtime"
	"sync"
	"time"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/sched"
	"zebraconf/internal/core/stats"
	"zebraconf/internal/core/testgen"
	"zebraconf/internal/obs"
)

// Options tunes a campaign.
type Options struct {
	// Parallelism bounds concurrent unit tests (default GOMAXPROCS),
	// the analog of the paper's 20 containers per machine.
	Parallelism int
	// MaxPool bounds parameters per pooled run; 0 means unbounded (the
	// paper's setting: pool size up to the number of parameters).
	MaxPool int
	// DisablePooling runs every instance individually (ablation E10).
	DisablePooling bool
	// DisableRoundRobin drops the within-type assignment strategy
	// (ablation E12).
	DisableRoundRobin bool
	// DisableGate always runs confirmation rounds (ablation E11).
	DisableGate bool
	// Strategy selects the agent mapping strategy (ablation: attempt #3).
	Strategy agent.Strategy
	// QuarantineThreshold is the number of distinct failing unit tests
	// after which a parameter is marked unsafe and excluded from further
	// testing (§4's frequent-failer rule); 0 means 3.
	QuarantineThreshold int
	// Params restricts the campaign to a parameter subset (empty = all).
	Params []string
	// Tests restricts the campaign to a test subset (empty = all).
	// Names that do not resolve are surfaced in Result.SkippedTests —
	// a typo must not silently shrink the campaign.
	Tests []string
	// DisableExecCache turns off execution memoization, re-running every
	// homogeneous arm and pooled run (the -exec-cache=false ablation).
	// Seeds are canonical either way, so the reported parameter set is
	// identical with the cache on or off.
	DisableExecCache bool
	// CacheBackend, when non-nil (and the cache enabled), backs this
	// campaign's in-process memo cache with a second tier — typically
	// the persistent cross-campaign disk store. A backend hit can only
	// replay a byte-identical execution, so the reported set is
	// unaffected; a warm backend just skips the work.
	CacheBackend memo.Backend
	// Significance and MaxRounds pass through to the TestRunner.
	Significance float64
	MaxRounds    int
	// Seq selects the confirmation-trial stopping rule (the -seq flag):
	// the zero value is stats.SeqSPRT — sequential early stopping on by
	// default — and stats.SeqFixed restores the fixed-budget ablation.
	Seq stats.SeqMode
	// SeqMargin is the budget-reallocation margin passed to the runner:
	// a budget-exhausted instance whose p-value is within this factor of
	// the significance level draws extension rounds from the campaign's
	// trial budget pool. Zero means the runner default (50); negative
	// disables reallocation.
	SeqMargin float64
	// Seed is the campaign's base seed, mixed into every per-run seed
	// derivation so whole campaigns are reproducible-by-flag across both
	// the in-process and distributed execution paths. Zero is simply the
	// default base.
	Seed int64
	// Obs receives metrics, trace spans, and progress updates for the
	// whole campaign; nil (the default) disables observability with only
	// a nil-check of overhead on the instrumented paths.
	Obs *obs.Observer
	// SchedPolicy selects phase 2's dispatch order (sched.FIFO, the zero
	// value, keeps declaration order; sched.LPT dispatches
	// longest-predicted-first to shrink the makespan).
	SchedPolicy sched.Policy
	// Stream replaces the phase-1 barrier with a pipeline: a test's work
	// item is built and dispatched the moment its pre-run finishes, so
	// instance execution overlaps the pre-run tail. Both phases share
	// one Parallelism budget, so total load — and with it the timing
	// behaviour of latency-sensitive tests — matches the barrier path.
	Stream bool
	// Profile, when non-nil, supplies per-(app, test) duration
	// predictions from earlier campaigns and receives this campaign's
	// per-item durations. A cold (or absent) profile falls back to
	// pre-run durations measured this campaign.
	Profile *sched.Profile
	// EvidenceMax is the campaign-wide evidence byte budget: positive
	// enables per-instance forensic capture (heterogeneous log + read
	// trace, arm identities, repro command) degrading to verdict-only
	// records past the budget; negative captures without bound; zero
	// (the default) disables evidence entirely. In distributed mode the
	// budget applies per worker process.
	EvidenceMax int64
	// SelectCoverage enables coverage-driven test selection: with a warm
	// CoverageIndex, tests whose recorded read set is disjoint from the
	// campaign's parameter set are skipped entirely (pre-run included).
	// Selection is conservative — a test with no valid index entry always
	// runs, and any explicitly targeted parameter with no coverage edge
	// anywhere disables selection for the whole campaign (the
	// full-dispatch fallback must reach every test). The reported
	// parameter set is invariant under selection: a skipped test read
	// none of the campaign's parameters, so it could only have produced
	// zero instances for them.
	SelectCoverage bool
	// CoverageIndex is the previous run's param→tests index (nil = cold:
	// no selection, full fallback dispatch for explicit params).
	CoverageIndex *coverage.Index
	// CoverageKey digests the execution environment beyond schema and
	// seed (the CLI's verdict-relevant flags); index entries recorded
	// under a different key are treated as stale.
	CoverageKey string
	// Overrides replaces schema parameter defaults (param → new default)
	// before anything reads the schema — the -override flag, used by
	// -mode rerun smoke tests to simulate a changed seeded default. The
	// app itself is not mutated; its Schema constructor is wrapped.
	Overrides map[string]string
	// Distributor, when non-nil, executes phase 2's work items instead
	// of the in-process worker pool — the dist coordinator plugs in
	// here, sharding items across worker subprocesses. Begin announces
	// the phase span and total item count, Submit hands items over
	// incrementally (allowing the streaming pipeline to dispatch items
	// as their pre-runs finish), and Drain blocks for the results, one
	// per resolved item in any order; implementations handle their own
	// errors (an absent item contributes nothing to the merged result).
	Distributor Distributor
}

// Distributor executes phase-2 work items out of process. Exactly one
// Begin, then Submit for every item counted by Begin, then one Drain.
type Distributor interface {
	Begin(parent obs.SpanID, total int)
	Submit(item WorkItem)
	Drain() []ItemResult
}

// ParamReport is the campaign's verdict for one reported parameter.
type ParamReport struct {
	Param string
	// Truth is the registry's ground-truth label; Correct is true when the
	// report matches it (reported parameters labelled unsafe).
	Truth   confkit.Safety
	Why     string
	Example string
	// Tests lists unit tests whose failure confirmed the parameter.
	Tests []string
	// MinP is the smallest confirming p-value observed.
	MinP float64
	// Rounds, Trials, and StopReason describe the first confirming
	// instance (by item order): how many confirmation rounds it ran, how
	// many unit-test trials those consumed, and why the sequential test
	// stopped (convicted / futility / budget).
	Rounds     int    `json:",omitempty"`
	Trials     int64  `json:",omitempty"`
	StopReason string `json:",omitempty"`
	// Evidence is the forensic record of the first confirming instance
	// (by item order), nil unless the campaign ran with EvidenceMax set.
	Evidence *forensics.Evidence `json:",omitempty"`
}

// Result aggregates one campaign.
type Result struct {
	App       string
	NumTests  int
	NumParams int

	PreRuns []testgen.PreRun
	Counts  testgen.ReductionCounts

	// Reported lists parameters the campaign flags as heterogeneous-unsafe,
	// sorted by name.
	Reported []ParamReport

	// Scoring against ground truth.
	TruePositives  int
	FalsePositives int
	Missed         []string // Truth==Unsafe but not reported

	// Hypothesis-testing statistics (§7.2).
	FirstTrialSignals    int
	FilteredByHypothesis int
	HomoInvalid          int

	// ConfirmationTrials counts unit-test trials spent in confirmation
	// rounds (rounds after the screening round) across every leaf
	// instance. Derived exactly from each instance's trial count — every
	// round costs Trials/(Rounds+1) trials, Rounds of which are
	// confirmation — so the figure is invariant across execution paths
	// and is the denominator the sequential-stopping ablation compares.
	ConfirmationTrials int64

	// SkippedTests lists pre-run tests that could not be resolved again
	// in phase 2 (a registration inconsistency); they produced no
	// instances and the report surfaces them instead of silently
	// dropping them.
	SkippedTests []string

	// QuarantinedItems lists unit tests whose phase-2 work item the
	// distributed coordinator abandoned after repeated worker crashes or
	// deadline kills; their instances did not run, so the report
	// surfaces them as a coverage gap. Always empty in-process.
	QuarantinedItems []string

	// WorkerStalls counts workers the distributed coordinator observed
	// silent past the heartbeat stall threshold (advisory: stalled
	// workers are not killed, but a stall during a run is a health
	// signal the report surfaces next to quarantine). Always zero
	// in-process.
	WorkerStalls int64

	// LeakedGoroutines counts unit-test goroutines the harness had to
	// abandon after a timeout during this campaign. The in-process path
	// cannot kill them — they keep running and mutating their (isolated,
	// but live) environment — which is exactly the hazard worker-process
	// isolation eliminates; any nonzero count is flagged in the report.
	LeakedGoroutines int64

	// Mapping statistics (§6.2).
	ConfUsingTests int
	SharingTests   int
	UncertainTests int
	TotalUncertain int
	TotalConfs     int

	// DeselectedTests lists tests coverage-driven selection skipped
	// entirely (sorted): their indexed read sets were disjoint from the
	// campaign's parameter set. The index writer carries their previous
	// entries forward so a later run can skip them again.
	DeselectedTests []string

	// Coverage is the campaign's read-coverage collector: every
	// execution's deduplicated read set (pre-runs with callsites,
	// phase-2 runs, cache hits replayed from memoized reads, worker
	// edges folded from item results). Freeze it with coverage.Build.
	Coverage *coverage.Collector `json:"-"`
	// Items holds the raw per-test item results, for the rerun replay
	// store. Not serialized with the result.
	Items []ItemResult `json:"-"`

	Elapsed time.Duration
}

// SharingRate is the §6.2 statistic: the fraction of configuration-using
// unit tests in which a unit-test-owned object was shared with a node.
func (r *Result) SharingRate() float64 {
	if r.ConfUsingTests == 0 {
		return 0
	}
	return float64(r.SharingTests) / float64(r.ConfUsingTests)
}

// paramStats accumulates evidence for one parameter during the run.
type paramStats struct {
	tests    map[string]bool
	minP     float64
	example  string
	evidence *forensics.Evidence
	rounds   int
	trials   int64
	stop     string
}

// DefaultParallelism is the default concurrent unit-test budget: the
// tests spend most of their time in scaled-time sleeps, so oversubscribe
// the CPUs — the analog of the paper's 20 containers per machine. The
// distributed executor divides this same budget across its workers, so
// total load (and with it the timing behaviour of latency-sensitive
// tests) matches the in-process path.
func DefaultParallelism() int {
	p := 4 * runtime.GOMAXPROCS(0)
	if p < 16 {
		p = 16
	}
	return p
}

// Run executes a campaign over app.
func Run(app *harness.App, opts Options) *Result {
	start := time.Now()
	if opts.Parallelism <= 0 {
		opts.Parallelism = DefaultParallelism()
	}
	if opts.QuarantineThreshold <= 0 {
		opts.QuarantineThreshold = 3
	}
	app = OverrideApp(app, opts.Overrides)
	schema := app.Schema()
	gen := testgen.New(schema)
	if len(opts.Params) > 0 {
		gen.SetFilter(opts.Params)
	}
	// The execution cache lives for exactly one campaign: canonical
	// homogeneous arms repeat across the instances of each test, and a
	// fresh per-campaign cache keeps reuse sound without any invalidation
	// story. The distributed path builds its caches worker-side instead
	// (backed by the coordinator's shared cache).
	var cache *memo.Cache
	if !opts.DisableExecCache {
		cache = memo.NewCache(app.Name, opts.CacheBackend, opts.Obs)
	}
	cov := coverage.NewCollector()
	// The trial budget pool spans the whole campaign: rounds saved by
	// early stops anywhere fund extension rounds for marginal instances
	// anywhere else. Fixed mode gets no pool — the ablation must spend
	// exactly the legacy budget.
	var pool *stats.BudgetPool
	if opts.Seq != stats.SeqFixed {
		pool = stats.NewBudgetPool()
	}
	run := runner.New(app, runner.Options{
		Significance: opts.Significance,
		MaxRounds:    opts.MaxRounds,
		DisableGate:  opts.DisableGate,
		Seq:          opts.Seq,
		SeqMargin:    opts.SeqMargin,
		Pool:         pool,
		Strategy:     opts.Strategy,
		BaseSeed:     opts.Seed,
		Obs:          opts.Obs,
		Cache:        cache,
		// A backend means the cache outlives this campaign (disk store,
		// server tier), so label-seeded trials are worth memoizing too:
		// they only ever hit on resubmission of an unchanged campaign.
		CacheLabelSeeded: opts.CacheBackend != nil,
		Evidence:     forensics.NewRecorder(app.Name, opts.EvidenceMax, opts.Obs),
		Coverage:     cov,
	})

	tests, unknown := selectTests(app, opts.Tests)
	force, deselected := coveragePlan(schema, opts, tests)
	if len(deselected) > 0 {
		tests = dropTests(tests, deselected)
	}
	res := &Result{App: app.Name, NumTests: len(tests), NumParams: schema.Len(),
		DeselectedTests: deselected, Coverage: cov}

	o := opts.Obs
	if len(unknown) > 0 {
		// Requested tests that do not exist produce no instances; surface
		// them exactly like a phase-2 lookup failure would be.
		res.SkippedTests = append(res.SkippedTests, unknown...)
		o.CounterAdd(obs.MSkippedTests, int64(len(unknown)), "app", app.Name)
	}
	o.ProgressBegin(app.Name)
	defer o.ProgressFinish()
	o.Stat().CampaignBegin(app.Name, opts.Parallelism)
	o.Event(obs.EvCampaignStart,
		obs.String("app", app.Name),
		obs.Int("tests", int64(len(tests))),
		obs.Int("params", int64(schema.Len())))
	campSpan := o.StartSpan("campaign", obs.NoSpan,
		obs.String("app", app.Name),
		obs.Int("tests", int64(len(tests))),
		obs.Int("params", int64(schema.Len())))
	defer campSpan.End()
	// phase opens a child span, times the phase into MPhaseSeconds, and
	// brackets it in the event log and live status; call the returned
	// func when the phase ends.
	phase := func(name string) (obs.SpanID, func()) {
		span := o.StartSpan("phase", campSpan.ID(),
			obs.String("app", app.Name), obs.String("phase", name))
		o.Event(obs.EvPhaseStart,
			obs.String("app", app.Name), obs.String("phase", name))
		o.Stat().PhaseStart(name)
		phaseStart := time.Now()
		return span.ID(), func() {
			o.Observe(obs.MPhaseSeconds, time.Since(phaseStart).Seconds(),
				"app", app.Name, "phase", name)
			o.Event(obs.EvPhaseFinish,
				obs.String("app", app.Name), obs.String("phase", name),
				obs.Float("elapsed_s", time.Since(phaseStart).Seconds()))
			o.Stat().PhaseFinish(name)
			span.End()
		}
	}

	// Phases 1 and 2: pre-run every test, build and schedule work items,
	// execute their instances. Barriered (default): all pre-runs finish,
	// items are ranked by predicted duration, then dispatched. Streamed:
	// one policy-aware queue feeds a single worker pool, so a test's
	// item dispatches the moment its pre-run finishes and instance
	// execution overlaps the pre-run tail.
	ex := &campaignExec{app: app, gen: gen, run: run, opts: opts, o: o, phase: phase, force: force}
	var itemResults []ItemResult
	var localLeaks int64
	if opts.Stream {
		res.PreRuns, itemResults, localLeaks = ex.runStreamed(tests)
	} else {
		res.PreRuns, itemResults, localLeaks = ex.runBarriered(tests)
	}
	// Fold worker-produced coverage edges into the collector: distributed
	// phase-2 executions happen out of process, and their read sets ride
	// back on the item results. In-process items carry no Coverage (the
	// collector observed them directly), so this is a no-op locally.
	for _, it := range itemResults {
		cov.Observe(it.Test, it.Coverage)
	}
	res.Items = itemResults
	for _, pre := range res.PreRuns {
		if pre.Report.UsedConf {
			res.ConfUsingTests++
			if pre.Report.SharedConf {
				res.SharingTests++
			}
		}
		if pre.Report.UncertainConfs > 0 {
			res.UncertainTests++
		}
		res.TotalUncertain += pre.Report.UncertainConfs
		res.TotalConfs += pre.Report.TotalConfs
	}
	res.Counts.Original = gen.OriginalCount(len(tests), app.NodeTypes)
	res.Counts.AfterPreRun = gen.CountAfterPreRun(res.PreRuns)
	res.Counts.AfterUncertainty = gen.CountAfterUncertainty(res.PreRuns)

	// Phase 3: merge item results and score against ground truth.
	_, endPhase := phase("scoring")
	mergeResults(res, schema, gen, itemResults, opts)
	if opts.Distributor == nil {
		res.LeakedGoroutines = localLeaks
	}
	endPhase()

	res.Elapsed = time.Since(start)
	campSpan.SetAttr(
		obs.Int("reported", int64(len(res.Reported))),
		obs.Int("executed", res.Counts.Executed),
		obs.Int("executions_saved", res.Counts.ExecutionsSaved),
		obs.Int("skipped_tests", int64(len(res.SkippedTests))))
	o.Stat().CampaignFinish()
	o.Event(obs.EvCampaignFinish,
		obs.String("app", app.Name),
		obs.Int("reported", int64(len(res.Reported))),
		obs.Int("executions", res.Counts.Executed),
		obs.Int("executions_saved", res.Counts.ExecutionsSaved),
		obs.Float("elapsed_s", res.Elapsed.Seconds()))
	return res
}

// campaignExec bundles the state phases 1 and 2 share across the
// barriered and streamed execution paths.
type campaignExec struct {
	app   *harness.App
	gen   *testgen.Generator
	run   *runner.Runner
	opts  Options
	o     *obs.Observer
	phase func(name string) (obs.SpanID, func())
	// force maps a test name to the parameters its work item must
	// generate instances for even without pre-run read evidence (the
	// coverage fallback; see coveragePlan).
	force map[string][]string
}

// runBarriered is the two-phase path: every pre-run completes, items are
// built and ranked by predicted duration, then dispatched as one batch.
func (c *campaignExec) runBarriered(tests []*harness.UnitTest) (pres []testgen.PreRun, itemResults []ItemResult, localLeaks int64) {
	app, o, opts := c.app, c.o, c.opts

	type timedPre struct {
		pre  testgen.PreRun
		secs float64
	}
	_, endPhase := c.phase("prerun")
	tp := parallelMap(opts.Parallelism, o, app.Name, "prerun", tests, func(t *harness.UnitTest) timedPre {
		pre, d := c.run.PreRunTimed(t)
		return timedPre{pre: pre, secs: d.Seconds()}
	})
	endPhase()
	pres = make([]testgen.PreRun, len(tp))
	items := make([]WorkItem, len(tp))
	preds := make([]float64, len(tp))
	for i, x := range tp {
		pres[i] = x.pre
		items[i] = WorkItem{ID: i, Test: x.pre.Test, PreRun: x.pre, ForceParams: c.force[x.pre.Test]}
		items[i].PredSeconds, items[i].PredTrials = c.predict(items[i], x.secs)
		preds[i] = items[i].PredSeconds
		o.Stat().ItemQueued(items[i].ID, items[i].Test, items[i].PredSeconds)
	}
	order, moved := sched.Rank(opts.SchedPolicy, preds)

	span, endPhase := c.phase("instances")
	defer endPhase()
	if opts.Distributor != nil {
		// The dist queue re-ranks under its own policy, so the reorder
		// statistic is counted at its pops, not here; the LPT submission
		// order still seeds the shards balanced.
		opts.Distributor.Begin(span, len(items))
		for _, i := range order {
			opts.Distributor.Submit(items[i])
		}
		return pres, opts.Distributor.Drain(), 0
	}
	if moved > 0 {
		o.CounterAdd(obs.MSchedReordered, int64(moved), "app", app.Name)
	}
	ordered := make([]WorkItem, len(order))
	for pos, i := range order {
		ordered[pos] = items[i]
	}
	onUnsafe := c.unsafeHook()
	// Abandoned-goroutine accounting: per-item deltas double-count
	// under in-process concurrency, so take one campaign-wide delta.
	leakBase := harness.AbandonedGoroutines()
	itemResults = parallelMap(opts.Parallelism, o, app.Name, "instances", ordered, func(it WorkItem) ItemResult {
		t0 := time.Now()
		c.noteDispatch(it)
		r := ExecuteItem(app, c.gen, c.run, opts, span, it, onUnsafe, false)
		c.observeItem(it, time.Since(t0), r.Executions)
		return r
	})
	return pres, itemResults, harness.AbandonedGoroutines() - leakBase
}

// predict estimates one item's wall clock in seconds and its expected
// trial count: the profile's estimate for this (app, test) when warm,
// else the pre-run duration scaled by the item's instance count (each
// instance re-runs the test at least once) — the cold-campaign
// fallback. Trials come from the profile's expected-trial EWMA so LPT
// ranks by what sequential stopping actually costs, not the worst case.
func (c *campaignExec) predict(item WorkItem, preSeconds float64) (secs, trials float64) {
	trials, _ = c.opts.Profile.PredictTrials(c.app.Name, item.Test)
	if s, ok := c.opts.Profile.Predict(c.app.Name, item.Test); ok {
		return s, trials
	}
	n := len(c.gen.Instances(item.PreRun, testgen.InstancesOptions{DisableRoundRobin: c.opts.DisableRoundRobin}))
	return preSeconds * float64(n+1), trials
}

// noteDispatch marks an item entering execution on the in-process pool
// (the distributed coordinator emits its own dispatch events with
// worker attribution).
func (c *campaignExec) noteDispatch(item WorkItem) {
	c.o.Event(obs.EvItemDispatch,
		obs.String("app", c.app.Name),
		obs.Int("item", int64(item.ID)),
		obs.String("test", item.Test))
	c.o.Stat().ItemStart(item.ID)
}

// observeItem feeds one completed item's wall clock and trial count back
// into the profile, the predicted-vs-actual accuracy histogram, the
// event log, and the live status ETA.
func (c *campaignExec) observeItem(item WorkItem, elapsed time.Duration, executions int64) {
	secs := elapsed.Seconds()
	c.opts.Profile.RecordTrials(c.app.Name, item.Test, secs, executions)
	if item.PredSeconds > 0 {
		c.o.Observe(obs.MSchedPredRatio, secs/item.PredSeconds, "app", c.app.Name)
	}
	c.o.Event(obs.EvItemComplete,
		obs.String("app", c.app.Name),
		obs.Int("item", int64(item.ID)),
		obs.String("test", item.Test),
		obs.Float("elapsed_s", secs))
	c.o.Stat().ItemDone(item.ID, secs)
}

// unsafeHook returns the live cross-test quarantine hook used by the
// in-process paths: once a parameter is confirmed by QuarantineThreshold
// distinct tests (§4's frequent-failer rule), remaining items skip its
// instances. The distributed path implements the same rule with a
// coordinator-to-worker broadcast instead.
func (c *campaignExec) unsafeHook() func(testgen.Instance, runner.Result) {
	var mu sync.Mutex
	confirmedBy := make(map[string]map[string]bool)
	return func(inst testgen.Instance, r runner.Result) {
		mu.Lock()
		defer mu.Unlock()
		set := confirmedBy[inst.Param]
		if set == nil {
			set = make(map[string]bool)
			confirmedBy[inst.Param] = set
		}
		set[inst.Test] = true
		if len(set) == c.opts.QuarantineThreshold {
			c.o.CounterAdd(obs.MQuarantine, 1, "app", c.app.Name)
			c.o.Event(obs.EvParamQuarantined,
				obs.String("app", c.app.Name), obs.String("param", inst.Param))
			c.o.Stat().ParamQuarantined(inst.Param)
			c.gen.Quarantine(inst.Param)
		}
	}
}

// filterConfirmed drops pool members whose parameter is already confirmed
// unsafe within this test.
func filterConfirmed(p testgen.Pool, confirmed map[string]bool) testgen.Pool {
	out := testgen.Pool{Test: p.Test}
	for _, in := range p.Members {
		if !confirmed[in.Param] {
			out.Members = append(out.Members, in)
		}
	}
	return out
}

// selectTests resolves the test subset. Names that do not resolve are
// returned in unknown rather than silently dropped: a typo in -tests
// must shrink the campaign loudly, not quietly.
func selectTests(app *harness.App, names []string) (tests []*harness.UnitTest, unknown []string) {
	if len(names) == 0 {
		tests = make([]*harness.UnitTest, len(app.Tests))
		for i := range app.Tests {
			tests[i] = &app.Tests[i]
		}
		return tests, nil
	}
	for _, name := range names {
		t, err := app.Test(name)
		if err != nil {
			unknown = append(unknown, name)
			continue
		}
		tests = append(tests, t)
	}
	return tests, unknown
}

// parallelMap runs fn over items with bounded parallelism, preserving
// order. When o is live it records how long each item waited for a
// worker slot (the semaphore queue-wait histogram) and how long it then
// ran (the per-item run-time histogram) — wait vs run is what makes
// tail latency attributable to scheduling rather than to slow items.
func parallelMap[I any, O any](parallelism int, o *obs.Observer, app, stage string, items []I, fn func(I) O) []O {
	out := make([]O, len(items))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		var waitStart time.Time
		if o != nil {
			waitStart = time.Now()
		}
		sem <- struct{}{}
		if o != nil {
			o.Observe(obs.MSemWaitSeconds, time.Since(waitStart).Seconds(),
				"app", app, "stage", stage)
		}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if o == nil {
				out[i] = fn(items[i])
				return
			}
			runStart := time.Now()
			out[i] = fn(items[i])
			o.Observe(obs.MItemRunSeconds, time.Since(runStart).Seconds(),
				"app", app, "stage", stage)
		}(i)
	}
	wg.Wait()
	return out
}
