// Package campaign orchestrates a full ZebraConf run over one application
// (paper Fig. 1): pre-run every unit test, generate instances, execute them
// through pooled testing and the TestRunner, aggregate per-parameter
// verdicts, and score them against the registries' ground-truth labels the
// way the paper's authors scored reports by manual analysis.
package campaign

import (
	"runtime"
	"sync"
	"time"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/memo"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/testgen"
	"zebraconf/internal/obs"
)

// Options tunes a campaign.
type Options struct {
	// Parallelism bounds concurrent unit tests (default GOMAXPROCS),
	// the analog of the paper's 20 containers per machine.
	Parallelism int
	// MaxPool bounds parameters per pooled run; 0 means unbounded (the
	// paper's setting: pool size up to the number of parameters).
	MaxPool int
	// DisablePooling runs every instance individually (ablation E10).
	DisablePooling bool
	// DisableRoundRobin drops the within-type assignment strategy
	// (ablation E12).
	DisableRoundRobin bool
	// DisableGate always runs confirmation rounds (ablation E11).
	DisableGate bool
	// Strategy selects the agent mapping strategy (ablation: attempt #3).
	Strategy agent.Strategy
	// QuarantineThreshold is the number of distinct failing unit tests
	// after which a parameter is marked unsafe and excluded from further
	// testing (§4's frequent-failer rule); 0 means 3.
	QuarantineThreshold int
	// Params restricts the campaign to a parameter subset (empty = all).
	Params []string
	// Tests restricts the campaign to a test subset (empty = all).
	// Names that do not resolve are surfaced in Result.SkippedTests —
	// a typo must not silently shrink the campaign.
	Tests []string
	// DisableExecCache turns off execution memoization, re-running every
	// homogeneous arm and pooled run (the -exec-cache=false ablation).
	// Seeds are canonical either way, so the reported parameter set is
	// identical with the cache on or off.
	DisableExecCache bool
	// Significance and MaxRounds pass through to the TestRunner.
	Significance float64
	MaxRounds    int
	// Seed is the campaign's base seed, mixed into every per-run seed
	// derivation so whole campaigns are reproducible-by-flag across both
	// the in-process and distributed execution paths. Zero is simply the
	// default base.
	Seed int64
	// Obs receives metrics, trace spans, and progress updates for the
	// whole campaign; nil (the default) disables observability with only
	// a nil-check of overhead on the instrumented paths.
	Obs *obs.Observer
	// Distribute, when non-nil, executes phase 2's work items instead of
	// the in-process worker pool — the dist coordinator plugs in here,
	// sharding the items across worker subprocesses. It receives the
	// phase span and the full item list and returns one ItemResult per
	// item, in any order; implementations handle their own errors (an
	// absent item simply contributes nothing to the merged result).
	Distribute func(parent obs.SpanID, items []WorkItem) []ItemResult
}

// ParamReport is the campaign's verdict for one reported parameter.
type ParamReport struct {
	Param string
	// Truth is the registry's ground-truth label; Correct is true when the
	// report matches it (reported parameters labelled unsafe).
	Truth   confkit.Safety
	Why     string
	Example string
	// Tests lists unit tests whose failure confirmed the parameter.
	Tests []string
	// MinP is the smallest confirming p-value observed.
	MinP float64
}

// Result aggregates one campaign.
type Result struct {
	App       string
	NumTests  int
	NumParams int

	PreRuns []testgen.PreRun
	Counts  testgen.ReductionCounts

	// Reported lists parameters the campaign flags as heterogeneous-unsafe,
	// sorted by name.
	Reported []ParamReport

	// Scoring against ground truth.
	TruePositives  int
	FalsePositives int
	Missed         []string // Truth==Unsafe but not reported

	// Hypothesis-testing statistics (§7.2).
	FirstTrialSignals    int
	FilteredByHypothesis int
	HomoInvalid          int

	// SkippedTests lists pre-run tests that could not be resolved again
	// in phase 2 (a registration inconsistency); they produced no
	// instances and the report surfaces them instead of silently
	// dropping them.
	SkippedTests []string

	// QuarantinedItems lists unit tests whose phase-2 work item the
	// distributed coordinator abandoned after repeated worker crashes or
	// deadline kills; their instances did not run, so the report
	// surfaces them as a coverage gap. Always empty in-process.
	QuarantinedItems []string

	// LeakedGoroutines counts unit-test goroutines the harness had to
	// abandon after a timeout during this campaign. The in-process path
	// cannot kill them — they keep running and mutating their (isolated,
	// but live) environment — which is exactly the hazard worker-process
	// isolation eliminates; any nonzero count is flagged in the report.
	LeakedGoroutines int64

	// Mapping statistics (§6.2).
	ConfUsingTests int
	SharingTests   int
	UncertainTests int
	TotalUncertain int
	TotalConfs     int

	Elapsed time.Duration
}

// SharingRate is the §6.2 statistic: the fraction of configuration-using
// unit tests in which a unit-test-owned object was shared with a node.
func (r *Result) SharingRate() float64 {
	if r.ConfUsingTests == 0 {
		return 0
	}
	return float64(r.SharingTests) / float64(r.ConfUsingTests)
}

// paramStats accumulates evidence for one parameter during the run.
type paramStats struct {
	tests   map[string]bool
	minP    float64
	example string
}

// DefaultParallelism is the default concurrent unit-test budget: the
// tests spend most of their time in scaled-time sleeps, so oversubscribe
// the CPUs — the analog of the paper's 20 containers per machine. The
// distributed executor divides this same budget across its workers, so
// total load (and with it the timing behaviour of latency-sensitive
// tests) matches the in-process path.
func DefaultParallelism() int {
	p := 4 * runtime.GOMAXPROCS(0)
	if p < 16 {
		p = 16
	}
	return p
}

// Run executes a campaign over app.
func Run(app *harness.App, opts Options) *Result {
	start := time.Now()
	if opts.Parallelism <= 0 {
		opts.Parallelism = DefaultParallelism()
	}
	if opts.QuarantineThreshold <= 0 {
		opts.QuarantineThreshold = 3
	}
	schema := app.Schema()
	gen := testgen.New(schema)
	if len(opts.Params) > 0 {
		gen.SetFilter(opts.Params)
	}
	// The execution cache lives for exactly one campaign: canonical
	// homogeneous arms repeat across the instances of each test, and a
	// fresh per-campaign cache keeps reuse sound without any invalidation
	// story. The distributed path builds its caches worker-side instead
	// (backed by the coordinator's shared cache).
	var cache *memo.Cache
	if !opts.DisableExecCache {
		cache = memo.NewCache(app.Name, nil, opts.Obs)
	}
	run := runner.New(app, runner.Options{
		Significance: opts.Significance,
		MaxRounds:    opts.MaxRounds,
		DisableGate:  opts.DisableGate,
		Strategy:     opts.Strategy,
		BaseSeed:     opts.Seed,
		Obs:          opts.Obs,
		Cache:        cache,
	})

	tests, unknown := selectTests(app, opts.Tests)
	res := &Result{App: app.Name, NumTests: len(tests), NumParams: schema.Len()}

	o := opts.Obs
	if len(unknown) > 0 {
		// Requested tests that do not exist produce no instances; surface
		// them exactly like a phase-2 lookup failure would be.
		res.SkippedTests = append(res.SkippedTests, unknown...)
		o.CounterAdd(obs.MSkippedTests, int64(len(unknown)), "app", app.Name)
	}
	o.ProgressBegin(app.Name)
	defer o.ProgressFinish()
	campSpan := o.StartSpan("campaign", obs.NoSpan,
		obs.String("app", app.Name),
		obs.Int("tests", int64(len(tests))),
		obs.Int("params", int64(schema.Len())))
	defer campSpan.End()
	// phase opens a child span and times the phase into MPhaseSeconds;
	// call the returned func when the phase ends.
	phase := func(name string) (obs.SpanID, func()) {
		span := o.StartSpan("phase", campSpan.ID(),
			obs.String("app", app.Name), obs.String("phase", name))
		phaseStart := time.Now()
		return span.ID(), func() {
			o.Observe(obs.MPhaseSeconds, time.Since(phaseStart).Seconds(),
				"app", app.Name, "phase", name)
			span.End()
		}
	}

	// Phase 1: pre-run (paper §4).
	_, endPhase := phase("prerun")
	res.PreRuns = parallelMap(opts.Parallelism, o, app.Name, "prerun", tests, func(t *harness.UnitTest) testgen.PreRun {
		return run.PreRun(t)
	})
	endPhase()
	for _, pre := range res.PreRuns {
		if pre.Report.UsedConf {
			res.ConfUsingTests++
			if pre.Report.SharedConf {
				res.SharingTests++
			}
		}
		if pre.Report.UncertainConfs > 0 {
			res.UncertainTests++
		}
		res.TotalUncertain += pre.Report.UncertainConfs
		res.TotalConfs += pre.Report.TotalConfs
	}
	res.Counts.Original = gen.OriginalCount(len(tests), app.NodeTypes)
	res.Counts.AfterPreRun = gen.CountAfterPreRun(res.PreRuns)
	res.Counts.AfterUncertainty = gen.CountAfterUncertainty(res.PreRuns)

	// Phase 2: instance execution with pooling, over enumerable work
	// items (one per pre-run test) so the in-process pool and the
	// distributed coordinator share one execution and merge path.
	items := BuildItems(res.PreRuns)
	instancesSpan, endPhase := phase("instances")
	var itemResults []ItemResult
	var localLeaks int64
	if opts.Distribute != nil {
		itemResults = opts.Distribute(instancesSpan, items)
	} else {
		// Cross-test frequent-failer quarantine (§4) runs live: once a
		// parameter is confirmed by QuarantineThreshold distinct tests,
		// remaining items skip its instances. The distributed path trades
		// this pruning away for order-independent, resumable items.
		var mu sync.Mutex
		confirmedBy := make(map[string]map[string]bool)
		onUnsafe := func(inst testgen.Instance, r runner.Result) {
			mu.Lock()
			defer mu.Unlock()
			set := confirmedBy[inst.Param]
			if set == nil {
				set = make(map[string]bool)
				confirmedBy[inst.Param] = set
			}
			set[inst.Test] = true
			if len(set) == opts.QuarantineThreshold {
				o.CounterAdd(obs.MQuarantine, 1, "app", app.Name)
				gen.Quarantine(inst.Param)
			}
		}
		// Abandoned-goroutine accounting: per-item deltas double-count
		// under in-process concurrency, so take one campaign-wide delta.
		leakBase := harness.AbandonedGoroutines()
		itemResults = parallelMap(opts.Parallelism, o, app.Name, "instances", items, func(it WorkItem) ItemResult {
			return ExecuteItem(app, gen, run, opts, instancesSpan, it, onUnsafe, false)
		})
		localLeaks = harness.AbandonedGoroutines() - leakBase
	}
	endPhase()

	// Phase 3: merge item results and score against ground truth.
	_, endPhase = phase("scoring")
	mergeResults(res, schema, gen, itemResults, opts, opts.Distribute != nil)
	if opts.Distribute == nil {
		res.LeakedGoroutines = localLeaks
	}
	endPhase()

	res.Elapsed = time.Since(start)
	campSpan.SetAttr(
		obs.Int("reported", int64(len(res.Reported))),
		obs.Int("executed", res.Counts.Executed),
		obs.Int("executions_saved", res.Counts.ExecutionsSaved),
		obs.Int("skipped_tests", int64(len(res.SkippedTests))))
	return res
}

// filterConfirmed drops pool members whose parameter is already confirmed
// unsafe within this test.
func filterConfirmed(p testgen.Pool, confirmed map[string]bool) testgen.Pool {
	out := testgen.Pool{Test: p.Test}
	for _, in := range p.Members {
		if !confirmed[in.Param] {
			out.Members = append(out.Members, in)
		}
	}
	return out
}

// selectTests resolves the test subset. Names that do not resolve are
// returned in unknown rather than silently dropped: a typo in -tests
// must shrink the campaign loudly, not quietly.
func selectTests(app *harness.App, names []string) (tests []*harness.UnitTest, unknown []string) {
	if len(names) == 0 {
		tests = make([]*harness.UnitTest, len(app.Tests))
		for i := range app.Tests {
			tests[i] = &app.Tests[i]
		}
		return tests, nil
	}
	for _, name := range names {
		t, err := app.Test(name)
		if err != nil {
			unknown = append(unknown, name)
			continue
		}
		tests = append(tests, t)
	}
	return tests, unknown
}

// parallelMap runs fn over items with bounded parallelism, preserving
// order. When o is live it records how long each item waited for a
// worker slot (the semaphore queue-wait histogram).
func parallelMap[I any, O any](parallelism int, o *obs.Observer, app, stage string, items []I, fn func(I) O) []O {
	out := make([]O, len(items))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		var waitStart time.Time
		if o != nil {
			waitStart = time.Now()
		}
		sem <- struct{}{}
		if o != nil {
			o.Observe(obs.MSemWaitSeconds, time.Since(waitStart).Seconds(),
				"app", app, "stage", stage)
		}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fn(items[i])
		}(i)
	}
	wg.Wait()
	return out
}
