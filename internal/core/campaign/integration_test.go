package campaign_test

import (
	"testing"

	"zebraconf/internal/apps"
	"zebraconf/internal/apps/minihdfs"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/coverage"
)

// TestMinihdfsSubsetCampaign drives a real (non-synthetic) campaign over a
// representative minihdfs slice: transport, checksum, liveness, web policy,
// a trap, and safe parameters.
func TestMinihdfsSubsetCampaign(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	res := campaign.Run(app, campaign.Options{
		Params: []string{
			"hadoop.rpc.protection",
			minihdfs.ParamChecksumType,
			minihdfs.ParamHeartbeatInterval,
			minihdfs.ParamHTTPPolicy,
			minihdfs.ParamScanPeriod,     // FP trap
			minihdfs.ParamReplication,    // safe
			minihdfs.ParamNNHandlerCount, // safe
		},
		Tests: []string{"TestWriteRead", "TestHeartbeatLiveness", "TestFsck",
			"TestScanPeriodInternals", "TestMkdirList"},
	})
	if len(res.Missed) != 0 {
		t.Fatalf("missed: %v", res.Missed)
	}
	if res.TruePositives != 4 {
		t.Fatalf("true positives = %d, want 4 (%+v)", res.TruePositives, res.Reported)
	}
	if res.FalsePositives != 1 {
		t.Fatalf("false positives = %d, want exactly the scan-period trap (%+v)",
			res.FalsePositives, res.Reported)
	}
	if res.Counts.Original <= res.Counts.AfterPreRun || res.Counts.AfterPreRun < res.Counts.AfterUncertainty {
		t.Fatalf("reduction pipeline broken: %+v", res.Counts)
	}
}

// TestMiniflinkUncertaintyExclusion checks the §6.2/E7 behaviour on the
// designed outlier: miniflink tests create configuration objects on
// unannotated goroutines, and those (test, parameter) combinations are
// excluded rather than reported.
func TestMiniflinkUncertaintyExclusion(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("miniflink")
	if err != nil {
		t.Fatal(err)
	}
	res := campaign.Run(app, campaign.Options{
		Params: []string{"taskmanager.network.numberOfBuffers", "state.backend"},
	})
	if res.UncertainTests < 2 {
		t.Fatalf("uncertain tests = %d, want the two seeded helper-goroutine tests", res.UncertainTests)
	}
	if res.Counts.AfterUncertainty >= res.Counts.AfterPreRun {
		t.Fatalf("uncertainty filter removed nothing: %+v", res.Counts)
	}
	if res.FalsePositives != 0 {
		t.Fatalf("uncertain objects caused false positives: %+v", res.Reported)
	}
}

// TestThreadOnlyStrategyRegresses demonstrates the paper's point that
// attempt #3 (thread attribution) misattributes reads when tests call node
// internals: the private-state trap test then passes under heterogeneous
// values (the mapping serves the test's value on the test's goroutine), so
// results differ from the object-mapping strategy.
func TestThreadOnlyStrategyRegresses(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	opts := campaign.Options{
		Params: []string{minihdfs.ParamScanPeriod},
		Tests:  []string{"TestScanPeriodInternals"},
	}
	paper := campaign.Run(app, opts)

	app2, _ := apps.ByName("minihdfs")
	opts.Strategy = agent.StrategyThreadOnly
	threadOnly := campaign.Run(app2, opts)

	if len(paper.Reported) != 1 {
		t.Fatalf("object mapping did not surface the trap: %+v", paper.Reported)
	}
	if len(threadOnly.Reported) == len(paper.Reported) {
		t.Skip("thread-only attribution produced the same result on this trap; its divergence shows elsewhere")
	}
}

// TestMinihbaseLayeredCoverage verifies the Table 5 layering assumption: an
// HBase unit test (flushing a memstore to the embedded HDFS) exposes an
// HDFS transport parameter, found through the HBase campaign.
func TestMinihbaseLayeredCoverage(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("minihbase")
	if err != nil {
		t.Fatal(err)
	}
	res := campaign.Run(app, campaign.Options{
		Params: []string{minihdfs.ParamEncryptDataTransfer},
		Tests:  []string{"TestFlushToHDFS"},
	})
	if res.TruePositives != 1 {
		t.Fatalf("HDFS parameter not found through the HBase suite: %+v (missed %v)",
			res.Reported, res.Missed)
	}
}

// TestMinimrCodecDependencyRule verifies the §4 dependency rule: the codec
// is only effective with compression enabled, and with the rule in place
// the campaign still finds it.
func TestMinimrCodecDependencyRule(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("minimr")
	if err != nil {
		t.Fatal(err)
	}
	res := campaign.Run(app, campaign.Options{
		Params: []string{"mapreduce.map.output.compress.codec"},
		Tests:  []string{"TestWordCount"},
	})
	if res.TruePositives != 1 {
		t.Fatalf("codec not found despite the dependency rule: %+v (missed %v)", res.Reported, res.Missed)
	}
}

// TestConditionalReadHazardConvicted seeds the hazard the coverage
// fallback exists for: dfs.image.compression.codec is read only when
// dfs.image.compress is true, so the default-configuration pre-run never
// observes it and the paper's read filter alone would generate zero
// instances — silently passing an unsafe parameter. The mandatory
// full-dispatch fallback must convict it with selection on or off, and
// on a warm index too (the phase-2 edge recorded by the forced dispatch
// keeps it generating).
func TestConditionalReadHazardConvicted(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.Options{
		Params: []string{minihdfs.ParamImageCodec},
		Tests:  []string{"TestCheckpoint"},
		Seed:   9,
	}
	convicted := func(res *campaign.Result) bool {
		for _, r := range res.Reported {
			if r.Param == minihdfs.ParamImageCodec {
				return true
			}
		}
		return false
	}

	// Cold index, selection off.
	off := campaign.Run(app, base)
	if !convicted(off) {
		t.Fatalf("-select=all missed the conditional-read param: %+v", off.Reported)
	}
	// Cold index, selection on (no index yet — full dispatch).
	onOpts := base
	onOpts.SelectCoverage = true
	on := campaign.Run(app, onOpts)
	if !convicted(on) {
		t.Fatalf("-select=coverage (cold) missed the conditional-read param: %+v", on.Reported)
	}

	// Warm index built from the forced run: the phase-2 execution read
	// the codec, so the edge exists and selection keeps the test.
	ix := coverage.Build(app.Name, base.Seed, "", on.Coverage, app.Schema())
	if readers := ix.TestsReading(minihdfs.ParamImageCodec); len(readers) == 0 {
		t.Fatal("forced dispatch did not record the conditional read edge")
	}
	warm := onOpts
	warm.CoverageIndex = ix
	wres := campaign.Run(app, warm)
	if !convicted(wres) {
		t.Fatalf("warm selection dropped the conditional-read param: %+v", wres.Reported)
	}
	if len(wres.DeselectedTests) != 0 {
		t.Fatalf("the only test reads the param; deselected %v", wres.DeselectedTests)
	}
}
