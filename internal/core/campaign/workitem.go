package campaign

import (
	"sort"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/forensics"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/testgen"
	"zebraconf/internal/obs"
)

// WorkItem is one schedulable unit of phase-2 work: a pre-run unit test
// together with its report, from which an executor derives every test
// instance. Items are serializable, so the distributed executor can ship
// them to worker subprocesses over the wire; IDs are indexes into the
// pre-run order, so the same app + test subset + seed always yields the
// same item IDs (the checkpoint journal depends on this).
type WorkItem struct {
	ID     int            `json:"id"`
	Test   string         `json:"test"`
	PreRun testgen.PreRun `json:"prerun"`
	// PredSeconds is the scheduler's predicted wall clock for this item
	// (profile estimate, or the cold-campaign pre-run fallback). Purely
	// advisory: it orders dispatch and arms speculation deadlines, and
	// never influences what the item executes.
	PredSeconds float64 `json:"pred_seconds,omitempty"`
	// PredTrials is the profile's expected unit-test trial count for this
	// item under sequential stopping (EWMA of observed executions), zero
	// when the profile is cold. Advisory like PredSeconds; riding the
	// item keeps worker-side prediction identical to local.
	PredTrials float64 `json:"pred_trials,omitempty"`
	// ForceParams lists parameters that must generate instances even when
	// this item's pre-run observed no read of them — the coverage-driven
	// full-dispatch fallback for conditionally-read parameters. Riding
	// the item keeps the distributed worker byte-identical to the
	// in-process path.
	ForceParams []string `json:"force_params,omitempty"`
}

// BuildItems converts phase 1's pre-run reports into phase 2's work items.
func BuildItems(pres []testgen.PreRun) []WorkItem {
	out := make([]WorkItem, len(pres))
	for i, pre := range pres {
		out[i] = WorkItem{ID: i, Test: pre.Test, PreRun: pre}
	}
	return out
}

// InstanceVerdict is the serializable outcome of one leaf instance run.
type InstanceVerdict struct {
	// Instance is the testgen.Instance.String() label.
	Instance         string  `json:"instance"`
	Param            string  `json:"param"`
	Verdict          string  `json:"verdict"`
	FirstTrialSignal bool    `json:"first_trial_signal,omitempty"`
	PValue           float64 `json:"p_value"`
	Rounds           int     `json:"rounds,omitempty"`
	// Trials counts unit-test trials this instance consumed across all
	// rounds (cached or executed — the statistical sample size, invariant
	// under memoization). StopReason says why confirmation stopped:
	// convicted, futility, or budget.
	Trials     int64  `json:"trials,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	HeteroMsg  string `json:"hetero_msg,omitempty"`
	// Evidence is the instance's forensic record (nil with evidence
	// off). Riding inside the verdict, it serializes over the dist
	// protocol and into checkpoint journals with no extra machinery, and
	// the coordinator's first-result-wins duplicate discard applies to
	// it automatically — exactly one record survives per accounted item.
	Evidence *forensics.Evidence `json:"evidence,omitempty"`
}

// ItemResult is the serializable outcome of executing one WorkItem. The
// merge step consumes these identically whether they were produced
// in-process, by a worker subprocess, or replayed from a checkpoint
// journal.
type ItemResult struct {
	ID   int    `json:"id"`
	Test string `json:"test"`
	// SkippedTest marks a pre-run test that no longer resolves (a
	// registration inconsistency, surfaced instead of silently dropped).
	SkippedTest bool `json:"skipped_test,omitempty"`
	// Quarantined marks an item the distributed coordinator gave up on
	// after repeated worker crashes or deadline kills; Error says why.
	Quarantined bool   `json:"quarantined,omitempty"`
	Error       string `json:"error,omitempty"`
	// Instances counts leaf instances generated for this item.
	Instances int `json:"instances,omitempty"`
	// Executions counts unit-test runs this item consumed (leaf arms plus
	// pooled heterogeneous runs).
	Executions int64 `json:"executions,omitempty"`
	// ExecutionsSaved counts runs the execution cache avoided for this
	// item (memoized homogeneous arms and pooled runs).
	ExecutionsSaved int64 `json:"executions_saved,omitempty"`
	// ReachableParams lists the parameters that produced at least one
	// instance, sorted; the merge step uses them for the missed-parameter
	// accounting.
	ReachableParams []string `json:"reachable_params,omitempty"`
	// Verdicts lists every leaf instance verdict in execution order
	// (deterministic: item execution is sequential).
	Verdicts []InstanceVerdict `json:"verdicts,omitempty"`
	// LeakedGoroutines counts unit-test goroutines abandoned after a
	// timeout while this item ran (only tracked by worker subprocesses,
	// where items execute serially; the in-process path measures the
	// campaign-wide delta instead).
	LeakedGoroutines int64 `json:"leaked_goroutines,omitempty"`
	// Coverage is the deduplicated sorted set of parameters this item's
	// executions read, filled only by worker subprocesses (the
	// in-process campaign's collector observes executions directly).
	// The coordinator folds these edges into the campaign's coverage
	// index — coverage rides the NDJSON protocol like everything else.
	Coverage []string `json:"coverage,omitempty"`
	// Replayed marks a result served from a previous run's item store by
	// -mode rerun rather than executed; its execution counters are
	// zeroed (replay costs nothing).
	Replayed bool `json:"replayed,omitempty"`
	// Spans carries the worker-local trace fragment for this item
	// (populated only by worker subprocesses running with item tracing
	// on). Span and parent IDs are local to the fragment, parent 0
	// meaning the item root; the coordinator re-identifies them under
	// its own item span so a -workers campaign renders as one tree.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// ExecuteItem runs every instance of one work item: generation, pooled
// testing with recursive splitting, and leaf verdicts. It is the one
// phase-2 execution path, shared by the in-process campaign (shared gen,
// live onUnsafe hook driving cross-test quarantine) and the distributed
// worker (fresh gen, nil hook, trackLeaks on). Execution within an item
// is sequential, so the verdict order — and with it the serialized
// ItemResult — is deterministic for a given seed.
func ExecuteItem(app *harness.App, gen *testgen.Generator, run *runner.Runner, opts Options, parent obs.SpanID, item WorkItem, onUnsafe func(testgen.Instance, runner.Result), trackLeaks bool) ItemResult {
	o := opts.Obs
	out := ItemResult{ID: item.ID, Test: item.Test}
	var leakBase int64
	if trackLeaks {
		leakBase = harness.AbandonedGoroutines()
	}
	defer func() {
		if trackLeaks {
			out.LeakedGoroutines = harness.AbandonedGoroutines() - leakBase
		}
	}()

	test, err := app.Test(item.Test)
	if err != nil {
		// A pre-run test that no longer resolves is a registration
		// inconsistency; surface it instead of silently dropping it.
		out.SkippedTest = true
		o.CounterAdd(obs.MSkippedTests, 1, "app", app.Name)
		return out
	}
	rep := item.PreRun.Report
	instances := gen.Instances(item.PreRun, testgen.InstancesOptions{
		DisableRoundRobin: opts.DisableRoundRobin,
		ForceParams:       item.ForceParams,
	})
	out.Instances = len(instances)
	if len(instances) == 0 {
		return out
	}
	reach := make(map[string]bool)
	for _, inst := range instances {
		reach[inst.Param] = true
	}
	for p := range reach {
		out.ReachableParams = append(out.ReachableParams, p)
	}
	sort.Strings(out.ReachableParams)

	markDone := func(n int) {
		o.ProgressAddDone(int64(n))
		o.GaugeAdd(obs.MInstancesDone, int64(n), "app", app.Name)
	}
	o.ProgressAddTotal(int64(len(instances)))
	o.GaugeAdd(obs.MInstancesTotal, int64(len(instances)), "app", app.Name)
	testSpan := o.StartSpan("test", parent,
		obs.String("app", app.Name),
		obs.String("test", item.Test),
		obs.Int("item", int64(item.ID)),
		obs.Int("instances", int64(len(instances))))
	defer testSpan.End()

	// Within this item, skip further instances of a parameter already
	// confirmed unsafe here.
	confirmedHere := make(map[string]bool)
	leaf := func(parent obs.SpanID, inst testgen.Instance) {
		defer markDone(1)
		if confirmedHere[inst.Param] || gen.Quarantined(inst.Param) {
			return
		}
		asn := gen.AssignFor(inst, &rep)
		r := run.RunAssignmentIn(parent, test, asn, inst.String())
		out.Executions += r.Executions
		out.ExecutionsSaved += r.Saved
		if r.Evidence != nil {
			// The runner knows the execution; only this layer knows the
			// instance identity and the campaign flags a repro needs.
			r.Evidence.Instance = inst.String()
			r.Evidence.Param = inst.Param
			r.Evidence.Repro = forensics.ReproCommand(app.Name, item.Test, inst.Param, opts.Seed)
		}
		out.Verdicts = append(out.Verdicts, InstanceVerdict{
			Instance:         inst.String(),
			Param:            inst.Param,
			Verdict:          r.Verdict.String(),
			FirstTrialSignal: r.FirstTrialSignal,
			PValue:           r.PValue,
			Rounds:           r.Rounds,
			Trials:           r.Trials,
			StopReason:       r.StopReason,
			HeteroMsg:        r.HeteroMsg,
			Evidence:         r.Evidence,
		})
		if r.Verdict == runner.VerdictUnsafe {
			o.Event(obs.EvVerdict,
				obs.String("app", app.Name),
				obs.String("param", inst.Param),
				obs.String("test", item.Test),
				obs.String("instance", inst.String()),
				obs.Float("p", r.PValue))
			o.Stat().ParamVerdict(inst.Param, item.Test, r.PValue)
			confirmedHere[inst.Param] = true
			if onUnsafe != nil {
				onUnsafe(inst, r)
			}
		}
	}

	if opts.DisablePooling {
		for _, inst := range instances {
			leaf(testSpan.ID(), inst)
		}
		return out
	}

	var runPool func(parent obs.SpanID, depth int, p testgen.Pool)
	runPool = func(parent obs.SpanID, depth int, p testgen.Pool) {
		before := len(p.Members)
		p = p.FilterQuarantined(gen)
		p = filterConfirmed(p, confirmedHere)
		if dropped := before - len(p.Members); dropped > 0 {
			markDone(dropped)
		}
		switch len(p.Members) {
		case 0:
			return
		case 1:
			leaf(parent, p.Members[0])
			return
		}
		span := o.StartSpan("pool", parent,
			obs.String("app", app.Name),
			obs.String("test", p.Test),
			obs.Int("size", int64(len(p.Members))),
			obs.Int("depth", int64(depth)))
		defer span.End()
		asn := p.Assignment(gen, &rep)
		failed, reused := run.RunPooledIn(span.ID(), test, asn, p.Test+"/pool")
		if reused {
			out.ExecutionsSaved++
		} else {
			out.Executions++
		}
		if !failed {
			// Pooled heterogeneous run passed: all members cleared.
			span.SetAttr(obs.Bool("cleared", true))
			markDone(len(p.Members))
			return
		}
		o.CounterAdd(obs.MPoolSplits, 1, "app", app.Name)
		o.Observe(obs.MPoolDepth, float64(depth), "app", app.Name)
		a, b := p.Split()
		runPool(span.ID(), depth+1, a)
		runPool(span.ID(), depth+1, b)
	}
	for _, pool := range testgen.BuildPools(item.Test, instances, opts.MaxPool) {
		runPool(testSpan.ID(), 0, pool)
	}
	return out
}

// mergeResults folds item results into res — per-parameter evidence,
// verdict statistics, reachability, skipped tests, quarantined items —
// and scores the merged evidence against ground truth. It is the one
// phase-3 path, shared by the in-process and distributed campaigns:
// items are folded in ID order and every aggregate is commutative or
// resolved by that order, so the merged Result is identical no matter
// which worker ran which item, or whether some results were replayed
// from a checkpoint journal. Quarantine-skipped instances simply never
// appear in Verdicts, so they merge as skipped, not failed.
func mergeResults(res *Result, schema *confkit.Registry, gen *testgen.Generator, itemResults []ItemResult, opts Options) {
	sorted := make([]ItemResult, len(itemResults))
	copy(sorted, itemResults)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	perParam := make(map[string]*paramStats)
	// reachable tracks parameters that produced at least one instance: a
	// parameter no unit test exercises cannot be found by ZebraConf by
	// definition, so it does not count as missed (e.g. the HDFS
	// corner-case parameters an HBase suite never reaches).
	reachable := make(map[string]bool)

	for _, it := range sorted {
		if it.SkippedTest {
			res.SkippedTests = append(res.SkippedTests, it.Test)
			continue
		}
		if it.Quarantined {
			res.QuarantinedItems = append(res.QuarantinedItems, it.Test)
			continue
		}
		res.Counts.Executed += it.Executions
		res.Counts.ExecutionsSaved += it.ExecutionsSaved
		res.LeakedGoroutines += it.LeakedGoroutines
		for _, p := range it.ReachableParams {
			reachable[p] = true
		}
		for _, v := range it.Verdicts {
			if v.FirstTrialSignal {
				res.FirstTrialSignals++
			}
			if v.Rounds > 0 && v.Trials > 0 {
				// Trials = (Rounds+1) × per-round cost exactly, so the
				// confirmation share (everything after the screening
				// round) is Trials·Rounds/(Rounds+1).
				res.ConfirmationTrials += v.Trials * int64(v.Rounds) / int64(v.Rounds+1)
			}
			switch v.Verdict {
			case runner.VerdictFiltered.String():
				res.FilteredByHypothesis++
			case runner.VerdictHomoInvalid.String():
				res.HomoInvalid++
			case runner.VerdictUnsafe.String():
				ps := perParam[v.Param]
				if ps == nil {
					ps = &paramStats{tests: make(map[string]bool), minP: 1}
					perParam[v.Param] = ps
				}
				ps.tests[it.Test] = true
				if v.PValue < ps.minP {
					ps.minP = v.PValue
				}
				if ps.example == "" {
					ps.example = v.HeteroMsg
				}
				if ps.stop == "" {
					// First confirming instance in item-ID order, same
					// tie-break as the evidence record below.
					ps.rounds = v.Rounds
					ps.trials = v.Trials
					ps.stop = v.StopReason
				}
				if ps.evidence == nil && v.Evidence != nil {
					// First confirming instance in item-ID order: items
					// fold deterministically, so the chosen record is
					// identical across execution paths and resumes.
					ps.evidence = v.Evidence
				}
			}
		}
	}
	sort.Strings(res.SkippedTests)
	sort.Strings(res.QuarantinedItems)

	for param, ps := range perParam {
		p := schema.Lookup(param)
		report := ParamReport{Param: param, MinP: ps.minP, Example: ps.example, Evidence: ps.evidence,
			Rounds: ps.rounds, Trials: ps.trials, StopReason: ps.stop}
		if p != nil {
			report.Truth = p.Truth
			report.Why = p.Why
		}
		for t := range ps.tests {
			report.Tests = append(report.Tests, t)
		}
		sort.Strings(report.Tests)
		res.Reported = append(res.Reported, report)
		if report.Truth == confkit.SafetyUnsafe {
			res.TruePositives++
		} else {
			res.FalsePositives++
		}
	}
	sort.Slice(res.Reported, func(i, j int) bool { return res.Reported[i].Param < res.Reported[j].Param })

	for _, p := range schema.Params() {
		if p.Truth == confkit.SafetyUnsafe && perParam[p.Name] == nil && gen.InFilter(p.Name) && reachable[p.Name] {
			res.Missed = append(res.Missed, p.Name)
		}
	}
	sort.Strings(res.Missed)
}
