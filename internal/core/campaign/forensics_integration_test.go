package campaign_test

import (
	"testing"

	"zebraconf/internal/apps"
	"zebraconf/internal/apps/minihdfs"
	"zebraconf/internal/confkit"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/core/forensics"
)

// TestEvidenceReproRoundTrip is the acceptance check for the forensic
// repro command: for a true positive and a false positive alike, parsing
// the reported Evidence.Repro and re-running exactly that campaign slice
// must reproduce the verdict — same parameter reported, same ground-truth
// scoring. This is the automation of the paper's §7.1 manual triage: a
// report you cannot reproduce is a report you cannot diagnose.
func TestEvidenceReproRoundTrip(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	res := campaign.Run(app, campaign.Options{
		Params:      []string{minihdfs.ParamChecksumType, minihdfs.ParamScanPeriod},
		Tests:       []string{"TestWriteRead", "TestScanPeriodInternals"},
		Seed:        7,
		EvidenceMax: -1,
	})
	if len(res.Reported) < 2 {
		t.Fatalf("expected both the checksum TP and the scan-period FP, got %+v", res.Reported)
	}

	var sawTP, sawFP bool
	for _, r := range res.Reported {
		if r.Evidence == nil {
			t.Fatalf("%s reported without evidence", r.Param)
		}
		rp, err := forensics.ParseRepro(r.Evidence.Repro)
		if err != nil {
			t.Fatalf("%s repro %q: %v", r.Param, r.Evidence.Repro, err)
		}
		if rp.App != app.Name || rp.Params != r.Param {
			t.Fatalf("%s repro points elsewhere: %+v", r.Param, rp)
		}

		app2, err := apps.ByName(rp.App)
		if err != nil {
			t.Fatal(err)
		}
		rerun := campaign.Run(app2, campaign.Options{
			Params: []string{rp.Params},
			Tests:  []string{rp.Tests},
			Seed:   rp.Seed,
		})
		var again *campaign.ParamReport
		for i := range rerun.Reported {
			if rerun.Reported[i].Param == r.Param {
				again = &rerun.Reported[i]
			}
		}
		if again == nil {
			t.Fatalf("repro %q did not reproduce the %s report (got %+v)",
				r.Evidence.Repro, r.Param, rerun.Reported)
		}
		if again.Truth != r.Truth {
			t.Fatalf("%s: repro scored %v, campaign scored %v", r.Param, again.Truth, r.Truth)
		}
		if r.Truth == confkit.SafetyUnsafe {
			sawTP = true
		} else {
			sawFP = true
		}
	}
	if !sawTP || !sawFP {
		t.Fatalf("round-trip must cover a true positive and a false positive (TP=%v FP=%v)", sawTP, sawFP)
	}
}

// TestEvidenceOffLeavesReportsBare checks the -evidence-max 0 degradation:
// identical verdicts, no evidence records attached.
func TestEvidenceOffLeavesReportsBare(t *testing.T) {
	t.Parallel()
	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	opts := campaign.Options{
		Params: []string{minihdfs.ParamChecksumType},
		Tests:  []string{"TestWriteRead"},
		Seed:   7,
	}
	bare := campaign.Run(app, opts)

	app2, _ := apps.ByName("minihdfs")
	opts.EvidenceMax = -1
	rich := campaign.Run(app2, opts)

	if len(bare.Reported) != 1 || len(rich.Reported) != 1 {
		t.Fatalf("reports: bare=%+v rich=%+v", bare.Reported, rich.Reported)
	}
	if bare.Reported[0].Evidence != nil {
		t.Fatal("evidence-off campaign attached an evidence record")
	}
	ev := rich.Reported[0].Evidence
	if ev == nil {
		t.Fatal("evidence-on campaign attached no evidence record")
	}
	if bare.Reported[0].Param != rich.Reported[0].Param || bare.Reported[0].MinP != rich.Reported[0].MinP {
		t.Fatalf("capture changed the verdict: bare=%+v rich=%+v", bare.Reported[0], rich.Reported[0])
	}
	// The record itself must carry the full §7.1 triage kit.
	if ev.Repro == "" || len(ev.Assign) == 0 || len(ev.Arms) == 0 || len(ev.Reads) == 0 {
		t.Fatalf("evidence record incomplete: %+v", ev)
	}
	if ev.FirstDivergent < 0 {
		t.Fatal("checksum-type conviction recorded no divergent read")
	}
}
