package campaign

import (
	"encoding/json"
	"reflect"
	"testing"

	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/diskcache"
	"zebraconf/internal/core/harness"
)

// buildIndexAndStore freezes one campaign result into the persisted
// coverage artifacts, mirroring the CLI's -ledger save path.
func buildIndexAndStore(t *testing.T, app *harness.App, opts Options, res *Result) (*coverage.Index, *coverage.ItemStore) {
	t.Helper()
	schema := OverrideApp(app, opts.Overrides).Schema()
	ix := coverage.Build(app.Name, opts.Seed, opts.CoverageKey, res.Coverage, schema)
	st := &coverage.ItemStore{App: app.Name, Items: make(map[string]json.RawMessage)}
	for _, it := range res.Items {
		b, err := json.Marshal(it)
		if err != nil {
			t.Fatal(err)
		}
		st.Items[it.Test] = b
	}
	return ix, st
}

// TestCampaignCollectsCoverage: a plain run populates the collector with
// every suite test and the parameters it read.
func TestCampaignCollectsCoverage(t *testing.T) {
	t.Parallel()
	app := syntheticApp(3)
	res := Run(app, Options{})
	if res.Coverage == nil {
		t.Fatal("campaign did not attach a collector")
	}
	params, ok := res.Coverage.Params("TestExchange0")
	if !ok {
		t.Fatal("no coverage entry for TestExchange0")
	}
	want := map[string]bool{"buffer": true, "dir": true, "codec": true, "trap": true}
	got := map[string]bool{}
	for _, p := range params {
		got[p] = true
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("TestExchange0 coverage missing %q: %v", p, params)
		}
	}
	// The node-less test must have an (empty) entry, not be absent —
	// selection needs to distinguish "reads nothing" from "never seen".
	if pure, ok := res.Coverage.Params("TestPureFunction"); !ok || len(pure) != 0 {
		t.Fatalf("TestPureFunction entry = %v, %v; want empty, true", pure, ok)
	}
	if len(res.Items) == 0 {
		t.Fatal("campaign did not retain item results")
	}
}

// TestCoveragePlanForcingAndSelection exercises the three coveragePlan
// regimes directly: cold index (global force), warm index with edges
// (per-test force + deselection), and warm index while a param still
// needs the global fallback (no deselection).
func TestCoveragePlanForcingAndSelection(t *testing.T) {
	t.Parallel()
	app := syntheticApp(2)
	schema := app.Schema()
	tests, _ := selectTests(app, nil)

	// Cold: every explicit param forces on every test; nothing deselects.
	force, desel := coveragePlan(schema, Options{
		Params: []string{"codec"}, SelectCoverage: true,
	}, tests)
	if len(desel) != 0 {
		t.Fatalf("cold index deselected %v", desel)
	}
	for _, tt := range tests {
		if !reflect.DeepEqual(force[tt.Name], []string{"codec"}) {
			t.Fatalf("cold force for %s = %v", tt.Name, force[tt.Name])
		}
	}

	// Warm: an index where only TestExchange0 reads codec, and
	// TestPureFunction reads nothing.
	col := coverage.NewCollector()
	col.Observe("TestExchange0", []string{"codec", "buffer"})
	col.Observe("TestExchange1", []string{"buffer"})
	col.ObserveTest("TestPureFunction")
	ix := coverage.Build(app.Name, 0, "", col, schema)

	force, desel = coveragePlan(schema, Options{
		Params: []string{"codec"}, SelectCoverage: true, CoverageIndex: ix,
	}, tests)
	if !reflect.DeepEqual(force["TestExchange0"], []string{"codec"}) {
		t.Fatalf("edge test not forced: %v", force)
	}
	if len(force["TestExchange1"]) != 0 {
		t.Fatalf("edge-less test forced: %v", force["TestExchange1"])
	}
	if !reflect.DeepEqual(desel, []string{"TestExchange1", "TestPureFunction"}) {
		t.Fatalf("deselected = %v, want the tests not reading codec", desel)
	}

	// Warm but the campaign targets a param no index entry reads: full
	// dispatch must reach every test, so nothing may deselect.
	force, desel = coveragePlan(schema, Options{
		Params: []string{"dir"}, SelectCoverage: true, CoverageIndex: ix,
	}, tests)
	if len(desel) != 0 {
		t.Fatalf("global-fallback run still deselected %v", desel)
	}
	for _, tt := range tests {
		if !reflect.DeepEqual(force[tt.Name], []string{"dir"}) {
			t.Fatalf("fallback force for %s = %v", tt.Name, force[tt.Name])
		}
	}

	// Selection off: never deselect, forcing unchanged.
	_, desel = coveragePlan(schema, Options{
		Params: []string{"codec"}, CoverageIndex: ix,
	}, tests)
	if len(desel) != 0 {
		t.Fatalf("-select=all deselected %v", desel)
	}

	// Flat campaign (no explicit params): no forcing at all — the
	// paper's pre-run-filtered semantics stay untouched.
	force, _ = coveragePlan(schema, Options{CoverageIndex: ix, SelectCoverage: true}, tests)
	if len(force) != 0 {
		t.Fatalf("flat campaign forced %v", force)
	}
}

// TestSelectionPinsReportedSet is the equivalence invariant at campaign
// level: warm-index coverage selection must report the identical
// parameter set as full dispatch, while skipping at least one test.
func TestSelectionPinsReportedSet(t *testing.T) {
	t.Parallel()
	app := syntheticApp(3)
	base := Options{Params: []string{"codec", "trap", "buffer"}, Seed: 11}

	cold := Run(app, base)
	ix, _ := buildIndexAndStore(t, app, base, cold)

	warmOn := base
	warmOn.SelectCoverage = true
	warmOn.CoverageIndex = ix
	on := Run(app, warmOn)

	warmOff := base
	warmOff.CoverageIndex = ix
	off := Run(app, warmOff)

	names := func(res *Result) []string {
		var out []string
		for _, r := range res.Reported {
			out = append(out, r.Param)
		}
		return out
	}
	if !reflect.DeepEqual(names(on), names(cold)) || !reflect.DeepEqual(names(off), names(cold)) {
		t.Fatalf("selection changed the reported set:\n cold %v\n on   %v\n off  %v",
			names(cold), names(on), names(off))
	}
	// TestPureFunction reads nothing the campaign targets — selection
	// must actually skip it (otherwise this test is vacuous).
	if !reflect.DeepEqual(on.DeselectedTests, []string{"TestPureFunction"}) {
		t.Fatalf("DeselectedTests = %v, want [TestPureFunction]", on.DeselectedTests)
	}
	if len(off.DeselectedTests) != 0 {
		t.Fatalf("-select=all deselected %v", off.DeselectedTests)
	}
	if on.NumTests >= off.NumTests {
		t.Fatalf("selection did not shrink the suite: on %d, off %d", on.NumTests, off.NumTests)
	}
}

// TestCacheHitCoverageComplete is the memo bugfix: an all-cache-hit
// resubmission executes nothing, so reads must replay from the memoized
// results — the rebuilt index still carries every edge.
func TestCacheHitCoverageComplete(t *testing.T) {
	t.Parallel()
	app := syntheticApp(2)
	store, err := diskcache.Open(t.TempDir(), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Params: []string{"codec", "buffer"}, Seed: 3, CacheBackend: store}

	first := Run(app, opts)
	second := Run(app, opts)
	if second.Counts.Executed != 0 {
		t.Fatalf("resubmission executed %d instances; want a fully warm cache", second.Counts.Executed)
	}
	if second.Counts.ExecutionsSaved == 0 {
		t.Fatal("resubmission saved nothing")
	}

	schema := app.Schema()
	ix1 := coverage.Build(app.Name, opts.Seed, "", first.Coverage, schema)
	ix2 := coverage.Build(app.Name, opts.Seed, "", second.Coverage, schema)
	b1, _ := ix1.Bytes()
	b2, _ := ix2.Bytes()
	if string(b1) != string(b2) {
		t.Fatalf("cache hits lost coverage edges:\nfresh:\n%s\nwarm:\n%s", b1, b2)
	}
	if got := ix2.TestsReading("codec"); len(got) == 0 {
		t.Fatal("warm index has no codec readers at all — replayed reads missing")
	}
}

// TestRerunReplaysUnchangedAndNamesDrift drives the full incremental
// cycle: an unchanged rerun replays everything and reports identically;
// an overridden default re-executes exactly the tests that read the
// parameter, naming it as the reason.
func TestRerunReplaysUnchangedAndNamesDrift(t *testing.T) {
	t.Parallel()
	app := syntheticApp(2)
	opts := Options{Params: []string{"codec", "buffer"}, Seed: 5, CoverageKey: "env"}

	full := Run(app, opts)
	ix, st := buildIndexAndStore(t, app, opts, full)

	// Unchanged inputs: everything replays, nothing runs.
	plan := PlanRerun(app, opts, ix, st)
	if len(plan.Changed) != 0 {
		t.Fatalf("unchanged rerun wants to execute %v (reasons %v)", plan.Changed, plan.Reasons)
	}
	if len(plan.Replayed) != full.NumTests {
		t.Fatalf("replayed %d of %d tests", len(plan.Replayed), full.NumTests)
	}
	rres := Rerun(app, opts, plan, st)
	if rres.Counts.Executed != 0 {
		t.Fatalf("replay executed %d instances", rres.Counts.Executed)
	}
	if !reflect.DeepEqual(rres.Reported, full.Reported) {
		t.Fatalf("replayed reported set diverges:\n full  %+v\n rerun %+v", full.Reported, rres.Reported)
	}
	if rres.TruePositives != full.TruePositives || rres.FalsePositives != full.FalsePositives {
		t.Fatalf("replay changed scoring: TP %d/%d FP %d/%d",
			rres.TruePositives, full.TruePositives, rres.FalsePositives, full.FalsePositives)
	}

	// A changed environment key invalidates every stored entry.
	envOpts := opts
	envOpts.CoverageKey = "env2"
	if p := PlanRerun(app, envOpts, ix, st); len(p.Replayed) != 0 {
		t.Fatalf("stale env key still replayed %v", p.Replayed)
	}

	// Overriding a read parameter's default re-executes its readers —
	// and only them — with the parameter named as the reason.
	ovOpts := opts
	ovOpts.Overrides = map[string]string{"buffer": "128"}
	p := PlanRerun(app, ovOpts, ix, st)
	for _, name := range []string{"TestExchange0", "TestExchange1"} {
		if !containsStr(p.Changed, name) {
			t.Fatalf("buffer reader %s not re-executed: %+v", name, p)
		}
		if !reflect.DeepEqual(p.Reasons[name], []string{"buffer"}) {
			t.Fatalf("reason for %s = %v, want [buffer]", name, p.Reasons[name])
		}
	}
	if !containsStr(p.Replayed, "TestPureFunction") {
		t.Fatalf("non-reader TestPureFunction not replayed: %+v", p)
	}
	rres = Rerun(app, ovOpts, p, st)
	if rres.Counts.Executed == 0 {
		t.Fatal("changed tests did not execute")
	}
	if !reflect.DeepEqual(rres.Reported, full.Reported) {
		t.Fatalf("override of a safe default changed the reported set:\n full  %+v\n rerun %+v",
			full.Reported, rres.Reported)
	}
}
