package campaign

import (
	"encoding/json"
	"testing"

	"zebraconf/internal/core/sched"
	"zebraconf/internal/obs"
)

// normalizedResult renders a result with the timing field zeroed — the
// only field scheduling is allowed to change.
func normalizedResult(t *testing.T, res *Result) string {
	t.Helper()
	cp := *res
	cp.Elapsed = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// warmProfile returns a profile with distinct durations per synthetic
// test, so LPT has real skew to reorder by (reverse declaration order).
func warmProfile(numTests int) *sched.Profile {
	p := sched.NewProfile()
	for i := 0; i < numTests; i++ {
		p.Record("synthetic", testName(i), float64(i+1))
	}
	return p
}

func testName(i int) string {
	return "TestExchange" + string(rune('0'+i))
}

// schedOptions builds campaign options for the scheduling equivalence
// tests. QuarantineThreshold is lifted out of reach: live cross-test
// quarantine fires on completion order, which is exactly what scheduling
// changes, so its timing-dependent pruning would make byte-equality
// between dispatch orders vacuousy unachievable (and its merge-level
// correctness has its own test).
func schedOptions(policy sched.Policy, stream bool, prof *sched.Profile, o *obs.Observer) Options {
	return Options{
		Parallelism:         2,
		QuarantineThreshold: 99,
		SchedPolicy:         policy,
		Stream:              stream,
		Profile:             prof,
		Obs:                 o,
	}
}

// TestStreamedLPTMatchesBarrieredFIFO is the tentpole's safety property
// in-process: streaming phase 1 into phase 2 under LPT ordering with a
// warm profile must produce a byte-identical result to the barriered
// FIFO baseline — the scheduler changes when items run, never what they
// compute.
func TestStreamedLPTMatchesBarrieredFIFO(t *testing.T) {
	t.Parallel()
	const n = 5
	baseline := Run(syntheticApp(n), schedOptions(sched.FIFO, false, nil, nil))
	o := obs.New()
	streamed := Run(syntheticApp(n), schedOptions(sched.LPT, true, warmProfile(n), o))

	if got, want := normalizedResult(t, streamed), normalizedResult(t, baseline); got != want {
		t.Fatalf("streamed LPT diverged from barriered FIFO:\n got  %s\n want %s", got, want)
	}
	if len(baseline.Reported) == 0 {
		t.Fatal("baseline reported nothing; the equivalence check is vacuous")
	}
	// The warm profile gives every test a distinct priority, so the LPT
	// queue must actually have reordered dispatches.
	if n := o.Metrics.CounterValue(obs.MSchedReordered, "app", "synthetic"); n == 0 {
		t.Fatal("LPT streamed run recorded zero reorders; the policy never engaged")
	}
	if c := o.Metrics.Histogram(obs.MSchedQueueWait, nil, "app", "synthetic", "stage", "stream").Count(); c == 0 {
		t.Fatal("streamed run recorded no queue waits")
	}
}

// TestStreamedColdStillMatches covers the cold-campaign fallback: with
// no profile at all, predictions come from pre-run durations measured
// this run (nondeterministic values), and the result must still be
// byte-identical — predictions order dispatch, nothing else.
func TestStreamedColdStillMatches(t *testing.T) {
	t.Parallel()
	const n = 4
	baseline := Run(syntheticApp(n), schedOptions(sched.FIFO, false, nil, nil))
	streamed := Run(syntheticApp(n), schedOptions(sched.LPT, true, nil, nil))
	if got, want := normalizedResult(t, streamed), normalizedResult(t, baseline); got != want {
		t.Fatalf("cold streamed run diverged from barriered FIFO:\n got  %s\n want %s", got, want)
	}
}

// TestStreamedDeterministic runs the same streamed LPT campaign twice
// with the same starting profile: identical results, and the profile
// ends up warm with one estimate per conf-using work item.
func TestStreamedDeterministic(t *testing.T) {
	t.Parallel()
	const n = 4
	p1, p2 := warmProfile(n), warmProfile(n)
	a := Run(syntheticApp(n), schedOptions(sched.LPT, true, p1, nil))
	b := Run(syntheticApp(n), schedOptions(sched.LPT, true, p2, nil))
	if got, want := normalizedResult(t, a), normalizedResult(t, b); got != want {
		t.Fatalf("same seed + profile, different results:\n a %s\n b %s", got, want)
	}
	// Every executed item (the n conf-using tests plus the node-less one)
	// fed its duration back into the profile.
	if p1.Len() != n+1 {
		t.Fatalf("profile holds %d estimates after the campaign, want %d", p1.Len(), n+1)
	}
}

// TestBarrieredLPTMatchesFIFO isolates the ordering ablation on the
// barriered path: -sched=lpt -stream=false against the full baseline.
func TestBarrieredLPTMatchesFIFO(t *testing.T) {
	t.Parallel()
	const n = 4
	baseline := Run(syntheticApp(n), schedOptions(sched.FIFO, false, nil, nil))
	lpt := Run(syntheticApp(n), schedOptions(sched.LPT, false, warmProfile(n), nil))
	if got, want := normalizedResult(t, lpt), normalizedResult(t, baseline); got != want {
		t.Fatalf("barriered LPT diverged from FIFO:\n got  %s\n want %s", got, want)
	}
}

// TestTailLatencyAccounting pins satellite instrumentation: both
// parallelMap stages record per-item queue-wait and run-time histograms,
// so a slow campaign is attributable to waiting vs running.
func TestTailLatencyAccounting(t *testing.T) {
	t.Parallel()
	o := obs.New()
	Run(syntheticApp(3), Options{Parallelism: 2, Obs: o})
	for _, stage := range []string{"prerun", "instances"} {
		if c := o.Metrics.Histogram(obs.MItemRunSeconds, nil, "app", "synthetic", "stage", stage).Count(); c == 0 {
			t.Fatalf("stage %s recorded no per-item run times", stage)
		}
		if c := o.Metrics.Histogram(obs.MSemWaitSeconds, nil, "app", "synthetic", "stage", stage).Count(); c == 0 {
			t.Fatalf("stage %s recorded no queue waits", stage)
		}
	}
}

// TestStreamedEmptyCampaign covers the zero-test edge: the pipeline must
// close its queue instead of deadlocking the worker pool.
func TestStreamedEmptyCampaign(t *testing.T) {
	t.Parallel()
	app := syntheticApp(2)
	res := Run(app, Options{
		Parallelism: 2,
		Stream:      true,
		Tests:       []string{"TestNoSuchTest"},
	})
	if len(res.PreRuns) != 0 || len(res.Reported) != 0 {
		t.Fatalf("empty campaign produced work: %+v", res)
	}
}
