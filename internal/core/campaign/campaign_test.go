package campaign

import (
	"fmt"
	"testing"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/harness"
)

// syntheticApp builds an app with one unsafe parameter, several safe
// parameters, one false-positive trap, and a configurable number of unit
// tests that all exercise the same node type.
func syntheticApp(numTests int) *harness.App {
	schema := func() *confkit.Registry {
		r := confkit.NewRegistry()
		r.Register(
			confkit.Param{Name: "codec", Kind: confkit.Enum, Default: "plain",
				Candidates: []string{"plain", "zip"},
				Truth:      confkit.SafetyUnsafe, Why: "decode fails across codecs"},
			confkit.Param{Name: "buffer", Kind: confkit.Int, Default: "64"},
			confkit.Param{Name: "dir", Kind: confkit.String, Default: "/tmp"},
			// A block of safe parameters: pooled testing pays off only
			// when most of a pool is safe (the paper's §4 assumption).
			confkit.Param{Name: "safe.a", Kind: confkit.Int, Default: "1"},
			confkit.Param{Name: "safe.b", Kind: confkit.Int, Default: "2"},
			confkit.Param{Name: "safe.c", Kind: confkit.Bool, Default: "true"},
			confkit.Param{Name: "safe.d", Kind: confkit.String, Default: "x"},
			confkit.Param{Name: "safe.e", Kind: confkit.Ticks, Default: "30"},
			confkit.Param{Name: "safe.f", Kind: confkit.Int, Default: "100"},
			confkit.Param{Name: "safe.g", Kind: confkit.Bool, Default: "false"},
			confkit.Param{Name: "safe.h", Kind: confkit.Enum, Default: "m",
				Candidates: []string{"m", "n"}},
			confkit.Param{Name: "trap", Kind: confkit.Bool, Default: "false",
				Truth: confkit.SafetyFalsePositive, Why: "test compares node internals to the client conf"},
		)
		return r
	}
	app := &harness.App{
		Name:      "synthetic",
		Schema:    schema,
		NodeTypes: []string{"Node"},
	}
	for i := 0; i < numTests; i++ {
		app.Tests = append(app.Tests, harness.UnitTest{
			Name: fmt.Sprintf("TestExchange%d", i),
			Run: func(t *harness.T) {
				testConf := t.Env.RT.NewConf()
				t.Env.RT.StartInit("Node")
				nodeConf := testConf.RefToClone()
				t.Env.RT.StopInit()
				_ = nodeConf.GetInt("buffer")
				_ = nodeConf.Get("dir")
				for _, p := range []string{"safe.a", "safe.b", "safe.c", "safe.d",
					"safe.e", "safe.f", "safe.g", "safe.h"} {
					_ = nodeConf.Get(p)
				}
				nodeTrap := nodeConf.GetBool("trap")
				if nodeConf.Get("codec") != testConf.Get("codec") {
					t.Fatalf("codec mismatch between node and client")
				}
				if nodeTrap != testConf.GetBool("trap") {
					t.Fatalf("trap flag mismatch (private-state comparison)")
				}
			},
		})
	}
	// One node-less test, filtered by the pre-run.
	app.Tests = append(app.Tests, harness.UnitTest{
		Name: "TestPureFunction",
		Run:  func(t *harness.T) {},
	})
	return app
}

func TestCampaignFindsSeededBugAndScores(t *testing.T) {
	t.Parallel()
	res := Run(syntheticApp(3), Options{Parallelism: 4})
	reported := map[string]ParamReport{}
	for _, r := range res.Reported {
		reported[r.Param] = r
	}
	if _, ok := reported["codec"]; !ok {
		t.Fatalf("seeded unsafe parameter not reported: %+v", res.Reported)
	}
	if _, ok := reported["trap"]; !ok {
		t.Fatalf("false-positive trap not reported (it should be, then scored FP): %+v", res.Reported)
	}
	if _, ok := reported["buffer"]; ok {
		t.Fatal("safe parameter reported")
	}
	if res.TruePositives != 1 || res.FalsePositives != 1 {
		t.Fatalf("TP=%d FP=%d, want 1/1", res.TruePositives, res.FalsePositives)
	}
	if len(res.Missed) != 0 {
		t.Fatalf("missed: %v", res.Missed)
	}
	if res.Counts.Original <= res.Counts.AfterPreRun {
		t.Fatalf("no reduction from pre-run: %+v", res.Counts)
	}
	if res.Counts.Executed <= 0 {
		t.Fatal("no executions counted")
	}
	if res.SharingRate() != 1 {
		t.Fatalf("sharing rate %.2f, want 1.0 (every conf-using test shares)", res.SharingRate())
	}
}

func TestCampaignParamFilter(t *testing.T) {
	t.Parallel()
	res := Run(syntheticApp(2), Options{Parallelism: 4, Params: []string{"buffer"}})
	if len(res.Reported) != 0 {
		t.Fatalf("filtered campaign reported %v", res.Reported)
	}
	if len(res.Missed) != 0 {
		t.Fatalf("missed should be empty under a safe-only filter: %v", res.Missed)
	}
}

func TestCampaignTestFilter(t *testing.T) {
	t.Parallel()
	res := Run(syntheticApp(3), Options{Parallelism: 2, Tests: []string{"TestExchange0"}})
	if res.NumTests != 1 {
		t.Fatalf("NumTests = %d, want 1", res.NumTests)
	}
	if len(res.Reported) == 0 {
		t.Fatal("single-test campaign found nothing")
	}
}

// TestCampaignUnknownTestsSurfaced pins the silent-shrink fix: names in
// Options.Tests that match no unit test must land in Result.SkippedTests
// instead of vanishing, while the known names still run.
func TestCampaignUnknownTestsSurfaced(t *testing.T) {
	t.Parallel()
	res := Run(syntheticApp(3), Options{
		Parallelism: 2,
		Tests:       []string{"TestExchange0", "TestNoSuchThing", "TestAlsoMissing"},
	})
	if res.NumTests != 1 {
		t.Fatalf("NumTests = %d, want 1 (the one known name)", res.NumTests)
	}
	want := map[string]bool{"TestNoSuchThing": true, "TestAlsoMissing": true}
	if len(res.SkippedTests) != len(want) {
		t.Fatalf("SkippedTests = %v, want the two unknown names", res.SkippedTests)
	}
	for _, name := range res.SkippedTests {
		if !want[name] {
			t.Fatalf("SkippedTests = %v contains unexpected %q", res.SkippedTests, name)
		}
	}
	if len(res.Reported) == 0 {
		t.Fatal("the known test no longer reports; unknown-name handling broke the campaign")
	}
}

func TestCampaignDisablePoolingSameVerdicts(t *testing.T) {
	t.Parallel()
	pooled := Run(syntheticApp(2), Options{Parallelism: 4})
	flat := Run(syntheticApp(2), Options{Parallelism: 4, DisablePooling: true})
	names := func(rs []ParamReport) string {
		s := ""
		for _, r := range rs {
			s += r.Param + ","
		}
		return s
	}
	if names(pooled.Reported) != names(flat.Reported) {
		t.Fatalf("pooling changed verdicts: %q vs %q", names(pooled.Reported), names(flat.Reported))
	}
	if flat.Counts.Executed <= pooled.Counts.Executed {
		t.Fatalf("pooling saved nothing: pooled=%d flat=%d",
			pooled.Counts.Executed, flat.Counts.Executed)
	}
}

func TestCampaignQuarantineCapsWork(t *testing.T) {
	t.Parallel()
	res := Run(syntheticApp(6), Options{Parallelism: 1, QuarantineThreshold: 2})
	for _, r := range res.Reported {
		if r.Param == "codec" && len(r.Tests) > 3 {
			// With threshold 2 and sequential tests, the parameter is
			// quarantined quickly; later tests skip it. Parallel timing
			// can admit one extra test, not four.
			t.Fatalf("quarantine did not cap confirmations: %v", r.Tests)
		}
	}
}
