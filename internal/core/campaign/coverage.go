package campaign

import (
	"sort"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/harness"
)

// OverrideApp wraps app so its Schema constructor applies the given
// default overrides (param → new default). The original app is never
// mutated — harness executions call Schema per run, and workers resolve
// apps independently, so a wrapper is the only override mechanism that
// survives both paths. Unknown parameter names are ignored. A nil or
// empty override map returns app unchanged.
func OverrideApp(app *harness.App, overrides map[string]string) *harness.App {
	if len(overrides) == 0 {
		return app
	}
	base := app.Schema
	wrapped := *app
	wrapped.Schema = func() *confkit.Registry {
		r := base()
		for name, val := range overrides {
			if p := r.Lookup(name); p != nil {
				p.Default = val
			}
		}
		return r
	}
	return &wrapped
}

// coveragePlan derives, from the warm coverage index, (a) the per-test
// forced parameter sets and (b) the tests selection may skip.
//
// Forcing implements the full-dispatch fallback for conditionally-read
// parameters: a parameter read only under its heterogeneous value is
// invisible to the pre-run, so the §4 read filter would generate zero
// instances for it — silently. Any explicitly targeted parameter
// (opts.Params) therefore forces instance generation when the pre-run
// saw no read: on every test if no valid index entry anywhere records a
// read of it (cold index ⇒ all explicit params), or on exactly the
// tests whose index entry records one (a phase-2 edge from an earlier
// forced dispatch — which is what keeps conditional params generating
// on warm runs). Forcing is scoped to explicit params: a flat campaign
// keeps the paper's pre-run-filtered semantics unchanged.
//
// Deselection (opts.SelectCoverage) skips a test only when its index
// entry is valid for the current (seed, env key, schema) and its read
// set is disjoint from the campaign's parameter set — and never while
// any explicit param needs the global fallback, since full dispatch
// must reach every test. Unknown or stale entries keep the test.
func coveragePlan(schema *confkit.Registry, opts Options, tests []*harness.UnitTest) (force map[string][]string, deselected []string) {
	ix := opts.CoverageIndex

	// Validity is per test under the current inputs; compute once.
	valid := make(map[string]bool)
	if ix != nil {
		for name := range ix.Tests {
			valid[name] = ix.Valid(name, opts.Seed, opts.CoverageKey, schema)
		}
	}
	hasEdge := func(test, param string) bool {
		if !valid[test] {
			return false
		}
		for _, p := range ix.Tests[test].Params {
			if p == param {
				return true
			}
		}
		return false
	}

	globalForce := false
	if len(opts.Params) > 0 {
		var forceGlobal []string
		for _, p := range opts.Params {
			if schema.Lookup(p) == nil {
				continue // not in the schema: nothing to generate
			}
			edge := false
			for name := range valid {
				if hasEdge(name, p) {
					edge = true
					break
				}
			}
			if !edge {
				forceGlobal = append(forceGlobal, p)
			}
		}
		globalForce = len(forceGlobal) > 0
		force = make(map[string][]string, len(tests))
		for _, t := range tests {
			set := append([]string(nil), forceGlobal...)
			for _, p := range opts.Params {
				if hasEdge(t.Name, p) && !containsStr(set, p) {
					set = append(set, p)
				}
			}
			if len(set) > 0 {
				sort.Strings(set)
				force[t.Name] = set
			}
		}
	}

	if opts.SelectCoverage && ix != nil && !globalForce {
		want := make(map[string]bool, len(opts.Params))
		for _, p := range opts.Params {
			want[p] = true
		}
		for _, t := range tests {
			if !valid[t.Name] {
				continue
			}
			entry := ix.Tests[t.Name]
			keep := false
			if len(want) > 0 {
				for _, p := range entry.Params {
					if want[p] {
						keep = true
						break
					}
				}
			} else {
				// Flat campaign: only tests that read nothing at all can
				// be skipped.
				keep = len(entry.Params) > 0
			}
			if !keep {
				deselected = append(deselected, t.Name)
			}
		}
		sort.Strings(deselected)
	}
	return force, deselected
}

// dropTests removes the named tests, preserving order.
func dropTests(tests []*harness.UnitTest, names []string) []*harness.UnitTest {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	out := tests[:0]
	for _, t := range tests {
		if !drop[t.Name] {
			out = append(out, t)
		}
	}
	return out
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
