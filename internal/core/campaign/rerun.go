package campaign

import (
	"encoding/json"
	"sort"

	"zebraconf/internal/core/coverage"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/testgen"
)

// RerunPlan partitions a campaign's tests by comparing each test's
// current coverage digest against a previous run's index: unchanged
// tests replay their stored item results, changed or unknown tests
// re-execute. This is what turns a campaign into a per-commit
// regression tool — an unchanged campaign reruns zero items.
type RerunPlan struct {
	// Changed lists tests that must re-execute, in suite order.
	Changed []string
	// Replayed lists tests whose stored results replay, in suite order.
	Replayed []string
	// Reasons names, per changed test, the parameters whose schema
	// digest drifted (empty for tests with no valid entry or stored
	// result, or when the drift is in the seed or environment key).
	Reasons map[string][]string
}

// PlanRerun computes the rerun partition for app under opts against a
// previous run's index and item store. A nil index or store plans a
// full re-execution. Overrides are applied before digesting, so a
// flipped default changes exactly the tests that read the parameter.
func PlanRerun(app *harness.App, opts Options, ix *coverage.Index, store *coverage.ItemStore) RerunPlan {
	schema := OverrideApp(app, opts.Overrides).Schema()
	tests, _ := selectTests(app, opts.Tests)
	plan := RerunPlan{Reasons: make(map[string][]string)}
	for _, t := range tests {
		name := t.Name
		stored := ix != nil && store != nil && ix.Tests[name] != nil && store.Items[name] != nil
		if !stored {
			plan.Changed = append(plan.Changed, name)
			continue
		}
		if ix.Valid(name, opts.Seed, opts.CoverageKey, schema) {
			plan.Replayed = append(plan.Replayed, name)
			continue
		}
		plan.Changed = append(plan.Changed, name)
		if changed := ix.ChangedParams(name, schema); len(changed) > 0 {
			plan.Reasons[name] = changed
		}
	}
	return plan
}

// Rerun executes the plan: changed tests run through a normal campaign,
// replayed tests' stored item results are decoded with their execution
// counters zeroed, and the combined item set is merged and scored as
// one result — identical in reported-set terms to a full run, because
// replay can only serve verdicts a full run would have recomputed
// byte-identically (the digests pin every input).
func Rerun(app *harness.App, opts Options, plan RerunPlan, store *coverage.ItemStore) *Result {
	schema := OverrideApp(app, opts.Overrides).Schema()
	gen := testgen.New(schema)
	if len(opts.Params) > 0 {
		gen.SetFilter(opts.Params)
	}

	var res *Result
	var items []ItemResult
	if len(plan.Changed) > 0 {
		ropts := opts
		ropts.Tests = plan.Changed
		fresh := Run(app, ropts)
		res = fresh
		items = append(items, fresh.Items...)
	} else {
		res = &Result{App: app.Name, NumParams: schema.Len(), Coverage: coverage.NewCollector()}
	}

	replayed := append([]string(nil), plan.Replayed...)
	sort.Strings(replayed)
	for i, name := range replayed {
		raw := store.Items[name]
		if raw == nil {
			continue
		}
		var item ItemResult
		if err := json.Unmarshal(raw, &item); err != nil {
			continue
		}
		// Replay costs nothing and leaks nothing; IDs are remapped past
		// the fresh items so the deterministic ID-ordered merge folds
		// fresh results first, then replays in sorted-name order.
		item.ID = len(plan.Changed) + i
		item.Test = name
		item.Executions = 0
		item.ExecutionsSaved = 0
		item.LeakedGoroutines = 0
		item.Spans = nil
		item.Replayed = true
		items = append(items, item)
	}

	// Re-merge the combined item set. Merge-derived fields reset first;
	// replayed items have zeroed counters, so execution accounting still
	// reflects only what actually ran. LeakedGoroutines is overwritten
	// afterwards: the in-process path measures it as a campaign-wide
	// delta, not per item, and the merge would lose it.
	leaked := res.LeakedGoroutines
	res.Reported = nil
	res.TruePositives, res.FalsePositives = 0, 0
	res.Missed = nil
	res.FirstTrialSignals, res.FilteredByHypothesis, res.HomoInvalid = 0, 0, 0
	res.SkippedTests = nil
	res.QuarantinedItems = nil
	res.Counts.Executed, res.Counts.ExecutionsSaved = 0, 0
	res.LeakedGoroutines = 0
	mergeResults(res, schema, gen, items, opts)
	res.LeakedGoroutines = leaked
	res.Items = items
	res.NumTests = len(plan.Changed) + len(plan.Replayed)
	return res
}
