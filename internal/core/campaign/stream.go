package campaign

import (
	"sync"
	"time"

	"zebraconf/internal/core/harness"
	"zebraconf/internal/core/runner"
	"zebraconf/internal/core/sched"
	"zebraconf/internal/core/testgen"
	"zebraconf/internal/obs"
)

// runStreamed is the pipelined path: one policy-aware queue holds both
// pending pre-runs and ready work items, and a single pool of
// Parallelism workers drains it. A test's work item is built and pushed
// (or Submitted to the Distributor) the moment its pre-run finishes, so
// instance execution overlaps the pre-run tail; sharing one pool keeps
// total concurrency at the same bound as the barriered path, which is
// what keeps timing-sensitive verdicts stable across the two.
func (c *campaignExec) runStreamed(tests []*harness.UnitTest) (pres []testgen.PreRun, itemResults []ItemResult, localLeaks int64) {
	app, o, opts := c.app, c.o, c.opts

	// Both phase spans open up front — the phases interleave — and each
	// phase's timer stops when its last unit of work finishes.
	_, endPre := c.phase("prerun")
	span, endInstances := c.phase("instances")

	p := &pipeline{
		exec:     c,
		span:     span,
		tests:    tests,
		pres:     make([]testgen.PreRun, len(tests)),
		results:  make([]ItemResult, len(tests)),
		preLeft:  len(tests),
		itemLeft: len(tests),
		endPre:   endPre,
		q:        sched.NewQueue[streamTask](opts.SchedPolicy, o, app.Name, "stream"),
	}
	var leakBase int64
	if opts.Distributor != nil {
		opts.Distributor.Begin(span, len(tests))
	} else {
		p.onUnsafe = c.unsafeHook()
		// Abandoned-goroutine accounting: one campaign-wide delta, as in
		// the barriered path.
		leakBase = harness.AbandonedGoroutines()
	}
	for i, t := range tests {
		// A pre-run's priority is its item's profiled duration: under
		// LPT the pre-runs that unlock the longest items go first, so
		// those items enter the pipeline earliest.
		pred, _ := opts.Profile.Predict(app.Name, t.Name)
		p.q.Push(streamTask{prerun: true, idx: i}, pred)
	}
	if len(tests) == 0 {
		endPre()
		p.q.Close()
	}

	var wg sync.WaitGroup
	for w := 0; w < opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.work()
		}()
	}
	wg.Wait()
	if opts.Distributor != nil {
		itemResults = opts.Distributor.Drain()
	} else {
		itemResults = p.results
		localLeaks = harness.AbandonedGoroutines() - leakBase
	}
	endInstances()
	return p.pres, itemResults, localLeaks
}

// streamTask is one unit of pipeline work: a pre-run (by test index) or
// a ready work item.
type streamTask struct {
	prerun bool
	idx    int
	item   WorkItem
}

// pipeline is the mutable state of one streamed phase-1→phase-2 run.
type pipeline struct {
	exec *campaignExec
	span obs.SpanID

	tests    []*harness.UnitTest
	pres     []testgen.PreRun
	results  []ItemResult
	onUnsafe func(inst testgen.Instance, r runner.Result)
	endPre   func()
	q        *sched.Queue[streamTask]

	mu       sync.Mutex
	preLeft  int
	itemLeft int
}

func (p *pipeline) work() {
	for {
		t, ok := p.q.Pop()
		if !ok {
			return
		}
		if t.prerun {
			p.doPreRun(t.idx)
		} else {
			p.doItem(t.item)
		}
	}
}

// doPreRun executes one pre-run and immediately builds and dispatches
// its work item: to the Distributor in dist mode, else back into the
// queue at its predicted-duration priority. The last pre-run closes the
// phase-1 timer (and, in dist mode, the queue — nothing else will be
// pushed).
func (p *pipeline) doPreRun(idx int) {
	c := p.exec
	pre, d := c.run.PreRunTimed(p.tests[idx])
	p.pres[idx] = pre
	item := WorkItem{ID: idx, Test: pre.Test, PreRun: pre, ForceParams: c.force[pre.Test]}
	item.PredSeconds, item.PredTrials = c.predict(item, d.Seconds())
	c.o.Stat().ItemQueued(item.ID, item.Test, item.PredSeconds)

	p.mu.Lock()
	p.preLeft--
	last := p.preLeft == 0
	p.mu.Unlock()
	if c.opts.Distributor != nil {
		c.opts.Distributor.Submit(item)
		if last {
			p.endPre()
			p.q.Close()
		}
		return
	}
	p.q.Push(streamTask{idx: idx, item: item}, item.PredSeconds)
	if last {
		p.endPre()
	}
}

// doItem executes one work item; the last one closes the queue and with
// it the worker pool.
func (p *pipeline) doItem(item WorkItem) {
	c := p.exec
	t0 := time.Now()
	c.noteDispatch(item)
	res := ExecuteItem(c.app, c.gen, c.run, c.opts, p.span, item, p.onUnsafe, false)
	// Same per-item run-time histogram the barriered parallelMap path
	// records (queue wait is already observed at the queue's pop), so
	// the ledger's perf summary sees item durations on either path.
	c.o.Observe(obs.MItemRunSeconds, time.Since(t0).Seconds(),
		"app", c.app.Name, "stage", "instances")
	c.observeItem(item, time.Since(t0), res.Executions)
	p.results[item.ID] = res

	p.mu.Lock()
	p.itemLeft--
	done := p.itemLeft == 0
	p.mu.Unlock()
	if done {
		p.q.Close()
	}
}
