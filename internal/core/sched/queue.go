package sched

import (
	"sync"
	"time"

	"zebraconf/internal/obs"
)

// Queue is the streaming pipeline's dispatch queue: producers Push tasks
// with a predicted duration, a fixed pool of workers Pop them, and the
// policy decides which ready task goes next — FIFO pops in arrival
// order, LPT pops the longest predicted task first. Pop blocks until a
// task is available or the queue is closed and empty.
//
// When an observer is attached, every pop records the task's queue wait
// (MSchedQueueWait) and every pop that overtakes an earlier-arrived task
// counts toward MSchedReordered — the statistics that make scheduler
// wins attributable instead of folded into phase totals.
type Queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	policy Policy
	tasks  []queued[T]
	seq    int
	closed bool

	o          *obs.Observer
	app, stage string
}

type queued[T any] struct {
	v    T
	pred float64
	seq  int
	enq  time.Time
}

// NewQueue builds an empty queue dispatching under policy. o may be nil.
func NewQueue[T any](policy Policy, o *obs.Observer, app, stage string) *Queue[T] {
	q := &Queue[T]{policy: policy, o: o, app: app, stage: stage}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues one task with its predicted duration in seconds.
func (q *Queue[T]) Push(v T, pred float64) {
	q.mu.Lock()
	q.tasks = append(q.tasks, queued[T]{v: v, pred: pred, seq: q.seq, enq: time.Now()})
	q.seq++
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop blocks until a task is ready and returns the policy's pick;
// ok=false means the queue was closed and fully drained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	for len(q.tasks) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.tasks) == 0 {
		q.mu.Unlock()
		return v, false
	}
	best := 0
	if q.policy == LPT {
		for i := 1; i < len(q.tasks); i++ {
			if q.tasks[i].pred > q.tasks[best].pred {
				best = i
			}
		}
	}
	t := q.tasks[best]
	// Tasks append in seq order, so index 0 holds the oldest waiter;
	// picking any other index overtakes it.
	jumped := best != 0
	copy(q.tasks[best:], q.tasks[best+1:])
	q.tasks = q.tasks[:len(q.tasks)-1]
	q.mu.Unlock()

	q.o.Observe(obs.MSchedQueueWait, time.Since(t.enq).Seconds(), "app", q.app, "stage", q.stage)
	if jumped {
		q.o.CounterAdd(obs.MSchedReordered, 1, "app", q.app)
	}
	return t.v, true
}

// Close marks the queue complete: Pops drain the remaining tasks and
// then return ok=false. Pushing after Close is a programming error.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len returns the number of tasks currently waiting.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}
