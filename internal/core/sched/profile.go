package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// profileVersion is the on-disk format version; a file with a different
// version is rejected rather than misread.
const profileVersion = 1

// profileAlpha is the EWMA weight of the newest observation. Durations
// drift with host load and code changes, so recent campaigns should
// dominate, but a single noisy run should not erase history.
const profileAlpha = 0.5

// Estimate is one (app, test) duration estimate: an exponentially
// weighted moving average of observed work-item wall clocks, in seconds,
// and the number of observations folded in. TrialSeconds and Trials are
// the per-trial decomposition — EWMA of seconds-per-trial and of the
// item's trial count — so predictions track sequential stopping instead
// of skewing when round counts shrink: a whole-item EWMA learned under
// 8-round confirmation over-predicts forever once early stopping cuts
// most items to 2-3 rounds. Both are additive fields: profiles written
// before trial accounting load with them zero and predictions fall back
// to Seconds.
type Estimate struct {
	Seconds      float64 `json:"seconds"`
	Samples      int64   `json:"samples"`
	TrialSeconds float64 `json:"trial_seconds,omitempty"`
	Trials       float64 `json:"trials,omitempty"`
}

// Profile is a persistent store of per-(app, unit test) work-item
// durations, the scheduler's prediction source. It is concurrency-safe:
// campaign workers record completions into it while the dispatcher reads
// predictions out. The on-disk format is a small versioned JSON document
// ({"version":1,"apps":{app:{test:{seconds,samples}}}}); maps marshal
// with sorted keys, so saving the same profile twice produces identical
// bytes.
type Profile struct {
	mu   sync.Mutex
	apps map[string]map[string]*Estimate
}

type profileFile struct {
	Version int                             `json:"version"`
	Apps    map[string]map[string]*Estimate `json:"apps"`
}

// NewProfile returns an empty profile (every prediction misses).
func NewProfile() *Profile {
	return &Profile{apps: make(map[string]map[string]*Estimate)}
}

// LoadProfile reads a profile from path. A missing file is not an
// error — it is the cold-campaign case and yields an empty profile — but
// a present-and-unreadable one is.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewProfile(), nil
	}
	if err != nil {
		return nil, err
	}
	var f profileFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sched: profile %s: %w", path, err)
	}
	if f.Version != profileVersion {
		return nil, fmt.Errorf("sched: profile %s: version %d, want %d", path, f.Version, profileVersion)
	}
	p := NewProfile()
	for app, tests := range f.Apps {
		m := make(map[string]*Estimate, len(tests))
		for test, e := range tests {
			if e != nil && e.Seconds >= 0 {
				cp := *e
				m[test] = &cp
			}
		}
		p.apps[app] = m
	}
	return p, nil
}

// Record folds one observed work-item duration into the estimate.
func (p *Profile) Record(app, test string, seconds float64) {
	p.RecordTrials(app, test, seconds, 0)
}

// RecordTrials folds one observed work-item duration and its unit-test
// trial count into the estimate. trials == 0 means "unknown" (an item
// that generated no instances, or a caller without trial accounting) and
// updates only the whole-item average.
func (p *Profile) RecordTrials(app, test string, seconds float64, trials int64) {
	if p == nil || seconds < 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.apps[app]
	if m == nil {
		m = make(map[string]*Estimate)
		p.apps[app] = m
	}
	e := m[test]
	if e == nil {
		e = &Estimate{Seconds: seconds, Samples: 1}
		if trials > 0 {
			e.TrialSeconds = seconds / float64(trials)
			e.Trials = float64(trials)
		}
		m[test] = e
		return
	}
	e.Seconds = profileAlpha*seconds + (1-profileAlpha)*e.Seconds
	e.Samples++
	if trials > 0 {
		perTrial := seconds / float64(trials)
		if e.Trials == 0 {
			e.TrialSeconds = perTrial
			e.Trials = float64(trials)
		} else {
			e.TrialSeconds = profileAlpha*perTrial + (1-profileAlpha)*e.TrialSeconds
			e.Trials = profileAlpha*float64(trials) + (1-profileAlpha)*e.Trials
		}
	}
}

// Predict returns the estimated duration for one (app, test), and
// whether the profile has ever observed it. When the per-trial
// decomposition is warm it predicts per-trial cost × expected trials —
// tracking sequential stopping — else the whole-item EWMA.
func (p *Profile) Predict(app, test string) (seconds float64, ok bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.apps[app][test]; e != nil {
		if e.TrialSeconds > 0 && e.Trials > 0 {
			return e.TrialSeconds * e.Trials, true
		}
		return e.Seconds, true
	}
	return 0, false
}

// PredictTrials returns the expected unit-test trial count for one
// (app, test), and whether the profile has trial observations for it.
func (p *Profile) PredictTrials(app, test string) (trials float64, ok bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.apps[app][test]; e != nil && e.Trials > 0 {
		return e.Trials, true
	}
	return 0, false
}

// Len returns the number of (app, test) estimates held.
func (p *Profile) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, m := range p.apps {
		n += len(m)
	}
	return n
}

// Save writes the profile to path atomically (temp file + rename), so a
// campaign killed mid-save never leaves a torn profile for the next run.
func (p *Profile) Save(path string) error {
	p.mu.Lock()
	data, err := json.MarshalIndent(profileFile{Version: profileVersion, Apps: p.apps}, "", "  ")
	p.mu.Unlock()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".profile-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
