package sched

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	t.Parallel()
	for s, want := range map[string]Policy{"fifo": FIFO, "FIFO": FIFO, "lpt": LPT, "LPT": LPT} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sjf"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRankFIFOIsIdentity(t *testing.T) {
	t.Parallel()
	order, moved := Rank(FIFO, []float64{1, 9, 3, 7})
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) || moved != 0 {
		t.Fatalf("FIFO rank = %v moved=%d, want identity", order, moved)
	}
}

func TestRankLPTDescendingTiesByIndex(t *testing.T) {
	t.Parallel()
	order, moved := Rank(LPT, []float64{1, 5, 3, 5, 0})
	// 5s first (index order among the tie), then 3, 1, 0.
	if want := []int{1, 3, 2, 0, 4}; !reflect.DeepEqual(order, want) {
		t.Fatalf("LPT rank = %v, want %v", order, want)
	}
	if moved != 3 {
		t.Fatalf("moved = %d, want 3 (indexes 2 and 4 keep their slots)", moved)
	}
}

// TestRankDeterministic pins the scheduler's core safety property at the
// ordering level: the same prediction vector always yields the same
// permutation, so a campaign re-run with the same profile dispatches
// identically.
func TestRankDeterministic(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	pred := make([]float64, 100)
	for i := range pred {
		pred[i] = float64(rng.Intn(20)) // coarse values force many ties
	}
	first, _ := Rank(LPT, pred)
	for i := 0; i < 5; i++ {
		again, _ := Rank(LPT, pred)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\n first %v\n again %v", i, first, again)
		}
	}
}

// TestLPTBeatsFIFOMakespan is the property the whole PR rests on: on a
// simulated worker pool with skewed durations, LPT's makespan is no
// worse than FIFO's on every instance, and strictly better on skewed
// ones where FIFO parks a long item last.
func TestLPTBeatsFIFOMakespan(t *testing.T) {
	t.Parallel()
	makespan := func(order []int, dur []float64, workers int) float64 {
		// List scheduling: each item in dispatch order goes to the
		// earliest-free worker.
		free := make([]float64, workers)
		for _, idx := range order {
			w := 0
			for i := 1; i < workers; i++ {
				if free[i] < free[w] {
					w = i
				}
			}
			free[w] += dur[idx]
		}
		max := 0.0
		for _, f := range free {
			if f > max {
				max = f
			}
		}
		return max
	}

	rng := rand.New(rand.NewSource(42))
	improved, worse := 0, 0
	var fifoTotal, lptTotal float64
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(30)
		workers := 2 + rng.Intn(6)
		dur := make([]float64, n)
		var sum, longest float64
		for i := range dur {
			// Heavy-tailed mix: mostly sub-second items, a few minutes-long
			// ones — the shape of a real campaign's work items.
			if rng.Intn(4) == 0 {
				dur[i] = 30 + 120*rng.Float64()
			} else {
				dur[i] = rng.Float64()
			}
			sum += dur[i]
			if dur[i] > longest {
				longest = dur[i]
			}
		}
		fifoOrder, _ := Rank(FIFO, dur)
		lptOrder, _ := Rank(LPT, dur)
		fifo := makespan(fifoOrder, dur, workers)
		lpt := makespan(lptOrder, dur, workers)
		fifoTotal += fifo
		lptTotal += lpt
		// Per-instance guarantee: any list schedule — LPT included — stays
		// under sum/m + (1-1/m)·longest, which is < 2× the trivial lower
		// bound max(sum/m, longest). LPT is NOT per-instance dominant over
		// FIFO (it is a 4/3-approximation, and FIFO can get lucky), so
		// dominance is asserted in aggregate below.
		m := float64(workers)
		if bound := sum/m + (1-1/m)*longest; lpt > bound+1e-9 {
			t.Fatalf("trial %d: LPT makespan %.3f above the list-scheduling bound %.3f", trial, lpt, bound)
		}
		if lpt < fifo-1e-9 {
			improved++
		} else if lpt > fifo+1e-9 {
			worse++
		}
	}
	if lptTotal >= fifoTotal {
		t.Fatalf("LPT total makespan %.1f not below FIFO's %.1f across 200 skewed instances", lptTotal, fifoTotal)
	}
	if improved < 100 {
		t.Fatalf("LPT strictly improved only %d/200 skewed instances; the optimisation is vacuous", improved)
	}
	if improved <= worse*3 {
		t.Fatalf("LPT improved %d but worsened %d instances; the ordering is not pulling its weight", improved, worse)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "profile.json")
	p := NewProfile()
	p.Record("minihdfs", "TestWriteRead", 4)
	p.Record("minihdfs", "TestWriteRead", 2) // EWMA: 0.5*2 + 0.5*4 = 3
	p.Record("miniyarn", "TestTimelineQuery", 0.25)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := got.Predict("minihdfs", "TestWriteRead"); !ok || s != 3 {
		t.Fatalf("Predict after round trip = %v, %v, want 3 (EWMA)", s, ok)
	}
	if s, ok := got.Predict("miniyarn", "TestTimelineQuery"); !ok || s != 0.25 {
		t.Fatalf("Predict = %v, %v, want 0.25", s, ok)
	}
	if _, ok := got.Predict("minihdfs", "TestNever"); ok {
		t.Fatal("unknown test predicted")
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d, want 2", got.Len())
	}

	// Saving twice produces identical bytes (sorted-map marshalling), so
	// profile churn never dirties a checked-in file spuriously.
	path2 := filepath.Join(t.TempDir(), "profile2.json")
	if err := got.Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatalf("save not deterministic:\n %s\n %s", b1, b2)
	}
}

func TestProfileMissingFileIsCold(t *testing.T) {
	t.Parallel()
	p, err := LoadProfile(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing profile is an error: %v", err)
	}
	if _, ok := p.Predict("a", "t"); ok {
		t.Fatal("cold profile predicted something")
	}
	// The nil profile (no -profile flag) behaves the same everywhere.
	var nilp *Profile
	nilp.Record("a", "t", 1)
	if _, ok := nilp.Predict("a", "t"); ok {
		t.Fatal("nil profile predicted")
	}
	if nilp.Len() != 0 {
		t.Fatal("nil profile has length")
	}
}

func TestProfileRejectsGarbage(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadProfile(bad); err == nil {
		t.Fatal("corrupt profile accepted")
	}
	wrongVer := filepath.Join(dir, "ver.json")
	os.WriteFile(wrongVer, []byte(`{"version":99,"apps":{}}`), 0o644)
	if _, err := LoadProfile(wrongVer); err == nil {
		t.Fatal("future-versioned profile accepted")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	t.Parallel()
	q := NewQueue[int](FIFO, nil, "app", "stream")
	for i := 0; i < 5; i++ {
		q.Push(i, float64(5-i))
	}
	for want := 0; want < 5; want++ {
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d, %v, want %d (FIFO ignores priority)", got, ok, want)
		}
	}
	q.Close()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on a closed empty queue returned a task")
	}
}

func TestQueueLPTOrder(t *testing.T) {
	t.Parallel()
	q := NewQueue[string](LPT, nil, "app", "stream")
	q.Push("short", 0.1)
	q.Push("long", 9)
	q.Push("mid", 3)
	q.Push("long2", 9) // tie: earliest push wins
	for _, want := range []string{"long", "long2", "mid", "short"} {
		got, ok := q.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %q, %v, want %q", got, ok, want)
		}
	}
}

// TestQueueCloseReleasesBlockedPop pins the shutdown path: workers
// blocked in Pop must all return ok=false when the queue closes, or the
// streaming pipeline's WaitGroup would deadlock.
func TestQueueCloseReleasesBlockedPop(t *testing.T) {
	t.Parallel()
	q := NewQueue[int](LPT, nil, "app", "stream")
	const workers = 4
	var wg sync.WaitGroup
	released := make(chan bool, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ok := q.Pop()
			released <- ok
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Pop still blocked after Close")
	}
	for i := 0; i < workers; i++ {
		if <-released {
			t.Fatal("closed queue handed out a task")
		}
	}
}

// TestQueueConcurrentPushPop hammers the queue from both sides; run
// under -race this is the pipeline's memory-safety test.
func TestQueueConcurrentPushPop(t *testing.T) {
	t.Parallel()
	q := NewQueue[int](LPT, nil, "app", "stream")
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i, float64(i%17))
		}
		q.Close()
	}()
	var mu sync.Mutex
	seen := make(map[int]bool)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d popped twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("popped %d values, want %d", len(seen), n)
	}
}

func TestOverdue(t *testing.T) {
	t.Parallel()
	cases := []struct {
		held time.Duration
		pred float64
		fac  float64
		want bool
	}{
		{0, 10, 1.5, false},
		{16 * time.Second, 10, 1.5, true},
		{14 * time.Second, 10, 1.5, false},
		{time.Second, 10, 0, false},  // speculation disabled
		{time.Second, 0, 1.5, false}, // no prediction
		// Threshold floors at MinSpeculationDelay: a 1ms item is not
		// speculated 2ms in.
		{2 * time.Millisecond, 0.001, 1.5, false},
		{150 * time.Millisecond, 0.001, 1.5, true},
	}
	for i, tc := range cases {
		if got := Overdue(tc.held, tc.pred, tc.fac); got != tc.want {
			t.Fatalf("case %d: Overdue(%v, %v, %v) = %v, want %v", i, tc.held, tc.pred, tc.fac, got, tc.want)
		}
	}
}

func TestProfileRecordTrialsPerTrialPrediction(t *testing.T) {
	t.Parallel()
	p := NewProfile()
	// A 24-trial item at 12s: 0.5 s/trial. The whole-item EWMA alone
	// would predict 12s for every future item of this test, even after
	// sequential stopping cuts it to a third of the trials.
	p.RecordTrials("minihdfs", "TestWriteRead", 12, 24)
	if s, ok := p.Predict("minihdfs", "TestWriteRead"); !ok || s != 12 {
		t.Fatalf("Predict = %v, %v, want 12 (0.5 s/trial x 24 trials)", s, ok)
	}
	if n, ok := p.PredictTrials("minihdfs", "TestWriteRead"); !ok || n != 24 {
		t.Fatalf("PredictTrials = %v, %v, want 24", n, ok)
	}
	// Early stopping shrinks the item to 8 trials at the same per-trial
	// cost: the prediction must track the shrunk trial count, not the
	// stale whole-item average.
	p.RecordTrials("minihdfs", "TestWriteRead", 4, 8)
	n, ok := p.PredictTrials("minihdfs", "TestWriteRead")
	if !ok || n != 16 { // EWMA: 0.5*8 + 0.5*24
		t.Fatalf("PredictTrials = %v, %v, want 16 (EWMA)", n, ok)
	}
	s, ok := p.Predict("minihdfs", "TestWriteRead")
	if !ok || s != 8 { // 0.5 s/trial x 16 expected trials
		t.Fatalf("Predict = %v, %v, want 8 (per-trial decomposition)", s, ok)
	}
}

func TestProfileRecordWithoutTrialsFallsBack(t *testing.T) {
	t.Parallel()
	p := NewProfile()
	p.Record("a", "t", 6)
	p.RecordTrials("a", "t", 4, 0) // unknown trials: whole-item only
	if s, ok := p.Predict("a", "t"); !ok || s != 5 {
		t.Fatalf("Predict = %v, %v, want 5 (whole-item EWMA)", s, ok)
	}
	if _, ok := p.PredictTrials("a", "t"); ok {
		t.Fatal("PredictTrials answered with no trial observations")
	}
	// Nil profile stays inert through the new paths too.
	var nilp *Profile
	nilp.RecordTrials("a", "t", 1, 2)
	if _, ok := nilp.PredictTrials("a", "t"); ok {
		t.Fatal("nil profile predicted trials")
	}
}

func TestProfileLoadsPreTrialFormat(t *testing.T) {
	t.Parallel()
	// A profile written before trial accounting: same version, no
	// trial_seconds/trials keys. It must load and predict from Seconds.
	path := filepath.Join(t.TempDir(), "old.json")
	os.WriteFile(path, []byte(`{"version":1,"apps":{"minihdfs":{"TestFsck":{"seconds":2.5,"samples":3}}}}`), 0o644)
	p, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := p.Predict("minihdfs", "TestFsck"); !ok || s != 2.5 {
		t.Fatalf("Predict from pre-trial profile = %v, %v, want 2.5", s, ok)
	}
	if _, ok := p.PredictTrials("minihdfs", "TestFsck"); ok {
		t.Fatal("pre-trial profile predicted trials")
	}
	// Folding a trial observation in upgrades the estimate in place and
	// round-trips through the same version-1 format.
	p.RecordTrials("minihdfs", "TestFsck", 3, 6)
	out := filepath.Join(t.TempDir(), "new.json")
	if err := p.Save(out); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadProfile(out)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := p2.PredictTrials("minihdfs", "TestFsck"); !ok || n != 6 {
		t.Fatalf("PredictTrials after upgrade round-trip = %v, %v, want 6", n, ok)
	}
}
