// Package sched is ZebraConf's adaptive campaign scheduler. Phase-2 work
// items are independent and wildly skewed in duration (a test with two
// reachable parameters finishes in milliseconds while a sleep-heavy one
// holds a worker for minutes), so the makespan of a campaign is set
// almost entirely by dispatch order: declaration order can park the
// longest item last and idle every other worker while it runs alone.
//
// The package provides three pieces, each usable on its own:
//
//   - Policy + Rank: longest-predicted-processing-time-first (LPT)
//     ordering of a batch, the classic greedy whose makespan is within
//     4/3 of optimal on identical machines, with FIFO kept as the
//     ablation baseline.
//   - Profile: a persistent per-(app, test) wall-clock store (EWMA over
//     campaigns, JSON on disk) supplying the duration predictions; cold
//     campaigns fall back to pre-run durations measured the same run.
//   - Queue: a policy-aware blocking queue for the phase-1→phase-2
//     streaming pipeline, dispatching the highest-priority ready task
//     and recording queue-wait and reorder statistics.
//
// The scheduler never changes what runs — per-item seeds depend only on
// the campaign seed and the item's content, and the phase-3 merge folds
// results in item-ID order — so any dispatch order yields the same
// merged report; sched only chooses when each item runs.
package sched

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Policy selects the dispatch order for phase-2 work items.
type Policy int

const (
	// FIFO dispatches items in declaration order — the pre-scheduler
	// behaviour, kept as the ablation baseline (-sched=fifo).
	FIFO Policy = iota
	// LPT dispatches longest-predicted-processing-time-first, so the
	// items that dominate the makespan start while every worker is busy
	// and the schedule's tail is made of short items.
	LPT
)

// ParsePolicy parses the -sched flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "fifo":
		return FIFO, nil
	case "lpt":
		return LPT, nil
	}
	return FIFO, fmt.Errorf("sched: unknown policy %q (want lpt or fifo)", s)
}

func (p Policy) String() string {
	if p == LPT {
		return "lpt"
	}
	return "fifo"
}

// Rank returns the dispatch order for a batch of items with the given
// predicted durations, as a permutation of indices, plus the number of
// items whose position changed (the reordered-items statistic). FIFO is
// the identity. LPT sorts descending by prediction with ties broken by
// index, so the order is deterministic for a given prediction set.
func Rank(policy Policy, pred []float64) (order []int, moved int) {
	order = make([]int, len(pred))
	for i := range order {
		order[i] = i
	}
	if policy != LPT {
		return order, 0
	}
	sort.SliceStable(order, func(a, b int) bool {
		return pred[order[a]] > pred[order[b]]
	})
	for pos, idx := range order {
		if pos != idx {
			moved++
		}
	}
	return order, moved
}

// MinSpeculationDelay is the floor under which an item is never
// speculated: predictions for trivial items round to ~0, and re-issuing
// a millisecond item costs more than it could ever recover.
const MinSpeculationDelay = 100 * time.Millisecond

// Overdue reports whether an item held for `held` should be
// speculatively re-issued: speculation is enabled (factor > 0), a
// prediction exists (predSeconds > 0), and the item has been held longer
// than factor × its predicted duration (never sooner than
// MinSpeculationDelay).
func Overdue(held time.Duration, predSeconds, factor float64) bool {
	if factor <= 0 || predSeconds <= 0 {
		return false
	}
	threshold := time.Duration(factor * predSeconds * float64(time.Second))
	if threshold < MinSpeculationDelay {
		threshold = MinSpeculationDelay
	}
	return held > threshold
}
