// Package diskcache is ZebraConf's persistent execution store: a
// content-addressed, disk-backed memo.Backend shared *across*
// campaigns. The in-process memo cache (PR 3) dies with the process and
// the coordinator-shared tier dies with the campaign; this tier is a
// build-cache for trials — a repeat campaign on an unchanged app finds
// nearly every canonically-seeded execution already on disk and is
// nearly free.
//
// Layout: one JSON file per entry in a flat directory, named by the
// SHA-256 of the memo key, written via temp-file + atomic rename so a
// reader never observes a torn entry. Every read re-verifies that the
// stored key equals the requested one (a hash collision or corrupted
// file must degrade to a miss, never a wrong verdict); entries that
// fail to parse or verify are deleted on sight. The store is size
// capped with LRU eviction ordered by last-hit time.
//
// Stores compose: Open takes an optional next Backend, forming the
// memory → disk → coordinator lookup hierarchy. A disk miss consults
// next and writes a hit through, so remote results persist locally.
package diskcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zebraconf/internal/core/memo"
	"zebraconf/internal/obs"
)

// DefaultMaxBytes caps the store at 256 MiB when no cap is given —
// roughly two orders of magnitude above a full five-app campaign's
// entry volume, so eviction only matters under long-lived service use.
const DefaultMaxBytes = 256 << 20

// Stats is a point-in-time counter snapshot, served by the campaign
// server's /api/status endpoint.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Writes    int64 `json:"writes"`
	Evictions int64 `json:"evictions"`
	Corrupt   int64 `json:"corrupt"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Store implements memo.Backend over a directory of entry files.
// Safe for concurrent use by multiple goroutines; concurrent *processes*
// sharing a directory are safe too (atomic renames, re-verified reads),
// though each process evicts against its own view of the size.
type Store struct {
	dir  string
	max  int64
	next memo.Backend
	o    *obs.Observer

	hits, misses, writes, evictions, corrupt atomic.Int64

	mu      sync.Mutex
	entries map[string]*entry // file name -> index entry
	total   int64             // sum of entry sizes
	clock   int64             // logical LRU clock, bumped per touch
}

type entry struct {
	size  int64
	atime int64 // logical last-touch time (clock value)
}

// fileEntry is the on-disk record. The key is stored alongside the
// result precisely so Get can verify it: the file name is a hash, and
// trusting a hash alone would convert corruption into wrong verdicts.
type fileEntry struct {
	Key     memo.Key    `json:"key"`
	Result  memo.Result `json:"result"`
	Created int64       `json:"created_unix"`
}

// Open loads (or creates) a store at dir. maxBytes <= 0 selects
// DefaultMaxBytes. next, when non-nil, is consulted on disk misses and
// written through on its hits. o may be nil.
func Open(dir string, maxBytes int64, next memo.Backend, o *obs.Observer) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{dir: dir, max: maxBytes, next: next, o: o, entries: make(map[string]*entry)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	type aged struct {
		name  string
		size  int64
		mtime time.Time
	}
	var found []aged
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, "tmp-") {
			// Leftover from a crashed writer; never renamed, never valid.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{name, info.Size(), info.ModTime()})
	}
	// Seed the LRU order from mtimes so a reopened store evicts oldest
	// entries first instead of directory order.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found {
		s.clock++
		s.entries[f.name] = &entry{size: f.size, atime: s.clock}
		s.total += f.size
	}
	s.evictLocked("")
	s.gaugesLocked()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// entryName derives the file name for a key: SHA-256 over the canonical
// key fields. Assign is already a collision-resistant digest, but
// hashing the full key keeps names fixed-length and filesystem-safe for
// arbitrary app/test names.
func entryName(k memo.Key) string {
	h := sha256.New()
	h.Write([]byte(k.App))
	h.Write([]byte{0})
	h.Write([]byte(k.Test))
	h.Write([]byte{0})
	h.Write([]byte(k.Assign))
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d", k.Seed)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16]) + ".json"
}

// Get implements memo.Backend. Every failure mode — missing file,
// unparseable JSON, stored key not matching the requested one — is a
// miss; corrupt files are additionally deleted so they stop costing a
// read. A miss falls through to next (when configured) and its hit is
// written through to disk.
func (s *Store) Get(k memo.Key) (memo.Result, bool) {
	name := entryName(k)
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err == nil {
		var fe fileEntry
		if jsonErr := json.Unmarshal(data, &fe); jsonErr == nil && fe.Key == k {
			s.touch(name, int64(len(data)))
			s.hits.Add(1)
			s.o.CounterAdd(obs.MDiskCacheHits, 1)
			if age := time.Since(time.Unix(fe.Created, 0)).Seconds(); fe.Created > 0 && age >= 0 {
				s.o.Observe(obs.MDiskCacheHitAge, age)
			}
			return fe.Result, true
		}
		// Truncated, garbage, or a key mismatch: evict the file and
		// fall through to a miss. Never serve a result we can't verify.
		s.removeEntry(name)
		s.corrupt.Add(1)
		s.o.CounterAdd(obs.MDiskCacheCorrupt, 1)
	}
	s.misses.Add(1)
	s.o.CounterAdd(obs.MDiskCacheMisses, 1)
	if s.next != nil {
		if res, ok := s.next.Get(k); ok {
			s.write(k, res)
			return res, true
		}
	}
	return memo.Result{}, false
}

// Put implements memo.Backend: persist locally, then forward so upper
// tiers (the coordinator-shared cache) learn the result too.
func (s *Store) Put(k memo.Key, res memo.Result) {
	s.write(k, res)
	if s.next != nil {
		s.next.Put(k, res)
	}
}

// write persists one entry via temp file + atomic rename and applies
// LRU eviction under the size cap. Write failures are swallowed: the
// disk tier degrades to a smaller (or empty) cache, never an error.
func (s *Store) write(k memo.Key, res memo.Result) {
	name := entryName(k)
	s.mu.Lock()
	_, exists := s.entries[name]
	s.mu.Unlock()
	if exists {
		// Entries are immutable (seeded-deterministic executions), so a
		// rewrite could only produce the same bytes.
		return
	}
	data, err := json.Marshal(fileEntry{Key: k, Result: res, Created: time.Now().Unix()})
	if err != nil {
		return
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.writes.Add(1)
	s.o.CounterAdd(obs.MDiskCacheWrites, 1)
	s.mu.Lock()
	if _, dup := s.entries[name]; !dup {
		s.clock++
		s.entries[name] = &entry{size: int64(len(data)), atime: s.clock}
		s.total += int64(len(data))
	}
	s.evictLocked(name)
	s.gaugesLocked()
	s.mu.Unlock()
}

// evictLocked drops least-recently-hit entries until the store fits the
// cap. keep (the just-written entry, when set) is never evicted: a cap
// smaller than one entry should hold that entry, not thrash.
func (s *Store) evictLocked(keep string) {
	for s.total > s.max {
		victim, oldest := "", int64(0)
		for name, e := range s.entries {
			if name == keep {
				continue
			}
			if victim == "" || e.atime < oldest {
				victim, oldest = name, e.atime
			}
		}
		if victim == "" {
			return
		}
		s.total -= s.entries[victim].size
		delete(s.entries, victim)
		os.Remove(filepath.Join(s.dir, victim))
		s.evictions.Add(1)
		s.o.CounterAdd(obs.MDiskCacheEvictions, 1)
	}
}

// touch refreshes an entry's LRU position after a hit, adopting it into
// the index if another process (or a pre-Open writer) created it.
func (s *Store) touch(name string, size int64) {
	s.mu.Lock()
	s.clock++
	if e, ok := s.entries[name]; ok {
		e.atime = s.clock
	} else {
		s.entries[name] = &entry{size: size, atime: s.clock}
		s.total += size
		s.evictLocked(name)
	}
	s.gaugesLocked()
	s.mu.Unlock()
}

// removeEntry deletes a corrupt entry's file and index row.
func (s *Store) removeEntry(name string) {
	os.Remove(filepath.Join(s.dir, name))
	s.mu.Lock()
	if e, ok := s.entries[name]; ok {
		s.total -= e.size
		delete(s.entries, name)
	}
	s.gaugesLocked()
	s.mu.Unlock()
}

func (s *Store) gaugesLocked() {
	s.o.GaugeSet(obs.MDiskCacheBytes, s.total)
	s.o.GaugeSet(obs.MDiskCacheEntries, int64(len(s.entries)))
}

// Stats snapshots the store's counters and size.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n, b := len(s.entries), s.total
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
		Entries:   n,
		Bytes:     b,
	}
}
