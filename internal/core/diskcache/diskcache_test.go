package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zebraconf/internal/core/memo"
)

func key(i int) memo.Key {
	return memo.Key{App: "minihdfs", Test: "TestWriteRead", Assign: fmt.Sprintf("digest-%04d", i), Seed: int64(i)}
}

func result(i int) memo.Result {
	return memo.Result{Failed: i%2 == 0, Msg: fmt.Sprintf("outcome %d", i)}
}

func open(t *testing.T, dir string, max int64, next memo.Backend) *Store {
	t.Helper()
	s, err := Open(dir, max, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entryFiles lists the store's committed entry files.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}

func TestRoundtripAndReopen(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := open(t, dir, 0, nil)
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put(key(1), result(1))
	got, ok := s.Get(key(1))
	if !ok || !reflect.DeepEqual(got, result(1)) {
		t.Fatalf("Get after Put = %+v, %v; want %+v, true", got, ok, result(1))
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 write, 1 hit, 1 miss, 1 entry", st)
	}

	// Persistence is the whole point: a fresh store over the same
	// directory — a new server process — serves the entry.
	s2 := open(t, dir, 0, nil)
	if got, ok := s2.Get(key(1)); !ok || !reflect.DeepEqual(got, result(1)) {
		t.Fatalf("reopened Get = %+v, %v; want %+v, true", got, ok, result(1))
	}
}

// TestCorruptEntriesMissAndEvict is the safety property: a truncated or
// garbage entry file must degrade to a miss — never a wrong verdict —
// and be deleted so it stops costing a read.
func TestCorruptEntriesMissAndEvict(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := open(t, dir, 0, nil)
	for i, corruption := range [][]byte{
		[]byte(`{"key":{"app":"minihdfs","test":"TestWrite`), // truncated
		[]byte("\x00\xff garbage, not JSON at all\n"),        // garbage
	} {
		k := key(i)
		s.Put(k, result(i))
		path := filepath.Join(dir, entryName(k))
		if err := os.WriteFile(path, corruption, 0o644); err != nil {
			t.Fatal(err)
		}
		if res, ok := s.Get(k); ok {
			t.Fatalf("corruption %d: served a verdict from a corrupt entry: %+v", i, res)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corruption %d: corrupt entry was not evicted (stat err = %v)", i, err)
		}
	}
	if st := s.Stats(); st.Corrupt != 2 {
		t.Fatalf("corrupt counter = %d, want 2 (stats %+v)", st.Corrupt, st)
	}
}

// TestKeyMismatchIsMiss covers the stored-key verification: an entry
// whose content does not match the requested key (file renamed, hash
// collision) must be a miss, not someone else's verdict.
func TestKeyMismatchIsMiss(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := open(t, dir, 0, nil)
	s.Put(key(1), result(1))
	// Masquerade entry 1's file under entry 2's name.
	if err := os.Rename(filepath.Join(dir, entryName(key(1))), filepath.Join(dir, entryName(key(2)))); err != nil {
		t.Fatal(err)
	}
	if res, ok := s.Get(key(2)); ok {
		t.Fatalf("served key(1)'s verdict for key(2): %+v", res)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

func TestEvictionUnderSizeCap(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	// Size one entry, then cap the store at ~4 of them.
	probe := open(t, t.TempDir(), 0, nil)
	probe.Put(key(0), result(0))
	entrySize := probe.Stats().Bytes
	if entrySize <= 0 {
		t.Fatal("could not size a probe entry")
	}
	cap := 4 * entrySize

	s := open(t, dir, cap, nil)
	const n = 10
	for i := 0; i < n; i++ {
		s.Put(key(i), result(i))
	}
	st := s.Stats()
	if st.Bytes > cap {
		t.Fatalf("store size %d exceeds cap %d", st.Bytes, cap)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite writing past the cap")
	}
	if st.Entries+int(st.Evictions) != n {
		t.Fatalf("entries %d + evictions %d != %d writes", st.Entries, st.Evictions, n)
	}
	// LRU: the oldest (untouched) entries go first, the newest survives.
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Get(key(n - 1)); !ok {
		t.Fatal("newest entry was evicted")
	}
	if files := entryFiles(t, dir); len(files) != st.Entries {
		t.Fatalf("%d files on disk, index says %d entries", len(files), st.Entries)
	}
}

// memBackend is a map-backed next tier for hierarchy tests.
type memBackend struct {
	m    map[memo.Key]memo.Result
	puts int
}

func (b *memBackend) Get(k memo.Key) (memo.Result, bool) {
	res, ok := b.m[k]
	return res, ok
}

func (b *memBackend) Put(k memo.Key, res memo.Result) {
	b.puts++
	b.m[k] = res
}

// TestNextTierWriteThrough: a disk miss consults next, and next's hit is
// persisted locally so the round trip happens once.
func TestNextTierWriteThrough(t *testing.T) {
	t.Parallel()
	next := &memBackend{m: map[memo.Key]memo.Result{key(7): result(7)}}
	s := open(t, t.TempDir(), 0, next)
	if got, ok := s.Get(key(7)); !ok || !reflect.DeepEqual(got, result(7)) {
		t.Fatalf("Get via next = %+v, %v; want %+v, true", got, ok, result(7))
	}
	if st := s.Stats(); st.Writes != 1 {
		t.Fatalf("next's hit was not written through (stats %+v)", st)
	}
	if got, ok := s.Get(key(7)); !ok || !reflect.DeepEqual(got, result(7)) {
		t.Fatal("written-through entry not served locally")
	}
	// Put forwards upward so the coordinator tier learns results too.
	s.Put(key(8), result(8))
	if next.puts != 1 {
		t.Fatalf("Put forwarded %d times to next, want 1", next.puts)
	}
	if _, ok := next.Get(key(8)); !ok {
		t.Fatal("Put did not reach the next tier")
	}
}
