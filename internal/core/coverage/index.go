package coverage

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"zebraconf/internal/confkit"
)

// Entry is one test's persisted coverage record.
type Entry struct {
	// Digest keys the entry to its inputs: (test, seed, environment
	// key, and every read parameter's schema digest). A rerun replays
	// this test's stored results only while Digest still matches.
	Digest string `json:"digest"`
	// Params is the sorted, deduplicated set of parameters this test
	// was observed reading — pre-run reads plus any conditional reads
	// surfaced during phase-2 executions.
	Params []string `json:"params"`
	// ParamDigests maps each read parameter to its schema digest at
	// record time, so a rerun can name exactly which parameter's
	// definition changed.
	ParamDigests map[string]string `json:"param_digests,omitempty"`
	// Callsites maps a parameter to the sorted app-frame file:line
	// locations that read it (pre-run only; advisory).
	Callsites map[string][]string `json:"callsites,omitempty"`
}

// Index is the persisted param→tests coverage index for one app,
// keyed by (app, test, code/flags digest). Its serialized form is
// canonical: maps marshal with sorted keys and every slice is sorted
// at build time, so local and distributed runs of the same campaign
// produce byte-identical files.
type Index struct {
	App string `json:"app"`
	// Seed is the campaign base seed the entries were recorded under.
	Seed int64 `json:"seed"`
	// EnvKey digests the execution environment beyond the schema —
	// the CLI mixes in its verdict-relevant flags, the same set the
	// ledger records — so entries invalidate when significance,
	// rounds, or strategy change.
	EnvKey string `json:"env_key,omitempty"`
	// Tests maps test name → coverage entry.
	Tests map[string]*Entry `json:"tests"`
}

// ParamDigest canonically digests the behavior-relevant fields of a
// parameter definition: name, kind, default, candidates, and
// dependency rules. Truth labels, docs, and rationale are excluded —
// they affect scoring, not execution — so annotating a param does not
// invalidate reruns.
func ParamDigest(p *confkit.Param) string {
	if p == nil {
		return "absent"
	}
	h := sha256.New()
	w := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	w(p.Name)
	w(strconv.Itoa(int(p.Kind)))
	w(p.Default)
	for _, c := range p.Candidates {
		w(c)
	}
	for _, d := range p.DependsOn {
		w(d.If)
		w(d.Then)
		w(d.To)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:12])
}

// TestDigest derives an entry digest from a test's identity and the
// schema digests of the parameters it reads. paramDigests must hold a
// digest for every element of params.
func TestDigest(test string, seed int64, envKey string, params []string, paramDigests map[string]string) string {
	sorted := append([]string(nil), params...)
	sort.Strings(sorted)
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	w := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	w(test)
	w(envKey)
	for _, p := range sorted {
		w(p)
		w(paramDigests[p])
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// digestsFor computes the schema digests for params under schema.
func digestsFor(params []string, schema *confkit.Registry) map[string]string {
	out := make(map[string]string, len(params))
	for _, p := range params {
		out[p] = ParamDigest(schema.Lookup(p))
	}
	return out
}

// Build freezes a collector into a canonical index under the given
// identity. Every test the collector observed gets an entry — even
// zero-read tests, whose empty entries let selection skip them.
func Build(app string, seed int64, envKey string, col *Collector, schema *confkit.Registry) *Index {
	ix := &Index{App: app, Seed: seed, EnvKey: envKey, Tests: make(map[string]*Entry)}
	for _, t := range col.Tests() {
		params, _ := col.Params(t)
		pd := digestsFor(params, schema)
		ix.Tests[t] = &Entry{
			Digest:       TestDigest(t, seed, envKey, params, pd),
			Params:       params,
			ParamDigests: pd,
			Callsites:    col.Sites(t),
		}
	}
	return ix
}

// Adopt copies prev's entries for the named tests into ix — used by
// -mode rerun to carry forward coverage for tests it replayed without
// executing.
func (ix *Index) Adopt(prev *Index, tests []string) {
	if prev == nil {
		return
	}
	for _, t := range tests {
		if e := prev.Tests[t]; e != nil {
			if _, exists := ix.Tests[t]; !exists {
				ix.Tests[t] = e
			}
		}
	}
}

// Valid reports whether test's entry still matches the current
// (seed, envKey, schema) inputs — i.e. whether its recorded coverage
// can be trusted for selection or replay. Tests without entries are
// never valid.
func (ix *Index) Valid(test string, seed int64, envKey string, schema *confkit.Registry) bool {
	if ix == nil {
		return false
	}
	e := ix.Tests[test]
	if e == nil {
		return false
	}
	pd := digestsFor(e.Params, schema)
	return TestDigest(test, seed, envKey, e.Params, pd) == e.Digest
}

// ChangedParams names the parameters in test's entry whose schema
// digest no longer matches (empty when the entry is absent or the
// drift is outside the param set — seed or env key).
func (ix *Index) ChangedParams(test string, schema *confkit.Registry) []string {
	if ix == nil {
		return nil
	}
	e := ix.Tests[test]
	if e == nil {
		return nil
	}
	var changed []string
	for _, p := range e.Params {
		if ParamDigest(schema.Lookup(p)) != e.ParamDigests[p] {
			changed = append(changed, p)
		}
	}
	sort.Strings(changed)
	return changed
}

// TestsReading returns the sorted tests with an edge to param.
func (ix *Index) TestsReading(param string) []string {
	if ix == nil {
		return nil
	}
	var out []string
	for t, e := range ix.Tests {
		for _, p := range e.Params {
			if p == param {
				out = append(out, t)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Bytes renders the canonical serialized form. encoding/json sorts
// map keys and all slices were sorted at build time, so equal indexes
// render byte-identically regardless of construction order.
func (ix *Index) Bytes() ([]byte, error) {
	b, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// PathFor locates app's index file inside a ledger directory.
func PathFor(dir, app string) string {
	return filepath.Join(dir, "coverage-"+app+".json")
}

// Save writes the index canonically under dir (created if needed).
func Save(dir string, ix *Index) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := ix.Bytes()
	if err != nil {
		return err
	}
	tmp := PathFor(dir, ix.App) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, PathFor(dir, ix.App))
}

// Load reads app's index from dir; a missing file is (nil, nil) — a
// cold start, not an error.
func Load(dir, app string) (*Index, error) {
	b, err := os.ReadFile(PathFor(dir, app))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var ix Index
	if err := json.Unmarshal(b, &ix); err != nil {
		return nil, fmt.Errorf("coverage index %s: %w", PathFor(dir, app), err)
	}
	if ix.Tests == nil {
		ix.Tests = make(map[string]*Entry)
	}
	return &ix, nil
}
