package coverage

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"zebraconf/internal/confkit"
)

func testSchema() *confkit.Registry {
	r := confkit.NewRegistry()
	r.Register(
		confkit.Param{Name: "codec", Kind: confkit.Enum, Default: "plain",
			Candidates: []string{"plain", "zip"}},
		confkit.Param{Name: "buffer", Kind: confkit.Int, Default: "64"},
		confkit.Param{Name: "dir", Kind: confkit.String, Default: "/tmp"},
	)
	return r
}

func TestCollectorDedupesAndSorts(t *testing.T) {
	t.Parallel()
	c := NewCollector()
	c.Observe("TestA", []string{"dir", "codec", "codec"})
	c.Observe("TestA", []string{"buffer", "dir"})
	c.ObserveTest("TestB")
	got, ok := c.Params("TestA")
	if !ok || !reflect.DeepEqual(got, []string{"buffer", "codec", "dir"}) {
		t.Fatalf("Params(TestA) = %v, %v; want sorted deduped set", got, ok)
	}
	if got, ok := c.Params("TestB"); !ok || len(got) != 0 {
		t.Fatalf("Params(TestB) = %v, %v; want empty entry, true", got, ok)
	}
	if _, ok := c.Params("TestC"); ok {
		t.Fatal("unobserved test reported an entry")
	}
	if tests := c.Tests(); !reflect.DeepEqual(tests, []string{"TestA", "TestB"}) {
		t.Fatalf("Tests() = %v", tests)
	}
	// nil receiver is a no-op everywhere (runner paths with coverage off).
	var nilC *Collector
	nilC.Observe("TestX", []string{"p"})
	nilC.ObserveTest("TestX")
	if _, ok := nilC.Params("TestX"); ok {
		t.Fatal("nil collector claimed an entry")
	}
}

func TestParamDigestSensitivity(t *testing.T) {
	t.Parallel()
	base := confkit.Param{Name: "codec", Kind: confkit.Enum, Default: "plain",
		Candidates: []string{"plain", "zip"}}
	d0 := ParamDigest(&base)

	changedDefault := base
	changedDefault.Default = "zip"
	if ParamDigest(&changedDefault) == d0 {
		t.Fatal("default change did not move the digest")
	}
	changedCand := base
	changedCand.Candidates = []string{"plain", "zip", "lz4"}
	if ParamDigest(&changedCand) == d0 {
		t.Fatal("candidate change did not move the digest")
	}
	changedDep := base
	changedDep.DependsOn = []confkit.DependencyRule{{If: "zip", Then: "buffer", To: "1"}}
	if ParamDigest(&changedDep) == d0 {
		t.Fatal("dependency-rule change did not move the digest")
	}
	// Annotation-only edits must NOT invalidate reruns.
	annotated := base
	annotated.Truth = confkit.SafetyUnsafe
	annotated.Why = "reason"
	annotated.Doc = "docs"
	if ParamDigest(&annotated) != d0 {
		t.Fatal("annotation change moved the digest")
	}
	if ParamDigest(nil) != "absent" {
		t.Fatal("nil param digest not canonical")
	}
}

func TestTestDigestSensitivity(t *testing.T) {
	t.Parallel()
	pd := map[string]string{"a": "d1", "b": "d2"}
	d0 := TestDigest("TestX", 7, "env", []string{"a", "b"}, pd)
	if TestDigest("TestX", 7, "env", []string{"b", "a"}, pd) != d0 {
		t.Fatal("param order changed the digest")
	}
	if TestDigest("TestX", 8, "env", []string{"a", "b"}, pd) == d0 {
		t.Fatal("seed change did not move the digest")
	}
	if TestDigest("TestX", 7, "env2", []string{"a", "b"}, pd) == d0 {
		t.Fatal("env key change did not move the digest")
	}
	pd2 := map[string]string{"a": "d1", "b": "DIFFERENT"}
	if TestDigest("TestX", 7, "env", []string{"a", "b"}, pd2) == d0 {
		t.Fatal("param digest change did not move the digest")
	}
}

// TestIndexCanonicalBytes is the satellite bugfix property: two
// collectors observing the same edges in different orders (as a local
// pool and a sharded worker fleet would) freeze to byte-identical
// index files.
func TestIndexCanonicalBytes(t *testing.T) {
	t.Parallel()
	schema := testSchema()
	c1 := NewCollector()
	c1.Observe("TestA", []string{"codec", "buffer"})
	c1.Observe("TestB", []string{"dir"})
	c2 := NewCollector()
	c2.Observe("TestB", []string{"dir"})
	c2.Observe("TestA", []string{"buffer"})
	c2.Observe("TestA", []string{"codec", "buffer"})

	b1, err := Build("app", 7, "env", c1, schema).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Build("app", 7, "env", c2, schema).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("observation order changed the serialized index:\n%s\nvs\n%s", b1, b2)
	}
}

func TestIndexValidAndChangedParams(t *testing.T) {
	t.Parallel()
	schema := testSchema()
	c := NewCollector()
	c.Observe("TestA", []string{"codec", "buffer"})
	ix := Build("app", 7, "env", c, schema)

	if !ix.Valid("TestA", 7, "env", schema) {
		t.Fatal("fresh entry not valid under its own inputs")
	}
	if ix.Valid("TestA", 8, "env", schema) {
		t.Fatal("entry valid under a different seed")
	}
	if ix.Valid("TestA", 7, "env2", schema) {
		t.Fatal("entry valid under a different env key")
	}
	if ix.Valid("TestMissing", 7, "env", schema) {
		t.Fatal("absent test valid")
	}

	// Flip one read parameter's default: only it should be named.
	drifted := testSchema()
	drifted.Lookup("codec").Default = "zip"
	if ix.Valid("TestA", 7, "env", drifted) {
		t.Fatal("entry still valid after a read param's default changed")
	}
	if got := ix.ChangedParams("TestA", drifted); !reflect.DeepEqual(got, []string{"codec"}) {
		t.Fatalf("ChangedParams = %v, want [codec]", got)
	}
	// A drift in an UNread parameter must not invalidate the test.
	unread := testSchema()
	unread.Lookup("dir").Default = "/var"
	if !ix.Valid("TestA", 7, "env", unread) {
		t.Fatal("unread param drift invalidated the entry")
	}
}

func TestIndexAdoptAndTestsReading(t *testing.T) {
	t.Parallel()
	schema := testSchema()
	prev := NewCollector()
	prev.Observe("TestA", []string{"codec"})
	prev.Observe("TestB", []string{"buffer"})
	prevIx := Build("app", 7, "env", prev, schema)

	cur := NewCollector()
	cur.Observe("TestB", []string{"buffer", "dir"})
	ix := Build("app", 7, "env", cur, schema)
	ix.Adopt(prevIx, []string{"TestA", "TestB", "TestGone"})

	if e := ix.Tests["TestA"]; e == nil || !reflect.DeepEqual(e.Params, []string{"codec"}) {
		t.Fatalf("adopted entry wrong: %+v", e)
	}
	// A fresh entry wins over the adopted one.
	if e := ix.Tests["TestB"]; !reflect.DeepEqual(e.Params, []string{"buffer", "dir"}) {
		t.Fatalf("Adopt overwrote a fresh entry: %+v", e)
	}
	if got := ix.TestsReading("buffer"); !reflect.DeepEqual(got, []string{"TestB"}) {
		t.Fatalf("TestsReading(buffer) = %v", got)
	}
	if got := ix.TestsReading("codec"); !reflect.DeepEqual(got, []string{"TestA"}) {
		t.Fatalf("TestsReading(codec) = %v", got)
	}
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if ix, err := Load(dir, "app"); err != nil || ix != nil {
		t.Fatalf("cold load = %v, %v; want nil, nil", ix, err)
	}
	schema := testSchema()
	c := NewCollector()
	c.Observe("TestA", []string{"codec"})
	ix := Build("app", 7, "env", c, schema)
	if err := Save(dir, ix); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, "app")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := ix.Bytes()
	b2, _ := got.Bytes()
	if !bytes.Equal(b1, b2) {
		t.Fatal("save/load round trip not byte-identical")
	}
	// Save into a nested directory that does not exist yet.
	if err := Save(filepath.Join(dir, "a", "b"), ix); err != nil {
		t.Fatalf("Save into missing dir: %v", err)
	}
}

func TestItemStoreRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if st, err := LoadItems(dir, "app"); err != nil || st != nil {
		t.Fatalf("cold item load = %v, %v; want nil, nil", st, err)
	}
	st := &ItemStore{App: "app", Items: map[string]json.RawMessage{
		"TestA": json.RawMessage(`{"id":0}`),
	}}
	if err := SaveItems(dir, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadItems(dir, "app")
	if err != nil {
		t.Fatal(err)
	}
	// MarshalIndent reformats the embedded raw JSON, so compare decoded
	// values, not bytes.
	var v struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(got.Items["TestA"], &v); err != nil || v.ID != 0 {
		t.Fatalf("item round trip changed payload: %s (%v)", got.Items["TestA"], err)
	}
	if _, ok := got.Items["TestB"]; ok {
		t.Fatal("phantom item after round trip")
	}
}
