package coverage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ItemStore persists a campaign's per-test item results as raw JSON,
// keyed by test name, so -mode rerun can replay the verdicts of tests
// whose coverage digest is unchanged without re-executing them. The
// values are opaque here (campaign.ItemResult marshals them) to keep
// the import direction coverage ← campaign.
type ItemStore struct {
	App   string                     `json:"app"`
	Items map[string]json.RawMessage `json:"items"`
}

// ItemsPathFor locates app's item store inside a ledger directory.
func ItemsPathFor(dir, app string) string {
	return filepath.Join(dir, "items-"+app+".json")
}

// SaveItems writes the store under dir (created if needed).
func SaveItems(dir string, st *ItemStore) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := ItemsPathFor(dir, st.App) + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, ItemsPathFor(dir, st.App))
}

// LoadItems reads app's item store from dir; missing is (nil, nil).
func LoadItems(dir, app string) (*ItemStore, error) {
	b, err := os.ReadFile(ItemsPathFor(dir, app))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var st ItemStore
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("item store %s: %w", ItemsPathFor(dir, app), err)
	}
	if st.Items == nil {
		st.Items = make(map[string]json.RawMessage)
	}
	return &st, nil
}
