// Package coverage turns the agent's read interception into a
// persistent param→tests index: during phase-1 pre-runs (and every
// phase-2 execution) it records which parameters each unit test
// actually reads, and phase 2 can then dispatch a parameter's
// instances only to tests that read it — the "configuration testing
// as continuous testing" direction (Ctest, PAPERS.md) that ROADMAP
// open item 1 calls the biggest raw-speed lever after memoization.
//
// The collector is the in-memory sink; the Index is its canonical,
// digest-keyed persisted form (see index.go). Coverage deliberately
// does NOT flow through the bounded forensic read trace: that trace
// is capped (CaptureSpec.ReadEvents) and drops reads past the limit,
// which would silently lose edges — the sink here dedupes instead of
// bounding, so a test reading ten thousand distinct parameters keeps
// every edge.
package coverage

import (
	"sort"
	"sync"
)

// testCov is one test's accumulated read set.
type testCov struct {
	params map[string]bool
	// sites maps param → set of app-frame callsites (file:line, already
	// normalized to the last two path segments by the agent). Filled
	// only for pre-runs, where the one stack-walk-enabled execution per
	// test is cheap.
	sites map[string]map[string]bool
}

// Collector accumulates deduplicated (param, test) coverage edges
// across a campaign. It is safe for concurrent use and — like the
// memo cache — nil-safe: a nil *Collector ignores observations, so
// callers never branch on whether coverage is enabled.
type Collector struct {
	mu    sync.Mutex
	tests map[string]*testCov
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{tests: make(map[string]*testCov)}
}

func (c *Collector) covFor(test string) *testCov {
	tc := c.tests[test]
	if tc == nil {
		tc = &testCov{params: make(map[string]bool)}
		c.tests[test] = tc
	}
	return tc
}

// Observe records that test read each of params. Duplicate edges
// collapse; order is irrelevant. No-op on a nil receiver or an empty
// param list (a test that read nothing gains no entry — absence and
// emptiness are distinguished by ObserveTest).
func (c *Collector) Observe(test string, params []string) {
	if c == nil || test == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(params) == 0 {
		return
	}
	tc := c.covFor(test)
	for _, p := range params {
		tc.params[p] = true
	}
}

// ObserveTest ensures test has an entry even if it read no parameters:
// a pre-run that touched zero params is still a fact worth indexing
// (such a test can be deselected from every parameter campaign).
func (c *Collector) ObserveTest(test string) {
	if c == nil || test == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.covFor(test)
}

// ObserveSites records app-frame callsites per parameter for test.
// Callsites are advisory (triage breadcrumbs in the index); only the
// (param, test) edge set affects selection.
func (c *Collector) ObserveSites(test string, sites map[string][]string) {
	if c == nil || test == "" || len(sites) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tc := c.covFor(test)
	if tc.sites == nil {
		tc.sites = make(map[string]map[string]bool)
	}
	for p, ss := range sites {
		tc.params[p] = true
		set := tc.sites[p]
		if set == nil {
			set = make(map[string]bool)
			tc.sites[p] = set
		}
		for _, s := range ss {
			if s != "" {
				set[s] = true
			}
		}
	}
}

// Tests returns the sorted set of tests observed so far.
func (c *Collector) Tests() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.tests))
	for t := range c.tests {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Params returns the sorted parameters test was observed reading, and
// whether the test was observed at all (distinguishing "read nothing"
// from "never ran").
func (c *Collector) Params(test string) ([]string, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tc := c.tests[test]
	if tc == nil {
		return nil, false
	}
	out := make([]string, 0, len(tc.params))
	for p := range tc.params {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, true
}

// Sites returns test's param→sorted-callsites map (nil when none were
// observed).
func (c *Collector) Sites(test string) map[string][]string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tc := c.tests[test]
	if tc == nil || len(tc.sites) == 0 {
		return nil
	}
	out := make(map[string][]string, len(tc.sites))
	for p, set := range tc.sites {
		ss := make([]string, 0, len(set))
		for s := range set {
			ss = append(ss, s)
		}
		sort.Strings(ss)
		out[p] = ss
	}
	return out
}
