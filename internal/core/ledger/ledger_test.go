package ledger

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func record(runID, app string, params ...string) Record {
	lines := make([]string, 0, len(params))
	for _, p := range params {
		lines = append(lines, p+"\x00unsafe")
	}
	return Record{
		RunID:           runID,
		Start:           "2026-08-07T00:00:00Z",
		App:             app,
		Seed:            7,
		Flags:           map[string]string{"seed": "7", "no-pool": "true"},
		FlagsDigest:     DigestFlags(map[string]string{"seed": "7", "no-pool": "true"}),
		Reported:        params,
		ReportedDigest:  DigestReported(lines),
		Executions:      100,
		MakespanSeconds: 12.5,
	}
}

func TestAppendReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	a := record("aaaa1111", "minihdfs", "dfs.checksum.type")
	b := record("bbbb2222", "minihdfs", "dfs.checksum.type")
	if err := Append(dir, a); err != nil {
		t.Fatal(err)
	}
	if err := Append(dir, b); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].RunID != "aaaa1111" || recs[1].RunID != "bbbb2222" {
		t.Fatalf("roundtrip: %+v", recs)
	}
	if recs[0].Reported[0] != "dfs.checksum.type" || recs[0].MakespanSeconds != 12.5 {
		t.Fatalf("record fields lost: %+v", recs[0])
	}
}

func TestReadMissingLedgerIsEmpty(t *testing.T) {
	recs, err := Read(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing ledger: recs=%v err=%v", recs, err)
	}
}

func TestReadSkipsCorruptTail(t *testing.T) {
	dir := t.TempDir()
	if err := Append(dir, record("aaaa1111", "minihdfs", "p")); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"run_id":"trunc`) // a crash mid-append
	f.Close()
	recs, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].RunID != "aaaa1111" {
		t.Fatalf("corrupt tail not skipped: %+v", recs)
	}
}

func TestDigestsAreOrderIndependentAndSensitive(t *testing.T) {
	d1 := DigestReported([]string{"a\x00unsafe", "b\x00unsafe"})
	d2 := DigestReported([]string{"b\x00unsafe", "a\x00unsafe"})
	if d1 != d2 {
		t.Fatal("reported digest depends on order")
	}
	if d1 == DigestReported([]string{"a\x00unsafe"}) {
		t.Fatal("reported digest insensitive to membership")
	}
	f1 := DigestFlags(map[string]string{"a": "1", "b": "2"})
	f2 := DigestFlags(map[string]string{"b": "2", "a": "1"})
	if f1 != f2 {
		t.Fatal("flags digest depends on map order")
	}
	if f1 == DigestFlags(map[string]string{"a": "1", "b": "3"}) {
		t.Fatal("flags digest insensitive to values")
	}
}

func TestNewRunIDDistinguishesRuns(t *testing.T) {
	now := time.Now()
	a := NewRunID("minihdfs", 7, now, 100)
	b := NewRunID("minihdfs", 7, now.Add(time.Second), 100)
	if a == b {
		t.Fatal("run IDs collide across start times")
	}
}

func TestPickPairDefaultAndByPrefix(t *testing.T) {
	recs := []Record{
		record("aaaa1111", "minihdfs", "p"),
		record("bbbb2222", "minizk", "p"),
		record("cccc3333", "minihdfs", "p"),
		record("dddd4444", "minihdfs", "p"),
	}
	a, b, err := PickPair(recs, "minihdfs", "")
	if err != nil {
		t.Fatal(err)
	}
	if a.RunID != "cccc3333" || b.RunID != "dddd4444" {
		t.Fatalf("default pair: %s, %s", a.RunID, b.RunID)
	}
	a, b, err = PickPair(recs, "", "aaaa,dddd")
	if err != nil {
		t.Fatal(err)
	}
	if a.RunID != "aaaa1111" || b.RunID != "dddd4444" {
		t.Fatalf("prefix pair: %s, %s", a.RunID, b.RunID)
	}
	if _, _, err = PickPair(recs, "minizk", ""); err == nil {
		t.Fatal("one minizk record should not diff")
	}
	if _, _, err = PickPair(recs, "", "zzzz,aaaa"); err == nil {
		t.Fatal("unknown prefix should error")
	}
}

func TestDiffCleanAndRegression(t *testing.T) {
	a := record("aaaa1111", "minihdfs", "p1", "p2")
	b := record("bbbb2222", "minihdfs", "p1", "p2")
	d := Diff(a, b)
	if !d.Clean() || !d.FlagsMatch {
		t.Fatalf("identical runs not clean: %+v", d)
	}

	c := record("cccc3333", "minihdfs", "p1", "p3")
	d = Diff(a, c)
	if d.Clean() {
		t.Fatal("regression not detected")
	}
	if len(d.AddedParams) != 1 || d.AddedParams[0] != "p3" {
		t.Fatalf("added: %v", d.AddedParams)
	}
	if len(d.RemovedParams) != 1 || d.RemovedParams[0] != "p2" {
		t.Fatalf("removed: %v", d.RemovedParams)
	}

	var buf bytes.Buffer
	d.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "+ p3") || !strings.Contains(out, "- p2") || !strings.Contains(out, "DELTA") {
		t.Fatalf("rendered diff missing regression lines:\n%s", out)
	}
}

func TestDiffMakespan(t *testing.T) {
	a := record("aaaa1111", "minihdfs", "p")
	b := record("bbbb2222", "minihdfs", "p")
	b.MakespanSeconds = 25
	d := Diff(a, b)
	if d.MakespanDelta != 12.5 || d.MakespanRatio != 2 {
		t.Fatalf("makespan delta %.1f ratio %.1f", d.MakespanDelta, d.MakespanRatio)
	}
	if !d.Clean() {
		t.Fatal("makespan alone must not dirty the reported-set diff")
	}
}
