// Package ledger is ZebraConf's persistent run record: every campaign
// appends one summary line to a JSONL ledger file, and Diff compares two
// records — the tooling behind `zebraconf -mode diff` and
// `reportgen -diff`. The ledger makes the five-app equivalence invariant
// a first-class artifact: the reported parameter set travels as a sorted
// list plus a digest, so "did this change alter any report?" is a single
// digest comparison across runs, machines, and flag ablations.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"zebraconf/internal/core/campaign"
	"zebraconf/internal/obs"
)

// FileName is the ledger file inside a -ledger directory.
const FileName = "ledger.jsonl"

// Record is one campaign's ledger entry.
type Record struct {
	// RunID identifies the run: a short fnv-1a hash of app, seed, start
	// time, and pid — unique enough to name runs in -diff-runs while
	// staying human-quotable.
	RunID string `json:"run_id"`
	// Start is the campaign's wall-clock start, RFC3339.
	Start string `json:"start"`
	App   string `json:"app"`
	Seed  int64  `json:"seed"`
	// Flags holds the execution-affecting flag settings the run was
	// invoked with; FlagsDigest is a sha256 over the sorted k=v pairs.
	// Observability-only flags (trace, metrics, events, http, ledger…)
	// are excluded — they cannot change the outcome, and diffing two
	// runs that differ only in instrumentation must come out clean.
	Flags       map[string]string `json:"flags,omitempty"`
	FlagsDigest string            `json:"flags_digest"`
	// Reported is the sorted reported-parameter set; ReportedDigest is
	// a sha256 over the sorted param\x00truth lines, the byte-identity
	// the equivalence invariant pins.
	Reported       []string `json:"reported"`
	ReportedDigest string   `json:"reported_digest"`

	Tests           int     `json:"tests"`
	Params          int     `json:"params"`
	TruePositives   int     `json:"true_positives"`
	FalsePositives  int     `json:"false_positives"`
	Missed          int     `json:"missed"`
	Executions      int64   `json:"executions"`
	ExecutionsSaved int64   `json:"executions_saved"`
	MakespanSeconds float64 `json:"makespan_seconds"`
	Workers         int     `json:"workers,omitempty"`
	WorkerStalls    int64   `json:"worker_stalls,omitempty"`
	SkippedTests    int     `json:"skipped_tests,omitempty"`
	QuarantinedItems int    `json:"quarantined_items,omitempty"`
	// EvidenceRecords counts reported parameters carrying a forensic
	// evidence record; EvidenceBytes is their serialized volume — the
	// evidence budget statistics of this run's report.
	EvidenceRecords int   `json:"evidence_records,omitempty"`
	EvidenceBytes   int64 `json:"evidence_bytes,omitempty"`
	// Coverage-selection and incremental-rerun accounting.
	// DeselectedTests counts tests coverage-driven selection skipped;
	// ChangedTests / ReplayedTests partition a -mode rerun (both zero
	// for a normal run). Deltas over these fields are advisory, like
	// executions: the equivalence invariant pins only the reported set.
	DeselectedTests int `json:"deselected_tests,omitempty"`
	ChangedTests    int `json:"changed_tests,omitempty"`
	ReplayedTests   int `json:"replayed_tests,omitempty"`
	// Perf is the run's performance summary (nil for records written
	// before the observatory existed, or for unobserved runs — readers
	// treat nil as "no perf data", never as an error). Callers fill it
	// after Summarize since it derives from the observer, not the result.
	Perf *obs.PerfSummary `json:"perf,omitempty"`
}

// Summarize condenses one finished campaign into a Record: the sorted
// reported set with its digest, the execution-affecting flags with
// theirs, and the run's counters. Shared by the CLI's -ledger path and
// the campaign server, so locally-run and submitted campaigns produce
// directly diffable records.
func Summarize(res *campaign.Result, seed int64, start time.Time, workers int, flags map[string]string) Record {
	names := make([]string, 0, len(res.Reported))
	lines := make([]string, 0, len(res.Reported))
	var evRecords int
	var evBytes int64
	for _, p := range res.Reported {
		names = append(names, p.Param)
		lines = append(lines, p.Param+"\x00"+p.Truth.String())
		if p.Evidence != nil {
			evRecords++
			if b, err := json.Marshal(p.Evidence); err == nil {
				evBytes += int64(len(b))
			}
		}
	}
	sort.Strings(names)
	return Record{
		RunID:            NewRunID(res.App, seed, start, os.Getpid()),
		Start:            start.UTC().Format(time.RFC3339),
		App:              res.App,
		Seed:             seed,
		Flags:            flags,
		FlagsDigest:      DigestFlags(flags),
		Reported:         names,
		ReportedDigest:   DigestReported(lines),
		Tests:            res.NumTests,
		Params:           res.NumParams,
		TruePositives:    res.TruePositives,
		FalsePositives:   res.FalsePositives,
		Missed:           len(res.Missed),
		Executions:       res.Counts.Executed,
		ExecutionsSaved:  res.Counts.ExecutionsSaved,
		MakespanSeconds:  res.Elapsed.Seconds(),
		Workers:          workers,
		WorkerStalls:     res.WorkerStalls,
		SkippedTests:     len(res.SkippedTests),
		QuarantinedItems: len(res.QuarantinedItems),
		EvidenceRecords:  evRecords,
		EvidenceBytes:    evBytes,
		DeselectedTests:  len(res.DeselectedTests),
	}
}

// NewRunID derives a record's RunID.
func NewRunID(app string, seed int64, start time.Time, pid int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", app, seed, start.UnixNano(), pid)
	return hex.EncodeToString(h.Sum(nil))
}

// DigestFlags computes the flags digest: sha256 over sorted k=v lines.
func DigestFlags(flags map[string]string) string {
	keys := make([]string, 0, len(flags))
	for k := range flags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, flags[k])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// DigestReported computes the reported-set digest over sorted
// param\x00truth lines. lines must already be in "param\x00truth" form;
// the helper sorts defensively so digest equality is order-independent.
func DigestReported(lines []string) string {
	sorted := append([]string(nil), lines...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, l := range sorted {
		io.WriteString(h, l)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Append adds one record to dir's ledger file, creating the directory
// as needed. Appends are single O_APPEND writes of one JSON line, so
// concurrent campaigns interleave whole records.
func Append(dir string, rec Record) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return err
	}
	return f.Sync()
}

// Read loads every record of dir's ledger, oldest first. A missing file
// is an empty ledger, not an error; corrupt lines are skipped (a ledger
// survives partial writes the way the checkpoint journal does).
func Read(dir string) ([]Record, error) {
	f, err := os.Open(filepath.Join(dir, FileName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			// Skip a corrupt tail by resyncing to the next line.
			return out, nil
		}
		if rec.RunID != "" {
			out = append(out, rec)
		}
	}
}

// PickPair selects the two records to diff: the app's two most recent
// by default, or the two named (by RunID or unique prefix) in runs as
// "a,b". The returned order is (older, newer) for the default; for
// explicit runs it is (first named, second named).
func PickPair(recs []Record, app, runs string) (a, b Record, err error) {
	if runs != "" {
		parts := strings.Split(runs, ",")
		if len(parts) != 2 {
			return a, b, fmt.Errorf("ledger: -diff-runs wants two comma-separated run IDs, got %q", runs)
		}
		find := func(prefix string) (Record, error) {
			prefix = strings.TrimSpace(prefix)
			if prefix == "" {
				return Record{}, fmt.Errorf("ledger: empty run ID in %q", runs)
			}
			var hits []Record
			for _, r := range recs {
				if strings.HasPrefix(r.RunID, prefix) && (app == "" || r.App == app) {
					hits = append(hits, r)
				}
			}
			switch len(hits) {
			case 0:
				return Record{}, fmt.Errorf("ledger: no record matches run ID %q", prefix)
			case 1:
				return hits[0], nil
			default:
				return Record{}, fmt.Errorf("ledger: run ID %q is ambiguous (%d matches)", prefix, len(hits))
			}
		}
		if a, err = find(parts[0]); err != nil {
			return a, b, err
		}
		b, err = find(parts[1])
		return a, b, err
	}
	var mine []Record
	for _, r := range recs {
		if app == "" || r.App == app {
			mine = append(mine, r)
		}
	}
	if len(mine) < 2 {
		return a, b, fmt.Errorf("ledger: need at least two records for app %q, have %d", app, len(mine))
	}
	return mine[len(mine)-2], mine[len(mine)-1], nil
}

// Delta is the comparison of two ledger records.
type Delta struct {
	A, B Record
	// AddedParams / RemovedParams are reported-set regressions: present
	// in B but not A, and vice versa.
	AddedParams   []string
	RemovedParams []string
	// FlagsMatch reports whether the execution-affecting flags were
	// identical (a mismatch makes a reported-set delta expected rather
	// than alarming).
	FlagsMatch bool
	// MakespanDelta is B minus A in seconds; MakespanRatio is B over A
	// (0 when A's makespan is 0).
	MakespanDelta float64
	MakespanRatio float64
	ExecutionsDelta int64
}

// Clean reports whether the reported parameter sets are identical —
// the equivalence invariant between the two runs.
func (d Delta) Clean() bool {
	return len(d.AddedParams) == 0 && len(d.RemovedParams) == 0 &&
		d.A.ReportedDigest == d.B.ReportedDigest
}

// Diff compares two records.
func Diff(a, b Record) Delta {
	d := Delta{
		A:               a,
		B:               b,
		FlagsMatch:      a.FlagsDigest == b.FlagsDigest,
		MakespanDelta:   b.MakespanSeconds - a.MakespanSeconds,
		ExecutionsDelta: b.Executions - a.Executions,
	}
	if a.MakespanSeconds > 0 {
		d.MakespanRatio = b.MakespanSeconds / a.MakespanSeconds
	}
	in := func(set []string, p string) bool {
		for _, q := range set {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, p := range b.Reported {
		if !in(a.Reported, p) {
			d.AddedParams = append(d.AddedParams, p)
		}
	}
	for _, p := range a.Reported {
		if !in(b.Reported, p) {
			d.RemovedParams = append(d.RemovedParams, p)
		}
	}
	sort.Strings(d.AddedParams)
	sort.Strings(d.RemovedParams)
	return d
}

// Render writes the human-readable diff report.
func (d Delta) Render(w io.Writer) {
	fmt.Fprintf(w, "ledger diff: %s (%s) vs %s (%s) · app %s\n",
		d.A.RunID, d.A.Start, d.B.RunID, d.B.Start, d.A.App)
	if d.FlagsMatch {
		fmt.Fprintf(w, "  flags:     identical (digest %s)\n", d.A.FlagsDigest)
	} else {
		fmt.Fprintf(w, "  flags:     DIFFER (%s vs %s) — outcome deltas may be intended\n",
			d.A.FlagsDigest, d.B.FlagsDigest)
		keys := map[string]bool{}
		for k := range d.A.Flags {
			keys[k] = true
		}
		for k := range d.B.Flags {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			if d.A.Flags[k] != d.B.Flags[k] {
				fmt.Fprintf(w, "    %s: %q -> %q\n", k, d.A.Flags[k], d.B.Flags[k])
			}
		}
	}
	if d.Clean() {
		fmt.Fprintf(w, "  reported:  identical — %d params (digest %s)\n",
			len(d.A.Reported), d.A.ReportedDigest)
	} else {
		fmt.Fprintf(w, "  reported:  DELTA — %d -> %d params (digest %s -> %s)\n",
			len(d.A.Reported), len(d.B.Reported), d.A.ReportedDigest, d.B.ReportedDigest)
		for _, p := range d.AddedParams {
			fmt.Fprintf(w, "    + %s\n", p)
		}
		for _, p := range d.RemovedParams {
			fmt.Fprintf(w, "    - %s\n", p)
		}
	}
	fmt.Fprintf(w, "  makespan:  %.1fs -> %.1fs (%+.1fs", d.A.MakespanSeconds, d.B.MakespanSeconds, d.MakespanDelta)
	if d.MakespanRatio > 0 {
		fmt.Fprintf(w, ", %.2fx", d.MakespanRatio)
	}
	fmt.Fprintf(w, ")\n")
	fmt.Fprintf(w, "  execs:     %d -> %d (%+d) · saved %d -> %d\n",
		d.A.Executions, d.B.Executions, d.ExecutionsDelta,
		d.A.ExecutionsSaved, d.B.ExecutionsSaved)
	if d.A.WorkerStalls != 0 || d.B.WorkerStalls != 0 {
		fmt.Fprintf(w, "  stalls:    %d -> %d\n", d.A.WorkerStalls, d.B.WorkerStalls)
	}
}
