package harness

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
	"zebraconf/internal/obs"
)

// Abandoned-goroutine accounting: when a unit test times out, the harness
// cannot kill its goroutine — Go offers no preemptive kill — so the body
// keeps running (against an already-closed Env) until it returns on its
// own. The counters are process-global because the hazard is
// process-global: an abandoned goroutine competes for the scheduler and
// can keep mutating shared state. The distributed worker mode exists to
// turn this leak into a killable subprocess.
var (
	abandonedTotal atomic.Int64 // cumulative abandonments
	leakedNow      atomic.Int64 // abandoned bodies still running
)

// AbandonedGoroutines reports the cumulative number of test goroutines
// abandoned after a timeout since process start.
func AbandonedGoroutines() int64 { return abandonedTotal.Load() }

// LeakedGoroutines reports how many abandoned test goroutines are still
// running right now.
func LeakedGoroutines() int64 { return leakedNow.Load() }

// DefaultTestTimeout bounds one unit-test execution in real time. Tests
// that hang — e.g. a balancer that never finishes because the NameNode
// keeps declining its moves — fail with a timeout, exactly like a JUnit
// test with a @Timeout rule.
const DefaultTestTimeout = 15 * time.Second

// UnitTest is one registered whole-system (or function-level) unit test.
type UnitTest struct {
	// Name identifies the test within its application.
	Name string
	// Run is the test body.
	Run func(t *T)
	// Timeout overrides DefaultTestTimeout when positive.
	Timeout time.Duration
}

// AnnotationStats is the application's Table 4 analog: how many lines were
// added or changed to support ZebraConf.
type AnnotationStats struct {
	// NodeLines counts annotations in node classes (StartInit/StopInit,
	// RefToClone call sites).
	NodeLines int
	// ConfLines counts annotations in the configuration class.
	ConfLines int
}

// App is one target application: its schema, node types, and unit tests.
type App struct {
	// Name is the application name used in reports ("minihdfs", ...).
	Name string
	// Schema builds the application's parameter registry, including
	// parameters inherited from shared libraries.
	Schema func() *confkit.Registry
	// NodeTypes lists the node types the application can start (Table 2).
	NodeTypes []string
	// Tests is the unit-test suite ZebraConf reuses.
	Tests []UnitTest
	// Annotations reports the instrumentation effort (Table 4).
	Annotations AnnotationStats
}

// Test returns the named test, or an error.
func (a *App) Test(name string) (*UnitTest, error) {
	for i := range a.Tests {
		if a.Tests[i].Name == name {
			return &a.Tests[i], nil
		}
	}
	return nil, fmt.Errorf("harness: app %s has no test %q", a.Name, name)
}

// TestNames returns the suite's test names in registration order.
func (a *App) TestNames() []string {
	out := make([]string, len(a.Tests))
	for i := range a.Tests {
		out[i] = a.Tests[i].Name
	}
	return out
}

// Outcome is the result of one unit-test execution.
type Outcome struct {
	// Failed reports whether the test failed (assertion, fatal, panic, or
	// timeout).
	Failed bool
	// TimedOut reports whether the failure was an execution timeout.
	TimedOut bool
	// Msg carries the first failure message, for diagnosis.
	Msg string
	// Report is the agent's pre-run bookkeeping for this execution.
	Report agent.Report
	// Elapsed is the real execution time.
	Elapsed time.Duration

	// Forensics capture, populated only by RunOnceCaptured with a
	// non-zero CaptureSpec. Logs is the (ring-capped) harness log;
	// LogDroppedBytes/LogDroppedMsgs account ring evictions between
	// Logs[0] and Logs[1]. Reads is the agent's ordered read trace;
	// ReadsDropped counts reads beyond its cap.
	Logs            []string          `json:"logs,omitempty"`
	LogDroppedBytes int               `json:"log_dropped_bytes,omitempty"`
	LogDroppedMsgs  int               `json:"log_dropped_msgs,omitempty"`
	Reads           []agent.ReadEvent `json:"reads,omitempty"`
	ReadsDropped    int               `json:"reads_dropped,omitempty"`

	// Coverage sink, populated only when opts.Coverage (or
	// opts.CoverageSites) was set — independent of CaptureSpec, because
	// the forensic trace above is capped and coverage must not be:
	// ReadParams is the full deduplicated sorted set of parameters the
	// execution read, regardless of how many reads the trace dropped.
	ReadParams []string `json:"read_params,omitempty"`
	// ReadSites maps a read parameter to its sorted app-frame callsites
	// (only with opts.CoverageSites — pre-runs).
	ReadSites map[string][]string `json:"read_sites,omitempty"`
}

// CaptureSpec bounds what RunOnceCaptured records per execution. The
// zero value disables capture entirely (RunOnceObserved behaviour).
type CaptureSpec struct {
	// LogBytes caps retained harness log bytes (the ring buffer).
	LogBytes int
	// ReadEvents caps recorded configuration-read events.
	ReadEvents int
}

// enabled reports whether the spec asks for any capture at all.
func (s CaptureSpec) enabled() bool { return s.LogBytes > 0 || s.ReadEvents > 0 }

// RunOnce executes one unit test in a fresh environment with a fresh agent
// configured by opts. seed differentiates trials of nondeterministic tests.
func RunOnce(app *App, test *UnitTest, opts agent.Options, seed int64) Outcome {
	return RunOnceObserved(app, test, opts, seed, nil)
}

// RunOnceObserved is RunOnce with an observability hook: the per-test
// duration histogram, timeout counter, and progress execution tally are
// recorded on o (nil disables instrumentation).
func RunOnceObserved(app *App, test *UnitTest, opts agent.Options, seed int64, o *obs.Observer) Outcome {
	return RunOnceCaptured(app, test, opts, seed, o, CaptureSpec{})
}

// RunOnceCaptured is RunOnceObserved plus bounded evidence capture: with
// a non-zero spec the outcome carries the harness log (ring-capped at
// spec.LogBytes) and the agent's ordered read trace (capped at
// spec.ReadEvents). Capture changes nothing about the execution itself —
// same seed, same assignment, same verdict.
func RunOnceCaptured(app *App, test *UnitTest, opts agent.Options, seed int64, o *obs.Observer, spec CaptureSpec) Outcome {
	env := NewEnv(app.Schema(), nil, seed)
	defer env.Close()

	if spec.ReadEvents > 0 {
		opts.TraceReads = spec.ReadEvents
	}
	ag := agent.New(opts)
	env.RT.SetHooks(ag)

	t := &T{Env: env, logCap: spec.LogBytes}
	timeout := test.Timeout
	if timeout <= 0 {
		timeout = DefaultTestTimeout
	}

	start := time.Now()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		test.Run(t)
	}()

	var out Outcome
	select {
	case rec := <-done:
		if rec != nil {
			if _, isFailNow := rec.(failNow); !isFailNow {
				t.Errorf("panic: %v", rec)
			}
		}
	case <-time.After(timeout):
		t.Errorf("test timed out after %v", timeout)
		out.TimedOut = true
		abandonedTotal.Add(1)
		leakedNow.Add(1)
		o.CounterAdd(obs.MAbandonedGoroutines, 1, "app", app.Name, "test", test.Name)
		o.GaugeAdd(obs.MLeakedGoroutines, 1, "app", app.Name)
		// Watch for the abandoned body to finally return, so the leaked
		// gauge reflects goroutines still running, not ever abandoned.
		go func() {
			<-done
			leakedNow.Add(-1)
			o.GaugeAdd(obs.MLeakedGoroutines, -1, "app", app.Name)
		}()
	}
	out.Elapsed = time.Since(start)
	out.Failed = t.Failed()
	logs := t.Logs()
	if out.Failed && len(logs) > 0 {
		// The ring never evicts its head entry, so Msg is stable under
		// capping: the same first message capture on or off.
		out.Msg = logs[0]
	}
	if spec.enabled() {
		out.Logs = logs
		out.LogDroppedBytes, out.LogDroppedMsgs = t.LogDropped()
		out.Reads, out.ReadsDropped = ag.ReadTrace()
	}
	if opts.Coverage || opts.CoverageSites {
		out.ReadParams = ag.CoverageParams()
		out.ReadSites = ag.CoverageSites()
	}
	// Stop nodes before reading the report so no new confs appear mid-read.
	env.Close()
	out.Report = ag.Report()
	o.RecordTestRun(app.Name, test.Name, out.Failed, out.TimedOut, out.Elapsed)
	return out
}

// NodeTypesSorted returns the app's node types sorted, for stable reports.
func (a *App) NodeTypesSorted() []string {
	out := make([]string, len(a.NodeTypes))
	copy(out, a.NodeTypes)
	sort.Strings(out)
	return out
}
