package harness

import (
	"testing"
	"time"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
)

func emptySchema() *confkit.Registry { return confkit.NewRegistry() }

func TestEnvDeferLIFOAndIdempotentClose(t *testing.T) {
	t.Parallel()
	env := NewEnv(emptySchema(), nil, 1)
	var order []int
	env.Defer(func() { order = append(order, 1) })
	env.Defer(func() { order = append(order, 2) })
	env.Close()
	env.Close() // idempotent
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("cleanup order = %v, want LIFO", order)
	}
}

func TestEnvCloseSurvivesPanickingCleanup(t *testing.T) {
	t.Parallel()
	env := NewEnv(emptySchema(), nil, 1)
	ran := false
	env.Defer(func() { ran = true })
	env.Defer(func() { panic("cleanup bug") })
	env.Close()
	if !ran {
		t.Fatal("a panicking cleanup aborted the rest")
	}
}

func TestEnvRandDeterministicPerSeed(t *testing.T) {
	t.Parallel()
	a := NewEnv(emptySchema(), nil, 42)
	b := NewEnv(emptySchema(), nil, 42)
	c := NewEnv(emptySchema(), nil, 43)
	va, vb, vc := a.Float64(), b.Float64(), c.Float64()
	if va != vb {
		t.Fatal("same seed produced different streams")
	}
	if va == vc {
		t.Fatal("different seeds produced identical first draws")
	}
	if n := a.Intn(10); n < 0 || n >= 10 {
		t.Fatalf("Intn out of range: %d", n)
	}
}

func TestTFatalfAborts(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1)}
	aborted := true
	func() {
		defer func() { _ = recover() }()
		tt.Fatalf("boom %d", 7)
		aborted = false
	}()
	if !aborted {
		t.Fatal("Fatalf did not abort")
	}
	if !tt.Failed() {
		t.Fatal("Fatalf did not mark failed")
	}
	if logs := tt.Logs(); len(logs) != 1 || logs[0] != "boom 7" {
		t.Fatalf("logs = %v", logs)
	}
}

func TestTErrorfContinues(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1)}
	tt.Errorf("first")
	tt.Logf("note")
	if !tt.Failed() || len(tt.Logs()) != 2 {
		t.Fatalf("state after Errorf: failed=%v logs=%v", tt.Failed(), tt.Logs())
	}
}

func TestTNoErr(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1)}
	tt.NoErr(nil, "fine")
	if tt.Failed() {
		t.Fatal("NoErr(nil) failed")
	}
}

func appWith(test UnitTest) *App {
	return &App{
		Name:      "t-app",
		Schema:    emptySchema,
		NodeTypes: []string{"N"},
		Tests:     []UnitTest{test},
	}
}

func TestRunOncePassAndFail(t *testing.T) {
	t.Parallel()
	pass := appWith(UnitTest{Name: "P", Run: func(tt *T) {}})
	out := RunOnce(pass, &pass.Tests[0], agent.Options{}, 1)
	if out.Failed {
		t.Fatalf("passing test reported failure: %s", out.Msg)
	}
	fail := appWith(UnitTest{Name: "F", Run: func(tt *T) { tt.Fatalf("expected failure") }})
	out = RunOnce(fail, &fail.Tests[0], agent.Options{}, 1)
	if !out.Failed || out.Msg != "expected failure" {
		t.Fatalf("failing test outcome: %+v", out)
	}
}

func TestRunOnceRecoversPanic(t *testing.T) {
	t.Parallel()
	app := appWith(UnitTest{Name: "P", Run: func(tt *T) { panic("unexpected") }})
	out := RunOnce(app, &app.Tests[0], agent.Options{}, 1)
	if !out.Failed {
		t.Fatal("panicking test not marked failed")
	}
}

func TestRunOnceTimeoutRunsCleanups(t *testing.T) {
	t.Parallel()
	cleaned := make(chan struct{}, 1)
	app := appWith(UnitTest{
		Name:    "Hang",
		Timeout: 50 * time.Millisecond,
		Run: func(tt *T) {
			tt.Env.Defer(func() { cleaned <- struct{}{} })
			select {} // hang forever
		},
	})
	out := RunOnce(app, &app.Tests[0], agent.Options{}, 1)
	if !out.Failed || !out.TimedOut {
		t.Fatalf("hanging test outcome: %+v", out)
	}
	select {
	case <-cleaned:
	case <-time.After(time.Second):
		t.Fatal("environment cleanups did not run after a timeout")
	}
}

func TestAppTestLookup(t *testing.T) {
	t.Parallel()
	app := appWith(UnitTest{Name: "Only", Run: func(*T) {}})
	if _, err := app.Test("Only"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Test("Missing"); err == nil {
		t.Fatal("missing test resolved")
	}
	if names := app.TestNames(); len(names) != 1 || names[0] != "Only" {
		t.Fatalf("TestNames = %v", names)
	}
	if types := app.NodeTypesSorted(); len(types) != 1 {
		t.Fatalf("NodeTypesSorted = %v", types)
	}
}
