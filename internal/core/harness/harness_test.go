package harness

import (
	"testing"
	"time"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
)

func emptySchema() *confkit.Registry { return confkit.NewRegistry() }

func TestEnvDeferLIFOAndIdempotentClose(t *testing.T) {
	t.Parallel()
	env := NewEnv(emptySchema(), nil, 1)
	var order []int
	env.Defer(func() { order = append(order, 1) })
	env.Defer(func() { order = append(order, 2) })
	env.Close()
	env.Close() // idempotent
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("cleanup order = %v, want LIFO", order)
	}
}

func TestEnvCloseSurvivesPanickingCleanup(t *testing.T) {
	t.Parallel()
	env := NewEnv(emptySchema(), nil, 1)
	ran := false
	env.Defer(func() { ran = true })
	env.Defer(func() { panic("cleanup bug") })
	env.Close()
	if !ran {
		t.Fatal("a panicking cleanup aborted the rest")
	}
}

func TestEnvRandDeterministicPerSeed(t *testing.T) {
	t.Parallel()
	a := NewEnv(emptySchema(), nil, 42)
	b := NewEnv(emptySchema(), nil, 42)
	c := NewEnv(emptySchema(), nil, 43)
	va, vb, vc := a.Float64(), b.Float64(), c.Float64()
	if va != vb {
		t.Fatal("same seed produced different streams")
	}
	if va == vc {
		t.Fatal("different seeds produced identical first draws")
	}
	if n := a.Intn(10); n < 0 || n >= 10 {
		t.Fatalf("Intn out of range: %d", n)
	}
}

func TestTFatalfAborts(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1)}
	aborted := true
	func() {
		defer func() { _ = recover() }()
		tt.Fatalf("boom %d", 7)
		aborted = false
	}()
	if !aborted {
		t.Fatal("Fatalf did not abort")
	}
	if !tt.Failed() {
		t.Fatal("Fatalf did not mark failed")
	}
	if logs := tt.Logs(); len(logs) != 1 || logs[0] != "boom 7" {
		t.Fatalf("logs = %v", logs)
	}
}

func TestTErrorfContinues(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1)}
	tt.Errorf("first")
	tt.Logf("note")
	if !tt.Failed() || len(tt.Logs()) != 2 {
		t.Fatalf("state after Errorf: failed=%v logs=%v", tt.Failed(), tt.Logs())
	}
}

func TestTNoErr(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1)}
	tt.NoErr(nil, "fine")
	if tt.Failed() {
		t.Fatal("NoErr(nil) failed")
	}
}

func TestLogRingEvictsTailNeverHead(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1), logCap: 40}
	tt.Errorf("head message")
	for i := 0; i < 10; i++ {
		tt.Logf("tail-%02d--------", i) // 15 bytes each
	}
	logs := tt.Logs()
	if logs[0] != "head message" {
		t.Fatalf("head evicted: logs[0] = %q", logs[0])
	}
	bytes, msgs := tt.LogDropped()
	if bytes == 0 || msgs == 0 {
		t.Fatal("overflowing ring reported no drops")
	}
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	if total > 40+15 { // cap plus at most one in-flight message
		t.Fatalf("ring retains %d bytes past the cap", total)
	}
	if logs[len(logs)-1] != "tail-09--------" {
		t.Fatalf("newest message lost: %v", logs)
	}
}

func TestLogRingOversizedMessageKeepsHeadAndTail(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1), logCap: 8}
	tt.Errorf("head")
	tt.Logf("one enormous message far past the cap")
	tt.Logf("final")
	logs := tt.Logs()
	// Eviction stops at head+tail, so even oversized messages leave a story.
	if len(logs) != 2 || logs[0] != "head" || logs[1] != "final" {
		t.Fatalf("logs = %v, want [head final]", logs)
	}
	if _, msgs := tt.LogDropped(); msgs != 1 {
		t.Fatalf("dropped msgs = %d, want 1", msgs)
	}
}

func TestLogRingDisabledWithoutCap(t *testing.T) {
	t.Parallel()
	tt := &T{Env: NewEnv(emptySchema(), nil, 1)}
	for i := 0; i < 100; i++ {
		tt.Logf("message %03d with some padding", i)
	}
	if logs := tt.Logs(); len(logs) != 100 {
		t.Fatalf("uncapped T dropped logs: %d retained", len(logs))
	}
	if bytes, msgs := tt.LogDropped(); bytes != 0 || msgs != 0 {
		t.Fatalf("uncapped T reported drops: %d bytes, %d msgs", bytes, msgs)
	}
}

func capturedApp() *App {
	schema := func() *confkit.Registry {
		return confkit.NewRegistry().Register(confkit.Param{
			Name: "cap.param", Kind: confkit.String, Default: "dflt",
		})
	}
	return &App{
		Name:      "t-app",
		Schema:    schema,
		NodeTypes: []string{"N"},
		Tests: []UnitTest{{
			Name: "C",
			Run: func(tt *T) {
				conf := tt.Env.RT.NewConf()
				for i := 0; i < 4; i++ {
					tt.Logf("read %d -> %s", i, conf.Get("cap.param"))
				}
				tt.Fatalf("always fails")
			},
		}},
	}
}

func TestRunOnceCapturedRecordsLogAndReads(t *testing.T) {
	t.Parallel()
	app := capturedApp()
	opts := agent.Options{Assign: map[agent.Key]string{
		{NodeType: agent.UnitTestEntity, NodeIndex: 0, Param: "cap.param"}: "hetero",
	}}
	spec := CaptureSpec{LogBytes: 1 << 10, ReadEvents: 2}
	out := RunOnceCaptured(app, &app.Tests[0], opts, 1, nil, spec)
	if !out.Failed || out.Msg != "read 0 -> hetero" {
		t.Fatalf("outcome = %+v", out)
	}
	if len(out.Logs) != 5 || out.Logs[0] != out.Msg {
		t.Fatalf("logs = %v", out.Logs)
	}
	if len(out.Reads) != 2 || out.ReadsDropped != 2 {
		t.Fatalf("reads = %v (dropped %d), want 2 recorded + 2 dropped", out.Reads, out.ReadsDropped)
	}
	for _, r := range out.Reads {
		if r.Entity != agent.UnitTestEntity || r.Value != "hetero" || !r.Overridden || !r.Found {
			t.Fatalf("read event = %+v", r)
		}
		if r.Callsite == "" {
			t.Fatalf("read event missing callsite: %+v", r)
		}
	}

	// Capture off: same Msg (the ring head is stable), no capture fields.
	bare := RunOnce(capturedApp(), &app.Tests[0], opts, 1)
	if bare.Msg != out.Msg {
		t.Fatalf("capture changed Msg: %q vs %q", bare.Msg, out.Msg)
	}
	if bare.Logs != nil || bare.Reads != nil || bare.ReadsDropped != 0 {
		t.Fatalf("capture-off outcome carries capture fields: %+v", bare)
	}
}

func appWith(test UnitTest) *App {
	return &App{
		Name:      "t-app",
		Schema:    emptySchema,
		NodeTypes: []string{"N"},
		Tests:     []UnitTest{test},
	}
}

func TestRunOncePassAndFail(t *testing.T) {
	t.Parallel()
	pass := appWith(UnitTest{Name: "P", Run: func(tt *T) {}})
	out := RunOnce(pass, &pass.Tests[0], agent.Options{}, 1)
	if out.Failed {
		t.Fatalf("passing test reported failure: %s", out.Msg)
	}
	fail := appWith(UnitTest{Name: "F", Run: func(tt *T) { tt.Fatalf("expected failure") }})
	out = RunOnce(fail, &fail.Tests[0], agent.Options{}, 1)
	if !out.Failed || out.Msg != "expected failure" {
		t.Fatalf("failing test outcome: %+v", out)
	}
}

func TestRunOnceRecoversPanic(t *testing.T) {
	t.Parallel()
	app := appWith(UnitTest{Name: "P", Run: func(tt *T) { panic("unexpected") }})
	out := RunOnce(app, &app.Tests[0], agent.Options{}, 1)
	if !out.Failed {
		t.Fatal("panicking test not marked failed")
	}
}

func TestRunOnceTimeoutRunsCleanups(t *testing.T) {
	t.Parallel()
	cleaned := make(chan struct{}, 1)
	app := appWith(UnitTest{
		Name:    "Hang",
		Timeout: 50 * time.Millisecond,
		Run: func(tt *T) {
			tt.Env.Defer(func() { cleaned <- struct{}{} })
			select {} // hang forever
		},
	})
	out := RunOnce(app, &app.Tests[0], agent.Options{}, 1)
	if !out.Failed || !out.TimedOut {
		t.Fatalf("hanging test outcome: %+v", out)
	}
	select {
	case <-cleaned:
	case <-time.After(time.Second):
		t.Fatal("environment cleanups did not run after a timeout")
	}
}

func TestAppTestLookup(t *testing.T) {
	t.Parallel()
	app := appWith(UnitTest{Name: "Only", Run: func(*T) {}})
	if _, err := app.Test("Only"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Test("Missing"); err == nil {
		t.Fatal("missing test resolved")
	}
	if names := app.TestNames(); len(names) != 1 || names[0] != "Only" {
		t.Fatalf("TestNames = %v", names)
	}
	if types := app.NodeTypesSorted(); len(types) != 1 {
		t.Fatalf("NodeTypesSorted = %v", types)
	}
}
