package harness

import (
	"fmt"
	"testing"

	"zebraconf/internal/confkit"
	"zebraconf/internal/core/agent"
)

// TestCoverageSurvivesReadTraceCap is the read-trace-plumbing bugfix
// regression: the forensic read trace is ring-capped at
// CaptureSpec.ReadEvents and silently drops everything past the cap, so
// coverage must NOT flow through it. A test reading far more distinct
// parameters than the cap still yields the complete deduplicated read
// set through the uncapped coverage sink.
func TestCoverageSurvivesReadTraceCap(t *testing.T) {
	t.Parallel()
	const numParams = 300
	const cap = 16

	schema := func() *confkit.Registry {
		r := confkit.NewRegistry()
		for i := 0; i < numParams; i++ {
			r.Register(confkit.Param{
				Name: fmt.Sprintf("wide.param.%03d", i), Kind: confkit.Int, Default: "1"})
		}
		return r
	}
	app := &App{Name: "wide", Schema: schema, NodeTypes: []string{"Node"}}
	test := &UnitTest{
		Name: "TestReadsEverything",
		Run: func(t *T) {
			conf := t.Env.RT.NewConf()
			for i := 0; i < numParams; i++ {
				_ = conf.GetInt(fmt.Sprintf("wide.param.%03d", i))
			}
			// Read a few twice: coverage must dedupe, the trace does not.
			_ = conf.GetInt("wide.param.000")
			_ = conf.GetInt("wide.param.001")
		},
	}

	out := RunOnceCaptured(app, test, agent.Options{Coverage: true}, 1, nil,
		CaptureSpec{ReadEvents: cap})
	if out.Failed {
		t.Fatalf("wide-read test failed: %s", out.Msg)
	}
	if len(out.Reads) != cap {
		t.Fatalf("forensic trace kept %d reads, want exactly the cap %d", len(out.Reads), cap)
	}
	if out.ReadsDropped == 0 {
		t.Fatal("trace dropped nothing despite reading past its cap")
	}
	if len(out.ReadParams) != numParams {
		t.Fatalf("coverage sink saw %d params, want all %d — reads were lost to the trace cap",
			len(out.ReadParams), numParams)
	}
	for i := 1; i < len(out.ReadParams); i++ {
		if out.ReadParams[i-1] >= out.ReadParams[i] {
			t.Fatalf("ReadParams not sorted/deduped at %d: %q >= %q",
				i, out.ReadParams[i-1], out.ReadParams[i])
		}
	}

	// Coverage works without any capture spec at all — cache-warm
	// phase-2 paths run captureless but still need read sets.
	bare := RunOnceCaptured(app, test, agent.Options{Coverage: true}, 1, nil, CaptureSpec{})
	if len(bare.Reads) != 0 {
		t.Fatal("captureless run recorded a forensic trace")
	}
	if len(bare.ReadParams) != numParams {
		t.Fatalf("captureless coverage saw %d params, want %d", len(bare.ReadParams), numParams)
	}

	// And with coverage off the sink stays empty (no accidental cost).
	off := RunOnceCaptured(app, test, agent.Options{}, 1, nil, CaptureSpec{ReadEvents: cap})
	if len(off.ReadParams) != 0 || off.ReadSites != nil {
		t.Fatal("coverage-off run populated the sink")
	}
}

// TestCoverageSitesRecordCallsites checks the pre-run variant: with
// CoverageSites on, each read parameter maps to at least one repo-frame
// callsite, and sites dedupe per (param, site).
func TestCoverageSitesRecordCallsites(t *testing.T) {
	t.Parallel()
	schema := func() *confkit.Registry {
		r := confkit.NewRegistry()
		r.Register(confkit.Param{Name: "p.one", Kind: confkit.Int, Default: "1"})
		return r
	}
	app := &App{Name: "sited", Schema: schema, NodeTypes: []string{"Node"}}
	test := &UnitTest{
		Name: "TestReadsOne",
		Run: func(t *T) {
			conf := t.Env.RT.NewConf()
			for i := 0; i < 3; i++ { // same callsite three times
				_ = conf.GetInt("p.one")
			}
		},
	}
	out := RunOnceCaptured(app, test, agent.Options{Coverage: true, CoverageSites: true}, 1, nil, CaptureSpec{})
	if len(out.ReadParams) != 1 || out.ReadParams[0] != "p.one" {
		t.Fatalf("ReadParams = %v", out.ReadParams)
	}
	sites := out.ReadSites["p.one"]
	if len(sites) != 1 {
		t.Fatalf("callsites not deduped: %v", sites)
	}
}
