// Package harness hosts the unit-test registry and execution environment
// ZebraConf drives (paper §3.3): applications register whole-system unit
// tests; the TestGenerator decides which to run with which heterogeneous
// configuration; the TestRunner executes them through this package's
// isolated per-test environments; and the campaign scheduler runs everything
// in parallel and aggregates the results.
package harness

import (
	"fmt"
	"math/rand"
	"sync"

	"zebraconf/internal/confkit"
	"zebraconf/internal/rpcsim"
	"zebraconf/internal/simtime"
)

// Env is one unit test's isolated world: its own configuration runtime (so
// an agent can be attached), its own network fabric, a time scale, and a
// seeded random source for tests that model nondeterminism. Because nothing
// is process-global, many tests run concurrently in one process — the analog
// of the paper's 20 Docker containers per machine.
type Env struct {
	RT     *confkit.Runtime
	Fabric *rpcsim.Fabric
	Scale  *simtime.Scale

	mu       sync.Mutex
	rand     *rand.Rand
	cleanups []func()
}

// NewEnv builds an environment over schema. seed drives Rand; scale may be
// nil for the default tick duration.
func NewEnv(schema *confkit.Registry, scale *simtime.Scale, seed int64) *Env {
	if scale == nil {
		scale = &simtime.Scale{}
	}
	return &Env{
		RT:     confkit.NewRuntime(schema),
		Fabric: rpcsim.NewFabric(),
		Scale:  scale,
		rand:   rand.New(rand.NewSource(seed)),
	}
}

// Float64 returns a deterministic pseudo-random number in [0,1). Unit tests
// use it to model nondeterministic failures; distinct trials get distinct
// seeds, so a flaky test really does flake across trials.
func (e *Env) Float64() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rand.Float64()
}

// Intn returns a deterministic pseudo-random int in [0,n).
func (e *Env) Intn(n int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rand.Intn(n)
}

// Defer registers a cleanup run by Close in LIFO order. Cluster constructors
// register their shutdown here so nodes stop even when a test times out and
// its own defers never run.
func (e *Env) Defer(fn func()) {
	e.mu.Lock()
	e.cleanups = append(e.cleanups, fn)
	e.mu.Unlock()
}

// Close runs all registered cleanups. It is idempotent.
func (e *Env) Close() {
	e.mu.Lock()
	cleanups := e.cleanups
	e.cleanups = nil
	e.mu.Unlock()
	for i := len(cleanups) - 1; i >= 0; i-- {
		func() {
			defer func() { _ = recover() }()
			cleanups[i]()
		}()
	}
}

// T is the testing handle passed to registered unit tests, a deliberately
// small subset of testing.T: the same assertions the applications' real
// JUnit suites use (fail, fail-now, log), recorded rather than reported so
// the TestRunner can compare outcomes across configurations.
type T struct {
	Env *Env

	mu     sync.Mutex
	failed bool
	logs   []string
	// logCap, when positive, bounds the total bytes retained in logs as a
	// ring: the first entry is always kept (Outcome.Msg and the start of
	// the story), then the oldest of the rest are evicted. droppedBytes
	// and droppedMsgs account the evictions, so forensics can mark the
	// truncation explicitly instead of silently losing history.
	logCap       int
	logBytes     int
	droppedBytes int
	droppedMsgs  int
}

// failNow is the panic sentinel FailNow/Fatalf abort the test with.
type failNow struct{}

// appendLog records one message under the lock, enforcing the ring cap.
func (t *T) appendLog(msg string) {
	t.logs = append(t.logs, msg)
	if t.logCap <= 0 {
		return
	}
	t.logBytes += len(msg)
	// Evict from the second entry: the head anchors Msg and the log's
	// beginning, the tail is what diagnosis wants. At least head+tail
	// survive, so even one oversized message never empties the ring.
	for t.logBytes > t.logCap && len(t.logs) > 2 {
		t.logBytes -= len(t.logs[1])
		t.droppedBytes += len(t.logs[1])
		t.droppedMsgs++
		t.logs = append(t.logs[:1], t.logs[2:]...)
	}
}

// Errorf records a failure and continues, like testing.T.Errorf.
func (t *T) Errorf(format string, args ...any) {
	t.mu.Lock()
	t.failed = true
	t.appendLog(fmt.Sprintf(format, args...))
	t.mu.Unlock()
}

// Fatalf records a failure and aborts the test, like testing.T.Fatalf.
func (t *T) Fatalf(format string, args ...any) {
	t.Errorf(format, args...)
	panic(failNow{})
}

// FailNow aborts the test, marking it failed.
func (t *T) FailNow() {
	t.mu.Lock()
	t.failed = true
	t.mu.Unlock()
	panic(failNow{})
}

// Logf records a message without failing.
func (t *T) Logf(format string, args ...any) {
	t.mu.Lock()
	t.appendLog(fmt.Sprintf(format, args...))
	t.mu.Unlock()
}

// Failed reports whether the test recorded a failure.
func (t *T) Failed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// Logs returns the recorded messages.
func (t *T) Logs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.logs))
	copy(out, t.logs)
	return out
}

// LogDropped reports how many bytes (across how many messages) the
// capped ring evicted; both zero when no cap was set or it never filled.
func (t *T) LogDropped() (bytes, msgs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedBytes, t.droppedMsgs
}

// NoErr is a convenience assertion: it fails fatally when err is non-nil.
func (t *T) NoErr(err error, context string) {
	if err != nil {
		t.Fatalf("%s: %v", context, err)
	}
}
