package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// SeqMode selects the stopping rule applied to confirmation trials.
//
// The paper runs a fixed number of paired trials and then applies
// Fisher's exact test at significance 1e-4. That spends the full round
// budget on every flagged instance, including the two cheap-to-decide
// extremes: deterministic crashes (significant long before the budget)
// and uniformly flaky tests (hopeless long before the budget). A
// sequential test looks at the evidence after every round and stops as
// soon as the verdict is statistically decided, capping only the
// maximum — the classic sequential-analysis economics (Wald 1945)
// applied to configuration testing.
type SeqMode int

const (
	// SeqSPRT (the default) wraps the per-round Fisher peek in a
	// sequential probability ratio test with a conviction and a futility
	// boundary: deterministic failures convict in ~3 rounds, uniform
	// flakiness futility-stops in ~2-3, and only genuinely marginal
	// instances run long.
	SeqSPRT SeqMode = iota
	// SeqGSF is the group-sequential Fisher variant: each look k gets an
	// alpha-spending increment a_k with sum(a_k) = alpha, so the overall
	// type-I error stays at the paper's 1e-4 despite per-round looks —
	// the statistically honest correction for the peeking the fixed mode
	// performs without one. Convictions come later than SPRT's (the
	// per-look thresholds are stricter than alpha); futility stops come
	// from deterministic curtailment only.
	SeqGSF
	// SeqFixed is the ablation: the legacy behaviour, byte-for-byte — a
	// Fisher peek at full alpha after every round, no futility stop, the
	// full MaxRounds budget for everything that never reaches
	// significance.
	SeqFixed
)

// ParseSeqMode parses a -seq flag value.
func ParseSeqMode(s string) (SeqMode, error) {
	switch s {
	case "sprt":
		return SeqSPRT, nil
	case "gsf":
		return SeqGSF, nil
	case "fixed":
		return SeqFixed, nil
	default:
		return SeqSPRT, fmt.Errorf("stats: bad sequential mode %q (want sprt, gsf, or fixed)", s)
	}
}

// String names the mode for flags, wire configs, and ledgers.
func (m SeqMode) String() string {
	switch m {
	case SeqSPRT:
		return "sprt"
	case SeqGSF:
		return "gsf"
	case SeqFixed:
		return "fixed"
	default:
		return fmt.Sprintf("seqmode(%d)", int(m))
	}
}

// Decision is a sequential test's verdict at one look.
type Decision int

const (
	// SeqContinue: the evidence decides nothing yet; run another round.
	SeqContinue Decision = iota
	// SeqConvict: the heterogeneous failure is confirmed significant.
	SeqConvict
	// SeqFutile: no remaining sequence of trials can reach significance
	// (curtailment), or the likelihood ratio says the heterogeneous arm
	// fails no more often than the homogeneous baseline (SPRT futility);
	// further rounds are wasted budget.
	SeqFutile
)

// String names the decision for traces and tests.
func (d Decision) String() string {
	switch d {
	case SeqContinue:
		return "continue"
	case SeqConvict:
		return "convict"
	case SeqFutile:
		return "futile"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// SPRT design constants. The hypotheses are about the heterogeneous
// arm's failure probability theta: H1 says the parameter is hetero-unsafe
// and the arm fails (nearly) deterministically; H0 says the arm fails no
// more often than the homogeneous baseline. The null is adaptive — it
// tracks the observed homogeneous failure rate — so a uniformly flaky
// test (both arms failing at 30%) is scored against theta0 ~ 0.3, not
// against "never fails", which is what keeps flakiness from walking the
// statistic across the conviction boundary.
const (
	// sprtTheta1 is H1's heterogeneous failure probability. Not 1.0: a
	// real unsafe parameter can still pass the odd trial (timing), and
	// theta1 < 1 keeps the pass-term log finite.
	sprtTheta1 = 0.95
	// sprtTheta0Floor floors the adaptive null: with a clean homogeneous
	// baseline (zero failures) H0 still concedes a 5% background failure
	// rate, so each heterogeneous failure contributes log(19) ≈ 2.94 of
	// evidence rather than infinity.
	sprtTheta0Floor = 0.05
	// sprtTheta0Ceil caps the adaptive null below theta1 so the
	// per-trial evidence never degenerates to zero or flips sign.
	sprtTheta0Ceil = 0.9
	// sprtBeta is the target type-II error (miss rate) at H1; with
	// alpha it fixes Wald's boundaries.
	sprtBeta = 0.05
)

// SPRTStatistic returns the SPRT log-likelihood ratio for the
// heterogeneous arm's trials, scored against the adaptive null derived
// from the pooled homogeneous arms:
//
//	theta0 = clamp(homoFail / homoTrials, floor, ceil)
//	LLR    = heteroFail·ln(theta1/theta0) + heteroPass·ln((1−theta1)/(1−theta0))
func SPRTStatistic(heteroFail, heteroPass, homoFail, homoPass int64) float64 {
	theta0 := sprtTheta0Floor
	if n := homoFail + homoPass; n > 0 {
		theta0 = float64(homoFail) / float64(n)
	}
	if theta0 < sprtTheta0Floor {
		theta0 = sprtTheta0Floor
	}
	if theta0 > sprtTheta0Ceil {
		theta0 = sprtTheta0Ceil
	}
	return float64(heteroFail)*math.Log(sprtTheta1/theta0) +
		float64(heteroPass)*math.Log((1-sprtTheta1)/(1-theta0))
}

// SeqTest evaluates one instance's confirmation trials against a
// stopping rule. One SeqTest serves one instance: it is cheap (a few
// floats) and stateless between looks — every Look recomputes from the
// cumulative 2×2 table, so replaying the same table yields the same
// decisions no matter which execution path ran the trials.
type SeqTest struct {
	Mode  SeqMode
	Alpha float64
	// MaxLooks is the confirmation-round budget K: GSF spends its alpha
	// across exactly K looks, and curtailment projects the best case out
	// to look K.
	MaxLooks int
	// HeteroPerLook and HomoPerLook are the trials each confirmation
	// round adds per arm family (1 heterogeneous trial and one per
	// homogeneous arm); curtailment needs them to project future tables.
	HeteroPerLook int
	HomoPerLook   int

	convictLLR float64 // Wald's A = ln((1−β)/α)
	futileLLR  float64 // Wald's B = ln(β/(1−α))
}

// NewSeqTest builds a stopping rule. alpha <= 0 selects the paper's
// 1e-4; maxLooks <= 0 selects 8 (the runner's default round budget);
// homoPerLook <= 0 selects 2 (every generated assignment has two
// homogeneous arms).
func NewSeqTest(mode SeqMode, alpha float64, maxLooks, homoPerLook int) *SeqTest {
	if alpha <= 0 {
		alpha = DefaultSignificance
	}
	if maxLooks <= 0 {
		maxLooks = 8
	}
	if homoPerLook <= 0 {
		homoPerLook = 2
	}
	return &SeqTest{
		Mode:          mode,
		Alpha:         alpha,
		MaxLooks:      maxLooks,
		HeteroPerLook: 1,
		HomoPerLook:   homoPerLook,
		convictLLR:    math.Log((1 - sprtBeta) / alpha),
		futileLLR:     math.Log(sprtBeta / (1 - alpha)),
	}
}

// SpendingThreshold returns GSF's per-look significance threshold a_k:
// the increment of the power-family spending function s(t) = alpha·t²
// between looks k−1 and k over MaxLooks looks,
//
//	a_k = alpha · (k² − (k−1)²) / K² = alpha · (2k−1) / K².
//
// The increments sum to alpha, so rejecting look k when p_k < a_k keeps
// the overall type-I error at most alpha by the union bound — no matter
// how the looks correlate. The quadratic family back-loads the spend
// (the last look keeps (2K−1)/K² ≈ 23% of alpha for K=8), which is what
// lets a deterministic failure still convict within the budget; an even
// (Pocock-style) split would spend so little per look that a clean
// 1-vs-2-arm signal could never cross any threshold.
func (s *SeqTest) SpendingThreshold(look int) float64 {
	if look < 1 {
		return 0
	}
	if look > s.MaxLooks {
		// Extension looks (reallocated budget) spend at full alpha; the
		// schedule only governs the planned looks.
		return s.Alpha
	}
	k, kk := float64(look), float64(s.MaxLooks)
	return s.Alpha * (2*k - 1) / (kk * kk)
}

// Look evaluates the cumulative 2×2 table after confirmation round
// `look` (1-based) and returns the stopping decision plus the Fisher
// one-sided p-value at this look (the value reports carry regardless of
// mode).
func (s *SeqTest) Look(look int, heteroFail, heteroPass, homoFail, homoPass int64) (Decision, float64) {
	p := FisherOneSided(heteroFail, heteroPass, homoFail, homoPass)
	switch s.Mode {
	case SeqFixed:
		if p < s.Alpha {
			return SeqConvict, p
		}
		return SeqContinue, p
	case SeqGSF:
		if p < s.SpendingThreshold(look) {
			return SeqConvict, p
		}
		if s.curtailed(look, heteroFail, heteroPass, homoFail, homoPass) {
			return SeqFutile, p
		}
		return SeqContinue, p
	default: // SeqSPRT
		// The full-alpha Fisher peek is kept alongside the SPRT
		// boundaries: anything the fixed rule would convict at this look,
		// SPRT convicts no later — which is what makes the two modes
		// report the same parameter set on decided instances.
		if p < s.Alpha {
			return SeqConvict, p
		}
		llr := SPRTStatistic(heteroFail, heteroPass, homoFail, homoPass)
		if llr >= s.convictLLR {
			return SeqConvict, p
		}
		if llr <= s.futileLLR {
			return SeqFutile, p
		}
		return SeqContinue, p
	}
}

// curtailed reports deterministic futility: even if every remaining
// heterogeneous trial fails and every remaining homogeneous trial
// passes (the most incriminating future possible), no remaining look up
// to MaxLooks reaches its significance threshold. Stopping then cannot
// change the verdict, only save the trials — which is what makes
// curtailment the one futility rule that is *guaranteed* outcome-
// identical to running the full budget.
func (s *SeqTest) curtailed(look int, heteroFail, heteroPass, homoFail, homoPass int64) bool {
	for l := look + 1; l <= s.MaxLooks; l++ {
		d := int64(l - look)
		best := FisherOneSided(
			heteroFail+d*int64(s.HeteroPerLook), heteroPass,
			homoFail, homoPass+d*int64(s.HomoPerLook))
		var threshold float64
		if s.Mode == SeqGSF {
			threshold = s.SpendingThreshold(l)
		} else {
			threshold = s.Alpha
		}
		if best < threshold {
			return false
		}
	}
	return look < s.MaxLooks
}

// BudgetPool is the campaign-wide trial budget shared by every instance
// of one campaign (per worker process in distributed mode, matching the
// per-worker evidence budget): early convictions and futility stops
// deposit the confirmation rounds they did not run, and instances that
// exhaust their own budget within a margin of significance withdraw
// extra rounds — "spend trials where they pay". The unit is rounds, not
// trials: a round costs the same number of trials wherever it runs, so
// round-for-round reallocation conserves the campaign's trial budget.
//
// All methods are nil-safe: a nil pool (the fixed-mode ablation)
// deposits nothing and never grants a withdrawal.
type BudgetPool struct {
	balance   atomic.Int64
	deposited atomic.Int64
	withdrawn atomic.Int64
}

// NewBudgetPool returns an empty pool.
func NewBudgetPool() *BudgetPool { return &BudgetPool{} }

// Deposit credits rounds an instance stopped early enough not to run.
func (p *BudgetPool) Deposit(rounds int) {
	if p == nil || rounds <= 0 {
		return
	}
	p.balance.Add(int64(rounds))
	p.deposited.Add(int64(rounds))
}

// TryWithdraw debits one round if the balance allows, reporting whether
// the grant succeeded. One round at a time keeps a single marginal
// instance from draining the pool ahead of its peers.
func (p *BudgetPool) TryWithdraw() bool {
	if p == nil {
		return false
	}
	for {
		b := p.balance.Load()
		if b <= 0 {
			return false
		}
		if p.balance.CompareAndSwap(b, b-1) {
			p.withdrawn.Add(1)
			return true
		}
	}
}

// Balance returns the rounds currently available.
func (p *BudgetPool) Balance() int64 {
	if p == nil {
		return 0
	}
	return p.balance.Load()
}

// Stats returns lifetime deposits and withdrawals.
func (p *BudgetPool) Stats() (deposited, withdrawn int64) {
	if p == nil {
		return 0, 0
	}
	return p.deposited.Load(), p.withdrawn.Load()
}
