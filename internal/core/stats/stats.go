// Package stats provides the hypothesis-testing math the TestRunner uses to
// separate true heterogeneous-unsafe parameters from nondeterministic test
// flakiness (paper §5).
//
// The paper confirms a parameter as heterogeneous unsafe only when repeated
// trials establish it "with high probability, according to hypothesis
// testing using a significance level of 0.0001". We realize that with a
// one-sided Fisher exact test on the 2×2 table
//
//	            fail      pass
//	hetero       a          b
//	homo         c          d
//
// rejecting the null hypothesis "heterogeneous trials fail no more often
// than homogeneous trials" when the tail probability is below the
// significance level.
package stats

import "math"

// DefaultSignificance is the paper's significance level (1 − 99.99%).
const DefaultSignificance = 1e-4

// LogChoose returns ln C(n, k). It returns -Inf for k outside [0, n].
func LogChoose(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return logFactorial(n) - logFactorial(k) - logFactorial(n-k)
}

// logFactorial returns ln n! via the log-gamma function.
func logFactorial(n int64) float64 {
	if n < 0 {
		return math.Inf(-1)
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// HypergeomPMF returns P(X = k) for a hypergeometric variable: k successes
// drawn in a sample of size sample from a population of size pop containing
// succ successes.
func HypergeomPMF(pop, succ, sample, k int64) float64 {
	lp := LogChoose(succ, k) + LogChoose(pop-succ, sample-k) - LogChoose(pop, sample)
	if math.IsInf(lp, -1) {
		return 0
	}
	return math.Exp(lp)
}

// FisherOneSided returns the one-sided p-value that the first row's failure
// rate exceeds the second row's by chance: the probability, with margins
// fixed, of a table at least as extreme (heteroFail' >= heteroFail).
//
//	heteroFail, heteroPass — failures/passes under the heterogeneous config
//	homoFail,   homoPass   — pooled failures/passes under the homogeneous configs
func FisherOneSided(heteroFail, heteroPass, homoFail, homoPass int64) float64 {
	if heteroFail < 0 || heteroPass < 0 || homoFail < 0 || homoPass < 0 {
		return 1
	}
	pop := heteroFail + heteroPass + homoFail + homoPass
	if pop == 0 {
		return 1
	}
	succ := heteroFail + homoFail     // total failures
	sample := heteroFail + heteroPass // hetero row size
	maxK := min64(succ, sample)
	p := 0.0
	for k := heteroFail; k <= maxK; k++ {
		p += HypergeomPMF(pop, succ, sample, k)
	}
	if p > 1 {
		p = 1
	}
	return p
}

// BinomialTail returns P(X >= k) for X ~ Binomial(n, p), computed in log
// space for stability.
func BinomialTail(n, k int64, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += math.Exp(LogChoose(n, i) + float64(i)*lp + float64(n-i)*lq)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// MinTrialsForCertainty returns the smallest number of paired trials n such
// that a deterministic signal (n/n hetero failures, 0/n homo failures over
// one homogeneous arm) reaches the given significance: 1/C(2n, n) < alpha.
// It is what sizes the runner's confirmation loop for the common case.
func MinTrialsForCertainty(alpha float64) int64 {
	for n := int64(1); n < 64; n++ {
		if 1/math.Exp(LogChoose(2*n, n)) < alpha {
			return n
		}
	}
	return 64
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
