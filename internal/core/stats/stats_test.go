package stats

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLogChooseKnownValues(t *testing.T) {
	t.Parallel()
	cases := []struct {
		n, k int64
		want float64
	}{
		{0, 0, 1},
		{5, 2, 10},
		{10, 5, 252},
		{16, 8, 12870},
		{30, 15, 155117520},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if !almost(got, c.want, c.want*1e-9+1e-9) {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(3, 5), -1) || !math.IsInf(LogChoose(3, -1), -1) {
		t.Error("out-of-range LogChoose not -Inf")
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	t.Parallel()
	const pop, succ, sample = 20, 8, 6
	sum := 0.0
	for k := int64(0); k <= sample; k++ {
		sum += HypergeomPMF(pop, succ, sample, k)
	}
	if !almost(sum, 1, 1e-9) {
		t.Fatalf("hypergeometric pmf sums to %g", sum)
	}
}

func TestFisherDeterministicSignal(t *testing.T) {
	t.Parallel()
	// 9 hetero failures / 0 passes vs 0 homo failures / 18 passes: the
	// paper's deterministic-bug shape after 8 confirmation rounds.
	p := FisherOneSided(9, 0, 0, 18)
	if p >= DefaultSignificance {
		t.Fatalf("deterministic signal p = %g, want < %g", p, DefaultSignificance)
	}
	// Exact value: 1/C(27,9).
	want := 1 / math.Exp(LogChoose(27, 9))
	if !almost(p, want, want*1e-6) {
		t.Fatalf("p = %g, want %g", p, want)
	}
}

func TestFisherNoSignal(t *testing.T) {
	t.Parallel()
	if p := FisherOneSided(0, 9, 0, 18); p != 1 {
		t.Fatalf("no-failure table p = %g, want 1", p)
	}
	// Equal failure rates must not be significant.
	if p := FisherOneSided(3, 6, 6, 12); p < 0.1 {
		t.Fatalf("balanced flakiness p = %g, suspiciously small", p)
	}
}

func TestFisherDegenerateTables(t *testing.T) {
	t.Parallel()
	if p := FisherOneSided(0, 0, 0, 0); p != 1 {
		t.Fatalf("empty table p = %g", p)
	}
	if p := FisherOneSided(-1, 2, 3, 4); p != 1 {
		t.Fatalf("negative cell p = %g", p)
	}
}

// Property: the Fisher p-value is a probability and shrinks (weakly) as
// hetero failures grow with everything else fixed.
func TestFisherPropertyBoundsAndMonotonicity(t *testing.T) {
	t.Parallel()
	fn := func(hf, hp, of, op uint8) bool {
		a, b, c, d := int64(hf%10), int64(hp%10), int64(of%10), int64(op%10)
		p := FisherOneSided(a, b, c, d)
		if p < 0 || p > 1 {
			return false
		}
		// Adding one more hetero failure (converting a pass) cannot make
		// the signal weaker.
		if b > 0 {
			p2 := FisherOneSided(a+1, b-1, c, d)
			if p2 > p+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialTail(t *testing.T) {
	t.Parallel()
	if got := BinomialTail(10, 0, 0.5); got != 1 {
		t.Fatalf("P(X>=0) = %g", got)
	}
	if got := BinomialTail(10, 11, 0.5); got != 0 {
		t.Fatalf("P(X>=11 of 10) = %g", got)
	}
	// P(X >= 5 | n=10, p=0.5) = 0.623046875
	if got := BinomialTail(10, 5, 0.5); !almost(got, 0.623046875, 1e-9) {
		t.Fatalf("P(X>=5) = %g", got)
	}
	if got := BinomialTail(10, 3, 0); got != 0 {
		t.Fatalf("p=0 tail = %g", got)
	}
	if got := BinomialTail(10, 3, 1); got != 1 {
		t.Fatalf("p=1 tail = %g", got)
	}
}

func TestMinTrialsForCertainty(t *testing.T) {
	t.Parallel()
	// C(14,7)=3432 < 1e4 <= C(16,8)=12870, so 8 paired trials are needed
	// at the paper's significance.
	if got := MinTrialsForCertainty(1e-4); got != 8 {
		t.Fatalf("MinTrialsForCertainty(1e-4) = %d, want 8", got)
	}
	if got := MinTrialsForCertainty(0.1); got != 3 {
		t.Fatalf("MinTrialsForCertainty(0.1) = %d, want 3", got)
	}
}

// bigChoose returns C(n, k) exactly.
func bigChoose(n, k int64) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(n, k)
}

// bruteFisher enumerates the hypergeometric tail with exact rational
// arithmetic: with margins fixed, P(hetero failures >= a) =
// sum_k C(fail, k)·C(pass, n1−k) / C(N, n1) over k in [a, min(fail, n1)].
func bruteFisher(a, b, c, d int64) float64 {
	pop := a + b + c + d
	if pop == 0 {
		return 1
	}
	fail := a + c
	n1 := a + b
	denom := bigChoose(pop, n1)
	num := new(big.Int)
	for k := a; k <= fail && k <= n1; k++ {
		num.Add(num, new(big.Int).Mul(bigChoose(fail, k), bigChoose(pop-fail, n1-k)))
	}
	f, _ := new(big.Rat).SetFrac(num, denom).Float64()
	if f > 1 {
		f = 1
	}
	return f
}

// Property: FisherOneSided matches brute-force hypergeometric
// enumeration over every small table, and over a sample of larger ones.
func TestFisherMatchesBruteForceEnumeration(t *testing.T) {
	t.Parallel()
	// Exhaustive over all tables with every cell <= 6.
	for a := int64(0); a <= 6; a++ {
		for b := int64(0); b <= 6; b++ {
			for c := int64(0); c <= 6; c++ {
				for d := int64(0); d <= 6; d++ {
					got := FisherOneSided(a, b, c, d)
					want := bruteFisher(a, b, c, d)
					if !almost(got, want, 1e-9+want*1e-9) {
						t.Fatalf("Fisher(%d,%d,%d,%d) = %g, brute force %g", a, b, c, d, got, want)
					}
				}
			}
		}
	}
	// Randomized larger tables (the confirmation loop's actual sizes).
	fn := func(hf, hp, of, op uint8) bool {
		a, b, c, d := int64(hf%20), int64(hp%20), int64(of%40), int64(op%40)
		got := FisherOneSided(a, b, c, d)
		want := bruteFisher(a, b, c, d)
		return almost(got, want, 1e-9+want*1e-9)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
