package stats

import (
	"math"
	"sync"
	"testing"
)

// table accumulates the deterministic hetero-unsafe trajectory: at look
// k (1-based), the screening round plus k confirmation rounds have run —
// k+1 hetero trials, all failing, and (k+1)·homoPerLook homo trials, all
// passing.
func deterministicTable(look int, homoPerLook int) (hf, hp, homf, homp int64) {
	n := int64(look + 1)
	return n, 0, 0, n * int64(homoPerLook)
}

func TestSPRTConvictsDeterministicByLook3(t *testing.T) {
	s := NewSeqTest(SeqSPRT, 0, 0, 2)
	for look := 1; look <= s.MaxLooks; look++ {
		hf, hp, homf, homp := deterministicTable(look, 2)
		dec, _ := s.Look(look, hf, hp, homf, homp)
		if dec == SeqFutile {
			t.Fatalf("look %d: deterministic signal declared futile", look)
		}
		if dec == SeqConvict {
			if look > 3 {
				t.Fatalf("SPRT convicted at look %d, want <= 3", look)
			}
			return
		}
	}
	t.Fatal("SPRT never convicted a deterministic signal")
}

func TestGSFConvictsDeterministicWithinBudget(t *testing.T) {
	s := NewSeqTest(SeqGSF, 0, 0, 2)
	for look := 1; look <= s.MaxLooks; look++ {
		hf, hp, homf, homp := deterministicTable(look, 2)
		dec, _ := s.Look(look, hf, hp, homf, homp)
		if dec == SeqFutile {
			t.Fatalf("look %d: deterministic signal declared futile", look)
		}
		if dec == SeqConvict {
			return
		}
	}
	t.Fatal("GSF never convicted a deterministic signal within MaxLooks")
}

func TestFixedConvictsDeterministicAtLook5(t *testing.T) {
	s := NewSeqTest(SeqFixed, 0, 0, 2)
	for look := 1; look <= s.MaxLooks; look++ {
		hf, hp, homf, homp := deterministicTable(look, 2)
		dec, p := s.Look(look, hf, hp, homf, homp)
		if dec == SeqConvict {
			if look != 5 {
				t.Fatalf("fixed convicted at look %d (p=%g), want 5", look, p)
			}
			return
		}
	}
	t.Fatal("fixed never convicted a deterministic signal")
}

// SPRT must convict no later than fixed on any trajectory: the full-alpha
// Fisher peek is part of its rule, so fixed's conviction condition is a
// subset of SPRT's. This is the invariant behind the equivalence suite.
func TestSPRTConvictsNoLaterThanFixed(t *testing.T) {
	sprt := NewSeqTest(SeqSPRT, 0, 0, 2)
	fixed := NewSeqTest(SeqFixed, 0, 0, 2)
	// Sweep trajectories where the hetero arm fails f of the first
	// look+1 trials and the homo arms fail g of theirs.
	for look := 1; look <= 8; look++ {
		n := int64(look + 1)
		for f := int64(0); f <= n; f++ {
			for g := int64(0); g <= 2*n; g++ {
				fd, _ := fixed.Look(look, f, n-f, g, 2*n-g)
				sd, _ := sprt.Look(look, f, n-f, g, 2*n-g)
				if fd == SeqConvict && sd != SeqConvict {
					t.Fatalf("look %d table (%d,%d,%d,%d): fixed convicts, sprt says %v",
						look, f, n-f, g, 2*n-g, sd)
				}
			}
		}
	}
}

func TestSPRTFutilityStopsFlaky(t *testing.T) {
	s := NewSeqTest(SeqSPRT, 0, 0, 2)
	// Uniform flakiness: both arms fail ~40% of trials. The adaptive
	// null tracks the homo rate, so the LLR drifts negative.
	for look := 1; look <= s.MaxLooks; look++ {
		n := int64(look + 1)
		hf := (2 * n) / 5
		homf := (4 * n) / 5
		dec, _ := s.Look(look, hf, n-hf, homf, 2*n-homf)
		if dec == SeqConvict {
			t.Fatalf("look %d: uniform flakiness convicted", look)
		}
		if dec == SeqFutile {
			if look > 4 {
				t.Fatalf("futility only at look %d, want <= 4", look)
			}
			return
		}
	}
	t.Fatal("SPRT never futility-stopped uniform flakiness")
}

func TestSPRTFutilityStopsAllPassing(t *testing.T) {
	s := NewSeqTest(SeqSPRT, 0, 0, 2)
	// Hetero arm never fails: each pass adds log(0.05/0.95) ≈ −2.94, so
	// the futility boundary (−3.0) is crossed by the second look.
	for look := 1; look <= 2; look++ {
		n := int64(look + 1)
		dec, _ := s.Look(look, 0, n, 0, 2*n)
		if dec == SeqConvict {
			t.Fatalf("look %d: all-passing instance convicted", look)
		}
		if dec == SeqFutile {
			return
		}
	}
	t.Fatal("SPRT did not futility-stop an all-passing instance within 2 looks")
}

func TestGSFCurtailmentIsOutcomeIdentical(t *testing.T) {
	s := NewSeqTest(SeqGSF, 0, 0, 2)
	// Whenever curtailment declares futility at look k, verify by
	// exhaustion that the most incriminating completion of the remaining
	// looks indeed crosses no remaining threshold.
	for look := 1; look < s.MaxLooks; look++ {
		n := int64(look + 1)
		for f := int64(0); f <= n; f++ {
			for g := int64(0); g <= 2*n; g++ {
				dec, _ := s.Look(look, f, n-f, g, 2*n-g)
				if dec != SeqFutile {
					continue
				}
				for l := look + 1; l <= s.MaxLooks; l++ {
					d := int64(l - look)
					best := FisherOneSided(f+d, n-f, g, 2*n-g+2*d)
					if best < s.SpendingThreshold(l) {
						t.Fatalf("look %d table (%d,%d,%d,%d): curtailed but best case at look %d has p=%g < a=%g",
							look, f, n-f, g, 2*n-g, l, best, s.SpendingThreshold(l))
					}
				}
			}
		}
	}
}

func TestSpendingScheduleSumsToAlpha(t *testing.T) {
	s := NewSeqTest(SeqGSF, 0, 0, 2)
	sum := 0.0
	prev := 0.0
	for k := 1; k <= s.MaxLooks; k++ {
		a := s.SpendingThreshold(k)
		if a <= prev {
			t.Fatalf("spending threshold not increasing: a_%d=%g <= a_%d=%g", k, a, k-1, prev)
		}
		prev = a
		sum += a
	}
	if math.Abs(sum-s.Alpha) > 1e-12 {
		t.Fatalf("spending increments sum to %g, want alpha=%g", sum, s.Alpha)
	}
	if got := s.SpendingThreshold(0); got != 0 {
		t.Fatalf("threshold for look 0 = %g, want 0", got)
	}
	if got := s.SpendingThreshold(s.MaxLooks + 1); got != s.Alpha {
		t.Fatalf("extension-look threshold = %g, want full alpha %g", got, s.Alpha)
	}
}

func TestSPRTStatisticAdaptiveNull(t *testing.T) {
	// Clean homo baseline: each hetero failure contributes log(19).
	if got, want := SPRTStatistic(1, 0, 0, 4), math.Log(0.95/0.05); math.Abs(got-want) > 1e-12 {
		t.Fatalf("clean-baseline LLR = %g, want %g", got, want)
	}
	// Homo arms failing at 50% raise the null: the same hetero failure
	// counts far less evidence.
	if clean, noisy := SPRTStatistic(4, 0, 0, 8), SPRTStatistic(4, 0, 4, 4); noisy >= clean {
		t.Fatalf("LLR with a noisy baseline (%g) not below clean baseline (%g)", noisy, clean)
	}
	// The null is capped below theta1, keeping the statistic finite and
	// positive per failure even if every homo trial fails.
	if got := SPRTStatistic(1, 0, 8, 0); got <= 0 || math.IsInf(got, 0) {
		t.Fatalf("LLR with an all-failing baseline = %g, want finite positive", got)
	}
}

func TestParseSeqMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SeqMode
	}{{"sprt", SeqSPRT}, {"gsf", SeqGSF}, {"fixed", SeqFixed}} {
		got, err := ParseSeqMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSeqMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() round-trip: %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseSeqMode("bogus"); err == nil {
		t.Fatal("ParseSeqMode accepted a bogus mode")
	}
}

func TestBudgetPoolAccounting(t *testing.T) {
	p := NewBudgetPool()
	if p.TryWithdraw() {
		t.Fatal("withdrawal from an empty pool granted")
	}
	p.Deposit(3)
	p.Deposit(0)  // no-op
	p.Deposit(-2) // no-op
	if got := p.Balance(); got != 3 {
		t.Fatalf("balance = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if !p.TryWithdraw() {
			t.Fatalf("withdrawal %d denied with positive balance", i)
		}
	}
	if p.TryWithdraw() {
		t.Fatal("withdrawal granted past the balance")
	}
	dep, wd := p.Stats()
	if dep != 3 || wd != 3 {
		t.Fatalf("stats = (%d, %d), want (3, 3)", dep, wd)
	}
}

func TestBudgetPoolNilSafe(t *testing.T) {
	var p *BudgetPool
	p.Deposit(5)
	if p.TryWithdraw() {
		t.Fatal("nil pool granted a withdrawal")
	}
	if p.Balance() != 0 {
		t.Fatal("nil pool has a balance")
	}
	if dep, wd := p.Stats(); dep != 0 || wd != 0 {
		t.Fatal("nil pool has stats")
	}
}

func TestBudgetPoolConcurrent(t *testing.T) {
	p := NewBudgetPool()
	const workers = 16
	const perWorker = 100
	var wg sync.WaitGroup
	granted := make([]int64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Deposit(1)
				if p.TryWithdraw() {
					granted[w]++
				}
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, g := range granted {
		total += g
	}
	dep, wd := p.Stats()
	if dep != workers*perWorker {
		t.Fatalf("deposited = %d, want %d", dep, workers*perWorker)
	}
	if wd != total {
		t.Fatalf("withdrawn = %d but goroutines saw %d grants", wd, total)
	}
	if p.Balance() != dep-wd {
		t.Fatalf("balance = %d, want %d", p.Balance(), dep-wd)
	}
}
