package forensics

import (
	"strings"
	"testing"

	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/obs"
)

func read(entity string, index int, param, value string) agent.ReadEvent {
	return agent.ReadEvent{Entity: entity, Index: index, Param: param, Value: value, Found: true}
}

func TestFirstDivergent(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name  string
		reads []agent.ReadEvent
		want  int
	}{
		{"empty", nil, -1},
		{"single entity never diverges", []agent.ReadEvent{
			read("NameNode", 0, "p", "a"),
			read("NameNode", 0, "p", "b"), // same instance, changed value: not heterogeneity
		}, -1},
		{"two entities same value agree", []agent.ReadEvent{
			read("NameNode", 0, "p", "a"),
			read("DataNode", 0, "p", "a"),
		}, -1},
		{"divergence at the later read", []agent.ReadEvent{
			read("NameNode", 0, "p", "a"),
			read("NameNode", 0, "q", "x"),
			read("DataNode", 1, "p", "b"),
		}, 2},
		{"params tracked independently", []agent.ReadEvent{
			read("NameNode", 0, "p", "a"),
			read("DataNode", 0, "q", "b"), // different param, no conflict
			read("DataNode", 0, "p", "a"), // same param, same value
		}, -1},
		{"found flag counts as a value", []agent.ReadEvent{
			read("NameNode", 0, "p", ""),
			{Entity: "DataNode", Index: 0, Param: "p", Value: "", Found: false},
		}, 1},
		{"same indices different entity diverge", []agent.ReadEvent{
			read("NameNode", 0, "p", "a"),
			read("DataNode", 0, "p", "b"),
		}, 1},
	}
	for _, tc := range cases {
		if got := FirstDivergent(tc.reads); got != tc.want {
			t.Errorf("%s: FirstDivergent = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestDivergentPair(t *testing.T) {
	t.Parallel()
	ev := &Evidence{
		Reads: []agent.ReadEvent{
			read("NameNode", 0, "p", "a"),
			read("DataNode", 0, "q", "z"),
			read("DataNode", 1, "p", "b"),
		},
	}
	ev.FirstDivergent = FirstDivergent(ev.Reads)
	first, earlier, ok := ev.DivergentPair()
	if !ok {
		t.Fatal("DivergentPair found nothing")
	}
	if first.Entity != "DataNode" || first.Value != "b" {
		t.Fatalf("first = %+v", first)
	}
	if earlier.Entity != "NameNode" || earlier.Value != "a" {
		t.Fatalf("earlier = %+v", earlier)
	}

	none := &Evidence{FirstDivergent: -1}
	if _, _, ok := none.DivergentPair(); ok {
		t.Fatal("DivergentPair ok on a record with no divergence")
	}
}

func TestRenderLogInsertsTruncationMarker(t *testing.T) {
	t.Parallel()
	ev := &Evidence{
		Log:             []string{"head", "tail1", "tail2"},
		LogDroppedBytes: 120,
		LogDroppedMsgs:  3,
	}
	got := ev.RenderLog()
	want := []string{"head", "…truncated 120 bytes (3 messages)…", "tail1", "tail2"}
	if len(got) != len(want) {
		t.Fatalf("RenderLog = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RenderLog[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// No drop: pass-through, no marker.
	intact := &Evidence{Log: []string{"a", "b"}}
	if got := intact.RenderLog(); len(got) != 2 {
		t.Fatalf("intact RenderLog = %v", got)
	}
}

func TestRecorderBudgetDegradesToVerdictOnly(t *testing.T) {
	t.Parallel()
	o := obs.New()
	// Budget big enough for one record but not two.
	ev := func() *Evidence {
		return &Evidence{
			App: "a", Test: "T", Msg: strings.Repeat("x", 200),
			Log:            []string{strings.Repeat("l", 100)},
			Reads:          []agent.ReadEvent{read("N", 0, "p", "v")},
			FirstDivergent: 0,
		}
	}
	rec := NewRecorder("a", ev().approxSize()+8, o)
	first := rec.Admit(ev())
	if first.VerdictOnly || len(first.Log) == 0 || len(first.Reads) == 0 {
		t.Fatalf("first record degraded within budget: %+v", first)
	}
	second := rec.Admit(ev())
	if !second.VerdictOnly || second.Log != nil || second.Reads != nil || second.FirstDivergent != -1 {
		t.Fatalf("second record not degraded past budget: %+v", second)
	}
	if second.Msg == "" {
		t.Fatal("verdict-only degradation stripped the failure message")
	}
	if n := o.Metrics.CounterValue(obs.MEvidenceRecords, "app", "a"); n != 2 {
		t.Fatalf("evidence records = %d, want 2", n)
	}
	if n := o.Metrics.CounterValue(obs.MEvidenceTruncated, "app", "a", "reason", "budget"); n != 1 {
		t.Fatalf("budget truncations = %d, want 1", n)
	}
}

func TestRecorderCountsRingTruncations(t *testing.T) {
	t.Parallel()
	o := obs.New()
	rec := NewRecorder("a", -1, o)
	rec.Admit(&Evidence{App: "a", LogDroppedBytes: 5, LogDroppedMsgs: 1, ReadsDropped: 2, FirstDivergent: -1})
	if n := o.Metrics.CounterValue(obs.MEvidenceTruncated, "app", "a", "reason", "log"); n != 1 {
		t.Fatalf("log truncations = %d, want 1", n)
	}
	if n := o.Metrics.CounterValue(obs.MEvidenceTruncated, "app", "a", "reason", "reads"); n != 1 {
		t.Fatalf("reads truncations = %d, want 1", n)
	}
}

func TestRecorderDisabledAndUnlimited(t *testing.T) {
	t.Parallel()
	var off *Recorder
	if off.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if spec := off.Spec(); spec != (harness.CaptureSpec{}) {
		t.Fatalf("nil recorder spec = %+v", spec)
	}
	if NewRecorder("a", 0, nil) != nil {
		t.Fatal("budget 0 did not disable the recorder")
	}
	if off.Admit(nil) != nil {
		t.Fatal("nil recorder Admit(nil) != nil")
	}

	unlimited := NewRecorder("a", -1, nil)
	for i := 0; i < 64; i++ {
		ev := unlimited.Admit(&Evidence{App: "a", Log: []string{strings.Repeat("x", 1024)}, FirstDivergent: -1})
		if ev.VerdictOnly {
			t.Fatal("unlimited recorder degraded a record")
		}
	}
	spec := unlimited.Spec()
	if spec.LogBytes != DefaultLogBytes || spec.ReadEvents != DefaultReadEvents {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestReproCommandRoundTrip(t *testing.T) {
	t.Parallel()
	cmd := ReproCommand("minihdfs", "TestWriteRead", "dfs.checksum.type", 42)
	rp, err := ParseRepro(cmd)
	if err != nil {
		t.Fatal(err)
	}
	want := Repro{App: "minihdfs", Tests: "TestWriteRead", Params: "dfs.checksum.type", Seed: 42}
	if rp != want {
		t.Fatalf("ParseRepro = %+v, want %+v", rp, want)
	}
	for _, bad := range []string{
		"",
		"rm -rf /",
		"zebraconf -mode stats",
		"zebraconf -mode run -app a -tests T",
		"zebraconf -mode run -app a -tests T -params p -seed NaN",
		"zebraconf -mode run -app a -tests T -params p -unknown x",
	} {
		if _, err := ParseRepro(bad); err == nil {
			t.Errorf("ParseRepro(%q) accepted", bad)
		}
	}
}

func TestAssignKVSorted(t *testing.T) {
	t.Parallel()
	kv := AssignKV(map[agent.Key]string{
		{NodeType: "NameNode", NodeIndex: 0, Param: "p"}: "1",
		{NodeType: "DataNode", NodeIndex: 1, Param: "p"}: "2",
		{NodeType: "DataNode", NodeIndex: 0, Param: "q"}: "3",
		{NodeType: "DataNode", NodeIndex: 0, Param: "p"}: "4",
	})
	order := make([]string, 0, len(kv))
	for _, e := range kv {
		order = append(order, e.Entity, e.Param)
	}
	want := []string{"DataNode", "p", "DataNode", "q", "DataNode", "p", "NameNode", "p"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("sort order = %v", kv)
		}
	}
	if kv[0].Value != "4" || kv[1].Value != "3" || kv[2].Value != "2" || kv[3].Value != "1" {
		t.Fatalf("values misordered: %v", kv)
	}
}

func TestFromOutcomeCopiesCapture(t *testing.T) {
	t.Parallel()
	out := harness.Outcome{
		Failed:          true,
		Msg:             "boom",
		Logs:            []string{"boom", "more"},
		LogDroppedBytes: 7,
		LogDroppedMsgs:  1,
		Reads: []agent.ReadEvent{
			read("NameNode", 0, "p", "a"),
			read("DataNode", 0, "p", "b"),
		},
		ReadsDropped: 3,
	}
	ev := FromOutcome("app", "T", 99, 2, out)
	if ev.App != "app" || ev.Test != "T" || ev.Seed != 99 || ev.Round != 2 {
		t.Fatalf("identity = %+v", ev)
	}
	if !ev.Failed || ev.Msg != "boom" || len(ev.Log) != 2 || ev.LogDroppedBytes != 7 || ev.ReadsDropped != 3 {
		t.Fatalf("capture = %+v", ev)
	}
	if ev.FirstDivergent != 1 {
		t.Fatalf("FirstDivergent = %d, want 1", ev.FirstDivergent)
	}
}
