// Package forensics records bounded, structured evidence for unit-test
// executions: the canonical assignment and seed, a capped ring of
// harness log output, the agent's ordered config-read trace with the
// first divergent read across instances highlighted, the failure
// message, and a copy-pasteable repro command. The paper's reports only
// become findings after manual triage (§7.1: 57 reports hand-analyzed
// down to 41 true problems); evidence records make that triage
// data-driven — every reported parameter carries the execution that
// convicted it, not just a verdict label.
package forensics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/obs"
)

// Capture defaults: per-execution caps (the ring satellite) and the
// campaign-wide byte budget behind -evidence-max.
const (
	// DefaultLogBytes caps one execution's retained harness log.
	DefaultLogBytes = 8 << 10
	// DefaultReadEvents caps one execution's recorded config reads.
	DefaultReadEvents = 256
	// DefaultBudget is the campaign-wide evidence byte budget; past it,
	// records degrade to verdict-only instead of growing without bound.
	DefaultBudget = int64(8 << 20)
)

// KV is one canonical assignment entry: entity instance, parameter,
// assigned value. A sorted []KV is the serializable, human-readable form
// of the runner's assignment map.
type KV struct {
	Entity string `json:"entity"`
	Index  int    `json:"index"`
	Param  string `json:"param"`
	Value  string `json:"value"`
}

// Arm describes one arm of a Definition 3.1 instance as it ran: its
// name (hetero, homoA, ...), the seed of its round-0 trial, and — for
// canonically-seeded arms — the assignment digest that identifies the
// execution in the memo cache, so a cached arm's evidence points at the
// original execution instead of pretending one happened here.
type Arm struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Digest is the canonical assignment digest (memo key component) for
	// homogeneous arms; empty for the label-seeded heterogeneous arm.
	Digest string `json:"digest,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	// Cached marks a round-0 result served by the execution cache; Seed
	// and Digest name the original execution it reused.
	Cached bool `json:"cached,omitempty"`
}

// Evidence is the bounded record of the execution that decided one
// instance: enough to explain the verdict and to re-run it.
type Evidence struct {
	App      string `json:"app"`
	Test     string `json:"test"`
	Instance string `json:"instance,omitempty"`
	Param    string `json:"param,omitempty"`
	// Seed is the captured heterogeneous trial's seed; Round its
	// confirmation round (0 = first trial).
	Seed  int64 `json:"seed"`
	Round int   `json:"round,omitempty"`

	Failed   bool   `json:"failed,omitempty"`
	TimedOut bool   `json:"timed_out,omitempty"`
	Msg      string `json:"msg,omitempty"`

	// Assign is the canonical heterogeneous assignment, sorted.
	Assign []KV `json:"assign,omitempty"`
	// Arms lists the instance's arms as they ran in round 0.
	Arms []Arm `json:"arms,omitempty"`

	// Hypothesis-testing trial counts across all rounds.
	HeteroFail int64 `json:"hetero_fail,omitempty"`
	HeteroPass int64 `json:"hetero_pass,omitempty"`
	HomoFail   int64 `json:"homo_fail,omitempty"`
	HomoPass   int64 `json:"homo_pass,omitempty"`

	// Log is the captured harness output (ring-capped); the dropped
	// counters mark an eviction gap between Log[0] and Log[1].
	Log             []string `json:"log,omitempty"`
	LogDroppedBytes int      `json:"log_dropped_bytes,omitempty"`
	LogDroppedMsgs  int      `json:"log_dropped_msgs,omitempty"`

	// Reads is the ordered config-read trace; FirstDivergent indexes the
	// first read that observed a different value than an earlier read of
	// the same parameter by a different instance (-1: none observed).
	Reads          []agent.ReadEvent `json:"reads,omitempty"`
	ReadsDropped   int               `json:"reads_dropped,omitempty"`
	FirstDivergent int               `json:"first_divergent"`

	// Repro is the copy-pasteable command that re-runs this instance's
	// campaign slice under the same seed.
	Repro string `json:"repro,omitempty"`

	// VerdictOnly marks a record degraded by the campaign-wide budget:
	// log and reads were stripped, identity and counts survive.
	VerdictOnly bool `json:"verdict_only,omitempty"`
}

// FromOutcome builds the evidence core from one captured heterogeneous
// execution. Instance, Param, Arms, trial counts, and Repro are filled
// in by the layers that know them.
func FromOutcome(app, test string, seed int64, round int, out harness.Outcome) *Evidence {
	return &Evidence{
		App:             app,
		Test:            test,
		Seed:            seed,
		Round:           round,
		Failed:          out.Failed,
		TimedOut:        out.TimedOut,
		Msg:             out.Msg,
		Log:             out.Logs,
		LogDroppedBytes: out.LogDroppedBytes,
		LogDroppedMsgs:  out.LogDroppedMsgs,
		Reads:           out.Reads,
		ReadsDropped:    out.ReadsDropped,
		FirstDivergent:  FirstDivergent(out.Reads),
	}
}

// AssignKV flattens an assignment map into its canonical sorted form.
func AssignKV(assign map[agent.Key]string) []KV {
	out := make([]KV, 0, len(assign))
	for k, v := range assign {
		out = append(out, KV{Entity: k.NodeType, Index: k.NodeIndex, Param: k.Param, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Param < b.Param
	})
	return out
}

// FirstDivergent finds the first read that observed a different value
// than an earlier read of the same parameter by a different instance —
// the moment the heterogeneous configuration became visible to the
// system under test. Returns -1 when no divergence was observed (e.g.
// only one entity ever read the parameter).
func FirstDivergent(reads []agent.ReadEvent) int {
	type obsVal struct {
		entity string
		index  int
		value  string
		found  bool
	}
	seen := make(map[string][]obsVal)
	for i, r := range reads {
		for _, prev := range seen[r.Param] {
			sameInstance := prev.entity == r.Entity && prev.index == r.Index
			sameValue := prev.found == r.Found && prev.value == r.Value
			if !sameInstance && !sameValue {
				return i
			}
		}
		seen[r.Param] = append(seen[r.Param], obsVal{r.Entity, r.Index, r.Value, r.Found})
	}
	return -1
}

// DivergentPair returns the divergent read and the earlier conflicting
// read it diverged from, for rendering. ok is false when FirstDivergent
// found nothing.
func (e *Evidence) DivergentPair() (first, earlier agent.ReadEvent, ok bool) {
	i := e.FirstDivergent
	if i < 0 || i >= len(e.Reads) {
		return first, earlier, false
	}
	first = e.Reads[i]
	for j := 0; j < i; j++ {
		r := e.Reads[j]
		if r.Param != first.Param {
			continue
		}
		sameInstance := r.Entity == first.Entity && r.Index == first.Index
		sameValue := r.Found == first.Found && r.Value == first.Value
		if !sameInstance && !sameValue {
			return first, r, true
		}
	}
	return first, earlier, false
}

// RenderLog returns the captured log with an explicit truncation marker
// in place of the ring's eviction gap.
func (e *Evidence) RenderLog() []string {
	if e.LogDroppedBytes == 0 || len(e.Log) == 0 {
		return e.Log
	}
	marker := fmt.Sprintf("…truncated %d bytes (%d messages)…", e.LogDroppedBytes, e.LogDroppedMsgs)
	out := make([]string, 0, len(e.Log)+1)
	out = append(out, e.Log[0], marker)
	out = append(out, e.Log[1:]...)
	return out
}

// approxSize estimates the record's retained bytes for budget
// accounting: string payloads plus a small fixed cost per element.
func (e *Evidence) approxSize() int64 {
	n := len(e.App) + len(e.Test) + len(e.Instance) + len(e.Param) + len(e.Msg) + len(e.Repro) + 64
	for _, l := range e.Log {
		n += len(l) + 16
	}
	for _, r := range e.Reads {
		n += len(r.Entity) + len(r.Param) + len(r.Value) + len(r.Callsite) + 24
	}
	for _, kv := range e.Assign {
		n += len(kv.Entity) + len(kv.Param) + len(kv.Value) + 24
	}
	for _, a := range e.Arms {
		n += len(a.Name) + len(a.Digest) + 24
	}
	return int64(n)
}

// Recorder hands out capture specs and admits finished records against
// the campaign-wide budget. A nil *Recorder is the "evidence off"
// configuration: Spec returns the zero (no-capture) spec and Admit
// passes nil through, so instrumented code never branches.
type Recorder struct {
	app        string
	o          *obs.Observer
	logBytes   int
	readEvents int
	unlimited  bool
	remaining  atomic.Int64
}

// NewRecorder builds a recorder for app. budget is the campaign-wide
// evidence byte cap: positive enforces it, negative means unlimited,
// zero means evidence off (returns nil — the nil-safe disabled state).
func NewRecorder(app string, budget int64, o *obs.Observer) *Recorder {
	if budget == 0 {
		return nil
	}
	r := &Recorder{
		app:        app,
		o:          o,
		logBytes:   DefaultLogBytes,
		readEvents: DefaultReadEvents,
		unlimited:  budget < 0,
	}
	if budget > 0 {
		r.remaining.Store(budget)
	}
	return r
}

// Spec returns the per-execution capture bounds.
func (r *Recorder) Spec() harness.CaptureSpec {
	if r == nil {
		return harness.CaptureSpec{}
	}
	return harness.CaptureSpec{LogBytes: r.logBytes, ReadEvents: r.readEvents}
}

// Enabled reports whether capture is on.
func (r *Recorder) Enabled() bool { return r != nil }

// Admit finalizes one record against the budget: within budget the
// record passes through intact; past it, the record degrades to
// verdict-only (identity, counts, and repro survive; log and reads are
// stripped) rather than growing the store without bound. Truncation —
// per-execution ring evictions and budget degradation alike — is
// counted on the evidence-truncated metric.
func (r *Recorder) Admit(ev *Evidence) *Evidence {
	if r == nil || ev == nil {
		return ev
	}
	if ev.LogDroppedBytes > 0 {
		r.o.CounterAdd(obs.MEvidenceTruncated, 1, "app", r.app, "reason", "log")
	}
	if ev.ReadsDropped > 0 {
		r.o.CounterAdd(obs.MEvidenceTruncated, 1, "app", r.app, "reason", "reads")
	}
	if !r.unlimited && r.remaining.Add(-ev.approxSize()) < 0 {
		ev.VerdictOnly = true
		ev.Log = nil
		ev.LogDroppedBytes, ev.LogDroppedMsgs = 0, 0
		ev.Reads = nil
		ev.ReadsDropped = 0
		ev.FirstDivergent = -1
		r.o.CounterAdd(obs.MEvidenceTruncated, 1, "app", r.app, "reason", "budget")
	}
	r.o.CounterAdd(obs.MEvidenceRecords, 1, "app", r.app)
	return ev
}

// ReproCommand renders the copy-pasteable command that re-runs the
// campaign slice that produced a verdict: same app, unit test,
// parameter, and base seed reproduce the same trials (heterogeneous
// seeds derive from the instance label, homogeneous seeds from the
// assignment content — both functions of these four values alone).
func ReproCommand(app, test, param string, seed int64) string {
	return fmt.Sprintf("zebraconf -mode run -app %s -tests %s -params %s -seed %d",
		app, test, param, seed)
}

// Repro is a parsed repro command, for tests that round-trip it.
type Repro struct {
	App    string
	Tests  string
	Params string
	Seed   int64
}

// ParseRepro parses a ReproCommand back into its fields.
func ParseRepro(cmd string) (Repro, error) {
	fields := strings.Fields(cmd)
	if len(fields) == 0 || fields[0] != "zebraconf" {
		return Repro{}, fmt.Errorf("forensics: not a zebraconf command: %q", cmd)
	}
	var out Repro
	for i := 1; i+1 < len(fields); i += 2 {
		val := fields[i+1]
		switch fields[i] {
		case "-mode":
			if val != "run" {
				return Repro{}, fmt.Errorf("forensics: unexpected repro mode %q", val)
			}
		case "-app":
			out.App = val
		case "-tests":
			out.Tests = val
		case "-params":
			out.Params = val
		case "-seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Repro{}, fmt.Errorf("forensics: bad repro seed %q: %v", val, err)
			}
			out.Seed = n
		default:
			return Repro{}, fmt.Errorf("forensics: unexpected repro flag %q", fields[i])
		}
	}
	if out.App == "" || out.Tests == "" || out.Params == "" {
		return Repro{}, fmt.Errorf("forensics: incomplete repro command: %q", cmd)
	}
	return out, nil
}
