package agent

import "sort"

// Report is what a pre-run of a unit test produces (paper §4 "Pre-run unit
// tests" and §6 Observation 3): which node types started, which parameters
// each entity read, and which parameters were read through configuration
// objects the rules could not place.
type Report struct {
	// NodesStarted counts started nodes per node type. Empty means the unit
	// test started no nodes and cannot test heterogeneous configurations.
	NodesStarted map[string]int
	// Usage maps an entity (a node type, or UnitTestEntity) to the set of
	// parameters read through configuration objects owned by that entity.
	Usage map[string]map[string]bool
	// UncertainParams are parameters read through objects whose final
	// ownership is uncertain, sorted. Test instances combining this unit
	// test with these parameters must be excluded (Observation 3).
	UncertainParams []string
	// UncertainConfs and TotalConfs count configuration objects by final
	// mapping state.
	UncertainConfs int
	TotalConfs     int
	// SharedConf reports whether a unit-test-owned object was handed to a
	// node's init function (the sharing statistic of §6.2).
	SharedConf bool
	// UsedConf reports whether the test touched any configuration at all.
	UsedConf bool
	// RefAnomalies counts RefToClone calls outside an init window.
	RefAnomalies int
}

// Report computes the pre-run report from the agent's final state. Call it
// after the unit test has finished and all nodes have stopped.
func (a *Agent) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()

	r := Report{
		NodesStarted: make(map[string]int, len(a.typeCounts)),
		Usage:        make(map[string]map[string]bool),
		SharedConf:   a.shared,
		UsedConf:     a.confUsed,
		RefAnomalies: a.refAnomalies,
		TotalConfs:   len(a.confObjs),
	}
	for t, n := range a.typeCounts {
		r.NodesStarted[t] = n
	}

	addUse := func(entity, param string) {
		set := r.Usage[entity]
		if set == nil {
			set = make(map[string]bool)
			r.Usage[entity] = set
		}
		set[param] = true
	}

	if a.strategy == StrategyThreadOnly {
		for entity, params := range a.threadReads {
			for p := range params {
				addUse(entity, p)
			}
		}
	}

	uncertain := make(map[string]bool)
	for confID, params := range a.readsByConf {
		o := a.confOwner[confID]
		switch o.kind {
		case ownerNode:
			if n := a.nodes[o.nodeID]; n != nil && a.strategy == StrategyPaper {
				for p := range params {
					addUse(n.nodeType, p)
				}
			}
		case ownerUnitTest:
			if a.strategy == StrategyPaper {
				for p := range params {
					addUse(UnitTestEntity, p)
				}
			}
		default:
			for p := range params {
				uncertain[p] = true
			}
		}
	}
	for id := range a.confObjs {
		if o := a.confOwner[id]; o.kind == ownerUncertain {
			r.UncertainConfs++
		}
	}
	r.UncertainParams = sortedKeys(uncertain)
	return r
}

// NodeCounts returns the number of started nodes per type, usable while the
// test is still running.
func (a *Agent) NodeCounts() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.typeCounts))
	for t, n := range a.typeCounts {
		out[t] = n
	}
	return out
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
