// Package agent implements ConfAgent, the bottom layer of ZebraConf
// (paper §6): it runs a unit test under a given — usually heterogeneous —
// configuration by mapping every configuration object to the node (or the
// unit test itself) that owns it, and intercepting reads so that different
// nodes observe different values for the same parameter.
//
// The agent implements the paper's rule set:
//
//	Rule 1.1 — a configuration object created while a node's init function is
//	           executing on the creating goroutine belongs to that node.
//	Rule 1.2 — a configuration object created before any node has initialized
//	           belongs to the unit test.
//	Rule 2   — refToCloneConf: the object being cloned belongs to the unit
//	           test; the clone belongs to the initializing node.
//	Rule 3   — a clone (not via Rule 2) belongs to the same entity as its
//	           original.
//
// Objects that no rule can place are recorded as uncertain; parameters read
// through uncertain objects are reported so the TestGenerator can exclude
// the (unit test, parameter) combinations that would otherwise produce false
// positives (paper Observation 3).
package agent

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"zebraconf/internal/confkit"
	"zebraconf/internal/gid"
)

// UnitTestEntity is the pseudo node type that represents the unit test
// itself, which ZebraConf treats as a "client" node (paper §6.1).
const UnitTestEntity = "__unittest__"

// Strategy selects how configuration reads are mapped to entities. The
// shipped default is StrategyPaper; StrategyThreadOnly reproduces the
// paper's failed attempt #3 for the mapping-accuracy ablation.
type Strategy int

const (
	// StrategyPaper maps reads by the owner of the configuration object,
	// determined by Rules 1–3.
	StrategyPaper Strategy = iota
	// StrategyThreadOnly maps reads by the goroutine performing them: reads
	// on a goroutine inside (or spawned from) a node's init window belong
	// to that node, all others to the unit test. It misattributes reads
	// when the unit test calls node internals directly (paper §6.1).
	StrategyThreadOnly
)

// Key addresses one assigned value: the TestGenerator gives parameter Param
// the assigned value on the NodeIndex-th node of type NodeType. The unit
// test is addressed as {UnitTestEntity, 0, param}.
type Key struct {
	NodeType  string
	NodeIndex int
	Param     string
}

// Options configures a new Agent. Agents are single-use: create one per
// unit-test execution.
type Options struct {
	// Strategy is the read-mapping strategy; zero value is StrategyPaper.
	Strategy Strategy
	// Assign maps keys to overridden values. Nil means a pre-run: nothing
	// is overridden, only bookkeeping is collected.
	Assign map[Key]string
	// TraceReads, when positive, records the first TraceReads intercepted
	// configuration reads in order — the forensics read trace. Zero (the
	// default) disables recording; reads beyond the cap are counted, not
	// stored, so chatty tests bound their own evidence.
	TraceReads int
	// Coverage records the deduplicated set of parameters this execution
	// read, with no cap: unlike the bounded forensic trace above, the
	// coverage sink must never drop an edge — a lost (param, test) edge
	// would silently starve that test of instances under coverage-driven
	// selection.
	Coverage bool
	// CoverageSites additionally records app-frame callsites per read
	// parameter (a stack walk per read — pre-run cost, not phase-2 cost).
	// Implies Coverage.
	CoverageSites bool
}

// ReadEvent is one intercepted configuration read, in program order: the
// entity the read was attributed to, the parameter, the value the reader
// actually observed (after any heterogeneous override), and the
// application call site. This is the forensics trail that turns "the
// heterogeneous arm failed" into "this node read this value right here".
type ReadEvent struct {
	// Entity is the owning node type, UnitTestEntity, or "uncertain" when
	// no mapping rule placed the configuration object.
	Entity string `json:"entity"`
	Index  int    `json:"index,omitempty"`
	Param  string `json:"param"`
	// Value is what the reader observed; empty with Found false means the
	// parameter was unset.
	Value string `json:"value,omitempty"`
	Found bool   `json:"found,omitempty"`
	// Overridden marks values substituted from the heterogeneous
	// assignment rather than read from the stored configuration.
	Overridden bool `json:"overridden,omitempty"`
	// Callsite is the first application stack frame (file:line) outside
	// the interception machinery.
	Callsite string `json:"callsite,omitempty"`
}

// String renders the event the way reports print it.
func (e ReadEvent) String() string {
	v := fmt.Sprintf("%q", e.Value)
	if !e.Found {
		v = "<unset>"
	}
	s := fmt.Sprintf("%s[%d] read %s = %s", e.Entity, e.Index, e.Param, v)
	if e.Overridden {
		s += " (assigned)"
	}
	if e.Callsite != "" {
		s += " at " + e.Callsite
	}
	return s
}

type ownerKind int

const (
	ownerUncertain ownerKind = iota
	ownerUnitTest
	ownerNode
)

type owner struct {
	kind   ownerKind
	nodeID uint64
}

// nodeInfo is one nodeTable entry (paper §6.3).
type nodeInfo struct {
	id           uint64
	nodeType     string
	index        int // i-th started node of nodeType
	parentConfID uint64
}

// Agent is a single-use ConfAgent instance. It implements confkit.Hooks.
// All methods are safe for concurrent use by the nodes of one unit test.
type Agent struct {
	strategy Strategy
	assign   map[Key]string

	mu sync.Mutex
	// threadCtx maps a goroutine ID to the stack of node IDs whose init
	// functions are executing on it; the base element may be an inherited
	// ownership installed by Spawn.
	threadCtx map[uint64][]uint64

	nodes      map[uint64]*nodeInfo
	nodeSeq    uint64
	typeCounts map[string]int

	confOwner map[uint64]owner
	confObjs  map[uint64]*confkit.Conf
	parentOf  map[uint64]uint64 // clone conf ID -> original conf ID

	readsByConf  map[uint64]map[string]bool
	threadReads  map[string]map[string]bool // entity -> params (thread-only strategy)
	confUsed     bool
	shared       bool
	refAnomalies int

	traceReads   int // cap; 0 disables the read trace
	readLog      []ReadEvent
	readsDropped int

	// covParams is the uncapped deduplicating coverage sink (nil when
	// Options.Coverage is off); covSites adds per-param callsites.
	covParams map[string]bool
	covSites  map[string]map[string]bool
}

// New returns a fresh agent. Install it on the unit test's runtime with
// rt.SetHooks before any node starts.
func New(opts Options) *Agent {
	a := &Agent{
		strategy:    opts.Strategy,
		assign:      opts.Assign,
		traceReads:  opts.TraceReads,
		threadCtx:   make(map[uint64][]uint64),
		nodes:       make(map[uint64]*nodeInfo),
		typeCounts:  make(map[string]int),
		confOwner:   make(map[uint64]owner),
		confObjs:    make(map[uint64]*confkit.Conf),
		parentOf:    make(map[uint64]uint64),
		readsByConf: make(map[uint64]map[string]bool),
		threadReads: make(map[string]map[string]bool),
	}
	if opts.Coverage || opts.CoverageSites {
		a.covParams = make(map[string]bool)
	}
	if opts.CoverageSites {
		a.covSites = make(map[string]map[string]bool)
	}
	return a
}

// StartInit implements confkit.Hooks: it registers a new node of nodeType in
// the node table and opens an init window on the calling goroutine.
func (a *Agent) StartInit(nodeType string) {
	g := gid.ID()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nodeSeq++
	n := &nodeInfo{id: a.nodeSeq, nodeType: nodeType, index: a.typeCounts[nodeType]}
	a.typeCounts[nodeType]++
	a.nodes[n.id] = n
	a.threadCtx[g] = append(a.threadCtx[g], n.id)
}

// StopInit closes the innermost init window on the calling goroutine.
func (a *Agent) StopInit() {
	g := gid.ID()
	a.mu.Lock()
	defer a.mu.Unlock()
	stack := a.threadCtx[g]
	if len(stack) == 0 {
		return
	}
	stack = stack[:len(stack)-1]
	if len(stack) == 0 {
		delete(a.threadCtx, g)
	} else {
		a.threadCtx[g] = stack
	}
}

// Spawn starts fn on a new goroutine that inherits the spawner's current
// node ownership for its whole lifetime. This extends the paper's init-window
// rule to worker goroutines started during initialization (heartbeat loops,
// RPC handlers), which otherwise would create unmappable objects.
func (a *Agent) Spawn(fn func()) {
	g := gid.ID()
	a.mu.Lock()
	var inherit uint64
	if stack := a.threadCtx[g]; len(stack) > 0 {
		inherit = stack[len(stack)-1]
	}
	a.mu.Unlock()
	go func() {
		if inherit != 0 {
			cg := gid.ID()
			a.mu.Lock()
			a.threadCtx[cg] = append(a.threadCtx[cg], inherit)
			a.mu.Unlock()
			defer func() {
				a.mu.Lock()
				delete(a.threadCtx, cg)
				a.mu.Unlock()
			}()
		}
		fn()
	}()
}

// currentNodeLocked returns the node whose init window (or inherited
// ownership) covers goroutine g, or nil.
func (a *Agent) currentNodeLocked(g uint64) *nodeInfo {
	stack := a.threadCtx[g]
	if len(stack) == 0 {
		return nil
	}
	return a.nodes[stack[len(stack)-1]]
}

// NewConf implements Rules 1.1 and 1.2 for the blank constructor.
func (a *Agent) NewConf(c *confkit.Conf) {
	g := gid.ID()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.confObjs[c.ID()] = c
	if n := a.currentNodeLocked(g); n != nil {
		a.confOwner[c.ID()] = owner{kind: ownerNode, nodeID: n.id} // Rule 1.1
		return
	}
	if len(a.nodes) == 0 {
		a.confOwner[c.ID()] = owner{kind: ownerUnitTest} // Rule 1.2
		return
	}
	a.confOwner[c.ID()] = owner{kind: ownerUncertain}
}

// CloneConf implements Rule 3 for the clone constructor: the clone joins the
// original's group; if neither is mapped, both become uncertain.
func (a *Agent) CloneConf(orig, clone *confkit.Conf) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.confObjs[clone.ID()] = clone
	a.parentOf[clone.ID()] = orig.ID()
	if o, ok := a.confOwner[orig.ID()]; ok && o.kind != ownerUncertain {
		a.confOwner[clone.ID()] = o
		return
	}
	if o, ok := a.confOwner[clone.ID()]; ok && o.kind != ownerUncertain {
		a.confOwner[orig.ID()] = o
		return
	}
	a.confOwner[orig.ID()] = owner{kind: ownerUncertain}
	a.confOwner[clone.ID()] = owner{kind: ownerUncertain}
}

// RefToClone implements Rule 2: called from a node's init function in place
// of storing a shared configuration reference, it returns a clone owned by
// the initializing node, marks the original as the unit test's, and records
// the parent link used for write-back by InterceptSet.
func (a *Agent) RefToClone(orig *confkit.Conf) *confkit.Conf {
	g := gid.ID()
	clone := orig.CloneForAgent()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.confObjs[orig.ID()] = orig
	a.confObjs[clone.ID()] = clone
	n := a.currentNodeLocked(g)
	if n == nil {
		// Misuse: refToCloneConf outside an init window. Keep the original
		// reference and count the anomaly; the object mapping is unchanged.
		a.refAnomalies++
		return orig
	}
	a.confOwner[clone.ID()] = owner{kind: ownerNode, nodeID: n.id}
	n.parentConfID = orig.ID()
	a.parentOf[clone.ID()] = orig.ID()
	// Rule 2: the shared original belongs to the unit test...
	if prev, ok := a.confOwner[orig.ID()]; !ok || prev.kind == ownerUncertain {
		a.confOwner[orig.ID()] = owner{kind: ownerUnitTest}
	}
	if a.confOwner[orig.ID()].kind == ownerUnitTest {
		a.shared = true // a unit-test object was handed to a node: sharing observed
	}
	// ...and so do its uncertain ancestors (Rule 3 walk).
	for id := orig.ID(); ; {
		parent, ok := a.parentOf[id]
		if !ok {
			break
		}
		if o, ok := a.confOwner[parent]; !ok || o.kind == ownerUncertain {
			a.confOwner[parent] = owner{kind: ownerUnitTest}
		}
		id = parent
	}
	return clone
}

// InterceptGet records the read for the pre-run and, when the TestGenerator
// assigned a value to <owner entity, parameter>, overrides the result.
func (a *Agent) InterceptGet(c *confkit.Conf, name, stored string, found bool) (string, bool) {
	g := gid.ID()
	// Callsite capture walks the stack only when the read trace or the
	// coverage callsite sink is on; the default path pays nothing.
	var callsite string
	if a.traceReads > 0 || a.covSites != nil {
		callsite = appCallsite()
	}
	a.mu.Lock()
	a.confUsed = true
	if a.covParams != nil {
		a.covParams[name] = true
		if a.covSites != nil && callsite != "" {
			set := a.covSites[name]
			if set == nil {
				set = make(map[string]bool)
				a.covSites[name] = set
			}
			set[callsite] = true
		}
	}
	reads := a.readsByConf[c.ID()]
	if reads == nil {
		reads = make(map[string]bool)
		a.readsByConf[c.ID()] = reads
	}
	reads[name] = true

	var key Key
	haveKey := false
	switch a.strategy {
	case StrategyThreadOnly:
		// Attempt #3: attribute the read to the goroutine doing it.
		entity := UnitTestEntity
		index := 0
		if n := a.currentNodeLocked(g); n != nil {
			entity, index = n.nodeType, n.index
		}
		er := a.threadReads[entity]
		if er == nil {
			er = make(map[string]bool)
			a.threadReads[entity] = er
		}
		er[name] = true
		key = Key{NodeType: entity, NodeIndex: index, Param: name}
		haveKey = true
	default:
		switch o := a.confOwner[c.ID()]; o.kind {
		case ownerNode:
			if n := a.nodes[o.nodeID]; n != nil {
				key = Key{NodeType: n.nodeType, NodeIndex: n.index, Param: name}
				haveKey = true
			}
		case ownerUnitTest:
			key = Key{NodeType: UnitTestEntity, NodeIndex: 0, Param: name}
			haveKey = true
		}
	}
	// Resolve the override while still holding the lock (assign is
	// immutable after construction) so the read-trace event records the
	// value the reader actually observed, in program order.
	value, ok, overridden := stored, found, false
	if haveKey && a.assign != nil {
		if v, has := a.assign[key]; has {
			value, ok, overridden = v, true, true
		}
	}
	if a.traceReads > 0 {
		if len(a.readLog) < a.traceReads {
			ev := ReadEvent{
				Entity: "uncertain", Param: name,
				Value: value, Found: ok, Overridden: overridden,
				Callsite: callsite,
			}
			if haveKey {
				ev.Entity, ev.Index = key.NodeType, key.NodeIndex
			}
			a.readLog = append(a.readLog, ev)
		} else {
			a.readsDropped++
		}
	}
	a.mu.Unlock()
	return value, ok
}

// ReadTrace returns the recorded read events (in interception order) and
// how many more were dropped once the cap filled. Empty unless
// Options.TraceReads was positive.
func (a *Agent) ReadTrace() ([]ReadEvent, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ReadEvent, len(a.readLog))
	copy(out, a.readLog)
	return out, a.readsDropped
}

// CoverageParams returns the sorted, deduplicated set of parameters
// this execution read. Nil unless Options.Coverage (or CoverageSites)
// was set. Unlike ReadTrace, this sink has no cap: every distinct
// parameter is present no matter how chatty the test.
func (a *Agent) CoverageParams() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.covParams == nil {
		return nil
	}
	out := make([]string, 0, len(a.covParams))
	for p := range a.covParams {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// CoverageSites returns the param → sorted app callsites map recorded
// when Options.CoverageSites was set; nil otherwise.
func (a *Agent) CoverageSites() map[string][]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.covSites) == 0 {
		return nil
	}
	out := make(map[string][]string, len(a.covSites))
	for p, set := range a.covSites {
		ss := make([]string, 0, len(set))
		for s := range set {
			ss = append(ss, s)
		}
		sort.Strings(ss)
		out[p] = ss
	}
	return out
}

// appCallsite reports the first stack frame outside the configuration
// interception machinery (confkit getters and this package), as
// file:line with the file trimmed to its last two path segments.
func appCallsite() string {
	var pcs [12]uintptr
	// Skip runtime.Callers, appCallsite, and InterceptGet itself.
	n := runtime.Callers(3, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if f.Function == "" {
			break
		}
		if !strings.Contains(f.Function, "/confkit.") && !strings.Contains(f.Function, "/agent.") {
			file := f.File
			if i := strings.LastIndex(file, "/"); i >= 0 {
				if j := strings.LastIndex(file[:i], "/"); j >= 0 {
					file = file[j+1:]
				}
			}
			return fmt.Sprintf("%s:%d", file, f.Line)
		}
		if !more {
			break
		}
	}
	return ""
}

// InterceptSet propagates a node's write back to the parent object the node
// was initialized from (paper §6.3): unit tests that pass an empty
// configuration to a node and read values the node filled in would otherwise
// observe the stale original, because RefToClone replaced the reference.
func (a *Agent) InterceptSet(c *confkit.Conf, name, value string) {
	a.mu.Lock()
	a.confUsed = true
	var parent *confkit.Conf
	if o, ok := a.confOwner[c.ID()]; ok && o.kind == ownerNode {
		if n := a.nodes[o.nodeID]; n != nil && n.parentConfID != 0 {
			parent = a.confObjs[n.parentConfID]
		}
	}
	a.mu.Unlock()
	if parent != nil && parent.ID() != c.ID() {
		parent.SetRaw(name, value)
	}
}
