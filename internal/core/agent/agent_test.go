package agent

import (
	"sync"
	"testing"

	"zebraconf/internal/confkit"
)

func newRuntime() *confkit.Runtime {
	r := confkit.NewRegistry()
	r.Register(
		confkit.Param{Name: "p", Kind: confkit.Int, Default: "1"},
		confkit.Param{Name: "q", Kind: confkit.String, Default: "dflt"},
	)
	return confkit.NewRuntime(r)
}

// server mimics the paper's Fig. 2b Server class: its constructor opens an
// init window, replaces the shared reference with a clone, and creates a
// subcomponent with its own configuration object (Fig. 2c).
type server struct {
	conf    *confkit.Conf
	subConf *confkit.Conf
}

func newServer(rt *confkit.Runtime, shared *confkit.Conf) *server {
	rt.StartInit("Server")
	defer rt.StopInit()
	s := &server{conf: shared.RefToClone()}
	s.subConf = rt.NewConf() // the Component's own configuration
	return s
}

// TestPaperWalkthrough executes the scenario of paper §6.3 Steps 1–7 and
// checks every ownership decision.
func TestPaperWalkthrough(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	ag := New(Options{Assign: map[Key]string{
		{NodeType: "Server", NodeIndex: 0, Param: "p"}:       "100",
		{NodeType: "Server", NodeIndex: 1, Param: "p"}:       "200",
		{NodeType: UnitTestEntity, NodeIndex: 0, Param: "p"}: "7",
	}})
	rt.SetHooks(ag)

	// Step 1: the unit test creates a blank configuration (Rule 1.2).
	conf := rt.NewConf()
	// Steps 2–5: server1; Step 6: server2 — sharing conf (Rule 2, 1.1).
	s1 := newServer(rt, conf)
	s2 := newServer(rt, conf)

	// Step 7: reads through each owner observe that owner's value.
	if got := s1.conf.GetInt("p"); got != 100 {
		t.Errorf("server1 reads p=%d, want 100", got)
	}
	if got := s2.conf.GetInt("p"); got != 200 {
		t.Errorf("server2 reads p=%d, want 200", got)
	}
	if got := s1.subConf.GetInt("p"); got != 100 {
		t.Errorf("server1's component reads p=%d, want 100 (Rule 1.1)", got)
	}
	if got := conf.GetInt("p"); got != 7 {
		t.Errorf("unit test reads p=%d, want 7 (Rule 1.2)", got)
	}
	// Even when the unit test calls server internals on the main
	// goroutine, the configuration OBJECT determines the value — the
	// paper's key design point versus thread-based attribution.
	if got := s1.conf.GetInt("p"); got != 100 {
		t.Errorf("server1 internal call from the test goroutine reads %d, want 100", got)
	}

	rep := ag.Report()
	if rep.NodesStarted["Server"] != 2 {
		t.Fatalf("nodes started: %v", rep.NodesStarted)
	}
	if !rep.SharedConf {
		t.Fatal("sharing not detected although the test shared its object")
	}
	if rep.UncertainConfs != 0 {
		t.Fatalf("unexpected uncertain objects: %d", rep.UncertainConfs)
	}
	if !rep.Usage["Server"]["p"] || !rep.Usage[UnitTestEntity]["p"] {
		t.Fatalf("usage tracking incomplete: %v", rep.Usage)
	}
}

func TestRule3CloneJoinsOwnersGroup(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	ag := New(Options{Assign: map[Key]string{
		{NodeType: "Server", NodeIndex: 0, Param: "p"}: "55",
	}})
	rt.SetHooks(ag)

	shared := rt.NewConf()
	s := newServer(rt, shared)
	clone := s.conf.Clone() // Rule 3: same entity as the original
	if got := clone.GetInt("p"); got != 55 {
		t.Fatalf("clone of a node conf reads p=%d, want the node's 55", got)
	}
	testClone := shared.Clone() // Rule 3: belongs to the unit test
	ag2 := ag.Report()
	if ag2.UncertainConfs != 0 {
		t.Fatalf("clones left uncertain objects: %d", ag2.UncertainConfs)
	}
	_ = testClone
}

func TestUncertainConfDetected(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	ag := New(Options{})
	rt.SetHooks(ag)

	_ = rt.NewConf() // unit test conf (no node yet)
	newServer(rt, rt.NewConf())

	// A conf created on a plain goroutine AFTER a node initialized:
	// no rule places it.
	var wg sync.WaitGroup
	wg.Add(1)
	var stray *confkit.Conf
	go func() {
		defer wg.Done()
		stray = rt.NewConf()
		_ = stray.Get("q")
	}()
	wg.Wait()

	rep := ag.Report()
	if rep.UncertainConfs != 1 {
		t.Fatalf("UncertainConfs = %d, want 1", rep.UncertainConfs)
	}
	if len(rep.UncertainParams) != 1 || rep.UncertainParams[0] != "q" {
		t.Fatalf("UncertainParams = %v, want [q]", rep.UncertainParams)
	}
}

func TestSpawnInheritsNodeOwnership(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	ag := New(Options{Assign: map[Key]string{
		{NodeType: "Worker", NodeIndex: 0, Param: "p"}: "77",
	}})
	rt.SetHooks(ag)

	rt.StartInit("Worker")
	got := make(chan int64, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	rt.Go(func() { // spawned during init: inherits the node
		defer wg.Done()
		workerConf := rt.NewConf()
		got <- workerConf.GetInt("p")
	})
	wg.Wait()
	rt.StopInit()
	if v := <-got; v != 77 {
		t.Fatalf("conf created on a spawned worker goroutine reads p=%d, want 77", v)
	}
}

func TestInterceptSetWritesBackToParent(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	ag := New(Options{})
	rt.SetHooks(ag)

	shared := rt.NewConf()
	s := newServer(rt, shared)
	// The node fills a value the unit test later reads from ITS object —
	// the pattern interceptSet's write-back exists for (paper §6.3).
	s.conf.Set("q", "filled-by-node")
	if got := shared.Get("q"); got != "filled-by-node" {
		t.Fatalf("parent object reads q=%q, want the node's write", got)
	}
}

func TestNodeIndexesAssignedInStartOrder(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	ag := New(Options{Assign: map[Key]string{
		{NodeType: "Server", NodeIndex: 0, Param: "p"}: "10",
		{NodeType: "Server", NodeIndex: 1, Param: "p"}: "20",
		{NodeType: "Server", NodeIndex: 2, Param: "p"}: "30",
	}})
	rt.SetHooks(ag)
	shared := rt.NewConf()
	servers := []*server{newServer(rt, shared), newServer(rt, shared), newServer(rt, shared)}
	for i, want := range []int64{10, 20, 30} {
		if got := servers[i].conf.GetInt("p"); got != want {
			t.Errorf("server %d reads %d, want %d", i, got, want)
		}
	}
	if counts := ag.NodeCounts(); counts["Server"] != 3 {
		t.Fatalf("NodeCounts = %v", counts)
	}
}

func TestRefToCloneOutsideInitWindow(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	ag := New(Options{})
	rt.SetHooks(ag)
	shared := rt.NewConf()
	// Misuse: RefToClone without StartInit. The original reference is
	// returned and the anomaly counted.
	if got := shared.RefToClone(); got != shared {
		t.Fatal("RefToClone outside an init window returned a clone")
	}
	if rep := ag.Report(); rep.RefAnomalies != 1 {
		t.Fatalf("RefAnomalies = %d, want 1", rep.RefAnomalies)
	}
}

// TestThreadOnlyStrategyMisattributes demonstrates the paper's failed
// attempt #3: when the unit test calls a node's internals on the test
// goroutine, thread-based attribution serves the TEST's value where the
// node's value is correct.
func TestThreadOnlyStrategyMisattributes(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	ag := New(Options{
		Strategy: StrategyThreadOnly,
		Assign: map[Key]string{
			{NodeType: "Server", NodeIndex: 0, Param: "p"}:       "100",
			{NodeType: "Server", NodeIndex: 1, Param: "p"}:       "100",
			{NodeType: UnitTestEntity, NodeIndex: 0, Param: "p"}: "7",
		},
	})
	rt.SetHooks(ag)
	shared := rt.NewConf()
	s := newServer(rt, shared)

	// The unit test invokes node code directly (Fig. 2d line 7): with
	// thread attribution the read resolves to the unit test's value.
	if got := s.conf.GetInt("p"); got != 7 {
		t.Fatalf("thread-only strategy read %d; the documented misattribution should yield 7", got)
	}
	// During init (on a node-owned goroutine), attribution is correct.
	// (This StartInit registers a second Server node, index 1.)
	rt.StartInit("Server")
	if got := s.conf.GetInt("p"); got != 100 {
		t.Errorf("read inside an init window = %d, want 100", got)
	}
	rt.StopInit()
}

func TestHomoAssignmentUniformEverywhere(t *testing.T) {
	t.Parallel()
	rt := newRuntime()
	assign := map[Key]string{
		{NodeType: "Server", NodeIndex: 0, Param: "p"}:       "9",
		{NodeType: "Server", NodeIndex: 1, Param: "p"}:       "9",
		{NodeType: UnitTestEntity, NodeIndex: 0, Param: "p"}: "9",
	}
	ag := New(Options{Assign: assign})
	rt.SetHooks(ag)
	shared := rt.NewConf()
	s1, s2 := newServer(rt, shared), newServer(rt, shared)
	for _, c := range []*confkit.Conf{shared, s1.conf, s2.conf, s1.subConf, s2.subConf} {
		if got := c.GetInt("p"); got != 9 {
			t.Fatalf("homogeneous assignment leaked: read %d", got)
		}
	}
}
