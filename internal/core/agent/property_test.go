package agent

import (
	"strconv"
	"testing"
	"testing/quick"

	"zebraconf/internal/confkit"
)

// TestOwnershipClosureProperty drives the agent through randomized
// sequences of node creations, sharing, cloning, and subcomponent
// configuration creation, then checks the closure invariants of the
// paper's rules:
//
//  1. nothing created through an annotated path ends uncertain;
//  2. reads through a node's objects observe that node's assigned value;
//  3. reads through the unit test's objects observe the test's value.
func TestOwnershipClosureProperty(t *testing.T) {
	t.Parallel()
	fn := func(script []uint8) bool {
		r := confkit.NewRegistry()
		r.Register(confkit.Param{Name: "v", Kind: confkit.String, Default: "d"})
		rt := confkit.NewRuntime(r)

		assign := map[Key]string{{NodeType: UnitTestEntity, NodeIndex: 0, Param: "v"}: "T"}
		for i := 0; i < 16; i++ {
			assign[Key{NodeType: "N", NodeIndex: i, Param: "v"}] = "n" + strconv.Itoa(i)
		}
		ag := New(Options{Assign: assign})
		rt.SetHooks(ag)

		shared := rt.NewConf() // the unit test's object
		type owned struct {
			conf *confkit.Conf
			want string
		}
		objs := []owned{{shared, "T"}}
		nodes := 0

		for _, op := range script {
			switch op % 4 {
			case 0: // start a node sharing the test's object (Rule 2)
				if nodes >= 16 {
					continue
				}
				rt.StartInit("N")
				nodeConf := shared.RefToClone()
				sub := rt.NewConf() // subcomponent (Rule 1.1)
				rt.StopInit()
				want := "n" + strconv.Itoa(nodes)
				objs = append(objs, owned{nodeConf, want}, owned{sub, want})
				nodes++
			case 1: // clone an arbitrary existing object (Rule 3)
				src := objs[int(op/4)%len(objs)]
				objs = append(objs, owned{src.conf.Clone(), src.want})
			case 2: // the unit test creates another object before any node
				if nodes == 0 {
					objs = append(objs, owned{rt.NewConf(), "T"})
				}
			case 3: // read everything (mirrors test-thread internal calls)
				for _, o := range objs {
					_ = o.conf.Get("v")
				}
			}
		}

		for _, o := range objs {
			if got := o.conf.Get("v"); got != o.want {
				return false
			}
		}
		rep := ag.Report()
		return rep.UncertainConfs == 0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
