package rpcsim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"zebraconf/internal/simtime"
)

func testScale() *simtime.Scale {
	return &simtime.Scale{Tick: 100 * time.Microsecond}
}

func TestEncodeDecodeAllProfiles(t *testing.T) {
	t.Parallel()
	payload := []byte("the quick brown fox, repeated: aaaaaaaaaaaaaaaaaaaaaa")
	for _, codec := range []string{CodecNone, CodecDeflate, CodecRLE} {
		for _, encrypt := range []bool{false, true} {
			sec := Security{Codec: codec, Encrypt: encrypt, Key: "k1"}
			wire, err := Encode(sec, payload)
			if err != nil {
				t.Fatalf("Encode(%s/%v): %v", codec, encrypt, err)
			}
			out, err := Decode(sec, wire)
			if err != nil {
				t.Fatalf("Decode(%s/%v): %v", codec, encrypt, err)
			}
			if !bytes.Equal(out, payload) {
				t.Fatalf("round trip (%s/%v) corrupted payload", codec, encrypt)
			}
		}
	}
}

func TestDecodeMismatchMatrix(t *testing.T) {
	t.Parallel()
	payload := []byte("records records records")
	cases := []struct {
		name       string
		send, recv Security
		wantErr    error
	}{
		{"encrypted-to-plain", Security{Encrypt: true, Key: "k"}, Security{}, ErrBadRecord},
		{"plain-to-encrypted", Security{}, Security{Encrypt: true, Key: "k"}, ErrBadRecord},
		{"wrong-key", Security{Encrypt: true, Key: "k1"}, Security{Encrypt: true, Key: "k2"}, ErrBadRecord},
		{"compressed-to-plain", Security{Codec: CodecDeflate}, Security{}, ErrBadHeader},
		{"plain-to-compressed", Security{}, Security{Codec: CodecDeflate}, ErrBadHeader},
		{"codec-skew", Security{Codec: CodecDeflate}, Security{Codec: CodecRLE}, ErrUnknownCodec},
	}
	for _, c := range cases {
		wire, err := Encode(c.send, payload)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.name, err)
		}
		_, err = Decode(c.recv, wire)
		if err == nil {
			t.Fatalf("%s: decode succeeded across mismatched settings", c.name)
		}
		if !errors.Is(err, c.wantErr) {
			t.Fatalf("%s: error %v, want class %v", c.name, err, c.wantErr)
		}
	}
}

// Property: every (codec, encrypt) profile round-trips arbitrary payloads.
func TestWireRoundTripProperty(t *testing.T) {
	t.Parallel()
	fn := func(payload []byte, codecSel, encrypt bool) bool {
		sec := Security{Key: "prop"}
		if codecSel {
			sec.Codec = CodecRLE
		} else {
			sec.Codec = CodecDeflate
		}
		sec.Encrypt = encrypt
		wire, err := Encode(sec, payload)
		if err != nil {
			return false
		}
		out, err := Decode(sec, wire)
		return err == nil && bytes.Equal(out, payload)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRLEEdgeCases(t *testing.T) {
	t.Parallel()
	long := bytes.Repeat([]byte{0xAB}, 1000) // forces run-length splitting at 255
	enc := rleEncode(long)
	dec, err := rleDecode(enc)
	if err != nil || !bytes.Equal(dec, long) {
		t.Fatalf("long-run RLE round trip failed: %v", err)
	}
	if _, err := rleDecode([]byte{1}); err == nil {
		t.Fatal("odd-length RLE stream accepted")
	}
	if _, err := rleDecode([]byte{0, 'x'}); err == nil {
		t.Fatal("zero-length run accepted")
	}
	if out := rleEncode(nil); len(out) != 0 {
		t.Fatalf("rleEncode(nil) = %v", out)
	}
}

func TestXorKeystreamInvolution(t *testing.T) {
	t.Parallel()
	data := []byte("sensitive bytes")
	once := xorKeystream("key", data)
	if bytes.Equal(once, data) {
		t.Fatal("keystream is a no-op")
	}
	twice := xorKeystream("key", once)
	if !bytes.Equal(twice, data) {
		t.Fatal("applying the keystream twice did not restore the input")
	}
}

func TestFabricServeDialCall(t *testing.T) {
	t.Parallel()
	fx := NewFabric()
	scale := testScale()
	sec := Security{Protection: "auth", Version: 3}
	_, err := fx.Serve("svc", sec, scale, func(method string, payload []byte) ([]byte, error) {
		return append([]byte(method+":"), payload...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := fx.Dial("svc", sec, scale)
	if err != nil {
		t.Fatal(err)
	}
	out, err := conn.Call("echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Fatalf("Call = %q", out)
	}
}

func TestFabricHandshakeFailures(t *testing.T) {
	t.Parallel()
	fx := NewFabric()
	scale := testScale()
	srvSec := Security{Protection: "privacy", Version: 2, RequireToken: true}
	if _, err := fx.Serve("locked", srvSec, scale, nil); err != nil {
		t.Fatal(err)
	}
	cases := []Security{
		{Protection: "auth", Version: 2, RequireToken: true},     // protection skew
		{Protection: "privacy", Version: 1, RequireToken: true},  // version skew
		{Protection: "privacy", Version: 2, RequireToken: false}, // token skew
	}
	for i, sec := range cases {
		if _, err := fx.Dial("locked", sec, scale); !errors.Is(err, ErrHandshake) {
			t.Fatalf("case %d: err = %v, want handshake failure", i, err)
		}
	}
	if _, err := fx.Dial("nowhere", srvSec, scale); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial to unbound address: %v", err)
	}
}

func TestFabricDuplicateBindAndClose(t *testing.T) {
	t.Parallel()
	fx := NewFabric()
	scale := testScale()
	s, err := fx.Serve("addr", Security{}, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.Serve("addr", Security{}, scale, nil); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
	s.Close()
	s.Close() // idempotent
	if _, err := fx.Dial("addr", Security{}, scale); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial after close: %v", err)
	}
	if _, err := fx.Serve("addr", Security{}, scale, nil); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestCallTimeoutAndKeepalive(t *testing.T) {
	t.Parallel()
	fx := NewFabric()
	scale := testScale()
	srv, err := fx.Serve("slow", Security{}, scale, func(string, []byte) ([]byte, error) {
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetDelayTicks(60)

	// Without pings, a 20-tick timeout trips on the 60-tick handler.
	conn, err := fx.Dial("slow", Security{}, scale)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetTimeoutTicks(20)
	if _, err := conn.Call("op", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected timeout, got %v", err)
	}

	// With pings every 5 ticks, the same call survives.
	srv.SetPingTicks(5)
	if out, err := conn.Call("op", nil); err != nil || string(out) != "done" {
		t.Fatalf("keepalive call = (%q, %v)", out, err)
	}
}

func TestCallHandlerError(t *testing.T) {
	t.Parallel()
	fx := NewFabric()
	scale := testScale()
	if _, err := fx.Serve("err", Security{}, scale, func(string, []byte) ([]byte, error) {
		return nil, errors.New("application fault")
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := fx.Dial("err", Security{}, scale)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Call("x", nil); err == nil || !strings.Contains(err.Error(), "application fault") {
		t.Fatalf("handler error not propagated: %v", err)
	}
}

func TestCallAcrossMismatchedTransport(t *testing.T) {
	t.Parallel()
	fx := NewFabric()
	scale := testScale()
	if _, err := fx.Serve("enc", Security{Encrypt: true, Key: "k"}, scale, func(_ string, p []byte) ([]byte, error) {
		return p, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Handshake fields match; payload encryption differs -> decode error
	// at the server.
	conn, err := fx.Dial("enc", Security{}, scale)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Call("p", []byte("data")); err == nil || !errors.Is(err, ErrBadRecord) {
		t.Fatalf("mismatched transport call: %v", err)
	}
}

func TestJSONHandlerAndCallJSON(t *testing.T) {
	t.Parallel()
	fx := NewFabric()
	scale := testScale()
	type msg struct{ N int }
	h := JSONHandler(map[string]func([]byte) (any, error){
		"inc": func(payload []byte) (any, error) {
			var m msg
			if err := Unmarshal("inc", payload, &m); err != nil {
				return nil, err
			}
			return msg{N: m.N + 1}, nil
		},
	})
	if _, err := fx.Serve("json", Security{}, scale, h); err != nil {
		t.Fatal(err)
	}
	conn, err := fx.Dial("json", Security{}, scale)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := conn.CallJSON("inc", msg{N: 41}, &out); err != nil || out.N != 42 {
		t.Fatalf("CallJSON = (%+v, %v)", out, err)
	}
	if err := conn.CallJSON("nope", msg{}, nil); err == nil {
		t.Fatal("unknown method accepted")
	}
}
