// Package rpcsim provides the in-memory RPC fabric the mini applications
// communicate over.
//
// ZebraConf's findings (paper Table 3) are dominated by parameters that
// change the bytes two nodes exchange: encryption, compression, transport
// protection, protocol framing. For a Go reproduction those failures must
// arise mechanically, not from hand-written "if configs differ then fail"
// checks — so every payload really is transformed: compressed with a real
// codec, encrypted with a keystream cipher, wrapped in magic-tagged headers.
// A node decodes incoming bytes according to its own configuration, exactly
// like a real system; when the sender's configuration differs, decoding
// fails with the same class of error the paper reports ("invalid SSL/TLS
// record", "incorrect header", "Sasl handshake fails").
package rpcsim

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Codec names. CodecNone disables compression; CodecDeflate uses DEFLATE;
// CodecRLE uses a byte-level run-length encoding (the "second codec" needed
// to reproduce codec-mismatch bugs such as map.output.compress.codec).
const (
	CodecNone    = ""
	CodecDeflate = "deflate"
	CodecRLE     = "rle"
)

// Security describes one endpoint's transport configuration. Each side
// encodes what it sends and decodes what it receives using its own Security;
// heterogeneous values surface as wire errors.
type Security struct {
	// Protection is the SASL-like RPC protection level, compared during the
	// handshake (e.g. "authentication", "integrity", "privacy").
	Protection string
	// Encrypt enables payload encryption (the SSL/TLS analog).
	Encrypt bool
	// Key is the keystream seed shared by correctly configured clusters.
	Key string
	// Codec compresses payloads: CodecNone, CodecDeflate, or CodecRLE.
	Codec string
	// Version is the protocol version, compared during the handshake.
	Version int
	// RequireToken demands a block-access-token-like credential; a client
	// that does not present one cannot register (Table 3:
	// dfs.block.access.token.enable).
	RequireToken bool
	// HasToken reports whether this endpoint presents a token when dialing.
	HasToken bool
}

// payload framing magic values.
var (
	magicPlain = []byte{0x5A, 0x43} // "ZC": start of plaintext payload
	magicCMP   = []byte{0x43, 0x4D} // "CM": compressed payload header
)

// Wire errors. They are matched by class, so tests can assert the same
// failure categories the paper's Table 3 names.
var (
	ErrBadRecord    = errors.New("rpcsim: invalid record (encryption mismatch?)")
	ErrBadHeader    = errors.New("rpcsim: incorrect payload header (compression mismatch?)")
	ErrUnknownCodec = errors.New("rpcsim: unknown codec in payload header")
	ErrHandshake    = errors.New("rpcsim: handshake failed")
	ErrTimeout      = errors.New("rpcsim: call timed out")
	ErrUnreachable  = errors.New("rpcsim: endpoint unreachable")
	ErrClosed       = errors.New("rpcsim: connection closed")
)

// Encode converts a plaintext payload into wire bytes according to sec:
// plaintext -> magic-tagged -> compressed (optional) -> encrypted (optional).
func Encode(sec Security, payload []byte) ([]byte, error) {
	body := make([]byte, 0, len(payload)+8)
	body = append(body, magicPlain...)
	body = binary.BigEndian.AppendUint32(body, uint32(len(payload)))
	body = append(body, payload...)

	if sec.Codec != CodecNone {
		compressed, err := compress(sec.Codec, body)
		if err != nil {
			return nil, err
		}
		framed := make([]byte, 0, len(compressed)+3)
		framed = append(framed, magicCMP...)
		framed = append(framed, codecByte(sec.Codec))
		framed = append(framed, compressed...)
		body = framed
	}
	if sec.Encrypt {
		body = xorKeystream(sec.Key, body)
	}
	return body, nil
}

// Decode reverses Encode according to the receiver's sec. When the sender
// used different settings, it fails with ErrBadRecord (encryption skew),
// ErrBadHeader (compression skew), or ErrUnknownCodec (codec skew).
func Decode(sec Security, wire []byte) ([]byte, error) {
	body := wire
	if sec.Encrypt {
		body = xorKeystream(sec.Key, body)
	}
	if sec.Codec != CodecNone {
		if len(body) < 3 || !bytes.Equal(body[:2], magicCMP) {
			// Expected a compressed stream; if the bytes happen to carry
			// the plaintext magic, the peer simply did not compress.
			if len(body) >= 2 && bytes.Equal(body[:2], magicPlain) {
				return nil, fmt.Errorf("%w: expected compressed stream, got plain", ErrBadHeader)
			}
			return nil, ErrBadRecord
		}
		algo := codecName(body[2])
		if algo == "" {
			return nil, ErrUnknownCodec
		}
		if algo != sec.Codec {
			return nil, fmt.Errorf("%w: stream codec %q, configured %q", ErrUnknownCodec, algo, sec.Codec)
		}
		var err error
		body, err = decompress(algo, body[3:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
		}
	}
	if len(body) < 6 || !bytes.Equal(body[:2], magicPlain) {
		if len(body) >= 2 && bytes.Equal(body[:2], magicCMP) {
			return nil, fmt.Errorf("%w: unexpected compressed stream", ErrBadHeader)
		}
		return nil, ErrBadRecord
	}
	n := binary.BigEndian.Uint32(body[2:6])
	if int(n) != len(body)-6 {
		return nil, fmt.Errorf("%w: length %d, have %d", ErrBadRecord, n, len(body)-6)
	}
	return body[6:], nil
}

// xorKeystream applies a position-dependent keystream derived from key.
// It is an involution: applying it twice with the same key restores the
// input; applying it with a different key (or once) yields garbage.
func xorKeystream(key string, data []byte) []byte {
	out := make([]byte, len(data))
	// FNV-style rolling state seeded by the key.
	var state uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		state ^= uint64(key[i])
		state *= 1099511628211
	}
	seed := state
	for i := range data {
		s := seed ^ uint64(i)*0x9E3779B97F4A7C15
		s ^= s >> 33
		s *= 0xFF51AFD7ED558CCD
		s ^= s >> 33
		out[i] = data[i] ^ byte(s)
	}
	return out
}

func codecByte(name string) byte {
	switch name {
	case CodecDeflate:
		return 1
	case CodecRLE:
		return 2
	default:
		return 0
	}
}

func codecName(b byte) string {
	switch b {
	case 1:
		return CodecDeflate
	case 2:
		return CodecRLE
	default:
		return ""
	}
}

func compress(codec string, data []byte) ([]byte, error) {
	switch codec {
	case CodecDeflate:
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(data); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case CodecRLE:
		return rleEncode(data), nil
	default:
		return nil, fmt.Errorf("rpcsim: compress with unknown codec %q", codec)
	}
}

func decompress(codec string, data []byte) ([]byte, error) {
	switch codec {
	case CodecDeflate:
		r := flate.NewReader(bytes.NewReader(data))
		defer r.Close()
		return io.ReadAll(r)
	case CodecRLE:
		return rleDecode(data)
	default:
		return nil, fmt.Errorf("rpcsim: decompress with unknown codec %q", codec)
	}
}

// rleEncode emits (count, byte) pairs with counts capped at 255.
func rleEncode(data []byte) []byte {
	var out []byte
	for i := 0; i < len(data); {
		b := data[i]
		n := 1
		for i+n < len(data) && data[i+n] == b && n < 255 {
			n++
		}
		out = append(out, byte(n), b)
		i += n
	}
	return out
}

func rleDecode(data []byte) ([]byte, error) {
	if len(data)%2 != 0 {
		return nil, errors.New("rpcsim: truncated RLE stream")
	}
	var out []byte
	for i := 0; i < len(data); i += 2 {
		n := int(data[i])
		if n == 0 {
			return nil, errors.New("rpcsim: zero-length RLE run")
		}
		for j := 0; j < n; j++ {
			out = append(out, data[i+1])
		}
	}
	return out, nil
}
