package rpcsim

import (
	"encoding/json"
	"fmt"
)

// callJSON marshals req, performs the call, and unmarshals into resp.
// A nil resp discards the response body.
func callJSON(c *Conn, method string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("rpcsim: marshal %s request: %w", method, err)
	}
	out, err := c.Call(method, body)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(out, resp); err != nil {
		return fmt.Errorf("rpcsim: unmarshal %s response: %w", method, err)
	}
	return nil
}

// JSONHandler adapts a map of typed JSON handlers into a Handler. Methods
// not present return an error to the caller.
func JSONHandler(methods map[string]func(payload []byte) (any, error)) Handler {
	return func(method string, payload []byte) ([]byte, error) {
		fn, ok := methods[method]
		if !ok {
			return nil, fmt.Errorf("rpcsim: unknown method %q", method)
		}
		out, err := fn(payload)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	}
}

// Unmarshal decodes a JSON request payload into v, wrapping errors with the
// method name for diagnosis.
func Unmarshal(method string, payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("rpcsim: bad %s request: %w", method, err)
	}
	return nil
}
