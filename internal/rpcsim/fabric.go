package rpcsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zebraconf/internal/simtime"
)

// Fabric is an in-memory network: a registry of named endpoints. Each unit
// test environment gets its own fabric, so campaign tests can run
// concurrently in one process.
type Fabric struct {
	mu        sync.RWMutex
	endpoints map[string]*Server
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{endpoints: make(map[string]*Server)}
}

// Handler serves one RPC method call. The payload is the decoded plaintext
// request; the returned bytes are the plaintext response. A returned error
// reaches the client as a call error (an application-level RPC fault).
type Handler func(method string, payload []byte) ([]byte, error)

// Server is one listening endpoint.
type Server struct {
	fabric  *Fabric
	addr    string
	sec     Security
	scale   *simtime.Scale
	handler Handler

	pingTicks  atomic.Int64 // keepalive interval during in-flight calls
	delayTicks atomic.Int64 // artificial processing delay
	closed     atomic.Bool
}

// Serve registers a new endpoint at addr. It fails if addr is taken.
func (f *Fabric) Serve(addr string, sec Security, scale *simtime.Scale, h Handler) (*Server, error) {
	s := &Server{fabric: f, addr: addr, sec: sec, scale: scale, handler: h}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, taken := f.endpoints[addr]; taken {
		return nil, fmt.Errorf("rpcsim: address %q already bound", addr)
	}
	f.endpoints[addr] = s
	return s, nil
}

// lookup resolves addr to a live server.
func (f *Fabric) lookup(addr string) (*Server, bool) {
	f.mu.RLock()
	s, ok := f.endpoints[addr]
	f.mu.RUnlock()
	if !ok || s.closed.Load() {
		return nil, false
	}
	return s, true
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.addr }

// Close unbinds the endpoint; subsequent dials and calls fail with
// ErrUnreachable.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.fabric.mu.Lock()
		if s.fabric.endpoints[s.addr] == s {
			delete(s.fabric.endpoints, s.addr)
		}
		s.fabric.mu.Unlock()
	}
}

// SetPingTicks sets the keepalive ping interval the server emits while a
// call is being processed (the Hadoop IPC ping analog). Zero disables pings.
func (s *Server) SetPingTicks(n int64) { s.pingTicks.Store(n) }

// SetDelayTicks injects fixed processing latency before each handler call.
func (s *Server) SetDelayTicks(n int64) { s.delayTicks.Store(n) }

// Conn is a dialed connection. It is safe for concurrent calls.
type Conn struct {
	srv          *Server
	sec          Security
	scale        *simtime.Scale
	timeoutTicks atomic.Int64
}

// Dial performs the handshake with addr using the client security profile.
// Handshake failures mirror the paper's findings: protection-level skew
// ("Sasl handshake fails"), protocol-version skew, and block-access-token
// skew ("DataNode fails to register block pools").
func (f *Fabric) Dial(addr string, sec Security, scale *simtime.Scale) (*Conn, error) {
	s, ok := f.lookup(addr)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	if s.sec.Protection != sec.Protection {
		return nil, fmt.Errorf("%w: rpc protection %q (client) vs %q (server %s)",
			ErrHandshake, sec.Protection, s.sec.Protection, addr)
	}
	if s.sec.Version != sec.Version {
		return nil, fmt.Errorf("%w: protocol version %d (client) vs %d (server %s)",
			ErrHandshake, sec.Version, s.sec.Version, addr)
	}
	if s.sec.RequireToken != sec.RequireToken {
		return nil, fmt.Errorf("%w: access token required=%v (server %s) vs %v (client)",
			ErrHandshake, s.sec.RequireToken, addr, sec.RequireToken)
	}
	return &Conn{srv: s, sec: sec, scale: scale}, nil
}

// SetTimeoutTicks bounds each call; zero means no timeout.
func (c *Conn) SetTimeoutTicks(n int64) { c.timeoutTicks.Store(n) }

// Call invokes method on the server. The request is encoded with the
// client's security profile and decoded with the server's (and vice versa
// for the response), so any encryption/compression skew fails exactly at
// the decode step of the mismatched side. While the handler runs, the
// server emits keepalive pings every pingTicks; the client resets its
// timeout on each ping, modeling Hadoop IPC's ping mechanism.
func (c *Conn) Call(method string, payload []byte) ([]byte, error) {
	s := c.srv
	if s.closed.Load() {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, s.addr)
	}
	wire, err := Encode(c.sec, payload)
	if err != nil {
		return nil, fmt.Errorf("rpcsim: encode request: %w", err)
	}
	req, err := Decode(s.sec, wire)
	if err != nil {
		return nil, fmt.Errorf("server %s rejected request: %w", s.addr, err)
	}

	type result struct {
		data []byte
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		if d := s.delayTicks.Load(); d > 0 {
			s.scale.Sleep(d)
		}
		data, err := s.handler(method, req)
		resCh <- result{data: data, err: err}
	}()

	var pingCh <-chan time.Time
	if pt := s.pingTicks.Load(); pt > 0 {
		t := s.scale.Ticker(pt)
		defer t.Stop()
		pingCh = t.C
	}
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	tout := c.timeoutTicks.Load()
	if tout > 0 {
		timer = c.scale.Timer(tout)
		defer timer.Stop()
		timeoutCh = timer.C
	}

	for {
		select {
		case r := <-resCh:
			if r.err != nil {
				return nil, r.err
			}
			respWire, err := Encode(s.sec, r.data)
			if err != nil {
				return nil, fmt.Errorf("server %s: encode response: %w", s.addr, err)
			}
			resp, err := Decode(c.sec, respWire)
			if err != nil {
				return nil, fmt.Errorf("decode response from %s: %w", s.addr, err)
			}
			return resp, nil
		case <-pingCh:
			if timer != nil {
				timer.Reset(c.scale.Dur(tout))
			}
		case <-timeoutCh:
			// A keepalive that arrived during the same scheduling window
			// must win over the timeout — a real socket with pending bytes
			// does not time out. Drain it and keep waiting.
			select {
			case <-pingCh:
				if timer != nil {
					timer.Reset(c.scale.Dur(tout))
				}
				continue
			default:
			}
			select {
			case r := <-resCh:
				if r.err != nil {
					return nil, r.err
				}
				respWire, err := Encode(s.sec, r.data)
				if err != nil {
					return nil, fmt.Errorf("server %s: encode response: %w", s.addr, err)
				}
				resp, err := Decode(c.sec, respWire)
				if err != nil {
					return nil, fmt.Errorf("decode response from %s: %w", s.addr, err)
				}
				return resp, nil
			default:
			}
			return nil, fmt.Errorf("%w: %s.%s after %d ticks", ErrTimeout, s.addr, method, tout)
		}
	}
}

// CallJSON is a convenience for JSON-encoded request/response structs; see
// MarshalCall in the apps.
func (c *Conn) CallJSON(method string, req, resp any) error {
	return callJSON(c, method, req, resp)
}
