package confkit

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Hooks is the ConfAgent intercept surface (paper §6.3). Every method
// corresponds to one ConfAgent API call placed in the configuration class or
// in node init functions. A nil Hooks means "ZebraConf not attached" and all
// operations pass through.
type Hooks interface {
	// NewConf observes the blank constructor (paper Fig. 2a line 3).
	NewConf(c *Conf)
	// CloneConf observes the clone constructor (Fig. 2a line 9).
	CloneConf(orig, clone *Conf)
	// RefToClone implements refToCloneConf (Fig. 2b line 17): it may return
	// a clone of orig that belongs to the initializing node, or orig itself.
	RefToClone(orig *Conf) *Conf
	// InterceptGet may override the value read for name (Fig. 2a line 17).
	// stored/found describe what the Conf would return on its own.
	InterceptGet(c *Conf, name, stored string, found bool) (value string, ok bool)
	// InterceptSet observes writes (Fig. 2a line 22), e.g. to propagate a
	// node's write back to the unit test's parent object.
	InterceptSet(c *Conf, name, value string)
	// StartInit marks the start of a node's initialization function on the
	// calling goroutine (Fig. 2b line 14).
	StartInit(nodeType string)
	// StopInit marks the end of the initialization function (Fig. 2b
	// line 21).
	StopInit()
	// Spawn starts fn on a new goroutine, propagating node ownership so
	// worker goroutines started during init keep belonging to their node.
	Spawn(fn func())
}

// Runtime ties configuration objects to one test environment: a schema for
// defaults and, optionally, an installed Hooks (the ConfAgent). In the Java
// original these are process-wide statics; making them explicit lets the
// campaign scheduler run many unit tests concurrently in one process.
type Runtime struct {
	schema *Registry
	hooks  atomic.Pointer[hooksBox]
}

// hooksBox wraps the interface so it can live in an atomic.Pointer.
type hooksBox struct{ h Hooks }

// NewRuntime returns a runtime over schema. A nil schema is treated as an
// empty registry (no defaults).
func NewRuntime(schema *Registry) *Runtime {
	if schema == nil {
		schema = NewRegistry()
	}
	return &Runtime{schema: schema}
}

// Schema returns the runtime's parameter registry.
func (rt *Runtime) Schema() *Registry { return rt.schema }

// SetHooks installs (or, with nil, removes) the ConfAgent.
func (rt *Runtime) SetHooks(h Hooks) {
	if h == nil {
		rt.hooks.Store(nil)
		return
	}
	rt.hooks.Store(&hooksBox{h: h})
}

// Hooks returns the installed agent, or nil.
func (rt *Runtime) Hooks() Hooks {
	if b := rt.hooks.Load(); b != nil {
		return b.h
	}
	return nil
}

// StartInit is the node-init annotation (paper Fig. 2b line 14). Node
// constructors call it with their node type and must pair it with StopInit.
// Without an agent it is a no-op.
func (rt *Runtime) StartInit(nodeType string) {
	if h := rt.Hooks(); h != nil {
		h.StartInit(nodeType)
	}
}

// StopInit ends the init window opened by StartInit (Fig. 2b line 21).
func (rt *Runtime) StopInit() {
	if h := rt.Hooks(); h != nil {
		h.StopInit()
	}
}

// Go starts fn on a new goroutine, preserving node ownership when an agent
// is attached. Nodes use it for worker goroutines (heartbeat loops, RPC
// handlers) started during initialization.
func (rt *Runtime) Go(fn func()) {
	if h := rt.Hooks(); h != nil {
		h.Spawn(fn)
		return
	}
	go fn()
}

var confIDs atomic.Uint64

// Conf is the dedicated configuration object (paper Fig. 2a): a mutable
// string-property map with schema-backed defaults. All methods are safe for
// concurrent use.
type Conf struct {
	rt *Runtime
	id uint64

	mu    sync.RWMutex
	props map[string]string
}

// NewConf is the blank constructor (Fig. 2d line 2): it creates an empty
// configuration and notifies the agent.
func (rt *Runtime) NewConf() *Conf {
	c := &Conf{rt: rt, id: confIDs.Add(1), props: make(map[string]string)}
	if h := rt.Hooks(); h != nil {
		h.NewConf(c)
	}
	return c
}

// Clone is the clone constructor (Fig. 2a lines 8–11): it copies all
// explicitly set properties and notifies the agent.
func (c *Conf) Clone() *Conf {
	clone := &Conf{rt: c.rt, id: confIDs.Add(1), props: c.snapshot()}
	if h := c.rt.Hooks(); h != nil {
		h.CloneConf(c, clone)
	}
	return clone
}

// RefToClone is the developer-inserted replacement for storing a shared
// configuration reference inside a node's init function (Fig. 2b lines
// 16–17). Without an agent it returns c unchanged, so instrumented
// applications behave identically outside ZebraConf.
func (c *Conf) RefToClone() *Conf {
	if h := c.rt.Hooks(); h != nil {
		return h.RefToClone(c)
	}
	return c
}

// cloneRaw copies c without notifying the agent. It exists for the agent's
// own RefToClone implementation, which must not re-enter itself.
func (c *Conf) cloneRaw() *Conf {
	return &Conf{rt: c.rt, id: confIDs.Add(1), props: c.snapshot()}
}

// CloneForAgent makes an agent-invisible copy of c. It is exported for the
// ConfAgent only; application code must use Clone.
func (c *Conf) CloneForAgent() *Conf { return c.cloneRaw() }

func (c *Conf) snapshot() map[string]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := make(map[string]string, len(c.props))
	for k, v := range c.props {
		m[k] = v
	}
	return m
}

// ID returns the object's unique identity, the analog of the Java
// hashCode the paper keys its nodeTable and maps by.
func (c *Conf) ID() uint64 { return c.id }

// Runtime returns the runtime this configuration belongs to.
func (c *Conf) Runtime() *Runtime { return c.rt }

// Get returns the value of name: an explicitly set property, else the
// schema default, else "". The agent may override the result.
func (c *Conf) Get(name string) string {
	v, _ := c.lookup(name)
	return v
}

// GetOK is Get plus whether the parameter was found (set or defaulted).
func (c *Conf) GetOK(name string) (string, bool) {
	return c.lookup(name)
}

func (c *Conf) lookup(name string) (string, bool) {
	c.mu.RLock()
	stored, found := c.props[name]
	c.mu.RUnlock()
	if !found {
		stored, found = c.rt.schema.Default(name)
	}
	if h := c.rt.Hooks(); h != nil {
		return h.InterceptGet(c, name, stored, found)
	}
	return stored, found
}

// GetInt returns name parsed as int64, or the schema default, or 0.
// Unparseable values fall back the same way, matching Hadoop's forgiving
// accessors.
func (c *Conf) GetInt(name string) int64 {
	v, ok := c.lookup(name)
	if ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	if d, ok := c.rt.schema.Default(name); ok {
		if n, err := strconv.ParseInt(d, 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// GetBool returns name parsed as bool, with the same fallback as GetInt.
func (c *Conf) GetBool(name string) bool {
	v, ok := c.lookup(name)
	if ok {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	if d, ok := c.rt.schema.Default(name); ok {
		if b, err := strconv.ParseBool(d); err == nil {
			return b
		}
	}
	return false
}

// GetTicks returns a duration-valued parameter in simtime ticks.
func (c *Conf) GetTicks(name string) int64 { return c.GetInt(name) }

// Set stores value under name and notifies the agent.
func (c *Conf) Set(name, value string) {
	c.mu.Lock()
	c.props[name] = value
	c.mu.Unlock()
	if h := c.rt.Hooks(); h != nil {
		h.InterceptSet(c, name, value)
	}
}

// SetInt stores an integer value.
func (c *Conf) SetInt(name string, value int64) {
	c.Set(name, strconv.FormatInt(value, 10))
}

// SetBool stores a boolean value.
func (c *Conf) SetBool(name string, value bool) {
	c.Set(name, strconv.FormatBool(value))
}

// SetRaw stores value without notifying the agent. It exists so the agent's
// own parent write-back (paper §6.3 interceptSet) does not recurse.
func (c *Conf) SetRaw(name, value string) {
	c.mu.Lock()
	c.props[name] = value
	c.mu.Unlock()
}

// Unset removes an explicitly set property, restoring the schema default.
func (c *Conf) Unset(name string) {
	c.mu.Lock()
	delete(c.props, name)
	c.mu.Unlock()
}

// Has reports whether name is explicitly set (ignoring defaults).
func (c *Conf) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.props[name]
	return ok
}

// Keys returns the explicitly set property names, sorted.
func (c *Conf) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.props))
	for k := range c.props {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of explicitly set properties.
func (c *Conf) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.props)
}

// Equal reports whether c and other hold identical explicit properties.
func (c *Conf) Equal(other *Conf) bool {
	a, b := c.snapshot(), other.snapshot()
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Diff returns the names whose explicit values differ between c and other,
// sorted. A name set in one and absent in the other counts as different.
func (c *Conf) Diff(other *Conf) []string {
	a, b := c.snapshot(), other.snapshot()
	set := make(map[string]bool)
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			set[k] = true
		}
	}
	for k, v := range b {
		if av, ok := a[k]; !ok || av != v {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
