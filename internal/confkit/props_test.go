package confkit

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadProperties(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	doc := `
# a comment
! another comment
num = 7
name=spaced value
mode=b
`
	c, err := rt.FromProperties(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if c.GetInt("num") != 7 || c.Get("name") != "spaced value" || c.Get("mode") != "b" {
		t.Fatalf("loaded values: num=%d name=%q mode=%q", c.GetInt("num"), c.Get("name"), c.Get("mode"))
	}
}

func TestLoadPropertiesMalformed(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	if _, err := rt.FromProperties(strings.NewReader("novalue\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := rt.FromProperties(strings.NewReader("=empty-key\n")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestStorePropertiesOnlyOverrides(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	c := rt.NewConf()
	c.SetInt("num", 9)
	var buf bytes.Buffer
	if err := c.StoreProperties(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "num=9\n" {
		t.Fatalf("stored = %q (defaults must not be written)", got)
	}
}

// Property: store/load round-trips any set of sane key/value pairs.
func TestPropertiesRoundTripProperty(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	fn := func(keys []uint8, vals []int32) bool {
		a := rt.NewConf()
		for i, k := range keys {
			v := "1"
			if i < len(vals) {
				v = strconv.Itoa(int(vals[i]))
			}
			a.Set("key."+strconv.Itoa(int(k)), v)
		}
		var buf bytes.Buffer
		if err := a.StoreProperties(&buf); err != nil {
			return false
		}
		b, err := rt.FromProperties(&buf)
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
