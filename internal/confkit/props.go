package confkit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Configuration-file support. The paper's model (§3.1) gives every node its
// own configuration file F and defines HomoConf(F) / HeteroConf(F1..Fn)
// over files; this is the file side of that model, in the Java-properties
// dialect Hadoop tooling understands (key=value lines, #-comments).

// LoadProperties merges key=value lines from r into the configuration.
// Blank lines and lines starting with '#' or '!' are ignored. Whitespace
// around keys and values is trimmed. Returns the number of properties set.
func (c *Conf) LoadProperties(r io.Reader) (int, error) {
	scanner := bufio.NewScanner(r)
	n := 0
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || text[0] == '#' || text[0] == '!' {
			continue
		}
		eq := strings.IndexByte(text, '=')
		if eq <= 0 {
			return n, fmt.Errorf("confkit: properties line %d: no key=value in %q", line, text)
		}
		key := strings.TrimSpace(text[:eq])
		value := strings.TrimSpace(text[eq+1:])
		c.Set(key, value)
		n++
	}
	return n, scanner.Err()
}

// StoreProperties writes the explicitly set properties as sorted key=value
// lines. Defaults are not written, matching how deployment files only list
// overrides.
func (c *Conf) StoreProperties(w io.Writer) error {
	for _, key := range c.Keys() {
		if _, err := fmt.Fprintf(w, "%s=%s\n", key, c.Get(key)); err != nil {
			return err
		}
	}
	return nil
}

// FromProperties builds a configuration from a properties document.
func (rt *Runtime) FromProperties(r io.Reader) (*Conf, error) {
	c := rt.NewConf()
	if _, err := c.LoadProperties(r); err != nil {
		return nil, err
	}
	return c, nil
}
