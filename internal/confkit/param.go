// Package confkit implements the dedicated configuration class that
// ZebraConf instruments (paper Fig. 2a) and the parameter registry the
// TestGenerator draws candidate values from (paper §4).
//
// A Conf stores string-valued properties, falls back to registered defaults,
// and routes every constructor, Get, and Set through an optional Hooks
// implementation — exactly the intercept points the paper adds to Hadoop's
// Configuration class (newConf, cloneConf, refToCloneConf, interceptGet,
// interceptSet). When no hooks are installed a Conf behaves like a plain
// properties map, so the mini applications run unmodified outside ZebraConf.
package confkit

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind is the declared type of a configuration parameter, used by the
// TestGenerator's value-selection policy (paper §4, "Select parameter values
// to test").
type Kind int

const (
	// String parameters take free-form values; test values must be listed
	// explicitly in the registry.
	String Kind = iota
	// Bool parameters are tested with exactly true and false.
	Bool
	// Int parameters are tested with the default, a much larger value, a
	// much smaller value, and any sentinel values (0, -1) the application
	// gives special meaning.
	Int
	// Ticks parameters are durations expressed in abstract simtime ticks.
	// They select values like Int.
	Ticks
	// Enum parameters take one of a documented closed set of values.
	Enum
)

// String returns the kind name used in reports.
func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Ticks:
		return "ticks"
	case Enum:
		return "enum"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Safety is the ground-truth label of a parameter, baked into the mini
// applications' registries so a campaign can be scored automatically the way
// the paper's authors scored reports by manual analysis (§7.1). The
// TestGenerator and TestRunner never read this field.
type Safety int

const (
	// SafetyUnknown marks parameters with no seeded behaviour difference;
	// the expectation is that ZebraConf does not report them.
	SafetyUnknown Safety = iota
	// SafetyUnsafe marks parameters seeded with a true heterogeneous-unsafe
	// behaviour (Table 3 classes).
	SafetyUnsafe
	// SafetyFalsePositive marks parameters seeded with a trap that makes a
	// unit test fail under heterogeneous values for reasons that cannot
	// occur in a real distributed setting (§7.1 false-positive causes).
	SafetyFalsePositive
)

// String returns the label used in reports.
func (s Safety) String() string {
	switch s {
	case SafetyUnsafe:
		return "unsafe"
	case SafetyFalsePositive:
		return "false-positive"
	default:
		return "safe"
	}
}

// Param describes one configuration parameter.
type Param struct {
	// Name is the fully qualified parameter name, e.g.
	// "dfs.heartbeat.interval".
	Name string
	// Kind is the declared value type.
	Kind Kind
	// Default is the value returned by Conf.Get when the parameter is not
	// set. It must be parseable for the declared Kind.
	Default string
	// Candidates are the representative values the TestGenerator tests.
	// If empty, AutoValues derives them from Kind and Default.
	Candidates []string
	// Doc is a one-line description.
	Doc string
	// Truth is the ground-truth safety label (scoring only).
	Truth Safety
	// Why explains the seeded behaviour for unsafe and false-positive
	// parameters, mirroring Table 3's "why" column.
	Why string
	// DependsOn lists dependency rules: when this parameter is assigned
	// value If, parameter Then must be set to To on the same node
	// (paper §4 dependency rules, e.g. http policy vs. http/https address).
	DependsOn []DependencyRule
}

// DependencyRule states "if this parameter is set to If, also set Then=To".
type DependencyRule struct {
	If   string
	Then string
	To   string
}

// AutoValues returns the candidate test values for p following the paper's
// selection policy: booleans get {true,false}; enums get their candidate
// list; numeric parameters get the default, 10× the default, a tenth of the
// default (minimum 1), and the sentinels 0 and -1 when they appear in the
// candidate list. Explicit Candidates always win.
func (p *Param) AutoValues() []string {
	if len(p.Candidates) > 0 {
		return dedup(p.Candidates)
	}
	switch p.Kind {
	case Bool:
		return []string{"true", "false"}
	case Int, Ticks:
		d, err := strconv.ParseInt(p.Default, 10, 64)
		if err != nil {
			return []string{p.Default}
		}
		lo := d / 10
		if lo == d {
			lo = d - 1
		}
		hi := d * 10
		if hi == d {
			hi = d + 10
		}
		return dedup([]string{
			p.Default,
			strconv.FormatInt(hi, 10),
			strconv.FormatInt(lo, 10),
		})
	default:
		return []string{p.Default}
	}
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Registry holds the parameter schema for one application, including any
// parameters inherited from shared libraries (the Hadoop Common analog).
// It is immutable after construction in normal use; Register is not safe for
// concurrent use with lookups.
type Registry struct {
	params map[string]*Param
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{params: make(map[string]*Param)}
}

// Register adds params to the registry. It panics on duplicate or empty
// names and on defaults that do not parse for the declared kind: a registry
// is assembled from package-level literals, so these are programming errors.
func (r *Registry) Register(params ...Param) *Registry {
	for i := range params {
		p := params[i]
		if p.Name == "" {
			panic("confkit: Register with empty parameter name")
		}
		if _, dup := r.params[p.Name]; dup {
			panic("confkit: duplicate parameter " + p.Name)
		}
		if err := checkDefault(&p); err != nil {
			panic("confkit: " + err.Error())
		}
		cp := p
		r.params[p.Name] = &cp
		r.order = append(r.order, p.Name)
	}
	return r
}

func checkDefault(p *Param) error {
	switch p.Kind {
	case Bool:
		if _, err := strconv.ParseBool(p.Default); err != nil {
			return fmt.Errorf("parameter %s: bool default %q: %v", p.Name, p.Default, err)
		}
	case Int, Ticks:
		if _, err := strconv.ParseInt(p.Default, 10, 64); err != nil {
			return fmt.Errorf("parameter %s: numeric default %q: %v", p.Name, p.Default, err)
		}
	case Enum:
		if len(p.Candidates) == 0 {
			return fmt.Errorf("parameter %s: enum with no candidates", p.Name)
		}
		for _, c := range p.Candidates {
			if c == p.Default {
				return nil
			}
		}
		return fmt.Errorf("parameter %s: enum default %q not among candidates %v",
			p.Name, p.Default, p.Candidates)
	}
	return nil
}

// Include copies every parameter of other into r, skipping names already
// present. It lets an application registry layer on top of the shared
// common registry the way HBase layers on HDFS and Hadoop Common.
func (r *Registry) Include(other *Registry) *Registry {
	for _, name := range other.order {
		if _, dup := r.params[name]; dup {
			continue
		}
		r.params[name] = other.params[name]
		r.order = append(r.order, name)
	}
	return r
}

// Lookup returns the parameter named name, or nil.
func (r *Registry) Lookup(name string) *Param {
	return r.params[name]
}

// Default returns the registered default for name and whether name is
// registered.
func (r *Registry) Default(name string) (string, bool) {
	p := r.params[name]
	if p == nil {
		return "", false
	}
	return p.Default, true
}

// Names returns all parameter names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// SortedNames returns all parameter names sorted lexicographically.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// Len reports the number of registered parameters.
func (r *Registry) Len() int { return len(r.order) }

// Params returns the registered parameters in registration order.
func (r *Registry) Params() []*Param {
	out := make([]*Param, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.params[name])
	}
	return out
}

// TruthCount reports how many registered parameters carry the given
// ground-truth label.
func (r *Registry) TruthCount(s Safety) int {
	n := 0
	for _, p := range r.params {
		if p.Truth == s {
			n++
		}
	}
	return n
}

// WithPrefix returns the names of parameters whose name starts with prefix,
// sorted.
func (r *Registry) WithPrefix(prefix string) []string {
	var out []string
	for _, name := range r.order {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
