package confkit

import (
	"strconv"
	"testing"
	"testing/quick"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Register(
		Param{Name: "num", Kind: Int, Default: "42"},
		Param{Name: "flag", Kind: Bool, Default: "true"},
		Param{Name: "mode", Kind: Enum, Default: "a", Candidates: []string{"a", "b", "c"}},
		Param{Name: "name", Kind: String, Default: "hello"},
		Param{Name: "delay", Kind: Ticks, Default: "30"},
	)
	return r
}

func TestDefaultsAndTypedAccessors(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	c := rt.NewConf()
	if c.Get("num") != "42" || c.GetInt("num") != 42 {
		t.Fatal("int default not served")
	}
	if !c.GetBool("flag") {
		t.Fatal("bool default not served")
	}
	if c.GetTicks("delay") != 30 {
		t.Fatal("ticks default not served")
	}
	if c.Get("missing") != "" {
		t.Fatal("missing parameter returned a value")
	}
	if _, ok := c.GetOK("missing"); ok {
		t.Fatal("missing parameter reported found")
	}
}

func TestSetOverridesDefaultAndUnsetRestores(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	c := rt.NewConf()
	c.SetInt("num", 7)
	if c.GetInt("num") != 7 || !c.Has("num") {
		t.Fatal("SetInt not visible")
	}
	c.Unset("num")
	if c.GetInt("num") != 42 || c.Has("num") {
		t.Fatal("Unset did not restore the default")
	}
}

func TestUnparseableValueFallsBack(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	c := rt.NewConf()
	c.Set("num", "not-a-number")
	if c.GetInt("num") != 42 {
		t.Fatalf("GetInt on garbage = %d, want the default 42", c.GetInt("num"))
	}
	c.Set("flag", "maybe")
	if !c.GetBool("flag") {
		t.Fatal("GetBool on garbage should fall back to the default true")
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	a := rt.NewConf()
	a.Set("name", "original")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Set("name", "changed")
	if a.Get("name") != "original" {
		t.Fatal("mutating the clone leaked into the original")
	}
	if a.ID() == b.ID() {
		t.Fatal("clone shares the original's identity")
	}
}

func TestRefToCloneWithoutHooksIsIdentity(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	c := rt.NewConf()
	if c.RefToClone() != c {
		t.Fatal("RefToClone cloned without an agent attached")
	}
}

func TestDiffAndKeys(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	a, b := rt.NewConf(), rt.NewConf()
	a.Set("x", "1")
	a.Set("y", "2")
	b.Set("y", "3")
	b.Set("z", "4")
	want := []string{"x", "y", "z"}
	got := a.Diff(b)
	if len(got) != len(want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", got, want)
		}
	}
	if keys := a.Keys(); len(keys) != 2 || keys[0] != "x" {
		t.Fatalf("Keys = %v", keys)
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestRegistryPanics(t *testing.T) {
	t.Parallel()
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty name", func() { NewRegistry().Register(Param{}) })
	expectPanic("duplicate", func() {
		NewRegistry().Register(Param{Name: "p", Kind: String}, Param{Name: "p", Kind: String})
	})
	expectPanic("bad bool default", func() {
		NewRegistry().Register(Param{Name: "b", Kind: Bool, Default: "yesplease"})
	})
	expectPanic("bad int default", func() {
		NewRegistry().Register(Param{Name: "i", Kind: Int, Default: "one"})
	})
	expectPanic("enum without candidates", func() {
		NewRegistry().Register(Param{Name: "e", Kind: Enum, Default: "a"})
	})
	expectPanic("enum default not candidate", func() {
		NewRegistry().Register(Param{Name: "e", Kind: Enum, Default: "x", Candidates: []string{"a"}})
	})
}

func TestRegistryIncludeSkipsDuplicates(t *testing.T) {
	t.Parallel()
	base := NewRegistry()
	base.Register(Param{Name: "shared", Kind: Int, Default: "1"})
	top := NewRegistry()
	top.Register(Param{Name: "shared", Kind: Int, Default: "99"}, Param{Name: "own", Kind: String})
	top.Include(base)
	if d, _ := top.Default("shared"); d != "99" {
		t.Fatalf("Include overwrote an existing parameter: default %q", d)
	}
	if top.Len() != 2 {
		t.Fatalf("Len = %d", top.Len())
	}
}

func TestAutoValuesPolicy(t *testing.T) {
	t.Parallel()
	boolP := Param{Name: "b", Kind: Bool, Default: "false"}
	if vs := boolP.AutoValues(); len(vs) != 2 {
		t.Fatalf("bool AutoValues = %v", vs)
	}
	intP := Param{Name: "i", Kind: Int, Default: "100"}
	vs := intP.AutoValues()
	if len(vs) != 3 || vs[0] != "100" || vs[1] != "1000" || vs[2] != "10" {
		t.Fatalf("int AutoValues = %v, want default, 10x, /10", vs)
	}
	explicit := Param{Name: "e", Kind: Int, Default: "5", Candidates: []string{"5", "0", "-1", "5"}}
	if vs := explicit.AutoValues(); len(vs) != 3 {
		t.Fatalf("explicit candidates not deduplicated: %v", vs)
	}
}

func TestSortedNamesAndPrefix(t *testing.T) {
	t.Parallel()
	r := testRegistry()
	names := r.SortedNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("SortedNames not sorted: %v", names)
		}
	}
	if got := r.WithPrefix("n"); len(got) != 2 { // name, num
		t.Fatalf("WithPrefix(n) = %v", got)
	}
}

func TestKindAndSafetyStrings(t *testing.T) {
	t.Parallel()
	if Bool.String() != "bool" || Ticks.String() != "ticks" || Kind(99).String() == "" {
		t.Fatal("Kind.String broken")
	}
	if SafetyUnsafe.String() != "unsafe" || SafetyUnknown.String() != "safe" {
		t.Fatal("Safety.String broken")
	}
}

// recordingHooks asserts the hook dispatch points.
type recordingHooks struct {
	news, clones, refs, gets, sets, inits, spawns int
}

func (h *recordingHooks) NewConf(*Conf)            { h.news++ }
func (h *recordingHooks) CloneConf(_, _ *Conf)     { h.clones++ }
func (h *recordingHooks) RefToClone(c *Conf) *Conf { h.refs++; return c.CloneForAgent() }
func (h *recordingHooks) InterceptGet(_ *Conf, _, stored string, found bool) (string, bool) {
	h.gets++
	return stored, found
}
func (h *recordingHooks) InterceptSet(*Conf, string, string) { h.sets++ }
func (h *recordingHooks) StartInit(string)                   { h.inits++ }
func (h *recordingHooks) StopInit()                          {}
func (h *recordingHooks) Spawn(fn func())                    { h.spawns++; go fn() }

func TestHooksDispatch(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	h := &recordingHooks{}
	rt.SetHooks(h)
	c := rt.NewConf()
	c.Set("num", "1")
	_ = c.Get("num")
	clone := c.Clone()
	ref := c.RefToClone()
	rt.StartInit("T")
	rt.StopInit()
	done := make(chan struct{})
	rt.Go(func() { close(done) })
	<-done
	if h.news != 1 || h.sets != 1 || h.gets != 1 || h.clones != 1 || h.refs != 1 || h.inits != 1 || h.spawns != 1 {
		t.Fatalf("hook counts: %+v", *h)
	}
	if ref == c {
		t.Fatal("RefToClone with hooks returned the original")
	}
	if clone == nil {
		t.Fatal("clone nil")
	}
	rt.SetHooks(nil)
	if rt.Hooks() != nil {
		t.Fatal("SetHooks(nil) did not uninstall")
	}
	if c.RefToClone() != c {
		t.Fatal("RefToClone after uninstall should be identity")
	}
}

// Property: Clone preserves every explicitly set key/value pair.
func TestClonePreservesProperty(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	fn := func(keys []uint8, vals []int32) bool {
		c := rt.NewConf()
		for i, k := range keys {
			v := "v"
			if i < len(vals) {
				v = strconv.Itoa(int(vals[i]))
			}
			c.Set("k"+strconv.Itoa(int(k)), v)
		}
		return c.Equal(c.Clone())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SetRaw and Set store identical values (they differ only in
// agent notification).
func TestSetRawEquivalenceProperty(t *testing.T) {
	t.Parallel()
	rt := NewRuntime(testRegistry())
	fn := func(key uint8, val string) bool {
		a, b := rt.NewConf(), rt.NewConf()
		name := "p" + strconv.Itoa(int(key))
		a.Set(name, val)
		b.SetRaw(name, val)
		return a.Get(name) == b.Get(name)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
