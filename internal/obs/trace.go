package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a trace. The zero value, NoSpan,
// means "no parent" (a root span) and is what nil spans report, so
// instrumented code can pass span.ID() unconditionally.
type SpanID uint64

// NoSpan is the absent-span sentinel.
const NoSpan SpanID = 0

// Attr is one key/value span attribute.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{k, v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{k, v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{k, v} }

// SpanRecord is the JSONL schema, one record per line, written when a
// span ends. Children therefore appear before their parents in the
// file; consumers resolve parent IDs after reading the whole trace.
type SpanRecord struct {
	Span    SpanID         `json:"span"`
	Parent  SpanID         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Tracer emits structured spans as JSON lines. Span creation is an
// atomic ID allocation; the writer lock is taken only when a span ends.
type Tracer struct {
	mu   sync.Mutex
	w    io.Writer
	enc  *json.Encoder
	next atomic.Uint64
	// epoch anchors start_us so traces are relative, compact, and
	// stable under clock redefinition mid-run.
	epoch time.Time
}

// NewTracer returns a tracer writing JSONL records to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, enc: json.NewEncoder(w), epoch: time.Now()}
}

// Span is one in-flight trace span. A nil *Span is valid: every method
// no-ops and ID() reports NoSpan.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Start opens a span named name under parent (NoSpan for a root).
func (t *Tracer) Start(name string, parent SpanID, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tr:     t,
		id:     SpanID(t.next.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	if len(attrs) > 0 {
		s.attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			s.attrs[a.Key] = a.Value
		}
	}
	return s
}

// ID reports the span's ID, or NoSpan for a nil span.
func (s *Span) ID() SpanID {
	if s == nil {
		return NoSpan
	}
	return s.id
}

// SetAttr attaches (or overwrites) an attribute before End.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		s.attrs[a.Key] = a.Value
	}
}

// End closes the span and writes its JSONL record. Safe to call once;
// later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := SpanRecord{
		Span:    s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.tr.epoch).Microseconds(),
		DurUS:   time.Since(s.start).Microseconds(),
		Attrs:   attrs,
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	// Encoding errors (e.g. a closed file) are deliberately dropped:
	// tracing must never fail the campaign.
	_ = s.tr.enc.Encode(rec)
}

// AllocID reserves a fresh span ID without opening a span. Stitching
// uses it: a coordinator folding a worker's trace fragment into its own
// stream must re-identify every foreign span so the IDs cannot collide
// with locally allocated ones.
func (t *Tracer) AllocID() SpanID {
	if t == nil {
		return NoSpan
	}
	return SpanID(t.next.Add(1))
}

// Emit writes a fully resolved record to the trace. The caller owns ID
// and timestamp consistency (use AllocID and SinceEpochUS); encoding
// errors are dropped just like Span.End's.
func (t *Tracer) Emit(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(rec)
}

// SinceEpochUS converts an absolute time to this tracer's epoch-relative
// microseconds, the StartUS base for rebasing foreign span fragments.
func (t *Tracer) SinceEpochUS(tm time.Time) int64 {
	if t == nil {
		return 0
	}
	return tm.Sub(t.epoch).Microseconds()
}

// ReadTrace parses a JSONL trace, for tests and tools.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	dec := json.NewDecoder(r)
	var out []SpanRecord
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}
