package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanJSONLParentChild(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	root := tr.Start("campaign", NoSpan, String("app", "minihdfs"))
	child := tr.Start("pool", root.ID(), Int("depth", 0))
	grand := tr.Start("pooled-run", child.ID())
	grand.SetAttr(Bool("failed", true))
	grand.End()
	child.End()
	root.End()

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Spans are written on End, children first.
	byName := map[string]SpanRecord{}
	ids := map[SpanID]bool{}
	for _, r := range recs {
		byName[r.Name] = r
		ids[r.Span] = true
	}
	if byName["campaign"].Parent != NoSpan {
		t.Errorf("root has parent %d", byName["campaign"].Parent)
	}
	if byName["pool"].Parent != byName["campaign"].Span {
		t.Errorf("pool parent = %d, want %d", byName["pool"].Parent, byName["campaign"].Span)
	}
	if byName["pooled-run"].Parent != byName["pool"].Span {
		t.Errorf("pooled-run parent = %d, want %d", byName["pooled-run"].Parent, byName["pool"].Span)
	}
	for _, r := range recs {
		if r.Parent != NoSpan && !ids[r.Parent] {
			t.Errorf("span %d has dangling parent %d", r.Span, r.Parent)
		}
		if r.DurUS < 0 {
			t.Errorf("span %d has negative duration", r.Span)
		}
	}
	if got := byName["campaign"].Attrs["app"]; got != "minihdfs" {
		t.Errorf("root attr app = %v", got)
	}
	if got := byName["pooled-run"].Attrs["failed"]; got != true {
		t.Errorf("SetAttr after start lost: %v", got)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	s := tr.Start("x", NoSpan)
	s.End()
	s.End()
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("double End wrote %d records", len(recs))
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start("root", NoSpan)
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := tr.Start("child", root.ID(), Int("i", int64(i)))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n+1 {
		t.Fatalf("got %d records, want %d", len(recs), n+1)
	}
	seen := map[SpanID]bool{}
	for _, r := range recs {
		if seen[r.Span] {
			t.Fatalf("duplicate span id %d", r.Span)
		}
		seen[r.Span] = true
	}
}

func TestProgressRenders(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	p := NewProgress(w, 10*time.Millisecond)
	p.Begin("minihdfs")
	p.AddTotal(10)
	p.AddDone(4)
	p.AddExecutions(123)
	p.AddVerdict("unsafe")
	time.Sleep(30 * time.Millisecond)
	p.Finish()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "4/10 instances") {
		t.Errorf("missing done/total in %q", out)
	}
	if !strings.Contains(out, "unsafe=1") {
		t.Errorf("missing verdict tally in %q", out)
	}
	if !strings.Contains(out, "done") {
		t.Errorf("missing final line in %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
