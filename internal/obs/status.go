package obs

import (
	"sort"
	"sync"
	"time"
)

// Status tracks the live state of a running campaign for the /api
// endpoints and the watch dashboard: current phase, item queue, worker
// health, the evolving unsafe-parameter table, and an ETA derived from
// the sched duration predictions the items were ranked with. Every
// method is nil-safe so the campaign and coordinator call them
// unconditionally, mirroring the Progress/Tracer convention.
type Status struct {
	mu sync.Mutex

	app     string
	start   time.Time
	phases  []string // open phases, innermost last
	slots   int
	done    bool
	elapsed float64 // frozen at Finish

	items map[int]*itemState

	// Prediction calibration: sum(actual)/sum(predicted) over completed
	// items that carried a prediction — duration-weighted, so an item
	// with a microscopic prediction cannot blow up the ratio the way a
	// per-item mean would — plus a plain mean duration as the fallback
	// estimate for items without one.
	actSum, predSum    float64
	doneSecs, doneN    float64
	instances, instDone int64
	executions, saved  int64
	specRuns, specWins int64
	safe, unsafe       int64
	filtered, homoInv  int64

	workers map[int]*workerState
	params  map[string]*paramState
}

type itemState struct {
	test    string
	pred    float64
	state   int // 0 queued, 1 running, 2 done
	started time.Time
}

type workerState struct {
	pid        int
	state      string // spawned | ready | stalled | crashed | done
	lastHB     time.Time
	hbSeen     bool
	inflight   []int
	itemsDone  int64
	executions int64
	goroutines int
	heapBytes  uint64
	stalls     int64
	spawns     int64
}

type paramState struct {
	verdicts    int64
	tests       map[string]bool
	minP        float64
	quarantined bool
}

// NewStatus returns an empty tracker.
func NewStatus() *Status {
	return &Status{
		items:   make(map[int]*itemState),
		workers: make(map[int]*workerState),
		params:  make(map[string]*paramState),
	}
}

// CampaignBegin resets the tracker for one campaign.
func (s *Status) CampaignBegin(app string, slots int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Field-by-field reset: a struct assignment would clobber the held
	// mutex.
	s.app = app
	s.start = time.Now()
	s.phases = nil
	s.slots = slots
	s.done = false
	s.elapsed = 0
	s.items = make(map[int]*itemState)
	s.actSum, s.predSum = 0, 0
	s.doneSecs, s.doneN = 0, 0
	s.instances, s.instDone = 0, 0
	s.executions, s.saved = 0, 0
	s.specRuns, s.specWins = 0, 0
	s.safe, s.unsafe = 0, 0
	s.filtered, s.homoInv = 0, 0
	s.workers = make(map[int]*workerState)
	s.params = make(map[string]*paramState)
}

// CampaignFinish freezes the elapsed clock and marks the run done.
func (s *Status) CampaignFinish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
	s.elapsed = time.Since(s.start).Seconds()
	s.phases = nil
}

// SetSlots overrides the number of parallel execution slots the ETA
// divides remaining work across (workers × per-worker parallelism in
// dist mode).
func (s *Status) SetSlots(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots = n
}

// PhaseStart pushes a phase onto the open-phase stack.
func (s *Status) PhaseStart(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.phases = append(s.phases, name)
}

// PhaseFinish pops the named phase (phases can overlap in streamed
// mode, so it removes the newest match rather than asserting LIFO).
func (s *Status) PhaseFinish(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.phases) - 1; i >= 0; i-- {
		if s.phases[i] == name {
			s.phases = append(s.phases[:i], s.phases[i+1:]...)
			return
		}
	}
}

// ItemQueued registers a work item awaiting execution with its
// predicted duration in seconds (0 when no profile prediction exists).
func (s *Status) ItemQueued(id int, test string, pred float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[id] = &itemState{test: test, pred: pred}
}

// ItemStart marks an item running. Re-marking a running item (a
// speculative copy dispatched alongside the primary) is a no-op.
func (s *Status) ItemStart(id int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	it := s.items[id]
	if it == nil {
		it = &itemState{}
		s.items[id] = it
	}
	if it.state == 0 {
		it.state = 1
		it.started = time.Now()
	}
}

// ItemRequeued returns a crashed/timed-out item to the queue.
func (s *Status) ItemRequeued(id int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if it := s.items[id]; it != nil && it.state == 1 {
		it.state = 0
	}
}

// ItemDone marks an item resolved and feeds the prediction calibration.
// Duplicate completions (speculation losers) are ignored.
func (s *Status) ItemDone(id int, secs float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	it := s.items[id]
	if it == nil {
		it = &itemState{}
		s.items[id] = it
	}
	if it.state == 2 {
		return
	}
	it.state = 2
	if secs > 0 {
		s.doneSecs += secs
		s.doneN++
		if it.pred > 0 {
			s.actSum += secs
			s.predSum += it.pred
		}
	}
}

// AddInstances / AddInstancesDone track the instance denominator and
// numerator shown next to the item queue.
func (s *Status) AddInstances(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.instances += n
	s.mu.Unlock()
}

func (s *Status) AddInstancesDone(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.instDone += n
	s.mu.Unlock()
}

// AddExecutions counts real unit-test executions.
func (s *Status) AddExecutions(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.executions += n
	s.mu.Unlock()
}

// AddSaved counts executions avoided by the memo cache.
func (s *Status) AddSaved(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.saved += n
	s.mu.Unlock()
}

// SpeculationRun / SpeculationWin tally straggler re-issues and races
// the speculative copy won.
func (s *Status) SpeculationRun() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.specRuns++
	s.mu.Unlock()
}

func (s *Status) SpeculationWin() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.specWins++
	s.mu.Unlock()
}

// AddVerdict tallies one instance verdict by its String name.
func (s *Status) AddVerdict(verdict string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch verdict {
	case "safe":
		s.safe++
	case "unsafe":
		s.unsafe++
	case "filtered":
		s.filtered++
	case "homo-invalid":
		s.homoInv++
	}
}

// ParamVerdict records one unsafe instance verdict in the live
// parameter table.
func (s *Status) ParamVerdict(param, test string, p float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.params[param]
	if ps == nil {
		ps = &paramState{tests: make(map[string]bool), minP: p}
		s.params[param] = ps
	}
	ps.verdicts++
	ps.tests[test] = true
	if p < ps.minP {
		ps.minP = p
	}
}

// ParamQuarantined flags a parameter hit by the frequent-failer rule.
func (s *Status) ParamQuarantined(param string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.params[param]
	if ps == nil {
		ps = &paramState{tests: make(map[string]bool)}
		s.params[param] = ps
	}
	ps.quarantined = true
}

func (s *Status) worker(slot int) *workerState {
	w := s.workers[slot]
	if w == nil {
		w = &workerState{state: "spawned"}
		s.workers[slot] = w
	}
	return w
}

// WorkerSpawned records a worker subprocess being started (again).
func (s *Status) WorkerSpawned(slot, pid int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.worker(slot)
	w.state = "spawned"
	w.pid = pid
	w.spawns++
	w.inflight = nil
}

// WorkerReady records the worker's init handshake completing.
func (s *Status) WorkerReady(slot, pid int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.worker(slot)
	w.state = "ready"
	if pid != 0 {
		w.pid = pid
	}
}

// WorkerHeartbeat records one heartbeat payload.
func (s *Status) WorkerHeartbeat(slot, pid int, inflight []int, execs int64, goroutines int, heap uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.worker(slot)
	if w.state == "spawned" || w.state == "stalled" {
		w.state = "ready"
	}
	if pid != 0 {
		w.pid = pid
	}
	w.lastHB = time.Now()
	w.hbSeen = true
	w.inflight = append(w.inflight[:0], inflight...)
	w.executions = execs
	w.goroutines = goroutines
	w.heapBytes = heap
}

// WorkerItemDone bumps the per-worker completed-item tally.
func (s *Status) WorkerItemDone(slot int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.worker(slot).itemsDone++
	s.mu.Unlock()
}

// WorkerStalled marks a worker silent past the stall threshold.
func (s *Status) WorkerStalled(slot int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.worker(slot)
	w.state = "stalled"
	w.stalls++
}

// WorkerRecovered clears a stall once heartbeats resume.
func (s *Status) WorkerRecovered(slot int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.worker(slot); w.state == "stalled" {
		w.state = "ready"
	}
}

// WorkerGone records a worker session ending ("done" or a crash
// reason).
func (s *Status) WorkerGone(slot int, reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.worker(slot)
	if reason == "done" {
		w.state = "done"
	} else {
		w.state = "crashed"
	}
	w.inflight = nil
}

// CampaignStatus is the /api/campaign snapshot.
type CampaignStatus struct {
	App            string  `json:"app"`
	Phase          string  `json:"phase"`
	Done           bool    `json:"done"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	EtaSeconds     float64 `json:"eta_seconds"`

	ItemsQueued  int `json:"items_queued"`
	ItemsRunning int `json:"items_running"`
	ItemsDone    int `json:"items_done"`

	Instances     int64 `json:"instances_total"`
	InstancesDone int64 `json:"instances_done"`

	Executions      int64   `json:"executions"`
	ExecutionsSaved int64   `json:"executions_saved"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	ExecRate        float64 `json:"executions_per_second"`

	SpeculativeRuns int64 `json:"speculative_runs"`
	SpeculationWins int64 `json:"speculation_wins"`

	Safe        int64 `json:"safe"`
	Unsafe      int64 `json:"unsafe"`
	Filtered    int64 `json:"filtered"`
	HomoInvalid int64 `json:"homo_invalid"`

	UnsafeParams int `json:"unsafe_params"`
	Workers      int `json:"workers"`
	// Slots is the parallel execution budget the ETA divides across
	// (workers x per-worker parallelism in dist mode) — also what the
	// perf sampler derives instantaneous utilization from.
	Slots int `json:"slots"`
}

// WorkerStatus is one /api/workers row.
type WorkerStatus struct {
	Slot            int     `json:"slot"`
	PID             int     `json:"pid,omitempty"`
	State           string  `json:"state"`
	LastHeartbeatS  float64 `json:"last_heartbeat_s"` // seconds since last heartbeat; -1 when none seen
	Inflight        []int   `json:"inflight,omitempty"`
	ItemsDone       int64   `json:"items_done"`
	Executions      int64   `json:"executions"`
	Goroutines      int     `json:"goroutines,omitempty"`
	HeapBytes       uint64  `json:"heap_bytes,omitempty"`
	Stalls          int64   `json:"stalls"`
	Spawns          int64   `json:"spawns"`
}

// ParamStatus is one /api/params row: a parameter with at least one
// unsafe verdict (or a quarantine flag) so far.
type ParamStatus struct {
	Param          string   `json:"param"`
	UnsafeVerdicts int64    `json:"unsafe_verdicts"`
	Tests          []string `json:"tests"`
	MinP           float64  `json:"min_p"`
	Quarantined    bool     `json:"quarantined,omitempty"`
}

// Campaign renders the live campaign snapshot. The ETA walks the item
// table: calibrated predicted seconds for queued items, calibrated
// remainder for running ones, divided by the effective slot count. When
// no predictions exist (first run, cold profile) the mean duration of
// completed items stands in.
func (s *Status) Campaign() CampaignStatus {
	if s == nil {
		return CampaignStatus{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	cs := CampaignStatus{
		App:             s.app,
		Done:            s.done,
		Instances:       s.instances,
		InstancesDone:   s.instDone,
		Executions:      s.executions,
		ExecutionsSaved: s.saved,
		SpeculativeRuns: s.specRuns,
		SpeculationWins: s.specWins,
		Safe:            s.safe,
		Unsafe:          s.unsafe,
		Filtered:        s.filtered,
		HomoInvalid:     s.homoInv,
		UnsafeParams:    len(s.params),
		Workers:         len(s.workers),
		Slots:           s.slots,
	}
	cs.Phase = "idle"
	if len(s.phases) > 0 {
		cs.Phase = s.phases[len(s.phases)-1]
	} else if s.done {
		cs.Phase = "done"
	} else if s.app != "" {
		cs.Phase = "starting"
	}
	cs.ElapsedSeconds = s.elapsed
	if !s.done && !s.start.IsZero() {
		cs.ElapsedSeconds = time.Since(s.start).Seconds()
	}
	if cs.ElapsedSeconds > 0 {
		cs.ExecRate = float64(s.executions) / cs.ElapsedSeconds
	}
	if total := s.saved + s.executions; total > 0 {
		cs.CacheHitRate = float64(s.saved) / float64(total)
	}

	calib := 1.0
	if s.predSum > 0 {
		calib = s.actSum / s.predSum
	}
	fallback := 0.0
	if s.doneN > 0 {
		fallback = s.doneSecs / s.doneN
	}
	now := time.Now()
	remaining := 0.0
	for _, it := range s.items {
		est := it.pred * calib
		if est <= 0 {
			est = fallback
		}
		switch it.state {
		case 0:
			cs.ItemsQueued++
			remaining += est
		case 1:
			cs.ItemsRunning++
			if rem := est - now.Sub(it.started).Seconds(); rem > 0 {
				remaining += rem
			}
		case 2:
			cs.ItemsDone++
		}
	}
	unfinished := cs.ItemsQueued + cs.ItemsRunning
	if !s.done && unfinished > 0 {
		slots := s.slots
		if slots <= 0 {
			slots = 1
		}
		if unfinished < slots {
			slots = unfinished
		}
		cs.EtaSeconds = remaining / float64(slots)
	}
	return cs
}

// Workers renders the per-worker health table, sorted by slot.
func (s *Status) Workers() []WorkerStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerStatus, 0, len(s.workers))
	for slot, w := range s.workers {
		ws := WorkerStatus{
			Slot:           slot,
			PID:            w.pid,
			State:          w.state,
			LastHeartbeatS: -1,
			Inflight:       append([]int(nil), w.inflight...),
			ItemsDone:      w.itemsDone,
			Executions:     w.executions,
			Goroutines:     w.goroutines,
			HeapBytes:      w.heapBytes,
			Stalls:         w.stalls,
			Spawns:         w.spawns,
		}
		if w.hbSeen {
			ws.LastHeartbeatS = time.Since(w.lastHB).Seconds()
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// Params renders the live unsafe-parameter table, sorted by name.
func (s *Status) Params() []ParamStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ParamStatus, 0, len(s.params))
	for name, ps := range s.params {
		row := ParamStatus{
			Param:          name,
			UnsafeVerdicts: ps.verdicts,
			MinP:           ps.minP,
			Quarantined:    ps.quarantined,
		}
		for t := range ps.tests {
			row.Tests = append(row.Tests, t)
		}
		sort.Strings(row.Tests)
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Param < out[j].Param })
	return out
}
