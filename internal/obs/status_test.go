package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// TestStatusETACalibration checks the ETA walk: completing one item at
// 2x its prediction calibrates the remaining items' estimates, which
// divide across the slot count.
func TestStatusETACalibration(t *testing.T) {
	s := NewStatus()
	s.CampaignBegin("fake", 2)
	for i := 0; i < 4; i++ {
		s.ItemQueued(i, "TestX", 10)
	}
	s.ItemStart(0)
	s.ItemDone(0, 20) // actual/predicted = 2.0

	cs := s.Campaign()
	if cs.ItemsDone != 1 || cs.ItemsQueued != 3 {
		t.Fatalf("items: done=%d queued=%d", cs.ItemsDone, cs.ItemsQueued)
	}
	// 3 queued x 10s predicted x 2.0 calibration = 60s over 2 slots.
	if math.Abs(cs.EtaSeconds-30) > 0.01 {
		t.Fatalf("ETA %.2fs, want 30s", cs.EtaSeconds)
	}
	if cs.Phase != "starting" {
		t.Fatalf("phase %q, want starting", cs.Phase)
	}
}

// TestStatusETAFallback: with no predictions, the mean completed
// duration stands in.
func TestStatusETAFallback(t *testing.T) {
	s := NewStatus()
	s.CampaignBegin("fake", 1)
	s.ItemQueued(0, "TestA", 0)
	s.ItemQueued(1, "TestB", 0)
	s.ItemStart(0)
	s.ItemDone(0, 4)
	cs := s.Campaign()
	if math.Abs(cs.EtaSeconds-4) > 0.01 {
		t.Fatalf("ETA %.2fs, want 4s (mean duration fallback)", cs.EtaSeconds)
	}
	// Slots clamp to unfinished work: 1 queued item, 8 slots, same ETA.
	s.SetSlots(8)
	cs = s.Campaign()
	if math.Abs(cs.EtaSeconds-4) > 0.01 {
		t.Fatalf("ETA %.2fs after SetSlots(8), want 4s", cs.EtaSeconds)
	}
}

// TestStatusItemLifecycle covers idempotence: duplicate completions
// (speculation losers) and re-marking running items must not double
// count, and requeued items return to the queue.
func TestStatusItemLifecycle(t *testing.T) {
	s := NewStatus()
	s.CampaignBegin("fake", 1)
	s.ItemQueued(0, "TestA", 1)
	s.ItemStart(0)
	s.ItemStart(0) // speculative duplicate
	s.ItemDone(0, 2)
	s.ItemDone(0, 2) // loser's duplicate
	cs := s.Campaign()
	if cs.ItemsDone != 1 {
		t.Fatalf("items done %d, want 1", cs.ItemsDone)
	}

	s.ItemQueued(1, "TestB", 1)
	s.ItemStart(1)
	s.ItemRequeued(1)
	cs = s.Campaign()
	if cs.ItemsQueued != 1 || cs.ItemsRunning != 0 {
		t.Fatalf("after requeue: queued=%d running=%d", cs.ItemsQueued, cs.ItemsRunning)
	}
}

// TestStatusWorkers covers the heartbeat-driven state machine.
func TestStatusWorkers(t *testing.T) {
	s := NewStatus()
	s.CampaignBegin("fake", 2)
	s.WorkerSpawned(0, 100)
	s.WorkerHeartbeat(0, 100, []int{3}, 17, 9, 1<<20)
	s.WorkerStalled(0)
	s.WorkerRecovered(0)
	s.WorkerSpawned(1, 101)
	s.WorkerGone(1, "crash")

	ws := s.Workers()
	if len(ws) != 2 {
		t.Fatalf("got %d workers", len(ws))
	}
	w0 := ws[0]
	if w0.State != "ready" || w0.Stalls != 1 || w0.Executions != 17 || w0.LastHeartbeatS < 0 {
		t.Fatalf("worker 0: %+v", w0)
	}
	if len(w0.Inflight) != 1 || w0.Inflight[0] != 3 {
		t.Fatalf("worker 0 inflight: %v", w0.Inflight)
	}
	if ws[1].State != "crashed" {
		t.Fatalf("worker 1 state %q", ws[1].State)
	}
	// Recovery only applies to stalled workers, not crashed ones.
	s.WorkerRecovered(1)
	if got := s.Workers()[1].State; got != "crashed" {
		t.Fatalf("worker 1 after bogus recover: %q", got)
	}
}

// TestStatusParams covers the live verdict table.
func TestStatusParams(t *testing.T) {
	s := NewStatus()
	s.CampaignBegin("fake", 1)
	s.ParamVerdict("b.param", "TestX", 0.25)
	s.ParamVerdict("b.param", "TestY", 0.0625)
	s.ParamVerdict("a.param", "TestX", 0.125)
	s.ParamQuarantined("b.param")

	ps := s.Params()
	if len(ps) != 2 || ps[0].Param != "a.param" || ps[1].Param != "b.param" {
		t.Fatalf("params: %+v", ps)
	}
	b := ps[1]
	if b.UnsafeVerdicts != 2 || b.MinP != 0.0625 || !b.Quarantined || len(b.Tests) != 2 {
		t.Fatalf("b.param row: %+v", b)
	}
}

// TestServeDebugStatusAPI starts the debug server with a live status
// tracker and reads the three endpoints over real HTTP.
func TestServeDebugStatusAPI(t *testing.T) {
	o := New()
	o.Status = NewStatus()
	o.Status.CampaignBegin("minihdfs", 2)
	o.Status.PhaseStart("instances")
	o.Status.ItemQueued(0, "TestWriteRead", 5)
	o.Status.WorkerSpawned(0, 4242)
	o.Status.ParamVerdict("dfs.checksum.type", "TestWriteRead", 0.0625)

	addr, shutdown, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	var cs CampaignStatus
	getJSON(t, "http://"+addr+"/api/campaign", &cs)
	if cs.App != "minihdfs" || cs.Phase != "instances" || cs.ItemsQueued != 1 {
		t.Fatalf("campaign snapshot: %+v", cs)
	}
	if cs.EtaSeconds <= 0 {
		t.Fatalf("ETA %.2f, want > 0", cs.EtaSeconds)
	}

	var ws []WorkerStatus
	getJSON(t, "http://"+addr+"/api/workers", &ws)
	if len(ws) != 1 || ws[0].PID != 4242 {
		t.Fatalf("workers: %+v", ws)
	}

	var ps []ParamStatus
	getJSON(t, "http://"+addr+"/api/params", &ps)
	if len(ps) != 1 || ps[0].Param != "dfs.checksum.type" {
		t.Fatalf("params: %+v", ps)
	}
}

// TestServeDebugStatusDisabled: without a status tracker the API
// answers 503, not 200-with-garbage and not a panic.
func TestServeDebugStatusDisabled(t *testing.T) {
	o := New()
	addr, shutdown, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/api/campaign")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("%s: decode: %v", url, err)
	}
}
