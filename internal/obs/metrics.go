package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All operations are
// lock-free atomics, safe for concurrent use from every worker.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative-on-export
// buckets, Prometheus style: bucket i counts observations <= bounds[i],
// with an implicit +Inf bucket at the end. Observe is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount reports the raw (non-cumulative) count of bucket i, where
// i == len(Bounds()) addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) int64 { return h.buckets[i].Load() }

// Bounds returns the upper bounds the histogram was built with.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// metricKey identifies one labeled time series within a family.
type metricKey struct {
	name   string
	labels string // canonical `k="v",k="v"` encoding, sorted by key
}

// Registry holds every metric of a campaign run. Lookups take a read
// lock; the returned metric objects are then updated with atomics only,
// so the hot path (lookup + add) never contends on writes.
type Registry struct {
	mu       sync.RWMutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
	}
}

// labelString canonicalizes key/value pairs: sorted by key, rendered in
// Prometheus exposition syntax.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		labels = append(labels, "")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter returns (creating on first use) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := metricKey{name, labelString(labels)}
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := metricKey{name, labelString(labels)}
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram for
// name+labels. The bounds of the first creation win for the series; a
// family should use one layout throughout (the Observer catalog does).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	key := metricKey{name, labelString(labels)}
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = newHistogram(bounds)
		r.hists[key] = h
	}
	return h
}

// CounterValue sums every series of a counter family, optionally
// restricted to series carrying all the given label pairs.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	want := splitPairs(labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for key, c := range r.counters {
		if key.name == name && matchesLabels(key.labels, want) {
			total += c.Value()
		}
	}
	return total
}

// GaugeValue sums every series of a gauge family, optionally restricted
// to series carrying all the given label pairs.
func (r *Registry) GaugeValue(name string, labels ...string) int64 {
	want := splitPairs(labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for key, g := range r.gauges {
		if key.name == name && matchesLabels(key.labels, want) {
			total += g.Value()
		}
	}
	return total
}

// HistSnapshot is one histogram family frozen at a point in time:
// observation count, sum, and the raw (non-cumulative) per-bucket counts
// against the family's bucket bounds. Series within a family share one
// bucket layout (the Observer catalog guarantees it), so snapshots of
// different label sets merge by element-wise bucket addition.
type HistSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"` // len(Bounds)+1; last is +Inf
}

// Merge folds another snapshot of the same family into h.
func (h *HistSnapshot) Merge(o HistSnapshot) {
	h.Count += o.Count
	h.Sum += o.Sum
	if h.Bounds == nil {
		h.Bounds = o.Bounds
	}
	if h.Buckets == nil {
		h.Buckets = make([]int64, len(o.Buckets))
	}
	for i := range o.Buckets {
		if i < len(h.Buckets) {
			h.Buckets[i] += o.Buckets[i]
		}
	}
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts
// by linear interpolation within the holding bucket — the same estimate
// a Prometheus histogram_quantile() computes from the exposed _bucket
// series. Returns 0 when the snapshot is empty. Observations in the
// +Inf bucket clamp to the highest finite bound.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, n := range h.Buckets {
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if n == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// snapshotHist freezes one histogram's current buckets.
func snapshotHist(h *Histogram) HistSnapshot {
	s := HistSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Bounds:  h.Bounds(),
		Buckets: make([]int64, len(h.bounds)+1),
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.BucketCount(i)
	}
	return s
}

// HistogramValue merges every series of a histogram family matching the
// given label pairs into one snapshot (all series when none given).
func (r *Registry) HistogramValue(name string, labels ...string) HistSnapshot {
	want := splitPairs(labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out HistSnapshot
	for key, h := range r.hists {
		if key.name == name && matchesLabels(key.labels, want) {
			s := snapshotHist(h)
			out.Merge(s)
		}
	}
	return out
}

// Snapshot is the whole registry frozen at a point in time — what the
// perf sampler records each period. Counters and gauges keep their full
// series identity (`name{labels}`), histograms are merged per family so
// a sample stays compact while still supporting quantile estimation.
type Snapshot struct {
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Snapshot freezes every registered metric. Safe to call concurrently
// with metric registration and updates: the registry lock covers the map
// walk, and the per-metric reads are the same atomics the hot paths use.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for key, c := range r.counters {
			s.Counters[key.name+braced(key.labels)] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for key, g := range r.gauges {
			s.Gauges[key.name+braced(key.labels)] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(r.hists))
		for key, h := range r.hists {
			snap := s.Hists[key.name]
			snap.Merge(snapshotHist(h))
			s.Hists[key.name] = snap
		}
	}
	return s
}

func splitPairs(labels []string) map[string]string {
	out := make(map[string]string, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		out[labels[i]] = labels[i+1]
	}
	return out
}

func matchesLabels(encoded string, want map[string]string) bool {
	for k, v := range want {
		if !strings.Contains(encoded, k+`="`+escapeLabel(v)+`"`) {
			return false
		}
	}
	return true
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), with families and series in sorted order so
// output is diffable across runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()

	type series struct {
		key  metricKey
		line func(io.Writer, metricKey) error
	}
	families := make(map[string]string) // name -> type
	var all []series

	for key, c := range r.counters {
		families[key.name] = "counter"
		c := c
		all = append(all, series{key, func(w io.Writer, k metricKey) error {
			_, err := fmt.Fprintf(w, "%s%s %d\n", k.name, braced(k.labels), c.Value())
			return err
		}})
	}
	for key, g := range r.gauges {
		families[key.name] = "gauge"
		g := g
		all = append(all, series{key, func(w io.Writer, k metricKey) error {
			_, err := fmt.Fprintf(w, "%s%s %d\n", k.name, braced(k.labels), g.Value())
			return err
		}})
	}
	for key, h := range r.hists {
		families[key.name] = "histogram"
		h := h
		all = append(all, series{key, func(w io.Writer, k metricKey) error {
			cum := int64(0)
			for i, ub := range h.bounds {
				cum += h.BucketCount(i)
				if err := writeBucket(w, k, formatFloat(ub), cum); err != nil {
					return err
				}
			}
			cum += h.BucketCount(len(h.bounds))
			if err := writeBucket(w, k, "+Inf", cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", k.name, braced(k.labels), formatFloat(h.Sum())); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count%s %d\n", k.name, braced(k.labels), h.Count())
			return err
		}})
	}

	sort.Slice(all, func(i, j int) bool {
		if all[i].key.name != all[j].key.name {
			return all[i].key.name < all[j].key.name
		}
		return all[i].key.labels < all[j].key.labels
	})

	lastFamily := ""
	for _, s := range all {
		if s.key.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.key.name, families[s.key.name]); err != nil {
				return err
			}
			lastFamily = s.key.name
		}
		if err := s.line(w, s.key); err != nil {
			return err
		}
	}
	return nil
}

func writeBucket(w io.Writer, k metricKey, le string, cum int64) error {
	labels := k.labels
	if labels != "" {
		labels += ","
	}
	labels += `le="` + le + `"`
	_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", k.name, labels, cum)
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
