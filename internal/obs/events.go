package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event names form the flight-recorder catalog: every discrete campaign
// state change worth replaying after the fact gets one typed event. The
// set is deliberately closed — consumers (the watch dashboard, CI
// assertions, post-mortem scripts) key off these strings, so additions
// belong here, next to their documentation.
const (
	// EvCampaignStart / EvCampaignFinish bracket one campaign.
	// Attrs: app, tests, params (start); app, reported, executions,
	// executions_saved, elapsed_s (finish).
	EvCampaignStart  = "campaign_start"
	EvCampaignFinish = "campaign_finish"
	// EvPhaseStart / EvPhaseFinish bracket one campaign phase.
	// Attrs: app, phase (+ elapsed_s on finish).
	EvPhaseStart  = "phase_start"
	EvPhaseFinish = "phase_finish"
	// EvItemDispatch marks one work item starting execution — on the
	// in-process pool or on a worker subprocess. Attrs: app, item, test
	// (+ worker, spec in dist mode).
	EvItemDispatch = "item_dispatch"
	// EvItemComplete marks one work item's result being accounted.
	// Attrs: app, item, test, elapsed_s (+ worker, spec in dist mode).
	EvItemComplete = "item_complete"
	// EvItemRetried marks a crashed or timed-out item re-entering the
	// queue. Attrs: app, item, test, reason.
	EvItemRetried = "item_retried"
	// EvItemQuarantined marks an item abandoned past its retry budget.
	// Attrs: app, item, test, reason.
	EvItemQuarantined = "item_quarantined"
	// EvWorkerSpawn / EvWorkerReady / EvWorkerCrash track worker
	// subprocess lifecycle. Attrs: app, worker (+ pid on ready, reason
	// on crash).
	EvWorkerSpawn = "worker_spawn"
	EvWorkerReady = "worker_ready"
	EvWorkerCrash = "worker_crash"
	// EvWorkerStalled fires when a worker misses heartbeats past the
	// stall threshold; EvWorkerRecovered when its heartbeats resume.
	// Stalls are advisory — the worker is not killed (the per-item
	// deadline still governs). Attrs: app, worker, silent_s (stalled);
	// app, worker (recovered).
	EvWorkerStalled   = "worker_stalled"
	EvWorkerRecovered = "worker_recovered"
	// EvSteal marks a work item popped from another worker's shard.
	// Attrs: app, item, worker.
	EvSteal = "steal"
	// EvSpeculate marks a straggler item re-issued to an idle worker;
	// EvSpeculationWin a speculative copy winning the race;
	// EvSpeculationLoss a duplicate result discarded before accounting.
	// Attrs: app, item, worker (+ spec on loss: whether the losing
	// arrival was the speculative copy).
	EvSpeculate       = "speculate"
	EvSpeculationWin  = "speculation_win"
	EvSpeculationLoss = "speculation_loss"
	// EvCacheHit marks one execution avoided by memoization.
	// Attrs: app, scope (local | shared | coalesced).
	EvCacheHit = "cache_hit"
	// EvVerdict marks one instance flipping to an unsafe verdict (the
	// flip that eventually makes the report; safe verdicts are volume,
	// not signal, and stay in the metrics). Attrs: app, param, test,
	// instance, p.
	EvVerdict = "verdict"
	// EvParamQuarantined marks §4's frequent-failer rule firing for one
	// parameter. Attrs: app, param.
	EvParamQuarantined = "param_quarantined"
)

// EventRecord is the JSONL schema of one flight-recorder event: a
// monotonic epoch-relative timestamp, the event name, and its attributes.
type EventRecord struct {
	TimeUS int64          `json:"t_us"`
	Event  string         `json:"event"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// EventLog appends structured events as JSON lines. Emit serializes
// encoding under one mutex, so concurrent emitters — the in-process pool
// and the dist coordinator's sessions — interleave whole lines, never
// bytes. A nil *EventLog is valid and drops everything.
type EventLog struct {
	mu    sync.Mutex
	enc   *json.Encoder
	epoch time.Time
}

// NewEventLog returns an event log writing JSONL records to w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{enc: json.NewEncoder(w), epoch: time.Now()}
}

// Emit appends one event. Encoding errors are deliberately dropped: the
// flight recorder must never fail the campaign it is recording.
func (l *EventLog) Emit(event string, attrs ...Attr) {
	if l == nil {
		return
	}
	rec := EventRecord{Event: event}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.TimeUS = time.Since(l.epoch).Microseconds()
	_ = l.enc.Encode(rec)
}

// ReadEvents parses a JSONL event log, for tests and tools.
func ReadEvents(r io.Reader) ([]EventRecord, error) {
	dec := json.NewDecoder(r)
	var out []EventRecord
	for {
		var rec EventRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}
