package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.Start()
	s.SampleNow()
	s.Stop()
	if got := s.Snapshots(); got != nil {
		t.Fatalf("nil sampler returned samples: %v", got)
	}
	if _, ok := s.Current(); ok {
		t.Fatal("nil sampler has a current sample")
	}
	if s.Count() != 0 || s.Period() != 0 {
		t.Fatal("nil sampler reports non-zero count or period")
	}
}

func TestSamplerRingWraparound(t *testing.T) {
	o := New()
	s := NewSampler(o, time.Hour, nil, 4)
	for i := 0; i < 10; i++ {
		o.GaugeSet("g", int64(i))
		s.SampleNow()
	}
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10", s.Count())
	}
	got := s.Snapshots()
	if len(got) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(got))
	}
	// Oldest-first: the surviving samples saw gauge values 6..9.
	for i, sample := range got {
		want := int64(6 + i)
		if v := sample.Metrics.Gauges["g"]; v != want {
			t.Fatalf("sample %d gauge = %d, want %d", i, v, want)
		}
	}
	cur, ok := s.Current()
	if !ok || cur.Metrics.Gauges["g"] != 9 {
		t.Fatalf("Current = %+v ok=%v, want newest sample (gauge 9)", cur, ok)
	}
	// Monotonic timestamps across the wrap.
	for i := 1; i < len(got); i++ {
		if got[i].TimeUS < got[i-1].TimeUS {
			t.Fatalf("samples out of order after wrap: %d then %d", got[i-1].TimeUS, got[i].TimeUS)
		}
	}
}

func TestSamplerJSONLRoundTrip(t *testing.T) {
	o := New()
	o.CounterAdd(MExecutions, 3, "app", "x", "arm", "hetero", "outcome", "pass")
	o.Observe(MItemRunSeconds, 0.2, "app", "x", "stage", "instances")
	var buf bytes.Buffer
	s := NewSampler(o, time.Hour, &buf, 8)
	s.SampleNow()
	s.SampleNow()
	got, err := ReadPerf(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d samples, want 2", len(got))
	}
	key := MExecutions + `{app="x",arm="hetero",outcome="pass"}`
	if got[1].Metrics.Counters[key] != 3 {
		t.Fatalf("counter did not round-trip: %v", got[1].Metrics.Counters)
	}
	h := got[1].Metrics.Hists[MItemRunSeconds]
	if h.Count != 1 || len(h.Buckets) != len(h.Bounds)+1 {
		t.Fatalf("histogram snapshot malformed: %+v", h)
	}
	if got[1].Goroutines <= 0 {
		t.Fatal("runtime stats missing from sample")
	}
}

// TestSamplerConcurrentRegister races snapshotting against metric
// registration and updates: the sampler must never observe a torn
// registry (run under -race).
func TestSamplerConcurrentRegister(t *testing.T) {
	o := New()
	s := NewSampler(o, time.Hour, nil, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.CounterAdd("c", 1, "g", fmt.Sprint(g), "i", fmt.Sprint(i%17))
				o.GaugeSet("g", int64(i), "g", fmt.Sprint(g))
				o.Observe(MItemRunSeconds, float64(i%5), "app", "x", "stage", fmt.Sprint(g))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s.SampleNow()
	}
	wg.Wait()
	s.SampleNow()
	cur, ok := s.Current()
	if !ok {
		t.Fatal("no current sample")
	}
	var total int64
	for k, v := range cur.Metrics.Counters {
		if strings.HasPrefix(k, "c{") {
			total += v
		}
	}
	if total != 4*500 {
		t.Fatalf("final sample saw %d counter increments, want %d", total, 4*500)
	}
}

func TestSamplerStartStop(t *testing.T) {
	o := New()
	s := NewSampler(o, time.Millisecond, nil, 64)
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Count() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	n := s.Count()
	if n < 3 {
		t.Fatalf("sampler took only %d samples", n)
	}
	time.Sleep(5 * time.Millisecond)
	if s.Count() != n {
		t.Fatal("sampler kept sampling after Stop")
	}
	s.Stop() // idempotent, takes one more explicit final sample
	if s.Count() != n+1 {
		t.Fatalf("second Stop should add exactly one final sample: %d -> %d", n, s.Count())
	}
}

func TestSamplerStatusFields(t *testing.T) {
	o := New()
	o.Status = NewStatus()
	o.Status.CampaignBegin("minihdfs", 8)
	o.Status.ItemQueued(1, "TestA", 0)
	o.Status.ItemQueued(2, "TestB", 0)
	o.Status.ItemStart(1)
	o.Status.AddExecutions(5)
	o.Status.AddSaved(5)
	s := NewSampler(o, time.Hour, nil, 4)
	s.SampleNow()
	cur, _ := s.Current()
	if cur.ItemsRunning != 1 || cur.ItemsQueued != 1 || cur.Slots != 8 {
		t.Fatalf("status fields wrong: %+v", cur)
	}
	if u := cur.Utilization(); u != 1.0/8 {
		t.Fatalf("Utilization = %v, want 0.125", u)
	}
	if r := cur.CacheHitRate(); r != 0.5 {
		t.Fatalf("CacheHitRate = %v, want 0.5", r)
	}
}
