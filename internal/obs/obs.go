// Package obs is ZebraConf's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, histograms with Prometheus
// text exposition), a structured JSONL span tracer, a live progress
// reporter, a flight-recorder event log, and a live status tracker
// serving the /api endpoints. The campaign, runner, and harness layers
// call nil-safe Observer methods on every hot path, so with
// observability disabled (a nil *Observer) the instrumented code costs
// a nil check and nothing else.
package obs

import "time"

// Metric names form the stable catalog documented in README.md
// ("Observability"). Label sets are listed next to each name.
const (
	// MExecutions counts unit-test executions. Labels: app, arm
	// (hetero | homoA.. | pool | prerun), outcome (pass | fail).
	MExecutions = "zebraconf_executions_total"
	// MTestSeconds is the per-unit-test wall-clock histogram.
	// Labels: app, test.
	MTestSeconds = "zebraconf_unit_test_seconds"
	// MTimeouts counts unit-test executions killed by the harness
	// timeout. Labels: app, test.
	MTimeouts = "zebraconf_test_timeouts_total"
	// MVerdicts counts instance verdicts. Labels: app, verdict
	// (safe | unsafe | filtered | homo-invalid).
	MVerdicts = "zebraconf_instance_verdicts_total"
	// MFirstTrial counts instances whose first trial showed the unsafe
	// pattern (§7.2 gating statistic). Labels: app.
	MFirstTrial = "zebraconf_first_trial_signals_total"
	// MPValue is the distribution of final Fisher one-sided p-values
	// over instances that ran confirmation rounds. Labels: app.
	MPValue = "zebraconf_fisher_p_value"
	// MConfirmRounds is the confirmation-rounds-per-instance histogram
	// (0 when the first-trial gate stopped the instance; rounds past the
	// base budget are extension rounds drawn from the reallocation
	// pool). Labels: app, verdict (safe | unsafe | filtered |
	// homo-invalid).
	MConfirmRounds = "zebraconf_confirmation_rounds"
	// MTrialsSaved counts paired trials the sequential stopping rule
	// affected: kind=early-stop for rounds an early conviction or
	// futility stop did not run, kind=reallocated for extension-round
	// trials granted to significance-marginal instances out of the
	// campaign budget pool. Labels: app, kind.
	MTrialsSaved = "zebraconf_trials_saved_total"
	// MPoolRuns counts pooled heterogeneous runs. Labels: app, result
	// (pass | fail).
	MPoolRuns = "zebraconf_pool_runs_total"
	// MPoolSplits counts pool splits (each failing pool of size >= 2
	// splits once into two halves). Labels: app.
	MPoolSplits = "zebraconf_pool_splits_total"
	// MPoolDepth is the recursion-depth histogram of pooled runs
	// (depth 0 = a pool as built by BuildPools). Labels: app.
	MPoolDepth = "zebraconf_pool_split_depth"
	// MQuarantine counts parameters quarantined by the frequent-failer
	// rule. Labels: app.
	MQuarantine = "zebraconf_quarantine_events_total"
	// MSkippedTests counts pre-run tests whose lookup failed in phase 2.
	// Labels: app.
	MSkippedTests = "zebraconf_skipped_tests_total"
	// MPhaseSeconds is the per-campaign-phase latency histogram.
	// Labels: app, phase (prerun | instances | scoring).
	MPhaseSeconds = "zebraconf_phase_seconds"
	// MSemWaitSeconds is the parallelMap semaphore queue-wait histogram:
	// how long work items waited for a worker slot. Labels: app, stage.
	MSemWaitSeconds = "zebraconf_semaphore_wait_seconds"
	// MInstancesTotal / MInstancesDone gauge campaign progress.
	// Labels: app.
	MInstancesTotal = "zebraconf_instances_total"
	MInstancesDone  = "zebraconf_instances_done"
	// MAbandonedGoroutines counts unit-test goroutines the harness
	// abandoned after a timeout (it cannot kill them in-process).
	// Labels: app, test.
	MAbandonedGoroutines = "zebraconf_abandoned_test_goroutines_total"
	// MLeakedGoroutines gauges abandoned test goroutines still running.
	// Labels: app.
	MLeakedGoroutines = "zebraconf_leaked_test_goroutines"

	// Distributed executor catalog (internal/core/dist).

	// MWorkerSpawns counts worker subprocess launches (including
	// respawns after crashes). Labels: app, worker.
	MWorkerSpawns = "zebraconf_dist_worker_spawns_total"
	// MWorkerCrashes counts worker subprocess losses. Labels: app,
	// reason (crash | timeout | spawn).
	MWorkerCrashes = "zebraconf_dist_worker_crashes_total"
	// MWorkerItems counts work items completed per worker slot (the
	// per-worker throughput series). Labels: app, worker.
	MWorkerItems = "zebraconf_dist_worker_items_total"
	// MItemSeconds is the per-work-item wall-clock histogram as seen by
	// the coordinator (dispatch to result). Labels: app.
	MItemSeconds = "zebraconf_dist_item_seconds"
	// MItemExecutions counts unit-test executions reported back by
	// workers (worker-process registries are not merged). Labels: app.
	MItemExecutions = "zebraconf_dist_item_executions_total"
	// MItemRetries counts work items requeued after a worker crash or
	// deadline kill. Labels: app.
	MItemRetries = "zebraconf_dist_item_retries_total"
	// MItemsQuarantined counts work items abandoned after exhausting
	// their retry budget. Labels: app.
	MItemsQuarantined = "zebraconf_dist_items_quarantined_total"
	// MItemsResumed counts checkpointed work items skipped by -resume.
	// Labels: app.
	MItemsResumed = "zebraconf_dist_items_resumed_total"
	// MQueueDepth gauges work items waiting in the coordinator's queue.
	// Labels: app.
	MQueueDepth = "zebraconf_dist_queue_depth"
	// MSteals counts work items stolen from another worker's shard.
	// Labels: app.
	MSteals = "zebraconf_dist_steals_total"
	// MHeartbeats counts worker heartbeat messages received. Labels:
	// app, worker.
	MHeartbeats = "zebraconf_dist_worker_heartbeats_total"
	// MMissedHeartbeats gauges consecutive heartbeat intervals a worker
	// has been silent for (reset to 0 on every heartbeat). Labels: app,
	// worker.
	MMissedHeartbeats = "zebraconf_dist_worker_missed_heartbeats"
	// MWorkerStalls counts workers crossing the stall threshold (silent
	// past -stall-after without a heartbeat; advisory — the per-item
	// deadline still governs kills). Labels: app, worker.
	MWorkerStalls = "zebraconf_dist_worker_stalls_total"

	// Adaptive scheduler catalog (internal/core/sched).

	// MSchedReordered counts work items dispatched out of arrival order
	// by the scheduler (batch LPT reorders plus queue-level overtakes).
	// Labels: app.
	MSchedReordered = "zebraconf_sched_reordered_items_total"
	// MSpeculativeRuns counts straggler items speculatively re-issued to
	// an idle worker. Labels: app.
	MSpeculativeRuns = "zebraconf_sched_speculative_runs_total"
	// MSpeculationWins counts speculative copies that finished before
	// the original attempt (first-result-wins). Labels: app.
	MSpeculationWins = "zebraconf_sched_speculation_wins_total"
	// MSchedQueueWait is the per-task queue-wait histogram: how long a
	// ready task sat in the scheduler's queue before dispatch. Labels:
	// app, stage (stream = in-process pipeline, dist = coordinator queue).
	MSchedQueueWait = "zebraconf_sched_queue_wait_seconds"
	// MSchedPredRatio is the predicted-vs-actual accuracy histogram:
	// actual item seconds divided by the scheduler's prediction (1.0 =
	// perfect). Labels: app.
	MSchedPredRatio = "zebraconf_sched_predicted_vs_actual_ratio"
	// MItemRunSeconds is the per-item run-time histogram on the
	// in-process pool (the companion of MSemWaitSeconds: wait vs run
	// makes tail latency attributable). Labels: app, stage.
	MItemRunSeconds = "zebraconf_item_run_seconds"

	// Execution memoization catalog (internal/core/memo).

	// MCacheHits counts executions reused from the cache. Labels: app,
	// scope (local = this process's cache, shared = the coordinator-side
	// cache behind the dist protocol).
	MCacheHits = "zebraconf_exec_cache_hits_total"
	// MCacheMisses counts cache lookups that executed for real.
	// Labels: app.
	MCacheMisses = "zebraconf_exec_cache_misses_total"
	// MCacheCoalesced counts callers that joined an in-flight identical
	// run instead of duplicating it (singleflight). Labels: app.
	MCacheCoalesced = "zebraconf_exec_cache_coalesced_total"
	// MCacheSaved gauges total unit-test executions avoided by
	// memoization (hits + shared hits + coalesced). Labels: app.
	MCacheSaved = "zebraconf_exec_cache_saved_executions"

	// Verdict forensics catalog (internal/core/forensics).

	// MEvidenceRecords counts evidence records admitted to the store.
	// Labels: app.
	MEvidenceRecords = "zebraconf_evidence_records_total"
	// MEvidenceTruncated counts evidence truncation events: reason=log
	// (per-execution log ring overflowed), reason=reads (read-trace cap
	// hit), reason=budget (campaign-wide -evidence-max exhausted, record
	// degraded to verdict-only). Labels: app, reason.
	MEvidenceTruncated = "zebraconf_evidence_truncated_total"

	// Persistent disk cache catalog (internal/core/diskcache).

	// MDiskCacheHits counts lookups served from the on-disk store.
	// Labels: none (the store outlives any one app's campaign).
	MDiskCacheHits = "zebraconf_disk_cache_hits_total"
	// MDiskCacheMisses counts lookups that fell through the disk tier.
	MDiskCacheMisses = "zebraconf_disk_cache_misses_total"
	// MDiskCacheWrites counts entries written (puts + write-throughs).
	MDiskCacheWrites = "zebraconf_disk_cache_writes_total"
	// MDiskCacheEvictions counts LRU evictions under the size cap.
	MDiskCacheEvictions = "zebraconf_disk_cache_evictions_total"
	// MDiskCacheCorrupt counts entries rejected on read (truncated,
	// garbage, or key mismatch) and deleted; each degrades to a miss.
	MDiskCacheCorrupt = "zebraconf_disk_cache_corrupt_total"
	// MDiskCacheBytes gauges the store's current payload size.
	MDiskCacheBytes = "zebraconf_disk_cache_bytes"
	// MDiskCacheEntries gauges the store's current entry count.
	MDiskCacheEntries = "zebraconf_disk_cache_entries"
	// MDiskCacheHitAge histograms seconds between an entry's creation
	// and a hit on it — how stale the reuse is (cross-campaign hits show
	// up as old entries).
	MDiskCacheHitAge = "zebraconf_disk_cache_hit_age_seconds"

	// Campaign service catalog (internal/core/dist gateway +
	// internal/core/server).

	// MGatewayWorkers counts workers admitted through the TCP gateway
	// handshake.
	MGatewayWorkers = "zebraconf_gateway_workers_total"
	// MGatewayAuthFailures counts connections refused at the hello
	// handshake (bad token, malformed hello, timeout).
	MGatewayAuthFailures = "zebraconf_gateway_auth_failures_total"
	// MGatewayIdle gauges workers currently parked awaiting a campaign.
	MGatewayIdle = "zebraconf_gateway_idle_workers"
	// MServerCampaigns counts campaigns by terminal state.
	// Labels: state (done, failed, cancelled).
	MServerCampaigns = "zebraconf_server_campaigns_total"
	// MServerQueueDepth gauges campaigns queued behind the running one.
	MServerQueueDepth = "zebraconf_server_queue_depth"

	// MBuildInfo is the conventional constant-1 build-identity gauge.
	// Labels: version, go.
	MBuildInfo = "zebraconf_build_info"
)

// Bucket layouts for the catalog's histogram families.
var (
	// PValueBuckets spans the Fisher p-value range down to well under
	// the paper's 1e-4 significance level.
	PValueBuckets = []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1}
	// LatencyBuckets covers microseconds to tens of seconds.
	LatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 5, 15, 60}
	// RoundBuckets covers the confirmation-round budget (default max 8)
	// plus the extension range reallocation can grant (up to 2× budget).
	RoundBuckets = []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16}
	// DepthBuckets covers pool-split recursion depth (log2 of pool size).
	DepthBuckets = []float64{0, 1, 2, 3, 4, 5, 6, 8, 10}
	// RatioBuckets covers predicted-vs-actual duration ratios, centered
	// on 1.0 (a perfect prediction) with room for 10x misses either way.
	RatioBuckets = []float64{0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 4, 10}
	// AgeBuckets covers disk-cache hit ages from same-campaign reuse
	// (seconds) out to week-old cross-campaign entries.
	AgeBuckets = []float64{1, 10, 60, 300, 1800, 3600, 6 * 3600, 24 * 3600, 7 * 24 * 3600}
)

// boundsFor maps a histogram family to its catalog bucket layout.
func boundsFor(name string) []float64 {
	switch name {
	case MPValue:
		return PValueBuckets
	case MConfirmRounds:
		return RoundBuckets
	case MPoolDepth:
		return DepthBuckets
	case MSchedPredRatio:
		return RatioBuckets
	case MDiskCacheHitAge:
		return AgeBuckets
	default:
		return LatencyBuckets
	}
}

// Observer bundles the observability sinks. Any field may be nil;
// every method is safe on a nil receiver, which is the "observability
// off" configuration used by default throughout the codebase.
type Observer struct {
	Metrics  *Registry
	Tracer   *Tracer
	Progress *Progress
	// Events is the campaign flight recorder (JSONL event log).
	Events *EventLog
	// Status is the live campaign state behind the /api endpoints.
	Status *Status
	// Sampler is the periodic perf sampler behind -perf and /api/perf.
	Sampler *Sampler
}

// New returns an Observer with a live metrics registry and no tracer or
// progress reporter; callers attach those when the corresponding outputs
// are requested.
func New() *Observer {
	return &Observer{Metrics: NewRegistry()}
}

// CounterAdd adds delta to a named counter. Labels are key/value pairs.
func (o *Observer) CounterAdd(name string, delta int64, labels ...string) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter(name, labels...).Add(delta)
}

// GaugeSet sets a named gauge.
func (o *Observer) GaugeSet(name string, v int64, labels ...string) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Gauge(name, labels...).Set(v)
}

// GaugeAdd adds delta to a named gauge.
func (o *Observer) GaugeAdd(name string, delta int64, labels ...string) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Gauge(name, labels...).Add(delta)
}

// Observe records v into the named histogram family, using the catalog
// bucket layout for that family.
func (o *Observer) Observe(name string, v float64, labels ...string) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Histogram(name, boundsFor(name), labels...).Observe(v)
}

// StartSpan opens a trace span under parent (NoSpan for a root). Returns
// nil when tracing is off; a nil *Span is safe to use.
func (o *Observer) StartSpan(name string, parent SpanID, attrs ...Attr) *Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Start(name, parent, attrs...)
}

// Event appends one record to the flight-recorder event log.
func (o *Observer) Event(event string, attrs ...Attr) {
	if o == nil || o.Events == nil {
		return
	}
	o.Events.Emit(event, attrs...)
}

// Stat exposes the live status tracker (nil when live status is off;
// every *Status method is nil-safe, so callers chain unconditionally).
func (o *Observer) Stat() *Status {
	if o == nil {
		return nil
	}
	return o.Status
}

// RecordCacheSaved accounts n unit-test executions avoided by the memo
// cache: the MCacheSaved gauge plus the progress line and live status.
func (o *Observer) RecordCacheSaved(app string, n int64) {
	if o == nil {
		return
	}
	o.GaugeAdd(MCacheSaved, n, "app", app)
	o.Progress.AddSaved(n)
	o.Status.AddSaved(n)
}

// RecordSpeculationWin accounts one speculative copy beating its
// primary attempt.
func (o *Observer) RecordSpeculationWin(app string) {
	if o == nil {
		return
	}
	o.CounterAdd(MSpeculationWins, 1, "app", app)
	o.Progress.AddSpecWin(1)
	o.Status.SpeculationWin()
}

// ProgressBegin starts the live progress reporter for one campaign.
func (o *Observer) ProgressBegin(app string) {
	if o == nil {
		return
	}
	o.Progress.Begin(app)
}

// ProgressFinish stops the live progress reporter.
func (o *Observer) ProgressFinish() {
	if o == nil {
		return
	}
	o.Progress.Finish()
}

// ProgressAddTotal adds discovered instances to the progress denominator.
func (o *Observer) ProgressAddTotal(n int64) {
	if o == nil {
		return
	}
	o.Progress.AddTotal(n)
	o.Status.AddInstances(n)
}

// ProgressAddDone marks instances resolved in the progress numerator.
func (o *Observer) ProgressAddDone(n int64) {
	if o == nil {
		return
	}
	o.Progress.AddDone(n)
	o.Status.AddInstancesDone(n)
}

// ProgressAddExecutions counts unit-test executions for the progress
// rate display; the distributed coordinator calls it with the execution
// tallies workers report back.
func (o *Observer) ProgressAddExecutions(n int64) {
	if o == nil {
		return
	}
	o.Progress.AddExecutions(n)
	o.Status.AddExecutions(n)
}

// RecordTestRun is the harness hook: one unit-test execution finished.
func (o *Observer) RecordTestRun(app, test string, failed, timedOut bool, d time.Duration) {
	if o == nil {
		return
	}
	o.Observe(MTestSeconds, d.Seconds(), "app", app, "test", test)
	if timedOut {
		o.CounterAdd(MTimeouts, 1, "app", app, "test", test)
	}
	o.Progress.AddExecutions(1)
	o.Status.AddExecutions(1)
}

// RecordExecution is the runner hook: one unit-test execution finished
// under a specific arm.
func (o *Observer) RecordExecution(app, arm string, failed bool) {
	if o == nil {
		return
	}
	outcome := "pass"
	if failed {
		outcome = "fail"
	}
	o.CounterAdd(MExecutions, 1, "app", app, "arm", arm, "outcome", outcome)
}

// RecordVerdict is the runner hook: one instance got its final verdict.
func (o *Observer) RecordVerdict(app, verdict string, firstTrialSignal bool) {
	if o == nil {
		return
	}
	o.CounterAdd(MVerdicts, 1, "app", app, "verdict", verdict)
	if firstTrialSignal {
		o.CounterAdd(MFirstTrial, 1, "app", app)
	}
	o.Progress.AddVerdict(verdict)
	o.Status.AddVerdict(verdict)
}
