package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestEventLogConcurrentEmitters hammers one EventLog from many
// goroutines and asserts the output is still one well-formed JSONL
// stream: every record parses, nothing interleaves mid-line, nothing is
// lost. This is the -race guarantee the campaign and coordinator rely
// on when they emit from worker sessions and the merge path at once.
func TestEventLogConcurrentEmitters(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf)

	const emitters = 8
	const perEmitter = 200
	var wg sync.WaitGroup
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				log.Emit(EvItemDispatch,
					String("app", "fake"),
					Int("item", int64(i)),
					String("worker", fmt.Sprintf("w%d", e)))
			}
		}(e)
	}
	wg.Wait()

	recs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(recs) != emitters*perEmitter {
		t.Fatalf("got %d records, want %d", len(recs), emitters*perEmitter)
	}
	for i, r := range recs {
		if r.Event != EvItemDispatch {
			t.Fatalf("record %d: event %q", i, r.Event)
		}
		if r.TimeUS < 0 {
			t.Fatalf("record %d: negative timestamp %d", i, r.TimeUS)
		}
		if r.Attrs["app"] != "fake" {
			t.Fatalf("record %d: attrs %v", i, r.Attrs)
		}
	}
	// Timestamps are stamped under the encoder lock, so the stream is
	// time-ordered even with concurrent emitters.
	for i := 1; i < len(recs); i++ {
		if recs[i].TimeUS < recs[i-1].TimeUS {
			t.Fatalf("timestamps regress at record %d: %d then %d", i, recs[i-1].TimeUS, recs[i].TimeUS)
		}
	}
}

// TestEventLogNilSafety mirrors the package convention: a nil log, a
// nil observer, and an observer without an event log all no-op.
func TestEventLogNilSafety(t *testing.T) {
	var log *EventLog
	log.Emit(EvCampaignStart, String("app", "x")) // must not panic

	var o *Observer
	o.Event(EvCampaignStart, String("app", "x"))

	o = New()
	o.Event(EvCampaignStart, String("app", "x")) // Events nil
	if o.Stat() != nil {
		t.Fatal("Stat() on an observer without a status tracker should be nil")
	}
}

// TestEventLogAttrs round-trips the attr constructors through JSON.
func TestEventLogAttrs(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf)
	log.Emit(EvVerdict,
		String("param", "dfs.checksum.type"),
		Int("item", 7),
		Float("p", 0.0625),
		Bool("spec", true))
	recs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	a := recs[0].Attrs
	if a["param"] != "dfs.checksum.type" {
		t.Errorf("param attr: %v", a["param"])
	}
	// JSON numbers decode as float64.
	if a["item"] != float64(7) {
		t.Errorf("item attr: %v", a["item"])
	}
	if a["p"] != 0.0625 {
		t.Errorf("p attr: %v", a["p"])
	}
	if a["spec"] != true {
		t.Errorf("spec attr: %v", a["spec"])
	}
}
