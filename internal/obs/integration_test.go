package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"zebraconf/internal/apps"
	"zebraconf/internal/apps/minihdfs"
	"zebraconf/internal/core/campaign"
	"zebraconf/internal/obs"
)

// TestCampaignTraceAndMetricsIntegrity runs a small minihdfs campaign with
// full observability on and checks the acceptance properties: every trace
// span's parent resolves, the span tree nests campaign > phase > test >
// pool > pooled-run / instance > round, and the metric counters agree with
// the campaign result.
func TestCampaignTraceAndMetricsIntegrity(t *testing.T) {
	app, err := apps.ByName("minihdfs")
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	o := obs.New()
	o.Tracer = obs.NewTracer(&traceBuf)

	res := campaign.Run(app, campaign.Options{
		Params: []string{minihdfs.ParamPeerProtocolVersion, minihdfs.ParamReplication,
			minihdfs.ParamBlockSize, minihdfs.ParamClientRetries},
		Tests: []string{"TestWriteRead", "TestPipelineReplication"},
		Obs:   o,
	})
	if len(res.Reported) == 0 {
		t.Fatalf("campaign reported nothing; trace would be trivial")
	}

	recs, err := obs.ReadTrace(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}

	byID := map[obs.SpanID]obs.SpanRecord{}
	byName := map[string][]obs.SpanRecord{}
	for _, r := range recs {
		if _, dup := byID[r.Span]; dup {
			t.Fatalf("duplicate span id %d", r.Span)
		}
		byID[r.Span] = r
		byName[r.Name] = append(byName[r.Name], r)
	}

	// Every parent resolves.
	for _, r := range recs {
		if r.Parent != obs.NoSpan {
			if _, ok := byID[r.Parent]; !ok {
				t.Errorf("span %d (%s) has dangling parent %d", r.Span, r.Name, r.Parent)
			}
		}
	}

	// Exactly one campaign root; phases under it.
	if len(byName["campaign"]) != 1 {
		t.Fatalf("got %d campaign spans, want 1", len(byName["campaign"]))
	}
	root := byName["campaign"][0]
	if root.Parent != obs.NoSpan {
		t.Errorf("campaign span has parent %d", root.Parent)
	}
	if len(byName["phase"]) != 3 {
		t.Errorf("got %d phase spans, want 3", len(byName["phase"]))
	}
	for _, p := range byName["phase"] {
		if p.Parent != root.Span {
			t.Errorf("phase %v not under campaign", p.Attrs["phase"])
		}
	}

	// Structural nesting rules.
	parentName := func(r obs.SpanRecord) string { return byID[r.Parent].Name }
	for _, r := range byName["test"] {
		if parentName(r) != "phase" {
			t.Errorf("test span under %q, want phase", parentName(r))
		}
	}
	for _, r := range byName["pool"] {
		depth, _ := r.Attrs["depth"].(float64)
		switch p := parentName(r); {
		case depth == 0 && p != "test":
			t.Errorf("depth-0 pool span under %q, want test", p)
		case depth > 0 && p != "pool":
			t.Errorf("split pool span (depth %v) under %q, want pool", depth, p)
		}
	}
	for _, r := range byName["pooled-run"] {
		if parentName(r) != "pool" {
			t.Errorf("pooled-run span under %q, want pool", parentName(r))
		}
	}
	for _, r := range byName["instance"] {
		if p := parentName(r); p != "test" && p != "pool" {
			t.Errorf("instance span under %q, want test or pool", p)
		}
	}
	for _, r := range byName["round"] {
		if parentName(r) != "instance" {
			t.Errorf("round span under %q, want instance", parentName(r))
		}
		// Per-round attributes: hetero_failed is this round's hetero
		// outcome, homo_failures this round's delta — at most one failure
		// per homogeneous arm, never a cumulative count across rounds.
		if _, ok := r.Attrs["hetero_failed"].(bool); !ok {
			t.Errorf("round span missing hetero_failed bool: %+v", r.Attrs)
		}
		hf, ok := r.Attrs["homo_failures"].(float64)
		if !ok || hf < 0 || hf > 2 {
			t.Errorf("round span homo_failures = %v, want 0..2 (per-round delta over two arms)", r.Attrs["homo_failures"])
		}
	}
	// The unsafe verdict must be replayable from its lineage: at least one
	// instance span carries verdict=unsafe with app/test attributes set.
	foundUnsafe := false
	for _, r := range byName["instance"] {
		if r.Attrs["verdict"] == "unsafe" {
			foundUnsafe = true
			if r.Attrs["app"] != "minihdfs" || r.Attrs["test"] == "" || r.Attrs["seed"] == nil {
				t.Errorf("unsafe instance span lacks replay attrs: %+v", r.Attrs)
			}
		}
	}
	if !foundUnsafe {
		t.Errorf("no instance span carries verdict=unsafe despite %d reported params", len(res.Reported))
	}

	// Metrics agree with the campaign result.
	m := o.Metrics
	if got := m.CounterValue(obs.MVerdicts); got != int64(len(byName["instance"])) {
		t.Errorf("verdict counter %d != instance spans %d", got, len(byName["instance"]))
	}
	if got := m.CounterValue(obs.MVerdicts, "verdict", "filtered"); got != int64(res.FilteredByHypothesis) {
		t.Errorf("filtered counter %d != result %d", got, res.FilteredByHypothesis)
	}
	if got := m.CounterValue(obs.MVerdicts, "verdict", "homo-invalid"); got != int64(res.HomoInvalid) {
		t.Errorf("homo-invalid counter %d != result %d", got, res.HomoInvalid)
	}
	if got := m.CounterValue(obs.MFirstTrial); got != int64(res.FirstTrialSignals) {
		t.Errorf("first-trial counter %d != result %d", got, res.FirstTrialSignals)
	}
	if got := m.CounterValue(obs.MVerdicts, "verdict", "unsafe"); got < int64(len(res.Reported)) {
		t.Errorf("unsafe counter %d < reported params %d", got, len(res.Reported))
	}
	campaignExecs := m.CounterValue(obs.MExecutions) - m.CounterValue(obs.MExecutions, "arm", "prerun")
	if campaignExecs != res.Counts.Executed {
		t.Errorf("execution counters %d != result executed %d", campaignExecs, res.Counts.Executed)
	}
	if got := m.CounterValue(obs.MExecutions, "arm", "prerun"); got != int64(res.NumTests) {
		t.Errorf("prerun executions %d != tests %d", got, res.NumTests)
	}
	// Execution-cache counters: every saved execution is a cache hit, and
	// misses are the executions the campaign actually performed for
	// canonically-addressed runs (a subset of all executions).
	if res.Counts.ExecutionsSaved == 0 {
		t.Error("campaign saved no executions; the cache-counter checks are vacuous")
	}
	if res.Counts.ExecutionsSaved > 0 {
		hits := m.CounterValue(obs.MCacheHits, "app", "minihdfs", "scope", "local") +
			m.CounterValue(obs.MCacheHits, "app", "minihdfs", "scope", "shared") +
			m.CounterValue(obs.MCacheCoalesced, "app", "minihdfs")
		if hits != res.Counts.ExecutionsSaved {
			t.Errorf("cache hit counters %d != executions saved %d", hits, res.Counts.ExecutionsSaved)
		}
		if g := m.Gauge(obs.MCacheSaved, "app", "minihdfs").Value(); g != res.Counts.ExecutionsSaved {
			t.Errorf("saved gauge %v != executions saved %d", g, res.Counts.ExecutionsSaved)
		}
		if misses := m.CounterValue(obs.MCacheMisses, "app", "minihdfs"); misses <= 0 || misses > res.Counts.Executed {
			t.Errorf("cache misses %d outside (0, executed=%d]", misses, res.Counts.Executed)
		}
	}

	// Exposition renders the catalog families the acceptance criteria name.
	var prom strings.Builder
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{obs.MExecutions, obs.MVerdicts, obs.MPValue,
		obs.MTestSeconds, obs.MPhaseSeconds, obs.MSemWaitSeconds} {
		if !strings.Contains(prom.String(), "# TYPE "+family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
}
