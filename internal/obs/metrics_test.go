package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 10} {
		h.Observe(v)
	}
	// Upper bounds are inclusive, Prometheus style.
	want := []int64{2, 2, 0, 1} // <=1, <=2, <=5, +Inf
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 15 {
		t.Errorf("sum = %v, want 15", h.Sum())
	}
}

func TestConcurrentCounterIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 32, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Re-lookup each time: the hot path the runner exercises.
				r.Counter(MExecutions, "app", "minihdfs", "arm", "hetero").Inc()
				r.Histogram(MPValue, PValueBuckets, "app", "minihdfs").Observe(0.5)
				r.Gauge(MInstancesDone, "app", "minihdfs").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue(MExecutions); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram(MPValue, PValueBuckets, "app", "minihdfs").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge(MInstancesDone, "app", "minihdfs").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "b", "2", "a", "1").Add(3)
	r.Counter("x_total", "a", "1", "b", "2").Add(4)
	if got := r.CounterValue("x_total", "a", "1"); got != 7 {
		t.Errorf("label order created distinct series: sum = %d, want 7", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(MVerdicts, "app", "minihdfs", "verdict", "safe").Add(12)
	r.Counter(MVerdicts, "app", "minihdfs", "verdict", "unsafe").Add(3)
	r.Gauge(MInstancesTotal, "app", "minihdfs").Set(40)
	h := r.Histogram(MPValue, []float64{0.001, 0.5}, "app", "minihdfs")
	h.Observe(0.0001)
	h.Observe(0.25)
	h.Observe(0.9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE " + MVerdicts + " counter\n",
		MVerdicts + `{app="minihdfs",verdict="safe"} 12` + "\n",
		MVerdicts + `{app="minihdfs",verdict="unsafe"} 3` + "\n",
		"# TYPE " + MInstancesTotal + " gauge\n",
		MInstancesTotal + `{app="minihdfs"} 40` + "\n",
		"# TYPE " + MPValue + " histogram\n",
		MPValue + `_bucket{app="minihdfs",le="0.001"} 1` + "\n",
		MPValue + `_bucket{app="minihdfs",le="0.5"} 2` + "\n",
		MPValue + `_bucket{app="minihdfs",le="+Inf"} 3` + "\n",
		MPValue + `_sum{app="minihdfs"} `,
		MPValue + `_count{app="minihdfs"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Series of one family must be contiguous under a single TYPE line.
	if strings.Count(out, "# TYPE "+MVerdicts) != 1 {
		t.Errorf("family %s has more than one TYPE line", MVerdicts)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "msg", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{msg="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong: %s", b.String())
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.CounterAdd(MExecutions, 1, "app", "x")
	o.GaugeSet(MInstancesTotal, 5, "app", "x")
	o.GaugeAdd(MInstancesDone, 1, "app", "x")
	o.Observe(MPValue, 0.5, "app", "x")
	o.RecordTestRun("x", "t", true, false, 0)
	o.RecordExecution("x", "hetero", false)
	o.RecordVerdict("x", "safe", false)
	o.ProgressBegin("x")
	o.ProgressAddTotal(1)
	o.ProgressAddDone(1)
	o.ProgressFinish()
	if s := o.StartSpan("x", NoSpan); s != nil {
		t.Errorf("nil observer returned a live span")
	}
	// An Observer with only metrics must tolerate nil Tracer/Progress too.
	live := New()
	live.RecordTestRun("x", "t", false, false, 0)
	live.ProgressBegin("x")
	live.ProgressFinish()
	live.StartSpan("x", NoSpan).End()
}
