package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 10} {
		h.Observe(v)
	}
	// Upper bounds are inclusive, Prometheus style.
	want := []int64{2, 2, 0, 1} // <=1, <=2, <=5, +Inf
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 15 {
		t.Errorf("sum = %v, want 15", h.Sum())
	}
}

func TestConcurrentCounterIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 32, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Re-lookup each time: the hot path the runner exercises.
				r.Counter(MExecutions, "app", "minihdfs", "arm", "hetero").Inc()
				r.Histogram(MPValue, PValueBuckets, "app", "minihdfs").Observe(0.5)
				r.Gauge(MInstancesDone, "app", "minihdfs").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue(MExecutions); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram(MPValue, PValueBuckets, "app", "minihdfs").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge(MInstancesDone, "app", "minihdfs").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "b", "2", "a", "1").Add(3)
	r.Counter("x_total", "a", "1", "b", "2").Add(4)
	if got := r.CounterValue("x_total", "a", "1"); got != 7 {
		t.Errorf("label order created distinct series: sum = %d, want 7", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(MVerdicts, "app", "minihdfs", "verdict", "safe").Add(12)
	r.Counter(MVerdicts, "app", "minihdfs", "verdict", "unsafe").Add(3)
	r.Gauge(MInstancesTotal, "app", "minihdfs").Set(40)
	h := r.Histogram(MPValue, []float64{0.001, 0.5}, "app", "minihdfs")
	h.Observe(0.0001)
	h.Observe(0.25)
	h.Observe(0.9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE " + MVerdicts + " counter\n",
		MVerdicts + `{app="minihdfs",verdict="safe"} 12` + "\n",
		MVerdicts + `{app="minihdfs",verdict="unsafe"} 3` + "\n",
		"# TYPE " + MInstancesTotal + " gauge\n",
		MInstancesTotal + `{app="minihdfs"} 40` + "\n",
		"# TYPE " + MPValue + " histogram\n",
		MPValue + `_bucket{app="minihdfs",le="0.001"} 1` + "\n",
		MPValue + `_bucket{app="minihdfs",le="0.5"} 2` + "\n",
		MPValue + `_bucket{app="minihdfs",le="+Inf"} 3` + "\n",
		MPValue + `_sum{app="minihdfs"} `,
		MPValue + `_count{app="minihdfs"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Series of one family must be contiguous under a single TYPE line.
	if strings.Count(out, "# TYPE "+MVerdicts) != 1 {
		t.Errorf("family %s has more than one TYPE line", MVerdicts)
	}
}

// TestPrometheusHistogramCumulative pins the exposition contract the
// observatory relies on: _bucket lines are cumulative (each le bound
// includes all smaller buckets), +Inf equals _count, and bounds appear
// in ascending order.
func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10}, "app", "x")
	for _, v := range []float64{0.05, 0.05, 0.5, 5, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Raw per-bucket counts are 2,1,1,1; cumulative must be 2,3,4,5.
	wants := []string{
		`lat_seconds_bucket{app="x",le="0.1"} 2`,
		`lat_seconds_bucket{app="x",le="1"} 3`,
		`lat_seconds_bucket{app="x",le="10"} 4`,
		`lat_seconds_bucket{app="x",le="+Inf"} 5`,
		`lat_seconds_count{app="x"} 5`,
	}
	last := -1
	for _, want := range wants {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("exposition missing cumulative line %q in:\n%s", want, out)
		}
		if i < last {
			t.Fatalf("bucket bounds out of order: %q appears before previous line", want)
		}
		last = i
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", []float64{1, 2, 4}, "app", "x")
	// 10 obs in (0,1], 10 in (1,2]: median sits at the 1..2 boundary.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	snap := r.HistogramValue("q_seconds", "app", "x")
	if got := snap.Quantile(0.5); got < 0.9 || got > 1.1 {
		t.Errorf("p50 = %v, want ~1.0", got)
	}
	// p95 -> rank 19 of 20, inside the (1,2] bucket near its top.
	if got := snap.Quantile(0.95); got < 1.5 || got > 2.0 {
		t.Errorf("p95 = %v, want in (1.5, 2.0]", got)
	}
	// Observations past the last finite bound clamp to that bound.
	h.Observe(1e9)
	snap = r.HistogramValue("q_seconds", "app", "x")
	if got := snap.Quantile(0.999); got != 4 {
		t.Errorf("quantile in +Inf bucket = %v, want clamp to 4", got)
	}
	// Empty histogram.
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramValueMergesSeries(t *testing.T) {
	r := NewRegistry()
	r.Histogram("m_seconds", []float64{1, 2}, "app", "x", "stage", "a").Observe(0.5)
	r.Histogram("m_seconds", []float64{1, 2}, "app", "x", "stage", "b").Observe(1.5)
	snap := r.HistogramValue("m_seconds", "app", "x")
	if snap.Count != 2 || snap.Sum != 2.0 {
		t.Errorf("merged snapshot = %+v, want count 2 sum 2.0", snap)
	}
	// Filtering by the distinguishing label narrows to one series.
	one := r.HistogramValue("m_seconds", "app", "x", "stage", "a")
	if one.Count != 1 || one.Sum != 0.5 {
		t.Errorf("filtered snapshot = %+v, want count 1 sum 0.5", one)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "msg", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{msg="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong: %s", b.String())
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.CounterAdd(MExecutions, 1, "app", "x")
	o.GaugeSet(MInstancesTotal, 5, "app", "x")
	o.GaugeAdd(MInstancesDone, 1, "app", "x")
	o.Observe(MPValue, 0.5, "app", "x")
	o.RecordTestRun("x", "t", true, false, 0)
	o.RecordExecution("x", "hetero", false)
	o.RecordVerdict("x", "safe", false)
	o.ProgressBegin("x")
	o.ProgressAddTotal(1)
	o.ProgressAddDone(1)
	o.ProgressFinish()
	if s := o.StartSpan("x", NoSpan); s != nil {
		t.Errorf("nil observer returned a live span")
	}
	// An Observer with only metrics must tolerate nil Tracer/Progress too.
	live := New()
	live.RecordTestRun("x", "t", false, false, 0)
	live.ProgressBegin("x")
	live.ProgressFinish()
	live.StartSpan("x", NoSpan).End()
}
