package obs

// PerfSummary is the compact per-run performance record appended to the
// run ledger: where the makespan went, how busy the execution slots
// were, the item-duration and queue-wait tails, and what each savings
// feature contributed. It is derived entirely from the observer at
// campaign end, so it costs nothing during the run, and every field is
// advisory — the equivalence invariant still pins only the reported
// set. `zebraconf -mode trends` compares these fields across runs.
//
// Ledger schema note: records written before this summary existed
// simply lack the "perf" key; readers treat a nil PerfSummary as "no
// perf data" rather than an error, so ledgers mix old and new records
// freely.
type PerfSummary struct {
	// MakespanSeconds duplicates the record's makespan so the summary is
	// self-contained for trend comparison.
	MakespanSeconds float64 `json:"makespan_seconds"`
	// PhaseSeconds breaks the makespan down per campaign phase (prerun /
	// instances / scoring; phases overlap under -stream, so the parts
	// may sum past the whole).
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// UtilizationPct is aggregate slot occupancy over the run: total
	// busy item-seconds divided by makespan x slots, in percent.
	UtilizationPct float64 `json:"utilization_pct"`
	// Slots is the parallel execution budget the utilization divides by
	// (workers x per-worker parallelism in dist mode).
	Slots int `json:"slots,omitempty"`
	// P50ItemSeconds / P95ItemSeconds are the per-work-item duration
	// quantiles, estimated from the item histogram buckets.
	P50ItemSeconds float64 `json:"p50_item_seconds"`
	P95ItemSeconds float64 `json:"p95_item_seconds"`
	// P95QueueWaitSeconds is the queue-wait tail: how long ready work
	// sat waiting for a slot (semaphore wait in-process, coordinator
	// queue wait in dist mode).
	P95QueueWaitSeconds float64 `json:"p95_queue_wait_seconds"`
	// Savings attribution counters.
	Executions         int64   `json:"executions"`
	ExecutionsSaved    int64   `json:"executions_saved"`
	CacheHitRate       float64 `json:"cache_hit_rate"`
	SpeculativeRuns    int64   `json:"speculative_runs,omitempty"`
	SpeculationWins    int64   `json:"speculation_wins,omitempty"`
	TrialsSavedEarly   int64   `json:"trials_saved_early_stop,omitempty"`
	TrialsReallocated  int64   `json:"trials_reallocated,omitempty"`
	WorkerItemSteals   int64   `json:"steals,omitempty"`
	// PerfSamples counts sampler snapshots taken (0 when -perf was off).
	PerfSamples int `json:"perf_samples,omitempty"`
}

// SummarizePerf condenses one finished campaign's observer into a
// PerfSummary. Returns nil when o carries no metrics registry (plain
// unobserved runs append ledger records without perf data, exactly like
// pre-observatory builds).
func SummarizePerf(o *Observer, app string, elapsedSeconds float64, slots int) *PerfSummary {
	if o == nil || o.Metrics == nil {
		return nil
	}
	reg := o.Metrics
	ps := &PerfSummary{
		MakespanSeconds: elapsedSeconds,
		Slots:           slots,
		PerfSamples:     o.Sampler.Count(),
	}

	for _, phase := range []string{"prerun", "instances", "scoring"} {
		h := reg.HistogramValue(MPhaseSeconds, "app", app, "phase", phase)
		if h.Count > 0 {
			if ps.PhaseSeconds == nil {
				ps.PhaseSeconds = make(map[string]float64, 3)
			}
			ps.PhaseSeconds[phase] = h.Sum
		}
	}

	// Busy time: the in-process pool observes MItemRunSeconds per item,
	// the dist coordinator observes MItemSeconds (dispatch to result).
	// A run uses one or the other, so merging both double-counts nothing.
	items := reg.HistogramValue(MItemRunSeconds, "app", app, "stage", "instances")
	items.Merge(reg.HistogramValue(MItemSeconds, "app", app))
	if items.Count > 0 {
		ps.P50ItemSeconds = items.Quantile(0.50)
		ps.P95ItemSeconds = items.Quantile(0.95)
		if elapsedSeconds > 0 && slots > 0 {
			ps.UtilizationPct = 100 * items.Sum / (elapsedSeconds * float64(slots))
			if ps.UtilizationPct > 100 {
				ps.UtilizationPct = 100
			}
		}
	}

	wait := reg.HistogramValue(MSemWaitSeconds, "app", app)
	wait.Merge(reg.HistogramValue(MSchedQueueWait, "app", app))
	if wait.Count > 0 {
		ps.P95QueueWaitSeconds = wait.Quantile(0.95)
	}

	ps.Executions = reg.CounterValue(MExecutions, "app", app) +
		reg.CounterValue(MItemExecutions, "app", app)
	ps.ExecutionsSaved = reg.GaugeValue(MCacheSaved, "app", app)
	if total := ps.Executions + ps.ExecutionsSaved; total > 0 {
		ps.CacheHitRate = float64(ps.ExecutionsSaved) / float64(total)
	}
	ps.SpeculativeRuns = reg.CounterValue(MSpeculativeRuns, "app", app)
	ps.SpeculationWins = reg.CounterValue(MSpeculationWins, "app", app)
	ps.TrialsSavedEarly = reg.CounterValue(MTrialsSaved, "app", app, "kind", "early-stop")
	ps.TrialsReallocated = reg.CounterValue(MTrialsSaved, "app", app, "kind", "reallocated")
	ps.WorkerItemSteals = reg.CounterValue(MSteals, "app", app)
	return ps
}
