package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress renders live campaign progress to a writer (normally stderr)
// on a fixed interval: instances done/total, executions per second, and
// the running verdict tallies. All update methods are lock-free atomics
// and nil-safe, so the campaign calls them unconditionally.
type Progress struct {
	w        io.Writer
	interval time.Duration

	mu    sync.Mutex
	app   string
	start time.Time
	stop  chan struct{}
	done  chan struct{}

	total, finished, executions         atomic.Int64
	safe, unsafe, filtered, homoInvalid atomic.Int64
	saved, specWins                     atomic.Int64
}

// NewProgress returns a reporter writing to w every interval (default
// 2s when interval <= 0).
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Progress{w: w, interval: interval}
}

// Begin resets the tallies for one campaign and starts the render loop.
func (p *Progress) Begin(app string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.app = app
	p.start = time.Now()
	for _, c := range []*atomic.Int64{&p.total, &p.finished, &p.executions,
		&p.safe, &p.unsafe, &p.filtered, &p.homoInvalid,
		&p.saved, &p.specWins} {
		c.Store(0)
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

// Finish stops the render loop and prints a final summary line.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	p.render(true)
}

func (p *Progress) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.render(false)
		}
	}
}

func (p *Progress) render(final bool) {
	p.mu.Lock()
	app, start := p.app, p.start
	p.mu.Unlock()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	execs := p.executions.Load()
	tag := "…"
	if final {
		tag = "done"
	}
	saved := p.saved.Load()
	hitRate := 0.0
	if saved+execs > 0 {
		hitRate = 100 * float64(saved) / float64(saved+execs)
	}
	fmt.Fprintf(p.w, "[zebraconf %s] %d/%d instances · %d execs (%.1f/s) · cache %.1f%% (%d saved) · spec-wins=%d · safe=%d unsafe=%d filtered=%d homo-invalid=%d · %.1fs %s\n",
		app, p.finished.Load(), p.total.Load(), execs, float64(execs)/elapsed,
		hitRate, saved, p.specWins.Load(),
		p.safe.Load(), p.unsafe.Load(), p.filtered.Load(), p.homoInvalid.Load(),
		elapsed, tag)
}

// AddTotal adds newly discovered instances to the denominator.
func (p *Progress) AddTotal(n int64) {
	if p == nil {
		return
	}
	p.total.Add(n)
}

// AddDone marks n instances resolved (leaf verdict, pooled clear, or
// skip of an already-confirmed parameter).
func (p *Progress) AddDone(n int64) {
	if p == nil {
		return
	}
	p.finished.Add(n)
}

// AddExecutions counts unit-test executions for the rate display.
func (p *Progress) AddExecutions(n int64) {
	if p == nil {
		return
	}
	p.executions.Add(n)
}

// AddSaved counts unit-test executions avoided by the memo cache, for
// the cache-hit-rate display.
func (p *Progress) AddSaved(n int64) {
	if p == nil {
		return
	}
	p.saved.Add(n)
}

// AddSpecWin counts speculative copies that beat their primary attempt.
func (p *Progress) AddSpecWin(n int64) {
	if p == nil {
		return
	}
	p.specWins.Add(n)
}

// AddVerdict tallies one instance verdict by its String name.
func (p *Progress) AddVerdict(verdict string) {
	if p == nil {
		return
	}
	switch verdict {
	case "safe":
		p.safe.Add(1)
	case "unsafe":
		p.unsafe.Add(1)
	case "filtered":
		p.filtered.Add(1)
	case "homo-invalid":
		p.homoInvalid.Add(1)
	}
}
