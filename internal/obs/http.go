package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// publishOnce guards the process-global expvar name: expvar panics on
// duplicate Publish, and tests may start several debug servers.
var publishOnce sync.Once

// PerfAPI is the /api/perf response: the sampler ring, oldest first,
// with the newest sample last ("current").
type PerfAPI struct {
	// PeriodMS is the sampling period in milliseconds.
	PeriodMS int64 `json:"period_ms"`
	// Samples counts every sample taken, including ring-evicted ones.
	Samples int `json:"samples"`
	// History is the ring contents, oldest first.
	History []PerfSample `json:"history"`
}

// ServeDebug starts an HTTP debug server on addr exposing:
//
//	/metrics       Prometheus text exposition of o.Metrics
//	/api/campaign  live campaign snapshot (phase, counts, ETA)
//	/api/workers   per-worker health (heartbeats, stalls, in-flight)
//	/api/params    live unsafe-parameter verdict table
//	/debug/vars    expvar (including a zebraconf_metrics snapshot)
//	/debug/pprof   the standard pprof handlers
//
// The /api endpoints answer 503 until the observer carries a Status
// tracker. It returns the bound listener address (useful with ":0") and
// a shutdown function. The server is best-effort: handler errors are
// dropped, and Serve runs on its own goroutine.
func ServeDebug(addr string, o *Observer) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	var reg *Registry
	if o != nil {
		reg = o.Metrics
	}

	publishOnce.Do(func() {
		expvar.Publish("zebraconf_metrics", expvar.Func(func() any {
			if reg == nil {
				return ""
			}
			var b strings.Builder
			_ = reg.WritePrometheus(&b)
			return b.String()
		}))
	})

	apiJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	withStatus := func(render func() any) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			if o.Stat() == nil {
				http.Error(w, `{"error":"live status tracking is not enabled"}`, http.StatusServiceUnavailable)
				return
			}
			apiJSON(w, render())
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.Error(w, "metrics registry not enabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/api/campaign", withStatus(func() any { return o.Stat().Campaign() }))
	mux.HandleFunc("/api/workers", withStatus(func() any {
		ws := o.Stat().Workers()
		if ws == nil {
			ws = []WorkerStatus{}
		}
		return ws
	}))
	mux.HandleFunc("/api/params", withStatus(func() any {
		ps := o.Stat().Params()
		if ps == nil {
			ps = []ParamStatus{}
		}
		return ps
	}))
	mux.HandleFunc("/api/perf", func(w http.ResponseWriter, _ *http.Request) {
		var sampler *Sampler
		if o != nil {
			sampler = o.Sampler
		}
		if sampler == nil {
			http.Error(w, `{"error":"perf sampling is not enabled"}`, http.StatusServiceUnavailable)
			return
		}
		apiJSON(w, PerfAPI{
			PeriodMS: sampler.Period().Milliseconds(),
			Samples:  sampler.Count(),
			History:  sampler.Snapshots(),
		})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
