package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// publishOnce guards the process-global expvar name: expvar panics on
// duplicate Publish, and tests may start several debug servers.
var publishOnce sync.Once

// ServeDebug starts an HTTP debug server on addr exposing:
//
//	/metrics     Prometheus text exposition of reg
//	/debug/vars  expvar (including a zebraconf_metrics snapshot)
//	/debug/pprof the standard pprof handlers
//
// It returns the bound listener address (useful with ":0") and a
// shutdown function. The server is best-effort: handler errors are
// dropped, and Serve runs on its own goroutine.
func ServeDebug(addr string, reg *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}

	publishOnce.Do(func() {
		expvar.Publish("zebraconf_metrics", expvar.Func(func() any {
			var b strings.Builder
			_ = reg.WritePrometheus(&b)
			return b.String()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
