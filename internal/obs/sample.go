package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"
)

// DefaultSamplePeriod is the -perf sampler's default snapshot period.
const DefaultSamplePeriod = 500 * time.Millisecond

// DefaultSampleRing bounds the in-memory sample history (at the default
// period, ten minutes of samples).
const DefaultSampleRing = 1200

// PerfSample is one periodic snapshot of the campaign's performance
// state: runtime stats, live item/execution counters, and the full
// metrics registry. The JSONL perf series (-perf out.jsonl) is one
// sample per line; /api/perf serves the bounded in-memory ring.
type PerfSample struct {
	// TimeUS is microseconds since the sampler started.
	TimeUS int64 `json:"t_us"`

	// Go runtime stats.
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapObjects    uint64 `json:"heap_objects"`
	NumGC          uint32 `json:"num_gc"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`

	// Live campaign state (zero when no status tracker is attached).
	ItemsQueued  int   `json:"items_queued"`
	ItemsRunning int   `json:"items_running"`
	ItemsDone    int   `json:"items_done"`
	Slots        int   `json:"slots"`
	Executions   int64 `json:"executions"`
	Saved        int64 `json:"executions_saved"`

	// Metrics is the registry snapshot (counters and gauges per series,
	// histograms merged per family).
	Metrics Snapshot `json:"metrics"`
}

// Utilization is the sample's instantaneous worker-slot occupancy in
// [0, 1]: items running over available slots.
func (s PerfSample) Utilization() float64 {
	if s.Slots <= 0 {
		return 0
	}
	u := float64(s.ItemsRunning) / float64(s.Slots)
	if u > 1 {
		u = 1
	}
	return u
}

// CacheHitRate is the sample's cumulative cache-hit fraction in [0, 1].
func (s PerfSample) CacheHitRate() float64 {
	total := s.Executions + s.Saved
	if total <= 0 {
		return 0
	}
	return float64(s.Saved) / float64(total)
}

// Sampler periodically snapshots an Observer into a bounded ring and an
// optional JSONL stream. Like the rest of obs it is nil-safe: a nil
// *Sampler no-ops every method, which is the "-perf off" configuration.
type Sampler struct {
	o      *Observer
	period time.Duration
	epoch  time.Time

	mu    sync.Mutex
	enc   *json.Encoder // nil when no JSONL output was requested
	ring  []PerfSample
	head  int // next write position
	count int // total samples taken (ring fill = min(count, len(ring)))

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler over o. w may be nil (ring only); period
// <= 0 means DefaultSamplePeriod; ringCap <= 0 means DefaultSampleRing.
// Call Start to begin sampling and Stop to take the final sample and
// flush.
func NewSampler(o *Observer, period time.Duration, w io.Writer, ringCap int) *Sampler {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	if ringCap <= 0 {
		ringCap = DefaultSampleRing
	}
	s := &Sampler{
		o:      o,
		period: period,
		epoch:  time.Now(),
		ring:   make([]PerfSample, 0, ringCap),
	}
	if w != nil {
		s.enc = json.NewEncoder(w)
	}
	return s
}

// Period reports the sampling period (0 for a nil sampler).
func (s *Sampler) Period() time.Duration {
	if s == nil {
		return 0
	}
	return s.period
}

// Start launches the sampling goroutine. Safe to call once.
func (s *Sampler) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.period)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.SampleNow()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop ends sampling, takes one final sample (so a short campaign still
// records its end state), and returns. Safe to call without Start and
// more than once.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	if s.stop != nil {
		select {
		case <-s.stop:
		default:
			close(s.stop)
		}
		<-s.done
		s.stop = nil
	}
	s.SampleNow()
}

// SampleNow takes one snapshot immediately: runtime stats, live status,
// registry. Appends to the ring (evicting the oldest past capacity) and
// the JSONL stream. Encoding errors are dropped — the sampler must never
// fail the campaign it is measuring.
func (s *Sampler) SampleNow() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sample := PerfSample{
		TimeUS:         time.Since(s.epoch).Microseconds(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapObjects:    ms.HeapObjects,
		NumGC:          ms.NumGC,
		GCPauseTotalNS: ms.PauseTotalNs,
	}
	if s.o != nil {
		if s.o.Metrics != nil {
			sample.Metrics = s.o.Metrics.Snapshot()
		}
		cs := s.o.Stat().Campaign()
		sample.ItemsQueued = cs.ItemsQueued
		sample.ItemsRunning = cs.ItemsRunning
		sample.ItemsDone = cs.ItemsDone
		sample.Slots = cs.Slots
		sample.Executions = cs.Executions
		sample.Saved = cs.ExecutionsSaved
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sample)
	} else {
		s.ring[s.head] = sample
		s.head = (s.head + 1) % len(s.ring)
	}
	s.count++
	if s.enc != nil {
		_ = s.enc.Encode(sample)
	}
}

// Snapshots returns the ring's samples oldest-first (a copy).
func (s *Sampler) Snapshots() []PerfSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PerfSample, 0, len(s.ring))
	if len(s.ring) < cap(s.ring) {
		out = append(out, s.ring...)
		return out
	}
	out = append(out, s.ring[s.head:]...)
	out = append(out, s.ring[:s.head]...)
	return out
}

// Count reports the total number of samples taken, including any the
// ring has evicted.
func (s *Sampler) Count() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Current returns the most recent sample and whether one exists.
func (s *Sampler) Current() (PerfSample, bool) {
	if s == nil {
		return PerfSample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return PerfSample{}, false
	}
	// The newest sample sits just before the next write position (head
	// is 0 until the ring fills, so both regimes reduce to head-1 mod n).
	i := s.head - 1
	if i < 0 {
		i = len(s.ring) - 1
	}
	return s.ring[i], true
}

// ReadPerf parses a JSONL perf series, for the offline analyzer and
// tests.
func ReadPerf(r io.Reader) ([]PerfSample, error) {
	dec := json.NewDecoder(r)
	var out []PerfSample
	for {
		var s PerfSample
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, s)
	}
}
