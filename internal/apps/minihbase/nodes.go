package minihbase

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"zebraconf/internal/apps/common"
	"zebraconf/internal/apps/minihdfs"
	"zebraconf/internal/confkit"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/rpcsim"
)

// RegisterRSReq announces a region server to the master.
type RegisterRSReq struct {
	RSID string
	Addr string
}

// LocateReq resolves which region server owns a row.
type LocateReq struct {
	Table string
	Key   string
}

// LocateResp names the owning region server.
type LocateResp struct {
	RSID string
	Addr string
}

// RowReq is a put or get.
type RowReq struct {
	Table string
	Key   string
	Value string
}

// RowResp returns a row value.
type RowResp struct {
	Value string
	Found bool
}

// FlushReq persists a table's memstore to HDFS.
type FlushReq struct {
	Table string
}

// ScanReq reads rows by key prefix.
type ScanReq struct {
	Table  string
	Prefix string
	Limit  int64
}

// ScanResp returns matching rows, sorted by key; More reports truncation.
type ScanResp struct {
	Rows []RowReq
	More bool
}

// HMaster assigns row ranges to region servers (hash assignment — a
// faithful-enough stand-in for region assignment).
type HMaster struct {
	env  *harness.Env
	conf *confkit.Conf
	srv  *rpcsim.Server

	mu  sync.Mutex
	rss []RegisterRSReq
}

// StartHMaster boots the master at its configured address.
func StartHMaster(env *harness.Env, conf *confkit.Conf) (*HMaster, error) {
	env.RT.StartInit(TypeHMaster)
	defer env.RT.StopInit()
	m := &HMaster{env: env, conf: conf.RefToClone()}
	_ = m.conf.GetBool(ParamSanityChecks)
	_ = m.conf.GetTicks(ParamBalancerPeriod)
	_ = m.conf.Get(ParamZKQuorum)
	srv, err := common.ServeIPC(env.Fabric, m.conf.Get(ParamMasterAddress), m.conf, env.Scale,
		common.SecurityFromConf(m.conf), m.handle)
	if err != nil {
		return nil, fmt.Errorf("minihbase: start hmaster: %w", err)
	}
	m.srv = srv
	return m, nil
}

// Stop shuts the master down.
func (m *HMaster) Stop() { m.srv.Close() }

func (m *HMaster) handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "registerRS":
		var req RegisterRSReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		m.mu.Lock()
		m.rss = append(m.rss, req)
		sort.Slice(m.rss, func(i, j int) bool { return m.rss[i].RSID < m.rss[j].RSID })
		m.mu.Unlock()
		return json.Marshal(struct{}{})
	case "compactAll":
		// A cluster-wide major compaction is a deliberately slow admin
		// RPC exercising the IPC timeout/keepalive machinery.
		m.env.Scale.Sleep(600)
		return json.Marshal(struct{}{})
	case "locate":
		var req LocateReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if len(m.rss) == 0 {
			return nil, fmt.Errorf("minihbase: no region servers registered")
		}
		h := 0
		for _, c := range req.Table + "/" + req.Key {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		rs := m.rss[h%len(m.rss)]
		return json.Marshal(LocateResp{RSID: rs.RSID, Addr: rs.Addr})
	default:
		return nil, fmt.Errorf("minihbase: hmaster: unknown method %q", method)
	}
}

// HRegionServer stores rows in memstores and flushes them to HDFS with an
// embedded DFS client configured from the region server's OWN
// configuration (which is how HDFS client parameters become testable
// through HBase, per Table 5's layering assumption).
type HRegionServer struct {
	env  *harness.Env
	conf *confkit.Conf
	id   string
	srv  *rpcsim.Server
	dfs  *minihdfs.Client

	memstoreFlush int64

	mu       sync.Mutex
	memstore map[string]map[string]string // table -> key -> value
}

// StartHRegionServer boots a region server, registers with the master, and
// opens its embedded DFS client against nnAddr.
func StartHRegionServer(env *harness.Env, conf *confkit.Conf, id, nnAddr string) (*HRegionServer, error) {
	env.RT.StartInit(TypeRegionServer)
	defer env.RT.StopInit()

	rs := &HRegionServer{
		env:      env,
		conf:     conf.RefToClone(),
		id:       id,
		memstore: make(map[string]map[string]string),
	}
	_ = rs.conf.GetInt(ParamRSHandlerCount)
	_ = rs.conf.GetInt(ParamMaxFileSize)
	rs.memstoreFlush = rs.conf.GetInt(ParamMemstoreFlush)

	dfs, err := minihdfs.NewClient(env, rs.conf, nnAddr)
	if err != nil {
		return nil, fmt.Errorf("minihbase: regionserver %s cannot reach hdfs: %w", id, err)
	}
	rs.dfs = dfs

	srv, err := common.ServeIPC(env.Fabric, id, rs.conf, env.Scale,
		common.SecurityFromConf(rs.conf), rs.handle)
	if err != nil {
		return nil, fmt.Errorf("minihbase: start regionserver %s: %w", id, err)
	}
	rs.srv = srv

	master, err := common.DialIPC(env.Fabric, rs.conf.Get(ParamMasterAddress), rs.conf, env.Scale,
		common.SecurityFromConf(rs.conf))
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("minihbase: regionserver %s cannot reach hmaster: %w", id, err)
	}
	if err := master.CallJSON("registerRS", RegisterRSReq{RSID: id, Addr: id}, nil); err != nil {
		srv.Close()
		return nil, fmt.Errorf("minihbase: regionserver %s registration: %w", id, err)
	}
	return rs, nil
}

// Stop shuts the region server down.
func (rs *HRegionServer) Stop() { rs.srv.Close() }

// OpenRegionDirect is the paper's §7.1 HBase false-positive trap: a unit
// test calls this node-internal method directly, passing the CLIENT's
// configuration object; in a real deployment the region server would use
// its own. The cross-check fails under per-node values for
// hbase.hregion.memstore.block.multiplier.
func (rs *HRegionServer) OpenRegionDirect(callerConf *confkit.Conf, region string) error {
	callerMult := callerConf.GetInt(ParamMemstoreBlockMult)
	ownMult := rs.conf.GetInt(ParamMemstoreBlockMult)
	if callerMult != ownMult {
		return fmt.Errorf(
			"minihbase: regionserver %s: open region %s: memstore block multiplier %d (caller) vs %d (server)",
			rs.id, region, callerMult, ownMult)
	}
	rs.mu.Lock()
	if rs.memstore[region] == nil {
		rs.memstore[region] = make(map[string]string)
	}
	rs.mu.Unlock()
	return nil
}

func (rs *HRegionServer) handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "put":
		var req RowReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		rs.mu.Lock()
		if rs.memstore[req.Table] == nil {
			rs.memstore[req.Table] = make(map[string]string)
		}
		rs.memstore[req.Table][req.Key] = req.Value
		rs.mu.Unlock()
		return json.Marshal(struct{}{})
	case "get":
		var req RowReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		rs.mu.Lock()
		val, ok := rs.memstore[req.Table][req.Key]
		rs.mu.Unlock()
		return json.Marshal(RowResp{Value: val, Found: ok})
	case "scan":
		var req ScanReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		return json.Marshal(rs.scan(&req))
	case "flush":
		var req FlushReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		if err := rs.flush(req.Table); err != nil {
			return nil, err
		}
		return json.Marshal(struct{}{})
	default:
		return nil, fmt.Errorf("minihbase: regionserver %s: unknown method %q", rs.id, method)
	}
}

// scan returns the rows of a table whose keys carry the given prefix,
// sorted, capped at Limit (or the region server's configured scanner
// caching when Limit is zero — a local batching knob, heterogeneous-safe).
func (rs *HRegionServer) scan(req *ScanReq) ScanResp {
	limit := req.Limit
	if limit <= 0 {
		limit = rs.conf.GetInt(ParamScannerCaching)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var keys []string
	for k := range rs.memstore[req.Table] {
		if strings.HasPrefix(k, req.Prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var resp ScanResp
	for _, k := range keys {
		if int64(len(resp.Rows)) >= limit {
			resp.More = true
			break
		}
		resp.Rows = append(resp.Rows, RowReq{Table: req.Table, Key: k, Value: rs.memstore[req.Table][k]})
	}
	return resp
}

// flush persists a table's memstore as an HFile-like blob on HDFS, going
// through the full checksummed write pipeline.
func (rs *HRegionServer) flush(table string) error {
	rs.mu.Lock()
	rows := rs.memstore[table]
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var blob []byte
	for _, k := range keys {
		blob = append(blob, []byte(k+"="+rows[k]+"\n")...)
	}
	rs.mu.Unlock()
	if len(blob) == 0 {
		return nil
	}
	if err := rs.dfs.Mkdir("/hbase"); err != nil && !strings.Contains(err.Error(), "exists") {
		return err
	}
	if err := rs.dfs.Mkdir("/hbase/" + table); err != nil && !strings.Contains(err.Error(), "exists") {
		return err
	}
	path := fmt.Sprintf("/hbase/%s/%s.hfile", table, rs.id)
	return rs.dfs.WriteFile(path, blob)
}

// ThriftServer fronts a region server with the mini-Thrift protocol,
// transcoded per ITS OWN compact/framed settings (Table 3).
type ThriftServer struct {
	env  *harness.Env
	conf *confkit.Conf
	srv  *rpcsim.Server
	rs   *rpcsim.Conn
}

// StartThriftServer boots the thrift gateway in front of rsAddr.
func StartThriftServer(env *harness.Env, conf *confkit.Conf, rsAddr string) (*ThriftServer, error) {
	env.RT.StartInit(TypeThriftServer)
	defer env.RT.StopInit()

	ts := &ThriftServer{env: env, conf: conf.RefToClone()}
	rsConn, err := common.DialIPC(env.Fabric, rsAddr, ts.conf, env.Scale, common.SecurityFromConf(ts.conf))
	if err != nil {
		return nil, fmt.Errorf("minihbase: thrift server cannot reach regionserver: %w", err)
	}
	ts.rs = rsConn
	srv, err := env.Fabric.Serve(ts.conf.Get(ParamThriftAddress), rpcsim.Security{}, env.Scale, ts.handle)
	if err != nil {
		return nil, fmt.Errorf("minihbase: start thrift server: %w", err)
	}
	ts.srv = srv
	return ts, nil
}

// Stop shuts the gateway down.
func (ts *ThriftServer) Stop() { ts.srv.Close() }

// handle unwraps the thrift envelope with the SERVER's settings, forwards
// the row operation, and wraps the response the same way.
func (ts *ThriftServer) handle(method string, payload []byte) ([]byte, error) {
	compact := ts.conf.GetBool(ParamThriftCompact)
	framed := ts.conf.GetBool(ParamThriftFramed)
	body, err := thriftDecode(compact, framed, payload)
	if err != nil {
		return nil, err
	}
	var req RowReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("minihbase: thrift: bad %s body: %w", method, err)
	}
	var respBody []byte
	switch method {
	case "put":
		if err := ts.rs.CallJSON("put", req, nil); err != nil {
			return nil, err
		}
		respBody, _ = json.Marshal(struct{}{})
	case "get":
		var resp RowResp
		if err := ts.rs.CallJSON("get", req, &resp); err != nil {
			return nil, err
		}
		respBody, _ = json.Marshal(resp)
	default:
		return nil, fmt.Errorf("minihbase: thrift: unknown method %q", method)
	}
	return thriftEncode(compact, framed, respBody), nil
}

// ThriftCall performs one client-side thrift operation with the CLIENT's
// compact/framed settings.
func ThriftCall(env *harness.Env, conf *confkit.Conf, method string, req RowReq, resp any) error {
	compact := conf.GetBool(ParamThriftCompact)
	framed := conf.GetBool(ParamThriftFramed)
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	conn, err := env.Fabric.Dial(conf.Get(ParamThriftAddress), rpcsim.Security{}, env.Scale)
	if err != nil {
		return fmt.Errorf("minihbase: thrift admin cannot connect: %w", err)
	}
	wire, err := conn.Call(method, thriftEncode(compact, framed, body))
	if err != nil {
		return err
	}
	out, err := thriftDecode(compact, framed, wire)
	if err != nil {
		return fmt.Errorf("minihbase: thrift admin: decode response: %w", err)
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(out, resp)
}
