package minihbase

import (
	"strings"
	"testing"

	"zebraconf/internal/core/agent"
	"zebraconf/internal/core/harness"
)

// TestBaselineSuite runs every registered unit test once under the default
// homogeneous configuration.
func TestBaselineSuite(t *testing.T) {
	t.Parallel()
	app := App()
	for i := range app.Tests {
		ut := &app.Tests[i]
		t.Run(ut.Name, func(t *testing.T) {
			t.Parallel()
			out := harness.RunOnce(app, ut, agent.Options{}, 11)
			if strings.HasPrefix(ut.Name, "TestFlaky") {
				return
			}
			if out.Failed {
				t.Fatalf("baseline failure: %s", out.Msg)
			}
		})
	}
}
