// Package minihbase is a miniature HBase analog: an HMaster assigning
// regions to HRegionServers, region servers flushing to an embedded
// minihdfs cluster, and a ThriftServer speaking a tiny Thrift-like wire
// format with configurable compact/framed transports.
//
// It reproduces the HBase rows of the paper's Table 3
// (hbase.regionserver.thrift.compact and .framed), the paper's HBase
// false-positive example (§7.1: a test opening a region directly on the
// region server with the client's configuration object), and the layering
// property Table 5 assumes: HBase depends on HDFS, so an HBase campaign
// also exercises NameNode/DataNode parameters.
package minihbase

import (
	"zebraconf/internal/apps/common"
	"zebraconf/internal/apps/minihdfs"
	"zebraconf/internal/confkit"
)

// Node type names (paper Table 2). The embedded minihdfs nodes keep their
// own type names.
const (
	TypeHMaster      = "HMaster"
	TypeRegionServer = "HRegionServer"
	TypeThriftServer = "ThriftServer"
)

// Parameter names.
const (
	ParamThriftCompact = "hbase.regionserver.thrift.compact"
	ParamThriftFramed  = "hbase.regionserver.thrift.framed"

	// False-positive trap (the paper's §7.1 HBase example).
	ParamMemstoreBlockMult = "hbase.hregion.memstore.block.multiplier"

	// Heterogeneous-safe parameters.
	ParamRSHandlerCount = "hbase.regionserver.handler.count"
	ParamMemstoreFlush  = "hbase.hregion.memstore.flush.size"
	ParamClientRetries  = "hbase.client.retries.number"
	ParamZKQuorum       = "hbase.zookeeper.quorum"
	ParamMaxFileSize    = "hbase.hregion.max.filesize"
	ParamScannerCaching = "hbase.client.scanner.caching"
	ParamMasterAddress  = "hbase.master.address"
	ParamThriftAddress  = "hbase.regionserver.thrift.address"
	ParamSanityChecks   = "hbase.table.sanity.checks"
	ParamBalancerPeriod = "hbase.balancer.period"
)

// NewRegistry builds the minihbase schema. Like real HBase it layers on
// HDFS (and through it on Hadoop Common), so an HBase campaign covers
// those parameters too.
func NewRegistry() *confkit.Registry {
	r := confkit.NewRegistry()
	r.Register(
		confkit.Param{Name: ParamThriftCompact, Kind: confkit.Bool, Default: "false",
			Doc:   "use the Thrift compact protocol",
			Truth: confkit.SafetyUnsafe,
			Why:   "Thrift Admin fails to communicate with the Thrift Server (protocol id mismatch)"},
		confkit.Param{Name: ParamThriftFramed, Kind: confkit.Bool, Default: "false",
			Doc:   "use the Thrift framed transport",
			Truth: confkit.SafetyUnsafe,
			Why:   "Thrift Admin fails to communicate with the Thrift Server (invalid frame size)"},
		confkit.Param{Name: ParamMemstoreBlockMult, Kind: confkit.Int, Default: "4",
			Candidates: []string{"4", "8"},
			Doc:        "memstore block threshold multiplier",
			Truth:      confkit.SafetyFalsePositive,
			Why:        "a unit test opens a region directly on the HRegionServer with the client's configuration object, impossible over a real RPC (§7.1)"},
		confkit.Param{Name: ParamRSHandlerCount, Kind: confkit.Int, Default: "30",
			Doc: "region server handler threads"},
		confkit.Param{Name: ParamMemstoreFlush, Kind: confkit.Int, Default: "2048",
			Doc: "memstore flush threshold in bytes (scaled)"},
		confkit.Param{Name: ParamClientRetries, Kind: confkit.Int, Default: "5",
			Doc: "client operation retries"},
		confkit.Param{Name: ParamZKQuorum, Kind: confkit.String, Default: "zk1",
			Doc: "zookeeper quorum (unused placeholder)"},
		confkit.Param{Name: ParamMaxFileSize, Kind: confkit.Int, Default: "65536",
			Doc: "region split threshold (scaled)"},
		confkit.Param{Name: ParamScannerCaching, Kind: confkit.Int, Default: "100",
			Doc: "rows fetched per scanner RPC"},
		confkit.Param{Name: ParamMasterAddress, Kind: confkit.String, Default: "hmaster",
			Doc: "HMaster IPC address"},
		confkit.Param{Name: ParamThriftAddress, Kind: confkit.String, Default: "thrift",
			Doc: "ThriftServer address"},
		confkit.Param{Name: ParamSanityChecks, Kind: confkit.Bool, Default: "true",
			Doc: "validate table descriptors"},
		confkit.Param{Name: ParamBalancerPeriod, Kind: confkit.Ticks, Default: "30000",
			Doc: "region balancer cadence"},
	)
	r.Include(minihdfs.NewRegistry())
	return r
}

// Keep the common import for the IPC helpers used by the node files.
var _ = common.SecurityFromConf
