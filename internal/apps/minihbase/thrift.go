package minihbase

import (
	"encoding/binary"
	"fmt"
)

// Mini-Thrift wire format. Like the real Thrift stack, the protocol
// (binary vs compact) is announced by a protocol-id byte, and the framed
// transport wraps messages in a length prefix. Each endpoint encodes and
// decodes with ITS OWN configuration — so compact/framed skew fails with
// exactly the errors real Thrift produces: "unknown protocol id" and
// "invalid frame size".

const (
	binaryProtocolID  = 0x80
	compactProtocolID = 0x82
	protocolVersion   = 0x01
	// maxFrameSize guards the framed decoder, like TFramedTransport's
	// maximum message size.
	maxFrameSize = 1 << 20
)

// thriftEncode wraps body per the compact/framed settings.
func thriftEncode(compact, framed bool, body []byte) []byte {
	header := byte(binaryProtocolID)
	if compact {
		header = compactProtocolID
	}
	msg := make([]byte, 0, len(body)+6)
	msg = append(msg, header, protocolVersion)
	msg = append(msg, body...)
	if !framed {
		return msg
	}
	out := make([]byte, 4, 4+len(msg))
	binary.BigEndian.PutUint32(out, uint32(len(msg)))
	return append(out, msg...)
}

// thriftDecode unwraps a message per the receiver's compact/framed
// settings.
func thriftDecode(compact, framed bool, wire []byte) ([]byte, error) {
	if framed {
		if len(wire) < 4 {
			return nil, fmt.Errorf("minihbase: thrift: truncated frame header")
		}
		size := binary.BigEndian.Uint32(wire)
		if size > maxFrameSize {
			return nil, fmt.Errorf("minihbase: thrift: invalid frame size %d (peer not using framed transport?)", size)
		}
		wire = wire[4:]
		if uint32(len(wire)) != size {
			return nil, fmt.Errorf("minihbase: thrift: frame size %d, have %d bytes", size, len(wire))
		}
	}
	if len(wire) < 2 {
		return nil, fmt.Errorf("minihbase: thrift: truncated message")
	}
	want := byte(binaryProtocolID)
	if compact {
		want = compactProtocolID
	}
	if wire[0] != want {
		return nil, fmt.Errorf("minihbase: thrift: unknown protocol id 0x%02x (expected 0x%02x)", wire[0], want)
	}
	if wire[1] != protocolVersion {
		return nil, fmt.Errorf("minihbase: thrift: unsupported protocol version 0x%02x", wire[1])
	}
	return wire[2:], nil
}
