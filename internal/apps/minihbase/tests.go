package minihbase

import (
	"fmt"
	"strings"

	"zebraconf/internal/apps/common"
	"zebraconf/internal/apps/minihdfs"
	"zebraconf/internal/confkit"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/rpcsim"
)

// App returns the minihbase application descriptor. Its node-type list
// includes the embedded HDFS types: an HBase campaign also tests them
// (paper §7.2, the Table 5 "Original" row assumption).
func App() *harness.App {
	return &harness.App{
		Name:   "minihbase",
		Schema: NewRegistry,
		NodeTypes: []string{
			TypeHMaster, TypeRegionServer, TypeThriftServer,
			minihdfs.TypeNameNode, minihdfs.TypeDataNode,
		},
		Annotations: harness.AnnotationStats{NodeLines: 10, ConfLines: 7},
		Tests:       testSuite(),
	}
}

func testSuite() []harness.UnitTest {
	tests := []harness.UnitTest{
		{Name: "TestPutGet", Run: testPutGet},
		{Name: "TestPutGetManyRows", Run: testPutGetManyRows},
		{Name: "TestFlushToHDFS", Run: testFlushToHDFS},
		{Name: "TestThriftAdmin", Run: testThriftAdmin},
		{Name: "TestThriftRoundTrips", Run: testThriftRoundTrips},
		{Name: "TestMasterAssignment", Run: testMasterAssignment},
		{Name: "TestScanPrefix", Run: testScanPrefix},
		{Name: "TestMajorCompaction", Run: testMajorCompaction},
		{Name: "TestOpenRegionDirect", Run: testOpenRegionDirect},
		{Name: "TestFlakyRegionMove", Run: testFlakyRegionMove},
	}
	return append(tests, functionLevelTests()...)
}

// hbaseCluster is everything an HBase test starts: embedded HDFS plus the
// HBase nodes, all sharing the test's configuration object.
type hbaseCluster struct {
	dfs    *minihdfs.Cluster
	master *HMaster
	rss    []*HRegionServer
	thrift *ThriftServer
}

func startHBase(t *harness.T, regionServers int, withThrift bool) (*hbaseCluster, *confkit.Conf) {
	conf := t.Env.RT.NewConf()
	dfs, err := minihdfs.StartCluster(t.Env, conf, minihdfs.ClusterOptions{DataNodes: 1})
	t.NoErr(err, "start embedded hdfs")

	c := &hbaseCluster{dfs: dfs}
	c.master, err = StartHMaster(t.Env, conf)
	t.NoErr(err, "start hmaster")
	t.Env.Defer(c.master.Stop)
	for i := 0; i < regionServers; i++ {
		rs, err := StartHRegionServer(t.Env, conf, fmt.Sprintf("rs%d", i), minihdfs.NNAddr)
		t.NoErr(err, "start regionserver")
		t.Env.Defer(rs.Stop)
		c.rss = append(c.rss, rs)
	}
	if withThrift {
		c.thrift, err = StartThriftServer(t.Env, conf, "rs0")
		t.NoErr(err, "start thrift server")
		t.Env.Defer(c.thrift.Stop)
	}
	return c, conf
}

// hbaseClient performs client operations with the unit test's
// configuration: locate through the master, then talk to the owning
// region server.
type hbaseClient struct {
	t      *harness.T
	conf   *confkit.Conf
	master *rpcsim.Conn
}

func newHBaseClient(t *harness.T, conf *confkit.Conf) *hbaseClient {
	conn, err := common.DialIPC(t.Env.Fabric, conf.Get(ParamMasterAddress), conf, t.Env.Scale,
		common.SecurityFromConf(conf))
	t.NoErr(err, "dial hmaster")
	_ = conf.GetInt(ParamClientRetries)
	_ = conf.GetInt(ParamScannerCaching)
	return &hbaseClient{t: t, conf: conf, master: conn}
}

func (c *hbaseClient) regionConn(table, key string) *rpcsim.Conn {
	var loc LocateResp
	c.t.NoErr(c.master.CallJSON("locate", LocateReq{Table: table, Key: key}, &loc), "locate row")
	conn, err := common.DialIPC(c.t.Env.Fabric, loc.Addr, c.conf, c.t.Env.Scale,
		common.SecurityFromConf(c.conf))
	c.t.NoErr(err, "dial regionserver")
	return conn
}

func (c *hbaseClient) put(table, key, value string) {
	conn := c.regionConn(table, key)
	c.t.NoErr(conn.CallJSON("put", RowReq{Table: table, Key: key, Value: value}, nil), "put row")
}

func (c *hbaseClient) get(table, key string) (string, bool) {
	conn := c.regionConn(table, key)
	var resp RowResp
	c.t.NoErr(conn.CallJSON("get", RowReq{Table: table, Key: key}, &resp), "get row")
	return resp.Value, resp.Found
}

func testPutGet(t *harness.T) {
	_, conf := startHBase(t, 2, false)
	client := newHBaseClient(t, conf)
	client.put("tbl", "row1", "v1")
	if val, ok := client.get("tbl", "row1"); !ok || val != "v1" {
		t.Fatalf("get(tbl,row1) = (%q,%v), want (v1,true)", val, ok)
	}
}

func testPutGetManyRows(t *harness.T) {
	_, conf := startHBase(t, 2, false)
	client := newHBaseClient(t, conf)
	for i := 0; i < 20; i++ {
		client.put("many", fmt.Sprintf("row-%02d", i), fmt.Sprintf("val-%02d", i))
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("row-%02d", i)
		if val, ok := client.get("many", key); !ok || val != fmt.Sprintf("val-%02d", i) {
			t.Fatalf("get(many,%s) = (%q,%v)", key, val, ok)
		}
	}
}

// testFlushToHDFS drives a region server flush through the embedded HDFS
// write pipeline — HDFS checksum and transfer parameters are exercised by
// an HBase test, exactly the layering the paper's counting assumes.
func testFlushToHDFS(t *harness.T) {
	c, conf := startHBase(t, 1, false)
	client := newHBaseClient(t, conf)
	client.put("persist", "k", "v")

	rsConn, err := common.DialIPC(t.Env.Fabric, "rs0", conf, t.Env.Scale, common.SecurityFromConf(conf))
	t.NoErr(err, "dial regionserver")
	t.NoErr(rsConn.CallJSON("flush", FlushReq{Table: "persist"}, nil), "flush memstore to hdfs")

	dfsClient, err := c.dfs.Client(conf)
	t.NoErr(err, "hdfs client")
	data, err := dfsClient.ReadFile("/hbase/persist/rs0.hfile")
	t.NoErr(err, "read flushed hfile")
	if !strings.Contains(string(data), "k=v") {
		t.Fatalf("flushed hfile missing row: %q", data)
	}
}

// testThriftAdmin talks to the ThriftServer with the CLIENT's thrift
// protocol settings (Table 3: thrift.compact / thrift.framed).
func testThriftAdmin(t *harness.T) {
	_, conf := startHBase(t, 1, true)
	t.NoErr(ThriftCall(t.Env, conf, "put", RowReq{Table: "tt", Key: "a", Value: "1"}, nil), "thrift put")
	var resp RowResp
	t.NoErr(ThriftCall(t.Env, conf, "get", RowReq{Table: "tt", Key: "a"}, &resp), "thrift get")
	if !resp.Found || resp.Value != "1" {
		t.Fatalf("thrift get = %+v, want value 1", resp)
	}
}

func testThriftRoundTrips(t *harness.T) {
	_, conf := startHBase(t, 1, true)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		t.NoErr(ThriftCall(t.Env, conf, "put", RowReq{Table: "loop", Key: key, Value: key}, nil), "thrift put loop")
		var resp RowResp
		t.NoErr(ThriftCall(t.Env, conf, "get", RowReq{Table: "loop", Key: key}, &resp), "thrift get loop")
		if resp.Value != key {
			t.Fatalf("thrift round trip %d = %q", i, resp.Value)
		}
	}
}

// testMasterAssignment checks that rows spread across region servers.
func testMasterAssignment(t *harness.T) {
	c, conf := startHBase(t, 3, false)
	client := newHBaseClient(t, conf)
	for i := 0; i < 30; i++ {
		client.put("spread", fmt.Sprintf("key-%03d", i), "x")
	}
	nonEmpty := 0
	for _, rs := range c.rss {
		rs.mu.Lock()
		if len(rs.memstore["spread"]) > 0 {
			nonEmpty++
		}
		rs.mu.Unlock()
	}
	if nonEmpty < 2 {
		t.Fatalf("rows landed on %d region servers, want at least 2", nonEmpty)
	}
}

// testScanPrefix reads rows back through the scan API.
func testScanPrefix(t *harness.T) {
	_, conf := startHBase(t, 1, false)
	client := newHBaseClient(t, conf)
	for i := 0; i < 6; i++ {
		client.put("sc", fmt.Sprintf("row-%d", i), fmt.Sprintf("v%d", i))
	}
	client.put("sc", "other", "x")
	conn := client.regionConn("sc", "row-0")
	var resp ScanResp
	t.NoErr(conn.CallJSON("scan", ScanReq{Table: "sc", Prefix: "row-", Limit: 10}, &resp), "scan rows")
	if len(resp.Rows) != 6 || resp.More {
		t.Fatalf("scan returned %d rows (more=%v), want 6", len(resp.Rows), resp.More)
	}
	var limited ScanResp
	t.NoErr(conn.CallJSON("scan", ScanReq{Table: "sc", Prefix: "row-", Limit: 2}, &limited), "limited scan")
	if len(limited.Rows) != 2 || !limited.More {
		t.Fatalf("limited scan returned %d rows (more=%v), want 2 truncated", len(limited.Rows), limited.More)
	}
}

// testMajorCompaction drives the master's slow compaction RPC, exposing
// ipc.client.rpc-timeout.ms skew (Table 3, Hadoop Common).
func testMajorCompaction(t *harness.T) {
	_, conf := startHBase(t, 1, false)
	client := newHBaseClient(t, conf)
	t.NoErr(client.master.CallJSON("compactAll", struct{}{}, nil), "major compaction (slow RPC)")
}

// testOpenRegionDirect is the paper's §7.1 HBase false positive: the test
// manipulates node internals with the client's configuration object.
func testOpenRegionDirect(t *harness.T) {
	c, conf := startHBase(t, 1, false)
	t.NoErr(c.rss[0].OpenRegionDirect(conf, "direct-region"), "open region directly on the regionserver")
}

func testFlakyRegionMove(t *harness.T) {
	_, conf := startHBase(t, 2, false)
	client := newHBaseClient(t, conf)
	client.put("mv", "r", "v")
	if t.Env.Float64() < 0.2 {
		t.Fatalf("simulated race: region moved during client operation")
	}
}

func functionLevelTests() []harness.UnitTest {
	return []harness.UnitTest{
		{Name: "TestThriftEncodeDecode", Run: func(t *harness.T) {
			for _, compact := range []bool{false, true} {
				for _, framed := range []bool{false, true} {
					wire := thriftEncode(compact, framed, []byte("body"))
					out, err := thriftDecode(compact, framed, wire)
					t.NoErr(err, "thrift round trip")
					if string(out) != "body" {
						t.Fatalf("round trip (compact=%v framed=%v) = %q", compact, framed, out)
					}
				}
			}
		}},
		{Name: "TestThriftProtocolMismatch", Run: func(t *harness.T) {
			wire := thriftEncode(true, false, []byte("x"))
			if _, err := thriftDecode(false, false, wire); err == nil {
				t.Fatalf("binary decoder accepted a compact message")
			}
		}},
		{Name: "TestThriftFramingMismatch", Run: func(t *harness.T) {
			wire := thriftEncode(false, false, []byte("x"))
			if _, err := thriftDecode(false, true, wire); err == nil {
				t.Fatalf("framed decoder accepted an unframed message")
			}
			framedWire := thriftEncode(false, true, []byte("x"))
			if _, err := thriftDecode(false, false, framedWire); err == nil {
				t.Fatalf("unframed decoder accepted a framed message")
			}
		}},
		{Name: "TestRegistryLayersHDFS", Run: func(t *harness.T) {
			r := NewRegistry()
			if r.Lookup(minihdfs.ParamChecksumType) == nil {
				t.Fatalf("hbase registry does not include hdfs parameters")
			}
			if r.Lookup(common.ParamRPCProtection) == nil {
				t.Fatalf("hbase registry does not include hadoop common parameters")
			}
		}},
	}
}
