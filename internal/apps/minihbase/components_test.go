package minihbase

import (
	"strings"
	"testing"
	"testing/quick"

	"zebraconf/internal/apps/minihdfs"
	"zebraconf/internal/core/harness"
)

func newTestEnv(t *testing.T) *harness.Env {
	t.Helper()
	env := harness.NewEnv(NewRegistry(), nil, 1)
	t.Cleanup(env.Close)
	return env
}

// Property: every thrift profile round-trips arbitrary bodies, and any
// single-flag skew fails decoding.
func TestThriftWireProperty(t *testing.T) {
	t.Parallel()
	fn := func(body []byte, compact, framed bool) bool {
		wire := thriftEncode(compact, framed, body)
		out, err := thriftDecode(compact, framed, wire)
		if err != nil || string(out) != string(body) {
			return false
		}
		if _, err := thriftDecode(!compact, framed, wire); err == nil {
			return false // protocol skew must fail
		}
		if _, err := thriftDecode(compact, !framed, wire); err == nil && len(body) > 0 {
			// Framing skew must fail. (An empty unframed message read as
			// framed is caught by the truncation check.)
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThriftFrameSizeGuard(t *testing.T) {
	t.Parallel()
	// An unframed binary message read by a framed decoder reports an
	// invalid frame size — the real TFramedTransport symptom.
	wire := thriftEncode(false, false, []byte("payload"))
	_, err := thriftDecode(false, true, wire)
	if err == nil || !strings.Contains(err.Error(), "frame size") {
		t.Fatalf("framed decode of unframed data: %v", err)
	}
}

func TestMasterLocateConsistency(t *testing.T) {
	t.Parallel()
	env := newTestEnv(t)
	conf := env.RT.NewConf()
	m, err := StartHMaster(env, conf)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if _, err := m.handle("locate", []byte(`{"Table":"t","Key":"k"}`)); err == nil {
		t.Fatal("locate with no region servers succeeded")
	}
	if _, err := m.handle("registerRS", []byte(`{"RSID":"rs0","Addr":"rs0"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.handle("registerRS", []byte(`{"RSID":"rs1","Addr":"rs1"}`)); err != nil {
		t.Fatal(err)
	}
	// Locate is deterministic for a fixed row.
	a, err := m.handle("locate", []byte(`{"Table":"t","Key":"row"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.handle("locate", []byte(`{"Table":"t","Key":"row"}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("locate not deterministic: %s vs %s", a, b)
	}
}

func TestRegionServerOpenRegionCrossCheck(t *testing.T) {
	t.Parallel()
	env := newTestEnv(t)
	conf := env.RT.NewConf()
	nn, err := minihdfs.StartNameNode(env, conf, minihdfs.NNAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Stop()
	m, err := StartHMaster(env, conf)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rs, err := StartHRegionServer(env, conf, "rs0", minihdfs.NNAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Stop()

	if err := rs.OpenRegionDirect(conf, "r"); err != nil {
		t.Fatalf("agreeing open: %v", err)
	}
	other := env.RT.NewConf()
	other.SetInt(ParamMemstoreBlockMult, 99)
	if err := rs.OpenRegionDirect(other, "r2"); err == nil {
		t.Fatal("disagreeing open succeeded (the §7.1 trap must trip)")
	}
}

func TestRegistryTruthCounts(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	// HBase's own unsafe parameters plus everything layered from HDFS and
	// Hadoop Common.
	if r.Lookup(ParamThriftCompact) == nil || r.Lookup(minihdfs.ParamHeartbeatInterval) == nil {
		t.Fatal("layering broken")
	}
	if r.Len() < 70 {
		t.Fatalf("layered registry has only %d parameters", r.Len())
	}
}
