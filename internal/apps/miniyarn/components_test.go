package miniyarn

import (
	"strings"
	"testing"

	"zebraconf/internal/core/harness"
)

func newTestEnv(t *testing.T) *harness.Env {
	t.Helper()
	env := harness.NewEnv(NewRegistry(), nil, 1)
	t.Cleanup(env.Close)
	return env
}

func startRM(t *testing.T, env *harness.Env) *ResourceManager {
	t.Helper()
	rm, err := StartResourceManager(env, env.RT.NewConf())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rm.Stop)
	return rm
}

func TestAllocateEnforcesSchedulerLimits(t *testing.T) {
	t.Parallel()
	env := newTestEnv(t)
	rm := startRM(t, env)
	if _, err := rm.handle("registerNM", []byte(`{"NMID":"nm0","MemoryMB":8192,"Vcores":8}`)); err != nil {
		t.Fatal(err)
	}
	// Over the memory limit (default 8192).
	_, err := rm.allocate(&AllocateReq{AppID: "a", MemoryMB: 9000, Vcores: 1})
	if err == nil || !strings.Contains(err.Error(), ParamMaxAllocMB) {
		t.Fatalf("over-limit allocation: %v", err)
	}
	// Over the vcore limit (default 4).
	_, err = rm.allocate(&AllocateReq{AppID: "a", MemoryMB: 128, Vcores: 5})
	if err == nil || !strings.Contains(err.Error(), ParamMaxAllocVcores) {
		t.Fatalf("over-vcore allocation: %v", err)
	}
	// At the limit: granted.
	resp, err := rm.allocate(&AllocateReq{AppID: "a", MemoryMB: 8192, Vcores: 4})
	if err != nil || resp.NMID != "nm0" {
		t.Fatalf("at-limit allocation = (%+v, %v)", resp, err)
	}
}

func TestAllocatePacksUntilFull(t *testing.T) {
	t.Parallel()
	env := newTestEnv(t)
	rm := startRM(t, env)
	if _, err := rm.handle("registerNM", []byte(`{"NMID":"nm0","MemoryMB":1024,"Vcores":4}`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := rm.allocate(&AllocateReq{AppID: "a", MemoryMB: 256, Vcores: 1}); err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
	}
	if _, err := rm.allocate(&AllocateReq{AppID: "a", MemoryMB: 256, Vcores: 1}); err == nil {
		t.Fatal("allocation on a full node succeeded")
	}
}

func TestTokenLifetimeFollowsRMConf(t *testing.T) {
	t.Parallel()
	env := newTestEnv(t)
	conf := env.RT.NewConf()
	conf.SetInt(ParamTokenRenewIntvl, 500)
	rm, err := StartResourceManager(env, conf)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Stop()
	out, err := rm.handle("getToken", []byte(`{"Renewer":"r"}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"ID":1`) {
		t.Fatalf("token payload: %s", out)
	}
}

func TestTimelineDisabledRejects(t *testing.T) {
	t.Parallel()
	env := newTestEnv(t)
	conf := env.RT.NewConf()
	conf.SetBool(ParamTimelineEnabled, false)
	ahs, err := StartAppHistoryServer(env, conf)
	if err != nil {
		t.Fatal(err)
	}
	defer ahs.Stop()
	if _, err := ahs.handle("getHistory", []byte(`{"AppID":"a"}`)); err == nil {
		t.Fatal("disabled timeline served a query")
	}
}

func TestTimelineRecordsEvents(t *testing.T) {
	t.Parallel()
	env := newTestEnv(t)
	ahs, err := StartAppHistoryServer(env, env.RT.NewConf())
	if err != nil {
		t.Fatal(err)
	}
	defer ahs.Stop()
	if _, err := ahs.handle("putEvent", []byte(`{"AppID":"a","Event":"START"}`)); err != nil {
		t.Fatal(err)
	}
	out, err := ahs.handle("getHistory", []byte(`{"AppID":"a"}`))
	if err != nil || !strings.Contains(string(out), "START") {
		t.Fatalf("history = (%s, %v)", out, err)
	}
}
