package miniyarn

import (
	"fmt"

	"zebraconf/internal/apps/common"
	"zebraconf/internal/confkit"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/rpcsim"
)

// App returns the miniyarn application descriptor.
func App() *harness.App {
	return &harness.App{
		Name:        "miniyarn",
		Schema:      NewRegistry,
		NodeTypes:   []string{TypeResourceManager, TypeNodeManager, TypeAppHistory},
		Annotations: harness.AnnotationStats{NodeLines: 9, ConfLines: 6},
		Tests:       testSuite(),
	}
}

func testSuite() []harness.UnitTest {
	tests := []harness.UnitTest{
		{Name: "TestSubmitApplication", Run: testSubmitApplication},
		{Name: "TestAllocationAtMaxMB", Run: testAllocationAtMaxMB},
		{Name: "TestAllocationAtMaxVcores", Run: testAllocationAtMaxVcores},
		{Name: "TestTimelineQuery", Run: testTimelineQuery},
		{Name: "TestDelegationTokenExpiry", Run: testDelegationTokenExpiry},
		{Name: "TestNodeManagerLiveness", Run: testNodeManagerLiveness},
		{Name: "TestDrainNode", Run: testDrainNode},
		{Name: "TestSchedulerInternals", Run: testSchedulerInternals},
		{Name: "TestFlakyAllocation", Run: testFlakyAllocation},
	}
	return append(tests, functionLevelTests()...)
}

// startYarn is the common prologue: RM plus n NodeManagers sharing the
// unit test's configuration object.
func startYarn(t *harness.T, nms int) (*ResourceManager, *confkit.Conf) {
	conf := t.Env.RT.NewConf()
	rm, err := StartResourceManager(t.Env, conf)
	t.NoErr(err, "start resourcemanager")
	t.Env.Defer(rm.Stop)
	for i := 0; i < nms; i++ {
		nm, err := StartNodeManager(t.Env, conf, fmt.Sprintf("nm%d", i))
		t.NoErr(err, "start nodemanager")
		t.Env.Defer(nm.Stop)
	}
	return rm, conf
}

// dialRM opens a client connection using the unit test's configuration.
func dialRM(t *harness.T, conf *confkit.Conf) *rpcsim.Conn {
	conn, err := common.DialIPC(t.Env.Fabric, conf.Get(ParamRMAddress), conf, t.Env.Scale,
		common.SecurityFromConf(conf))
	t.NoErr(err, "dial resourcemanager")
	return conn
}

func testSubmitApplication(t *harness.T) {
	_, conf := startYarn(t, 2)
	client := dialRM(t, conf)
	var resp AllocateResp
	t.NoErr(client.CallJSON("allocate", AllocateReq{AppID: "app-1", MemoryMB: 512, Vcores: 1}, &resp), "allocate container")
	if resp.ContainerID == 0 || resp.NMID == "" {
		t.Fatalf("allocation returned empty container: %+v", resp)
	}
}

// testAllocationAtMaxMB requests exactly the CLIENT-configured maximum;
// the ResourceManager enforces its own (Table 3).
func testAllocationAtMaxMB(t *harness.T) {
	_, conf := startYarn(t, 2)
	client := dialRM(t, conf)
	req := AllocateReq{AppID: "app-max", MemoryMB: conf.GetInt(ParamMaxAllocMB), Vcores: 1}
	if req.MemoryMB > conf.GetInt(ParamNMMemoryMB) {
		// The configured scheduler maximum exceeds one node's capacity;
		// clamp like a real application master would.
		req.MemoryMB = conf.GetInt(ParamNMMemoryMB)
	}
	var resp AllocateResp
	t.NoErr(client.CallJSON("allocate", req, &resp), "allocate at the configured maximum memory")
}

func testAllocationAtMaxVcores(t *harness.T) {
	_, conf := startYarn(t, 2)
	client := dialRM(t, conf)
	req := AllocateReq{AppID: "app-vc", MemoryMB: 128, Vcores: conf.GetInt(ParamMaxAllocVcores)}
	if req.Vcores > conf.GetInt(ParamNMVcores) {
		req.Vcores = conf.GetInt(ParamNMVcores)
	}
	var resp AllocateResp
	t.NoErr(client.CallJSON("allocate", req, &resp), "allocate at the configured maximum vcores")
}

// testTimelineQuery exercises both timeline findings: the client consults
// the timeline only when ITS configuration enables it, resolves the web
// address with ITS http policy, and the server serves only when ITS side
// is enabled (Table 3: yarn.timeline-service.enabled, yarn.http.policy).
func testTimelineQuery(t *harness.T) {
	conf := t.Env.RT.NewConf()
	ahs, err := StartAppHistoryServer(t.Env, conf)
	t.NoErr(err, "start timeline server")
	t.Env.Defer(ahs.Stop)

	if !conf.GetBool(ParamTimelineEnabled) {
		return // the client side is configured without a timeline service
	}
	conn, err := common.DialWeb(t.Env.Fabric, ParamHTTPPolicy, conf.Get(ParamTimelineHost), conf, t.Env.Scale)
	t.NoErr(err, "connect to timeline web service")
	t.NoErr(conn.CallJSON("putEvent", AppEvent{AppID: "app-7", Event: "SUBMITTED"}, nil), "record timeline event")
	var resp AppHistoryResp
	t.NoErr(conn.CallJSON("getHistory", AppHistoryQuery{AppID: "app-7"}, &resp), "query timeline history")
	if len(resp.Events) != 1 || resp.Events[0] != "SUBMITTED" {
		t.Fatalf("timeline history = %v, want [SUBMITTED]", resp.Events)
	}
}

// testDelegationTokenExpiry checks the token lifetime against the CLIENT's
// renew-interval expectation — visible through the public token API
// (Table 3: yarn.resourcemanager.delegation.token.renew-interval).
func testDelegationTokenExpiry(t *harness.T) {
	_, conf := startYarn(t, 1)
	client := dialRM(t, conf)
	var tok common.Token
	t.NoErr(client.CallJSON("getToken", TokenReq{Renewer: "tester"}, &tok), "fetch delegation token")
	want := conf.GetTicks(ParamTokenRenewIntvl)
	got := tok.ExpiresAt - tok.IssuedAt
	if got != want {
		t.Fatalf("token lifetime %d ticks, want %d per the configured renew interval", got, want)
	}
}

// testNodeManagerLiveness covers the generous 20x liveness threshold: any
// candidate heartbeat skew stays harmless, so the parameter is
// heterogeneous-safe here.
func testNodeManagerLiveness(t *harness.T) {
	_, conf := startYarn(t, 2)
	client := dialRM(t, conf)
	t.Env.Scale.Sleep(5 * conf.GetTicks(ParamNMHeartbeat))
	var live int
	t.NoErr(client.CallJSON("liveNMs", struct{}{}, &live), "count live nodemanagers")
	if live != 2 {
		t.Fatalf("%d live NodeManagers, want 2", live)
	}
}

// testDrainNode exercises a slow admin RPC: the server's keepalive cadence
// derives from ITS rpc-timeout while the client waits per ITS OWN — the
// common-library Table 3 finding (ipc.client.rpc-timeout.ms).
func testDrainNode(t *harness.T) {
	_, conf := startYarn(t, 1)
	client := dialRM(t, conf)
	t.NoErr(client.CallJSON("drainNode", struct{}{}, nil), "drain a node (slow RPC)")
}

// testSchedulerInternals is the §7.1 private-state trap.
func testSchedulerInternals(t *harness.T) {
	rm, conf := startYarn(t, 1)
	if got, want := rm.SchedulerClass(), conf.Get(ParamSchedulerClass); got != want {
		t.Fatalf("resourcemanager private scheduler %q != client-configured %q", got, want)
	}
}

// testFlakyAllocation fails nondeterministically (hypothesis-testing
// fodder).
func testFlakyAllocation(t *harness.T) {
	_, conf := startYarn(t, 2)
	client := dialRM(t, conf)
	var resp AllocateResp
	t.NoErr(client.CallJSON("allocate", AllocateReq{AppID: "app-f", MemoryMB: 256, Vcores: 1}, &resp), "allocate")
	if t.Env.Float64() < 0.2 {
		t.Fatalf("simulated race: allocation observed a node in transition")
	}
}

func functionLevelTests() []harness.UnitTest {
	return []harness.UnitTest{
		{Name: "TestTokenLifetimeMath", Run: func(t *harness.T) {
			tok := common.IssueToken(t.Env.Scale, 1, 50)
			if tok.ExpiresAt-tok.IssuedAt != 50 {
				t.Fatalf("token lifetime %d, want 50", tok.ExpiresAt-tok.IssuedAt)
			}
		}},
		{Name: "TestRegistryDefaults", Run: func(t *harness.T) {
			conf := t.Env.RT.NewConf()
			if conf.GetInt(ParamMaxAllocMB) <= 0 {
				t.Fatalf("missing default for %s", ParamMaxAllocMB)
			}
			if conf.Get(ParamHTTPPolicy) == "" {
				t.Fatalf("missing default for %s", ParamHTTPPolicy)
			}
		}},
		{Name: "TestWebAddrPolicy", Run: func(t *harness.T) {
			if _, err := common.WebAddr(common.PolicyHTTPSOnly, "timeline"); err != nil {
				t.Fatalf("WebAddr: %v", err)
			}
		}},
		{Name: "TestAllocateReqZero", Run: func(t *harness.T) {
			var req AllocateReq
			if req.MemoryMB != 0 || req.Vcores != 0 {
				t.Fatalf("zero value AllocateReq not zero")
			}
		}},
	}
}
