package miniyarn

import (
	"encoding/json"
	"fmt"
	"sync"

	"zebraconf/internal/apps/common"
	"zebraconf/internal/confkit"
	"zebraconf/internal/core/harness"
	"zebraconf/internal/rpcsim"
)

// rmMonitorTicks is the ResourceManager liveness monitor cadence.
const rmMonitorTicks = 10

// RegisterNMReq announces a NodeManager and its (naturally per-node)
// resources.
type RegisterNMReq struct {
	NMID     string
	MemoryMB int64
	Vcores   int64
}

// NMHeartbeatReq keeps a NodeManager alive.
type NMHeartbeatReq struct {
	NMID string
}

// AllocateReq asks the scheduler for one container.
type AllocateReq struct {
	AppID    string
	MemoryMB int64
	Vcores   int64
}

// AllocateResp names the NodeManager hosting the granted container.
type AllocateResp struct {
	NMID        string
	ContainerID int64
}

// TokenReq requests a delegation token.
type TokenReq struct {
	Renewer string
}

// AppEvent is a timeline entry.
type AppEvent struct {
	AppID string
	Event string
}

// AppHistoryQuery fetches an application's timeline.
type AppHistoryQuery struct {
	AppID string
}

// AppHistoryResp lists recorded events.
type AppHistoryResp struct {
	Events []string
}

// nmState is the ResourceManager's view of one NodeManager.
type nmState struct {
	id       string
	memoryMB int64
	vcores   int64
	usedMB   int64
	usedVC   int64
	lastHB   int64
	dead     bool
}

// ResourceManager schedules containers and mints delegation tokens.
type ResourceManager struct {
	env  *harness.Env
	conf *confkit.Conf
	srv  *rpcsim.Server

	scheduler string // private state for the §7.1 trap test

	mu        sync.Mutex
	nms       map[string]*nmState
	nextCtr   int64
	nextToken int
	stop      chan struct{}
	wg        sync.WaitGroup
}

// StartResourceManager boots the RM at its configured address.
func StartResourceManager(env *harness.Env, conf *confkit.Conf) (*ResourceManager, error) {
	env.RT.StartInit(TypeResourceManager)
	defer env.RT.StopInit()

	rm := &ResourceManager{
		env:  env,
		conf: conf.RefToClone(),
		nms:  make(map[string]*nmState),
		stop: make(chan struct{}),
	}
	rm.scheduler = rm.conf.Get(ParamSchedulerClass)
	_ = rm.conf.GetInt(ParamMinAllocMB)
	_ = rm.conf.GetInt(ParamAMMaxAttempts)
	_ = rm.conf.GetBool(ParamFairPreemption)

	srv, err := common.ServeIPC(env.Fabric, rm.conf.Get(ParamRMAddress), rm.conf, env.Scale,
		common.SecurityFromConf(rm.conf), rm.handle)
	if err != nil {
		return nil, fmt.Errorf("miniyarn: start resourcemanager: %w", err)
	}
	rm.srv = srv
	rm.wg.Add(1)
	env.RT.Go(rm.monitor)
	return rm, nil
}

// SchedulerClass exposes RM-private state for the §7.1 trap test only.
func (rm *ResourceManager) SchedulerClass() string { return rm.scheduler }

// Stop shuts the RM down.
func (rm *ResourceManager) Stop() {
	select {
	case <-rm.stop:
		return
	default:
	}
	close(rm.stop)
	rm.srv.Close()
	rm.wg.Wait()
}

// monitor expires NodeManagers that miss heartbeats. The threshold is a
// generous 20x the RM's own heartbeat-interval setting, so any candidate
// skew stays harmless — which is why the heartbeat parameter is
// heterogeneous-SAFE here, unlike HDFS's tighter formula.
func (rm *ResourceManager) monitor() {
	defer rm.wg.Done()
	for {
		select {
		case <-rm.stop:
			return
		case <-rm.env.Scale.After(rmMonitorTicks):
		}
		threshold := 20 * rm.conf.GetTicks(ParamNMHeartbeat)
		now := rm.env.Scale.Now()
		rm.mu.Lock()
		for _, nm := range rm.nms {
			nm.dead = now-nm.lastHB > threshold
		}
		rm.mu.Unlock()
	}
}

func (rm *ResourceManager) handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "registerNM":
		var req RegisterNMReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		rm.mu.Lock()
		rm.nms[req.NMID] = &nmState{
			id: req.NMID, memoryMB: req.MemoryMB, vcores: req.Vcores,
			lastHB: rm.env.Scale.Now(),
		}
		rm.mu.Unlock()
		return json.Marshal(struct{}{})
	case "heartbeatNM":
		var req NMHeartbeatReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		rm.mu.Lock()
		if nm, ok := rm.nms[req.NMID]; ok {
			nm.lastHB = rm.env.Scale.Now()
		}
		rm.mu.Unlock()
		return json.Marshal(struct{}{})
	case "allocate":
		var req AllocateReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		resp, err := rm.allocate(&req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(resp)
	case "getToken":
		var req TokenReq
		if err := rpcsim.Unmarshal(method, payload, &req); err != nil {
			return nil, err
		}
		rm.mu.Lock()
		rm.nextToken++
		id := rm.nextToken
		rm.mu.Unlock()
		token := common.IssueToken(rm.env.Scale, id, rm.conf.GetTicks(ParamTokenRenewIntvl))
		return json.Marshal(token)
	case "drainNode":
		// Draining waits for containers to finish: a deliberately slow
		// admin RPC (the saveNamespace analog) that exercises the IPC
		// timeout/keepalive machinery.
		rm.env.Scale.Sleep(600)
		return json.Marshal(struct{}{})
	case "liveNMs":
		rm.mu.Lock()
		live := 0
		for _, nm := range rm.nms {
			if !nm.dead {
				live++
			}
		}
		rm.mu.Unlock()
		return json.Marshal(live)
	default:
		return nil, fmt.Errorf("miniyarn: resourcemanager: unknown method %q", method)
	}
}

// allocate enforces the RM's OWN maximum-allocation limits — a request a
// client considers valid under a larger configured maximum is rejected
// (Table 3: yarn.scheduler.maximum-allocation-mb / -vcores).
func (rm *ResourceManager) allocate(req *AllocateReq) (AllocateResp, error) {
	maxMB := rm.conf.GetInt(ParamMaxAllocMB)
	maxVC := rm.conf.GetInt(ParamMaxAllocVcores)
	if req.MemoryMB > maxMB {
		return AllocateResp{}, fmt.Errorf(
			"miniyarn: ResourceManager disallows allocation of %d MB: exceeds %s=%d",
			req.MemoryMB, ParamMaxAllocMB, maxMB)
	}
	if req.Vcores > maxVC {
		return AllocateResp{}, fmt.Errorf(
			"miniyarn: ResourceManager disallows allocation of %d vcores: exceeds %s=%d",
			req.Vcores, ParamMaxAllocVcores, maxVC)
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for _, nm := range rm.nms {
		if nm.dead || nm.usedMB+req.MemoryMB > nm.memoryMB || nm.usedVC+req.Vcores > nm.vcores {
			continue
		}
		nm.usedMB += req.MemoryMB
		nm.usedVC += req.Vcores
		rm.nextCtr++
		return AllocateResp{NMID: nm.id, ContainerID: rm.nextCtr}, nil
	}
	return AllocateResp{}, fmt.Errorf("miniyarn: no NodeManager can host %d MB / %d vcores", req.MemoryMB, req.Vcores)
}

// NodeManager advertises per-node resources and heartbeats to the RM.
type NodeManager struct {
	env  *harness.Env
	conf *confkit.Conf
	id   string
	rm   *rpcsim.Conn

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartNodeManager boots a NodeManager and registers it.
func StartNodeManager(env *harness.Env, conf *confkit.Conf, id string) (*NodeManager, error) {
	env.RT.StartInit(TypeNodeManager)
	defer env.RT.StopInit()

	nm := &NodeManager{env: env, conf: conf.RefToClone(), id: id, stop: make(chan struct{})}
	_ = nm.conf.Get(ParamNMLocalDirs)
	_ = nm.conf.Get(ParamNMLogDirs)
	_ = nm.conf.GetBool(ParamVmemCheck)
	_ = nm.conf.GetBool(ParamLogAggregation)
	_ = nm.conf.GetTicks(ParamDeleteDebugDelay)

	conn, err := common.DialIPC(env.Fabric, nm.conf.Get(ParamRMAddress), nm.conf, env.Scale,
		common.SecurityFromConf(nm.conf))
	if err != nil {
		return nil, fmt.Errorf("miniyarn: nodemanager %s cannot reach resourcemanager: %w", id, err)
	}
	nm.rm = conn
	if err := conn.CallJSON("registerNM", RegisterNMReq{
		NMID:     id,
		MemoryMB: nm.conf.GetInt(ParamNMMemoryMB),
		Vcores:   nm.conf.GetInt(ParamNMVcores),
	}, nil); err != nil {
		return nil, fmt.Errorf("miniyarn: nodemanager %s failed to register: %w", id, err)
	}

	nm.wg.Add(1)
	env.RT.Go(nm.heartbeatLoop)
	return nm, nil
}

// Stop halts the heartbeat loop.
func (nm *NodeManager) Stop() {
	nm.stopOnce.Do(func() { close(nm.stop) })
	nm.wg.Wait()
}

func (nm *NodeManager) heartbeatLoop() {
	defer nm.wg.Done()
	for {
		interval := nm.conf.GetTicks(ParamNMHeartbeat)
		if interval < 1 {
			interval = 1
		}
		select {
		case <-nm.stop:
			return
		case <-nm.env.Scale.After(interval):
		}
		_ = nm.rm.CallJSON("heartbeatNM", NMHeartbeatReq{NMID: nm.id}, nil)
	}
}

// AppHistoryServer is the timeline service: a web endpoint whose scheme
// follows ITS yarn.http.policy, serving history only when ITS
// yarn.timeline-service.enabled says so.
type AppHistoryServer struct {
	env  *harness.Env
	conf *confkit.Conf
	srv  *rpcsim.Server

	mu     sync.Mutex
	events map[string][]string
}

// StartAppHistoryServer boots the timeline service.
func StartAppHistoryServer(env *harness.Env, conf *confkit.Conf) (*AppHistoryServer, error) {
	env.RT.StartInit(TypeAppHistory)
	defer env.RT.StopInit()

	ahs := &AppHistoryServer{env: env, conf: conf.RefToClone(), events: make(map[string][]string)}
	srv, err := common.ServeWeb(env.Fabric, ParamHTTPPolicy, ahs.conf.Get(ParamTimelineHost),
		ahs.conf, env.Scale, ahs.handle)
	if err != nil {
		return nil, fmt.Errorf("miniyarn: start timeline server: %w", err)
	}
	ahs.srv = srv
	return ahs, nil
}

// Stop shuts the timeline service down.
func (ahs *AppHistoryServer) Stop() { ahs.srv.Close() }

func (ahs *AppHistoryServer) handle(method string, payload []byte) ([]byte, error) {
	if !ahs.conf.GetBool(ParamTimelineEnabled) {
		return nil, fmt.Errorf("miniyarn: timeline service is disabled on this server (%s=false)", ParamTimelineEnabled)
	}
	switch method {
	case "putEvent":
		var ev AppEvent
		if err := rpcsim.Unmarshal(method, payload, &ev); err != nil {
			return nil, err
		}
		ahs.mu.Lock()
		ahs.events[ev.AppID] = append(ahs.events[ev.AppID], ev.Event)
		ahs.mu.Unlock()
		return json.Marshal(struct{}{})
	case "getHistory":
		var q AppHistoryQuery
		if err := rpcsim.Unmarshal(method, payload, &q); err != nil {
			return nil, err
		}
		ahs.mu.Lock()
		events := append([]string(nil), ahs.events[q.AppID]...)
		ahs.mu.Unlock()
		return json.Marshal(AppHistoryResp{Events: events})
	default:
		return nil, fmt.Errorf("miniyarn: timeline: unknown method %q", method)
	}
}
