// Package miniyarn is a miniature YARN analog: a ResourceManager
// scheduling containers onto NodeManagers, delegation tokens, and an
// ApplicationHistoryServer (timeline service) behind an http-policy web
// endpoint.
//
// It reproduces the YARN rows of the paper's Table 3: yarn.http.policy,
// delegation-token renew-interval visibility, scheduler maximum-allocation
// limits, and yarn.timeline-service.enabled.
package miniyarn

import (
	"zebraconf/internal/apps/common"
	"zebraconf/internal/confkit"
)

// Node type names (paper Table 2).
const (
	TypeResourceManager = "ResourceManager"
	TypeNodeManager     = "NodeManager"
	TypeAppHistory      = "ApplicationHistoryServer"
)

// Parameter names.
const (
	ParamHTTPPolicy      = "yarn.http.policy"
	ParamTokenRenewIntvl = "yarn.resourcemanager.delegation.token.renew-interval"
	ParamMaxAllocMB      = "yarn.scheduler.maximum-allocation-mb"
	ParamMaxAllocVcores  = "yarn.scheduler.maximum-allocation-vcores"
	ParamTimelineEnabled = "yarn.timeline-service.enabled"

	// False-positive trap.
	ParamSchedulerClass = "yarn.resourcemanager.scheduler.class"

	// Heterogeneous-safe parameters.
	ParamNMMemoryMB       = "yarn.nodemanager.resource.memory-mb"
	ParamNMVcores         = "yarn.nodemanager.resource.cpu-vcores"
	ParamMinAllocMB       = "yarn.scheduler.minimum-allocation-mb"
	ParamNMHeartbeat      = "yarn.resourcemanager.nodemanagers.heartbeat-interval-ms"
	ParamNMLocalDirs      = "yarn.nodemanager.local-dirs"
	ParamNMLogDirs        = "yarn.nodemanager.log-dirs"
	ParamAMMaxAttempts    = "yarn.resourcemanager.am.max-attempts"
	ParamVmemCheck        = "yarn.nodemanager.vmem-check-enabled"
	ParamLogAggregation   = "yarn.log-aggregation-enable"
	ParamDeleteDebugDelay = "yarn.nodemanager.delete.debug-delay-sec"
	ParamFairPreemption   = "yarn.scheduler.fair.preemption"
	ParamTimelineHost     = "yarn.timeline-service.hostname"
	ParamRMAddress        = "yarn.resourcemanager.address"
)

// NewRegistry builds the miniyarn schema on top of the common library's.
func NewRegistry() *confkit.Registry {
	r := confkit.NewRegistry()
	r.Register(
		confkit.Param{Name: ParamHTTPPolicy, Kind: confkit.Enum, Default: common.PolicyHTTPOnly,
			Candidates: []string{common.PolicyHTTPOnly, common.PolicyHTTPSOnly},
			Doc:        "web endpoint scheme for YARN services",
			Truth:      confkit.SafetyUnsafe,
			Why:        "client fails to connect to Timeline web services"},
		confkit.Param{Name: ParamTokenRenewIntvl, Kind: confkit.Ticks, Default: "86400",
			Candidates: []string{"86400", "3600"},
			Doc:        "delegation token lifetime granted per renewal",
			Truth:      confkit.SafetyUnsafe,
			Why:        "end users observe newer tokens expiring earlier than prior tokens"},
		confkit.Param{Name: ParamMaxAllocMB, Kind: confkit.Int, Default: "8192",
			Candidates: []string{"8192", "16384", "1024"},
			Doc:        "largest container memory the scheduler grants",
			Truth:      confkit.SafetyUnsafe,
			Why:        "ResourceManager rejects allocations valid under the client's larger limit (decreasing the value is disallowed)"},
		confkit.Param{Name: ParamMaxAllocVcores, Kind: confkit.Int, Default: "4",
			Candidates: []string{"4", "8", "1"},
			Doc:        "largest container vcore count the scheduler grants",
			Truth:      confkit.SafetyUnsafe,
			Why:        "ResourceManager rejects allocations valid under the client's larger limit (decreasing the value is disallowed)"},
		confkit.Param{Name: ParamTimelineEnabled, Kind: confkit.Bool, Default: "true",
			Doc:   "serve (and consult) the timeline service",
			Truth: confkit.SafetyUnsafe,
			Why:   "client fails to connect to the Timeline Server"},
		confkit.Param{Name: ParamSchedulerClass, Kind: confkit.Enum, Default: "capacity",
			Candidates: []string{"capacity", "fair"},
			Doc:        "scheduler implementation",
			Truth:      confkit.SafetyFalsePositive,
			Why:        "a unit test compares the ResourceManager's private scheduler field against the client's configuration object (§7.1)"},

		confkit.Param{Name: ParamNMMemoryMB, Kind: confkit.Int, Default: "8192",
			Candidates: []string{"8192", "16384", "4096"},
			Doc:        "NodeManager advertised memory (naturally per-node)",
			Truth:      confkit.SafetyFalsePositive,
			Why:        "per-node resources are legitimately heterogeneous; the unit test sizes its request from the client's view of NodeManager capacity, an overly strict assumption (§7.1)"},
		confkit.Param{Name: ParamNMVcores, Kind: confkit.Int, Default: "8",
			Candidates: []string{"8", "16", "4"},
			Doc:        "NodeManager advertised vcores (naturally per-node)",
			Truth:      confkit.SafetyFalsePositive,
			Why:        "per-node resources are legitimately heterogeneous; the unit test sizes its request from the client's view of NodeManager capacity, an overly strict assumption (§7.1)"},
		confkit.Param{Name: ParamMinAllocMB, Kind: confkit.Int, Default: "128",
			Doc: "allocation granularity"},
		confkit.Param{Name: ParamNMHeartbeat, Kind: confkit.Ticks, Default: "100",
			Candidates: []string{"100", "1000"},
			Doc:        "NodeManager heartbeat cadence; the 20x liveness threshold tolerates the documented 10x operating range, unlike HDFS's tighter formula"},
		confkit.Param{Name: ParamNMLocalDirs, Kind: confkit.String, Default: "/data/nm-local",
			Doc: "container scratch directories"},
		confkit.Param{Name: ParamNMLogDirs, Kind: confkit.String, Default: "/data/nm-logs",
			Doc: "container log directories"},
		confkit.Param{Name: ParamAMMaxAttempts, Kind: confkit.Int, Default: "2",
			Doc: "application master retry budget"},
		confkit.Param{Name: ParamVmemCheck, Kind: confkit.Bool, Default: "true",
			Doc: "enforce virtual memory limits locally"},
		confkit.Param{Name: ParamLogAggregation, Kind: confkit.Bool, Default: "false",
			Doc: "aggregate container logs after completion"},
		confkit.Param{Name: ParamDeleteDebugDelay, Kind: confkit.Ticks, Default: "0",
			Candidates: []string{"0", "600"},
			Doc:        "delay before deleting container debug data"},
		confkit.Param{Name: ParamFairPreemption, Kind: confkit.Bool, Default: "false",
			Doc: "enable fair-scheduler preemption"},
		confkit.Param{Name: ParamTimelineHost, Kind: confkit.String, Default: "timeline",
			Doc: "timeline service host"},
		confkit.Param{Name: ParamRMAddress, Kind: confkit.String, Default: "rm",
			Doc: "ResourceManager IPC address"},
	)
	r.Include(common.NewRegistry())
	return r
}
